#include "data/dataset.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace abdhfl::data {

std::size_t Dataset::num_classes() const noexcept {
  std::uint8_t mx = 0;
  for (std::uint8_t l : labels) mx = std::max(mx, l);
  return labels.empty() ? 0 : static_cast<std::size_t>(mx) + 1;
}

Dataset Dataset::subset(std::span<const std::size_t> indices) const {
  Dataset out;
  out.features = tensor::Matrix(indices.size(), dim());
  out.labels.resize(indices.size());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const std::size_t src = indices[i];
    if (src >= size()) throw std::out_of_range("Dataset::subset index out of range");
    std::memcpy(out.features.row(i).data(), features.row(src).data(),
                dim() * sizeof(float));
    out.labels[i] = labels[src];
  }
  return out;
}

Dataset Dataset::sample_batch(std::size_t batch, util::Rng& rng) const {
  const std::size_t k = std::min(batch, size());
  const auto idx = rng.sample_indices(size(), k);
  return subset(idx);
}

void Dataset::shuffle(util::Rng& rng) {
  std::vector<std::size_t> perm(size());
  for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = i;
  rng.shuffle(perm);
  *this = subset(perm);
}

void Dataset::append(const Dataset& other) {
  if (other.empty()) return;
  if (empty()) {
    *this = other;
    return;
  }
  if (other.dim() != dim()) throw std::invalid_argument("Dataset::append dim mismatch");
  tensor::Matrix merged(size() + other.size(), dim());
  std::memcpy(merged.data(), features.data(), size() * dim() * sizeof(float));
  std::memcpy(merged.data() + size() * dim(), other.features.data(),
              other.size() * dim() * sizeof(float));
  features = std::move(merged);
  labels.insert(labels.end(), other.labels.begin(), other.labels.end());
}

std::vector<std::size_t> Dataset::class_histogram() const {
  std::vector<std::size_t> hist(num_classes(), 0);
  for (std::uint8_t l : labels) ++hist[l];
  return hist;
}

std::vector<std::vector<std::size_t>> Dataset::indices_by_class() const {
  std::vector<std::vector<std::size_t>> by_class(num_classes());
  for (std::size_t i = 0; i < labels.size(); ++i) by_class[labels[i]].push_back(i);
  return by_class;
}

void Dataset::validate() const {
  if (features.rows() != labels.size()) {
    throw std::logic_error("Dataset: feature rows != label count");
  }
}

TrainTestSplit split_train_test(const Dataset& all, double test_fraction, util::Rng& rng) {
  if (test_fraction < 0.0 || test_fraction > 1.0) {
    throw std::invalid_argument("test_fraction must be in [0,1]");
  }
  std::vector<std::size_t> perm(all.size());
  for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = i;
  rng.shuffle(perm);
  const auto n_test = static_cast<std::size_t>(test_fraction * static_cast<double>(all.size()));
  TrainTestSplit split;
  split.test = all.subset(std::span(perm).subspan(0, n_test));
  split.train = all.subset(std::span(perm).subspan(n_test));
  return split;
}

}  // namespace abdhfl::data
