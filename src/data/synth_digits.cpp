#include "data/synth_digits.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

namespace abdhfl::data {

namespace {

// Segment endpoints in a normalized [0,1]^2 box (x right, y down):
//   A: top bar, B: top-right, C: bottom-right, D: bottom bar,
//   E: bottom-left, F: top-left, G: middle bar.
struct Segment {
  double x0, y0, x1, y1;
};

constexpr std::array<Segment, 7> kSegments = {{
    {0.2, 0.1, 0.8, 0.1},  // A
    {0.8, 0.1, 0.8, 0.5},  // B
    {0.8, 0.5, 0.8, 0.9},  // C
    {0.2, 0.9, 0.8, 0.9},  // D
    {0.2, 0.5, 0.2, 0.9},  // E
    {0.2, 0.1, 0.2, 0.5},  // F
    {0.2, 0.5, 0.8, 0.5},  // G
}};

double point_segment_distance(double px, double py, const Segment& s) noexcept {
  const double vx = s.x1 - s.x0, vy = s.y1 - s.y0;
  const double wx = px - s.x0, wy = py - s.y0;
  const double len2 = vx * vx + vy * vy;
  double t = len2 > 0.0 ? (wx * vx + wy * vy) / len2 : 0.0;
  t = std::clamp(t, 0.0, 1.0);
  const double dx = px - (s.x0 + t * vx);
  const double dy = py - (s.y0 + t * vy);
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace

std::uint8_t segment_mask(std::uint8_t digit) noexcept {
  // Bits: A=1, B=2, C=4, D=8, E=16, F=32, G=64.
  constexpr std::array<std::uint8_t, 10> masks = {{
      0b0111111,  // 0: ABCDEF
      0b0000110,  // 1: BC
      0b1011011,  // 2: ABDEG
      0b1001111,  // 3: ABCDG
      0b1100110,  // 4: BCFG
      0b1101101,  // 5: ACDFG
      0b1111101,  // 6: ACDEFG
      0b0000111,  // 7: ABC
      0b1111111,  // 8: all
      0b1101111,  // 9: ABCDFG
  }};
  return digit < 10 ? masks[digit] : 0;
}

std::vector<float> render_digit(std::uint8_t digit, std::size_t side, double thickness,
                                double dx, double dy) {
  if (digit > 9) throw std::invalid_argument("digit must be 0-9");
  if (side < 4) throw std::invalid_argument("side must be >= 4");
  const std::uint8_t mask = segment_mask(digit);
  const double half_width = thickness / static_cast<double>(side);
  std::vector<float> image(side * side, 0.0f);
  for (std::size_t y = 0; y < side; ++y) {
    for (std::size_t x = 0; x < side; ++x) {
      // Pixel center in normalized box coordinates, after inverse shift.
      const double px = (static_cast<double>(x) + 0.5 - dx) / static_cast<double>(side);
      const double py = (static_cast<double>(y) + 0.5 - dy) / static_cast<double>(side);
      double best = 1e9;
      for (std::size_t s = 0; s < kSegments.size(); ++s) {
        if ((mask >> s) & 1U) {
          best = std::min(best, point_segment_distance(px, py, kSegments[s]));
        }
      }
      // Soft stroke edge: full intensity inside half_width, linear falloff
      // over another half_width (anti-aliased strokes train better).
      double v = 0.0;
      if (best <= half_width) {
        v = 1.0;
      } else if (best <= 2.0 * half_width) {
        v = 1.0 - (best - half_width) / half_width;
      }
      image[y * side + x] = static_cast<float>(v);
    }
  }
  return image;
}

Dataset generate_synth_digits(const SynthConfig& config, util::Rng& rng) {
  const std::size_t n = 10 * config.samples_per_class;
  const std::size_t dim = config.side * config.side;
  Dataset out;
  out.features = tensor::Matrix(n, dim);
  out.labels.resize(n);

  std::size_t row = 0;
  for (std::uint8_t digit = 0; digit < 10; ++digit) {
    for (std::size_t k = 0; k < config.samples_per_class; ++k, ++row) {
      const double dx = rng.uniform(-config.max_shift, config.max_shift);
      const double dy = rng.uniform(-config.max_shift, config.max_shift);
      const double thick =
          config.thickness * rng.uniform(0.8, 1.2);
      auto image = render_digit(digit, config.side, thick, dx, dy);
      const double gain = 1.0 + rng.uniform(-config.intensity_jitter,
                                            config.intensity_jitter);
      auto dst = out.features.row(row);
      for (std::size_t i = 0; i < dim; ++i) {
        double v = gain * image[i] + rng.normal(0.0, config.noise_stddev);
        dst[i] = static_cast<float>(std::clamp(v, 0.0, 1.0));
      }
      out.labels[row] = digit;
    }
  }
  out.shuffle(rng);
  return out;
}

}  // namespace abdhfl::data
