#pragma once
// Procedural MNIST substitute.
//
// The paper evaluates on MNIST, which is not shipped with this repo.  This
// generator produces a 10-class handwriting-like task: each class renders a
// seven-segment digit template on a side x side grid with randomized stroke
// thickness, sub-pixel translation, intensity jitter, and additive Gaussian
// pixel noise.  The resulting task has the properties the evaluation needs:
// classes are separable by a small MLP (honest plateau ~90%+), intra-class
// variance is real (local SGD matters), and label-flip poisoning corrupts it
// the same way it corrupts MNIST.  For runs with the real dataset, see
// mnist_idx.hpp.

#include <cstdint>

#include "data/dataset.hpp"
#include "util/rng.hpp"

namespace abdhfl::data {

struct SynthConfig {
  std::size_t side = 16;          // image is side x side pixels
  std::size_t samples_per_class = 100;
  double noise_stddev = 0.15;     // additive Gaussian pixel noise
  double max_shift = 1.5;         // uniform translation in pixels
  double thickness = 1.3;         // stroke half-width in pixels
  double intensity_jitter = 0.2;  // multiplicative brightness variation
};

/// Deterministic dataset of 10 * samples_per_class images, shuffled.
[[nodiscard]] Dataset generate_synth_digits(const SynthConfig& config, util::Rng& rng);

/// Render one clean digit (no noise/jitter) — exposed for tests and the
/// attack module's backdoor-trigger placement.
[[nodiscard]] std::vector<float> render_digit(std::uint8_t digit, std::size_t side,
                                              double thickness, double dx, double dy);

/// Which of the 7 segments (A..G, bit 0..6) are lit for each digit 0-9.
[[nodiscard]] std::uint8_t segment_mask(std::uint8_t digit) noexcept;

}  // namespace abdhfl::data
