#pragma once
// In-memory labelled dataset.  One row of `features` per sample, labels are
// class indices.  Shards handed to simulated devices are Datasets produced
// by the partitioners in partition.hpp.

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/matrix.hpp"
#include "util/rng.hpp"

namespace abdhfl::data {

struct Dataset {
  tensor::Matrix features;          // (n, dim)
  std::vector<std::uint8_t> labels; // n entries

  [[nodiscard]] std::size_t size() const noexcept { return labels.size(); }
  [[nodiscard]] std::size_t dim() const noexcept { return features.cols(); }
  [[nodiscard]] bool empty() const noexcept { return labels.empty(); }

  /// Number of distinct classes (max label + 1); 0 when empty.
  [[nodiscard]] std::size_t num_classes() const noexcept;

  /// New dataset containing the given rows, in the given order.
  [[nodiscard]] Dataset subset(std::span<const std::size_t> indices) const;

  /// Random mini-batch of `batch` rows (with replacement when batch > n is
  /// requested it clamps to n distinct rows).
  [[nodiscard]] Dataset sample_batch(std::size_t batch, util::Rng& rng) const;

  /// In-place row permutation.
  void shuffle(util::Rng& rng);

  /// Append all rows of other (dims must match).
  void append(const Dataset& other);

  /// Per-class sample counts, indexed by label (size = num_classes()).
  [[nodiscard]] std::vector<std::size_t> class_histogram() const;

  /// Indices of samples with each label.
  [[nodiscard]] std::vector<std::vector<std::size_t>> indices_by_class() const;

  /// Consistency check: labels size matches feature rows.  Throws if not.
  void validate() const;
};

/// Split into train/test by fraction (deterministic under rng).
struct TrainTestSplit {
  Dataset train;
  Dataset test;
};
[[nodiscard]] TrainTestSplit split_train_test(const Dataset& all, double test_fraction,
                                              util::Rng& rng);

}  // namespace abdhfl::data
