#include "data/mnist_idx.hpp"

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <vector>

namespace abdhfl::data {

namespace {

std::uint32_t read_be32(std::istream& in) {
  std::uint8_t b[4];
  in.read(reinterpret_cast<char*>(b), 4);
  if (!in) throw std::runtime_error("IDX: truncated header");
  return (std::uint32_t{b[0]} << 24) | (std::uint32_t{b[1]} << 16) |
         (std::uint32_t{b[2]} << 8) | std::uint32_t{b[3]};
}

std::vector<std::uint8_t> read_payload(std::istream& in, std::size_t n) {
  std::vector<std::uint8_t> bytes(n);
  in.read(reinterpret_cast<char*>(bytes.data()), static_cast<std::streamsize>(n));
  if (!in) throw std::runtime_error("IDX: truncated payload");
  return bytes;
}

}  // namespace

Dataset load_idx_pair(const std::string& images_path, const std::string& labels_path) {
  std::ifstream images(images_path, std::ios::binary);
  if (!images) throw std::runtime_error("cannot open " + images_path);
  std::ifstream labels(labels_path, std::ios::binary);
  if (!labels) throw std::runtime_error("cannot open " + labels_path);

  if (read_be32(images) != 0x00000803U) throw std::runtime_error("not an IDX3 image file");
  const std::uint32_t n_images = read_be32(images);
  const std::uint32_t rows = read_be32(images);
  const std::uint32_t cols = read_be32(images);

  if (read_be32(labels) != 0x00000801U) throw std::runtime_error("not an IDX1 label file");
  const std::uint32_t n_labels = read_be32(labels);
  if (n_images != n_labels) throw std::runtime_error("IDX image/label count mismatch");

  const std::size_t dim = static_cast<std::size_t>(rows) * cols;
  const auto pixels = read_payload(images, static_cast<std::size_t>(n_images) * dim);
  const auto raw_labels = read_payload(labels, n_labels);

  Dataset out;
  out.features = tensor::Matrix(n_images, dim);
  out.labels.resize(n_labels);
  for (std::size_t i = 0; i < n_images; ++i) {
    auto row = out.features.row(i);
    for (std::size_t j = 0; j < dim; ++j) {
      row[j] = static_cast<float>(pixels[i * dim + j]) / 255.0f;
    }
    if (raw_labels[i] > 9) throw std::runtime_error("IDX label out of range");
    out.labels[i] = raw_labels[i];
  }
  return out;
}

std::optional<MnistData> load_mnist_dir(const std::string& dir) {
  namespace fs = std::filesystem;
  const fs::path base(dir);
  const fs::path train_images = base / "train-images-idx3-ubyte";
  const fs::path train_labels = base / "train-labels-idx1-ubyte";
  const fs::path test_images = base / "t10k-images-idx3-ubyte";
  const fs::path test_labels = base / "t10k-labels-idx1-ubyte";
  for (const auto& p : {train_images, train_labels, test_images, test_labels}) {
    if (!fs::exists(p)) return std::nullopt;
  }
  MnistData data;
  data.train = load_idx_pair(train_images.string(), train_labels.string());
  data.test = load_idx_pair(test_images.string(), test_labels.string());
  return data;
}

}  // namespace abdhfl::data
