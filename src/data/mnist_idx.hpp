#pragma once
// Loader for the IDX file format used by the original MNIST distribution
// (LeCun et al.).  When the four standard files are present in a directory,
// every experiment binary can be pointed at the real dataset via
// --mnist-dir; otherwise the synthetic generator is used.

#include <optional>
#include <string>

#include "data/dataset.hpp"

namespace abdhfl::data {

/// Load an IDX3 image file + IDX1 label file pair.  Pixels are scaled to
/// [0,1].  Throws std::runtime_error on malformed files.
[[nodiscard]] Dataset load_idx_pair(const std::string& images_path,
                                    const std::string& labels_path);

struct MnistData {
  Dataset train;
  Dataset test;
};

/// Load train-images-idx3-ubyte / train-labels-idx1-ubyte /
/// t10k-images-idx3-ubyte / t10k-labels-idx1-ubyte from `dir`.
/// Returns nullopt if any file is missing (caller falls back to synth).
[[nodiscard]] std::optional<MnistData> load_mnist_dir(const std::string& dir);

}  // namespace abdhfl::data
