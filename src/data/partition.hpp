#pragma once
// Client data partitioners reproducing the two distributions of the paper's
// Appendix D.A:
//
//  * IID — every label's samples are shuffled and dealt equally to all
//    clients, so each client sees all ten classes.
//  * Extreme non-IID — equal shard sizes but each client holds only
//    `labels_per_client` (2 in the paper) classes, with the assignment
//    constructed so that any designated "honest" subset of clients still
//    covers all labels ("a special design is set in the code to ensure that
//    honest participants as a whole cover all ten labels").

#include <cstddef>
#include <vector>

#include "data/dataset.hpp"
#include "util/rng.hpp"

namespace abdhfl::data {

/// Equal-size IID shards; all samples are used (remainder spread over the
/// first shards).
[[nodiscard]] std::vector<Dataset> partition_iid(const Dataset& all, std::size_t clients,
                                                 util::Rng& rng);

struct NonIidConfig {
  std::size_t clients = 64;
  std::size_t labels_per_client = 2;
  /// Client indices guaranteed to jointly cover every label.  The harness
  /// passes the honest clients here, matching the paper's special design.
  std::vector<std::size_t> must_cover_clients;
};

/// Extreme non-IID shards per the paper's setup.  Throws if the coverage
/// guarantee is impossible (too few covering clients for the class count).
[[nodiscard]] std::vector<Dataset> partition_noniid(const Dataset& all,
                                                    const NonIidConfig& config,
                                                    util::Rng& rng);

/// Label sets actually present in each shard (for tests / diagnostics).
[[nodiscard]] std::vector<std::vector<std::uint8_t>> shard_label_sets(
    const std::vector<Dataset>& shards);

/// True when the union of the given shards' labels covers [0, classes).
[[nodiscard]] bool shards_cover_all_labels(const std::vector<Dataset>& shards,
                                           const std::vector<std::size_t>& which,
                                           std::size_t classes);

}  // namespace abdhfl::data
