#include "data/partition.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace abdhfl::data {

std::vector<Dataset> partition_iid(const Dataset& all, std::size_t clients, util::Rng& rng) {
  if (clients == 0) throw std::invalid_argument("partition_iid: zero clients");
  // Per Appendix D.A: shuffle each label's samples, then deal them out so
  // every client sees every class in roughly the original proportions.
  auto by_class = all.indices_by_class();
  std::vector<std::vector<std::size_t>> shard_indices(clients);
  std::size_t next_client = 0;
  for (auto& class_indices : by_class) {
    rng.shuffle(class_indices);
    for (std::size_t idx : class_indices) {
      shard_indices[next_client].push_back(idx);
      next_client = (next_client + 1) % clients;
    }
  }
  std::vector<Dataset> shards;
  shards.reserve(clients);
  for (auto& indices : shard_indices) {
    rng.shuffle(indices);
    shards.push_back(all.subset(indices));
  }
  return shards;
}

std::vector<Dataset> partition_noniid(const Dataset& all, const NonIidConfig& config,
                                      util::Rng& rng) {
  const std::size_t clients = config.clients;
  const std::size_t lpc = config.labels_per_client;
  const std::size_t classes = all.num_classes();
  if (clients == 0 || lpc == 0) throw std::invalid_argument("partition_noniid: bad config");
  if (!config.must_cover_clients.empty() &&
      config.must_cover_clients.size() * lpc < classes) {
    throw std::invalid_argument(
        "partition_noniid: covering clients have too few label slots to span all classes");
  }
  for (std::size_t c : config.must_cover_clients) {
    if (c >= clients) throw std::invalid_argument("partition_noniid: covering client out of range");
  }

  // --- Step 1: decide which labels each client holds. -----------------------
  // Balanced slot budget per label.
  const std::size_t total_slots = clients * lpc;
  std::vector<std::size_t> remaining(classes, total_slots / classes);
  for (std::size_t l = 0; l < total_slots % classes; ++l) ++remaining[l];

  std::vector<std::vector<std::uint8_t>> held(clients);
  auto has_label = [&](std::size_t c, std::uint8_t l) {
    return std::find(held[c].begin(), held[c].end(), l) != held[c].end();
  };

  // Coverage pre-pass: walk labels and pin each onto a covering client, so
  // the honest cohort spans all classes no matter what the random fill does.
  if (!config.must_cover_clients.empty()) {
    std::size_t cursor = 0;
    for (std::size_t l = 0; l < classes; ++l) {
      const auto label = static_cast<std::uint8_t>(l);
      bool placed = false;
      for (std::size_t tries = 0; tries < config.must_cover_clients.size(); ++tries) {
        const std::size_t c = config.must_cover_clients[cursor];
        cursor = (cursor + 1) % config.must_cover_clients.size();
        if (held[c].size() < lpc && !has_label(c, label) && remaining[l] > 0) {
          held[c].push_back(label);
          --remaining[l];
          placed = true;
          break;
        }
      }
      if (!placed) {
        throw std::logic_error("partition_noniid: could not satisfy label coverage");
      }
    }
  }

  // Random fill: clients in random order repeatedly take the most plentiful
  // label they do not already hold (ties broken by label id after a shuffle
  // of inspection order via rng).
  std::vector<std::size_t> order(clients);
  for (std::size_t i = 0; i < clients; ++i) order[i] = i;
  rng.shuffle(order);
  for (std::size_t c : order) {
    while (held[c].size() < lpc) {
      std::size_t best = classes;  // sentinel
      for (std::size_t l = 0; l < classes; ++l) {
        if (remaining[l] == 0) continue;
        if (has_label(c, static_cast<std::uint8_t>(l))) continue;
        if (best == classes || remaining[l] > remaining[best]) best = l;
      }
      if (best == classes) {
        // Every label with budget left is already held; allow a duplicate
        // slot (the client simply gets a double share of that label).
        for (std::size_t l = 0; l < classes; ++l) {
          if (remaining[l] > 0) {
            best = l;
            break;
          }
        }
      }
      if (best == classes) {
        throw std::logic_error("partition_noniid: slot budget exhausted early");
      }
      held[c].push_back(static_cast<std::uint8_t>(best));
      --remaining[best];
    }
  }

  // --- Step 2: split each label's samples across its slot holders. ----------
  auto by_class = all.indices_by_class();
  std::vector<std::vector<std::size_t>> shard_indices(clients);
  for (std::size_t l = 0; l < classes; ++l) {
    std::vector<std::size_t> holders;  // a client appears once per slot
    for (std::size_t c = 0; c < clients; ++c) {
      for (std::uint8_t hl : held[c]) {
        if (hl == l) holders.push_back(c);
      }
    }
    if (holders.empty()) continue;  // label unused (possible if classes > slots)
    auto& indices = by_class[l];
    rng.shuffle(indices);
    for (std::size_t i = 0; i < indices.size(); ++i) {
      shard_indices[holders[i % holders.size()]].push_back(indices[i]);
    }
  }

  std::vector<Dataset> shards;
  shards.reserve(clients);
  for (auto& indices : shard_indices) {
    rng.shuffle(indices);
    shards.push_back(all.subset(indices));
  }
  return shards;
}

std::vector<std::vector<std::uint8_t>> shard_label_sets(const std::vector<Dataset>& shards) {
  std::vector<std::vector<std::uint8_t>> sets;
  sets.reserve(shards.size());
  for (const auto& shard : shards) {
    std::set<std::uint8_t> labels(shard.labels.begin(), shard.labels.end());
    sets.emplace_back(labels.begin(), labels.end());
  }
  return sets;
}

bool shards_cover_all_labels(const std::vector<Dataset>& shards,
                             const std::vector<std::size_t>& which, std::size_t classes) {
  std::set<std::uint8_t> seen;
  for (std::size_t idx : which) {
    if (idx >= shards.size()) throw std::out_of_range("shards_cover_all_labels: bad index");
    seen.insert(shards[idx].labels.begin(), shards[idx].labels.end());
  }
  for (std::size_t l = 0; l < classes; ++l) {
    if (!seen.contains(static_cast<std::uint8_t>(l))) return false;
  }
  return true;
}

}  // namespace abdhfl::data
