#include "consensus/rotation.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace abdhfl::consensus::rotation {

namespace {

/// splitmix64: the deterministic hash behind the election-timeout draw.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

const char* to_string(Role role) noexcept {
  switch (role) {
    case Role::kFollower: return "follower";
    case Role::kCandidate: return "candidate";
    case Role::kLeader: return "leader";
  }
  return "unknown";
}

const char* to_string(EntryType type) noexcept {
  switch (type) {
    case EntryType::kView: return "view";
    case EntryType::kModelCommit: return "model_commit";
    case EntryType::kMemberJoin: return "member_join";
    case EntryType::kMemberLeave: return "member_leave";
    case EntryType::kMemberEvict: return "member_evict";
  }
  return "unknown";
}

const char* to_string(ViewReason reason) noexcept {
  switch (reason) {
    case ViewReason::kNone: return "none";
    case ViewReason::kElected: return "elected";
    case ViewReason::kLeaderLost: return "leader_lost";
    case ViewReason::kMemberJoin: return "member_join";
    case ViewReason::kMemberLeave: return "member_leave";
    case ViewReason::kMemberEvict: return "member_evict";
  }
  return "unknown";
}

Node::Node(Config config) : config_(std::move(config)) {
  if (config_.members.empty()) {
    throw std::invalid_argument("rotation: empty committee");
  }
  std::sort(config_.members.begin(), config_.members.end());
  if (std::find(config_.members.begin(), config_.members.end(), config_.self) ==
      config_.members.end()) {
    throw std::invalid_argument("rotation: self is not a committee member");
  }
  if (config_.election_max_s <= config_.election_min_s) {
    config_.election_max_s = config_.election_min_s + config_.heartbeat_s;
  }
  next_index_.assign(config_.members.size(), 1);
  match_index_.assign(config_.members.size(), 0);
}

std::size_t Node::majority() const noexcept { return config_.members.size() / 2 + 1; }

std::uint64_t Node::term_at(std::uint64_t index) const noexcept {
  if (index == 0 || index > log_.size()) return 0;
  return log_[static_cast<std::size_t>(index) - 1].term;
}

double Node::draw_timeout(double now) const {
  const double span = config_.election_max_s - config_.election_min_s;
  double u;
  if (term_ == 0) {
    // First election: rank-staggered, so a quiet cluster deterministically
    // elects the lowest-ranked member (it times out strictly first).
    const auto rank = static_cast<double>(
        std::find(config_.members.begin(), config_.members.end(), config_.self) -
        config_.members.begin());
    u = rank / static_cast<double>(config_.members.size());
  } else {
    u = static_cast<double>(mix64(config_.seed ^ (config_.self * 0x51ED2701ULL) ^
                                  (term_ + 1)) >>
                            11) /
        static_cast<double>(1ULL << 53);
  }
  return now + config_.election_min_s + u * span;
}

void Node::reset_election_timer(double now) { election_deadline_ = draw_timeout(now); }

void Node::start(double now) {
  reset_election_timer(now);
  // A committee of one has nobody to wait for.
  if (config_.members.size() == 1) election_deadline_ = now;
}

void Node::send(NodeId to, net::Payload payload) {
  outbox_.push_back({to, std::move(payload)});
}

std::vector<Outgoing> Node::take_outbox() {
  std::vector<Outgoing> out;
  out.swap(outbox_);
  return out;
}

void Node::tick(double now) {
  if (role_ != Role::kLeader && now >= election_deadline_) {
    if (leader_ != kNoLeader) adopt_leader(kNoLeader, ViewReason::kLeaderLost);
    start_election(now);
  }
  if (role_ == Role::kLeader) {
    maybe_append_queued_membership();
    if (now >= heartbeat_at_) replicate(now, /*force=*/true);
  }
}

void Node::start_election(double now) {
  ++term_;
  role_ = Role::kCandidate;
  voted_for_ = config_.self;
  votes_.clear();
  votes_.insert(config_.self);
  reset_election_timer(now);
  if (votes_.size() >= majority()) {  // single-member committee
    become_leader(now);
    return;
  }
  net::VoteRequest req;
  req.term = term_;
  req.candidate = config_.self;
  req.last_log_index = last_index();
  req.last_log_term = term_at(last_index());
  for (const NodeId peer : config_.members) {
    if (peer != config_.self) send(peer, req);
  }
}

void Node::step_down(std::uint64_t term, double now) {
  term_ = term;
  role_ = Role::kFollower;
  voted_for_ = kNoLeader;
  votes_.clear();
  reset_election_timer(now);
}

void Node::adopt_leader(NodeId leader, ViewReason reason) {
  if (leader_ == leader) return;
  leader_ = leader;
  view_reason_ = reason;
  if (reason == ViewReason::kElected) ++elections_;
  if (on_leader_change) on_leader_change(term_, leader_, reason);
}

void Node::become_leader(double now) {
  role_ = Role::kLeader;
  // Proposals queued during an earlier leadership stint are stale — the
  // owner re-derives pending membership from its own buffers on election.
  membership_queue_.clear();
  for (std::size_t i = 0; i < config_.members.size(); ++i) {
    next_index_[i] = last_index() + 1;
    match_index_[i] = config_.members[i] == config_.self ? last_index() : 0;
  }
  adopt_leader(config_.self, ViewReason::kElected);
  // The no-op view entry: committing it (at this term) commits every
  // prior-term entry beneath it — Raft's rule that a leader never counts
  // replicas of old-term entries directly.
  net::RaftLogEntry view;
  view.term = term_;
  view.index = last_index() + 1;
  view.type = static_cast<std::uint16_t>(EntryType::kView);
  view.round = term_;
  log_.push_back(std::move(view));
  advance_commit();  // single-member committee commits instantly
  heartbeat_at_ = now;
  replicate(now, /*force=*/true);
}

void Node::on_vote_request(const net::VoteRequest& m, double now) {
  if (m.term > term_) step_down(m.term, now);
  bool grant = false;
  if (m.term == term_ && role_ != Role::kLeader &&
      (voted_for_ == kNoLeader || voted_for_ == m.candidate)) {
    // Up-to-dateness restriction: never elect a log that is behind ours —
    // this is what keeps committed model entries alive across failovers.
    const std::uint64_t our_last_term = term_at(last_index());
    grant = m.last_log_term > our_last_term ||
            (m.last_log_term == our_last_term && m.last_log_index >= last_index());
  }
  if (grant) {
    voted_for_ = m.candidate;
    reset_election_timer(now);
  }
  net::VoteReply reply;
  reply.term = term_;
  reply.voter = config_.self;
  reply.granted = grant ? 1 : 0;
  send(m.candidate, reply);
}

void Node::on_vote_reply(const net::VoteReply& m, double now) {
  if (m.term > term_) {
    step_down(m.term, now);
    return;
  }
  if (role_ != Role::kCandidate || m.term != term_ || m.granted == 0) return;
  votes_.insert(m.voter);
  if (votes_.size() >= majority()) become_leader(now);
}

void Node::on_append_entries(net::AppendEntries& m, double now) {
  if (m.term < term_) {
    net::Heartbeat nack;
    nack.term = term_;
    nack.node = config_.self;
    nack.ack = 1;
    nack.success = 0;
    nack.commit_index = commit_;
    nack.match_index = last_index();
    send(m.leader, nack);
    return;
  }
  if (m.term > term_ || role_ != Role::kFollower) step_down(m.term, now);
  reset_election_timer(now);
  adopt_leader(m.leader, ViewReason::kElected);

  net::Heartbeat reply;
  reply.term = term_;
  reply.node = config_.self;
  reply.ack = 1;
  if (m.prev_log_index > last_index() ||
      term_at(m.prev_log_index) != m.prev_log_term) {
    reply.success = 0;
    reply.commit_index = commit_;
    reply.match_index = std::min(last_index(), m.prev_log_index);
    send(m.leader, reply);
    return;
  }
  std::uint64_t index = m.prev_log_index;
  for (net::RaftLogEntry& entry : m.entries) {
    ++index;
    if (index <= last_index()) {
      if (term_at(index) == entry.term) continue;  // already have it
      // Conflicting suffix from a deposed leader: truncate, then append.
      log_.resize(static_cast<std::size_t>(index) - 1);
    }
    entry.index = index;
    log_.push_back(std::move(entry));
  }
  if (m.commit_index > commit_) {
    commit_ = std::min(m.commit_index, last_index());
    apply_committed();
  }
  reply.success = 1;
  reply.commit_index = commit_;
  reply.match_index = index;
  send(m.leader, reply);
}

void Node::on_heartbeat(const net::Heartbeat& m, double now) {
  if (m.term > term_) step_down(m.term, now);
  if (m.ack == 0) {
    // Leader keepalive.  Keepalives only flow to fully-matched followers
    // (the leader probes with AppendEntries until match == last), so
    // advancing commit from one is safe.
    if (m.term != term_ || role_ == Role::kLeader) return;
    if (role_ == Role::kCandidate) step_down(m.term, now);
    reset_election_timer(now);
    adopt_leader(m.node, ViewReason::kElected);
    if (m.commit_index > commit_) {
      commit_ = std::min(m.commit_index, last_index());
      apply_committed();
    }
    // Ack the keepalive so the leader can see how far this follower has
    // committed — what lets it hold its own shutdown until the final commit
    // index has propagated to every live member.
    net::Heartbeat ack;
    ack.term = term_;
    ack.node = config_.self;
    ack.ack = 1;
    ack.success = 1;
    ack.commit_index = commit_;
    ack.match_index = last_index();
    send(m.node, ack);
    return;
  }
  // Follower ack.
  if (role_ != Role::kLeader || m.term != term_) return;
  const auto it =
      std::find(config_.members.begin(), config_.members.end(), m.node);
  if (it == config_.members.end()) return;
  const auto i = static_cast<std::size_t>(it - config_.members.begin());
  if (m.success != 0) {
    match_index_[i] = std::max(match_index_[i], m.match_index);
    next_index_[i] = match_index_[i] + 1;
    advance_commit();
  } else {
    // Fast log backoff: jump straight behind the follower's last index.
    next_index_[i] = std::max<std::uint64_t>(
        1, std::min(next_index_[i] > 1 ? next_index_[i] - 1 : 1, m.match_index + 1));
    send_to_peer(m.node, now);
  }
}

void Node::on_peer_loss(NodeId peer, double now) {
  if (role_ != Role::kLeader && peer == leader_ && leader_ != kNoLeader) {
    // The leader's link died: no reason to sit out the remaining timeout.
    adopt_leader(kNoLeader, ViewReason::kLeaderLost);
    election_deadline_ = now;
  }
}

void Node::send_to_peer(NodeId peer, double now) {
  const auto it = std::find(config_.members.begin(), config_.members.end(), peer);
  if (it == config_.members.end() || peer == config_.self) return;
  const auto i = static_cast<std::size_t>(it - config_.members.begin());
  if (match_index_[i] >= last_index()) {
    net::Heartbeat beat;
    beat.term = term_;
    beat.node = config_.self;
    beat.ack = 0;
    beat.commit_index = commit_;
    send(peer, beat);
    return;
  }
  net::AppendEntries append;
  append.term = term_;
  append.leader = config_.self;
  append.prev_log_index = next_index_[i] - 1;
  append.prev_log_term = term_at(append.prev_log_index);
  append.commit_index = commit_;
  const auto first = static_cast<std::size_t>(next_index_[i]) - 1;
  const std::size_t count =
      std::min(config_.max_batch, log_.size() - std::min(first, log_.size()));
  append.entries.assign(log_.begin() + static_cast<std::ptrdiff_t>(first),
                        log_.begin() + static_cast<std::ptrdiff_t>(first + count));
  send(peer, std::move(append));
  (void)now;
}

void Node::replicate(double now, bool force) {
  if (role_ != Role::kLeader) return;
  if (!force && now < heartbeat_at_) return;
  for (const NodeId peer : config_.members) {
    if (peer != config_.self) send_to_peer(peer, now);
  }
  heartbeat_at_ = now + config_.heartbeat_s;
}

std::uint64_t Node::append_model_commit(std::uint64_t round, std::vector<float> params,
                                        std::uint64_t digest, std::uint64_t inputs) {
  if (role_ != Role::kLeader) return 0;
  net::RaftLogEntry entry;
  entry.term = term_;
  entry.index = last_index() + 1;
  entry.type = static_cast<std::uint16_t>(EntryType::kModelCommit);
  entry.round = round;
  entry.samples = inputs;
  entry.digest = digest;
  entry.params = std::move(params);
  log_.push_back(std::move(entry));
  advance_commit();  // single-member committee commits instantly
  return last_index();
}

void Node::propose_membership(net::RaftLogEntry entry) {
  if (role_ != Role::kLeader) return;
  membership_queue_.push_back(std::move(entry));
  maybe_append_queued_membership();
}

bool Node::membership_in_flight() const noexcept {
  // A QUEUED change counts too: the caller must not close a quorum between
  // one view change committing and the next entering the log, or a joiner
  // whose admission is already accepted would silently miss the round.
  return !membership_queue_.empty() || membership_uncommitted();
}

bool Node::membership_uncommitted() const noexcept {
  for (std::uint64_t i = commit_ + 1; i <= last_index(); ++i) {
    const auto type =
        static_cast<EntryType>(log_[static_cast<std::size_t>(i) - 1].type);
    if (type == EntryType::kMemberJoin || type == EntryType::kMemberLeave ||
        type == EntryType::kMemberEvict) {
      return true;
    }
  }
  return false;
}

void Node::maybe_append_queued_membership() {
  if (role_ != Role::kLeader) return;
  // Single-change-at-a-time view changes: the next queued membership entry
  // enters the log only after every previous one committed, so no two view
  // changes are ever concurrently in flight across a leader change.
  while (!membership_queue_.empty() && !membership_uncommitted()) {
    net::RaftLogEntry entry = std::move(membership_queue_.front());
    membership_queue_.pop_front();
    entry.term = term_;
    entry.index = last_index() + 1;
    log_.push_back(std::move(entry));
    advance_commit();  // single-member committee commits instantly
  }
}

void Node::advance_commit() {
  if (role_ != Role::kLeader) return;
  const auto self_it =
      std::find(config_.members.begin(), config_.members.end(), config_.self);
  match_index_[static_cast<std::size_t>(self_it - config_.members.begin())] =
      last_index();
  for (std::uint64_t n = last_index(); n > commit_; --n) {
    if (term_at(n) != term_) break;  // only own-term entries commit by count
    std::size_t replicas = 0;
    for (const std::uint64_t match : match_index_) {
      if (match >= n) ++replicas;
    }
    if (replicas >= majority()) {
      commit_ = n;
      break;
    }
  }
  apply_committed();
  // The commit may have been the membership change the queue was waiting
  // on: admit the next one NOW.  Waiting for the next tick would leave a
  // window where nothing is in flight and a round could close without a
  // joiner that is already accepted.
  maybe_append_queued_membership();
}

void Node::apply_committed() {
  while (applied_ < commit_) {
    ++applied_;
    const net::RaftLogEntry& entry = log_[static_cast<std::size_t>(applied_) - 1];
    switch (static_cast<EntryType>(entry.type)) {
      case EntryType::kMemberJoin: view_reason_ = ViewReason::kMemberJoin; break;
      case EntryType::kMemberLeave: view_reason_ = ViewReason::kMemberLeave; break;
      case EntryType::kMemberEvict: view_reason_ = ViewReason::kMemberEvict; break;
      default: break;
    }
    if (on_commit) on_commit(entry);
  }
}

}  // namespace abdhfl::consensus::rotation
