#include "consensus/gossip.hpp"

#include <cmath>
#include <stdexcept>

#include "net/wire.hpp"
#include "tensor/ops.hpp"

namespace abdhfl::consensus {

GossipAverage::GossipAverage(GossipConfig config) : config_(config) {
  if (config_.epsilon <= 0.0 || config_.max_rounds == 0) {
    throw std::invalid_argument("GossipAverage: bad config");
  }
}

ConsensusResult GossipAverage::agree(const std::vector<ModelVec>& candidates,
                                     const Evaluator&, const std::vector<bool>& byzantine,
                                     util::Rng& rng) {
  const std::size_t n = candidates.size();
  if (n == 0) throw std::invalid_argument("GossipAverage: no candidates");
  if (byzantine.size() != n) throw std::invalid_argument("GossipAverage: mask size");
  const std::size_t dim = tensor::checked_common_size(candidates);

  ConsensusResult result;
  result.accepted.assign(n, true);  // gossip filters nothing
  if (n == 1) {
    result.model = candidates.front();
    result.success = true;
    return result;
  }

  std::vector<ModelVec> state = candidates;
  auto diameter = [&] {
    double d = 0.0;
    for (std::size_t a = 0; a < n; ++a) {
      if (byzantine[a]) continue;
      for (std::size_t b = a + 1; b < n; ++b) {
        if (byzantine[b]) continue;
        for (std::size_t k = 0; k < dim; ++k) {
          d = std::max(d, std::abs(static_cast<double>(state[a][k]) - state[b][k]));
        }
      }
    }
    return d;
  };

  // At least one exchange round always happens: without communicating, no
  // node can know the group already agrees.
  last_rounds_ = 0;
  for (std::size_t round = 0; round < config_.max_rounds; ++round) {
    if (round > 0 && diameter() <= config_.epsilon) {
      result.success = true;
      break;
    }
    ++last_rounds_;
    // One push-pull pairwise exchange per node per round.
    for (std::size_t i = 0; i < n; ++i) {
      std::size_t peer = static_cast<std::size_t>(rng.below(n - 1));
      if (peer >= i) ++peer;
      result.messages += 2;  // push + pull
      result.model_bytes += 2 * net::model_update_wire_size(dim);

      // A Byzantine participant never moves: it keeps gossiping its own
      // (malicious) vector, dragging the average toward it.
      for (std::size_t k = 0; k < dim; ++k) {
        const float avg = 0.5f * (state[i][k] + state[peer][k]);
        if (!byzantine[i]) state[i][k] = avg;
        if (!byzantine[peer]) state[peer][k] = avg;
      }
    }
  }
  if (!result.success && diameter() <= config_.epsilon) result.success = true;

  // An honest node's final vector stands in for the group outcome.
  for (std::size_t i = 0; i < n; ++i) {
    if (!byzantine[i]) {
      result.model = state[i];
      return result;
    }
  }
  result.model = state.front();
  result.success = false;
  return result;
}

}  // namespace abdhfl::consensus
