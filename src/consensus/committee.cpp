#include "consensus/committee.hpp"

#include <algorithm>
#include <stdexcept>

#include "net/wire.hpp"
#include "tensor/ops.hpp"

namespace abdhfl::consensus {

CommitteeConsensus::CommitteeConsensus(CommitteeConfig config) : config_(config) {
  if (config_.committee_size == 0) {
    throw std::invalid_argument("CommitteeConsensus: empty committee");
  }
  if (config_.margin < 0.0) throw std::invalid_argument("CommitteeConsensus: margin");
}

ConsensusResult CommitteeConsensus::agree(const std::vector<ModelVec>& candidates,
                                          const Evaluator& eval,
                                          const std::vector<bool>& byzantine, util::Rng&) {
  const std::size_t n = candidates.size();
  if (n == 0) throw std::invalid_argument("CommitteeConsensus: no candidates");
  if (byzantine.size() != n) throw std::invalid_argument("CommitteeConsensus: mask size");
  const std::size_t dim = tensor::checked_common_size(candidates);
  const std::size_t c = std::min(config_.committee_size, n);

  // Deterministic rotation: committee = members salt, salt+1, ... (mod n).
  std::vector<std::size_t> committee(c);
  for (std::size_t k = 0; k < c; ++k) {
    committee[k] = (config_.round_salt + k) % n;
  }

  ConsensusResult result;
  // Each member sends its candidate to every committee member; each
  // committee member broadcasts its votes back to the whole group.
  result.messages = static_cast<std::uint64_t>(n) * c + static_cast<std::uint64_t>(c) * n;
  result.model_bytes = static_cast<std::uint64_t>(n) * c * net::model_update_wire_size(dim);
  result.vote_bytes = static_cast<std::uint64_t>(c) * n * net::vote_wire_size();

  std::vector<std::size_t> upvotes(n, 0);
  for (std::size_t member : committee) {
    std::vector<double> scores(n);
    double best = -1e300;
    for (std::size_t cand = 0; cand < n; ++cand) {
      scores[cand] = eval(member, candidates[cand]);
      best = std::max(best, scores[cand]);
    }
    for (std::size_t cand = 0; cand < n; ++cand) {
      bool up = scores[cand] >= best - config_.margin;
      if (byzantine[member]) up = !up;
      if (up) ++upvotes[cand];
    }
  }

  result.accepted.assign(n, false);
  std::vector<ModelVec> kept;
  for (std::size_t cand = 0; cand < n; ++cand) {
    if (2 * upvotes[cand] > c) {  // strict majority
      result.accepted[cand] = true;
      kept.push_back(candidates[cand]);
    }
  }
  if (kept.empty()) {
    // Majority rejected everything (e.g. Byzantine-dominated committee):
    // consensus fails; fall back to the full mean so the caller still has a
    // model, but flag the failure.
    result.model = tensor::mean_of(candidates);
    result.success = false;
    return result;
  }
  result.model = tensor::mean_of(kept);
  result.success = true;
  return result;
}

}  // namespace abdhfl::consensus
