#include "consensus/multidim.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "net/wire.hpp"
#include "tensor/ops.hpp"

namespace abdhfl::consensus {

MultiDimConsensus::MultiDimConsensus(MultiDimConfig config) : config_(config) {
  if (config_.epsilon <= 0.0 || config_.max_rounds == 0 || config_.spoof_magnitude <= 0.0) {
    throw std::invalid_argument("MultiDimConsensus: bad config");
  }
}

ConsensusResult MultiDimConsensus::agree(const std::vector<ModelVec>& candidates,
                                         const Evaluator&,
                                         const std::vector<bool>& byzantine,
                                         util::Rng& rng) {
  const std::size_t n = candidates.size();
  if (n == 0) throw std::invalid_argument("MultiDimConsensus: no candidates");
  if (byzantine.size() != n) throw std::invalid_argument("MultiDimConsensus: mask size");
  const std::size_t dim = tensor::checked_common_size(candidates);
  const std::size_t f = max_faulty(n);

  std::vector<std::size_t> honest_ids;
  for (std::size_t i = 0; i < n; ++i) {
    if (!byzantine[i]) honest_ids.push_back(i);
  }

  ConsensusResult result;
  result.accepted.assign(n, true);

  // Degenerate group: everyone Byzantine — return the plain mean, flagged.
  if (honest_ids.empty()) {
    result.model = tensor::mean_of(candidates);
    result.success = false;
    return result;
  }

  // Initial all-to-all distribution of the candidates (needed before any
  // node can even evaluate the group's diameter).
  result.messages += static_cast<std::uint64_t>(n) * (n - 1);
  result.model_bytes += static_cast<std::uint64_t>(n) * (n - 1) * net::model_update_wire_size(dim);

  std::vector<ModelVec> state = candidates;
  auto honest_diameter = [&] {
    double diameter = 0.0;
    for (std::size_t a = 0; a < honest_ids.size(); ++a) {
      for (std::size_t b = a + 1; b < honest_ids.size(); ++b) {
        const auto& va = state[honest_ids[a]];
        const auto& vb = state[honest_ids[b]];
        for (std::size_t k = 0; k < dim; ++k) {
          diameter = std::max(diameter, std::abs(static_cast<double>(va[k]) - vb[k]));
        }
      }
    }
    return diameter;
  };

  last_rounds_ = 0;
  std::vector<float> column(n);
  std::vector<ModelVec> next(n);
  for (std::size_t round = 0; round < config_.max_rounds; ++round) {
    if (honest_diameter() <= config_.epsilon) {
      result.success = true;
      break;
    }
    ++last_rounds_;

    // All-to-all exchange: n(n-1) model-sized messages.
    result.messages += static_cast<std::uint64_t>(n) * (n - 1);
    result.model_bytes += static_cast<std::uint64_t>(n) * (n - 1) * net::model_update_wire_size(dim);

    // Honest update: per-coordinate trimmed mean with f trimmed per side.
    // Byzantine senders EQUIVOCATE — each receiver gets its own adversarial
    // extreme (alternating sign per receiver/round), which is exactly what
    // makes multidimensional agreement require multiple contraction rounds.
    for (std::size_t i : honest_ids) {
      next[i].assign(dim, 0.0f);
      for (std::size_t k = 0; k < dim; ++k) {
        for (std::size_t j = 0; j < n; ++j) {
          if (!byzantine[j]) {
            column[j] = state[j][k];
          } else {
            const double sign = (round + i + j) % 2 == 0 ? 1.0 : -1.0;
            column[j] = static_cast<float>(sign * config_.spoof_magnitude *
                                           (0.5 + rng.uniform()));
          }
        }
        std::sort(column.begin(), column.end());
        double acc = 0.0;
        const std::size_t keep = n - 2 * std::min(f, (n - 1) / 2);
        const std::size_t lo = (n - keep) / 2;
        for (std::size_t j = lo; j < lo + keep; ++j) acc += column[j];
        next[i][k] = static_cast<float>(acc / static_cast<double>(keep));
      }
    }
    for (std::size_t i : honest_ids) state[i] = next[i];
  }
  if (!result.success && honest_diameter() <= config_.epsilon) result.success = true;

  std::vector<ModelVec> finals;
  finals.reserve(honest_ids.size());
  for (std::size_t i : honest_ids) finals.push_back(state[i]);
  result.model = tensor::mean_of(finals);
  return result;
}

}  // namespace abdhfl::consensus
