#pragma once
// Voting-based consensus of Appendix D.B, inspired by the PoS-style model
// validation of Chen et al. (2021).
//
// Each group member evaluates every candidate on its own validation shard
// and upvotes the candidates scoring within `margin` of the best score it
// observed.  "The partial models that receive the fewest number of positive
// votes are considered malicious, and are excluded": candidates whose upvote
// count does not clear keep_fraction of the group are dropped (all of them,
// however many — this is what lets the top level reject several poisoned
// subtree models at once); the survivors are averaged.  At least the
// best-voted candidate always survives.
//
// Byzantine voters vote adversarially (invert every vote).  With four top
// nodes and majority keeping, a single adversarial voter cannot save a bad
// candidate nor kill a good one — the paper's γ1 = 25%.

#include "consensus/consensus.hpp"

namespace abdhfl::consensus {

struct VotingConfig {
  double keep_fraction = 0.5;  // candidate needs > this fraction of upvotes
  double margin = 0.05;        // tolerated score gap below a voter's best
};

class VotingConsensus final : public ConsensusProtocol {
 public:
  explicit VotingConsensus(VotingConfig config = {});

  ConsensusResult agree(const std::vector<ModelVec>& candidates, const Evaluator& eval,
                        const std::vector<bool>& byzantine, util::Rng& rng) override;
  [[nodiscard]] std::string name() const override { return "voting"; }

  [[nodiscard]] const VotingConfig& config() const noexcept { return config_; }

 private:
  VotingConfig config_;
};

}  // namespace abdhfl::consensus
