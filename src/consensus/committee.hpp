#pragma once
// Committee-based consensus (Li et al., IEEE Network 2021): a rotating
// subset of the group validates candidates; a candidate is accepted when a
// strict majority of the committee upvotes it.  Cheaper than all-to-all
// voting (traffic scales with committee size, not group size squared).

#include "consensus/consensus.hpp"

namespace abdhfl::consensus {

struct CommitteeConfig {
  std::size_t committee_size = 3;  // clamped to the group size
  double margin = 0.05;            // same relative-score vote rule as voting
  std::uint64_t round_salt = 0;    // rotates committee membership per round
};

class CommitteeConsensus final : public ConsensusProtocol {
 public:
  explicit CommitteeConsensus(CommitteeConfig config = {});

  ConsensusResult agree(const std::vector<ModelVec>& candidates, const Evaluator& eval,
                        const std::vector<bool>& byzantine, util::Rng& rng) override;
  [[nodiscard]] std::string name() const override { return "committee"; }

  void set_round_salt(std::uint64_t salt) noexcept { config_.round_salt = salt; }

 private:
  CommitteeConfig config_;
};

}  // namespace abdhfl::consensus
