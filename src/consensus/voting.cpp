#include "consensus/voting.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "net/wire.hpp"
#include "obs/blackbox.hpp"
#include "tensor/ops.hpp"

namespace abdhfl::consensus {

VotingConsensus::VotingConsensus(VotingConfig config) : config_(config) {
  if (config_.margin < 0.0) throw std::invalid_argument("VotingConsensus: negative margin");
  if (config_.keep_fraction < 0.0 || config_.keep_fraction >= 1.0) {
    throw std::invalid_argument("VotingConsensus: keep_fraction out of [0,1)");
  }
}

ConsensusResult VotingConsensus::agree(const std::vector<ModelVec>& candidates,
                                       const Evaluator& eval,
                                       const std::vector<bool>& byzantine, util::Rng&) {
  const std::size_t n = candidates.size();
  if (n == 0) throw std::invalid_argument("VotingConsensus: no candidates");
  if (byzantine.size() != n) throw std::invalid_argument("VotingConsensus: mask size");
  const std::size_t dim = tensor::checked_common_size(candidates);

  ConsensusResult result;
  // Every member broadcasts its candidate to all others, then broadcasts its
  // vote vector: n(n-1) model transfers + n(n-1) vote messages.
  result.messages = 2 * static_cast<std::uint64_t>(n) * (n - 1);
  result.model_bytes =
      static_cast<std::uint64_t>(n) * (n - 1) * net::model_update_wire_size(dim);
  result.vote_bytes =
      static_cast<std::uint64_t>(n) * (n - 1) * net::vote_wire_size();

  std::vector<std::size_t> upvotes(n, 0);
  std::vector<double> mean_score(n, 0.0);  // tie-breaking on exclusion
  for (std::size_t voter = 0; voter < n; ++voter) {
    std::vector<double> scores(n);
    double best = -1e300;
    for (std::size_t c = 0; c < n; ++c) {
      scores[c] = eval(voter, candidates[c]);
      best = std::max(best, scores[c]);
    }
    for (std::size_t c = 0; c < n; ++c) {
      bool up = scores[c] >= best - config_.margin;
      if (byzantine[voter]) up = !up;  // adversarial voting
      if (up) ++upvotes[c];
      mean_score[c] += scores[c];
    }
  }
  for (double& s : mean_score) s /= static_cast<double>(n);

  // Keep candidates clearing the upvote threshold; the fewest-voted ones are
  // the "considered malicious" set of Appendix D.B.
  const double need = config_.keep_fraction * static_cast<double>(n);
  result.accepted.assign(n, false);
  for (std::size_t c = 0; c < n; ++c) {
    result.accepted[c] = static_cast<double>(upvotes[c]) > need;
  }
  if (obs::blackbox::armed()) {
    // One flight-recorder event per candidate verdict: code = accepted,
    // a = upvotes received, b = electorate size.
    for (std::size_t c = 0; c < n; ++c) {
      obs::blackbox::record(obs::blackbox::EventType::kVote,
                            result.accepted[c] ? 1 : 0,
                            static_cast<std::uint32_t>(c), 0, upvotes[c], n);
    }
  }
  // Never drop everything: fall back to the best-voted candidate (ties by
  // average score).
  if (std::none_of(result.accepted.begin(), result.accepted.end(),
                   [](bool b) { return b; })) {
    std::size_t best = 0;
    for (std::size_t c = 1; c < n; ++c) {
      if (upvotes[c] > upvotes[best] ||
          (upvotes[c] == upvotes[best] && mean_score[c] > mean_score[best])) {
        best = c;
      }
    }
    result.accepted[best] = true;
  }

  std::vector<ModelVec> kept;
  for (std::size_t c = 0; c < n; ++c) {
    if (result.accepted[c]) kept.push_back(candidates[c]);
  }
  result.model = tensor::mean_of(kept);
  result.success = true;
  return result;
}

}  // namespace abdhfl::consensus
