#include "consensus/pbft.hpp"

#include <algorithm>
#include <stdexcept>

#include "net/wire.hpp"
#include "obs/blackbox.hpp"
#include "tensor/ops.hpp"

namespace abdhfl::consensus {

PbftConsensus::PbftConsensus(PbftConfig config) : config_(config) {
  if (config_.max_views == 0) throw std::invalid_argument("PbftConsensus: max_views == 0");
  if (config_.margin < 0.0) throw std::invalid_argument("PbftConsensus: margin");
}

ConsensusResult PbftConsensus::agree(const std::vector<ModelVec>& candidates,
                                     const Evaluator& eval,
                                     const std::vector<bool>& byzantine, util::Rng&) {
  const std::size_t n = candidates.size();
  if (n == 0) throw std::invalid_argument("PbftConsensus: no candidates");
  if (byzantine.size() != n) throw std::invalid_argument("PbftConsensus: mask size");
  const std::size_t dim = tensor::checked_common_size(candidates);
  const std::size_t quorum = 2 * max_faulty(n) + 1;

  ConsensusResult result;
  result.accepted.assign(n, false);

  // Per-replica candidate scores (each replica evaluates everything once,
  // reused across views).
  std::vector<std::vector<double>> score(n, std::vector<double>(n));
  std::vector<double> best(n, -1e300);
  for (std::size_t v = 0; v < n; ++v) {
    for (std::size_t c = 0; c < n; ++c) {
      score[v][c] = eval(v, candidates[c]);
      best[v] = std::max(best[v], score[v][c]);
    }
  }

  for (std::size_t view = 0; view < config_.max_views; ++view) {
    result.views = view + 1;
    const std::size_t leader = (config_.round_salt + view) % n;

    // --- Leader builds a proposal. ---------------------------------------
    std::vector<bool> proposal_set(n, false);
    ModelVec proposal;
    if (byzantine[leader]) {
      // Worst candidate by the leader's own scores (adversarial proposal).
      std::size_t worst = 0;
      for (std::size_t c = 1; c < n; ++c) {
        if (score[leader][c] < score[leader][worst]) worst = c;
      }
      proposal = candidates[worst];
      proposal_set[worst] = true;
    } else {
      std::vector<ModelVec> kept;
      for (std::size_t c = 0; c < n; ++c) {
        if (score[leader][c] >= best[leader] - config_.margin) {
          kept.push_back(candidates[c]);
          proposal_set[c] = true;
        }
      }
      if (kept.empty()) kept = candidates;
      proposal = tensor::mean_of(kept);
    }

    // --- Three phases, with traffic accounting. --------------------------
    result.messages += static_cast<std::uint64_t>(n - 1);           // pre-prepare
    result.messages += 2 * static_cast<std::uint64_t>(n) * (n - 1);  // prepare+commit
    result.model_bytes += static_cast<std::uint64_t>(n - 1) * net::model_update_wire_size(dim);
    result.vote_bytes += 2 * static_cast<std::uint64_t>(n) * (n - 1) * net::vote_wire_size();

    // Replica vote: honest replicas accept a proposal scoring near their own
    // best; Byzantine replicas accept only bad proposals.
    std::size_t commits = 0;
    for (std::size_t v = 0; v < n; ++v) {
      const double s = eval(v, proposal);
      const bool honest_accept = s >= best[v] - config_.margin;
      const bool votes_yes = byzantine[v] ? !honest_accept : honest_accept;
      if (votes_yes) ++commits;
    }
    obs::blackbox::record(obs::blackbox::EventType::kVote,
                          commits >= quorum ? 1 : 0, 0, view, commits, quorum);
    if (commits >= quorum) {
      result.model = std::move(proposal);
      result.accepted = proposal_set;
      result.success = true;
      return result;
    }
    // View change: accounted as one more all-to-all round of control traffic.
    result.messages += static_cast<std::uint64_t>(n) * (n - 1);
  }

  // No view succeeded; surface the failure with a safe fallback model.
  result.model = tensor::mean_of(candidates);
  result.success = false;
  return result;
}

}  // namespace abdhfl::consensus
