#pragma once
// Device-to-device gossip averaging — the intra-cluster D2D aggregation of
// the related work (MH-FL, FL-EOCD, TT-HF): cluster members repeatedly
// exchange and average models pairwise until the group converges to the
// common mean, *without* a leader.
//
// This protocol is deliberately NOT Byzantine-robust: it converges to the
// average of whatever the members keep injecting, so a single adversary
// that keeps gossiping a malicious vector biases the outcome exactly as it
// would bias a mean — the "main drawback" the paper's related-work section
// points out, and a useful negative control next to the robust CBA
// protocols.  It IS cheap: traffic is O(rounds · n), not O(rounds · n²).

#include "consensus/consensus.hpp"

namespace abdhfl::consensus {

struct GossipConfig {
  double epsilon = 1e-4;        // stop when the honest diameter is below this
  std::size_t max_rounds = 256; // pairwise-exchange rounds
};

class GossipAverage final : public ConsensusProtocol {
 public:
  explicit GossipAverage(GossipConfig config = {});

  ConsensusResult agree(const std::vector<ModelVec>& candidates, const Evaluator& eval,
                        const std::vector<bool>& byzantine, util::Rng& rng) override;
  [[nodiscard]] std::string name() const override { return "gossip"; }

  [[nodiscard]] std::size_t last_rounds() const noexcept { return last_rounds_; }

 private:
  GossipConfig config_;
  std::size_t last_rounds_ = 0;
};

}  // namespace abdhfl::consensus
