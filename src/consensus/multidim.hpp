#pragma once
// Multidimensional Byzantine approximate agreement (Table II's second
// consensus family: Mendes-Herlihy multidimensional agreement and its
// polynomial relaxations such as (ε,p)-relaxed BVC).
//
// Simulated synchronous-round protocol: every node keeps a vector (its
// candidate model), all-to-all exchanges it each round, and updates each
// coordinate to the trimmed mean of the received values with f = ⌊(n-1)/3⌋
// trimmed per side.  Byzantine nodes inject adversarial extremes each round
// (alternating ±spoof per coordinate) trying to stall convergence; the
// per-coordinate trimming discards them whenever n >= 3f+1, so the honest
// vectors contract geometrically into an ε-ball inside the per-coordinate
// hull of the honest inputs — the validity + ε-agreement guarantees of the
// literature.
//
// The returned model is the average of the honest nodes' final vectors
// (all within ε of each other on success).

#include "consensus/consensus.hpp"

namespace abdhfl::consensus {

struct MultiDimConfig {
  double epsilon = 1e-3;        // agreement diameter target (L-inf)
  std::size_t max_rounds = 64;  // give up (success=false) beyond this
  double spoof_magnitude = 1e3; // scale of the adversarial extremes
};

class MultiDimConsensus final : public ConsensusProtocol {
 public:
  explicit MultiDimConsensus(MultiDimConfig config = {});

  ConsensusResult agree(const std::vector<ModelVec>& candidates, const Evaluator& eval,
                        const std::vector<bool>& byzantine, util::Rng& rng) override;
  [[nodiscard]] std::string name() const override { return "multidim"; }

  /// Exchange rounds the last agree() used.
  [[nodiscard]] std::size_t last_rounds() const noexcept { return last_rounds_; }

  /// Classic asynchronous-agreement resilience bound: f = ⌊(n-1)/3⌋.
  [[nodiscard]] static std::size_t max_faulty(std::size_t n) noexcept {
    return n == 0 ? 0 : (n - 1) / 3;
  }

 private:
  MultiDimConfig config_;
  std::size_t last_rounds_ = 0;
};

}  // namespace abdhfl::consensus
