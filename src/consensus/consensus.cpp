#include "consensus/consensus.hpp"

#include <stdexcept>

#include "consensus/committee.hpp"
#include "consensus/gossip.hpp"
#include "consensus/multidim.hpp"
#include "consensus/pbft.hpp"
#include "consensus/voting.hpp"

namespace abdhfl::consensus {

std::unique_ptr<ConsensusProtocol> make_consensus(const std::string& name) {
  if (name == "voting") return std::make_unique<VotingConsensus>();
  if (name == "committee") return std::make_unique<CommitteeConsensus>();
  if (name == "pbft") return std::make_unique<PbftConsensus>();
  if (name == "multidim") return std::make_unique<MultiDimConsensus>();
  if (name == "gossip") return std::make_unique<GossipAverage>();
  throw std::invalid_argument("unknown consensus protocol: " + name);
}

const std::vector<std::string>& consensus_names() {
  static const std::vector<std::string> names = {"voting", "committee", "pbft",
                                                 "multidim", "gossip"};
  return names;
}

}  // namespace abdhfl::consensus
