#pragma once
// PBFT-style scalar consensus over a proposed aggregate (Castro & Liskov
// three-phase pattern, as used by blockchain-FL frameworks in Table II).
//
// The view's leader validates candidates on its own shard, proposes the
// mean of those it accepts, and the replicas run prepare/commit: a replica
// prepares iff the proposal scores within `margin` of the best candidate it
// evaluated itself.  A Byzantine leader proposes the *worst* candidate it
// can find; honest replicas then refuse to prepare, the view times out, and
// leadership rotates.  Agreement requires 2f+1 commits with f =
// floor((n-1)/3), the classic bound.
//
// Message accounting per view: n-1 pre-prepares + n(n-1) prepares +
// n(n-1) commits, with model payloads only on the pre-prepare.

#include "consensus/consensus.hpp"

namespace abdhfl::consensus {

struct PbftConfig {
  double margin = 0.05;        // validation slack, as in the other protocols
  std::size_t max_views = 8;   // give up (success=false) after this many
  std::uint64_t round_salt = 0;  // initial leader = salt % n
};

class PbftConsensus final : public ConsensusProtocol {
 public:
  explicit PbftConsensus(PbftConfig config = {});

  ConsensusResult agree(const std::vector<ModelVec>& candidates, const Evaluator& eval,
                        const std::vector<bool>& byzantine, util::Rng& rng) override;
  [[nodiscard]] std::string name() const override { return "pbft"; }

  void set_round_salt(std::uint64_t salt) noexcept { config_.round_salt = salt; }

  /// Classic tolerance: f = floor((n-1)/3).
  [[nodiscard]] static std::size_t max_faulty(std::size_t n) noexcept {
    return n == 0 ? 0 : (n - 1) / 3;
  }

 private:
  PbftConfig config_;
};

}  // namespace abdhfl::consensus
