#pragma once
// Leader-rotation consensus for the top cluster (DESIGN.md §15).
//
// A Raft-flavored election + replicated-log state machine in the style of
// Asgard/libasraft: heartbeat-driven failure detection with randomized
// election timeouts, monotonic terms, follower/candidate/leader roles, and a
// replicated log whose entries are term-stamped global-model commits and
// first-class membership changes (join/leave/evict, one change in flight at
// a time).  Any member that wins an election holds every committed model
// entry — the vote up-to-dateness restriction guarantees it — so the new
// leader can serve the last agreed global model bitwise-identically.
//
// The class is transport-agnostic and clock-agnostic: the owner feeds it
// decoded wire messages plus a monotonic `now`, pumps tick(), and drains
// take_outbox() — every protocol decision is a pure function of (inputs,
// now, seed), which is what makes elections unit-testable without sockets
// and the loopback failover drill deterministic.  Election timeouts are
// drawn from a hash of (seed, self, term), with the lowest-ranked member
// getting the shortest first-term timeout so a quiet cluster elects member
// rank 0 first, deterministically.
//
// Scope: the top-cluster membership itself (Config::members) is static —
// the paper's leader-rotating top cluster is a small fixed committee.  What
// churns is the *worker* membership below it, and that churn is exactly
// what the kMemberJoin/kMemberLeave/kMemberEvict log entries carry: every
// top node applies the same committed view in the same order, which is what
// replaces RootNode's ad-hoc rejoin path with an agreed one.

#include <cstdint>
#include <deque>
#include <functional>
#include <set>
#include <vector>

#include "net/wire.hpp"

namespace abdhfl::consensus::rotation {

using net::NodeId;

enum class Role : std::uint8_t { kFollower = 0, kCandidate = 1, kLeader = 2 };

/// Replicated-log entry taxonomy (RaftLogEntry::type).
enum class EntryType : std::uint16_t {
  kView = 0,         // no-op a new leader appends to commit prior-term entries
  kModelCommit = 1,  // round's aggregated global model (digest + params)
  kMemberJoin = 2,   // worker joined (samples + negotiated codec ride along)
  kMemberLeave = 3,  // worker said goodbye
  kMemberEvict = 4,  // worker lost (transport peer loss at the leader)
};

/// Why the view last changed (StatusReply::view_reason).
enum class ViewReason : std::uint8_t {
  kNone = 0,
  kElected = 1,      // a leader won an election
  kLeaderLost = 2,   // the known leader stopped heartbeating / its link died
  kMemberJoin = 3,   // a membership-join entry committed
  kMemberLeave = 4,  // a membership-leave entry committed
  kMemberEvict = 5,  // a membership-evict entry committed
};

[[nodiscard]] const char* to_string(Role role) noexcept;
[[nodiscard]] const char* to_string(EntryType type) noexcept;
[[nodiscard]] const char* to_string(ViewReason reason) noexcept;

/// Sentinel for "no known leader".
inline constexpr NodeId kNoLeader = 0xFFFFFFFFu;

struct Config {
  NodeId self = 0;
  std::vector<NodeId> members;  // the whole committee, self included
  std::uint64_t seed = 1;       // election-timeout determinism
  double heartbeat_s = 0.05;    // leader keepalive period
  double election_min_s = 0.25;  // randomized timeout lower bound
  double election_max_s = 0.50;  // randomized timeout upper bound
  std::size_t max_batch = 4;     // log entries per AppendEntries frame
};

/// One protocol frame the owner must put on the wire.
struct Outgoing {
  NodeId to = 0;
  net::Payload payload;
};

class Node {
 public:
  explicit Node(Config config);

  /// Arm the timers; call once with the current monotonic time before the
  /// first tick().  A single-member committee elects itself immediately.
  void start(double now);

  // -- inputs (decoded frames + time) ---------------------------------------

  /// Drive timers: election timeouts, leader heartbeats, queued membership
  /// proposals.  Call between transport polls.
  void tick(double now);
  void on_vote_request(const net::VoteRequest& m, double now);
  void on_vote_reply(const net::VoteReply& m, double now);
  /// Moves the entries out of `m` on acceptance.
  void on_append_entries(net::AppendEntries& m, double now);
  void on_heartbeat(const net::Heartbeat& m, double now);
  /// Transport-level peer loss (EOF/RST): losing the current leader's link
  /// short-circuits the election timeout — failover starts on the next tick.
  void on_peer_loss(NodeId peer, double now);

  // -- leader API -----------------------------------------------------------

  /// Append a round's aggregated model (leader only).  Returns the entry's
  /// log index, 0 when this node is not the leader.  `inputs` (the number of
  /// updates folded) rides the entry's samples field so every member can
  /// report it.  The owner must NOT act on the model until on_commit
  /// delivers the entry back.
  std::uint64_t append_model_commit(std::uint64_t round, std::vector<float> params,
                                    std::uint64_t digest, std::uint64_t inputs = 0);

  /// Queue a membership change (leader only; ignored otherwise).  View
  /// changes are single-change-at-a-time: the next queued entry is appended
  /// only once every previously appended membership entry has committed.
  void propose_membership(net::RaftLogEntry entry);

  /// True while an appended membership entry awaits commit.
  [[nodiscard]] bool membership_in_flight() const noexcept;

  // -- observers ------------------------------------------------------------

  [[nodiscard]] Role role() const noexcept { return role_; }
  [[nodiscard]] bool is_leader() const noexcept { return role_ == Role::kLeader; }
  [[nodiscard]] std::uint64_t term() const noexcept { return term_; }
  [[nodiscard]] NodeId leader() const noexcept { return leader_; }
  [[nodiscard]] std::uint64_t commit_index() const noexcept { return commit_; }
  [[nodiscard]] std::uint64_t last_index() const noexcept { return log_.size(); }
  [[nodiscard]] const std::vector<net::RaftLogEntry>& log() const noexcept {
    return log_;
  }
  [[nodiscard]] ViewReason last_view_reason() const noexcept { return view_reason_; }
  /// Elections this node has observed conclude (own wins + adopted leaders).
  [[nodiscard]] std::uint64_t elections_seen() const noexcept { return elections_; }

  // -- callbacks (set before start()) ---------------------------------------

  /// Applied exactly once per committed entry, in log order, on every member.
  std::function<void(const net::RaftLogEntry&)> on_commit;
  /// The view's leader changed: a win, an adoption, or a loss (kNoLeader).
  std::function<void(std::uint64_t term, NodeId leader, ViewReason reason)>
      on_leader_change;

  /// Drain the frames generated since the last call.
  [[nodiscard]] std::vector<Outgoing> take_outbox();

 private:
  [[nodiscard]] std::size_t majority() const noexcept;
  [[nodiscard]] std::uint64_t term_at(std::uint64_t index) const noexcept;
  [[nodiscard]] double draw_timeout(double now) const;
  void reset_election_timer(double now);
  void start_election(double now);
  void become_leader(double now);
  void step_down(std::uint64_t term, double now);
  void adopt_leader(NodeId leader, ViewReason reason);
  void replicate(double now, bool force);
  void send_to_peer(NodeId peer, double now);
  void advance_commit();
  void apply_committed();
  void maybe_append_queued_membership();
  [[nodiscard]] bool membership_uncommitted() const noexcept;
  void send(NodeId to, net::Payload payload);

  Config config_;
  Role role_ = Role::kFollower;
  std::uint64_t term_ = 0;
  NodeId leader_ = kNoLeader;
  NodeId voted_for_ = kNoLeader;
  std::set<NodeId> votes_;
  std::vector<net::RaftLogEntry> log_;
  std::uint64_t commit_ = 0;
  std::uint64_t applied_ = 0;
  // Leader bookkeeping, rebuilt on every election win.
  std::vector<std::uint64_t> next_index_;   // parallel to config_.members
  std::vector<std::uint64_t> match_index_;
  std::deque<net::RaftLogEntry> membership_queue_;
  double election_deadline_ = 0.0;
  double heartbeat_at_ = 0.0;
  ViewReason view_reason_ = ViewReason::kNone;
  std::uint64_t elections_ = 0;
  std::vector<Outgoing> outbox_;
};

}  // namespace abdhfl::consensus::rotation
