#pragma once
// Consensus-based aggregation (CBA) protocols from Table II.
//
// A consensus group is a cluster (the leaderless top-level cluster C_{0,0}
// in scheme 1, or any intermediate cluster in schemes 2/4).  Every member i
// submits a candidate model; the protocol decides which candidates are
// accepted and returns the agreed aggregate.  Byzantine members participate
// in the protocol adversarially: they invert votes and, when leading, make
// malicious proposals — the simulation needs to know who is Byzantine to
// *behave* them, never to filter them (filtering must come from the
// protocol itself).
//
// All protocols meter their traffic: CBA is the expensive-but-robust arm of
// the scheme comparison (Table III/IV), so message and byte counts are part
// of the result.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "agg/aggregator.hpp"
#include "util/rng.hpp"

namespace abdhfl::consensus {

using agg::ModelVec;

/// eval(voter, model) -> score (higher is better), e.g. validation accuracy
/// of `model` on voter's held-out shard (Appendix D.B splits the test set
/// evenly across the top-level nodes so votes are meaningful).
using Evaluator = std::function<double(std::size_t voter, const ModelVec& model)>;

struct ConsensusResult {
  ModelVec model;                 // agreed aggregate
  std::vector<bool> accepted;     // per candidate: survived filtering
  std::uint64_t messages = 0;     // protocol messages exchanged
  /// Wire bytes of model-carrying frames (net::model_update_wire_size per
  /// transfer — real codec framing, not the bare parameter blob).
  std::uint64_t model_bytes = 0;
  /// Wire bytes of vote/ack frames (net::vote_wire_size each).
  std::uint64_t vote_bytes = 0;
  bool success = false;           // protocol reached agreement
  std::size_t views = 1;          // leader changes + 1 (PBFT only)
};

class ConsensusProtocol {
 public:
  virtual ~ConsensusProtocol() = default;

  /// candidates[i] was submitted by group member i; byzantine[i] marks
  /// members whose protocol behaviour is adversarial.  Sizes must match.
  [[nodiscard]] virtual ConsensusResult agree(const std::vector<ModelVec>& candidates,
                                              const Evaluator& eval,
                                              const std::vector<bool>& byzantine,
                                              util::Rng& rng) = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Build by name: "voting", "committee", "pbft".
[[nodiscard]] std::unique_ptr<ConsensusProtocol> make_consensus(const std::string& name);

[[nodiscard]] const std::vector<std::string>& consensus_names();

}  // namespace abdhfl::consensus
