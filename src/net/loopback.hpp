#pragma once
// In-process transport backend.
//
// Frames are fully encoded and decoded on every hop — the loopback differs
// from TCP only in where the bytes travel, so traffic accounting, codec
// behaviour, and corruption detection are identical across backends (the
// property the distributed runner's bitwise-equivalence check relies on).
// Delivery funnels through the shared Transport::deliver_frame tail, so the
// zero-copy raw-handler path (FrameView spans into the queued frame) and the
// per-link delta bases behave exactly like the socket backend.
//
// Two delivery modes:
//   * standalone — frames queue in FIFO order and are delivered on poll();
//     FIFO order is what makes the delta codec safe here;
//   * simulator-backed — frames ride sim::Network as Message payloads, so
//     the latency models and the discrete-event clock apply and the sim's
//     per-link-class byte meters report *real encoded* frame sizes instead
//     of caller estimates.  Delivery then happens inside Simulator::run().
//     Latency models may reorder frames, so the delta codec must not be
//     negotiated over a sim-backed loopback (DESIGN.md §11).

#include <deque>
#include <unordered_map>

#include "net/transport.hpp"

namespace abdhfl::sim {
class Network;
class Simulator;
}

namespace abdhfl::net {

class LoopbackTransport : public Transport {
 public:
  /// Standalone FIFO delivery.
  LoopbackTransport();

  /// Ride the simulated network: send() forwards encoded frames through
  /// `network` (which meters them and applies its latency model) and
  /// delivery happens when the simulator fires the event.  Callers must keep
  /// both alive for the transport's lifetime.
  LoopbackTransport(sim::Simulator& simulator, sim::Network& network);

  void register_node(NodeId id, MessageHandler handler) override;
  SendStatus send(const Envelope& env, const Payload& payload,
                  std::uint32_t link_class = 0) override;
  std::size_t poll(double timeout_s) override;

  /// Bytes queued for delivery on `link_class` (standalone mode; sim-backed
  /// delivery queues inside the simulator, which meters its own links).
  [[nodiscard]] std::uint64_t backlog_bytes(std::uint32_t link_class) const override;

 private:
  void deliver(const std::vector<std::uint8_t>& frame, std::uint32_t link_class);

  sim::Simulator* simulator_ = nullptr;
  sim::Network* network_ = nullptr;
  std::unordered_map<NodeId, MessageHandler> handlers_;
  std::deque<std::pair<std::vector<std::uint8_t>, std::uint32_t>> queue_;
  // Reused encode staging (capacity persists across sends; handlers never
  // run inside send(), so a single scratch is safe).
  EncodedParts tx_parts_;
};

}  // namespace abdhfl::net
