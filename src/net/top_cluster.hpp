#pragma once
// Leader-rotating top cluster (DESIGN.md §15).
//
// N co-equal TopClusterNodes replace the single RootNode: they elect a
// leader among themselves with the consensus::rotation protocol and the
// LEADER plays the classic root — it gates the join phase, collects the
// round's worker updates in ascending id order, aggregates with the root
// rule, and broadcasts the result.  The difference is durability: the
// aggregated model is NOT broadcast until it has been replicated and
// committed through the rotation log, so when the leader dies at any
// instant, the member that wins the next election holds every committed
// round bitwise-identically and the federation resumes inside the round
// it stalled in:
//
//   1. the new leader re-broadcasts the last COMMITTED global model — a
//      worker that missed the dead leader's broadcast merges it now, a
//      worker that already merged it ignores the stale round;
//   2. it echoes every committed member's join with the current collection
//      round — the re-targeting handshake.  A worker that already trained
//      this round answers with a bitwise RESEND of its update (never a
//      retrain: retraining would advance the RNG streams), a worker that
//      just caught up trains normally;
//   3. collection re-arms and the round completes under the new term.
//
// Worker membership is first-class: joins, leaves and evictions are
// replicated log entries (one view change in flight at a time), carrying
// the subtree samples and the negotiated per-link codec, so EVERY member —
// not just whoever handled the handshake — can adopt a worker the moment
// it becomes leader.  This replaces the classic root's ad-hoc rejoin path:
// a worker rejoining under a new leader is echoed the committed round, not
// a stale one.

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "agg/aggregator.hpp"
#include "consensus/rotation.hpp"
#include "net/node.hpp"
#include "net/transport.hpp"

namespace abdhfl::net {

class TopClusterNode {
 public:
  /// `transport` must outlive the node; the node registers itself under
  /// top_node_id(top_index) and expects links to every other committee
  /// member plus every worker (workers dial all tops).
  TopClusterNode(FederationConfig config, std::size_t top_index, Transport& transport,
                 obs::Recorder* recorder = nullptr);

  /// Arm the election timers.  Committee rank 0 deterministically wins the
  /// first term on a quiet cluster; the join gate then runs as the classic
  /// root's does.
  void start();
  /// Drive timers (elections, heartbeats, join/round deadlines); call
  /// between poll()s.
  void on_idle();

  [[nodiscard]] bool done() const noexcept { return phase_ == Phase::kDone; }
  [[nodiscard]] const RootResult& result() const noexcept { return result_; }

  // -- consensus observers ----------------------------------------------------
  [[nodiscard]] std::uint64_t term() const noexcept { return raft_.term(); }
  [[nodiscard]] NodeId leader() const noexcept { return raft_.leader(); }
  [[nodiscard]] bool is_leader() const noexcept { return raft_.is_leader(); }
  [[nodiscard]] std::uint64_t commit_index() const noexcept {
    return raft_.commit_index();
  }
  [[nodiscard]] std::uint64_t elections_seen() const noexcept {
    return raft_.elections_seen();
  }
  [[nodiscard]] consensus::rotation::ViewReason last_view_reason() const noexcept {
    return raft_.last_view_reason();
  }
  /// The replicated log (membership audit trail + committed models).
  [[nodiscard]] const std::vector<RaftLogEntry>& log() const noexcept {
    return raft_.log();
  }
  [[nodiscard]] std::size_t rounds_run() const noexcept { return round_; }

 private:
  enum class Phase { kJoining, kTraining, kFinishing, kDone };

  void on_message(WireMessage& msg);
  void on_peer_loss(NodeId peer);
  /// Put every frame the rotation state machine generated on the wire.
  void flush_raft();
  [[nodiscard]] std::size_t expected_initial() const noexcept;
  [[nodiscard]] bool join_gate_met(double now) const;
  /// Leader only: propose a membership entry unless one for `subject` is
  /// already queued or in flight.
  void propose_membership(consensus::rotation::EntryType type, NodeId subject,
                          const Membership* member);
  /// Applied-committed-entry dispatcher (fires on every member, in log order).
  void apply_entry(const RaftLogEntry& entry);
  void on_leader_change(std::uint64_t term, NodeId leader,
                        consensus::rotation::ViewReason reason);
  /// Leader only, after winning an election or meeting the join gate:
  /// re-broadcast the last committed model, echo every member's join with
  /// the current round, re-arm collection.
  void start_or_resume_training();
  void echo_join(NodeId worker, std::size_t round);
  void maybe_aggregate();
  void maybe_finish();
  void finish_now();
  void reply_status(const StatusRequest& request, NodeId to);
  void record_view(const char* reason_key, double reason, NodeId member);

  FederationConfig config_;
  std::size_t index_;
  NodeId id_;
  Transport& transport_;
  obs::Recorder* recorder_;
  FederationData data_;
  std::unique_ptr<agg::Aggregator> rule_;
  consensus::rotation::Node raft_;
  Phase phase_ = Phase::kJoining;
  bool started_training_ = false;
  std::vector<float> global_;  // last committed global model
  std::size_t round_ = 0;      // round currently being collected
  double join_deadline_ = 0.0;
  double round_deadline_ = 0.0;
  // Committed worker view (identical on every member, rebuilt from the log).
  std::set<NodeId> live_;
  std::set<NodeId> left_;
  std::map<NodeId, std::uint64_t> joined_;  // ever-joined -> subtree samples
  // Local (uncommitted) buffers.
  std::map<NodeId, Membership> pending_joins_;  // broadcast joins seen
  std::set<NodeId> leaving_;                    // leave received, not committed
  std::set<NodeId> proposal_inflight_;          // membership proposed, uncommitted
  std::set<NodeId> lost_workers_;               // links died, eviction not committed
  std::map<NodeId, std::vector<float>> pending_;  // round's updates (leader)
  std::map<NodeId, std::uint64_t> peer_commit_;   // followers' applied progress
  std::set<NodeId> dead_tops_;
  RootResult result_;
};

}  // namespace abdhfl::net
