#pragma once
// POSIX TCP transport backend.
//
// One TcpTransport hosts exactly one federation node.  Links are ordinary
// stream sockets: children dial their parent (connect_peer, with retry and
// exponential backoff per RetryPolicy) and the parent learns each child's
// node id from the first frame that arrives on the accepted connection — no
// separate handshake beyond the codec's own framing.
//
// The transport is poll-driven and single-threaded like every other backend:
// poll() multiplexes the listen socket and all peer links through a
// level-triggered epoll Reactor (net/reactor.hpp) — the kernel owns the
// interest set, so a tick costs O(ready) rather than O(peers) — then
// accepts, reads into per-peer rx rings, reassembles frames via
// peek_frame_size, and runs handlers on the calling thread.  The receive hot
// path is zero-copy: recv() lands directly in the preallocated RxRing and
// frames are dispatched as FrameView spans into it — no per-frame buffer, no
// decode-and-copy unless the destination's handler needs an owned message.
// send() is scatter-gather: the frame leaves as sendmsg() iovecs over the
// encoder's head/payload/tail segments, so a dense model update's float
// bytes go from the training buffer to the socket without ever being
// concatenated into a staging vector.  A failed write on a dialable link
// triggers reconnect attempts under the same policy (connects are
// nonblocking with a poll()-bounded wait, so an unresponsive host cannot
// stall the loop for the OS SYN timeout), and a link that stays dead is
// reported once through the peer-loss handler so the churn layer can remove
// the subtree (graceful degradation instead of a crash).  An accepted socket
// that re-identifies as a peer that already had a link fires the
// peer-reconnect handler before its frames are delivered, which is how a
// parent re-admits a member it wrote off after a transient drop.
//
// Any link reset (drop, redial, reconnect) clears the delta-codec bases for
// that peer on both directions — an in-flight send re-encodes dense after a
// redial, so a delta frame can never arrive on a connection whose receiver
// lost the base.
//
// Corrupt input never propagates: a frame the codec rejects bumps
// decode_errors and drops the connection (stream framing cannot resync on
// garbage), which surfaces as a peer loss upstream.

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "net/reactor.hpp"
#include "net/rx_ring.hpp"
#include "net/transport.hpp"

namespace abdhfl::net {

class TcpTransport : public Transport {
 public:
  explicit TcpTransport(NodeId self, RetryPolicy policy = {});
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  /// Bind and listen on `port` (0 = pick an ephemeral port); returns the
  /// bound port.  Throws std::system_error on failure.
  std::uint16_t listen(std::uint16_t port);

  /// Dial `peer` with the retry/backoff policy.  The address is remembered
  /// so a later send() can re-establish a dropped link.  Returns false when
  /// every attempt failed (the peer is then reported lost).
  bool connect_peer(NodeId peer, const std::string& host, std::uint16_t port);

  /// Traffic-accounting bucket for frames received from `peer` (sends carry
  /// their class explicitly).  Defaults to 0.
  void set_peer_link_class(NodeId peer, std::uint32_t link_class);

  void register_node(NodeId id, MessageHandler handler) override;
  void expect_close(NodeId peer) override;
  void mark_transient(NodeId peer) override;
  /// Redial a lost peer we originally dialed (a restarted parent listening
  /// on the same address).  True when the link is connected again.
  bool revive_peer(NodeId peer) override;
  SendStatus send(const Envelope& env, const Payload& payload,
                  std::uint32_t link_class = 0) override;
  std::size_t poll(double timeout_s) override;

  /// Close every socket.  Safe to call more than once; the destructor calls
  /// it too.
  void close();

  [[nodiscard]] NodeId self() const noexcept { return self_; }
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Bytes sitting unparsed in the rx rings of peers on `link_class` — the
  /// receive-side queue depth a status probe or dist_* record reports.
  [[nodiscard]] std::uint64_t backlog_bytes(std::uint32_t link_class) const override;

 private:
  struct Peer {
    int fd = -1;
    std::string host;         // empty for inbound links (cannot redial)
    std::uint16_t port = 0;
    std::uint32_t link_class = 0;
    RxRing rx;
    bool lost = false;       // reported dead; further sends fail fast
    bool transient = false;  // observer link: EOF is expected, not churn
  };

  [[nodiscard]] bool dial(NodeId id, Peer& peer);  // one connect pass with retries
  void drop_peer(NodeId id, Peer& peer, bool report);
  /// Drain readable bytes; returns frames delivered, marks `lost` on EOF or
  /// a framing error.
  std::size_t read_peer(NodeId id, Peer& peer);
  /// Parse and dispatch every complete frame in the peer's ring.  Frames are
  /// validated first (FrameView::parse) and dispatched second, as spans into
  /// the ring: handlers may reentrantly reset the ring (redial, drop), which
  /// keeps the memory alive but bumps its generation — the final consume is
  /// skipped when that happened.
  std::size_t drain_ring(Peer& peer, bool& framing_ok);
  void accept_pending();
  std::size_t read_pending(std::size_t index);

  /// Map a live peer socket into fd_peer_ and the reactor's interest set;
  /// untrack_fd undoes both (call it BEFORE ::close).
  void track_peer_fd(NodeId id, int fd);
  void untrack_fd(int fd);

  NodeId self_;
  RetryPolicy policy_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  MessageHandler handler_;
  std::map<NodeId, Peer> peers_;

  // Readiness reactor: the kernel holds the interest set (registered at
  // listen/dial/accept, dropped at close), so poll() touches only ready
  // descriptors instead of rebuilding an O(peers) pollfd vector per tick.
  Reactor reactor_;
  std::map<int, NodeId> fd_peer_;  // live peer sockets only (not pending)
  // Reused per-tick scratch so a steady-state poll() allocates nothing.
  std::vector<int> ready_fds_;
  std::vector<int> ready_pending_;
  std::vector<std::pair<NodeId, int>> ready_peers_;

  // Reused encode staging: capacity persists across sends, so steady-state
  // encode is allocation-free.  Safe as a member because handlers never run
  // inside send().
  EncodedParts tx_parts_;

  // Accepted connections whose node id is still unknown (first frame not yet
  // complete); fd plus its partial receive buffer.
  struct PendingConn {
    int fd = -1;
    std::vector<std::uint8_t> rx;
  };
  std::vector<PendingConn> pending_;
};

}  // namespace abdhfl::net
