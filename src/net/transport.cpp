#include "net/transport.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

#include "obs/blackbox.hpp"
#include "obs/metrics.hpp"
#include "obs/record.hpp"
#include "obs/trace.hpp"

namespace abdhfl::net {

const char* to_string(SendStatus status) noexcept {
  switch (status) {
    case SendStatus::kOk: return "ok";
    case SendStatus::kNoRoute: return "no_route";
    case SendStatus::kTimeout: return "timeout";
    case SendStatus::kPeerLost: return "peer_lost";
  }
  return "unknown";
}

double RetryPolicy::backoff_for(std::size_t retry) const noexcept {
  const double backoff =
      initial_backoff_s * std::pow(backoff_factor, static_cast<double>(retry));
  return std::min(backoff, max_backoff_s);
}

Transport::Transport(std::string name) : name_(std::move(name)) {}

Codec Transport::codec_for(NodeId peer) const {
  const auto it = peer_codec_.find(peer);
  return it == peer_codec_.end() ? Codec{} : it->second;
}

void Transport::reset_codec_state(NodeId peer) {
  const auto touches = [peer](const auto& entry) {
    return entry.first.first == peer || entry.first.second == peer;
  };
  std::erase_if(tx_state_, touches);
  std::erase_if(rx_state_, touches);
}

TransportStats Transport::class_stats(std::uint32_t link_class) const {
  const auto it = per_class_.find(link_class);
  return it == per_class_.end() ? TransportStats{} : it->second;
}

Transport::ObsCounters& Transport::obs_counters() {
  if (!obs_ready_) {
    const std::string label = "{transport=\"" + name_ + "\"}";
    auto& registry = obs::global_registry();
    obs_counters_.frames_sent =
        &registry.counter("net_frames_sent_total" + label, "Frames handed to the backend");
    obs_counters_.bytes_sent =
        &registry.counter("net_bytes_sent_total" + label, "Encoded bytes sent");
    obs_counters_.bytes_sent_raw = &registry.counter(
        "net_bytes_sent_raw_total" + label, "Dense-equivalent bytes of sent frames");
    obs_counters_.frames_received =
        &registry.counter("net_frames_received_total" + label, "Frames decoded and delivered");
    obs_counters_.bytes_received =
        &registry.counter("net_bytes_received_total" + label, "Encoded bytes received");
    obs_counters_.bytes_received_raw =
        &registry.counter("net_bytes_received_raw_total" + label,
                          "Dense-equivalent bytes of received frames");
    obs_counters_.retries =
        &registry.counter("net_retries_total" + label, "Send/connect re-attempts");
    obs_counters_.timeouts =
        &registry.counter("net_timeouts_total" + label, "Sends abandoned on the deadline");
    obs_counters_.peer_losses =
        &registry.counter("net_peer_losses_total" + label, "Links declared dead");
    obs_ready_ = true;
  }
  return obs_counters_;
}

bool Transport::tracing_to(NodeId peer) const noexcept {
  if (!tracing_ || trace_ == nullptr) return false;
  const auto it = peer_tracing_.find(peer);
  return it != peer_tracing_.end() && it->second;
}

void Transport::note_rtt(NodeId peer, std::uint32_t link_class, double rtt_ms,
                         double clock_offset_ns) {
  LinkTelemetry& link = link_telemetry_[peer];
  link.rtt_ms = rtt_ms;
  link.clock_offset_ns = clock_offset_ns;
  ++link.rtt_samples;
  auto& cls = per_class_[link_class];
  cls.rtt_ms = rtt_ms;
  ++cls.rtt_samples;
  cls.rtt_ms_mean += (rtt_ms - cls.rtt_ms_mean) / static_cast<double>(cls.rtt_samples);
  stats_.rtt_ms = rtt_ms;
  ++stats_.rtt_samples;
  stats_.rtt_ms_mean +=
      (rtt_ms - stats_.rtt_ms_mean) / static_cast<double>(stats_.rtt_samples);
  if (obs::enabled()) {
    obs::global_registry()
        .histogram("net_rtt_ms{transport=\"" + name_ + "\"}",
                   obs::exponential_bounds(0.05, 2.0, 16),
                   "Echoed-timestamp RTT estimates per link")
        .observe(rtt_ms);
  }
}

LinkTelemetry Transport::peer_telemetry(NodeId peer) const {
  const auto it = link_telemetry_.find(peer);
  return it == link_telemetry_.end() ? LinkTelemetry{} : it->second;
}

void Transport::note_sent(std::size_t bytes, std::size_t raw_bytes,
                          std::uint32_t link_class, NodeId peer) {
  ++stats_.frames_sent;
  stats_.bytes_sent += bytes;
  stats_.bytes_sent_raw += raw_bytes;
  auto& cls = per_class_[link_class];
  ++cls.frames_sent;
  cls.bytes_sent += bytes;
  cls.bytes_sent_raw += raw_bytes;
  auto& link = link_telemetry_[peer];
  ++link.frames_sent;
  link.bytes_sent += bytes;
  if (obs::enabled()) {
    auto& counters = obs_counters();
    counters.frames_sent->add(1);
    counters.bytes_sent->add(bytes);
    counters.bytes_sent_raw->add(raw_bytes);
  }
}

void Transport::note_received(std::size_t bytes, std::size_t raw_bytes,
                              std::uint32_t link_class, NodeId peer) {
  ++stats_.frames_received;
  stats_.bytes_received += bytes;
  stats_.bytes_received_raw += raw_bytes;
  auto& cls = per_class_[link_class];
  ++cls.frames_received;
  cls.bytes_received += bytes;
  cls.bytes_received_raw += raw_bytes;
  auto& link = link_telemetry_[peer];
  ++link.frames_received;
  link.bytes_received += bytes;
  if (obs::enabled()) {
    auto& counters = obs_counters();
    counters.frames_received->add(1);
    counters.bytes_received->add(bytes);
    counters.bytes_received_raw->add(raw_bytes);
  }
}

void Transport::note_retry() {
  ++stats_.retries;
  if (obs::enabled()) obs_counters().retries->add(1);
}

void Transport::note_reconnect() { ++stats_.reconnects; }

void Transport::note_timeout() {
  ++stats_.timeouts;
  if (obs::enabled()) obs_counters().timeouts->add(1);
}

void Transport::note_peer_loss(NodeId peer) {
  ++stats_.peer_losses;
  if (obs::enabled()) obs_counters().peer_losses->add(1);
  if (trace_) {
    trace_->push({trace_->seconds_since_epoch(), 0, "net_peer_loss", peer, 0, 0.0, 0});
  }
  for (const auto& handler : on_peer_loss_) handler(peer);
}

void Transport::note_peer_reconnect(NodeId peer) {
  ++stats_.reconnects;
  if (trace_) {
    trace_->push({trace_->seconds_since_epoch(), 0, "net_peer_reconnect", peer, 0, 0.0, 0});
  }
  for (const auto& handler : on_peer_reconnect_) handler(peer);
}

void Transport::note_decode_error() { ++stats_.decode_errors; }

void Transport::deliver_frame(const FrameView& view, std::uint32_t link_class,
                              const MessageHandler& handler) {
  const Envelope env = view.env();
  const std::size_t wire_bytes = view.bytes().size();
  obs::blackbox::record(obs::blackbox::EventType::kFrameRx,
                        static_cast<std::uint16_t>(view.kind()), env.to, env.round,
                        env.from, wire_bytes);

  // The whole dispatch — streaming decode or decode+handler — runs inside a
  // net_recv span.  When the frame carries a trace tail, the span parents to
  // the remote sender's net_send span: the causal cross-process edge every
  // handler-opened span then nests under via the thread-local stack.
  std::optional<obs::Span> recv_span;
  if (trace_ != nullptr) {
    obs::SpanContext ctx;
    if (view.traced()) {
      const TraceContext tc = view.trace_context();
      ctx.trace_id = tc.trace_id;
      ctx.parent_span_id = tc.span_id;
      ctx.has_parent = true;
    }
    recv_span.emplace(trace_, "net_recv", ctx, static_cast<std::size_t>(env.round),
                      env.to);
  }

  const auto raw_it = raw_handlers_.find(env.to);
  if (raw_it != raw_handlers_.end() && raw_it->second(view)) {
    // Consumed zero-copy.  The raw path only ever takes ModelUpdate frames,
    // whose dense-equivalent size follows from the parameter count alone.
    std::size_t raw_bytes = wire_bytes;
    if (view.kind() == MsgKind::kModelUpdate) {
      raw_bytes = model_update_wire_size(peek_model_update(view).param_count);
    }
    note_received(wire_bytes, raw_bytes, link_class, env.from);
    return;
  }

  CodecState* rx = nullptr;
  const MsgKind kind = view.kind();
  if ((kind == MsgKind::kModelUpdate || kind == MsgKind::kPartialModel) &&
      codec_for(env.from).delta) {
    rx = &rx_codec_state(env.from, env.to);
  }
  WireMessage msg = view.decode(rx);
  note_received(wire_bytes, encoded_size(msg.payload), link_class, env.from);
  if (handler) handler(msg);
}

void Transport::record_traffic(obs::Recorder& recorder, std::uint64_t round) const {
  for (const auto& [link_class, s] : per_class_) {
    obs::RoundRecord& rec =
        recorder.begin_round("net_link", static_cast<std::size_t>(round));
    rec.set("link_class", static_cast<double>(link_class));
    rec.set("frames_sent", static_cast<double>(s.frames_sent));
    rec.set("bytes_sent", static_cast<double>(s.bytes_sent));
    rec.set("bytes_sent_raw", static_cast<double>(s.bytes_sent_raw));
    rec.set("frames_received", static_cast<double>(s.frames_received));
    rec.set("bytes_received", static_cast<double>(s.bytes_received));
    rec.set("bytes_received_raw", static_cast<double>(s.bytes_received_raw));
    rec.set("rtt_ms", s.rtt_ms);
    rec.set("rtt_ms_mean", s.rtt_ms_mean);
    rec.set("rtt_samples", static_cast<double>(s.rtt_samples));
    rec.set("queue_depth", static_cast<double>(backlog_bytes(link_class)));
    if (has_identity_) {
      rec.set("level", static_cast<double>(identity_level_));
      rec.set("parent_id", static_cast<double>(identity_parent_));
    }
  }
  obs::RoundRecord& ev = recorder.begin_round("net_events", static_cast<std::size_t>(round));
  ev.set("retries", static_cast<double>(stats_.retries));
  ev.set("reconnects", static_cast<double>(stats_.reconnects));
  ev.set("timeouts", static_cast<double>(stats_.timeouts));
  ev.set("peer_losses", static_cast<double>(stats_.peer_losses));
  ev.set("decode_errors", static_cast<double>(stats_.decode_errors));
  if (has_identity_) {
    ev.set("level", static_cast<double>(identity_level_));
    ev.set("parent_id", static_cast<double>(identity_parent_));
  }
}

}  // namespace abdhfl::net
