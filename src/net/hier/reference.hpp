#pragma once
// Transport-free N-level reference runner (DESIGN.md §14.5).
//
// The ground truth a distributed tree run is verified against, bitwise: the
// same computation as a federation over config.tree — leaf devices train
// with core::train_device_round, leaf heads fold their devices with the
// cluster rule (reference = the model they disseminated), interior
// aggregators fold their children with the cluster rule (reference = the
// last global they forwarded down), the root folds level 1 with the root
// rule and evaluates — but as one in-process loop with no frames, sockets
// or timing.  Every fold consumes its inputs in ascending sibling order,
// which is the ascending-node-id order the live Collectors use.

#include <cstddef>
#include <vector>

#include "net/node.hpp"

namespace abdhfl::net::hier {

struct HierReferenceResult {
  std::vector<float> global_model;
  std::vector<double> round_accuracy;  // one entry per round
  double final_accuracy = 0.0;
  std::size_t rounds_run = 0;
  /// Final merged model of each leaf head, in sibling order — what each
  /// leaf-head process reports as its model() when the run completes.
  std::vector<std::vector<float>> leaf_models;
};

/// Run the whole tree described by config.tree (throws std::invalid_argument
/// when the spec is empty or malformed) for config.rounds rounds.
[[nodiscard]] HierReferenceResult run_hier_reference(const FederationConfig& config);

}  // namespace abdhfl::net::hier
