#pragma once
// Virtual-device multiplexing (DESIGN.md §14.3).
//
// One process hosts the whole bottom level of its subtree: every simulated
// leaf device is a {node id, RNG, shard reference, last loss} record — a few
// hundred bytes — and all of them share ONE model workspace (the tensor
// arena) through core::train_device_round, so a leaf head multiplexes
// thousands of devices over its in-process LoopbackTransport without
// thousands of model clones or sockets.
//
// The devices speak the real wire protocol: each sends a Membership kJoin at
// start, trains and answers a ModelUpdate for every PartialModel addressed
// to it (echoing the envelope round), and retires on Membership kShutdown.
// Frames cross the loopback exactly as they would a socket, so the leaf
// head's Collector treats virtual devices like any other children — same
// join accounting, same ascending-id fold — and a virtual-device run is
// bitwise identical to per-device LocalTrainer instances (the RNG streams
// are the same pure function of seed and global device index).

#include <cstdint>
#include <vector>

#include "ckpt/state.hpp"
#include "core/trainer.hpp"
#include "net/node.hpp"
#include "net/transport.hpp"
#include "nn/mlp.hpp"
#include "topology/plan.hpp"

namespace abdhfl::net::hier {

class VirtualDeviceHost {
 public:
  /// Hosts devices [first_device, first_device + count) of the federation,
  /// registered on `transport` (the leaf head's loopback) under
  /// topology::device_node_id(global index) and reporting to `head`.
  /// `data` must outlive the host (the devices hold shard references into
  /// it).  `link_class` tags the device<->head traffic.
  VirtualDeviceHost(const FederationConfig& config, const FederationData& data,
                    NodeId head, std::size_t first_device, std::size_t count,
                    Transport& transport, std::uint32_t link_class);

  /// Send every device's join (delivered on the transport's next poll).
  void start();

  /// Every device received its shutdown.
  [[nodiscard]] bool done() const noexcept { return shutdown_ >= devices_.size(); }
  [[nodiscard]] std::size_t count() const noexcept { return devices_.size(); }
  [[nodiscard]] std::uint64_t total_samples() const noexcept;

  // Checkpoint support: the devices' RNG streams and last losses, in hosting
  // order (global device index ascending) — the same layout WorkerNode
  // persists for its LocalTrainers.
  [[nodiscard]] std::vector<ckpt::RngState> rng_states() const;
  void set_rng_states(const std::vector<ckpt::RngState>& states);
  [[nodiscard]] std::vector<double> losses() const;
  void set_losses(const std::vector<double>& losses);

 private:
  void on_device_message(std::size_t slot, WireMessage& msg);

  struct VirtualDevice {
    NodeId id = 0;
    const data::Dataset* shard = nullptr;
    util::Rng rng;
    double last_loss = 0.0;
    bool down = false;
  };

  FederationConfig config_;
  NodeId head_;
  Transport& transport_;
  std::uint32_t link_class_;
  nn::Mlp workspace_;  // the shared tensor arena every device trains in
  std::vector<VirtualDevice> devices_;
  std::size_t shutdown_ = 0;
};

}  // namespace abdhfl::net::hier
