#pragma once
// Reusable federation roles (DESIGN.md §14).
//
// The 2-level RootNode/WorkerNode pair hard-wired two behaviours that every
// node of an N-level tree needs in some combination:
//
//   Collector — the DOWN-facing role: child membership (join/leave/evict/
//     re-admit), per-link codec negotiation, the suspicion ledger, and the
//     deterministic id-ordered update collection fold (streaming when the
//     rule supports it, materialize-first otherwise).
//   Uplink    — the UP-facing role: join/leave/update/ping senders toward a
//     parent, join-echo processing (codec adoption, round adoption, RTT and
//     clock-offset estimation), and the borrow-don't-copy update send.
//
// RootNode is Collector + evaluation, WorkerNode is Uplink + training, and
// an AggregatorNode at any interior level is both at once — worker to its
// parent, root to its children.  The roles carry protocol mechanics only;
// phase machines, JSONL records, results and checkpoints stay with the
// owning node, so extracting them changed no observable behaviour (the
// 2-level suite pins that).
//
// Churn grace (FederationConfig::rejoin_grace_s): with a grace window
// configured, a lost child that had joined is remembered for that window
// and the collector HOLDS the round's aggregation while any window is
// open.  If the child's process comes back (mid-tier kill + --resume), the
// transport reconnect path re-admits it and the round completes with the
// full quorum — which is what makes the final model bitwise identical to
// an uninterrupted run.  An expired window releases the hold and the round
// proceeds degraded, exactly the grace=0 behaviour.

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <span>
#include <vector>

#include "agg/aggregator.hpp"
#include "net/transport.hpp"
#include "obs/trace.hpp"

namespace abdhfl::net::hier {

/// Steady-clock seconds; the wall clock every phase deadline uses.
[[nodiscard]] inline double wall_now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Steady-clock seconds → the ns tag the blackbox status block reports for
/// phase deadlines (informational; same clock as wall_now()).
[[nodiscard]] inline std::uint64_t deadline_ns(double deadline_s) {
  return deadline_s <= 0.0 ? 0 : static_cast<std::uint64_t>(deadline_s * 1e9);
}

/// NTP-style estimates from one request/reply exchange: t0 = our send stamp
/// (echoed back), t1 = the remote's reply stamp, t3 = now.  rtt = t3 - t0;
/// offset = t1 - midpoint, i.e. remote_wall ≈ local_wall + offset.
struct EchoEstimate {
  double rtt_ms = 0.0;
  double offset_ns = 0.0;
};

[[nodiscard]] EchoEstimate estimate_from_echo(std::int64_t echoed_t0,
                                              std::int64_t remote_t1);

// ---------------------------------------------------------------------------

class Collector {
 public:
  struct Options {
    NodeId self = 0;                    // kRootId for the classic root
    std::size_t expected_children = 0;  // joins that complete the join phase
    NodeId first_child = 1;             // echo.cluster = child - first_child
    std::uint32_t link_class = 1;       // kLeaderLinkClass by default
    Codec codec;                        // this node's negotiation bounds
    bool trace = false;
    double rejoin_grace_s = 0.0;        // 0 = evict immediately (no hold)
  };

  Collector(Transport& transport, Options opts);

  // -- membership -----------------------------------------------------------

  /// Admit a joining child: live set, subtree samples, join timestamp, codec
  /// negotiation (the advertisement bounded by our own config), tracing
  /// capability.  Returns true once every expected child has joined.
  bool on_join(NodeId from, const Membership& member, std::size_t round);

  /// Send one join echo — the starting gun / resync frame.  The envelope
  /// round tells the child which round this collector is collecting.
  void echo_join(NodeId child, std::size_t round);
  /// Echo every live child's join (the begin-training broadcast).
  void echo_joins(std::size_t round);

  /// A child said goodbye: remember it so its EOF is not churn.
  void on_leave(NodeId from, std::size_t round);

  /// Peer-loss path: evict a live member (live set, pending update, EWMA
  /// suspicion bump toward 1).  Returns false when the loss is not churn
  /// (unknown peer, already left).  With a grace window configured, a child
  /// that had joined is remembered until `now + rejoin_grace_s` and
  /// grace_holds() reports a hold until it reconnects or the window expires.
  bool evict(NodeId peer, std::size_t round, double now);

  /// Transport-reconnect path: re-admit a member the loss path evicted.
  /// Only for a child that joined this run and has not said goodbye.
  bool readmit(NodeId peer, std::size_t round);

  /// True while any grace window is open (prunes expired windows first).
  [[nodiscard]] bool grace_holds(double now);
  /// Prune expired grace windows; true when one expired (the owner should
  /// re-check the quorum — the hold may just have been released).
  bool expire_grace(double now);
  /// Whether any evicted-under-grace child is still awaited.
  [[nodiscard]] bool grace_pending() const noexcept { return !grace_until_.empty(); }

  // -- collection -----------------------------------------------------------

  /// (Re)arm a round's collection; `stream` may be null (materialize-first).
  void arm(std::unique_ptr<agg::StreamAccumulator> stream);

  /// Decoded-path acceptance: the guard chain (round match, live member, not
  /// yet folded), suspicion decay, buffer + in-order drain.  Moves the
  /// update's params out on acceptance.  Returns true when accepted (the
  /// owner then checks quorum_complete()).
  bool accept_update(const Envelope& env, ModelUpdate& update, std::size_t round);

  /// Zero-copy path: a complete ModelUpdate frame offered before decode.
  /// Accepted only when this collector streams, the frame passes the same
  /// guards, carries `param_count` parameters, and is the next input in
  /// ascending id order — its chunk is fed straight from the rx ring into
  /// the accumulator.  Returns false to fall back to the decode path (which
  /// keeps delta rx caches in sync for frames this node ignores).
  bool accept_raw(const FrameView& view, std::size_t round, std::size_t param_count);

  [[nodiscard]] bool has_update(NodeId child) const;
  /// Every live child's update folded/buffered (false while live is empty).
  [[nodiscard]] bool quorum_complete() const;

  /// Complete the round's fold: set the rule's reference and aggregate —
  /// stream finish when streaming (bitwise what aggregate() over the
  /// materialized vectors would produce; the id-ordered fold guarantees
  /// it), materialized std::map-order aggregate otherwise.  `n_inputs`
  /// reports how many updates went in.
  [[nodiscard]] std::vector<float> finish(agg::Aggregator& rule,
                                          std::span<const float> reference,
                                          std::size_t& n_inputs);
  /// Feed buffered in-order updates into the stream (call after an eviction
  /// may have closed a reorder gap).
  void drain_into_stream();
  [[nodiscard]] bool streaming() const noexcept { return stream_ != nullptr; }

  // -- introspection / persistence ------------------------------------------

  [[nodiscard]] const std::set<NodeId>& live() const noexcept { return live_; }
  [[nodiscard]] const std::set<NodeId>& left() const noexcept { return left_; }
  /// Every member that ever joined, with its subtree sample count.
  [[nodiscard]] const std::map<NodeId, std::uint64_t>& joined() const noexcept {
    return subtree_samples_;
  }
  /// Checkpoint restore: replace the joined-member ledger.
  void restore_joined(std::map<NodeId, std::uint64_t> samples) {
    subtree_samples_ = std::move(samples);
  }
  [[nodiscard]] std::uint64_t total_subtree_samples() const;
  /// One StatusPeer row per member that ever joined, live or not.
  void append_status_peers(StatusReply& reply) const;

 private:
  Transport& transport_;
  Options opts_;
  std::set<NodeId> live_;
  std::set<NodeId> left_;
  std::map<NodeId, std::uint64_t> subtree_samples_;
  std::map<NodeId, std::int64_t> join_wall_ns_;  // echoed back in the join echo
  // Per-child suspicion EWMA: bumped on peer loss, decayed on every accepted
  // update — the "is this member flaky" number a status probe reports.
  std::map<NodeId, double> suspicion_;
  std::map<NodeId, double> grace_until_;          // evicted, awaited back
  std::map<NodeId, std::vector<float>> pending_;  // current round (materialized)
  // Streaming collection (DESIGN.md §11): when the rule is streaming-safe,
  // each round's updates are folded into `stream_` as their frames arrive
  // and `arrived_` replaces pending_ as the quorum ledger — collector
  // memory stays O(d) instead of O(live × d).
  std::unique_ptr<agg::StreamAccumulator> stream_;
  std::set<NodeId> arrived_;
  std::vector<float> stream_scratch_;  // decode target for transformed frames
};

// ---------------------------------------------------------------------------

class Uplink {
 public:
  struct Options {
    NodeId self = 0;
    NodeId parent = 0;              // kRootId for a classic worker
    std::uint32_t cluster = 0;      // join.cluster / leave.cluster
    std::uint32_t link_class = 1;   // kLeaderLinkClass by default
    std::uint32_t level = 1;        // ModelUpdate.level of sent updates
    Codec codec;                    // advertised in the join
    bool trace = false;
  };

  Uplink(Transport& transport, Options opts);

  /// Advertise ourselves to the parent (codec, trace capability, subtree
  /// weight, send stamp for the first RTT sample).
  SendStatus send_join(std::uint64_t subtree_samples);
  /// Same advertisement toward an arbitrary node — a top-cluster worker
  /// joins every committee member so whichever one wins the election
  /// already holds its join.
  SendStatus send_join_to(NodeId to, std::uint64_t subtree_samples);

  /// What a join echo means for the owner's state machine.
  enum class EchoAction {
    kStart,   // first echo: adopt the envelope round and start training
    kResync,  // echoed round differs: adopt it and rejoin that quorum
    kResend,  // new parent, same round: resend the last update — never retrain
    kNone,    // own round echoed back: the retried update already covers it
  };

  /// Process a join echo: adopt the negotiated codec and tracing, fold the
  /// echoed timestamps into RTT/clock-offset estimates (the parent's clock
  /// is the reference the trace merge aligns to).  An echo from a node other
  /// than the current parent RE-TARGETS the uplink to the sender — that is
  /// the leader-change handshake: a newly elected leader echoes every
  /// committed member's join, and the echo's envelope round tells the worker
  /// whether its in-flight update must be resent (kResend, round matches —
  /// the already-trained model is resent bitwise, never retrained) or its
  /// round adopted first (kResync).
  EchoAction on_join_echo(const WireMessage& msg, std::size_t round);

  /// Point every subsequent send at a new parent (leader re-targeting).
  void retarget(NodeId new_parent) { opts_.parent = new_parent; }

  /// Send this round's update, lending `params` to the frame for the
  /// duration of the send (no O(d) staging copy).
  SendStatus send_update(std::vector<float>& params, std::uint64_t samples,
                         std::size_t round);

  SendStatus send_leave(std::size_t round);

  /// Per-round RTT heartbeat toward the parent.
  void send_status_ping(std::size_t round);
  /// A status reply from any peer: fold its echoed timestamps into the
  /// link's RTT estimate; a reply from the parent also refreshes the trace
  /// clock offset.
  void on_status_reply(const WireMessage& msg);

  [[nodiscard]] bool started() const noexcept { return started_; }
  [[nodiscard]] NodeId parent() const noexcept { return opts_.parent; }

 private:
  Transport& transport_;
  Options opts_;
  std::uint32_t probe_seq_ = 0;
  bool started_ = false;
  // Where the most recent update actually went, and for which round.  A join
  // echo compares against these to decide kResend: "did the parent change" is
  // not a usable test because a stale partial from the new leader retargets
  // the parent pointer before its echo arrives.
  NodeId last_update_to_ = 0;
  std::size_t last_update_round_ = static_cast<std::size_t>(-1);
};

}  // namespace abdhfl::net::hier
