#include "net/hier/reference.hpp"

#include <stdexcept>
#include <utility>

#include "agg/aggregator.hpp"
#include "core/trainer.hpp"
#include "topology/plan.hpp"
#include "util/rng.hpp"

namespace abdhfl::net::hier {

HierReferenceResult run_hier_reference(const FederationConfig& config) {
  topology::HierSpec spec;
  if (config.tree.empty() || !topology::parse_tree_spec(config.tree, spec)) {
    throw std::invalid_argument("run_hier_reference: invalid tree spec '" +
                                config.tree + "'");
  }
  const FederationData data = build_federation_data(config);
  const std::size_t leaf_heads = spec.leaf_heads();
  const std::size_t per_leaf = spec.devices_per_leaf();

  // One RNG per device (the whole cross-round device state) and ONE shared
  // model workspace — the same arena layout VirtualDeviceHost uses, so the
  // reference scales to the 10k-device tree without 10k model clones.
  std::vector<util::Rng> device_rngs;
  device_rngs.reserve(spec.total_devices());
  for (std::size_t device = 0; device < spec.total_devices(); ++device) {
    device_rngs.emplace_back(
        config.seed ^ (0x9E3779B97F4A7C15ULL * static_cast<std::uint64_t>(device + 1)));
  }
  nn::Mlp workspace = data.prototype.clone();
  double loss_sink = 0.0;

  const auto cluster_rule = agg::make_aggregator(config.cluster_rule);
  const auto root_rule = agg::make_aggregator(config.root_rule);

  HierReferenceResult result;
  std::vector<float> global = data.init_params;
  // Per-leaf-head merged model (what each bottom process disseminates to its
  // devices) and per-leaf-head latest cluster fold.
  std::vector<std::vector<float>> current(leaf_heads, data.init_params);
  std::vector<std::vector<float>> cluster(leaf_heads);
  // Every interior aggregator's fold reference is the last global it
  // forwarded down — identical across the whole level, so one vector per
  // round covers them all.  init_params before the first forward.
  std::vector<float> forwarded = data.init_params;

  for (std::size_t round = 0; round < config.rounds; ++round) {
    // Bottom-up.  Level L-1: each leaf head trains its devices from the
    // model it disseminated and folds them with the cluster rule.
    std::vector<std::vector<float>> level_out(leaf_heads);
    for (std::size_t j = 0; j < leaf_heads; ++j) {
      std::vector<agg::ModelVec> updates;
      updates.reserve(per_leaf);
      for (std::size_t k = 0; k < per_leaf; ++k) {
        const std::size_t device = j * per_leaf + k;
        updates.push_back(core::train_device_round(
            workspace, data.shards[device], device_rngs[device], current[j],
            config.local_iters, config.batch, config.learning_rate, std::nullopt,
            loss_sink));
      }
      cluster_rule->set_reference(current[j]);
      cluster[j] = cluster_rule->aggregate(updates);
      level_out[j] = cluster[j];
    }
    // Interior levels L-2 .. 1: fold each node's children (ascending sibling
    // order) with the cluster rule against the last forwarded global.
    for (std::size_t level = spec.process_levels() - 1; level-- > 1;) {
      const std::size_t nodes = spec.nodes_at(level);
      const std::size_t fan = spec.branching[level];
      std::vector<std::vector<float>> folded(nodes);
      for (std::size_t i = 0; i < nodes; ++i) {
        std::vector<agg::ModelVec> inputs(
            std::make_move_iterator(level_out.begin() + i * fan),
            std::make_move_iterator(level_out.begin() + (i + 1) * fan));
        cluster_rule->set_reference(forwarded);
        folded[i] = cluster_rule->aggregate(inputs);
      }
      level_out = std::move(folded);
    }
    // Root: the global fold and evaluation.
    root_rule->set_reference(global);
    {
      std::vector<agg::ModelVec> inputs(std::make_move_iterator(level_out.begin()),
                                        std::make_move_iterator(level_out.end()));
      global = root_rule->aggregate(inputs);
    }
    const double accuracy = core::evaluate_params(workspace, global, data.test_set);
    result.round_accuracy.push_back(accuracy);
    result.final_accuracy = accuracy;

    // Top-down: the global is forwarded unchanged through the interior
    // levels and Eq.-1 merged at each leaf head.
    forwarded = global;
    for (std::size_t j = 0; j < leaf_heads; ++j) {
      current[j] = merge_models(global, cluster[j], config.alpha);
    }
  }

  result.rounds_run = config.rounds;
  result.global_model = std::move(global);
  result.leaf_models = std::move(current);
  return result;
}

}  // namespace abdhfl::net::hier
