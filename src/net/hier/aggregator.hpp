#pragma once
// Interior node of the N-level tree (DESIGN.md §14.2): Collector toward its
// children, Uplink toward its parent — a root to the level below, a worker
// to the level above.  One class covers every depth:
//
//   mid-level aggregator — children are other processes over TCP.  Folds
//     their updates with the cluster rule (reference = the last global it
//     forwarded down), sends the fold up, forwards the root's PartialModel
//     broadcast down unchanged.
//   leaf head — children are this process's own virtual devices over a
//     LoopbackTransport (VirtualDeviceHost).  Behaves exactly like the
//     2-level WorkerNode toward its parent: disseminates its current model
//     to the devices, folds their updates (reference = that model), sends
//     the fold up, Eq.-1 merges the arriving global.
//
// Join propagation: the node sends its own join UP only once every expected
// child joined (subtree samples = the children's sum), so a join reaching
// the root vouches for a complete subtree.  The starting gun propagates the
// other way: the parent's join echo carries the round, the node adopts it
// and echoes its own children's joins (or disseminates to its devices) with
// the same round — the whole tree starts on one clock.
//
// Parent loss is survivable (the mid-tier restart path): the node keeps
// serving its subtree, re-sends its join on a timer until the parent —
// possibly a restarted process — answers, and a round-matching echo makes it
// resend its cached fold WITHOUT retraining, which is what keeps the final
// model bitwise identical when the parent held the round open under
// rejoin_grace_s.

#include <cstdint>
#include <memory>
#include <vector>

#include "agg/aggregator.hpp"
#include "net/hier/roles.hpp"
#include "net/hier/vdev.hpp"
#include "net/node.hpp"
#include "net/transport.hpp"
#include "topology/plan.hpp"

namespace abdhfl::net::hier {

class AggregatorNode {
 public:
  /// An aggregator at process `level` (1 .. process_levels-1), sibling-order
  /// `index`, of the tree config.tree describes (throws std::invalid_argument
  /// when the spec is missing or malformed).  `up` carries the parent link,
  /// `down` the child links; a mid-level aggregator usually passes the same
  /// TcpTransport for both, a leaf head passes its TCP transport up and its
  /// LoopbackTransport down (the node then hosts
  /// spec.devices_per_leaf() virtual devices on it — see device_host()).
  /// Both transports must outlive the node.  `checkpoint` persists the
  /// node's round state after every `checkpoint_every`-th round (see
  /// DESIGN.md §14.4); `resume` restores the latest snapshot first.
  AggregatorNode(FederationConfig config, std::size_t level, std::size_t index,
                 Transport& up, Transport& down, obs::Recorder* recorder = nullptr,
                 ckpt::Store* checkpoint = nullptr, std::size_t checkpoint_every = 1,
                 bool resume = false);

  /// Arm deadlines and (leaf heads) send the virtual devices' joins.  The
  /// node's own join goes up once the children's joins complete.
  void start();
  /// Deadline bookkeeping, grace-window expiry and parent-rejoin retries;
  /// call between poll()s.
  void on_idle();

  [[nodiscard]] bool done() const noexcept { return phase_ == Phase::kDone; }
  [[nodiscard]] bool failed() const noexcept { return failed_; }
  /// Leaf head: its final merged model (the 2-level worker's model()).
  /// Mid-level: the last global it forwarded down.
  [[nodiscard]] const std::vector<float>& model() const noexcept { return down_model_; }
  [[nodiscard]] std::size_t rounds_run() const noexcept { return round_; }
  [[nodiscard]] std::size_t resume_round() const noexcept { return resume_round_; }
  [[nodiscard]] NodeId id() const noexcept { return id_; }
  [[nodiscard]] NodeId parent() const noexcept { return parent_; }
  [[nodiscard]] std::size_t level() const noexcept { return level_; }
  [[nodiscard]] bool leaf_head() const noexcept { return host_ != nullptr; }
  /// The hosted virtual devices (null for mid-level aggregators).
  [[nodiscard]] VirtualDeviceHost* device_host() noexcept { return host_.get(); }

 private:
  enum class Phase { kJoining, kTraining, kFinishing, kDone };

  void on_message(WireMessage& msg);
  void on_parent_message(WireMessage& msg);
  void on_child_message(WireMessage& msg);
  void on_down_peer_loss(NodeId peer);
  void on_up_peer_loss(NodeId peer);
  void on_peer_reconnect(NodeId peer);
  /// The starting gun, downward: echo child joins (mid) or disseminate the
  /// current model to the devices (leaf) for round_.
  void begin_round_down();
  void disseminate_to_devices();
  /// Fold + send up once the quorum is complete and no grace window holds.
  void maybe_forward_up();
  void maybe_finish();
  void finish(bool failed);
  void arm_collect();
  void note_parent_lost();
  void reply_status(const StatusRequest& request, NodeId to);
  void record_round(double inputs);
  void save_checkpoint();
  void restore_checkpoint();

  FederationConfig config_;
  topology::HierSpec spec_;
  topology::HierPlan plan_;
  std::size_t level_;
  std::size_t index_;
  NodeId id_;
  NodeId parent_;
  Transport& up_;
  Transport& down_;
  obs::Recorder* recorder_;
  ckpt::Store* checkpoint_;
  std::size_t checkpoint_every_;
  std::size_t resume_round_ = 0;
  FederationData data_;
  std::unique_ptr<agg::Aggregator> rule_;  // cluster rule at every interior node
  Collector collector_;
  Uplink uplink_;
  std::unique_ptr<VirtualDeviceHost> host_;  // leaf heads only
  std::uint32_t child_link_class_;
  std::vector<float> down_model_;  // last model disseminated down
  std::vector<float> last_sent_;   // last fold sent up
  std::size_t last_sent_round_ = kNeverSent;
  std::size_t round_ = 0;
  Phase phase_ = Phase::kJoining;
  double phase_deadline_ = 0.0;
  bool parent_lost_ = false;
  double next_rejoin_ = 0.0;  // parent-rejoin retry clock
  bool failed_ = false;

  static constexpr std::size_t kNeverSent = static_cast<std::size_t>(-1);
  /// Parent-rejoin retry cadence while the parent link is down.
  static constexpr double kRejoinRetryS = 0.5;
};

}  // namespace abdhfl::net::hier
