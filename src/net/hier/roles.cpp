#include "net/hier/roles.hpp"

#include <utility>

#include "obs/blackbox.hpp"

namespace abdhfl::net::hier {

namespace bb = obs::blackbox;

EchoEstimate estimate_from_echo(std::int64_t echoed_t0, std::int64_t remote_t1) {
  const std::int64_t t3 = obs::wall_clock_ns();
  EchoEstimate est;
  est.rtt_ms = static_cast<double>(t3 - echoed_t0) / 1e6;
  est.offset_ns = static_cast<double>(remote_t1) -
                  (static_cast<double>(echoed_t0) + static_cast<double>(t3)) / 2.0;
  return est;
}

// ---------------------------------------------------------------------------
// Collector

Collector::Collector(Transport& transport, Options opts)
    : transport_(transport), opts_(opts) {}

bool Collector::on_join(NodeId from, const Membership& member, std::size_t round) {
  live_.insert(from);
  bb::record(bb::EventType::kChurn, static_cast<std::uint16_t>(bb::ChurnKind::kJoin),
             opts_.self, round, from);
  bb::set_peer(from, 0, round);
  subtree_samples_[from] = member.subtree_samples;
  join_wall_ns_[from] = member.wall_ns;
  transport_.set_peer_tracing(from, member.trace && opts_.trace);
  // Codec negotiation: the link gets what both sides support — the child's
  // advertisement bounded by our own config.  Quantization takes the coarser
  // of the two, top-k the smaller k (only when both asked for it), delta
  // only when both sides opted in (the rx side must be willing to hold the
  // per-link base cache).
  Codec chosen = member.codec;
  chosen.quantize_bits = std::min(chosen.quantize_bits, opts_.codec.quantize_bits);
  chosen.topk = (chosen.topk != 0 && opts_.codec.topk != 0)
                    ? std::min(chosen.topk, opts_.codec.topk)
                    : 0;
  chosen.delta = chosen.delta && opts_.codec.delta;
  transport_.set_peer_codec(from, chosen);
  return live_.size() >= opts_.expected_children;
}

void Collector::echo_join(NodeId child, std::size_t round) {
  Membership echo;
  echo.event = Membership::Event::kJoin;
  echo.device = opts_.self;
  echo.cluster = child - opts_.first_child;
  echo.codec = transport_.codec_for(child);
  echo.trace = opts_.trace;
  echo.wall_ns = obs::wall_clock_ns();
  echo.echo_wall_ns = join_wall_ns_[child];  // the child's join send stamp
  transport_.send({opts_.self, child, round}, echo, opts_.link_class);
}

void Collector::echo_joins(std::size_t round) {
  for (const NodeId child : live_) echo_join(child, round);
}

void Collector::on_leave(NodeId from, std::size_t round) {
  left_.insert(from);
  transport_.expect_close(from);  // its EOF is not churn
  bb::record(bb::EventType::kChurn, static_cast<std::uint16_t>(bb::ChurnKind::kLeave),
             opts_.self, round, from);
  bb::set_peer(from, 2, round);
}

bool Collector::evict(NodeId peer, std::size_t round, double now) {
  if (live_.find(peer) == live_.end()) return false;
  // A child that already said goodbye closing its socket is not churn.
  if (left_.find(peer) != left_.end()) return false;
  live_.erase(peer);
  pending_.erase(peer);
  suspicion_[peer] = 0.5 * suspicion_[peer] + 0.5;  // EWMA toward 1 on a loss
  bb::record(bb::EventType::kChurn, static_cast<std::uint16_t>(bb::ChurnKind::kLoss),
             opts_.self, round, peer);
  bb::set_peer(peer, 1, round);
  if (opts_.rejoin_grace_s > 0.0 &&
      subtree_samples_.find(peer) != subtree_samples_.end()) {
    grace_until_[peer] = now + opts_.rejoin_grace_s;
  }
  return true;
}

bool Collector::readmit(NodeId peer, std::size_t round) {
  if (live_.find(peer) != live_.end() || left_.find(peer) != left_.end()) return false;
  if (subtree_samples_.find(peer) == subtree_samples_.end()) return false;
  live_.insert(peer);
  grace_until_.erase(peer);
  bb::record(bb::EventType::kChurn, static_cast<std::uint16_t>(bb::ChurnKind::kRejoin),
             opts_.self, round, peer);
  bb::set_peer(peer, 0, round);
  return true;
}

bool Collector::grace_holds(double now) {
  expire_grace(now);
  return !grace_until_.empty();
}

bool Collector::expire_grace(double now) {
  const std::size_t before = grace_until_.size();
  std::erase_if(grace_until_, [now](const auto& kv) { return kv.second <= now; });
  return grace_until_.size() != before;
}

void Collector::arm(std::unique_ptr<agg::StreamAccumulator> stream) {
  arrived_.clear();
  stream_ = std::move(stream);
}

bool Collector::accept_update(const Envelope& env, ModelUpdate& update,
                              std::size_t round) {
  if (env.round != round) return false;  // stale retransmission
  if (live_.find(env.from) == live_.end()) return false;
  if (arrived_.find(env.from) != arrived_.end()) return false;  // already folded
  suspicion_[env.from] *= 0.9;  // delivered on time: decay suspicion
  pending_[env.from] = std::move(update.params);
  if (stream_ != nullptr) drain_into_stream();
  return true;
}

bool Collector::accept_raw(const FrameView& view, std::size_t round,
                           std::size_t param_count) {
  if (stream_ == nullptr) return false;
  if (view.kind() != MsgKind::kModelUpdate) return false;
  const Envelope env = view.env();
  if (env.to != opts_.self || env.round != round) return false;
  if (live_.find(env.from) == live_.end()) return false;
  if (arrived_.find(env.from) != arrived_.end() ||
      pending_.find(env.from) != pending_.end()) {
    // Duplicate: decline so the decode path still applies the frame's delta
    // rx-cache update before the owner ignores it.
    return false;
  }
  // Zero-copy only for the next input in id order (see drain_into_stream);
  // anything else falls back to decode-and-buffer so the fold order never
  // depends on arrival order.
  for (const NodeId child : live_) {
    if (child == env.from) break;
    if (arrived_.find(child) == arrived_.end()) return false;
  }
  const ModelUpdateHead head = peek_model_update(view);
  if (head.param_count != param_count) return false;
  CodecState* rx = transport_.codec_for(env.from).delta
                       ? &transport_.rx_codec_state(env.from, opts_.self)
                       : nullptr;
  const std::span<const float> params = model_update_params(view, rx, stream_scratch_);
  suspicion_[env.from] *= 0.9;  // delivered on time: decay suspicion
  stream_->begin_input();
  stream_->add_chunk(0, params);
  stream_->end_input();
  arrived_.insert(env.from);
  drain_into_stream();
  return true;
}

bool Collector::has_update(NodeId child) const {
  return pending_.find(child) != pending_.end() ||
         arrived_.find(child) != arrived_.end();
}

bool Collector::quorum_complete() const {
  if (live_.empty()) return false;
  if (stream_ != nullptr) {
    for (const NodeId child : live_) {
      if (arrived_.find(child) == arrived_.end()) return false;
    }
    return true;
  }
  return pending_.size() >= live_.size();
}

void Collector::drain_into_stream() {
  // The stream folds inputs in ascending node id — the exact order the
  // materialized path's std::map iteration produces — so an update may only
  // be fed once every smaller live id has been.  Out-of-order arrivals wait
  // in pending_, which therefore holds at most the reorder gap, not the
  // whole quorum.
  for (;;) {
    NodeId next = 0;
    bool expecting = false;
    for (const NodeId child : live_) {
      if (arrived_.find(child) == arrived_.end()) {
        next = child;
        expecting = true;
        break;
      }
    }
    if (!expecting) return;
    const auto it = pending_.find(next);
    if (it == pending_.end()) return;
    stream_->begin_input();
    stream_->add_chunk(0, it->second);
    stream_->end_input();
    arrived_.insert(next);
    pending_.erase(it);
  }
}

std::vector<float> Collector::finish(agg::Aggregator& rule,
                                     std::span<const float> reference,
                                     std::size_t& n_inputs) {
  if (stream_ != nullptr) {
    // Streaming fold complete: every live child's update has been folded in
    // ascending id order, so finish() is bitwise what aggregate() over the
    // materialized vectors would have produced.
    n_inputs = stream_->inputs();
    rule.set_reference(reference);
    std::vector<float> out = stream_->finish();
    stream_.reset();
    arrived_.clear();
    pending_.clear();
    return out;
  }
  // Deterministic input order: pending_ is keyed by node id, and std::map
  // iterates in ascending key order regardless of arrival order.  The
  // vectors are moved, not copied — pending_ is dead after this.
  std::vector<agg::ModelVec> inputs;
  inputs.reserve(pending_.size());
  for (auto& [child, params] : pending_) inputs.push_back(std::move(params));
  n_inputs = inputs.size();
  rule.set_reference(reference);
  std::vector<float> out = rule.aggregate(inputs);
  pending_.clear();
  return out;
}

std::uint64_t Collector::total_subtree_samples() const {
  std::uint64_t total = 0;
  for (const auto& [child, samples] : subtree_samples_) total += samples;
  return total;
}

void Collector::append_status_peers(StatusReply& reply) const {
  // One row per member that ever joined, live or not — the probe sees churn.
  for (const auto& [child, samples] : subtree_samples_) {
    StatusPeer peer;
    peer.node = child;
    peer.state = live_.count(child) != 0 ? 0 : (left_.count(child) != 0 ? 2 : 1);
    const LinkTelemetry link = transport_.peer_telemetry(child);
    peer.rtt_ms = static_cast<float>(link.rtt_ms);
    const auto sus = suspicion_.find(child);
    peer.suspicion = sus == suspicion_.end() ? 0.0 : sus->second;
    peer.bytes_sent = link.bytes_sent;
    peer.bytes_received = link.bytes_received;
    reply.peers.push_back(peer);
  }
}

// ---------------------------------------------------------------------------
// Uplink

Uplink::Uplink(Transport& transport, Options opts)
    : transport_(transport), opts_(opts) {}

SendStatus Uplink::send_join(std::uint64_t subtree_samples) {
  return send_join_to(opts_.parent, subtree_samples);
}

SendStatus Uplink::send_join_to(NodeId to, std::uint64_t subtree_samples) {
  Membership join;
  join.event = Membership::Event::kJoin;
  join.device = opts_.self;
  join.cluster = opts_.cluster;
  join.subtree_samples = subtree_samples;
  join.codec = opts_.codec;
  join.trace = opts_.trace;             // capability advertisement
  join.wall_ns = obs::wall_clock_ns();  // echoed back for the first RTT sample
  return transport_.send({opts_.self, to, 0}, join, opts_.link_class);
}

Uplink::EchoAction Uplink::on_join_echo(const WireMessage& msg, std::size_t round) {
  const auto& member = std::get<Membership>(msg.payload);
  // A resend is owed when this round's update went to a node other than the
  // one echoing.  Comparing against the parent pointer instead would miss the
  // common failover sequence: the new leader's stale partial retargets the
  // parent BEFORE its join echo arrives, so by echo time the parent already
  // matches — but the update bytes died with the predecessor.
  const bool misdirected = started_ && msg.env.round == round &&
                           last_update_round_ == round &&
                           last_update_to_ != msg.env.from;
  opts_.parent = msg.env.from;  // the echo sender IS the coordinator now
  transport_.set_peer_codec(opts_.parent, member.codec);
  transport_.set_peer_tracing(opts_.parent, member.trace && opts_.trace);
  if (member.echo_wall_ns != 0) {
    // Coarse first estimate from the join echo (inflated by the parent's
    // join-wait; the per-round status pings refine it).
    const EchoEstimate est = estimate_from_echo(member.echo_wall_ns, member.wall_ns);
    transport_.note_rtt(opts_.parent, opts_.link_class, est.rtt_ms, est.offset_ns);
    if (transport_.trace_sink() != nullptr) {
      transport_.trace_sink()->set_clock_offset_ns(
          static_cast<std::int64_t>(est.offset_ns));
    }
  }
  if (!started_) {
    started_ = true;
    return EchoAction::kStart;
  }
  if (misdirected) {
    // Leader change mid-round: the previously trained update must reach the
    // new leader, but retraining would advance the RNG streams and break
    // bitwise identity with the unfailed run — resend, never retrain.
    return EchoAction::kResend;
  }
  if (msg.env.round != round) return EchoAction::kResync;
  return EchoAction::kNone;
}

SendStatus Uplink::send_update(std::vector<float>& params, std::uint64_t samples,
                               std::size_t round) {
  // Build the Payload variant in place and lend `params` to it for the
  // duration of the send — a copy-into-update staging would be a full O(d)
  // copy every round.
  Payload payload(std::in_place_type<ModelUpdate>);
  auto& update = std::get<ModelUpdate>(payload);
  update.sender = opts_.self;
  update.level = opts_.level;
  update.samples = samples;
  update.params = std::move(params);
  const SendStatus status =
      transport_.send({opts_.self, opts_.parent, round}, payload, opts_.link_class);
  params = std::move(update.params);
  // Record the attempt even on failure: the bytes are lost either way, and a
  // successor's echo must still see "this round went elsewhere" to ask for
  // the resend.
  last_update_to_ = opts_.parent;
  last_update_round_ = round;
  return status;
}

SendStatus Uplink::send_leave(std::size_t round) {
  Membership leave;
  leave.event = Membership::Event::kLeave;
  leave.device = opts_.self;
  leave.cluster = opts_.cluster;
  return transport_.send({opts_.self, opts_.parent, round}, leave, opts_.link_class);
}

void Uplink::send_status_ping(std::size_t round) {
  StatusRequest ping;
  ping.probe = ++probe_seq_;
  ping.wall_ns = obs::wall_clock_ns();
  transport_.send({opts_.self, opts_.parent, round}, ping, opts_.link_class);
}

void Uplink::on_status_reply(const WireMessage& msg) {
  const auto& reply = std::get<StatusReply>(msg.payload);
  const EchoEstimate est = estimate_from_echo(reply.echo_wall_ns, reply.wall_ns);
  transport_.note_rtt(msg.env.from, opts_.link_class, est.rtt_ms, est.offset_ns);
  if (msg.env.from == opts_.parent && transport_.trace_sink() != nullptr) {
    // The parent's clock is the federation reference the merge tool aligns
    // to (transitively up to the root).
    transport_.trace_sink()->set_clock_offset_ns(
        static_cast<std::int64_t>(est.offset_ns));
  }
}

}  // namespace abdhfl::net::hier
