#include "net/hier/vdev.hpp"

#include <stdexcept>
#include <utility>

namespace abdhfl::net::hier {

VirtualDeviceHost::VirtualDeviceHost(const FederationConfig& config,
                                     const FederationData& data, NodeId head,
                                     std::size_t first_device, std::size_t count,
                                     Transport& transport, std::uint32_t link_class)
    : config_(config),
      head_(head),
      transport_(transport),
      link_class_(link_class),
      workspace_(data.prototype.clone()) {
  if (first_device + count > data.shards.size()) {
    throw std::out_of_range("VirtualDeviceHost: device range exceeds the shard set");
  }
  devices_.reserve(count);
  for (std::size_t k = 0; k < count; ++k) {
    const std::size_t device = first_device + k;
    // The same seed derivation as make_device_trainer — a virtual device and
    // a LocalTrainer for the same global index produce identical SGD streams.
    util::Rng rng(config_.seed ^
                  (0x9E3779B97F4A7C15ULL * static_cast<std::uint64_t>(device + 1)));
    devices_.push_back({topology::device_node_id(device), &data.shards[device],
                        std::move(rng), 0.0, false});
    const std::size_t slot = k;
    transport_.register_node(devices_.back().id, [this, slot](WireMessage& msg) {
      on_device_message(slot, msg);
    });
  }
}

void VirtualDeviceHost::start() {
  // Trace continuity across the virtual fabric: with tracing on, device
  // replies must carry context tails, or the leaf's fold — which runs while
  // dispatching a device frame — starts a fresh trace and the round tree
  // breaks at the loopback hop (an orphan in trace_merge --check).
  if (config_.trace) transport_.set_peer_tracing(head_, true);
  for (const VirtualDevice& device : devices_) {
    Membership join;
    join.event = Membership::Event::kJoin;
    join.trace = config_.trace;
    join.device = device.id;
    join.cluster = device.id - devices_.front().id;
    join.subtree_samples = device.shard->size();
    // Default (dense) codec advertisement: loopback frames never cross a
    // socket, and the lossless link is what keeps a virtual-device run
    // bitwise identical to in-process trainers.
    join.wall_ns = obs::wall_clock_ns();
    transport_.send({device.id, head_, 0}, join, link_class_);
  }
}

std::uint64_t VirtualDeviceHost::total_samples() const noexcept {
  std::uint64_t total = 0;
  for (const VirtualDevice& device : devices_) total += device.shard->size();
  return total;
}

std::vector<ckpt::RngState> VirtualDeviceHost::rng_states() const {
  std::vector<ckpt::RngState> states;
  states.reserve(devices_.size());
  for (const VirtualDevice& device : devices_) states.push_back(device.rng.state());
  return states;
}

void VirtualDeviceHost::set_rng_states(const std::vector<ckpt::RngState>& states) {
  if (states.size() != devices_.size()) {
    throw std::invalid_argument("RNG state count does not match hosted devices");
  }
  for (std::size_t k = 0; k < devices_.size(); ++k) {
    devices_[k].rng.set_state(states[k]);
  }
}

std::vector<double> VirtualDeviceHost::losses() const {
  std::vector<double> out;
  out.reserve(devices_.size());
  for (const VirtualDevice& device : devices_) out.push_back(device.last_loss);
  return out;
}

void VirtualDeviceHost::set_losses(const std::vector<double>& losses) {
  if (losses.size() != devices_.size()) {
    throw std::invalid_argument("loss count does not match hosted devices");
  }
  for (std::size_t k = 0; k < devices_.size(); ++k) {
    devices_[k].last_loss = losses[k];
  }
}

void VirtualDeviceHost::on_device_message(std::size_t slot, WireMessage& msg) {
  VirtualDevice& device = devices_[slot];
  if (msg.kind == MsgKind::kMembership) {
    const auto& member = std::get<Membership>(msg.payload);
    if (member.event == Membership::Event::kShutdown && !device.down) {
      device.down = true;
      ++shutdown_;
    }
    return;
  }
  if (msg.kind != MsgKind::kPartialModel || device.down) return;
  const auto& partial = std::get<PartialModel>(msg.payload);
  // Train one round in the shared workspace and answer in the same round.
  // The workspace carries no cross-round state (train_device_round reloads
  // the start parameters), so interleaving thousands of devices through it
  // is exact.
  Payload payload(std::in_place_type<ModelUpdate>);
  auto& update = std::get<ModelUpdate>(payload);
  update.sender = device.id;
  update.level = 0;
  update.samples = device.shard->size();
  update.params = core::train_device_round(
      workspace_, *device.shard, device.rng, partial.params, config_.local_iters,
      config_.batch, config_.learning_rate, std::nullopt, device.last_loss);
  transport_.send({device.id, head_, msg.env.round}, payload, link_class_);
}

}  // namespace abdhfl::net::hier
