#include "net/hier/aggregator.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>
#include <utility>

#include "ckpt/state.hpp"
#include "ckpt/store.hpp"
#include "obs/blackbox.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/record.hpp"
#include "obs/trace.hpp"

namespace abdhfl::net::hier {

namespace bb = obs::blackbox;

namespace {

topology::HierSpec parse_spec_or_throw(const std::string& tree) {
  topology::HierSpec spec;
  if (tree.empty() || !topology::parse_tree_spec(tree, spec)) {
    throw std::invalid_argument("AggregatorNode: invalid tree spec '" + tree + "'");
  }
  return spec;
}

Collector::Options collector_opts(const FederationConfig& config,
                                  const topology::HierSpec& spec,
                                  const topology::HierPlan& plan, NodeId id,
                                  std::size_t level, bool leaf) {
  Collector::Options opts;
  opts.self = id;
  opts.expected_children = leaf ? spec.devices_per_leaf() : plan.children_of(id);
  opts.first_child = leaf ? topology::device_node_id(plan.first_device_of(id))
                          : plan.first_child_of(id);
  opts.link_class = static_cast<std::uint32_t>(level + 1);
  opts.codec = codec_from_config(config);
  opts.trace = config.trace;
  opts.rejoin_grace_s = config.rejoin_grace_s;
  return opts;
}

Uplink::Options uplink_opts(const FederationConfig& config,
                            const topology::HierPlan& plan, NodeId id,
                            NodeId parent, std::size_t level) {
  Uplink::Options opts;
  opts.self = id;
  opts.parent = parent;
  opts.cluster = id - plan.first_child_of(parent);
  opts.link_class = static_cast<std::uint32_t>(level);
  opts.level = static_cast<std::uint32_t>(level);
  opts.codec = codec_from_config(config);
  opts.trace = config.trace;
  return opts;
}

}  // namespace

AggregatorNode::AggregatorNode(FederationConfig config, std::size_t level,
                               std::size_t index, Transport& up, Transport& down,
                               obs::Recorder* recorder, ckpt::Store* checkpoint,
                               std::size_t checkpoint_every, bool resume)
    : config_(std::move(config)),
      spec_(parse_spec_or_throw(config_.tree)),
      plan_(spec_),
      level_(level),
      index_(index),
      id_(plan_.node_id(level, index)),
      parent_(plan_.parent_of(id_)),
      up_(up),
      down_(down),
      recorder_(recorder),
      checkpoint_(checkpoint),
      checkpoint_every_(checkpoint_every),
      data_(build_federation_data(config_)),
      rule_(agg::make_aggregator(config_.cluster_rule)),
      collector_(down, collector_opts(config_, spec_, plan_, id_, level_,
                                      level == spec_.process_levels() - 1)),
      uplink_(up, uplink_opts(config_, plan_, id_, parent_, level_)),
      child_link_class_(static_cast<std::uint32_t>(level_ + 1)),
      down_model_(data_.init_params) {
  if (level_ == 0 || level_ >= spec_.process_levels()) {
    throw std::invalid_argument("AggregatorNode: level must be interior (1..L-1)");
  }
  if (level_ == spec_.process_levels() - 1) {
    host_ = std::make_unique<VirtualDeviceHost>(config_, data_, id_,
                                                plan_.first_device_of(id_),
                                                spec_.devices_per_leaf(), down_,
                                                child_link_class_);
  }
  if (checkpoint_ != nullptr && resume) restore_checkpoint();

  down_.register_node(id_, [this](WireMessage& msg) { on_message(msg); });
  down_.add_peer_loss_handler([this](NodeId peer) {
    if (peer == parent_ && &up_ == &down_) on_up_peer_loss(peer);
    else on_down_peer_loss(peer);
  });
  down_.add_peer_reconnect_handler([this](NodeId peer) { on_peer_reconnect(peer); });
  if (&up_ != &down_) {
    up_.register_node(id_, [this](WireMessage& msg) { on_message(msg); });
    up_.add_peer_loss_handler([this](NodeId peer) {
      if (peer == parent_) on_up_peer_loss(peer);
    });
  }
  // Stamp this node's place in the tree onto its telemetry records
  // (net_link/net_events gain level/parent_id — validate_jsonl's optional
  // keys).
  up_.set_identity(static_cast<std::uint32_t>(level_), parent_);
  if (&up_ != &down_) down_.set_identity(static_cast<std::uint32_t>(level_), parent_);
  if (config_.trace) {
    up_.set_tracing(true);
    if (&up_ != &down_) down_.set_tracing(true);
  }
}

void AggregatorNode::start() {
  phase_deadline_ = wall_now() + config_.join_timeout_s;
  bb::set_phase(0, round_, deadline_ns(phase_deadline_));  // joining
  bb::record(bb::EventType::kPhase, 0, id_, round_);
  if (host_ != nullptr) host_->start();
}

void AggregatorNode::on_idle() {
  if (phase_ == Phase::kDone) return;
  const double now = wall_now();
  if (parent_lost_ && now >= next_rejoin_) {
    // The parent may be a restarting process listening on the same address:
    // keep knocking.  revive_peer redials the link the loss path closed for
    // good; a failure just reschedules the retry.
    next_rejoin_ = now + kRejoinRetryS;
    if (up_.revive_peer(parent_)) {
      uplink_.send_join(collector_.total_subtree_samples());
    }
  }
  // A grace window expiring releases the aggregation hold; the quorum may
  // already be complete (or gone entirely).
  if (phase_ == Phase::kTraining && collector_.expire_grace(now)) {
    if (collector_.live().empty() && !collector_.grace_pending()) {
      finish(/*failed=*/true);
      return;
    }
    maybe_forward_up();
    if (phase_ == Phase::kDone) return;
  }
  if (now < phase_deadline_) return;
  if (phase_ == Phase::kJoining) {
    // Join deadline: vouch for whoever showed up (the subtree runs
    // degraded); nobody at all means nothing to aggregate.
    if (collector_.live().empty()) {
      finish(/*failed=*/true);
      return;
    }
    if (uplink_.send_join(collector_.total_subtree_samples()) != SendStatus::kOk) {
      note_parent_lost();
    }
    phase_deadline_ = now + config_.round_timeout_s;
    return;
  }
  if (phase_ == Phase::kTraining) {
    // Round deadline: children that never delivered are treated as lost.
    const std::set<NodeId> live = collector_.live();
    for (const NodeId child : live) {
      if (!collector_.has_update(child)) on_down_peer_loss(child);
    }
    return;
  }
  if (phase_ == Phase::kFinishing) {
    uplink_.send_leave(round_);  // stragglers' loss: say goodbye regardless
    finish(/*failed=*/false);
  }
}

void AggregatorNode::on_message(WireMessage& msg) {
  // Introspection first — a probe must never perturb the protocol state.
  if (msg.kind == MsgKind::kStatusRequest) {
    reply_status(std::get<StatusRequest>(msg.payload), msg.env.from);
    return;
  }
  if (msg.kind == MsgKind::kStatusReply) {
    uplink_.on_status_reply(msg);
    return;
  }
  if (phase_ == Phase::kDone) return;
  if (msg.env.from == parent_) {
    on_parent_message(msg);
  } else {
    on_child_message(msg);
  }
}

void AggregatorNode::on_parent_message(WireMessage& msg) {
  if (msg.kind == MsgKind::kMembership) {
    const auto& member = std::get<Membership>(msg.payload);
    if (member.event == Membership::Event::kJoin) {
      parent_lost_ = false;
      switch (uplink_.on_join_echo(msg, round_)) {
        case Uplink::EchoAction::kStart:
        case Uplink::EchoAction::kResync:
          // The starting gun (or a resync after the parent re-admitted us):
          // adopt the round the parent is collecting and restart the
          // subtree's round on that clock.
          round_ = static_cast<std::size_t>(msg.env.round);
          begin_round_down();
          break;
        case Uplink::EchoAction::kResend:
        case Uplink::EchoAction::kNone:
          // Our own round echoed back — a restarted parent that lost the
          // update we sent its predecessor, or (kResend) a NEW parent that
          // took over the same round.  Resend the cached fold, but ONLY if
          // we folded this round already; retraining here would advance the
          // device RNG streams a second time and break bitwise
          // reproducibility.  (An unfinished collection delivers through
          // maybe_forward_up as usual.)
          if (last_sent_round_ == round_) {
            uplink_.send_update(last_sent_, collector_.total_subtree_samples(),
                                round_);
          }
          break;
      }
    } else if (member.event == Membership::Event::kShutdown) {
      // Coordinator abort: propagate down and stop.
      Payload bye(std::in_place_type<Membership>);
      std::get<Membership>(bye).event = Membership::Event::kShutdown;
      std::get<Membership>(bye).device = id_;
      for (const NodeId child : collector_.live()) {
        down_.send({id_, child, round_}, bye, child_link_class_);
      }
      finish(/*failed=*/false);
    }
    return;
  }
  if (msg.kind == MsgKind::kPartialModel) {
    auto& partial = std::get<PartialModel>(msg.payload);
    if (msg.env.round != round_) return;  // stale frame from a dropped round
    if (host_ != nullptr) {
      // Leaf head: the 2-level worker's Eq.-1 merge against our latest fold.
      obs::Span merge_span(up_.trace_sink(), "merge", round_, id_);
      merge_models_into(partial.params, last_sent_, partial.alpha, down_model_);
    } else {
      // Mid-level: forward the broadcast down unchanged, then keep the
      // global as the next round's fold reference.  The payload is reused
      // verbatim — children at round_ accept it by envelope round.
      for (const NodeId child : collector_.live()) {
        down_.send({id_, child, round_}, msg.payload, child_link_class_);
      }
      down_model_ = std::move(partial.params);
    }
    ++round_;
    bb::record(bb::EventType::kRound, 0, id_, round_ - 1);
    bb::note_progress(round_);
    bb::set_peer(parent_, 0, round_);
    if (checkpoint_ != nullptr &&
        (round_ % std::max<std::size_t>(checkpoint_every_, 1) == 0 ||
         round_ >= config_.rounds)) {
      save_checkpoint();
    }
    if (round_ >= config_.rounds) {
      if (host_ != nullptr) {
        // The subtree is one process: say goodbye up, retire the devices.
        uplink_.send_leave(round_);
        Payload bye(std::in_place_type<Membership>);
        std::get<Membership>(bye).event = Membership::Event::kShutdown;
        std::get<Membership>(bye).device = id_;
        for (const NodeId child : collector_.live()) {
          down_.send({id_, child, round_}, bye, child_link_class_);
        }
        finish(/*failed=*/false);
      } else {
        // Await the children's leaves before saying goodbye ourselves, so
        // no socket closes under a frame still in flight.
        phase_ = Phase::kFinishing;
        phase_deadline_ = wall_now() + config_.round_timeout_s;
        bb::record(bb::EventType::kPhase, 2, id_, round_);
        bb::set_phase(2, round_, deadline_ns(phase_deadline_));
        maybe_finish();
      }
    } else {
      uplink_.send_status_ping(round_);  // refresh RTT/offset on live traffic
      arm_collect();
      phase_deadline_ = wall_now() + config_.round_timeout_s;
      if (host_ != nullptr) disseminate_to_devices();
    }
  }
}

void AggregatorNode::on_child_message(WireMessage& msg) {
  if (msg.kind == MsgKind::kMembership) {
    const auto& member = std::get<Membership>(msg.payload);
    if (member.event == Membership::Event::kJoin && phase_ == Phase::kJoining) {
      if (collector_.on_join(msg.env.from, member, round_)) {
        // Every expected child joined: vouch for the complete subtree.
        if (uplink_.send_join(collector_.total_subtree_samples()) !=
            SendStatus::kOk) {
          note_parent_lost();
        }
        phase_deadline_ = wall_now() + config_.round_timeout_s;
      }
    } else if (member.event == Membership::Event::kJoin &&
               phase_ == Phase::kTraining) {
      // A child (re)joining mid-training — typically its subtree knocking on
      // a restarted process whose parent already resynced it into round_
      // before any child came back.  Admit it and echo immediately: the echo
      // round tells the child which quorum to land its next update in, and a
      // round-matching echo makes it resend its cached fold, not retrain.
      collector_.on_join(msg.env.from, member, round_);
      collector_.echo_join(msg.env.from, round_);
    } else if (member.event == Membership::Event::kLeave) {
      collector_.on_leave(msg.env.from, round_);
      maybe_finish();
    }
    return;
  }
  if (msg.kind == MsgKind::kModelUpdate) {
    if (phase_ != Phase::kTraining) return;
    auto& update = std::get<ModelUpdate>(msg.payload);
    if (collector_.accept_update(msg.env, update, round_)) maybe_forward_up();
  }
}

void AggregatorNode::begin_round_down() {
  phase_ = Phase::kTraining;
  arm_collect();
  phase_deadline_ = wall_now() + config_.round_timeout_s;
  bb::record(bb::EventType::kPhase, 1, id_, round_, collector_.live().size());
  bb::set_phase(1, round_, deadline_ns(phase_deadline_));
  if (host_ != nullptr) {
    disseminate_to_devices();
  } else {
    // Propagate the starting gun: echo the children's joins with our round.
    collector_.echo_joins(round_);
  }
}

void AggregatorNode::disseminate_to_devices() {
  // Broadcast the model the devices train from this round, without staging
  // a copy per send: the payload borrows down_model_ for the loop.
  Payload payload(std::in_place_type<PartialModel>);
  auto& partial = std::get<PartialModel>(payload);
  partial.origin = id_;
  partial.flag_level = static_cast<std::uint32_t>(level_);
  partial.is_global = false;  // the leaf head's merged model, not the global
  partial.alpha = static_cast<float>(config_.alpha);
  partial.flag_fraction = 1.0;
  partial.params = std::move(down_model_);
  for (const NodeId child : collector_.live()) {
    down_.send({id_, child, round_}, payload, child_link_class_);
  }
  down_model_ = std::move(partial.params);
}

void AggregatorNode::arm_collect() {
  // Materialize-first on purpose: the cluster fold must be bitwise what
  // cluster_round / the reference runner compute, i.e. aggregate() over the
  // children's vectors in ascending id order.
  collector_.arm(nullptr);
}

void AggregatorNode::maybe_forward_up() {
  if (phase_ != Phase::kTraining || collector_.live().empty()) return;
  // An evicted child inside its grace window holds the round open (the
  // mid-tier restart path).
  if (collector_.grace_holds(wall_now())) return;
  if (!collector_.quorum_complete()) return;
  std::size_t n_inputs = 0;
  {
    // Round-root span, explicitly parentless with the round's own trace id
    // (the WorkerNode::train_and_send pattern): this runs while dispatching
    // a child's frame, and that frame's chain reaches back through the
    // untraced join kickoff — stack parenting would pin the whole subtree
    // fold to trace 0 and orphan the parent's net_recv.  The uplink send
    // stays inside the span so the cross-process edge carries this trace.
    obs::TraceBuffer* sink = up_.trace_sink();
    const std::uint64_t trace_id = obs::make_trace_id(config_.seed, round_);
    if (sink != nullptr) sink->set_trace_id(trace_id);
    obs::Span fold_span(sink, "subtree_agg", obs::SpanContext{trace_id, 0, true},
                        round_, id_);
    last_sent_ = collector_.finish(*rule_, down_model_, n_inputs);
    last_sent_round_ = round_;
    record_round(static_cast<double>(n_inputs));
    if (uplink_.send_update(last_sent_, collector_.total_subtree_samples(), round_) !=
        SendStatus::kOk) {
      note_parent_lost();
    }
  }
}

void AggregatorNode::maybe_finish() {
  if (phase_ != Phase::kFinishing) return;
  for (const NodeId child : collector_.live()) {
    if (collector_.left().find(child) == collector_.left().end()) return;
  }
  uplink_.send_leave(round_);
  finish(/*failed=*/false);
}

void AggregatorNode::finish(bool failed) {
  phase_ = Phase::kDone;
  failed_ = failed;
  bb::record(bb::EventType::kPhase, 3, id_, round_, failed ? 1 : 0);
  bb::set_phase(3, round_);
}

void AggregatorNode::note_parent_lost() {
  if (parent_lost_) return;
  parent_lost_ = true;
  next_rejoin_ = wall_now();  // first retry on the next idle tick
  bb::set_peer(parent_, 1, round_);
}

void AggregatorNode::on_down_peer_loss(NodeId peer) {
  if (phase_ == Phase::kDone) return;
  if (!collector_.evict(peer, round_, wall_now())) return;
  if (recorder_ != nullptr) {
    obs::RoundRecord& rec = recorder_->begin_round("dist_churn", round_);
    rec.set("worker", static_cast<double>(peer));
    rec.set("live_workers", static_cast<double>(collector_.live().size()));
  }
  if (phase_ == Phase::kTraining) {
    if (collector_.live().empty() && !collector_.grace_pending()) {
      finish(/*failed=*/true);
    } else {
      if (collector_.streaming()) collector_.drain_into_stream();
      maybe_forward_up();
    }
  } else if (phase_ == Phase::kFinishing) {
    maybe_finish();
  }
}

void AggregatorNode::on_up_peer_loss(NodeId peer) {
  if (peer != parent_ || phase_ == Phase::kDone) return;
  // Survivable: keep serving the subtree and knock until the parent —
  // possibly a restarted process — answers (see on_idle).
  note_parent_lost();
}

void AggregatorNode::on_peer_reconnect(NodeId peer) {
  if (phase_ != Phase::kTraining || peer == parent_) return;
  if (!collector_.readmit(peer, round_)) return;
  if (recorder_ != nullptr) {
    obs::RoundRecord& rec = recorder_->begin_round("dist_rejoin", round_);
    rec.set("worker", static_cast<double>(peer));
    rec.set("live_workers", static_cast<double>(collector_.live().size()));
  }
  // Resync echo: tells the child which quorum its next update must land in
  // (sent before the reconnect's buffered frames drain — see RootNode).
  collector_.echo_join(peer, round_);
}

void AggregatorNode::reply_status(const StatusRequest& request, NodeId to) {
  const bool upward = to == parent_ || is_observer(to);
  Transport& via = upward ? up_ : down_;
  if (is_observer(to)) via.mark_transient(to);
  StatusReply reply;
  reply.node = id_;
  reply.probe = request.probe;
  reply.round = round_;
  reply.phase = static_cast<std::uint8_t>(phase_);
  reply.live_workers = static_cast<std::uint32_t>(collector_.live().size());
  reply.level = static_cast<std::uint32_t>(level_);
  reply.parent = parent_;
  reply.wall_ns = obs::wall_clock_ns();
  reply.echo_wall_ns = request.wall_ns;
  // First row: the parent link (the probe renders its RTT); then the child
  // table the collector keeps.
  StatusPeer up_row;
  up_row.node = parent_;
  up_row.state = parent_lost_ ? 1 : 0;
  const LinkTelemetry link = up_.peer_telemetry(parent_);
  up_row.rtt_ms = static_cast<float>(link.rtt_ms);
  up_row.bytes_sent = link.bytes_sent;
  up_row.bytes_received = link.bytes_received;
  reply.peers.push_back(up_row);
  collector_.append_status_peers(reply);
  if (request.detail != 0 && obs::enabled()) {
    reply.metrics = obs::to_prometheus(obs::global_registry().scrape());
  }
  via.send({id_, to, round_},
           reply, upward ? static_cast<std::uint32_t>(level_) : child_link_class_);
}

void AggregatorNode::record_round(double inputs) {
  if (recorder_ == nullptr) return;
  obs::RoundRecord& rec = recorder_->begin_round("dist_hier", round_);
  rec.set("node", static_cast<double>(id_));
  rec.set("level", static_cast<double>(level_));
  rec.set("parent_id", static_cast<double>(parent_));
  rec.set("live_children", static_cast<double>(collector_.live().size()));
  rec.set("inputs", inputs);
}

void AggregatorNode::save_checkpoint() {
  // Taken right after a merge/forward: down_model_ is the model the next
  // round disseminates, round_ already points at that round.  save_now —
  // the mid-tier kill test SIGKILLs exactly this process.
  ckpt::Container c;
  c.producer = "aggregator";
  c.round = round_ - 1;
  {
    ckpt::PayloadWriter w;
    w.f32vec(down_model_);
    c.chunks.push_back({ckpt::kTagParams, w.take()});
  }
  {
    ckpt::PayloadWriter w;
    w.u64(id_);
    w.u64(static_cast<std::uint64_t>(level_));
    w.u64(last_sent_round_ == kNeverSent
              ? ~std::uint64_t{0}
              : static_cast<std::uint64_t>(last_sent_round_));
    w.f32vec(last_sent_);
    c.chunks.push_back({ckpt::kTagExtra, w.take()});
  }
  if (host_ != nullptr) {
    c.chunks.push_back(
        {ckpt::kTagRngStates, ckpt::encode_rng_states(host_->rng_states())});
    ckpt::PayloadWriter w;
    w.f64vec(host_->losses());
    c.chunks.push_back({ckpt::kTagLosses, w.take()});
  }
  checkpoint_->save_now(c.round, ckpt::encode_container(c));
}

void AggregatorNode::restore_checkpoint() {
  auto snap = checkpoint_->load_latest();
  if (!snap.has_value()) return;  // nothing yet: fresh start
  if (snap->producer != "aggregator") {
    throw ckpt::CkptError("checkpoint produced by \"" + snap->producer +
                          "\", expected \"aggregator\"");
  }
  {
    ckpt::PayloadReader r(snap->require(ckpt::kTagParams).payload);
    auto params = r.f32vec();
    r.expect_done();
    if (params.size() != down_model_.size()) {
      throw ckpt::CkptError("PARM chunk dimension mismatch: resume with the "
                            "same federation configuration");
    }
    down_model_ = std::move(params);
  }
  {
    ckpt::PayloadReader r(snap->require(ckpt::kTagExtra).payload);
    const auto saved_id = static_cast<NodeId>(r.u64());
    if (saved_id != id_) {
      throw ckpt::CkptError("snapshot belongs to node " + std::to_string(saved_id));
    }
    const auto saved_level = static_cast<std::size_t>(r.u64());
    if (saved_level != level_) {
      throw ckpt::CkptError("snapshot belongs to level " +
                            std::to_string(saved_level));
    }
    const std::uint64_t sent_round = r.u64();
    last_sent_round_ = sent_round == ~std::uint64_t{0}
                           ? kNeverSent
                           : static_cast<std::size_t>(sent_round);
    last_sent_ = r.f32vec();
    r.expect_done();
  }
  if (host_ != nullptr) {
    host_->set_rng_states(
        ckpt::decode_rng_states(snap->require(ckpt::kTagRngStates).payload));
    ckpt::PayloadReader r(snap->require(ckpt::kTagLosses).payload);
    host_->set_losses(r.f64vec());
    r.expect_done();
  }
  round_ = static_cast<std::size_t>(snap->round) + 1;
  resume_round_ = round_;
  if (recorder_ != nullptr) {
    obs::RoundRecord& rec = recorder_->begin_round("dist_resume", round_);
    rec.set("worker", static_cast<double>(id_));
  }
}

}  // namespace abdhfl::net::hier
