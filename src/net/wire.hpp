#pragma once
// Wire codec for federation traffic (DESIGN.md §9).
//
// Every message that crosses a link — in-process loopback or a real socket —
// is one length-framed, versioned, checksummed frame:
//
//   offset size  field
//   0      4    magic 0xABDF4E71
//   4      2    codec version (kWireVersion)
//   6      2    message kind (MsgKind)
//   8      2    flags (bit 0: quantized parameter payload)
//   10     2    reserved, must be 0
//   12     4    sender node id
//   16     4    receiver node id
//   20     8    round number
//   28     4    body length in bytes
//   32     ...  body (kind-specific, see the payload structs)
//   32+n   8    FNV-1a digest over bytes [0, 32+n)
//
// All integers are little-endian (the codec refuses byte-swapped frames with
// a clear error instead of mis-decoding them).  Model parameters inside a
// body reuse the nn/serialize.hpp blob — magic, version, count, floats,
// digest — so a corrupted tensor is caught twice, once per layer.  Links
// that negotiated compression carry the nn/quantize block format instead
// (flags bit 0), trading ~4x wire size for bounded reconstruction error.
//
// The four payload kinds cover everything the federation exchanges: trained
// model updates going up, flag/global partial models (with their Eq. 1
// correction factor) going down, consensus votes, and membership/churn
// events.  encoded_size()/the *_wire_size() helpers are the codec-computed
// byte accounting the runners report (replacing the hand-estimated
// nn::wire_size arithmetic); estimated_model_bytes() preserves the old
// estimate so tests can assert the two agree up to the frame overhead.

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

namespace abdhfl::net {

using NodeId = std::uint32_t;

inline constexpr std::uint32_t kWireMagic = 0xABDF4E71U;
inline constexpr std::uint16_t kWireVersion = 1;

/// Header bytes before the body; the trailing digest adds 8 more.
inline constexpr std::size_t kHeaderSize = 32;
inline constexpr std::size_t kDigestSize = 8;

/// Frame flags.
inline constexpr std::uint16_t kFlagQuantized = 1u << 0;

enum class MsgKind : std::uint16_t {
  kModelUpdate = 1,    // device/cluster update going up the tree
  kPartialModel = 2,   // flag or global model going down (+ correction factor)
  kConsensusVote = 3,  // vote/commit-ack on a candidate model
  kMembership = 4,     // join / leave / crash / shutdown
};

[[nodiscard]] const char* to_string(MsgKind kind) noexcept;

struct WireError : std::runtime_error {
  explicit WireError(const std::string& what) : std::runtime_error(what) {}
};

/// Per-link parameter compression, negotiated by the membership handshake:
/// a joining node advertises the strongest codec it accepts and the parent
/// echoes its choice back; both sides then encode with the agreed setting.
struct Codec {
  std::uint8_t quantize_bits = 0;  // 0 = raw float32, 1..8 = nn/quantize
  std::uint32_t block = 256;       // values per quantization block

  [[nodiscard]] bool quantized() const noexcept { return quantize_bits != 0; }
};

// ---------------------------------------------------------------------------
// Payload kinds.  Each carries its MsgKind as kMessageKind so checked casts
// (sim::payload_cast, the transport dispatch) can validate tag vs type.

/// A trained model going up: bottom device -> leader, or leader -> parent.
struct ModelUpdate {
  static constexpr std::uint32_t kMessageKind = static_cast<std::uint32_t>(MsgKind::kModelUpdate);
  std::uint32_t sender = 0;   // originating device id
  std::uint32_t level = 0;    // tree level the update leaves from
  std::uint64_t samples = 0;  // training samples behind the update
  std::vector<float> params;
};

/// A flag or global partial model going down, with the Eq. 1 correction
/// factor the receiver should merge it with.
struct PartialModel {
  static constexpr std::uint32_t kMessageKind = static_cast<std::uint32_t>(MsgKind::kPartialModel);
  std::uint32_t origin = 0;      // aggregating node id
  std::uint32_t flag_level = 0;  // level the model was formed at
  bool is_global = false;        // true for θ_G, false for a flag model
  float alpha = 0.0f;            // correction factor α (Eq. 1)
  double flag_fraction = 0.0;    // |D_F| / |D_G| of the originating cluster
  std::vector<float> params;
};

/// A vote on a candidate model (CBA protocols, commit acknowledgements).
struct ConsensusVote {
  static constexpr std::uint32_t kMessageKind = static_cast<std::uint32_t>(MsgKind::kConsensusVote);
  std::uint32_t voter = 0;
  std::uint32_t candidate = 0;  // candidate index / round the vote refers to
  float score = 0.0f;           // voter's validation score (0 when unused)
  bool accept = false;
};

/// Membership and churn events (Assumption 3 dynamics over a real link).
struct Membership {
  static constexpr std::uint32_t kMessageKind = static_cast<std::uint32_t>(MsgKind::kMembership);
  enum class Event : std::uint8_t {
    kJoin = 0,      // hello: node joins, advertises its codec capability
    kLeave = 1,     // graceful departure
    kCrash = 2,     // peer loss detected by the transport, relayed upward
    kShutdown = 3,  // coordinator tells the subtree to finish
  };
  Event event = Event::kJoin;
  std::uint32_t device = 0;
  std::uint32_t cluster = 0;
  std::uint64_t subtree_samples = 0;  // join: samples behind this subtree
  Codec codec;                        // join: advertised / echoed codec
};

using Payload = std::variant<ModelUpdate, PartialModel, ConsensusVote, Membership>;

/// An already-encoded frame travelling as an opaque sim::Message payload
/// (the loopback-over-simulator bridge).  Tagged like every other payload so
/// receivers use the checked sim::payload_cast instead of a blind cast.
struct EncodedFrame {
  static constexpr std::uint32_t kMessageKind = 0xF7A3;
  std::vector<std::uint8_t> bytes;
  std::uint32_t link_class = 0;
};

/// Addressing common to every frame.
struct Envelope {
  NodeId from = 0;
  NodeId to = 0;
  std::uint64_t round = 0;
};

/// A fully decoded frame.
struct WireMessage {
  Envelope env;
  MsgKind kind = MsgKind::kModelUpdate;
  bool quantized = false;
  Payload payload;
};

// ---------------------------------------------------------------------------
// Encode / decode.

/// Encode one frame.  `codec` applies to payloads that carry parameters
/// (ModelUpdate, PartialModel); other kinds ignore it.
[[nodiscard]] std::vector<std::uint8_t> encode_frame(const Envelope& env,
                                                     const Payload& payload,
                                                     const Codec& codec = {});

/// Decode a complete frame; throws WireError on any corruption (bad magic,
/// byte-swapped magic, version/kind mismatch, truncation, digest failure).
[[nodiscard]] WireMessage decode_frame(std::span<const std::uint8_t> frame);

/// Stream-parsing helper: given at least kHeaderSize buffered bytes, returns
/// the total frame length (header + body + digest) after validating magic and
/// version.  Throws WireError on a bad header so a socket reader can drop the
/// connection instead of resynchronizing on garbage.
[[nodiscard]] std::size_t peek_frame_size(std::span<const std::uint8_t> prefix);

// ---------------------------------------------------------------------------
// Wire-size accounting (what the runners report as communication cost).

/// Header + digest bytes around any body.
[[nodiscard]] constexpr std::size_t frame_overhead() noexcept {
  return kHeaderSize + kDigestSize;
}

/// Exact encoded frame size of a payload under a codec.
[[nodiscard]] std::size_t encoded_size(const Payload& payload, const Codec& codec = {});

/// Exact frame size of a ModelUpdate carrying `param_count` raw floats.
[[nodiscard]] std::size_t model_update_wire_size(std::size_t param_count) noexcept;

/// Exact frame size of a PartialModel carrying `param_count` raw floats.
[[nodiscard]] std::size_t partial_model_wire_size(std::size_t param_count) noexcept;

/// Exact frame size of a ConsensusVote / Membership frame.
[[nodiscard]] std::size_t vote_wire_size() noexcept;
[[nodiscard]] std::size_t membership_wire_size() noexcept;

/// The pre-codec estimate callers used to hand-compute (nn::wire_size): the
/// parameter blob alone, no frame.  Kept as the documented fallback so tests
/// can assert estimate + frame_overhead + fixed fields == codec size.
[[nodiscard]] std::size_t estimated_model_bytes(std::size_t param_count) noexcept;

/// The same estimate for an arbitrary payload (0 for kinds that carry no
/// parameters) — what sim::Message::bytes_estimated is populated with when a
/// frame rides the simulated network.
[[nodiscard]] std::size_t estimated_payload_bytes(const Payload& payload) noexcept;

}  // namespace abdhfl::net
