#pragma once
// Wire codec for federation traffic (DESIGN.md §9, §11).
//
// Every message that crosses a link — in-process loopback or a real socket —
// is one length-framed, versioned, checksummed frame:
//
//   offset size  field
//   0      4    magic 0xABDF4E71
//   4      2    codec version (kWireVersion)
//   6      2    message kind (MsgKind)
//   8      2    flags (bit 0: quantized, bit 1: top-k, bit 2: delta, bit 3: traced)
//   10     2    reserved, must be 0
//   12     4    sender node id
//   16     4    receiver node id
//   20     8    round number
//   28     4    body length in bytes
//   32     ...  body (kind-specific, see the payload structs)
//   ...    32   optional trace-context tail (kFlagTraced): trace id, span id,
//               parent span id, sender wall_ns — counted in the body length
//               and covered by the digest, sliced off before payload decode
//   32+n   8    FNV-1a digest over bytes [0, 32+n)
//
// All integers are little-endian (the codec refuses byte-swapped frames with
// a clear error instead of mis-decoding them).  A parameter section inside a
// body is the composition of up to three negotiated stages (Codec):
//
//   delta     values are v = params - last reconstructed model on this link
//             (kFlagDelta; dense fallback when the link has no cached base);
//   top-k     only the k largest-|v| entries travel, as a sparse section:
//             k (u32), d (u64), k strictly-increasing u32 indices, values
//             (kFlagTopK; absent entries are 0, or the base under delta);
//   quantize  the transmitted values ride the nn/quantize block format
//             instead of raw float32 (kFlagQuantized).
//
// Raw dense parameters reuse the nn/serialize.hpp blob — magic, version,
// count, floats, digest — so a corrupted tensor is caught twice, once per
// layer, and so the float bytes of an encoded frame ARE the in-memory
// representation: the zero-copy receive path (FrameView /
// model_update_params) hands aggregation a span into the frame without
// decoding.
//
// The four payload kinds cover everything the federation exchanges: trained
// model updates going up, flag/global partial models (with their Eq. 1
// correction factor) going down, consensus votes, and membership/churn
// events.  encoded_size()/the *_wire_size() helpers are the codec-computed
// byte accounting the runners report (replacing the hand-estimated
// nn::wire_size arithmetic); estimated_model_bytes() preserves the old
// estimate so tests can assert the two agree up to the frame overhead.

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

namespace abdhfl::net {

using NodeId = std::uint32_t;

inline constexpr std::uint32_t kWireMagic = 0xABDF4E71U;
inline constexpr std::uint16_t kWireVersion = 4;  // v4: leader-rotation consensus
                                                  // messages + StatusReply term/
                                                  // leader/commit columns

/// Header bytes before the body; the trailing digest adds 8 more.
inline constexpr std::size_t kHeaderSize = 32;
inline constexpr std::size_t kDigestSize = 8;

/// Frame flags.
inline constexpr std::uint16_t kFlagQuantized = 1u << 0;
inline constexpr std::uint16_t kFlagTopK = 1u << 1;
inline constexpr std::uint16_t kFlagDelta = 1u << 2;
inline constexpr std::uint16_t kFlagTraced = 1u << 3;
inline constexpr std::uint16_t kKnownFlags =
    kFlagQuantized | kFlagTopK | kFlagDelta | kFlagTraced;

/// Hard ceiling on any wire-supplied dense parameter count (64M floats =
/// 256MB).  The sparse section carries its dense size d out-of-band of the
/// value bytes, so unlike the dense blob it cannot be bounded by the bytes
/// present — this cap is what stops a forged d from sizing the allocation.
inline constexpr std::uint64_t kMaxWireParams = std::uint64_t{1} << 26;

enum class MsgKind : std::uint16_t {
  kModelUpdate = 1,    // device/cluster update going up the tree
  kPartialModel = 2,   // flag or global model going down (+ correction factor)
  kConsensusVote = 3,  // vote/commit-ack on a candidate model
  kMembership = 4,     // join / leave / crash / shutdown
  kStatusRequest = 5,  // live introspection probe / RTT heartbeat
  kStatusReply = 6,    // round, peer table, Prometheus metrics
  kVoteRequest = 7,    // leader rotation: candidate solicits a term vote
  kVoteReply = 8,      // leader rotation: grant / refusal for a term
  kAppendEntries = 9,  // leader rotation: replicated-log entries (may be empty)
  kHeartbeat = 10,     // leader keepalive / follower replication ack
};

[[nodiscard]] const char* to_string(MsgKind kind) noexcept;

struct WireError : std::runtime_error {
  explicit WireError(const std::string& what) : std::runtime_error(what) {}
};

/// Distributed-tracing context riding an optional fixed-size tail section at
/// the end of the body (kFlagTraced; DESIGN.md §12).  Old peers that never
/// negotiate tracing simply never see the flag — frames stay byte-identical
/// to the untraced layout.  `span_id` is the sender's net_send span; the
/// receiver parents its net_recv span to it, which is the causal edge
/// tools/trace_merge joins processes on.
struct TraceContext {
  std::uint64_t trace_id = 0;        // obs::make_trace_id(seed, round)
  std::uint64_t span_id = 0;         // sending span (0 = invalid context)
  std::uint64_t parent_span_id = 0;  // sending span's parent, for tree repair
  std::int64_t wall_ns = 0;          // sender's system_clock at encode

  [[nodiscard]] bool valid() const noexcept { return span_id != 0; }
};

/// Encoded byte size of the trace tail (four 64-bit fields).
inline constexpr std::size_t kTraceContextSize = 32;

/// Per-link parameter compression, negotiated by the membership handshake:
/// a joining node advertises the strongest codec it accepts and the parent
/// echoes its choice back; both sides then encode with the agreed setting.
struct Codec {
  std::uint8_t quantize_bits = 0;  // 0 = raw float32, 1..8 = nn/quantize
  std::uint32_t block = 256;       // values per quantization block
  std::uint32_t topk = 0;          // 0 = dense, else keep the k largest |v|
  bool delta = false;              // encode vs the link's last model

  [[nodiscard]] bool quantized() const noexcept { return quantize_bits != 0; }
  [[nodiscard]] bool compressed() const noexcept {
    return quantized() || topk != 0 || delta;
  }
};

/// Per-link delta-codec state: the last *reconstructed* parameter vector per
/// parameter-carrying kind.  Both ends of a link update their copy from the
/// same post-lossy reconstruction (the sender decodes its own encoding), so
/// the bases stay bitwise-synchronized as long as frames arrive in order.
/// Cleared on any link reset (drop, reconnect, redial) — the next frame then
/// falls back to dense and re-seeds both sides.
struct CodecState {
  std::vector<float> model_update;
  std::vector<float> partial_model;

  [[nodiscard]] std::vector<float>& slot(MsgKind kind);
  void clear() noexcept {
    model_update.clear();
    partial_model.clear();
  }
};

// ---------------------------------------------------------------------------
// Payload kinds.  Each carries its MsgKind as kMessageKind so checked casts
// (sim::payload_cast, the transport dispatch) can validate tag vs type.

/// A trained model going up: bottom device -> leader, or leader -> parent.
struct ModelUpdate {
  static constexpr std::uint32_t kMessageKind = static_cast<std::uint32_t>(MsgKind::kModelUpdate);
  std::uint32_t sender = 0;   // originating device id
  std::uint32_t level = 0;    // tree level the update leaves from
  std::uint64_t samples = 0;  // training samples behind the update
  std::vector<float> params;
};

/// A flag or global partial model going down, with the Eq. 1 correction
/// factor the receiver should merge it with.
struct PartialModel {
  static constexpr std::uint32_t kMessageKind = static_cast<std::uint32_t>(MsgKind::kPartialModel);
  std::uint32_t origin = 0;      // aggregating node id
  std::uint32_t flag_level = 0;  // level the model was formed at
  bool is_global = false;        // true for θ_G, false for a flag model
  float alpha = 0.0f;            // correction factor α (Eq. 1)
  double flag_fraction = 0.0;    // |D_F| / |D_G| of the originating cluster
  std::vector<float> params;
};

/// A vote on a candidate model (CBA protocols, commit acknowledgements).
struct ConsensusVote {
  static constexpr std::uint32_t kMessageKind = static_cast<std::uint32_t>(MsgKind::kConsensusVote);
  std::uint32_t voter = 0;
  std::uint32_t candidate = 0;  // candidate index / round the vote refers to
  float score = 0.0f;           // voter's validation score (0 when unused)
  bool accept = false;
};

/// Membership and churn events (Assumption 3 dynamics over a real link).
struct Membership {
  static constexpr std::uint32_t kMessageKind = static_cast<std::uint32_t>(MsgKind::kMembership);
  enum class Event : std::uint8_t {
    kJoin = 0,      // hello: node joins, advertises its codec capability
    kLeave = 1,     // graceful departure
    kCrash = 2,     // peer loss detected by the transport, relayed upward
    kShutdown = 3,  // coordinator tells the subtree to finish
  };
  Event event = Event::kJoin;
  std::uint32_t device = 0;
  std::uint32_t cluster = 0;
  std::uint64_t subtree_samples = 0;  // join: samples behind this subtree
  Codec codec;                        // join: advertised / echoed codec
  bool trace = false;                 // join: sender emits/accepts trace tails
  std::int64_t wall_ns = 0;           // sender's system_clock at send
  std::int64_t echo_wall_ns = 0;      // echo: the request's wall_ns, for RTT
};

/// One replicated-log entry of the leader-rotation protocol (DESIGN.md §15).
/// Entries are term-stamped; kModelCommit entries carry the full committed
/// global model (plus its digest and the codec metadata the committing leader
/// negotiated) so ANY member that wins an election can serve the last agreed
/// model bitwise-identically, and membership entries carry everything a new
/// leader needs to adopt the worker (samples, negotiated codec, tracing).
struct RaftLogEntry {
  std::uint64_t term = 0;
  std::uint64_t index = 0;   // 1-based log position
  std::uint16_t type = 0;    // consensus::rotation::EntryType
  std::uint64_t round = 0;   // model round / membership view round
  std::uint32_t subject = 0; // member node id (membership entries)
  std::uint64_t samples = 0; // join: the member's subtree sample count
  std::uint8_t quantize_bits = 0;  // join: the link's negotiated codec
  std::uint32_t topk = 0;
  std::uint8_t delta = 0;
  std::uint8_t trace = 0;
  std::uint64_t digest = 0;      // model commit: nn::params_digest of params
  std::vector<float> params;     // model commit: the committed global model
};

/// Election: a candidate for `term` solicits a vote.  The last-log fields
/// carry Raft's up-to-dateness restriction — a voter refuses a candidate
/// whose log is behind its own, which is what keeps committed model entries
/// from being lost across leader changes.
struct VoteRequest {
  static constexpr std::uint32_t kMessageKind = static_cast<std::uint32_t>(MsgKind::kVoteRequest);
  std::uint64_t term = 0;
  std::uint32_t candidate = 0;
  std::uint64_t last_log_index = 0;
  std::uint64_t last_log_term = 0;
};

/// Election: grant or refusal.  `term` is the voter's current term so a
/// stale candidate steps down immediately.
struct VoteReply {
  static constexpr std::uint32_t kMessageKind = static_cast<std::uint32_t>(MsgKind::kVoteReply);
  std::uint64_t term = 0;
  std::uint32_t voter = 0;
  std::uint8_t granted = 0;
};

/// Log replication: entries [prev_log_index+1 ...] plus the leader's commit
/// index.  An empty entry list is a consistency probe.
struct AppendEntries {
  static constexpr std::uint32_t kMessageKind = static_cast<std::uint32_t>(MsgKind::kAppendEntries);
  std::uint64_t term = 0;
  std::uint32_t leader = 0;
  std::uint64_t prev_log_index = 0;
  std::uint64_t prev_log_term = 0;
  std::uint64_t commit_index = 0;
  std::vector<RaftLogEntry> entries;
};

/// Dual-purpose heartbeat: ack == 0 is the leader's keepalive (failure
/// detection + commit-index propagation); ack == 1 is a follower's reply to
/// an AppendEntries or keepalive, reporting how far its log matches.
struct Heartbeat {
  static constexpr std::uint32_t kMessageKind = static_cast<std::uint32_t>(MsgKind::kHeartbeat);
  std::uint64_t term = 0;
  std::uint32_t node = 0;         // sender (leader or acking follower)
  std::uint8_t ack = 0;           // 0 = leader keepalive, 1 = follower ack
  std::uint8_t success = 0;       // ack: prev-entry consistency check passed
  std::uint64_t commit_index = 0; // keepalive: leader's commit index
  std::uint64_t match_index = 0;  // ack: highest log index known replicated
};

/// Live introspection probe (tools/abdhfl_top) doubling as the per-round RTT
/// heartbeat: the replier echoes `wall_ns` back so the requester can compute
/// rtt = t3 - t0 and the NTP-style midpoint clock offset.
struct StatusRequest {
  static constexpr std::uint32_t kMessageKind = static_cast<std::uint32_t>(MsgKind::kStatusRequest);
  std::uint32_t probe = 0;     // requester-chosen correlation id
  std::uint8_t detail = 0;     // 0 = timestamps only, 1 = peers + metrics
  std::int64_t wall_ns = 0;    // requester's system_clock at send
};

/// One row of a StatusReply peer table.
struct StatusPeer {
  std::uint32_t node = 0;
  std::uint8_t state = 0;      // 0 = live, 1 = lost, 2 = left
  float rtt_ms = -1.0f;        // last estimated RTT to the peer (-1 = unknown)
  double suspicion = 0.0;      // replier's churn-suspicion score for the peer
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
};

/// Sentinel for StatusReply::parent when the replier has no parent (a root).
inline constexpr std::uint32_t kStatusNoParent = 0xFFFFFFFFu;

/// Live status of a running node, served mid-training without pausing it.
struct StatusReply {
  static constexpr std::uint32_t kMessageKind = static_cast<std::uint32_t>(MsgKind::kStatusReply);
  std::uint32_t node = 0;
  std::uint32_t probe = 0;        // echoed from the request
  std::uint64_t round = 0;
  std::uint8_t phase = 0;         // node-defined (RootNode::Phase for roots)
  std::uint32_t live_workers = 0;
  std::uint32_t level = 0;        // replier's tree level (0 = root)
  std::uint32_t parent = kStatusNoParent;  // parent node id, or kStatusNoParent
  std::int64_t wall_ns = 0;       // replier's system_clock at send
  std::int64_t echo_wall_ns = 0;  // the request's wall_ns, echoed
  // Leader-rotation consensus state (zero / kStatusNoParent on nodes that
  // run no consensus — the classic single root, workers, aggregators).
  std::uint64_t term = 0;          // current consensus term
  std::uint32_t leader = kStatusNoParent;  // known leader, or kStatusNoParent
  std::uint64_t commit_index = 0;  // highest committed log index
  std::uint8_t view_reason = 0;    // consensus::rotation::ViewReason of the
                                   // last view change (0 = none yet)
  std::vector<StatusPeer> peers;  // detail != 0 only
  std::string metrics;            // Prometheus exposition blob (detail != 0)
};

using Payload = std::variant<ModelUpdate, PartialModel, ConsensusVote, Membership,
                             StatusRequest, StatusReply, VoteRequest, VoteReply,
                             AppendEntries, Heartbeat>;

/// An already-encoded frame travelling as an opaque sim::Message payload
/// (the loopback-over-simulator bridge).  Tagged like every other payload so
/// receivers use the checked sim::payload_cast instead of a blind cast.
struct EncodedFrame {
  static constexpr std::uint32_t kMessageKind = 0xF7A3;
  std::vector<std::uint8_t> bytes;
  std::uint32_t link_class = 0;
};

/// Addressing common to every frame.
struct Envelope {
  NodeId from = 0;
  NodeId to = 0;
  std::uint64_t round = 0;
};

/// A fully decoded frame.
struct WireMessage {
  Envelope env;
  MsgKind kind = MsgKind::kModelUpdate;
  bool quantized = false;
  bool topk = false;
  bool delta = false;
  Payload payload;
};

// ---------------------------------------------------------------------------
// Zero-copy receive: a validated, non-owning view over one complete frame.

/// A bounds-checked span over a complete encoded frame.  parse() validates
/// everything that does not require touching the body semantics — magic,
/// version, length framing, digest, reserved field, known flags — so every
/// accessor afterwards is a plain offset read.  The view does NOT own the
/// bytes: it is valid only while the backing buffer (an rx ring, a queued
/// frame) is alive and unmodified.  Lifecycle rules: DESIGN.md §11.
class FrameView {
 public:
  FrameView() = default;

  /// Wrap and fully validate `frame` (which must be exactly one frame).
  /// Throws WireError on any corruption.
  [[nodiscard]] static FrameView parse(std::span<const std::uint8_t> frame);

  [[nodiscard]] std::span<const std::uint8_t> bytes() const noexcept { return frame_; }
  [[nodiscard]] MsgKind kind() const noexcept;
  [[nodiscard]] std::uint16_t flags() const noexcept;
  [[nodiscard]] Envelope env() const noexcept;
  [[nodiscard]] bool quantized() const noexcept { return (flags() & kFlagQuantized) != 0; }
  [[nodiscard]] bool topk() const noexcept { return (flags() & kFlagTopK) != 0; }
  [[nodiscard]] bool delta() const noexcept { return (flags() & kFlagDelta) != 0; }
  [[nodiscard]] bool traced() const noexcept { return (flags() & kFlagTraced) != 0; }
  [[nodiscard]] std::span<const std::uint8_t> body() const noexcept;

  /// The body minus the trace tail (== body() for untraced frames): what the
  /// payload decoders consume.  Throws WireError when kFlagTraced is set but
  /// the body cannot hold the tail — checked before anything is allocated.
  [[nodiscard]] std::span<const std::uint8_t> payload_body() const;

  /// The trace tail, or an invalid (all-zero) context for untraced frames.
  /// Same truncation check as payload_body().
  [[nodiscard]] TraceContext trace_context() const;

  /// Materialize the frame into an owned WireMessage.  `rx_state` (optional)
  /// is the link's delta base: required to decode kFlagDelta frames, and
  /// updated with the reconstructed parameters of every parameter-carrying
  /// frame when non-null (pass it iff the link negotiated delta).
  [[nodiscard]] WireMessage decode(CodecState* rx_state = nullptr) const;

 private:
  std::span<const std::uint8_t> frame_;
};

/// The fixed fields of a ModelUpdate frame, read without materializing the
/// parameter vector.
struct ModelUpdateHead {
  std::uint32_t sender = 0;
  std::uint32_t level = 0;
  std::uint64_t samples = 0;
  std::size_t param_count = 0;  // dense dimension after reconstruction
};

/// Throws WireError if `view` is not a ModelUpdate or its parameter header
/// is malformed.
[[nodiscard]] ModelUpdateHead peek_model_update(const FrameView& view);

/// The reconstructed dense parameters of a ModelUpdate frame, for streaming
/// consumers (decode-into-aggregation).  Raw dense frames whose float bytes
/// are suitably aligned return a span INTO THE FRAME — zero copy, zero
/// allocation; every other path (quantized / top-k / delta / unaligned)
/// reconstructs into `scratch` and returns a span over it.  `rx_state`
/// follows the same contract as FrameView::decode.  The returned span dies
/// with the frame bytes or the next reuse of `scratch`, whichever is first.
[[nodiscard]] std::span<const float> model_update_params(const FrameView& view,
                                                         CodecState* rx_state,
                                                         std::vector<float>& scratch);

// ---------------------------------------------------------------------------
// Scatter-gather encode.

/// One encoded frame as up to three segments, so the raw-dense hot path
/// never copies the float payload: `inline_payload` aliases either the
/// caller's parameter vector or `scratch_values` (delta/top-k transforms).
/// Send with writev(head, inline_payload, tail) or flatten with concat().
/// The caller must keep the aliased payload alive until the bytes are on
/// the wire.  Reusable: encode_frame_parts() clears and refills, keeping
/// the vectors' capacity across rounds (no per-round staging allocation).
struct EncodedParts {
  std::vector<std::uint8_t> head;                  // header + fixed fields + section prefix
  std::span<const std::uint8_t> inline_payload{};  // raw float bytes (may be empty)
  std::vector<std::uint8_t> tail;                  // blob digest (raw dense) + frame digest
  std::vector<float> scratch_values;               // backing store for transformed values

  // Delta bookkeeping: the reconstruction to install into the sender's
  // CodecState once the frame is actually on the wire (commit-after-send, so
  // a failed write cannot desynchronize the two ends' bases).
  bool has_recon = false;
  MsgKind recon_kind = MsgKind::kModelUpdate;
  std::vector<float> recon;

  [[nodiscard]] std::size_t size() const noexcept {
    return head.size() + inline_payload.size() + tail.size();
  }
  [[nodiscard]] std::vector<std::uint8_t> concat() const;
  /// Install `recon` as the link's new tx base (no-op without one).
  void commit_tx(CodecState& state);
};

/// Encode one frame into `out` (cleared first; capacity is reused).  `codec`
/// applies to payloads that carry parameters (ModelUpdate, PartialModel);
/// other kinds ignore it.  `tx_state` (optional) is the link's delta base:
/// with codec.delta set, a matching base turns the frame into a delta and
/// out.recon carries the reconstruction to commit_tx() after the send.
/// A valid `trace` context appends the kFlagTraced tail to the body.
void encode_frame_parts(const Envelope& env, const Payload& payload, const Codec& codec,
                        const CodecState* tx_state, EncodedParts& out,
                        const TraceContext* trace = nullptr);

/// Encode one frame into a single contiguous buffer (parts + concat).  The
/// stateless overload cannot produce delta frames; the stateful one commits
/// the tx base immediately (delivery assumed — loopback, tests).
[[nodiscard]] std::vector<std::uint8_t> encode_frame(const Envelope& env,
                                                     const Payload& payload,
                                                     const Codec& codec = {});
[[nodiscard]] std::vector<std::uint8_t> encode_frame(const Envelope& env,
                                                     const Payload& payload,
                                                     const Codec& codec,
                                                     CodecState* tx_state);

/// Decode a complete frame; throws WireError on any corruption (bad magic,
/// byte-swapped magic, version/kind mismatch, truncation, digest failure).
/// Equivalent to FrameView::parse(frame).decode(rx_state).
[[nodiscard]] WireMessage decode_frame(std::span<const std::uint8_t> frame);
[[nodiscard]] WireMessage decode_frame(std::span<const std::uint8_t> frame,
                                       CodecState* rx_state);

/// Stream-parsing helper: given at least kHeaderSize buffered bytes, returns
/// the total frame length (header + body + digest) after validating magic and
/// version.  Throws WireError on a bad header so a socket reader can drop the
/// connection instead of resynchronizing on garbage.
[[nodiscard]] std::size_t peek_frame_size(std::span<const std::uint8_t> prefix);

// ---------------------------------------------------------------------------
// Wire-size accounting (what the runners report as communication cost).

/// Header + digest bytes around any body.
[[nodiscard]] constexpr std::size_t frame_overhead() noexcept {
  return kHeaderSize + kDigestSize;
}

/// Exact encoded frame size of a payload under a codec.  Delta does not
/// change the size (it only changes the transmitted values), so this is
/// exact whether or not the link's cache is warm.
[[nodiscard]] std::size_t encoded_size(const Payload& payload, const Codec& codec = {});

/// Exact frame size of a ModelUpdate carrying `param_count` raw floats.
[[nodiscard]] std::size_t model_update_wire_size(std::size_t param_count) noexcept;

/// Exact frame size of a PartialModel carrying `param_count` raw floats.
[[nodiscard]] std::size_t partial_model_wire_size(std::size_t param_count) noexcept;

/// Exact frame size of a ConsensusVote / Membership frame.
[[nodiscard]] std::size_t vote_wire_size() noexcept;
[[nodiscard]] std::size_t membership_wire_size() noexcept;

/// Exact frame sizes of the status message pair.
[[nodiscard]] std::size_t status_request_wire_size() noexcept;
[[nodiscard]] std::size_t status_reply_wire_size(std::size_t peer_count,
                                                 std::size_t metrics_bytes) noexcept;

/// The pre-codec estimate callers used to hand-compute (nn::wire_size): the
/// parameter blob alone, no frame.  Kept as the documented fallback so tests
/// can assert estimate + frame_overhead + fixed fields == codec size.
[[nodiscard]] std::size_t estimated_model_bytes(std::size_t param_count) noexcept;

/// The same estimate for an arbitrary payload (0 for kinds that carry no
/// parameters) — what sim::Message::bytes_estimated is populated with when a
/// frame rides the simulated network.
[[nodiscard]] std::size_t estimated_payload_bytes(const Payload& payload) noexcept;

}  // namespace abdhfl::net
