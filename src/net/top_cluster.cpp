#include "net/top_cluster.hpp"

#include <algorithm>
#include <utility>

#include "core/trainer.hpp"
#include "nn/serialize.hpp"
#include "obs/blackbox.hpp"
#include "obs/record.hpp"
#include "obs/trace.hpp"

namespace abdhfl::net {

namespace bb = obs::blackbox;
namespace rot = consensus::rotation;

using hier::deadline_ns;
using hier::EchoEstimate;
using hier::estimate_from_echo;
using hier::wall_now;

namespace {

rot::Config rotation_config(const FederationConfig& config, NodeId self) {
  rot::Config rc;
  rc.self = self;
  rc.members.reserve(config.top_cluster);
  for (std::size_t t = 0; t < config.top_cluster; ++t) {
    rc.members.push_back(top_node_id(t));
  }
  rc.seed = config.seed;
  rc.heartbeat_s = config.heartbeat_s;
  rc.election_min_s = config.election_min_s;
  rc.election_max_s = config.election_max_s;
  return rc;
}

}  // namespace

TopClusterNode::TopClusterNode(FederationConfig config, std::size_t top_index,
                               Transport& transport, obs::Recorder* recorder)
    : config_(std::move(config)),
      index_(top_index),
      id_(top_node_id(top_index)),
      transport_(transport),
      recorder_(recorder),
      data_(build_federation_data(config_)),
      rule_(agg::make_aggregator(config_.root_rule)),
      raft_(rotation_config(config_, id_)),
      global_(data_.init_params) {
  raft_.on_commit = [this](const RaftLogEntry& entry) { apply_entry(entry); };
  raft_.on_leader_change = [this](std::uint64_t term, NodeId leader,
                                  rot::ViewReason reason) {
    on_leader_change(term, leader, reason);
  };
  transport_.register_node(id_, [this](WireMessage& msg) { on_message(msg); });
  transport_.add_peer_loss_handler([this](NodeId peer) { on_peer_loss(peer); });
  if (config_.trace) transport_.set_tracing(true);
}

std::size_t TopClusterNode::expected_initial() const noexcept {
  return config_.initial_workers != 0 ? config_.initial_workers : config_.workers;
}

bool TopClusterNode::join_gate_met(double now) const {
  if (live_.empty()) return false;
  return round_ > 0 || live_.size() >= expected_initial() || now >= join_deadline_;
}

void TopClusterNode::start() {
  join_deadline_ = wall_now() + config_.join_timeout_s;
  bb::set_phase(0, round_, deadline_ns(join_deadline_));
  bb::record(bb::EventType::kPhase, 0, id_, round_);
  raft_.start(wall_now());
  flush_raft();
}

void TopClusterNode::flush_raft() {
  for (rot::Outgoing& out : raft_.take_outbox()) {
    (void)transport_.send({id_, out.to, round_}, out.payload, kTopLinkClass);
  }
}

void TopClusterNode::on_idle() {
  if (phase_ == Phase::kDone) return;
  const double now = wall_now();
  raft_.tick(now);
  flush_raft();
  if (raft_.is_leader()) {
    // The idle-path takeover (join-timeout expiry, quiet first election) must
    // wait for the log to be FULLY applied: a new leader elected mid-round
    // may still hold its dead predecessor's uncommitted model entry, and
    // resuming the round before that entry applies would re-collect and
    // re-commit the same round against the wrong global — diverging from the
    // replay.  Once commit catches the tail, the kView apply runs the
    // takeover at the right round.  (Loopback never exposes this window —
    // acks drain synchronously; real TCP does.)
    if (!started_training_ && raft_.commit_index() == raft_.last_index() &&
        join_gate_met(now)) {
      start_or_resume_training();
    }
    // Reconcile the committed view against links that died before this
    // member led: a worker whose leave (or eviction) perished with the old
    // leader would otherwise stay "live" forever and hold the shutdown.
    // propose_membership dedups in-flight subjects, so this is idempotent.
    for (const NodeId worker : lost_workers_) {
      if (live_.find(worker) != live_.end() &&
          leaving_.find(worker) == leaving_.end()) {
        propose_membership(rot::EntryType::kMemberEvict, worker, nullptr);
      }
    }
    if (started_training_ && phase_ == Phase::kTraining && now >= round_deadline_) {
      // Round deadline: live members that never delivered are treated as
      // lost — through the log, so the shrunken view is the agreed one.
      const std::set<NodeId> live = live_;
      for (const NodeId worker : live) {
        if (pending_.find(worker) == pending_.end()) {
          propose_membership(rot::EntryType::kMemberEvict, worker, nullptr);
        }
      }
      round_deadline_ = now + config_.round_timeout_s;
    }
    // A leader with nothing to coordinate past the join deadline: nothing
    // will ever run, so don't hang the process.
    if (phase_ == Phase::kJoining && now >= join_deadline_ && live_.empty() &&
        joined_.empty() && pending_joins_.empty()) {
      finish_now();
      return;
    }
  }
  maybe_finish();
}

void TopClusterNode::on_message(WireMessage& msg) {
  // Introspection first: a probe must work in every state and never advance
  // the protocol.
  if (msg.kind == MsgKind::kStatusRequest) {
    reply_status(std::get<StatusRequest>(msg.payload), msg.env.from);
    return;
  }
  if (msg.kind == MsgKind::kStatusReply) {
    const auto& reply = std::get<StatusReply>(msg.payload);
    const EchoEstimate est = estimate_from_echo(reply.echo_wall_ns, reply.wall_ns);
    transport_.note_rtt(msg.env.from, kLeaderLinkClass, est.rtt_ms, est.offset_ns);
    return;
  }
  const double now = wall_now();
  // Consensus traffic is live in every phase, including kDone — a finished
  // member still answers votes so a lagging peer can conclude its term.
  switch (msg.kind) {
    case MsgKind::kVoteRequest:
      raft_.on_vote_request(std::get<VoteRequest>(msg.payload), now);
      flush_raft();
      return;
    case MsgKind::kVoteReply:
      raft_.on_vote_reply(std::get<VoteReply>(msg.payload), now);
      flush_raft();
      return;
    case MsgKind::kAppendEntries:
      raft_.on_append_entries(std::get<AppendEntries>(msg.payload), now);
      flush_raft();
      return;
    case MsgKind::kHeartbeat: {
      const auto& beat = std::get<Heartbeat>(msg.payload);
      if (beat.ack != 0) {
        // Follower progress snoop: what lets the leader hold its own
        // shutdown until the final commit reached every live member.
        std::uint64_t& seen = peer_commit_[beat.node];
        seen = std::max(seen, beat.commit_index);
      }
      raft_.on_heartbeat(beat, now);
      flush_raft();
      maybe_finish();
      return;
    }
    default:
      break;
  }
  if (phase_ == Phase::kDone) return;
  if (msg.kind == MsgKind::kMembership) {
    const auto& member = std::get<Membership>(msg.payload);
    if (member.event == Membership::Event::kJoin) {
      // Workers broadcast their join to EVERY committee member, so any
      // future leader already holds the advertisement.
      pending_joins_[msg.env.from] = member;
      if (raft_.is_leader()) {
        if (live_.find(msg.env.from) != live_.end()) {
          // Already a committed member (a restarted process re-joining the
          // same view): re-echo the committed round directly.
          echo_join(msg.env.from, round_);
        } else {
          propose_membership(rot::EntryType::kMemberJoin, msg.env.from, &member);
        }
      }
    } else if (member.event == Membership::Event::kLeave) {
      leaving_.insert(msg.env.from);
      transport_.expect_close(msg.env.from);  // its EOF is not churn
      if (raft_.is_leader() && live_.find(msg.env.from) != live_.end()) {
        propose_membership(rot::EntryType::kMemberLeave, msg.env.from, nullptr);
      }
    }
    return;
  }
  if (msg.kind == MsgKind::kModelUpdate) {
    if (!raft_.is_leader() || phase_ != Phase::kTraining) return;
    if (msg.env.round != round_) return;  // stale retransmission
    if (live_.find(msg.env.from) == live_.end()) return;
    if (pending_.find(msg.env.from) != pending_.end()) return;  // duplicate
    auto& update = std::get<ModelUpdate>(msg.payload);
    pending_[msg.env.from] = std::move(update.params);
    maybe_aggregate();
    return;
  }
}

void TopClusterNode::on_peer_loss(NodeId peer) {
  if (phase_ == Phase::kDone && !is_top(peer)) return;
  const double now = wall_now();
  if (is_top(peer)) {
    dead_tops_.insert(peer);
    peer_commit_.erase(peer);
    raft_.on_peer_loss(peer, now);
    flush_raft();
    maybe_finish();
    return;
  }
  if (is_observer(peer)) return;
  // A worker link died.  Remember it regardless of role: the loss can fire
  // at a FOLLOWER (a worker whose leave died with the old leader closes its
  // sockets to everyone), and the transport reports each loss exactly once —
  // by the time this member wins an election the event is gone.  Only the
  // leader turns a loss into an agreed eviction; followers learn it from the
  // log, and a new leader reconciles the set on its idle tick.
  lost_workers_.insert(peer);
  if (raft_.is_leader() && live_.find(peer) != live_.end() &&
      leaving_.find(peer) == leaving_.end()) {
    propose_membership(rot::EntryType::kMemberEvict, peer, nullptr);
  }
}

void TopClusterNode::propose_membership(rot::EntryType type, NodeId subject,
                                        const Membership* member) {
  if (!raft_.is_leader()) return;
  if (proposal_inflight_.find(subject) != proposal_inflight_.end()) return;
  RaftLogEntry entry;
  entry.type = static_cast<std::uint16_t>(type);
  entry.round = round_;
  entry.subject = subject;
  if (member != nullptr) {
    entry.samples = member->subtree_samples;
    // Same negotiation as the classic collector: the advertisement bounded
    // by our own config.  The outcome rides the log so EVERY member can
    // program the link identically on commit.
    const Codec own = codec_from_config(config_);
    Codec chosen = member->codec;
    chosen.quantize_bits = std::min(chosen.quantize_bits, own.quantize_bits);
    chosen.topk = (chosen.topk != 0 && own.topk != 0) ? std::min(chosen.topk, own.topk)
                                                      : 0;
    chosen.delta = chosen.delta && own.delta;
    entry.quantize_bits = chosen.quantize_bits;
    entry.topk = chosen.topk;
    entry.delta = chosen.delta ? 1 : 0;
    entry.trace = (member->trace && config_.trace) ? 1 : 0;
  }
  proposal_inflight_.insert(subject);
  raft_.propose_membership(std::move(entry));
  flush_raft();
}

void TopClusterNode::record_view(const char* reason_key, double reason, NodeId member) {
  (void)reason_key;
  if (recorder_ == nullptr) return;
  obs::RoundRecord& rec = recorder_->begin_round("dist_view", round_);
  rec.set("reason", reason);
  rec.set("member", static_cast<double>(member));
  rec.set("term", static_cast<double>(raft_.term()));
}

void TopClusterNode::apply_entry(const RaftLogEntry& entry) {
  const auto type = static_cast<rot::EntryType>(entry.type);
  const double now = wall_now();
  switch (type) {
    case rot::EntryType::kView: {
      // Our own election's no-op committed: leadership is now durable, so
      // perform the takeover — re-derive pending membership (the previous
      // leader's proposal queue died with it) and resume the round.
      if (!raft_.is_leader() || entry.term != raft_.term()) return;
      for (const auto& [worker, member] : pending_joins_) {
        // Only advertisements that never resolved: a worker already in the
        // committed view, already departed, or mid-leave is NOT re-proposed.
        if (live_.find(worker) == live_.end() && left_.find(worker) == left_.end() &&
            leaving_.find(worker) == leaving_.end()) {
          propose_membership(rot::EntryType::kMemberJoin, worker, &member);
        }
      }
      if (join_gate_met(now)) start_or_resume_training();
      return;
    }
    case rot::EntryType::kMemberJoin: {
      live_.insert(entry.subject);
      left_.erase(entry.subject);
      leaving_.erase(entry.subject);
      // A committed (re)join supersedes any remembered link death — without
      // this, a worker rejoining after a crash would be re-evicted on the
      // leader's next reconciliation tick.
      lost_workers_.erase(entry.subject);
      joined_[entry.subject] = entry.samples;
      proposal_inflight_.erase(entry.subject);
      // Program the link exactly as the committing leader negotiated it —
      // on every member, so any future leader serves the worker identically.
      Codec codec;
      codec.quantize_bits = entry.quantize_bits;
      codec.topk = entry.topk;
      codec.delta = entry.delta != 0;
      transport_.set_peer_codec(entry.subject, codec);
      transport_.set_peer_tracing(entry.subject, entry.trace != 0);
      bb::record(bb::EventType::kViewChange,
                 static_cast<std::uint16_t>(rot::ViewReason::kMemberJoin), id_, round_,
                 raft_.term(), entry.subject);
      bb::set_peer(entry.subject, 0, round_);
      record_view("join", static_cast<double>(rot::ViewReason::kMemberJoin),
                  entry.subject);
      if (raft_.is_leader()) {
        if (started_training_) {
          echo_join(entry.subject, round_);  // mid-run joiner starts now
        } else if (join_gate_met(now)) {
          start_or_resume_training();
        }
      }
      // The advertisement is RESOLVED: drop it so no future takeover can
      // re-propose it.  A worker evicted after this commit is not in live_,
      // left_, or leaving_ — a stale advertisement would pass the takeover's
      // unresolved check and resurrect a dead member into the view.
      pending_joins_.erase(entry.subject);
      return;
    }
    case rot::EntryType::kMemberLeave:
    case rot::EntryType::kMemberEvict: {
      const bool leave = type == rot::EntryType::kMemberLeave;
      live_.erase(entry.subject);
      if (leave) {
        left_.insert(entry.subject);
        transport_.expect_close(entry.subject);
      } else {
        ++result_.workers_lost;
      }
      leaving_.erase(entry.subject);
      lost_workers_.erase(entry.subject);
      // Any advertisement this departure supersedes dies with it — only a
      // FRESH join (a new message, not a takeover replay) may re-admit.
      pending_joins_.erase(entry.subject);
      pending_.erase(entry.subject);  // a departed member's update never counts
      proposal_inflight_.erase(entry.subject);
      const auto reason =
          leave ? rot::ViewReason::kMemberLeave : rot::ViewReason::kMemberEvict;
      bb::record(bb::EventType::kViewChange, static_cast<std::uint16_t>(reason), id_,
                 round_, raft_.term(), entry.subject);
      bb::set_peer(entry.subject, leave ? 2 : 1, round_);
      record_view(leave ? "leave" : "evict", static_cast<double>(reason),
                  entry.subject);
      if (live_.empty() && !joined_.empty() && phase_ != Phase::kDone &&
          phase_ != Phase::kFinishing) {
        // Everyone who ever joined is gone: the run is over.  Derived from
        // the LOG, so followers wind down on the same committed entry the
        // leader does — no election is needed just to exit.
        phase_ = Phase::kFinishing;
        bb::record(bb::EventType::kPhase, 2, id_, round_);
        bb::set_phase(2, round_);
      }
      if (raft_.is_leader() && phase_ == Phase::kTraining) maybe_aggregate();
      maybe_finish();
      return;
    }
    case rot::EntryType::kModelCommit: {
      // The round's aggregate is now durable on a majority: install it,
      // and only NOW may the leader broadcast — commit-before-broadcast is
      // what makes a mid-broadcast leader death recoverable bitwise.
      global_ = entry.params;
      const double accuracy =
          core::evaluate_params(data_.prototype, global_, data_.test_set);
      result_.round_accuracy.push_back(accuracy);
      result_.final_accuracy = accuracy;
      result_.rounds_run = static_cast<std::size_t>(entry.round) + 1;
      if (recorder_ != nullptr) {
        obs::RoundRecord& rec = recorder_->begin_round("dist_root", entry.round);
        rec.set("accuracy", accuracy);
        rec.set("live_workers", static_cast<double>(live_.size()));
        rec.set("inputs", static_cast<double>(entry.samples));
      }
      round_ = static_cast<std::size_t>(entry.round) + 1;
      bb::record(bb::EventType::kRound, 0, id_, round_ - 1, entry.samples);
      bb::note_progress(round_);
      if (raft_.is_leader()) {
        pending_.clear();
        Payload payload(std::in_place_type<PartialModel>);
        auto& partial = std::get<PartialModel>(payload);
        partial.origin = id_;
        partial.flag_level = 0;
        partial.is_global = true;
        partial.alpha = static_cast<float>(config_.alpha);
        partial.flag_fraction = 1.0;
        partial.params = global_;  // the log entry keeps its own copy
        // The commit lands inside an UNTRACED committee net_recv (the ack
        // that advanced the commit index), so stack parenting would pin the
        // broadcast's net_send spans to trace 0 and orphan every worker's
        // net_recv.  An explicitly-placed round-root span (the aggregator's
        // subtree_agg trick) keeps the cross-process edges in this round's
        // tree instead.
        obs::TraceBuffer* sink = transport_.trace_sink();
        const std::uint64_t trace_id =
            obs::make_trace_id(config_.seed, static_cast<std::uint64_t>(entry.round));
        if (sink != nullptr) sink->set_trace_id(trace_id);
        obs::Span bcast_span(sink, "global_agg", obs::SpanContext{trace_id, 0, true},
                             static_cast<std::size_t>(entry.round), id_);
        for (const NodeId worker : live_) {
          (void)transport_.send({id_, worker, entry.round}, payload, kLeaderLinkClass);
        }
        round_deadline_ = now + config_.round_timeout_s;
      }
      // Phase tracks the LOG on every member, not just the leader: a
      // follower that never won an election still joins training on the
      // first commit and winds down when the round budget is spent.
      if (phase_ == Phase::kJoining) phase_ = Phase::kTraining;
      if (round_ >= config_.rounds && phase_ == Phase::kTraining) {
        phase_ = Phase::kFinishing;
        bb::record(bb::EventType::kPhase, 2, id_, round_);
        bb::set_phase(2, round_);
      } else if (phase_ == Phase::kTraining) {
        bb::set_phase(1, round_, deadline_ns(round_deadline_));
      }
      maybe_finish();
      return;
    }
  }
}

void TopClusterNode::on_leader_change(std::uint64_t term, NodeId leader,
                                      rot::ViewReason reason) {
  if (reason == rot::ViewReason::kElected) {
    bb::record(bb::EventType::kElection, leader == id_ ? 1 : 2, id_, round_, term,
               leader);
    if (recorder_ != nullptr) {
      obs::RoundRecord& rec = recorder_->begin_round("dist_election", round_);
      rec.set("term", static_cast<double>(term));
      rec.set("leader", static_cast<double>(leader));
      rec.set("node", static_cast<double>(id_));
    }
    return;
  }
  if (reason == rot::ViewReason::kLeaderLost) {
    bb::record(bb::EventType::kViewChange,
               static_cast<std::uint16_t>(rot::ViewReason::kLeaderLost), id_, round_,
               term, leader);
    record_view("leader_lost", static_cast<double>(rot::ViewReason::kLeaderLost),
                leader);
  }
}

void TopClusterNode::echo_join(NodeId worker, std::size_t round) {
  Membership echo;
  echo.event = Membership::Event::kJoin;
  echo.device = id_;
  echo.cluster = worker >= 1 ? worker - 1 : 0;
  echo.codec = transport_.codec_for(worker);
  echo.trace = config_.trace;
  echo.wall_ns = obs::wall_clock_ns();
  const auto join = pending_joins_.find(worker);
  echo.echo_wall_ns = join != pending_joins_.end() ? join->second.wall_ns : 0;
  (void)transport_.send({id_, worker, round}, echo, kLeaderLinkClass);
}

void TopClusterNode::start_or_resume_training() {
  started_training_ = true;
  if (phase_ == Phase::kJoining) {
    phase_ = Phase::kTraining;
    result_.workers_joined = live_.size();
    bb::record(bb::EventType::kPhase, 1, id_, round_, live_.size());
  }
  pending_.clear();
  // Re-broadcast the last COMMITTED model first: a worker that missed the
  // dead leader's broadcast merges it and catches up to round_; a worker
  // already at round_ ignores the stale round.  Then the join echoes tell
  // everyone which round this leader is collecting — a worker that already
  // trained it resends its update bitwise (Uplink::EchoAction::kResend).
  const auto& log = raft_.log();
  const std::uint64_t commit = raft_.commit_index();
  for (std::uint64_t i = commit; i >= 1; --i) {
    const RaftLogEntry& entry = log[static_cast<std::size_t>(i) - 1];
    if (static_cast<rot::EntryType>(entry.type) !=
        rot::EntryType::kModelCommit) {
      continue;
    }
    Payload payload(std::in_place_type<PartialModel>);
    auto& partial = std::get<PartialModel>(payload);
    partial.origin = id_;
    partial.is_global = true;
    partial.alpha = static_cast<float>(config_.alpha);
    partial.flag_fraction = 1.0;
    partial.params = entry.params;
    // Same explicit span placement as the commit broadcast: the takeover
    // runs under an untraced committee frame, not this round's tree.
    obs::TraceBuffer* sink = transport_.trace_sink();
    const std::uint64_t trace_id =
        obs::make_trace_id(config_.seed, static_cast<std::uint64_t>(entry.round));
    if (sink != nullptr) sink->set_trace_id(trace_id);
    obs::Span bcast_span(sink, "global_agg", obs::SpanContext{trace_id, 0, true},
                         static_cast<std::size_t>(entry.round), id_);
    for (const NodeId worker : live_) {
      (void)transport_.send({id_, worker, entry.round}, payload, kLeaderLinkClass);
    }
    break;
  }
  for (const NodeId worker : live_) echo_join(worker, round_);
  round_deadline_ = wall_now() + config_.round_timeout_s;
  bb::set_phase(1, round_, deadline_ns(round_deadline_));
}

void TopClusterNode::maybe_aggregate() {
  if (!raft_.is_leader() || phase_ != Phase::kTraining || !started_training_) return;
  // A membership change awaiting commit holds the round: the agreed view
  // must be settled before the quorum it defines can close.
  if (raft_.membership_in_flight()) return;
  if (live_.empty()) return;
  for (const NodeId worker : live_) {
    if (pending_.find(worker) == pending_.end()) return;
  }
  // Deterministic input order: pending_ is keyed by node id; std::map
  // iterates ascending — bitwise the reference loop's fold order.
  std::vector<agg::ModelVec> inputs;
  inputs.reserve(pending_.size());
  for (auto& [worker, params] : pending_) inputs.push_back(std::move(params));
  pending_.clear();
  const std::size_t n_inputs = inputs.size();
  rule_->set_reference(global_);
  std::vector<float> out = rule_->aggregate(inputs);
  const std::uint64_t digest = nn::params_digest(out);
  // Append, replicate, and WAIT: the model is acted upon (installed,
  // broadcast) only when apply_entry sees it commit.
  (void)raft_.append_model_commit(round_, std::move(out), digest, n_inputs);
  flush_raft();
}

void TopClusterNode::maybe_finish() {
  if (phase_ != Phase::kFinishing) return;
  if (!live_.empty()) return;
  if (!raft_.is_leader()) {
    // Everything this member will ever need is applied; the final ack is
    // already on the wire toward the leader.
    finish_now();
    return;
  }
  // The leader holds its shutdown until the final commit index has reached
  // every committee member that is still alive — otherwise a follower could
  // be left one heartbeat short of the agreed end state.
  if (raft_.commit_index() != raft_.last_index()) return;
  for (std::size_t t = 0; t < config_.top_cluster; ++t) {
    const NodeId peer = top_node_id(t);
    if (peer == id_ || dead_tops_.find(peer) != dead_tops_.end()) continue;
    const auto it = peer_commit_.find(peer);
    if (it == peer_commit_.end() || it->second < raft_.last_index()) return;
  }
  finish_now();
}

void TopClusterNode::finish_now() {
  if (!result_.round_accuracy.empty()) result_.global_model = global_;
  phase_ = Phase::kDone;
  bb::record(bb::EventType::kPhase, 3, id_, round_);
  bb::set_phase(3, round_);
}

void TopClusterNode::reply_status(const StatusRequest& request, NodeId to) {
  if (is_observer(to)) transport_.mark_transient(to);
  StatusReply reply;
  reply.node = id_;
  reply.probe = request.probe;
  reply.round = round_;
  reply.phase = static_cast<std::uint8_t>(phase_);
  reply.live_workers = static_cast<std::uint32_t>(live_.size());
  reply.level = 0;
  reply.parent = raft_.is_leader() || raft_.leader() == rot::kNoLeader
                     ? kStatusNoParent
                     : raft_.leader();
  reply.wall_ns = obs::wall_clock_ns();
  reply.echo_wall_ns = request.wall_ns;
  reply.term = raft_.term();
  reply.leader = raft_.leader() == rot::kNoLeader ? kStatusNoParent : raft_.leader();
  reply.commit_index = raft_.commit_index();
  reply.view_reason = static_cast<std::uint8_t>(raft_.last_view_reason());
  for (const auto& [worker, samples] : joined_) {
    StatusPeer peer;
    peer.node = worker;
    peer.state = live_.count(worker) != 0 ? 0 : (left_.count(worker) != 0 ? 2 : 1);
    const LinkTelemetry link = transport_.peer_telemetry(worker);
    peer.rtt_ms = static_cast<float>(link.rtt_ms);
    peer.bytes_sent = link.bytes_sent;
    peer.bytes_received = link.bytes_received;
    reply.peers.push_back(peer);
  }
  for (std::size_t t = 0; t < config_.top_cluster; ++t) {
    const NodeId member = top_node_id(t);
    if (member == id_) continue;
    StatusPeer peer;
    peer.node = member;
    peer.state = dead_tops_.count(member) != 0 ? 1 : 0;
    const LinkTelemetry link = transport_.peer_telemetry(member);
    peer.rtt_ms = static_cast<float>(link.rtt_ms);
    peer.bytes_sent = link.bytes_sent;
    peer.bytes_received = link.bytes_received;
    reply.peers.push_back(peer);
  }
  (void)transport_.send({id_, to, round_}, reply, kTopLinkClass);
}

}  // namespace abdhfl::net
