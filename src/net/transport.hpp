#pragma once
// Pluggable message transport (DESIGN.md §9, §11).
//
// A Transport moves encoded wire frames between federation nodes and hands
// them to registered handlers.  Two backends ship:
//
//   * LoopbackTransport (loopback.hpp) — in-process delivery, optionally
//     riding sim::Network so the discrete-event experiments meter the real
//     encoded byte count of every frame;
//   * TcpTransport (tcp.hpp) — real sockets with connect/send retry,
//     exponential backoff, per-message timeouts, and graceful peer-loss
//     degradation (the hook the churn layer consumes).
//
// The interface is deliberately poll-driven and single-threaded: a node owns
// its transport and pumps it (`poll`) from its event loop, exactly like the
// simulator pumps sim::Network.  Handlers run inside poll() on the calling
// thread, so no cross-thread synchronization is needed anywhere in the
// protocol logic.
//
// Receive path: both backends funnel every validated frame through
// deliver_frame(), which offers the FrameView to the destination node's raw
// handler first (the zero-copy streaming path — a span into the backend's rx
// buffer, alive only for the duration of the call) and falls back to a full
// decode into an owned WireMessage.  The decoded message is passed by
// mutable reference so a terminal consumer can move the parameter vector out
// instead of copying it.
//
// Codec state: links that negotiated the delta codec carry per-direction
// base models.  The transport owns one tx and one rx CodecState per directed
// link, keyed (from, to); they are deliberately separate maps so a transport
// hosting both ends of a link (loopback) cannot read a base its own send
// just updated.  Any link reset (drop, redial, reconnect) must call
// reset_codec_state() so the next frame falls back to dense and re-seeds
// both sides.
//
// Observability: every send/receive/retry/timeout/peer-loss bumps both the
// per-transport TransportStats and (while obs::enabled()) the global
// registry counters net_frames_*_total{transport=...}; an attached
// obs::TraceBuffer receives one span per send and per delivered frame.
// Byte accounting is kept twice per direction: the bytes that actually
// crossed the link and the dense-equivalent ("raw") bytes the same payloads
// would have cost uncompressed — the pair is what makes compression ratios
// visible per link class.  record_traffic() flushes per-link-class traffic
// plus the retry/loss event counters into an obs::Recorder using the
// "net_link"/"net_events" JSONL schema that tools/validate_jsonl --group net
// checks.

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>

#include "net/wire.hpp"

namespace abdhfl::obs {
class Counter;
class Recorder;
class TraceBuffer;
}

namespace abdhfl::net {

/// Outcome of one send() call.
enum class SendStatus {
  kOk,        // frame handed to the backend (loopback: queued; tcp: written)
  kNoRoute,   // no link to the destination and no address to dial
  kTimeout,   // per-message deadline expired with the link still congested
  kPeerLost,  // link died and could not be re-established within the policy
};

[[nodiscard]] const char* to_string(SendStatus status) noexcept;

/// Retry/backoff policy shared by connect and send paths.  attempt k (0-based
/// retry index) sleeps min(initial * factor^k, max) before trying again.
struct RetryPolicy {
  std::size_t max_attempts = 5;   // total tries per operation (>= 1)
  double initial_backoff_s = 0.05;
  double backoff_factor = 2.0;
  double max_backoff_s = 1.0;
  double send_timeout_s = 5.0;    // per-message write deadline
  double connect_timeout_s = 2.0; // per connect attempt (nonblocking + poll)

  [[nodiscard]] double backoff_for(std::size_t retry) const noexcept;
};

struct TransportStats {
  std::uint64_t frames_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_sent_raw = 0;      // dense-equivalent cost of the same frames
  std::uint64_t frames_received = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t bytes_received_raw = 0;  // dense-equivalent cost of the same frames
  std::uint64_t retries = 0;        // send or connect re-attempts
  std::uint64_t reconnects = 0;     // links re-established after a failure
  std::uint64_t timeouts = 0;       // sends abandoned on the deadline
  std::uint64_t peer_losses = 0;    // links declared dead
  std::uint64_t decode_errors = 0;  // frames rejected by the codec
  // Link telemetry (note_rtt): last and mean RTT over the class's links.
  double rtt_ms = -1.0;             // most recent sample (-1 = none yet)
  double rtt_ms_mean = 0.0;
  std::uint64_t rtt_samples = 0;
};

/// Per-peer link telemetry accumulated from echoed-timestamp exchanges
/// (membership join/echo, status heartbeats): last RTT and the NTP-style
/// midpoint clock-offset estimate (peer_wall ≈ local_wall + offset).
struct LinkTelemetry {
  double rtt_ms = -1.0;
  double clock_offset_ns = 0.0;
  std::uint64_t rtt_samples = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_received = 0;
};

class Transport {
 public:
  /// Owned-message handler.  The message is mutable so a terminal consumer
  /// can std::move the parameter vector out instead of copying O(d) floats.
  using MessageHandler = std::function<void(WireMessage&)>;
  /// Zero-copy handler, offered every frame before it is decoded.  Return
  /// true to consume the frame (no WireMessage is materialized); the view
  /// and any span derived from it die when the handler returns.  A consumer
  /// on a delta link MUST still apply the frame's rx-cache update
  /// (model_update_params does) even for frames it then ignores, or the
  /// link's bases desynchronize.
  using RawHandler = std::function<bool(const FrameView&)>;
  using PeerLossHandler = std::function<void(NodeId peer)>;
  using PeerReconnectHandler = std::function<void(NodeId peer)>;

  virtual ~Transport() = default;

  /// Attach the handler for a local node id.  Loopback hosts any number of
  /// local nodes; TCP hosts exactly the id it was constructed with.
  virtual void register_node(NodeId id, MessageHandler handler) = 0;

  /// Attach (or clear, with an empty function) the zero-copy pre-decode
  /// handler for a local node id.  Optional: nodes that never stream simply
  /// don't set one.
  void set_raw_handler(NodeId id, RawHandler handler) {
    if (handler) {
      raw_handlers_[id] = std::move(handler);
    } else {
      raw_handlers_.erase(id);
    }
  }

  /// Encode and send one message.  `link_class` buckets the traffic
  /// accounting (the federation uses the tree level of the link).
  virtual SendStatus send(const Envelope& env, const Payload& payload,
                          std::uint32_t link_class = 0) = 0;

  /// Deliver pending frames to handlers, waiting up to `timeout_s` for
  /// activity.  Returns the number of frames delivered.
  virtual std::size_t poll(double timeout_s) = 0;

  /// Invoked (from poll()/send()) when a link is declared dead — the churn
  /// feed: the federation turns this into a membership event.  Additive, so
  /// several nodes sharing one loopback transport can all subscribe.
  void add_peer_loss_handler(PeerLossHandler handler) {
    on_peer_loss_.push_back(std::move(handler));
  }

  /// Invoked when a peer that already had a link re-establishes one (TCP: an
  /// accepted socket re-identifies as a known node).  Fired before the new
  /// link's frames are delivered, so a parent that evicted the peer on the
  /// earlier loss can re-admit it first — a transient drop the peer's own
  /// retry machinery repaired must not permanently remove a member.
  void add_peer_reconnect_handler(PeerReconnectHandler handler) {
    on_peer_reconnect_.push_back(std::move(handler));
  }

  /// Announce that `peer` is about to close its link on purpose (it sent a
  /// graceful leave): the backend must not report the upcoming EOF as a
  /// peer loss.  Default: nothing to suppress.
  virtual void expect_close(NodeId peer) { (void)peer; }

  /// Mark `peer` as a transient link (a status-probe observer, never a
  /// member): it stays fully usable — unlike expect_close, further sends
  /// succeed, so a polling probe can hold its connection open — but its
  /// eventual EOF is not reported as a peer loss.  Default: nothing to mark.
  virtual void mark_transient(NodeId peer) { (void)peer; }

  /// Try to resurrect a link the loss path closed for good (sends to a lost
  /// peer fail fast).  An AggregatorNode that outlives its parent calls this
  /// on its rejoin timer: the peer's process may be a restart listening on
  /// the same address.  Returns true when the link is usable again (or never
  /// died); false when the backend cannot redial (no dial-out address, or
  /// the address still refuses).  Default: links cannot be revived.
  virtual bool revive_peer(NodeId peer) {
    (void)peer;
    return false;
  }

  /// Parameter compression negotiated for frames addressed to `peer`.
  void set_peer_codec(NodeId peer, Codec codec) { peer_codec_[peer] = codec; }
  [[nodiscard]] Codec codec_for(NodeId peer) const;

  /// Delta-codec base models for the directed link from -> to.  tx is what
  /// the local sender encodes against; rx is what frames arriving on that
  /// direction decode against.  Exposed so streaming consumers (a raw
  /// handler calling model_update_params) can apply the rx-cache contract
  /// themselves.
  [[nodiscard]] CodecState& tx_codec_state(NodeId from, NodeId to) {
    return tx_state_[{from, to}];
  }
  [[nodiscard]] CodecState& rx_codec_state(NodeId from, NodeId to) {
    return rx_state_[{from, to}];
  }
  /// Forget every delta base on links touching `peer` (both directions, both
  /// roles).  Called by the backends on any link reset.
  void reset_codec_state(NodeId peer);

  /// Span sink for send/deliver tracing (not owned; nullptr disables).
  void set_trace(obs::TraceBuffer* trace) { trace_ = trace; }
  [[nodiscard]] obs::TraceBuffer* trace_sink() const noexcept { return trace_; }

  /// Arm distributed tracing: frames to peers that negotiated it (see
  /// set_peer_tracing) carry the kFlagTraced context tail.  Requires an
  /// attached TraceBuffer to have any effect.
  void set_tracing(bool on) noexcept { tracing_ = on; }
  /// Record the membership negotiation outcome for one peer.
  void set_peer_tracing(NodeId peer, bool on) { peer_tracing_[peer] = on; }
  /// True when frames to `peer` should carry a trace tail.
  [[nodiscard]] bool tracing_to(NodeId peer) const noexcept;

  /// Feed one echoed-timestamp RTT/offset sample for the link to `peer`
  /// (computed by the node layer from join/heartbeat traffic).  Updates the
  /// per-peer telemetry, the per-class stats, and — while obs is enabled —
  /// the net_rtt_ms histogram.
  void note_rtt(NodeId peer, std::uint32_t link_class, double rtt_ms,
                double clock_offset_ns);
  /// Telemetry for the link to `peer` (zeros/unknowns when never seen).
  [[nodiscard]] LinkTelemetry peer_telemetry(NodeId peer) const;

  /// Bytes buffered but not yet dispatched on links of `link_class` (rx
  /// backlog) — the queue-depth signal in the net_link records.  Backends
  /// that buffer override this; default: nothing queues.
  [[nodiscard]] virtual std::uint64_t backlog_bytes(std::uint32_t link_class) const {
    (void)link_class;
    return 0;
  }

  [[nodiscard]] const TransportStats& stats() const noexcept { return stats_; }
  [[nodiscard]] TransportStats class_stats(std::uint32_t link_class) const;

  /// Tag this transport's traffic records with the hosting node's position
  /// in the hierarchy.  Until set, net_link/net_events records carry no
  /// level/parent_id fields — exactly the pre-hier schema, which is what
  /// keeps old 2-level fixtures validating (the keys are optional in the
  /// net schema group).  `parent` = kStatusNoParent marks a root.
  void set_identity(std::uint32_t level, NodeId parent) noexcept {
    identity_level_ = level;
    identity_parent_ = parent;
    has_identity_ = true;
  }

  /// Flush per-link-class traffic ("net_link" records: one per class seen)
  /// and the event counters ("net_events") into `recorder` under the given
  /// round tag.  Schema: see tools/validate_jsonl --group net.
  void record_traffic(obs::Recorder& recorder, std::uint64_t round) const;

 protected:
  explicit Transport(std::string name);

  /// The shared receive tail both backends funnel validated frames through:
  /// account + trace the frame, offer it to the destination's raw handler,
  /// else decode (against the link's rx delta base when `from` negotiated
  /// delta) and invoke `handler`.  Body-level corruption throws WireError to
  /// the backend, which owns the drop-the-link policy.
  void deliver_frame(const FrameView& view, std::uint32_t link_class,
                     const MessageHandler& handler);

  // Stats + obs plumbing shared by the backends.  All of these also bump the
  // registry counters while obs::enabled().  `raw_bytes` is the
  // dense-equivalent size of the same frame (== bytes on uncompressed links).
  void note_sent(std::size_t bytes, std::size_t raw_bytes, std::uint32_t link_class,
                 NodeId peer);
  void note_received(std::size_t bytes, std::size_t raw_bytes, std::uint32_t link_class,
                     NodeId peer);
  void note_retry();
  void note_reconnect();
  void note_timeout();
  void note_peer_loss(NodeId peer);       // also fires the peer-loss handlers
  void note_peer_reconnect(NodeId peer);  // also fires the reconnect handlers
  void note_decode_error();

  [[nodiscard]] obs::TraceBuffer* trace() const noexcept { return trace_; }

 private:
  struct ObsCounters {
    obs::Counter* frames_sent = nullptr;
    obs::Counter* bytes_sent = nullptr;
    obs::Counter* bytes_sent_raw = nullptr;
    obs::Counter* frames_received = nullptr;
    obs::Counter* bytes_received = nullptr;
    obs::Counter* bytes_received_raw = nullptr;
    obs::Counter* retries = nullptr;
    obs::Counter* timeouts = nullptr;
    obs::Counter* peer_losses = nullptr;
  };
  ObsCounters& obs_counters();

  std::string name_;
  bool has_identity_ = false;
  std::uint32_t identity_level_ = 0;
  NodeId identity_parent_ = 0;
  TransportStats stats_;
  std::map<std::uint32_t, TransportStats> per_class_;
  std::map<NodeId, Codec> peer_codec_;
  std::map<NodeId, RawHandler> raw_handlers_;
  std::map<std::pair<NodeId, NodeId>, CodecState> tx_state_;
  std::map<std::pair<NodeId, NodeId>, CodecState> rx_state_;
  std::vector<PeerLossHandler> on_peer_loss_;
  std::vector<PeerReconnectHandler> on_peer_reconnect_;
  bool tracing_ = false;
  std::map<NodeId, bool> peer_tracing_;
  std::map<NodeId, LinkTelemetry> link_telemetry_;
  obs::TraceBuffer* trace_ = nullptr;
  ObsCounters obs_counters_;
  bool obs_ready_ = false;
};

}  // namespace abdhfl::net
