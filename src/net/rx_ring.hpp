#pragma once
// Preallocated receive ring for the socket/loopback hot path (DESIGN.md §11).
//
// A compacting byte buffer tuned for the frame-reassembly access pattern:
// the backend recv()s directly into writable(), parses whole frames out of
// readable() as non-owning FrameView spans, and consume()s them after
// dispatch.  Unlike the previous std::vector rx buffers, the ring
//
//   * never allocates in steady state — capacity is retained across rounds
//     and across clear(), so after warm-up the receive path is
//     allocation-free;
//   * never invalidates parsed spans mid-batch — compaction and growth only
//     happen inside writable(), which the backend calls strictly before
//     parsing, and clear() keeps the allocation, so FrameViews captured over
//     readable() stay valid while handlers run;
//   * exposes a generation counter so a dispatch loop can detect that a
//     reentrant handler reset the ring (peer redial/drop) and must not
//     consume() stale offsets.
//
// Single-threaded like everything else in src/net: no locks, no atomics.

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

namespace abdhfl::net {

class RxRing {
 public:
  static constexpr std::size_t kDefaultCapacity = 64 * 1024;

  explicit RxRing(std::size_t initial_capacity = kDefaultCapacity)
      : buf_(initial_capacity) {}

  /// Contiguous spare room of at least `min_bytes`, compacting the buffered
  /// bytes to the front (at most once per recv batch) and growing the
  /// allocation geometrically only when the buffered bytes plus `min_bytes`
  /// genuinely exceed capacity.  Invalidates spans handed out earlier —
  /// call it only before parsing, never while FrameViews are live.
  [[nodiscard]] std::span<std::uint8_t> writable(std::size_t min_bytes) {
    if (buf_.size() - tail_ < min_bytes) {
      if (head_ > 0) {
        std::memmove(buf_.data(), buf_.data() + head_, tail_ - head_);
        tail_ -= head_;
        head_ = 0;
      }
      if (buf_.size() - tail_ < min_bytes) {
        std::size_t capacity = buf_.size() == 0 ? kDefaultCapacity : buf_.size();
        while (capacity - tail_ < min_bytes) capacity *= 2;
        buf_.resize(capacity);
      }
    }
    return {buf_.data() + tail_, buf_.size() - tail_};
  }

  /// Account `n` bytes written into the span writable() returned.
  void commit(std::size_t n) noexcept { tail_ += n; }

  /// Everything buffered and not yet consumed, in arrival order.
  [[nodiscard]] std::span<const std::uint8_t> readable() const noexcept {
    return {buf_.data() + head_, tail_ - head_};
  }

  /// Drop `n` bytes from the front of readable().
  void consume(std::size_t n) noexcept {
    head_ += n;
    if (head_ == tail_) head_ = tail_ = 0;
  }

  /// Drop everything.  Keeps the allocation (live spans into it stay
  /// dereferenceable) but bumps the generation so in-flight dispatch loops
  /// know their offsets are stale.
  void clear() noexcept {
    head_ = tail_ = 0;
    ++generation_;
  }

  [[nodiscard]] std::size_t size() const noexcept { return tail_ - head_; }
  [[nodiscard]] bool empty() const noexcept { return head_ == tail_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return buf_.size(); }
  [[nodiscard]] std::uint64_t generation() const noexcept { return generation_; }

 private:
  std::vector<std::uint8_t> buf_;
  std::size_t head_ = 0;  // [head_, tail_) holds buffered bytes
  std::size_t tail_ = 0;
  std::uint64_t generation_ = 0;
};

}  // namespace abdhfl::net
