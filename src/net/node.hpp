#pragma once
// Federation node logic over the transport layer (DESIGN.md §9.3, §14).
//
// A two-level ABD-HFL deployment as communicating nodes: one RootNode
// (global aggregator) and W WorkerNodes (cluster leaders, each training a
// fixed set of bottom devices).  Nodes are poll-driven state machines — the
// owning process pumps its Transport and the handlers advance the protocol —
// so the same classes run single-process over a LoopbackTransport or as
// separate OS processes over TcpTransport, exchanging byte-identical frames.
//
// The protocol mechanics both classes share with the N-level AggregatorNode
// (src/net/hier) live in the hier::Collector / hier::Uplink roles: RootNode
// is a Collector plus evaluation, WorkerNode is an Uplink plus training, and
// an interior aggregator is both at once.  The nodes here keep only what is
// specific to them — phase machines, JSONL records, results, checkpoints.
//
// Protocol per run:
//   worker -> root   Membership kJoin (subtree samples + advertised codec)
//   root   -> worker Membership kJoin echo (negotiated codec) once every
//                    expected worker joined (or the join deadline passed)
//   per round r:
//     worker trains its devices from its current model, BRA-aggregates them
//       (cluster rule), sends ModelUpdate{level=1} to the root;
//     root BRA-aggregates the live workers' updates (root rule, inputs
//       sorted by node id for determinism), evaluates, answers every live
//       worker with PartialModel{is_global, alpha};
//     worker merges: current = alpha * global + (1-alpha) * cluster model.
//   worker -> root   Membership kLeave after the final round; the root exits
//                    once every live worker said goodbye (clean TCP shutdown
//                    — no RST can clip the last global model in flight).
//
// Degradation: a worker that dies mid-run surfaces as a transport peer loss;
// the root drops it from the live set, feeds the event through
// topology::with_device_left (leader succession on the mirrored HflTree),
// records a "dist_churn" JSONL line, and finishes the round with the
// remaining quorum.  A transient drop is recoverable: when the worker's own
// send-retry machinery re-establishes the link, the transport's
// peer-reconnect event lets the root re-admit the member (a "dist_rejoin"
// line) and answer with a resync join echo whose envelope round tells the
// worker which quorum to land its next update in.  With rejoin_grace_s set,
// the collector additionally HOLDS the round open for an evicted member
// until the grace window passes — the bitwise-identical mid-tier restart
// path (DESIGN.md §14.4).
// Determinism: every process rebuilds identical data and
// models from FederationConfig::seed (build_federation_data), and device
// RNGs are derived from the global device index, so a loopback run is
// bitwise equal to the transport-free reference loop and a lossless TCP run
// matches it too.

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "agg/aggregator.hpp"
#include "core/trainer.hpp"
#include "data/dataset.hpp"
#include "net/hier/roles.hpp"
#include "net/transport.hpp"
#include "nn/mlp.hpp"
#include "topology/tree.hpp"

namespace abdhfl::obs {
class Recorder;
}
namespace abdhfl::ckpt {
class Store;
}

namespace abdhfl::net {

struct FederationConfig {
  std::uint64_t seed = 17;
  std::size_t workers = 3;            // cluster leaders under the root
  std::size_t devices_per_worker = 2; // bottom devices each worker trains
  std::size_t rounds = 4;
  std::size_t local_iters = 8;
  std::size_t batch = 16;
  double learning_rate = 0.05;
  double alpha = 0.5;                 // Eq. 1 correction factor
  std::vector<std::size_t> hidden = {16};
  std::size_t image_side = 8;         // synth-digit image side
  std::size_t samples_per_class = 12;
  std::size_t test_samples_per_class = 6;
  std::string cluster_rule = "trimmed_mean";  // BRA at each worker
  std::string root_rule = "median";           // BRA at the root
  std::uint8_t quantize_bits = 0;     // codec workers advertise (0 = raw)
  std::uint32_t topk = 0;             // top-k sparsification (0 = dense)
  bool delta = false;                 // delta-vs-last-round encoding
  double join_timeout_s = 20.0;       // root's wait for worker joins
  double round_timeout_s = 60.0;      // root's wait for a round's updates
  bool trace = false;                 // stamp trace contexts onto frames
  // N-level tree spec "A,B,...,V" (topology::parse_tree_spec): process
  // levels below the root, the last entry counting virtual leaf devices per
  // leaf-head process.  Empty = the classic 2-level federation.  When set,
  // build_federation_data derives the SAME shard layout as a flat 2-level
  // run with workers = leaf heads and devices_per_worker = leaves per head,
  // so every process of the tree — and the transport-free reference — holds
  // identical data.
  std::string tree;
  // Grace window (seconds) a collector holds a round open for an evicted
  // child before aggregating without it.  0 = aggregate as soon as the
  // surviving quorum is complete (the historical behaviour).
  double rejoin_grace_s = 0.0;
  // Idle poll tick for pump loops (--poll-interval).  Under the epoll
  // reactor this is only the UPPER BOUND on how long a quiet poll() sleeps —
  // readiness wakes it immediately — so it trades idle wakeup rate against
  // on_idle() deadline granularity, not against latency.
  double poll_interval_s = 0.05;
  // Leader-rotation mode (DESIGN.md §15): run N co-equal top nodes (ids
  // top_node_id(0..N-1)) instead of the single kRootId root.  The tops elect
  // a leader among themselves; workers join every top and follow the current
  // leader.  0 = the classic single-root federation.
  std::size_t top_cluster = 0;
  // Top-cluster mode: workers the leader waits for before starting round 0
  // (the join gate).  0 = config.workers.  Lets a churn scenario start with
  // a subset of the worker pool the shard layout is built for.
  std::size_t initial_workers = 0;
  // Top-cluster election timing (consensus::rotation::Config); tests tighten
  // these to keep failover drills fast.
  double election_min_s = 0.25;
  double election_max_s = 0.5;
  double heartbeat_s = 0.05;
};

/// Parse a --compress spec — a comma list of "topk:K" (sparsify updates to
/// the K largest-magnitude entries) and "delta" (encode against the link's
/// previous model) — into the config's codec fields.  Returns false on a
/// malformed spec, leaving `config` untouched.  An empty spec is valid and
/// changes nothing.
[[nodiscard]] bool apply_compress_spec(const std::string& spec, FederationConfig& config);

/// The codec this node advertises / negotiates against, straight from the
/// config's compression knobs.
[[nodiscard]] Codec codec_from_config(const FederationConfig& config) noexcept;

inline constexpr NodeId kRootId = 0;
[[nodiscard]] inline NodeId worker_node_id(std::size_t worker_index) noexcept {
  return static_cast<NodeId>(worker_index + 1);
}
/// Ids at or above this are reserved for observers (abdhfl_top probes):
/// never members, so their link teardown is not churn and must not tick the
/// peer-loss counters operators alert on.
inline constexpr NodeId kObserverIdBase = 900;
[[nodiscard]] inline bool is_observer(NodeId id) noexcept {
  return id >= kObserverIdBase;
}
/// Ids of the leader-rotation top-cluster members (FederationConfig::
/// top_cluster mode): kTopIdBase + committee rank.  Between the worker range
/// and the observer range, so neither collides.
inline constexpr NodeId kTopIdBase = 100;
[[nodiscard]] inline NodeId top_node_id(std::size_t top_index) noexcept {
  return kTopIdBase + static_cast<NodeId>(top_index);
}
[[nodiscard]] inline bool is_top(NodeId id) noexcept {
  return id >= kTopIdBase && id < kObserverIdBase;
}
/// Tree level of the root<->worker links, used as the traffic link class.
inline constexpr std::uint32_t kLeaderLinkClass = 1;
/// Link class of top-cluster committee traffic (level 0: above the
/// kLeaderLinkClass root<->worker links).
inline constexpr std::uint32_t kTopLinkClass = 0;

/// Everything a process derives from the seed alone — identical in every
/// process of a federation, which is what makes the runs comparable.
struct FederationData {
  std::vector<data::Dataset> shards;  // one per device: worker*dpw + k
  data::Dataset test_set;             // root's reporting set
  std::size_t input_dim = 0;
  std::vector<float> init_params;     // round-0 model
  nn::Mlp prototype;                  // scratch architecture for evaluation
};

[[nodiscard]] FederationData build_federation_data(const FederationConfig& config);

/// Trainer for one global device index, with its RNG derived from the seed
/// and the index so every process reproduces the same SGD stream.
[[nodiscard]] core::LocalTrainer make_device_trainer(const FederationConfig& config,
                                                     const FederationData& data,
                                                     std::size_t device);

/// Eq. 1 merge: alpha * global + (1 - alpha) * local, elementwise.
[[nodiscard]] std::vector<float> merge_models(std::span<const float> global,
                                              std::span<const float> local, double alpha);

/// Allocation-free variant: writes the merge into `out` (resized to match).
/// `out` must not alias either input.  Same arithmetic as merge_models —
/// the bitwise-equivalence check depends on it.
void merge_models_into(std::span<const float> global, std::span<const float> local,
                       double alpha, std::vector<float>& out);

/// One worker-local round: train every trainer from `start`, aggregate with
/// `rule`.  Exposed so the transport-free reference loop and WorkerNode
/// share the exact arithmetic (the bitwise-equivalence check depends on it).
[[nodiscard]] std::vector<float> cluster_round(const FederationConfig& config,
                                               std::vector<core::LocalTrainer>& trainers,
                                               agg::Aggregator& rule,
                                               std::span<const float> start);

// ---------------------------------------------------------------------------

class WorkerNode {
 public:
  /// `transport` must outlive the node; the node registers itself under
  /// worker_node_id(worker_index) and expects a link to kRootId.
  /// `checkpoint` (optional, not owned) persists the worker's merged model,
  /// trainer RNG streams and round counter after every `checkpoint_every`-th
  /// merge (save_now: the snapshot is durable before the next frame is
  /// touched, so a SIGKILL at any instant loses at most the current round).
  /// With `resume` the latest snapshot is restored in the constructor; the
  /// join echo then tells the worker which round the root is collecting, so
  /// a restarted process rejoins mid-training instead of retraining from
  /// round 0.
  WorkerNode(FederationConfig config, std::size_t worker_index, Transport& transport,
             obs::Recorder* recorder = nullptr, ckpt::Store* checkpoint = nullptr,
             std::size_t checkpoint_every = 1, bool resume = false);

  /// Send the join; training starts when the root echoes it.  In top-cluster
  /// mode (config.top_cluster > 0) the join is broadcast to EVERY top node,
  /// so whichever member wins the election already holds it.
  void start();
  /// Deadline bookkeeping; call between poll()s.
  void on_idle();

  /// Leave the federation now (churn scenarios): say goodbye to the current
  /// parent and stop processing frames.  The committed membership log is how
  /// the departure becomes part of the agreed view.
  void leave();

  [[nodiscard]] bool done() const noexcept { return done_; }
  [[nodiscard]] bool failed() const noexcept { return failed_; }
  /// The worker's final merged model (valid once done() && !failed()).
  [[nodiscard]] const std::vector<float>& model() const noexcept { return current_; }
  [[nodiscard]] std::size_t rounds_run() const noexcept { return round_; }
  /// First round this process will train (> 0 iff a snapshot was restored).
  [[nodiscard]] std::size_t resume_round() const noexcept { return resume_round_; }

 private:
  void on_message(WireMessage& msg);
  void train_and_send();
  /// Re-send the already-trained cluster model for the current round to the
  /// (possibly re-targeted) parent — the leader-failover path.  Never
  /// retrains: retraining would advance the device RNG streams and break
  /// bitwise identity with the unfailed run.
  void resend_update();
  [[nodiscard]] bool top_mode() const noexcept { return config_.top_cluster > 0; }
  void finish(bool failed);
  void save_checkpoint();
  void restore_checkpoint();
  void reply_status(const StatusRequest& request, NodeId to);

  FederationConfig config_;
  std::size_t index_;
  NodeId id_;
  Transport& transport_;
  obs::Recorder* recorder_;
  ckpt::Store* checkpoint_;
  std::size_t checkpoint_every_;
  hier::Uplink uplink_;  // the up-facing protocol mechanics toward the root
  std::vector<core::LocalTrainer> trainers_;
  std::unique_ptr<agg::Aggregator> rule_;
  std::uint64_t subtree_samples_ = 0;
  std::vector<float> current_;       // model the next round trains from
  std::vector<float> last_cluster_;  // this worker's latest BRA output
  std::size_t round_ = 0;
  std::size_t resume_round_ = 0;
  bool done_ = false;
  bool failed_ = false;
};

struct RootResult {
  std::vector<float> global_model;
  std::vector<double> round_accuracy;  // one entry per completed round
  double final_accuracy = 0.0;
  std::size_t rounds_run = 0;
  std::size_t workers_joined = 0;
  std::size_t workers_lost = 0;
  std::size_t workers_rejoined = 0;  // re-admitted after a transient drop
};

class RootNode {
 public:
  /// `checkpoint` (optional, not owned) persists the global model, round
  /// counter, accumulated result and the mirrored topology after every
  /// `checkpoint_every`-th aggregation.  With `resume` the latest snapshot
  /// is restored in the constructor: the root starts a fresh join phase (its
  /// sockets died with the old process) but the join echo carries the
  /// restored round, so resuming workers slot into the right quorum.
  /// With config.tree set the root sits on top of an N-level tree: it
  /// expects branching[0] aggregator children instead of config.workers
  /// workers, and the 2-level topology mirror is skipped (the children are
  /// interior processes, not bottom clusters).
  RootNode(FederationConfig config, Transport& transport,
           obs::Recorder* recorder = nullptr, ckpt::Store* checkpoint = nullptr,
           std::size_t checkpoint_every = 1, bool resume = false);

  void start();
  void on_idle();

  [[nodiscard]] bool done() const noexcept { return phase_ == Phase::kDone; }
  [[nodiscard]] const RootResult& result() const noexcept { return result_; }
  /// First round this process will collect (> 0 iff a snapshot was restored).
  [[nodiscard]] std::size_t resume_round() const noexcept { return resume_round_; }

 private:
  enum class Phase { kJoining, kTraining, kFinishing, kDone };

  void on_message(WireMessage& msg);
  /// Zero-copy fast path: a complete ModelUpdate frame destined for us,
  /// offered before decode; the collector feeds its parameter chunk straight
  /// from the rx ring into the streaming accumulator when the guards pass.
  bool on_raw_frame(const FrameView& view);
  void on_peer_loss(NodeId peer);
  void on_peer_reconnect(NodeId peer);
  void begin_training();
  /// (Re)arm the streaming accumulator for the round about to be collected;
  /// no-op (materialize-first) when the root rule cannot stream.
  void arm_stream();
  void maybe_aggregate();  // fires once every live worker's update arrived
  void maybe_finish();
  void finish_now();  // kDone transition + blackbox bookkeeping
  void apply_churn(NodeId worker);
  void apply_rejoin(NodeId worker);
  void save_checkpoint();
  void restore_checkpoint();
  /// Answer a status probe (live introspection — works in every phase): the
  /// reply carries the round, phase, the per-peer table (state, RTT,
  /// suspicion, bytes), and the Prometheus exposition when detail is set.
  void reply_status(const StatusRequest& request, NodeId to);
  /// Per-round RTT probes to every live worker (the peer table's freshness).
  void ping_workers();

  FederationConfig config_;
  Transport& transport_;
  obs::Recorder* recorder_;
  ckpt::Store* checkpoint_;
  std::size_t checkpoint_every_;
  std::size_t resume_round_ = 0;
  FederationData data_;
  std::unique_ptr<agg::Aggregator> rule_;
  topology::HflTree tree_;  // mirrored topology the churn events update
  hier::Collector collector_;  // the down-facing protocol mechanics
  Phase phase_ = Phase::kJoining;
  std::vector<float> global_;
  std::size_t round_ = 0;
  double phase_deadline_ = 0.0;  // seconds_since_epoch()-style wall clock
  RootResult result_;
};

/// Pump `transport` until `done()` returns true (it may advance node state,
/// e.g. call on_idle) or `deadline_s` of wall clock elapses.  Returns
/// whether `done` fired.  `poll_s` is FederationConfig::poll_interval_s —
/// the idle tick, not a latency floor (see that field's comment).
bool pump_until(Transport& transport, const std::function<bool()>& done,
                double deadline_s, double poll_s = 0.05);

}  // namespace abdhfl::net
