#include "net/wire.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <numeric>

#include "nn/quantize.hpp"
#include "nn/serialize.hpp"

namespace abdhfl::net {

namespace {

static_assert(std::endian::native == std::endian::little,
              "wire codec assumes a little-endian host");

constexpr std::uint64_t kFnvOffset = 0xCBF29CE484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001B3ULL;

// Frame digest: FNV-1a folded one 64-bit word at a time instead of per byte
// — an 8x shorter serial multiply chain, which used to dominate the decode
// hot path (the hash runs over every frame byte).  The struct is a streaming
// state so the digest over (head, inline_payload, tail) chains across
// arbitrary part boundaries and equals the digest over the concatenated
// frame; value() folds the partial tail word plus its length so "trailing
// zero byte" and "no byte" hash differently.  Still an integrity check, not
// a MAC (wire v2 value — mirrored by the test forgery helper).
struct FrameDigest {
  std::uint64_t h = kFnvOffset;
  std::uint64_t pending = 0;    // partial word, low bytes first
  std::size_t pending_len = 0;  // bytes buffered in `pending`, always < 8

  void fold(std::uint64_t word) noexcept {
    h ^= word;
    h *= kFnvPrime;
  }

  void update(const std::uint8_t* data, std::size_t n) noexcept {
    std::size_t i = 0;
    while (pending_len != 0 && pending_len < 8 && i < n) {
      pending |= static_cast<std::uint64_t>(data[i++]) << (8 * pending_len++);
    }
    if (pending_len == 8) {
      fold(pending);
      pending = 0;
      pending_len = 0;
    }
    for (; i + 8 <= n; i += 8) {
      std::uint64_t word;
      std::memcpy(&word, data + i, sizeof(word));
      fold(word);
    }
    while (i < n) {
      pending |= static_cast<std::uint64_t>(data[i++]) << (8 * pending_len++);
    }
  }

  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t out = h;
    out ^= pending;
    out *= kFnvPrime;
    out ^= static_cast<std::uint64_t>(pending_len);
    out *= kFnvPrime;
    return out;
  }
};

std::uint64_t frame_digest(const std::uint8_t* data, std::size_t n) noexcept {
  FrameDigest digest;
  digest.update(data, n);
  return digest.value();
}

template <class T>
void append_pod(std::vector<std::uint8_t>& out, T value) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&value);
  out.insert(out.end(), p, p + sizeof(T));
}

template <class T>
T read_pod(std::span<const std::uint8_t> bytes, std::size_t& offset) {
  if (offset + sizeof(T) > bytes.size()) throw WireError("truncated frame body");
  T value;
  std::memcpy(&value, bytes.data() + offset, sizeof(T));
  offset += sizeof(T);
  return value;
}

// --- parameter sections ----------------------------------------------------
// Raw dense params reuse the nn/serialize blob unchanged.  Quantized params
// carry the nn/quantize block format: bits, block, count, per-block
// (scale, min) pairs, packed codes — exactly QuantizedVec::wire_size()
// bytes.  Top-k sections prefix either value encoding with k, d and the
// sorted index list; delta only changes the transmitted values and sets a
// flag, never the layout.

std::vector<float> read_raw_blob(std::span<const std::uint8_t> body,
                                 std::size_t& offset) {
  // The nn/serialize blob is self-delimiting: magic/version/count header.
  constexpr std::size_t kBlobHeader = 2 * sizeof(std::uint32_t) + sizeof(std::uint64_t);
  if (offset + kBlobHeader + sizeof(std::uint64_t) > body.size()) {
    throw WireError("truncated parameter blob header");
  }
  std::uint64_t count;
  std::memcpy(&count, body.data() + offset + 2 * sizeof(std::uint32_t), sizeof(count));
  // The count comes straight off the wire (and the frame digest is not a
  // MAC): bound it by the bytes actually present before it sizes anything
  // — nn::wire_size(count) itself overflows for count near 2^64.
  const std::size_t capacity =
      body.size() - offset - kBlobHeader - sizeof(std::uint64_t);
  if (count > capacity / sizeof(float)) throw WireError("truncated parameter blob");
  const std::size_t blob_size = nn::wire_size(static_cast<std::size_t>(count));
  if (offset + blob_size > body.size()) throw WireError("truncated parameter blob");
  // Parse the blob in place instead of nn::deserialize_params: the frame
  // digest already covered every blob byte (including the trailing nn
  // digest field), so re-hashing the floats here would double the per-frame
  // hash cost for no additional integrity.  The nn-layer check stays for
  // its other consumers (checkpoint files have no outer digest).
  std::size_t pos = offset;
  if (read_pod<std::uint32_t>(body, pos) != nn::kBlobMagic) {
    throw WireError("parameter blob: bad model blob magic");
  }
  if (read_pod<std::uint32_t>(body, pos) != nn::kBlobVersion) {
    throw WireError("parameter blob: unsupported model blob version");
  }
  pos += sizeof(std::uint64_t);  // count, validated above
  std::vector<float> params(static_cast<std::size_t>(count));
  std::memcpy(params.data(), body.data() + pos,
              static_cast<std::size_t>(count) * sizeof(float));
  offset += blob_size;
  return params;
}

std::vector<float> read_quantized(std::span<const std::uint8_t> body,
                                  std::size_t& offset) {
  nn::QuantizedVec q;
  q.bits = read_pod<std::uint8_t>(body, offset);
  q.block = read_pod<std::uint32_t>(body, offset);
  q.count = read_pod<std::uint64_t>(body, offset);
  if (q.bits == 0 || q.bits > 8 || q.block == 0) {
    throw WireError("corrupt quantized parameter header");
  }
  // Bound the wire-supplied count against the bytes actually present BEFORE
  // any allocation: the packed codes alone need ceil(count*bits/8) bytes and
  // each block carries a (scale, min) pair.  Without this, a forged count
  // drives resize() into std::length_error/bad_alloc, which are not
  // WireError and would escape the transports' decode-error handling.
  const std::size_t remaining = body.size() - offset;
  if (q.count > static_cast<std::uint64_t>(remaining) * 8 / q.bits) {
    throw WireError("truncated quantized payload");
  }
  const std::size_t n_blocks =
      (static_cast<std::size_t>(q.count) + q.block - 1) / q.block;
  if (n_blocks * 2 * sizeof(float) +
          (static_cast<std::size_t>(q.count) * q.bits + 7) / 8 >
      remaining) {
    throw WireError("truncated quantized payload");
  }
  q.scales.resize(n_blocks);
  q.mins.resize(n_blocks);
  for (std::size_t b = 0; b < n_blocks; ++b) {
    q.scales[b] = read_pod<float>(body, offset);
    q.mins[b] = read_pod<float>(body, offset);
  }
  const std::size_t data_bytes =
      (static_cast<std::size_t>(q.count) * q.bits + 7) / 8;
  if (offset + data_bytes > body.size()) throw WireError("truncated quantized payload");
  q.data.assign(body.begin() + static_cast<std::ptrdiff_t>(offset),
                body.begin() + static_cast<std::ptrdiff_t>(offset + data_bytes));
  offset += data_bytes;
  try {
    return nn::dequantize(q);
  } catch (const std::invalid_argument& e) {
    throw WireError(std::string("quantized payload: ") + e.what());
  }
}

/// Reconstruct the dense parameter vector of one section under `flags`,
/// using `base` (the link's last model) for kFlagDelta frames.
std::vector<float> read_params(std::span<const std::uint8_t> body, std::size_t& offset,
                               std::uint16_t flags, const std::vector<float>* base) {
  const bool delta = (flags & kFlagDelta) != 0;
  if (delta && (base == nullptr || base->empty())) {
    throw WireError("delta frame without a cached base model");
  }
  if ((flags & kFlagTopK) != 0) {
    const auto k = read_pod<std::uint32_t>(body, offset);
    const auto d = read_pod<std::uint64_t>(body, offset);
    if (d > kMaxWireParams) throw WireError("sparse dense size exceeds limit");
    if (k > d) throw WireError("sparse entry count exceeds dense size");
    // Bound k by the bytes actually present BEFORE it sizes anything (the
    // same discipline as the dense blob / quantized readers above); d is
    // bounded by kMaxWireParams since its bytes never travel.
    const std::size_t remaining = body.size() - offset;
    if (k > remaining / sizeof(std::uint32_t)) {
      throw WireError("truncated sparse index list");
    }
    if (delta && base->size() != d) throw WireError("delta base dimension mismatch");
    std::vector<std::uint32_t> idx(k);
    std::memcpy(idx.data(), body.data() + offset, k * sizeof(std::uint32_t));
    offset += k * sizeof(std::uint32_t);
    for (std::size_t j = 0; j < idx.size(); ++j) {
      if (idx[j] >= d || (j > 0 && idx[j] <= idx[j - 1])) {
        throw WireError("corrupt sparse index list");
      }
    }
    std::vector<float> vals;
    if ((flags & kFlagQuantized) != 0) {
      vals = read_quantized(body, offset);
      if (vals.size() != k) throw WireError("sparse value count mismatch");
    } else {
      if (static_cast<std::size_t>(k) * sizeof(float) > body.size() - offset) {
        throw WireError("truncated sparse values");
      }
      vals.resize(k);
      std::memcpy(vals.data(), body.data() + offset, k * sizeof(float));
      offset += k * sizeof(float);
    }
    std::vector<float> out =
        delta ? *base : std::vector<float>(static_cast<std::size_t>(d), 0.0f);
    for (std::size_t j = 0; j < idx.size(); ++j) {
      out[idx[j]] = delta ? (*base)[idx[j]] + vals[j] : vals[j];
    }
    return out;
  }
  auto vals = (flags & kFlagQuantized) != 0 ? read_quantized(body, offset)
                                            : read_raw_blob(body, offset);
  if (!delta) return vals;
  if (vals.size() != base->size()) throw WireError("delta base dimension mismatch");
  for (std::size_t i = 0; i < vals.size(); ++i) vals[i] = (*base)[i] + vals[i];
  return vals;
}

std::size_t quant_section_size(std::size_t count, std::uint8_t bits,
                               std::uint32_t block) noexcept {
  const std::size_t n_blocks = block == 0 ? 0 : (count + block - 1) / block;
  return sizeof(std::uint8_t) + sizeof(std::uint32_t) + sizeof(std::uint64_t) +
         n_blocks * 2 * sizeof(float) + (count * bits + 7) / 8;
}

std::size_t params_body_size(std::size_t count, const Codec& codec) noexcept {
  if (codec.topk != 0) {
    const std::size_t k = std::min<std::size_t>(codec.topk, count);
    const std::size_t values =
        codec.quantized() ? quant_section_size(k, codec.quantize_bits, codec.block)
                          : k * sizeof(float);
    return sizeof(std::uint32_t) + sizeof(std::uint64_t) +
           k * sizeof(std::uint32_t) + values;
  }
  if (!codec.quantized()) return nn::wire_size(count);
  return quant_section_size(count, codec.quantize_bits, codec.block);
}

// --- per-kind bodies -------------------------------------------------------

/// Append the parameter section of `params` under `codec` to `out`,
/// recording the flags it chose and (when delta tracking is on) the
/// reconstruction both ends must install as the link's next base.
void encode_params(EncodedParts& out, std::span<const float> params, const Codec& codec,
                   const std::vector<float>* base, std::uint16_t& flags, MsgKind kind) {
  const bool track = codec.delta;
  const bool use_delta =
      track && base != nullptr && base->size() == params.size() && !params.empty();
  if (use_delta) flags |= kFlagDelta;

  // Stage 1: delta against the link's last reconstructed model.  The dense
  // raw case lands directly in scratch_values so the float bytes can go out
  // in place; with top-k on top, a local buffer holds the intermediate.
  std::span<const float> work = params;
  std::vector<float> delta_local;
  if (use_delta) {
    std::vector<float>& dst = codec.topk != 0 ? delta_local : out.scratch_values;
    dst.resize(params.size());
    for (std::size_t i = 0; i < params.size(); ++i) dst[i] = params[i] - (*base)[i];
    work = dst;
  }

  // Stage 2: top-k selection (largest |value|; ties broken by lower index so
  // every process picks the same entries).
  std::vector<std::uint32_t> indices;
  if (codec.topk != 0) {
    flags |= kFlagTopK;
    const std::size_t d = work.size();
    const std::size_t k = std::min<std::size_t>(codec.topk, d);
    indices.resize(d);
    std::iota(indices.begin(), indices.end(), 0u);
    const auto more_salient = [&work](std::uint32_t a, std::uint32_t b) {
      const float fa = std::abs(work[a]);
      const float fb = std::abs(work[b]);
      return fa != fb ? fa > fb : a < b;
    };
    if (k < d) {
      std::nth_element(indices.begin(),
                       indices.begin() + static_cast<std::ptrdiff_t>(k),
                       indices.end(), more_salient);
      indices.resize(k);
    }
    std::sort(indices.begin(), indices.end());
    append_pod(out.head, static_cast<std::uint32_t>(k));
    append_pod(out.head, static_cast<std::uint64_t>(d));
    for (const std::uint32_t i : indices) append_pod(out.head, i);
    std::vector<float> gathered(k);
    for (std::size_t j = 0; j < k; ++j) gathered[j] = work[indices[j]];
    out.scratch_values = std::move(gathered);
    work = out.scratch_values;
  }

  // Stage 3: emit the transmitted values.  `transmitted` is what the
  // receiver will reconstruct with — after quantization that is the
  // dequantized values, so both ends' delta bases stay bitwise-identical.
  std::span<const float> transmitted = work;
  std::vector<float> dequant_local;
  if (codec.quantized()) {
    flags |= kFlagQuantized;
    const auto q = nn::quantize(work, codec.quantize_bits, codec.block);
    append_pod(out.head, q.bits);
    append_pod(out.head, q.block);
    append_pod(out.head, q.count);
    for (std::size_t b = 0; b < q.scales.size(); ++b) {
      append_pod(out.head, q.scales[b]);
      append_pod(out.head, q.mins[b]);
    }
    out.head.insert(out.head.end(), q.data.begin(), q.data.end());
    if (track) {
      dequant_local = nn::dequantize(q);
      transmitted = dequant_local;
    }
  } else if ((flags & kFlagTopK) != 0) {
    // Sparse raw values: plain float bytes after the index list (the frame
    // digest covers them; no inner blob framing).
    out.inline_payload = {reinterpret_cast<const std::uint8_t*>(work.data()),
                          work.size() * sizeof(float)};
  } else {
    // Raw dense: nn/serialize blob split around the caller's floats — the
    // in-memory vector IS the wire representation, nothing is copied.
    append_pod(out.head, nn::kBlobMagic);
    append_pod(out.head, nn::kBlobVersion);
    append_pod(out.head, static_cast<std::uint64_t>(work.size()));
    out.inline_payload = {reinterpret_cast<const std::uint8_t*>(work.data()),
                          work.size() * sizeof(float)};
    append_pod(out.tail, nn::params_digest(work));
  }

  if (!track) return;
  out.has_recon = true;
  out.recon_kind = kind;
  if ((flags & kFlagTopK) != 0) {
    if (use_delta) {
      out.recon = *base;
      for (std::size_t j = 0; j < indices.size(); ++j) {
        out.recon[indices[j]] = (*base)[indices[j]] + transmitted[j];
      }
    } else {
      out.recon.assign(params.size(), 0.0f);
      for (std::size_t j = 0; j < indices.size(); ++j) {
        out.recon[indices[j]] = transmitted[j];
      }
    }
  } else {
    out.recon.resize(params.size());
    for (std::size_t i = 0; i < params.size(); ++i) {
      out.recon[i] = use_delta ? (*base)[i] + transmitted[i] : transmitted[i];
    }
  }
}

void encode_body(EncodedParts& out, const ModelUpdate& m, const Codec& codec,
                 const std::vector<float>* base, std::uint16_t& flags) {
  append_pod(out.head, m.sender);
  append_pod(out.head, m.level);
  append_pod(out.head, m.samples);
  encode_params(out, m.params, codec, base, flags, MsgKind::kModelUpdate);
}

void encode_body(EncodedParts& out, const PartialModel& m, const Codec& codec,
                 const std::vector<float>* base, std::uint16_t& flags) {
  append_pod(out.head, m.origin);
  append_pod(out.head, m.flag_level);
  append_pod(out.head, static_cast<std::uint8_t>(m.is_global ? 1 : 0));
  append_pod(out.head, m.alpha);
  append_pod(out.head, m.flag_fraction);
  encode_params(out, m.params, codec, base, flags, MsgKind::kPartialModel);
}

void encode_body(EncodedParts& out, const ConsensusVote& m, const Codec&,
                 const std::vector<float>*, std::uint16_t&) {
  append_pod(out.head, m.voter);
  append_pod(out.head, m.candidate);
  append_pod(out.head, m.score);
  append_pod(out.head, static_cast<std::uint8_t>(m.accept ? 1 : 0));
}

void encode_body(EncodedParts& out, const Membership& m, const Codec&,
                 const std::vector<float>*, std::uint16_t&) {
  append_pod(out.head, static_cast<std::uint8_t>(m.event));
  append_pod(out.head, m.device);
  append_pod(out.head, m.cluster);
  append_pod(out.head, m.subtree_samples);
  append_pod(out.head, m.codec.quantize_bits);
  append_pod(out.head, m.codec.block);
  append_pod(out.head, m.codec.topk);
  append_pod(out.head, static_cast<std::uint8_t>(m.codec.delta ? 1 : 0));
  append_pod(out.head, static_cast<std::uint8_t>(m.trace ? 1 : 0));
  append_pod(out.head, m.wall_ns);
  append_pod(out.head, m.echo_wall_ns);
}

void encode_body(EncodedParts& out, const StatusRequest& m, const Codec&,
                 const std::vector<float>*, std::uint16_t&) {
  append_pod(out.head, m.probe);
  append_pod(out.head, m.detail);
  append_pod(out.head, m.wall_ns);
}

void encode_body(EncodedParts& out, const VoteRequest& m, const Codec&,
                 const std::vector<float>*, std::uint16_t&) {
  append_pod(out.head, m.term);
  append_pod(out.head, m.candidate);
  append_pod(out.head, m.last_log_index);
  append_pod(out.head, m.last_log_term);
}

void encode_body(EncodedParts& out, const VoteReply& m, const Codec&,
                 const std::vector<float>*, std::uint16_t&) {
  append_pod(out.head, m.term);
  append_pod(out.head, m.voter);
  append_pod(out.head, m.granted);
}

void encode_body(EncodedParts& out, const AppendEntries& m, const Codec&,
                 const std::vector<float>*, std::uint16_t&) {
  append_pod(out.head, m.term);
  append_pod(out.head, m.leader);
  append_pod(out.head, m.prev_log_index);
  append_pod(out.head, m.prev_log_term);
  append_pod(out.head, m.commit_index);
  append_pod(out.head, static_cast<std::uint32_t>(m.entries.size()));
  for (const RaftLogEntry& e : m.entries) {
    append_pod(out.head, e.term);
    append_pod(out.head, e.index);
    append_pod(out.head, e.type);
    append_pod(out.head, e.round);
    append_pod(out.head, e.subject);
    append_pod(out.head, e.samples);
    append_pod(out.head, e.quantize_bits);
    append_pod(out.head, e.topk);
    append_pod(out.head, e.delta);
    append_pod(out.head, e.trace);
    append_pod(out.head, e.digest);
    // The committed model travels as a raw dense section (count + floats):
    // replication is a top-cluster-only path where the negotiated per-link
    // compression does not apply — the log must hold the exact bytes.
    append_pod(out.head, static_cast<std::uint64_t>(e.params.size()));
    const auto* raw = reinterpret_cast<const std::uint8_t*>(e.params.data());
    out.head.insert(out.head.end(), raw, raw + e.params.size() * sizeof(float));
  }
}

void encode_body(EncodedParts& out, const Heartbeat& m, const Codec&,
                 const std::vector<float>*, std::uint16_t&) {
  append_pod(out.head, m.term);
  append_pod(out.head, m.node);
  append_pod(out.head, m.ack);
  append_pod(out.head, m.success);
  append_pod(out.head, m.commit_index);
  append_pod(out.head, m.match_index);
}

void encode_body(EncodedParts& out, const StatusReply& m, const Codec&,
                 const std::vector<float>*, std::uint16_t&) {
  append_pod(out.head, m.node);
  append_pod(out.head, m.probe);
  append_pod(out.head, m.round);
  append_pod(out.head, m.phase);
  append_pod(out.head, m.live_workers);
  append_pod(out.head, m.level);
  append_pod(out.head, m.parent);
  append_pod(out.head, m.wall_ns);
  append_pod(out.head, m.echo_wall_ns);
  append_pod(out.head, m.term);
  append_pod(out.head, m.leader);
  append_pod(out.head, m.commit_index);
  append_pod(out.head, m.view_reason);
  append_pod(out.head, static_cast<std::uint32_t>(m.peers.size()));
  for (const StatusPeer& peer : m.peers) {
    append_pod(out.head, peer.node);
    append_pod(out.head, peer.state);
    append_pod(out.head, peer.rtt_ms);
    append_pod(out.head, peer.suspicion);
    append_pod(out.head, peer.bytes_sent);
    append_pod(out.head, peer.bytes_received);
  }
  append_pod(out.head, static_cast<std::uint32_t>(m.metrics.size()));
  out.head.insert(out.head.end(), m.metrics.begin(), m.metrics.end());
}

/// Fixed bytes of one RaftLogEntry on the wire (everything but the floats).
constexpr std::size_t kRaftEntryFixed =
    sizeof(std::uint64_t) * 2 + sizeof(std::uint16_t) + sizeof(std::uint64_t) +
    sizeof(std::uint32_t) + sizeof(std::uint64_t) + sizeof(std::uint8_t) +
    sizeof(std::uint32_t) + 2 * sizeof(std::uint8_t) + 2 * sizeof(std::uint64_t);

Payload decode_body(MsgKind kind, std::span<const std::uint8_t> body,
                    std::uint16_t flags, const std::vector<float>* base) {
  std::size_t offset = 0;
  switch (kind) {
    case MsgKind::kModelUpdate: {
      ModelUpdate m;
      m.sender = read_pod<std::uint32_t>(body, offset);
      m.level = read_pod<std::uint32_t>(body, offset);
      m.samples = read_pod<std::uint64_t>(body, offset);
      m.params = read_params(body, offset, flags, base);
      if (offset != body.size()) throw WireError("trailing bytes after model update");
      return m;
    }
    case MsgKind::kPartialModel: {
      PartialModel m;
      m.origin = read_pod<std::uint32_t>(body, offset);
      m.flag_level = read_pod<std::uint32_t>(body, offset);
      m.is_global = read_pod<std::uint8_t>(body, offset) != 0;
      m.alpha = read_pod<float>(body, offset);
      m.flag_fraction = read_pod<double>(body, offset);
      m.params = read_params(body, offset, flags, base);
      if (offset != body.size()) throw WireError("trailing bytes after partial model");
      return m;
    }
    case MsgKind::kConsensusVote: {
      ConsensusVote m;
      m.voter = read_pod<std::uint32_t>(body, offset);
      m.candidate = read_pod<std::uint32_t>(body, offset);
      m.score = read_pod<float>(body, offset);
      m.accept = read_pod<std::uint8_t>(body, offset) != 0;
      if (offset != body.size()) throw WireError("trailing bytes after vote");
      return m;
    }
    case MsgKind::kMembership: {
      Membership m;
      const auto event = read_pod<std::uint8_t>(body, offset);
      if (event > static_cast<std::uint8_t>(Membership::Event::kShutdown)) {
        throw WireError("unknown membership event");
      }
      m.event = static_cast<Membership::Event>(event);
      m.device = read_pod<std::uint32_t>(body, offset);
      m.cluster = read_pod<std::uint32_t>(body, offset);
      m.subtree_samples = read_pod<std::uint64_t>(body, offset);
      m.codec.quantize_bits = read_pod<std::uint8_t>(body, offset);
      m.codec.block = read_pod<std::uint32_t>(body, offset);
      m.codec.topk = read_pod<std::uint32_t>(body, offset);
      m.codec.delta = read_pod<std::uint8_t>(body, offset) != 0;
      m.trace = read_pod<std::uint8_t>(body, offset) != 0;
      m.wall_ns = read_pod<std::int64_t>(body, offset);
      m.echo_wall_ns = read_pod<std::int64_t>(body, offset);
      if (offset != body.size()) throw WireError("trailing bytes after membership");
      return m;
    }
    case MsgKind::kStatusRequest: {
      StatusRequest m;
      m.probe = read_pod<std::uint32_t>(body, offset);
      m.detail = read_pod<std::uint8_t>(body, offset);
      m.wall_ns = read_pod<std::int64_t>(body, offset);
      if (offset != body.size()) throw WireError("trailing bytes after status request");
      return m;
    }
    case MsgKind::kStatusReply: {
      StatusReply m;
      m.node = read_pod<std::uint32_t>(body, offset);
      m.probe = read_pod<std::uint32_t>(body, offset);
      m.round = read_pod<std::uint64_t>(body, offset);
      m.phase = read_pod<std::uint8_t>(body, offset);
      m.live_workers = read_pod<std::uint32_t>(body, offset);
      m.level = read_pod<std::uint32_t>(body, offset);
      m.parent = read_pod<std::uint32_t>(body, offset);
      m.wall_ns = read_pod<std::int64_t>(body, offset);
      m.echo_wall_ns = read_pod<std::int64_t>(body, offset);
      m.term = read_pod<std::uint64_t>(body, offset);
      m.leader = read_pod<std::uint32_t>(body, offset);
      m.commit_index = read_pod<std::uint64_t>(body, offset);
      m.view_reason = read_pod<std::uint8_t>(body, offset);
      // Both counts come straight off the wire: bound them by the bytes
      // actually present BEFORE any allocation (the PR 4 discipline), so a
      // forged count throws WireError instead of length_error/bad_alloc.
      const auto peer_count = read_pod<std::uint32_t>(body, offset);
      constexpr std::size_t kPeerWire = sizeof(std::uint32_t) + sizeof(std::uint8_t) +
                                        sizeof(float) + sizeof(double) +
                                        2 * sizeof(std::uint64_t);
      if (peer_count > (body.size() - offset) / kPeerWire) {
        throw WireError("truncated status peer table");
      }
      m.peers.resize(peer_count);
      for (StatusPeer& peer : m.peers) {
        peer.node = read_pod<std::uint32_t>(body, offset);
        peer.state = read_pod<std::uint8_t>(body, offset);
        peer.rtt_ms = read_pod<float>(body, offset);
        peer.suspicion = read_pod<double>(body, offset);
        peer.bytes_sent = read_pod<std::uint64_t>(body, offset);
        peer.bytes_received = read_pod<std::uint64_t>(body, offset);
      }
      const auto metrics_len = read_pod<std::uint32_t>(body, offset);
      if (metrics_len > body.size() - offset) {
        throw WireError("truncated status metrics blob");
      }
      m.metrics.assign(reinterpret_cast<const char*>(body.data()) + offset,
                       metrics_len);
      offset += metrics_len;
      if (offset != body.size()) throw WireError("trailing bytes after status reply");
      return m;
    }
    case MsgKind::kVoteRequest: {
      VoteRequest m;
      m.term = read_pod<std::uint64_t>(body, offset);
      m.candidate = read_pod<std::uint32_t>(body, offset);
      m.last_log_index = read_pod<std::uint64_t>(body, offset);
      m.last_log_term = read_pod<std::uint64_t>(body, offset);
      if (offset != body.size()) throw WireError("trailing bytes after vote request");
      return m;
    }
    case MsgKind::kVoteReply: {
      VoteReply m;
      m.term = read_pod<std::uint64_t>(body, offset);
      m.voter = read_pod<std::uint32_t>(body, offset);
      m.granted = read_pod<std::uint8_t>(body, offset);
      if (offset != body.size()) throw WireError("trailing bytes after vote reply");
      return m;
    }
    case MsgKind::kAppendEntries: {
      AppendEntries m;
      m.term = read_pod<std::uint64_t>(body, offset);
      m.leader = read_pod<std::uint32_t>(body, offset);
      m.prev_log_index = read_pod<std::uint64_t>(body, offset);
      m.prev_log_term = read_pod<std::uint64_t>(body, offset);
      m.commit_index = read_pod<std::uint64_t>(body, offset);
      // Bounds before any allocation (the PR 4 discipline): the entry count
      // and every per-entry parameter count are checked against the bytes
      // actually present, so a forged header is a WireError, never a
      // bad_alloc.  kRaftEntryFixed is the smallest possible entry.
      const auto entry_count = read_pod<std::uint32_t>(body, offset);
      if (entry_count > (body.size() - offset) / kRaftEntryFixed) {
        throw WireError("truncated append-entries batch");
      }
      m.entries.resize(entry_count);
      for (RaftLogEntry& e : m.entries) {
        e.term = read_pod<std::uint64_t>(body, offset);
        e.index = read_pod<std::uint64_t>(body, offset);
        e.type = read_pod<std::uint16_t>(body, offset);
        e.round = read_pod<std::uint64_t>(body, offset);
        e.subject = read_pod<std::uint32_t>(body, offset);
        e.samples = read_pod<std::uint64_t>(body, offset);
        e.quantize_bits = read_pod<std::uint8_t>(body, offset);
        e.topk = read_pod<std::uint32_t>(body, offset);
        e.delta = read_pod<std::uint8_t>(body, offset);
        e.trace = read_pod<std::uint8_t>(body, offset);
        e.digest = read_pod<std::uint64_t>(body, offset);
        const auto count = read_pod<std::uint64_t>(body, offset);
        if (count > kMaxWireParams) {
          throw WireError("log entry parameter count exceeds limit");
        }
        if (count > (body.size() - offset) / sizeof(float)) {
          throw WireError("truncated log entry parameters");
        }
        e.params.resize(static_cast<std::size_t>(count));
        std::memcpy(e.params.data(), body.data() + offset,
                    static_cast<std::size_t>(count) * sizeof(float));
        offset += static_cast<std::size_t>(count) * sizeof(float);
      }
      if (offset != body.size()) throw WireError("trailing bytes after append entries");
      return m;
    }
    case MsgKind::kHeartbeat: {
      Heartbeat m;
      m.term = read_pod<std::uint64_t>(body, offset);
      m.node = read_pod<std::uint32_t>(body, offset);
      m.ack = read_pod<std::uint8_t>(body, offset);
      m.success = read_pod<std::uint8_t>(body, offset);
      m.commit_index = read_pod<std::uint64_t>(body, offset);
      m.match_index = read_pod<std::uint64_t>(body, offset);
      if (offset != body.size()) throw WireError("trailing bytes after heartbeat");
      return m;
    }
  }
  throw WireError("unknown message kind " +
                  std::to_string(static_cast<unsigned>(kind)));
}

constexpr std::size_t kModelUpdateFixed =
    sizeof(std::uint32_t) * 2 + sizeof(std::uint64_t);
constexpr std::size_t kPartialModelFixed = sizeof(std::uint32_t) * 2 +
                                           sizeof(std::uint8_t) + sizeof(float) +
                                           sizeof(double);
constexpr std::size_t kVoteFixed =
    sizeof(std::uint32_t) * 2 + sizeof(float) + sizeof(std::uint8_t);
constexpr std::size_t kMembershipFixed = sizeof(std::uint8_t) + sizeof(std::uint32_t) * 2 +
                                         sizeof(std::uint64_t) + sizeof(std::uint8_t) +
                                         sizeof(std::uint32_t) + sizeof(std::uint32_t) +
                                         sizeof(std::uint8_t) + sizeof(std::uint8_t) +
                                         2 * sizeof(std::int64_t);
constexpr std::size_t kStatusRequestFixed =
    sizeof(std::uint32_t) + sizeof(std::uint8_t) + sizeof(std::int64_t);
constexpr std::size_t kStatusPeerWire = sizeof(std::uint32_t) + sizeof(std::uint8_t) +
                                        sizeof(float) + sizeof(double) +
                                        2 * sizeof(std::uint64_t);
constexpr std::size_t kStatusReplyFixed = 2 * sizeof(std::uint32_t) +
                                          sizeof(std::uint64_t) + sizeof(std::uint8_t) +
                                          3 * sizeof(std::uint32_t) + 2 * sizeof(std::int64_t) +
                                          sizeof(std::uint64_t) + sizeof(std::uint32_t) +
                                          sizeof(std::uint64_t) + sizeof(std::uint8_t) +
                                          2 * sizeof(std::uint32_t);
constexpr std::size_t kVoteRequestFixed =
    sizeof(std::uint64_t) + sizeof(std::uint32_t) + 2 * sizeof(std::uint64_t);
constexpr std::size_t kVoteReplyFixed =
    sizeof(std::uint64_t) + sizeof(std::uint32_t) + sizeof(std::uint8_t);
constexpr std::size_t kAppendEntriesFixed = sizeof(std::uint64_t) +
                                            sizeof(std::uint32_t) +
                                            3 * sizeof(std::uint64_t) +
                                            sizeof(std::uint32_t);
constexpr std::size_t kHeartbeatFixed = sizeof(std::uint64_t) + sizeof(std::uint32_t) +
                                        2 * sizeof(std::uint8_t) +
                                        2 * sizeof(std::uint64_t);

bool carries_params(const Payload& payload) noexcept {
  return std::holds_alternative<ModelUpdate>(payload) ||
         std::holds_alternative<PartialModel>(payload);
}

const std::vector<float>* params_of(const Payload& payload) noexcept {
  if (const auto* update = std::get_if<ModelUpdate>(&payload)) return &update->params;
  if (const auto* partial = std::get_if<PartialModel>(&payload)) return &partial->params;
  return nullptr;
}

}  // namespace

const char* to_string(MsgKind kind) noexcept {
  switch (kind) {
    case MsgKind::kModelUpdate: return "model_update";
    case MsgKind::kPartialModel: return "partial_model";
    case MsgKind::kConsensusVote: return "consensus_vote";
    case MsgKind::kMembership: return "membership";
    case MsgKind::kStatusRequest: return "status_request";
    case MsgKind::kStatusReply: return "status_reply";
    case MsgKind::kVoteRequest: return "vote_request";
    case MsgKind::kVoteReply: return "vote_reply";
    case MsgKind::kAppendEntries: return "append_entries";
    case MsgKind::kHeartbeat: return "heartbeat";
  }
  return "unknown";
}

std::vector<float>& CodecState::slot(MsgKind kind) {
  switch (kind) {
    case MsgKind::kModelUpdate: return model_update;
    case MsgKind::kPartialModel: return partial_model;
    default: break;
  }
  throw std::logic_error("CodecState::slot: kind carries no parameters");
}

std::vector<std::uint8_t> EncodedParts::concat() const {
  std::vector<std::uint8_t> out;
  out.reserve(size());
  out.insert(out.end(), head.begin(), head.end());
  out.insert(out.end(), inline_payload.begin(), inline_payload.end());
  out.insert(out.end(), tail.begin(), tail.end());
  return out;
}

void EncodedParts::commit_tx(CodecState& state) {
  if (!has_recon) return;
  state.slot(recon_kind) = std::move(recon);
  has_recon = false;
  recon.clear();
}

void encode_frame_parts(const Envelope& env, const Payload& payload, const Codec& codec,
                        const CodecState* tx_state, EncodedParts& out,
                        const TraceContext* trace) {
  out.head.clear();
  out.tail.clear();
  out.inline_payload = {};
  out.scratch_values.clear();
  out.has_recon = false;
  out.recon.clear();

  const MsgKind kind = static_cast<MsgKind>(
      std::visit([](const auto& p) { return p.kMessageKind; }, payload));
  const Codec effective = carries_params(payload) ? codec : Codec{};
  const std::vector<float>* base = nullptr;
  if (effective.delta && tx_state != nullptr && carries_params(payload)) {
    // const_cast-free: slot() is non-const only because decoders write it.
    base = kind == MsgKind::kModelUpdate ? &tx_state->model_update
                                         : &tx_state->partial_model;
  }

  std::uint16_t flags = 0;
  append_pod(out.head, kWireMagic);
  append_pod(out.head, kWireVersion);
  append_pod(out.head, static_cast<std::uint16_t>(kind));
  append_pod(out.head, flags);                       // patched below
  append_pod(out.head, static_cast<std::uint16_t>(0));  // reserved
  append_pod(out.head, env.from);
  append_pod(out.head, env.to);
  append_pod(out.head, env.round);
  append_pod(out.head, static_cast<std::uint32_t>(0));  // body_len patched below

  std::visit([&](const auto& p) { encode_body(out, p, effective, base, flags); },
             payload);

  if (trace != nullptr && trace->valid()) {
    // The trace tail rides the END of the body (after any inline payload and
    // blob digest), so the zero-copy raw-dense layout is untouched and the
    // payload decoders can slice it off with one subtraction.
    flags |= kFlagTraced;
    append_pod(out.tail, trace->trace_id);
    append_pod(out.tail, trace->span_id);
    append_pod(out.tail, trace->parent_span_id);
    append_pod(out.tail, trace->wall_ns);
  }

  const auto body_len = static_cast<std::uint32_t>(
      out.head.size() - kHeaderSize + out.inline_payload.size() + out.tail.size());
  std::memcpy(out.head.data() + kHeaderSize - sizeof(std::uint32_t), &body_len,
              sizeof(body_len));
  std::memcpy(out.head.data() + 8, &flags, sizeof(flags));

  FrameDigest digest;
  digest.update(out.head.data(), out.head.size());
  digest.update(out.inline_payload.data(), out.inline_payload.size());
  digest.update(out.tail.data(), out.tail.size());
  append_pod(out.tail, digest.value());
}

std::vector<std::uint8_t> encode_frame(const Envelope& env, const Payload& payload,
                                       const Codec& codec) {
  EncodedParts parts;
  encode_frame_parts(env, payload, codec, nullptr, parts);
  return parts.concat();
}

std::vector<std::uint8_t> encode_frame(const Envelope& env, const Payload& payload,
                                       const Codec& codec, CodecState* tx_state) {
  EncodedParts parts;
  encode_frame_parts(env, payload, codec, tx_state, parts);
  auto frame = parts.concat();
  if (tx_state != nullptr) parts.commit_tx(*tx_state);
  return frame;
}

std::size_t peek_frame_size(std::span<const std::uint8_t> prefix) {
  if (prefix.size() < kHeaderSize) throw WireError("header underrun");
  std::size_t offset = 0;
  const auto magic = read_pod<std::uint32_t>(prefix, offset);
  if (magic != kWireMagic) {
    if (magic == __builtin_bswap32(kWireMagic)) {
      throw WireError("byte-swapped frame magic (big-endian sender unsupported)");
    }
    throw WireError("bad frame magic");
  }
  const auto version = read_pod<std::uint16_t>(prefix, offset);
  if (version != kWireVersion) {
    throw WireError("unsupported wire version " + std::to_string(version));
  }
  std::uint32_t body_len;
  std::memcpy(&body_len, prefix.data() + kHeaderSize - sizeof(body_len), sizeof(body_len));
  return frame_overhead() + body_len;
}

FrameView FrameView::parse(std::span<const std::uint8_t> frame) {
  const std::size_t total = peek_frame_size(frame);
  if (frame.size() < total) throw WireError("truncated frame");
  if (frame.size() > total) throw WireError("trailing bytes after frame");

  std::uint64_t digest;
  std::memcpy(&digest, frame.data() + total - kDigestSize, sizeof(digest));
  if (digest != frame_digest(frame.data(), total - kDigestSize)) {
    throw WireError("frame digest mismatch");
  }

  std::uint16_t reserved;
  std::memcpy(&reserved, frame.data() + 10, sizeof(reserved));
  if (reserved != 0) throw WireError("nonzero reserved header field");
  std::uint16_t flags;
  std::memcpy(&flags, frame.data() + 8, sizeof(flags));
  if ((flags & ~kKnownFlags) != 0) throw WireError("unknown frame flags");

  FrameView view;
  view.frame_ = frame.first(total);
  return view;
}

MsgKind FrameView::kind() const noexcept {
  std::uint16_t raw;
  std::memcpy(&raw, frame_.data() + 6, sizeof(raw));
  return static_cast<MsgKind>(raw);
}

std::uint16_t FrameView::flags() const noexcept {
  std::uint16_t raw;
  std::memcpy(&raw, frame_.data() + 8, sizeof(raw));
  return raw;
}

Envelope FrameView::env() const noexcept {
  Envelope env;
  std::memcpy(&env.from, frame_.data() + 12, sizeof(env.from));
  std::memcpy(&env.to, frame_.data() + 16, sizeof(env.to));
  std::memcpy(&env.round, frame_.data() + 20, sizeof(env.round));
  return env;
}

std::span<const std::uint8_t> FrameView::body() const noexcept {
  return frame_.subspan(kHeaderSize, frame_.size() - frame_overhead());
}

std::span<const std::uint8_t> FrameView::payload_body() const {
  const auto full = body();
  if (!traced()) return full;
  // Bounds before anything downstream allocates: a forged kFlagTraced bit on
  // a short body must be a WireError, never a misparse of payload bytes.
  if (full.size() < kTraceContextSize) throw WireError("truncated trace context");
  return full.first(full.size() - kTraceContextSize);
}

TraceContext FrameView::trace_context() const {
  TraceContext ctx;
  if (!traced()) return ctx;
  const auto full = body();
  if (full.size() < kTraceContextSize) throw WireError("truncated trace context");
  std::size_t offset = full.size() - kTraceContextSize;
  ctx.trace_id = read_pod<std::uint64_t>(full, offset);
  ctx.span_id = read_pod<std::uint64_t>(full, offset);
  ctx.parent_span_id = read_pod<std::uint64_t>(full, offset);
  ctx.wall_ns = read_pod<std::int64_t>(full, offset);
  return ctx;
}

WireMessage FrameView::decode(CodecState* rx_state) const {
  WireMessage msg;
  msg.kind = kind();
  const std::uint16_t f = flags();
  msg.quantized = (f & kFlagQuantized) != 0;
  msg.topk = (f & kFlagTopK) != 0;
  msg.delta = (f & kFlagDelta) != 0;
  msg.env = env();

  std::vector<float>* slot = nullptr;
  if (rx_state != nullptr &&
      (msg.kind == MsgKind::kModelUpdate || msg.kind == MsgKind::kPartialModel)) {
    slot = &rx_state->slot(msg.kind);
  }
  msg.payload = decode_body(msg.kind, payload_body(), f, slot);
  if (slot != nullptr) {
    if (const auto* params = params_of(msg.payload)) *slot = *params;
  }
  return msg;
}

WireMessage decode_frame(std::span<const std::uint8_t> frame) {
  return FrameView::parse(frame).decode(nullptr);
}

WireMessage decode_frame(std::span<const std::uint8_t> frame, CodecState* rx_state) {
  return FrameView::parse(frame).decode(rx_state);
}

ModelUpdateHead peek_model_update(const FrameView& view) {
  if (view.kind() != MsgKind::kModelUpdate) {
    throw WireError("not a model update frame");
  }
  const auto body = view.payload_body();
  std::size_t offset = 0;
  ModelUpdateHead head;
  head.sender = read_pod<std::uint32_t>(body, offset);
  head.level = read_pod<std::uint32_t>(body, offset);
  head.samples = read_pod<std::uint64_t>(body, offset);
  std::uint64_t count = 0;
  if (view.topk()) {
    offset += sizeof(std::uint32_t);  // k
    count = read_pod<std::uint64_t>(body, offset);
    if (count > kMaxWireParams) throw WireError("sparse dense size exceeds limit");
  } else if (view.quantized()) {
    offset += sizeof(std::uint8_t) + sizeof(std::uint32_t);  // bits, block
    count = read_pod<std::uint64_t>(body, offset);
  } else {
    std::uint32_t magic = read_pod<std::uint32_t>(body, offset);
    if (magic != nn::kBlobMagic) throw WireError("bad parameter blob magic");
    if (read_pod<std::uint32_t>(body, offset) != nn::kBlobVersion) {
      throw WireError("unsupported parameter blob version");
    }
    count = read_pod<std::uint64_t>(body, offset);
    // Bound before any caller sizes a buffer from it (mirrors decode).
    if (body.size() - offset < sizeof(std::uint64_t) ||
        count > (body.size() - offset - sizeof(std::uint64_t)) / sizeof(float)) {
      throw WireError("truncated parameter blob");
    }
  }
  if (count > kMaxWireParams) throw WireError("parameter count exceeds limit");
  head.param_count = static_cast<std::size_t>(count);
  return head;
}

std::span<const float> model_update_params(const FrameView& view, CodecState* rx_state,
                                           std::vector<float>& scratch) {
  const auto body = view.payload_body();
  std::size_t offset = kModelUpdateFixed;
  if (!view.quantized() && !view.topk() && !view.delta()) {
    // Raw dense: validate the blob in place and hand out a span into the
    // frame — no allocation, no copy, and no second hash pass (the frame
    // digest verified in FrameView::parse already covered every blob byte,
    // same contract as the materializing path).
    if (view.kind() != MsgKind::kModelUpdate) {
      throw WireError("not a model update frame");
    }
    std::size_t pos = offset;
    const auto magic = read_pod<std::uint32_t>(body, pos);
    if (magic != nn::kBlobMagic) throw WireError("bad parameter blob magic");
    if (read_pod<std::uint32_t>(body, pos) != nn::kBlobVersion) {
      throw WireError("unsupported parameter blob version");
    }
    const auto count = read_pod<std::uint64_t>(body, pos);
    if (body.size() < pos + sizeof(std::uint64_t) ||
        count > (body.size() - pos - sizeof(std::uint64_t)) / sizeof(float)) {
      throw WireError("truncated parameter blob");
    }
    const std::size_t float_bytes = static_cast<std::size_t>(count) * sizeof(float);
    if (pos + float_bytes + sizeof(std::uint64_t) != body.size()) {
      throw WireError("trailing bytes after model update");
    }
    const std::uint8_t* raw = body.data() + pos;
    std::span<const float> out;
    if (reinterpret_cast<std::uintptr_t>(raw) % alignof(float) == 0) {
      out = {reinterpret_cast<const float*>(raw), static_cast<std::size_t>(count)};
    } else {
      scratch.resize(static_cast<std::size_t>(count));
      std::memcpy(scratch.data(), raw, float_bytes);
      out = scratch;
    }
    if (rx_state != nullptr) rx_state->model_update.assign(out.begin(), out.end());
    return out;
  }
  if (view.kind() != MsgKind::kModelUpdate) {
    throw WireError("not a model update frame");
  }
  const std::vector<float>* base = rx_state != nullptr ? &rx_state->model_update : nullptr;
  scratch = read_params(body, offset, view.flags(), base);
  if (offset != body.size()) throw WireError("trailing bytes after model update");
  if (rx_state != nullptr) rx_state->model_update = scratch;
  return scratch;
}

std::size_t encoded_size(const Payload& payload, const Codec& codec) {
  const Codec effective = carries_params(payload) ? codec : Codec{};
  std::size_t body = 0;
  std::visit(
      [&](const auto& p) {
        using T = std::decay_t<decltype(p)>;
        if constexpr (std::is_same_v<T, ModelUpdate>) {
          body = kModelUpdateFixed + params_body_size(p.params.size(), effective);
        } else if constexpr (std::is_same_v<T, PartialModel>) {
          body = kPartialModelFixed + params_body_size(p.params.size(), effective);
        } else if constexpr (std::is_same_v<T, ConsensusVote>) {
          body = kVoteFixed;
        } else if constexpr (std::is_same_v<T, StatusRequest>) {
          body = kStatusRequestFixed;
        } else if constexpr (std::is_same_v<T, StatusReply>) {
          body = kStatusReplyFixed + p.peers.size() * kStatusPeerWire +
                 p.metrics.size();
        } else if constexpr (std::is_same_v<T, VoteRequest>) {
          body = kVoteRequestFixed;
        } else if constexpr (std::is_same_v<T, VoteReply>) {
          body = kVoteReplyFixed;
        } else if constexpr (std::is_same_v<T, AppendEntries>) {
          body = kAppendEntriesFixed;
          for (const RaftLogEntry& e : p.entries) {
            body += kRaftEntryFixed + e.params.size() * sizeof(float);
          }
        } else if constexpr (std::is_same_v<T, Heartbeat>) {
          body = kHeartbeatFixed;
        } else {
          body = kMembershipFixed;
        }
      },
      payload);
  return frame_overhead() + body;
}

std::size_t model_update_wire_size(std::size_t param_count) noexcept {
  return frame_overhead() + kModelUpdateFixed + nn::wire_size(param_count);
}

std::size_t partial_model_wire_size(std::size_t param_count) noexcept {
  return frame_overhead() + kPartialModelFixed + nn::wire_size(param_count);
}

std::size_t vote_wire_size() noexcept { return frame_overhead() + kVoteFixed; }

std::size_t membership_wire_size() noexcept {
  return frame_overhead() + kMembershipFixed;
}

std::size_t status_request_wire_size() noexcept {
  return frame_overhead() + kStatusRequestFixed;
}

std::size_t status_reply_wire_size(std::size_t peer_count,
                                   std::size_t metrics_bytes) noexcept {
  return frame_overhead() + kStatusReplyFixed + peer_count * kStatusPeerWire +
         metrics_bytes;
}

std::size_t estimated_model_bytes(std::size_t param_count) noexcept {
  return nn::wire_size(param_count);
}

std::size_t estimated_payload_bytes(const Payload& payload) noexcept {
  if (const auto* update = std::get_if<ModelUpdate>(&payload)) {
    return estimated_model_bytes(update->params.size());
  }
  if (const auto* partial = std::get_if<PartialModel>(&payload)) {
    return estimated_model_bytes(partial->params.size());
  }
  return 0;
}

}  // namespace abdhfl::net
