#include "net/wire.hpp"

#include <bit>
#include <cstring>

#include "nn/quantize.hpp"
#include "nn/serialize.hpp"

namespace abdhfl::net {

namespace {

static_assert(std::endian::native == std::endian::little,
              "wire codec assumes a little-endian host");

std::uint64_t fnv1a(const std::uint8_t* data, std::size_t n) noexcept {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 0x100000001B3ULL;
  }
  return h;
}

template <class T>
void append_pod(std::vector<std::uint8_t>& out, T value) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&value);
  out.insert(out.end(), p, p + sizeof(T));
}

template <class T>
T read_pod(std::span<const std::uint8_t> bytes, std::size_t& offset) {
  if (offset + sizeof(T) > bytes.size()) throw WireError("truncated frame body");
  T value;
  std::memcpy(&value, bytes.data() + offset, sizeof(T));
  offset += sizeof(T);
  return value;
}

// --- parameter blobs -------------------------------------------------------
// Raw params reuse the nn/serialize blob unchanged.  Quantized params carry
// the nn/quantize block format: bits, block, count, per-block (scale, min)
// pairs, packed codes — exactly QuantizedVec::wire_size() bytes.

void append_params(std::vector<std::uint8_t>& out, std::span<const float> params,
                   const Codec& codec) {
  if (!codec.quantized()) {
    const auto blob = nn::serialize_params(params);
    out.insert(out.end(), blob.begin(), blob.end());
    return;
  }
  const auto q = nn::quantize(params, codec.quantize_bits, codec.block);
  append_pod(out, q.bits);
  append_pod(out, q.block);
  append_pod(out, q.count);
  for (std::size_t b = 0; b < q.scales.size(); ++b) {
    append_pod(out, q.scales[b]);
    append_pod(out, q.mins[b]);
  }
  out.insert(out.end(), q.data.begin(), q.data.end());
}

std::vector<float> read_params(std::span<const std::uint8_t> body, std::size_t& offset,
                               bool quantized) {
  if (!quantized) {
    // The nn/serialize blob is self-delimiting: magic/version/count header.
    constexpr std::size_t kBlobHeader = 2 * sizeof(std::uint32_t) + sizeof(std::uint64_t);
    if (offset + kBlobHeader + sizeof(std::uint64_t) > body.size()) {
      throw WireError("truncated parameter blob header");
    }
    std::uint64_t count;
    std::memcpy(&count, body.data() + offset + 2 * sizeof(std::uint32_t), sizeof(count));
    // The count comes straight off the wire (and the frame digest is not a
    // MAC): bound it by the bytes actually present before it sizes anything
    // — nn::wire_size(count) itself overflows for count near 2^64.
    const std::size_t capacity =
        body.size() - offset - kBlobHeader - sizeof(std::uint64_t);
    if (count > capacity / sizeof(float)) throw WireError("truncated parameter blob");
    const std::size_t blob_size = nn::wire_size(static_cast<std::size_t>(count));
    if (offset + blob_size > body.size()) throw WireError("truncated parameter blob");
    try {
      auto params = nn::deserialize_params(body.subspan(offset, blob_size));
      offset += blob_size;
      return params;
    } catch (const std::runtime_error& e) {
      throw WireError(std::string("parameter blob: ") + e.what());
    }
  }
  nn::QuantizedVec q;
  q.bits = read_pod<std::uint8_t>(body, offset);
  q.block = read_pod<std::uint32_t>(body, offset);
  q.count = read_pod<std::uint64_t>(body, offset);
  if (q.bits == 0 || q.bits > 8 || q.block == 0) {
    throw WireError("corrupt quantized parameter header");
  }
  // Bound the wire-supplied count against the bytes actually present BEFORE
  // any allocation: the packed codes alone need ceil(count*bits/8) bytes and
  // each block carries a (scale, min) pair.  Without this, a forged count
  // drives resize() into std::length_error/bad_alloc, which are not
  // WireError and would escape the transports' decode-error handling.
  const std::size_t remaining = body.size() - offset;
  if (q.count > static_cast<std::uint64_t>(remaining) * 8 / q.bits) {
    throw WireError("truncated quantized payload");
  }
  const std::size_t n_blocks =
      (static_cast<std::size_t>(q.count) + q.block - 1) / q.block;
  if (n_blocks * 2 * sizeof(float) +
          (static_cast<std::size_t>(q.count) * q.bits + 7) / 8 >
      remaining) {
    throw WireError("truncated quantized payload");
  }
  q.scales.resize(n_blocks);
  q.mins.resize(n_blocks);
  for (std::size_t b = 0; b < n_blocks; ++b) {
    q.scales[b] = read_pod<float>(body, offset);
    q.mins[b] = read_pod<float>(body, offset);
  }
  const std::size_t data_bytes =
      (static_cast<std::size_t>(q.count) * q.bits + 7) / 8;
  if (offset + data_bytes > body.size()) throw WireError("truncated quantized payload");
  q.data.assign(body.begin() + static_cast<std::ptrdiff_t>(offset),
                body.begin() + static_cast<std::ptrdiff_t>(offset + data_bytes));
  offset += data_bytes;
  try {
    return nn::dequantize(q);
  } catch (const std::invalid_argument& e) {
    throw WireError(std::string("quantized payload: ") + e.what());
  }
}

std::size_t params_body_size(std::size_t count, const Codec& codec) noexcept {
  if (!codec.quantized()) return nn::wire_size(count);
  const std::size_t n_blocks = codec.block == 0 ? 0 : (count + codec.block - 1) / codec.block;
  return sizeof(std::uint8_t) + sizeof(std::uint32_t) + sizeof(std::uint64_t) +
         n_blocks * 2 * sizeof(float) + (count * codec.quantize_bits + 7) / 8;
}

// --- per-kind bodies -------------------------------------------------------

void encode_body(std::vector<std::uint8_t>& out, const ModelUpdate& m, const Codec& codec) {
  append_pod(out, m.sender);
  append_pod(out, m.level);
  append_pod(out, m.samples);
  append_params(out, m.params, codec);
}

void encode_body(std::vector<std::uint8_t>& out, const PartialModel& m, const Codec& codec) {
  append_pod(out, m.origin);
  append_pod(out, m.flag_level);
  append_pod(out, static_cast<std::uint8_t>(m.is_global ? 1 : 0));
  append_pod(out, m.alpha);
  append_pod(out, m.flag_fraction);
  append_params(out, m.params, codec);
}

void encode_body(std::vector<std::uint8_t>& out, const ConsensusVote& m, const Codec&) {
  append_pod(out, m.voter);
  append_pod(out, m.candidate);
  append_pod(out, m.score);
  append_pod(out, static_cast<std::uint8_t>(m.accept ? 1 : 0));
}

void encode_body(std::vector<std::uint8_t>& out, const Membership& m, const Codec&) {
  append_pod(out, static_cast<std::uint8_t>(m.event));
  append_pod(out, m.device);
  append_pod(out, m.cluster);
  append_pod(out, m.subtree_samples);
  append_pod(out, m.codec.quantize_bits);
  append_pod(out, m.codec.block);
}

Payload decode_body(MsgKind kind, std::span<const std::uint8_t> body, bool quantized) {
  std::size_t offset = 0;
  switch (kind) {
    case MsgKind::kModelUpdate: {
      ModelUpdate m;
      m.sender = read_pod<std::uint32_t>(body, offset);
      m.level = read_pod<std::uint32_t>(body, offset);
      m.samples = read_pod<std::uint64_t>(body, offset);
      m.params = read_params(body, offset, quantized);
      if (offset != body.size()) throw WireError("trailing bytes after model update");
      return m;
    }
    case MsgKind::kPartialModel: {
      PartialModel m;
      m.origin = read_pod<std::uint32_t>(body, offset);
      m.flag_level = read_pod<std::uint32_t>(body, offset);
      m.is_global = read_pod<std::uint8_t>(body, offset) != 0;
      m.alpha = read_pod<float>(body, offset);
      m.flag_fraction = read_pod<double>(body, offset);
      m.params = read_params(body, offset, quantized);
      if (offset != body.size()) throw WireError("trailing bytes after partial model");
      return m;
    }
    case MsgKind::kConsensusVote: {
      ConsensusVote m;
      m.voter = read_pod<std::uint32_t>(body, offset);
      m.candidate = read_pod<std::uint32_t>(body, offset);
      m.score = read_pod<float>(body, offset);
      m.accept = read_pod<std::uint8_t>(body, offset) != 0;
      if (offset != body.size()) throw WireError("trailing bytes after vote");
      return m;
    }
    case MsgKind::kMembership: {
      Membership m;
      const auto event = read_pod<std::uint8_t>(body, offset);
      if (event > static_cast<std::uint8_t>(Membership::Event::kShutdown)) {
        throw WireError("unknown membership event");
      }
      m.event = static_cast<Membership::Event>(event);
      m.device = read_pod<std::uint32_t>(body, offset);
      m.cluster = read_pod<std::uint32_t>(body, offset);
      m.subtree_samples = read_pod<std::uint64_t>(body, offset);
      m.codec.quantize_bits = read_pod<std::uint8_t>(body, offset);
      m.codec.block = read_pod<std::uint32_t>(body, offset);
      if (offset != body.size()) throw WireError("trailing bytes after membership");
      return m;
    }
  }
  throw WireError("unknown message kind " +
                  std::to_string(static_cast<unsigned>(kind)));
}

constexpr std::size_t kModelUpdateFixed =
    sizeof(std::uint32_t) * 2 + sizeof(std::uint64_t);
constexpr std::size_t kPartialModelFixed = sizeof(std::uint32_t) * 2 +
                                           sizeof(std::uint8_t) + sizeof(float) +
                                           sizeof(double);
constexpr std::size_t kVoteFixed =
    sizeof(std::uint32_t) * 2 + sizeof(float) + sizeof(std::uint8_t);
constexpr std::size_t kMembershipFixed = sizeof(std::uint8_t) + sizeof(std::uint32_t) * 2 +
                                         sizeof(std::uint64_t) + sizeof(std::uint8_t) +
                                         sizeof(std::uint32_t);

bool carries_params(const Payload& payload) noexcept {
  return std::holds_alternative<ModelUpdate>(payload) ||
         std::holds_alternative<PartialModel>(payload);
}

}  // namespace

const char* to_string(MsgKind kind) noexcept {
  switch (kind) {
    case MsgKind::kModelUpdate: return "model_update";
    case MsgKind::kPartialModel: return "partial_model";
    case MsgKind::kConsensusVote: return "consensus_vote";
    case MsgKind::kMembership: return "membership";
  }
  return "unknown";
}

std::vector<std::uint8_t> encode_frame(const Envelope& env, const Payload& payload,
                                       const Codec& codec) {
  const MsgKind kind = static_cast<MsgKind>(
      std::visit([](const auto& p) { return p.kMessageKind; }, payload));
  const bool quantized = codec.quantized() && carries_params(payload);

  std::vector<std::uint8_t> out;
  out.reserve(encoded_size(payload, codec));
  append_pod(out, kWireMagic);
  append_pod(out, kWireVersion);
  append_pod(out, static_cast<std::uint16_t>(kind));
  append_pod(out, static_cast<std::uint16_t>(quantized ? kFlagQuantized : 0));
  append_pod(out, static_cast<std::uint16_t>(0));  // reserved
  append_pod(out, env.from);
  append_pod(out, env.to);
  append_pod(out, env.round);
  append_pod(out, static_cast<std::uint32_t>(0));  // body_len patched below

  const std::size_t body_start = out.size();
  std::visit([&](const auto& p) { encode_body(out, p, codec); }, payload);
  const auto body_len = static_cast<std::uint32_t>(out.size() - body_start);
  std::memcpy(out.data() + kHeaderSize - sizeof(std::uint32_t), &body_len,
              sizeof(body_len));

  append_pod(out, fnv1a(out.data(), out.size()));
  return out;
}

std::size_t peek_frame_size(std::span<const std::uint8_t> prefix) {
  if (prefix.size() < kHeaderSize) throw WireError("header underrun");
  std::size_t offset = 0;
  const auto magic = read_pod<std::uint32_t>(prefix, offset);
  if (magic != kWireMagic) {
    if (magic == __builtin_bswap32(kWireMagic)) {
      throw WireError("byte-swapped frame magic (big-endian sender unsupported)");
    }
    throw WireError("bad frame magic");
  }
  const auto version = read_pod<std::uint16_t>(prefix, offset);
  if (version != kWireVersion) {
    throw WireError("unsupported wire version " + std::to_string(version));
  }
  std::uint32_t body_len;
  std::memcpy(&body_len, prefix.data() + kHeaderSize - sizeof(body_len), sizeof(body_len));
  return frame_overhead() + body_len;
}

WireMessage decode_frame(std::span<const std::uint8_t> frame) {
  const std::size_t total = peek_frame_size(frame);
  if (frame.size() < total) throw WireError("truncated frame");
  if (frame.size() > total) throw WireError("trailing bytes after frame");

  std::uint64_t digest;
  std::memcpy(&digest, frame.data() + total - kDigestSize, sizeof(digest));
  if (digest != fnv1a(frame.data(), total - kDigestSize)) {
    throw WireError("frame digest mismatch");
  }

  std::size_t offset = sizeof(std::uint32_t) + sizeof(std::uint16_t);  // magic+version
  const auto kind_raw = read_pod<std::uint16_t>(frame, offset);
  const auto flags = read_pod<std::uint16_t>(frame, offset);
  const auto reserved = read_pod<std::uint16_t>(frame, offset);
  if (reserved != 0) throw WireError("nonzero reserved header field");
  if (flags & ~kFlagQuantized) throw WireError("unknown frame flags");

  WireMessage msg;
  msg.kind = static_cast<MsgKind>(kind_raw);
  msg.quantized = (flags & kFlagQuantized) != 0;
  msg.env.from = read_pod<std::uint32_t>(frame, offset);
  msg.env.to = read_pod<std::uint32_t>(frame, offset);
  msg.env.round = read_pod<std::uint64_t>(frame, offset);
  offset += sizeof(std::uint32_t);  // body_len, already validated via total

  msg.payload = decode_body(
      msg.kind, frame.subspan(kHeaderSize, total - frame_overhead()), msg.quantized);
  return msg;
}

std::size_t encoded_size(const Payload& payload, const Codec& codec) {
  const Codec effective = carries_params(payload) ? codec : Codec{};
  std::size_t body = 0;
  std::visit(
      [&](const auto& p) {
        using T = std::decay_t<decltype(p)>;
        if constexpr (std::is_same_v<T, ModelUpdate>) {
          body = kModelUpdateFixed + params_body_size(p.params.size(), effective);
        } else if constexpr (std::is_same_v<T, PartialModel>) {
          body = kPartialModelFixed + params_body_size(p.params.size(), effective);
        } else if constexpr (std::is_same_v<T, ConsensusVote>) {
          body = kVoteFixed;
        } else {
          body = kMembershipFixed;
        }
      },
      payload);
  return frame_overhead() + body;
}

std::size_t model_update_wire_size(std::size_t param_count) noexcept {
  return frame_overhead() + kModelUpdateFixed + nn::wire_size(param_count);
}

std::size_t partial_model_wire_size(std::size_t param_count) noexcept {
  return frame_overhead() + kPartialModelFixed + nn::wire_size(param_count);
}

std::size_t vote_wire_size() noexcept { return frame_overhead() + kVoteFixed; }

std::size_t membership_wire_size() noexcept {
  return frame_overhead() + kMembershipFixed;
}

std::size_t estimated_model_bytes(std::size_t param_count) noexcept {
  return nn::wire_size(param_count);
}

std::size_t estimated_payload_bytes(const Payload& payload) noexcept {
  if (const auto* update = std::get_if<ModelUpdate>(&payload)) {
    return estimated_model_bytes(update->params.size());
  }
  if (const auto* partial = std::get_if<PartialModel>(&payload)) {
    return estimated_model_bytes(partial->params.size());
  }
  return 0;
}

}  // namespace abdhfl::net
