#include "net/loopback.hpp"

#include <memory>
#include <stdexcept>
#include <variant>

#include "obs/blackbox.hpp"
#include "obs/trace.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace abdhfl::net {

LoopbackTransport::LoopbackTransport() : Transport("loopback") {}

LoopbackTransport::LoopbackTransport(sim::Simulator& simulator, sim::Network& network)
    : Transport("loopback"), simulator_(&simulator), network_(&network) {}

void LoopbackTransport::register_node(NodeId id, MessageHandler handler) {
  if (!handler) throw std::invalid_argument("LoopbackTransport: null handler");
  handlers_[id] = std::move(handler);
  if (network_ != nullptr) {
    // Bridge: the sim delivers the encoded frame; decoding happens here so
    // the receive path exercises the codec exactly like a socket read.
    network_->register_node(id, [this](const sim::Message& msg) {
      const auto& frame = sim::payload_cast<EncodedFrame>(msg);
      deliver(frame.bytes, frame.link_class);
    });
  }
}

SendStatus LoopbackTransport::send(const Envelope& env, const Payload& payload,
                                   std::uint32_t link_class) {
  if (handlers_.find(env.to) == handlers_.end()) return SendStatus::kNoRoute;
  obs::Span span(trace(), "net_send", static_cast<std::size_t>(env.round), env.to);

  const Codec codec = codec_for(env.to);
  CodecState* tx = codec.delta ? &tx_codec_state(env.from, env.to) : nullptr;
  TraceContext trace_ctx;
  if (tracing_to(env.to)) {
    trace_ctx = {span.trace_id(), span.id(), span.parent_id(), obs::wall_clock_ns()};
  }
  encode_frame_parts(env, payload, codec, tx, tx_parts_,
                     trace_ctx.valid() ? &trace_ctx : nullptr);
  auto frame = tx_parts_.concat();
  // Queueing is delivery here (FIFO, no losses), so the tx base commits now.
  if (tx != nullptr) tx_parts_.commit_tx(*tx);
  note_sent(frame.size(), encoded_size(payload), link_class, env.to);
  obs::blackbox::record(
      obs::blackbox::EventType::kFrameTx,
      static_cast<std::uint16_t>(std::visit(
          [](const auto& p) { return std::decay_t<decltype(p)>::kMessageKind; },
          payload)),
      env.from, env.round, env.to, frame.size());

  if (network_ != nullptr) {
    sim::Message msg;
    msg.from = env.from;
    msg.to = env.to;
    msg.kind = EncodedFrame::kMessageKind;
    msg.round = env.round;
    msg.bytes = frame.size();
    msg.bytes_estimated = estimated_payload_bytes(payload);
    msg.payload =
        std::make_shared<const EncodedFrame>(EncodedFrame{std::move(frame), link_class});
    network_->send(std::move(msg), link_class);
    return SendStatus::kOk;
  }

  queue_.emplace_back(std::move(frame), link_class);
  return SendStatus::kOk;
}

std::uint64_t LoopbackTransport::backlog_bytes(std::uint32_t link_class) const {
  std::uint64_t total = 0;
  for (const auto& [frame, cls] : queue_) {
    if (cls == link_class) total += frame.size();
  }
  return total;
}

std::size_t LoopbackTransport::poll(double timeout_s) {
  (void)timeout_s;  // nothing to wait for in-process
  obs::blackbox::note_poll_tick();
  if (network_ != nullptr) {
    // Delivery is driven by the simulator's event loop.
    simulator_->run();
    return 0;
  }
  std::size_t delivered = 0;
  // Handlers may send while we drain, so swap batches until quiescent.
  while (!queue_.empty()) {
    auto [frame, link_class] = std::move(queue_.front());
    queue_.pop_front();
    deliver(frame, link_class);
    ++delivered;
  }
  return delivered;
}

void LoopbackTransport::deliver(const std::vector<std::uint8_t>& frame,
                                std::uint32_t link_class) {
  FrameView view;
  try {
    view = FrameView::parse(frame);
  } catch (const WireError&) {
    note_decode_error();
    return;
  }
  const auto it = handlers_.find(view.env().to);
  try {
    deliver_frame(view, link_class,
                  it != handlers_.end() ? it->second : MessageHandler{});
  } catch (const WireError&) {
    // Loopback has no connection to drop; the frame is simply rejected.
    note_decode_error();
  }
}

}  // namespace abdhfl::net
