#include "net/loopback.hpp"

#include <memory>
#include <stdexcept>

#include "obs/trace.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace abdhfl::net {

LoopbackTransport::LoopbackTransport() : Transport("loopback") {}

LoopbackTransport::LoopbackTransport(sim::Simulator& simulator, sim::Network& network)
    : Transport("loopback"), simulator_(&simulator), network_(&network) {}

void LoopbackTransport::register_node(NodeId id, MessageHandler handler) {
  if (!handler) throw std::invalid_argument("LoopbackTransport: null handler");
  handlers_[id] = std::move(handler);
  if (network_ != nullptr) {
    // Bridge: the sim delivers the encoded frame; decoding happens here so
    // the receive path exercises the codec exactly like a socket read.
    network_->register_node(id, [this](const sim::Message& msg) {
      const auto& frame = sim::payload_cast<EncodedFrame>(msg);
      deliver(frame.bytes, frame.link_class);
    });
  }
}

SendStatus LoopbackTransport::send(const Envelope& env, const Payload& payload,
                                   std::uint32_t link_class) {
  if (handlers_.find(env.to) == handlers_.end()) return SendStatus::kNoRoute;
  obs::Span span(trace(), "net_send", static_cast<std::size_t>(env.round), env.to);

  auto frame = encode_frame(env, payload, codec_for(env.to));
  note_sent(frame.size(), link_class);

  if (network_ != nullptr) {
    sim::Message msg;
    msg.from = env.from;
    msg.to = env.to;
    msg.kind = EncodedFrame::kMessageKind;
    msg.round = env.round;
    msg.bytes = frame.size();
    msg.bytes_estimated = estimated_payload_bytes(payload);
    msg.payload =
        std::make_shared<const EncodedFrame>(EncodedFrame{std::move(frame), link_class});
    network_->send(std::move(msg), link_class);
    return SendStatus::kOk;
  }

  queue_.emplace_back(std::move(frame), link_class);
  return SendStatus::kOk;
}

std::size_t LoopbackTransport::poll(double timeout_s) {
  (void)timeout_s;  // nothing to wait for in-process
  if (network_ != nullptr) {
    // Delivery is driven by the simulator's event loop.
    simulator_->run();
    return 0;
  }
  std::size_t delivered = 0;
  // Handlers may send while we drain, so swap batches until quiescent.
  while (!queue_.empty()) {
    auto [frame, link_class] = std::move(queue_.front());
    queue_.pop_front();
    deliver(frame, link_class);
    ++delivered;
  }
  return delivered;
}

void LoopbackTransport::deliver(const std::vector<std::uint8_t>& frame,
                                std::uint32_t link_class) {
  WireMessage msg;
  try {
    msg = decode_frame(frame);
  } catch (const WireError&) {
    note_decode_error();
    return;
  }
  note_received(frame.size(), link_class);
  if (trace() != nullptr) {
    trace()->push({trace()->seconds_since_epoch(), static_cast<std::size_t>(msg.env.round),
                   "net_recv", msg.env.to, 0, 0.0, 0});
  }
  const auto it = handlers_.find(msg.env.to);
  if (it != handlers_.end()) it->second(msg);
}

}  // namespace abdhfl::net
