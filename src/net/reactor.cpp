#include "net/reactor.hpp"

#include <unistd.h>

#include <cerrno>
#include <system_error>

namespace abdhfl::net {

namespace {
constexpr std::size_t kMinEventBatch = 64;
}

Reactor::Reactor() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    throw std::system_error(errno, std::generic_category(), "epoll_create1");
  }
  events_.resize(kMinEventBatch);
}

Reactor::~Reactor() {
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void Reactor::add(int fd) {
  if (fd < 0) return;
  epoll_event ev{};
  ev.events = EPOLLIN;  // level-triggered; HUP/ERR are always reported
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) == 0) {
    ++watched_;
    return;
  }
  if (errno == EEXIST) return;  // idempotent re-add
  throw std::system_error(errno, std::generic_category(), "epoll_ctl(ADD)");
}

void Reactor::remove(int fd) {
  if (fd < 0) return;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr) == 0) {
    if (watched_ > 0) --watched_;
  }
  // ENOENT/EBADF: the fd was never added or is already closed (closing an
  // fd drops it from the interest set); either way there is nothing to do.
}

std::size_t Reactor::wait(int timeout_ms, std::vector<int>& ready) {
  ready.clear();
  // Size the batch to the interest set so one wait() never silently splits
  // a fully-ready fleet across ticks (level triggering would still deliver
  // the remainder next tick, but a right-sized buffer keeps a broadcast
  // round to one syscall).
  if (events_.size() < watched_) events_.resize(watched_);
  const int n = ::epoll_wait(epoll_fd_, events_.data(),
                             static_cast<int>(events_.size()), timeout_ms);
  if (n <= 0) return 0;  // timeout, or EINTR treated as one
  ready.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) ready.push_back(events_[i].data.fd);
  return ready.size();
}

}  // namespace abdhfl::net
