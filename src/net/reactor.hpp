#pragma once
// Level-triggered epoll readiness reactor (DESIGN.md §14).
//
// The original TcpTransport::poll rebuilt a pollfd vector over the listen
// socket, every peer link, and every half-identified inbound connection on
// each tick — O(peers) of scan and copy per call, which is fine at 3 links
// and ruinous at the hundreds an AggregatorNode holds.  The Reactor keeps
// the interest set inside the kernel instead: descriptors are registered
// once at the point their lifetime starts (listen/dial/accept) and removed
// at the point it ends (drop/close), and wait() returns only the ready
// subset, so a tick's cost scales with traffic rather than fan-out.
//
// Level-triggered on purpose: the transport's handlers may legitimately
// leave bytes unread (a reentrant ring reset, a deferred frame), and under
// level triggering an unconsumed readable descriptor simply reports again
// on the next wait() — no starvation bookkeeping, identical semantics to
// the ::poll loop it replaces.  Events carry the raw fd; the owner maps fd
// back to its own state and is expected to tolerate stale entries (an fd
// closed by a reentrant handler between wait() and dispatch), exactly as
// the old loop tolerated a peer entry whose fd was replaced mid-poll.

#include <sys/epoll.h>

#include <cstddef>
#include <vector>

namespace abdhfl::net {

class Reactor {
 public:
  Reactor();
  ~Reactor();

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  /// Register `fd` for level-triggered readability.  Registering an fd that
  /// is already present is a no-op (the interest set is idempotent so owners
  /// can route every lifecycle path through here without double-add checks).
  void add(int fd);

  /// Forget `fd`.  Safe on descriptors that were never added or are already
  /// closed — removal failures are ignored, since a closed fd has left the
  /// kernel's interest set on its own.
  void remove(int fd);

  /// Block up to `timeout_ms` (0 = return immediately, <0 = wait forever)
  /// and fill `ready` with the readable/errored descriptors.  Returns the
  /// number of ready descriptors; 0 on timeout.  EINTR reads as a timeout
  /// so callers keep their own deadline loops.
  std::size_t wait(int timeout_ms, std::vector<int>& ready);

  [[nodiscard]] std::size_t watched() const noexcept { return watched_; }

 private:
  int epoll_fd_ = -1;
  std::size_t watched_ = 0;
  std::vector<epoll_event> events_;  // reused readiness buffer
};

}  // namespace abdhfl::net
