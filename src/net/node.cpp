#include "net/node.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <utility>

#include "ckpt/state.hpp"
#include "ckpt/store.hpp"
#include "data/partition.hpp"
#include "data/synth_digits.hpp"
#include "obs/blackbox.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/record.hpp"
#include "obs/trace.hpp"
#include "topology/churn.hpp"
#include "topology/plan.hpp"
#include "util/rng.hpp"

namespace abdhfl::net {

namespace bb = obs::blackbox;

using hier::deadline_ns;
using hier::EchoEstimate;
using hier::estimate_from_echo;
using hier::wall_now;

namespace {

/// The collector options a RootNode derives from its config: with a tree
/// spec the expected children are the branching[0] level-1 aggregators,
/// otherwise the classic W workers.
hier::Collector::Options root_collector_opts(const FederationConfig& config) {
  hier::Collector::Options opts;
  opts.self = kRootId;
  opts.expected_children = config.workers;
  if (!config.tree.empty()) {
    topology::HierSpec spec;
    if (!topology::parse_tree_spec(config.tree, spec)) {
      throw std::invalid_argument("invalid tree spec: " + config.tree);
    }
    opts.expected_children = spec.branching.front();
  }
  opts.first_child = 1;
  opts.link_class = kLeaderLinkClass;
  opts.codec = codec_from_config(config);
  opts.trace = config.trace;
  opts.rejoin_grace_s = config.rejoin_grace_s;
  return opts;
}

hier::Uplink::Options worker_uplink_opts(const FederationConfig& config, NodeId id,
                                         std::size_t index) {
  hier::Uplink::Options opts;
  opts.self = id;
  // Top-cluster mode: the deterministic first leader is committee rank 0;
  // the first join echo re-targets the uplink if another member won.
  opts.parent = config.top_cluster > 0 ? top_node_id(0) : kRootId;
  opts.cluster = static_cast<std::uint32_t>(index);
  opts.link_class = kLeaderLinkClass;
  opts.level = 1;
  opts.codec = codec_from_config(config);
  opts.trace = config.trace;
  return opts;
}

}  // namespace

bool apply_compress_spec(const std::string& spec, FederationConfig& config) {
  FederationConfig parsed = config;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = std::min(spec.find(',', pos), spec.size());
    const std::string token = spec.substr(pos, comma - pos);
    if (token == "delta") {
      parsed.delta = true;
    } else if (token.rfind("topk:", 0) == 0) {
      const std::string num = token.substr(5);
      if (num.empty() || num.size() > 9 ||
          num.find_first_not_of("0123456789") != std::string::npos) {
        return false;
      }
      const unsigned long k = std::stoul(num);
      if (k == 0) return false;
      parsed.topk = static_cast<std::uint32_t>(k);
    } else if (!token.empty()) {
      return false;
    }
    if (comma >= spec.size()) break;
    pos = comma + 1;
  }
  config = parsed;
  return true;
}

Codec codec_from_config(const FederationConfig& config) noexcept {
  Codec codec;
  codec.quantize_bits = config.quantize_bits;
  codec.topk = config.topk;
  codec.delta = config.delta;
  return codec;
}

FederationData build_federation_data(const FederationConfig& config) {
  if (!config.tree.empty()) {
    // Tree mode: the data layout is the flat 2-level layout with one
    // "worker" per leaf-head process and one device per virtual leaf, so an
    // N-level run and the reference loop shard identically.
    topology::HierSpec spec;
    if (!topology::parse_tree_spec(config.tree, spec)) {
      throw std::invalid_argument("invalid tree spec: " + config.tree);
    }
    FederationConfig flat = config;
    flat.tree.clear();
    flat.workers = spec.leaf_heads();
    flat.devices_per_worker = spec.devices_per_leaf();
    return build_federation_data(flat);
  }
  if (config.workers == 0 || config.devices_per_worker == 0) {
    throw std::invalid_argument("federation needs at least one worker and device");
  }
  FederationData out;
  util::Rng rng(config.seed);

  data::SynthConfig synth;
  synth.side = config.image_side;
  synth.samples_per_class = config.samples_per_class;
  const data::Dataset train_pool = data::generate_synth_digits(synth, rng);
  synth.samples_per_class = config.test_samples_per_class;
  out.test_set = data::generate_synth_digits(synth, rng);
  out.input_dim = train_pool.dim();

  out.shards = data::partition_iid(train_pool, config.workers * config.devices_per_worker,
                                   rng);

  auto model_rng = rng.split();
  out.prototype = nn::make_mlp(out.input_dim, config.hidden, 10, model_rng);
  out.init_params = out.prototype.flatten();
  return out;
}

core::LocalTrainer make_device_trainer(const FederationConfig& config,
                                       const FederationData& data, std::size_t device) {
  if (device >= data.shards.size()) {
    throw std::out_of_range("make_device_trainer: device index out of range");
  }
  // Seed derivation is a pure function of (federation seed, device index):
  // any process can rebuild any device's SGD stream.
  util::Rng rng(config.seed ^
                (0x9E3779B97F4A7C15ULL * static_cast<std::uint64_t>(device + 1)));
  return core::LocalTrainer(data.shards[device], data.prototype.clone(), rng);
}

void merge_models_into(std::span<const float> global, std::span<const float> local,
                       double alpha, std::vector<float>& out) {
  if (global.size() != local.size()) {
    throw std::invalid_argument("merge_models: dimension mismatch");
  }
  const float a = static_cast<float>(alpha);
  out.resize(global.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = a * global[i] + (1.0f - a) * local[i];
  }
}

std::vector<float> merge_models(std::span<const float> global,
                                std::span<const float> local, double alpha) {
  std::vector<float> merged;
  merge_models_into(global, local, alpha, merged);
  return merged;
}

std::vector<float> cluster_round(const FederationConfig& config,
                                 std::vector<core::LocalTrainer>& trainers,
                                 agg::Aggregator& rule, std::span<const float> start) {
  std::vector<agg::ModelVec> updates;
  updates.reserve(trainers.size());
  for (auto& trainer : trainers) {
    updates.push_back(trainer.train_round(start, config.local_iters, config.batch,
                                          config.learning_rate, std::nullopt));
  }
  rule.set_reference(start);
  return rule.aggregate(updates);
}

// ---------------------------------------------------------------------------
// WorkerNode

WorkerNode::WorkerNode(FederationConfig config, std::size_t worker_index,
                       Transport& transport, obs::Recorder* recorder,
                       ckpt::Store* checkpoint, std::size_t checkpoint_every,
                       bool resume)
    : config_(std::move(config)),
      index_(worker_index),
      id_(worker_node_id(worker_index)),
      transport_(transport),
      recorder_(recorder),
      checkpoint_(checkpoint),
      checkpoint_every_(checkpoint_every),
      uplink_(transport, worker_uplink_opts(config_, id_, index_)) {
  const FederationData data = build_federation_data(config_);
  trainers_.reserve(config_.devices_per_worker);
  for (std::size_t k = 0; k < config_.devices_per_worker; ++k) {
    const std::size_t device = index_ * config_.devices_per_worker + k;
    trainers_.push_back(make_device_trainer(config_, data, device));
    subtree_samples_ += trainers_.back().shard_size();
  }
  rule_ = agg::make_aggregator(config_.cluster_rule);
  current_ = data.init_params;
  if (checkpoint_ != nullptr && resume) restore_checkpoint();

  transport_.register_node(id_, [this](WireMessage& msg) { on_message(msg); });
  transport_.add_peer_loss_handler([this](NodeId peer) {
    if (done_) return;
    // Top-cluster mode: a dead top — even the current leader — is
    // survivable; the worker idles until the elected successor's join echo
    // re-targets it.  Only the classic single root is fatal to lose.
    if (top_mode()) return;
    if (peer == kRootId) finish(/*failed=*/true);
  });
  if (config_.trace) transport_.set_tracing(true);
}

void WorkerNode::start() {
  bb::set_phase(0, round_);  // joining
  bb::record(bb::EventType::kPhase, 0, id_, round_);
  if (top_mode()) {
    // Join EVERY committee member: whichever one is (or becomes) the leader
    // already holds this worker's advertisement and can propose the
    // membership entry without another handshake.
    bool any = false;
    for (std::size_t t = 0; t < config_.top_cluster; ++t) {
      if (uplink_.send_join_to(top_node_id(t), subtree_samples_) == SendStatus::kOk) {
        any = true;
      }
    }
    if (!any) finish(/*failed=*/true);
    return;
  }
  if (uplink_.send_join(subtree_samples_) != SendStatus::kOk) {
    finish(/*failed=*/true);
  }
}

void WorkerNode::leave() {
  if (done_) return;
  uplink_.send_leave(round_);
  finish(/*failed=*/false);
}

void WorkerNode::on_idle() {}

void WorkerNode::on_message(WireMessage& msg) {
  // Introspection works in every state — a probe must never be able to
  // perturb training, and a late reply is still a valid RTT sample.
  if (msg.kind == MsgKind::kStatusRequest) {
    reply_status(std::get<StatusRequest>(msg.payload), msg.env.from);
    return;
  }
  if (msg.kind == MsgKind::kStatusReply) {
    uplink_.on_status_reply(msg);
    return;
  }
  if (done_) return;
  if (msg.kind == MsgKind::kMembership) {
    const auto& member = std::get<Membership>(msg.payload);
    if (member.event == Membership::Event::kJoin) {
      switch (uplink_.on_join_echo(msg, round_)) {
        case hier::Uplink::EchoAction::kStart:
          // Join echo: the root confirmed us and fixed the link codec.  The
          // envelope round is the round the root is collecting — 0 for a
          // fresh federation, later when this process restarted from a
          // checkpoint mid-run (the reconnect resync path) or the root
          // itself resumed.  Adopting it keeps the restored model and the
          // live quorum aligned.
          round_ = static_cast<std::size_t>(msg.env.round);
          if (round_ >= config_.rounds) {
            // Admitted after the final round closed: there is nothing left
            // to train toward — say goodbye instead of waiting forever.
            uplink_.send_leave(round_);
            finish(/*failed=*/false);
            break;
          }
          bb::set_phase(1, round_);  // training
          bb::record(bb::EventType::kPhase, 1, id_, round_);
          bb::set_peer(uplink_.parent(), 0, round_);
          train_and_send();
          break;
        case hier::Uplink::EchoAction::kResync:
          // Resync echo after the root re-admitted us mid-run: adopt the
          // round the root is collecting and rejoin its quorum from our
          // current model.
          round_ = static_cast<std::size_t>(msg.env.round);
          train_and_send();
          break;
        case hier::Uplink::EchoAction::kResend:
          // A newly elected leader echoing the round we already trained:
          // the update we sent died with its predecessor, so resend it —
          // bitwise the same bytes, never retrained.
          resend_update();
          break;
        case hier::Uplink::EchoAction::kNone:
          // Our own round echoed back: the update we retried over the
          // reconnect already covers it — nothing to redo.
          break;
      }
    } else if (member.event == Membership::Event::kShutdown) {
      finish(/*failed=*/false);
    }
    return;
  }
  if (msg.kind == MsgKind::kPartialModel) {
    const auto& partial = std::get<PartialModel>(msg.payload);
    // Top-cluster mode: partials only ever come from the current leader, so
    // the sender IS the coordinator every subsequent send should target —
    // this catches a leader change even before the new leader's join echo.
    if (top_mode() && is_top(msg.env.from)) uplink_.retarget(msg.env.from);
    if (msg.env.round != round_) return;  // stale frame from a dropped round
    {
      // Nests under the delivering net_recv span — the cross-process edge
      // back to the root's broadcast.
      obs::Span merge_span(transport_.trace_sink(), "merge", round_, id_);
      merge_models_into(partial.params, last_cluster_, partial.alpha, current_);
    }
    ++round_;
    bb::record(bb::EventType::kRound, 0, id_, round_ - 1);
    bb::note_progress(round_);
    bb::set_peer(uplink_.parent(), 0, round_);
    if (recorder_ != nullptr) {
      obs::RoundRecord& rec = recorder_->begin_round("dist_worker", round_ - 1);
      rec.set("worker", static_cast<double>(index_));
      rec.set("alpha", partial.alpha);
      rec.set("is_global", partial.is_global ? 1.0 : 0.0);
    }
    if (checkpoint_ != nullptr &&
        (round_ % std::max<std::size_t>(checkpoint_every_, 1) == 0 ||
         round_ >= config_.rounds)) {
      save_checkpoint();
    }
    if (round_ >= config_.rounds) {
      uplink_.send_leave(round_);
      finish(/*failed=*/false);
    } else {
      uplink_.send_status_ping(round_);  // refresh RTT/offset on live traffic
      train_and_send();
    }
  }
}

void WorkerNode::reply_status(const StatusRequest& request, NodeId to) {
  // An observer's link teardown is expected — never churn, never a loss.
  if (is_observer(to)) transport_.mark_transient(to);
  StatusReply reply;
  reply.node = id_;
  reply.probe = request.probe;
  reply.round = round_;
  reply.phase = done_ ? 3 : (uplink_.started() ? 1 : 0);
  reply.level = 1;
  reply.parent = uplink_.parent();
  reply.wall_ns = obs::wall_clock_ns();
  reply.echo_wall_ns = request.wall_ns;
  StatusPeer up;
  up.node = uplink_.parent();
  up.state = 0;
  const LinkTelemetry link = transport_.peer_telemetry(uplink_.parent());
  up.rtt_ms = static_cast<float>(link.rtt_ms);
  up.bytes_sent = link.bytes_sent;
  up.bytes_received = link.bytes_received;
  reply.peers.push_back(up);
  if (request.detail != 0 && obs::enabled()) {
    reply.metrics = obs::to_prometheus(obs::global_registry().scrape());
  }
  transport_.send({id_, to, round_}, reply, kLeaderLinkClass);
}

void WorkerNode::train_and_send() {
  obs::TraceBuffer* trace = transport_.trace_sink();
  const std::uint64_t trace_id = obs::make_trace_id(config_.seed, round_);
  if (trace != nullptr) trace->set_trace_id(trace_id);
  // Round-root span: explicitly parentless (has_parent with parent 0), since
  // this runs inside the *previous* round's net_recv span — stack parenting
  // would chain round r+1 under round r's trace.
  obs::Span round_span(trace, "worker_round", obs::SpanContext{trace_id, 0, true},
                       round_, id_);
  {
    obs::Span train_span(trace, "train", round_, id_);
    last_cluster_ = cluster_round(config_, trainers_, *rule_, current_);
  }
  const SendStatus status = uplink_.send_update(last_cluster_, subtree_samples_, round_);
  // Top-cluster mode: a failed send means the leader just died; the model is
  // safe in last_cluster_ and the elected successor's echo triggers a
  // resend.  Classic mode has nobody else to deliver to.
  if (status != SendStatus::kOk && !top_mode()) finish(/*failed=*/true);
}

void WorkerNode::resend_update() {
  if (last_cluster_.empty()) {
    // Nothing trained yet for this round (a restored process whose snapshot
    // predates any training): training IS the correct first step.
    train_and_send();
    return;
  }
  // Delivery failure here is survivable for the same reason as above: the
  // next leader's echo will ask again.
  (void)uplink_.send_update(last_cluster_, subtree_samples_, round_);
}

void WorkerNode::finish(bool failed) {
  done_ = true;
  failed_ = failed;
  bb::record(bb::EventType::kPhase, 3, id_, round_, failed ? 1 : 0);
  bb::set_phase(3, round_);  // done: the watchdog stands down
}

void WorkerNode::save_checkpoint() {
  // save_now, not save: a worker is exactly the process a SIGKILL targets,
  // so the snapshot must be on disk before this round's state is observable
  // anywhere else.  round_ already counts the merge this snapshot captures.
  ckpt::Container c;
  c.producer = "worker";
  c.round = round_ - 1;
  {
    ckpt::PayloadWriter w;
    w.f32vec(current_);
    c.chunks.push_back({ckpt::kTagParams, w.take()});
  }
  {
    ckpt::PayloadWriter w;
    w.u64(static_cast<std::uint64_t>(index_));
    w.f32vec(last_cluster_);
    c.chunks.push_back({ckpt::kTagExtra, w.take()});
  }
  {
    std::vector<ckpt::RngState> states;
    states.reserve(trainers_.size());
    for (const auto& t : trainers_) states.push_back(t.rng_state());
    c.chunks.push_back({ckpt::kTagRngStates, ckpt::encode_rng_states(states)});
  }
  {
    ckpt::PayloadWriter w;
    std::vector<double> losses;
    losses.reserve(trainers_.size());
    for (const auto& t : trainers_) losses.push_back(t.last_loss());
    w.f64vec(losses);
    c.chunks.push_back({ckpt::kTagLosses, w.take()});
  }
  checkpoint_->save_now(c.round, ckpt::encode_container(c));
}

void WorkerNode::restore_checkpoint() {
  auto snap = checkpoint_->load_latest();
  if (!snap.has_value()) return;  // nothing yet: fresh start
  if (snap->producer != "worker") {
    throw ckpt::CkptError("checkpoint produced by \"" + snap->producer +
                          "\", expected \"worker\"");
  }
  {
    ckpt::PayloadReader r(snap->require(ckpt::kTagParams).payload);
    auto params = r.f32vec();
    r.expect_done();
    if (params.size() != current_.size()) {
      throw ckpt::CkptError("PARM chunk dimension mismatch: resume with the "
                            "same federation configuration");
    }
    current_ = std::move(params);
  }
  {
    ckpt::PayloadReader r(snap->require(ckpt::kTagExtra).payload);
    const auto saved_index = static_cast<std::size_t>(r.u64());
    if (saved_index != index_) {
      throw ckpt::CkptError("snapshot belongs to worker " +
                            std::to_string(saved_index));
    }
    last_cluster_ = r.f32vec();
    r.expect_done();
  }
  const auto states = ckpt::decode_rng_states(snap->require(ckpt::kTagRngStates).payload);
  if (states.size() != trainers_.size()) {
    throw ckpt::CkptError("RNGS chunk stream count mismatch");
  }
  for (std::size_t k = 0; k < trainers_.size(); ++k) {
    trainers_[k].set_rng_state(states[k]);
  }
  {
    ckpt::PayloadReader r(snap->require(ckpt::kTagLosses).payload);
    const auto losses = r.f64vec();
    r.expect_done();
    if (losses.size() != trainers_.size()) {
      throw ckpt::CkptError("LOSS chunk trainer count mismatch");
    }
    for (std::size_t k = 0; k < trainers_.size(); ++k) {
      trainers_[k].set_last_loss(losses[k]);
    }
  }
  round_ = static_cast<std::size_t>(snap->round) + 1;
  resume_round_ = round_;
  if (recorder_ != nullptr) {
    obs::RoundRecord& rec = recorder_->begin_round("dist_resume", round_);
    rec.set("worker", static_cast<double>(index_));
  }
}

// ---------------------------------------------------------------------------
// RootNode

RootNode::RootNode(FederationConfig config, Transport& transport,
                   obs::Recorder* recorder, ckpt::Store* checkpoint,
                   std::size_t checkpoint_every, bool resume)
    : config_(std::move(config)),
      transport_(transport),
      recorder_(recorder),
      checkpoint_(checkpoint),
      checkpoint_every_(checkpoint_every),
      data_(build_federation_data(config_)),
      rule_(agg::make_aggregator(config_.root_rule)),
      tree_(topology::build_ecsm(2, config_.devices_per_worker,
                                 std::max<std::size_t>(config_.workers, 1))),
      collector_(transport, root_collector_opts(config_)),
      global_(data_.init_params) {
  if (checkpoint_ != nullptr && resume) restore_checkpoint();
  transport_.register_node(kRootId, [this](WireMessage& msg) { on_message(msg); });
  transport_.set_raw_handler(kRootId,
                             [this](const FrameView& view) { return on_raw_frame(view); });
  transport_.add_peer_loss_handler([this](NodeId peer) { on_peer_loss(peer); });
  transport_.add_peer_reconnect_handler(
      [this](NodeId peer) { on_peer_reconnect(peer); });
  if (config_.trace) transport_.set_tracing(true);
}

void RootNode::start() {
  phase_deadline_ = wall_now() + config_.join_timeout_s;
  bb::set_phase(0, round_, deadline_ns(phase_deadline_));  // joining
  bb::record(bb::EventType::kPhase, 0, kRootId, round_);
}

void RootNode::on_idle() {
  if (phase_ == Phase::kDone) return;
  // A grace window expiring releases the collector's aggregation hold; the
  // quorum may already be complete (or gone entirely).
  if (phase_ == Phase::kTraining && collector_.expire_grace(wall_now())) {
    if (collector_.live().empty() && !collector_.grace_pending()) {
      if (!result_.round_accuracy.empty()) result_.global_model = global_;
      finish_now();
      return;
    }
    maybe_aggregate();
    if (phase_ == Phase::kDone) return;
  }
  if (wall_now() < phase_deadline_) return;
  if (phase_ == Phase::kJoining) {
    // Proceed with whoever showed up; nobody at all means nothing to run.
    if (collector_.live().empty()) {
      finish_now();
    } else {
      begin_training();
    }
    return;
  }
  if (phase_ == Phase::kTraining) {
    // Round deadline: workers that never delivered are treated as lost.
    const std::set<NodeId> live = collector_.live();
    for (const NodeId worker : live) {
      if (!collector_.has_update(worker)) on_peer_loss(worker);
    }
    return;
  }
  if (phase_ == Phase::kFinishing) {
    finish_now();  // stragglers' loss
  }
}

void RootNode::on_message(WireMessage& msg) {
  // Introspection first, before the phase guard: abdhfl_top must get an
  // answer out of a root in any state, and a probe must never advance the
  // protocol state machine.
  if (msg.kind == MsgKind::kStatusRequest) {
    reply_status(std::get<StatusRequest>(msg.payload), msg.env.from);
    return;
  }
  if (msg.kind == MsgKind::kStatusReply) {
    const auto& reply = std::get<StatusReply>(msg.payload);
    const EchoEstimate est = estimate_from_echo(reply.echo_wall_ns, reply.wall_ns);
    transport_.note_rtt(msg.env.from, kLeaderLinkClass, est.rtt_ms, est.offset_ns);
    return;
  }
  if (phase_ == Phase::kDone) return;
  switch (msg.kind) {
    case MsgKind::kMembership: {
      const auto& member = std::get<Membership>(msg.payload);
      if (member.event == Membership::Event::kJoin && phase_ == Phase::kJoining) {
        if (collector_.on_join(msg.env.from, member, round_)) begin_training();
      } else if (member.event == Membership::Event::kLeave) {
        collector_.on_leave(msg.env.from, round_);
        maybe_finish();
      }
      return;
    }
    case MsgKind::kModelUpdate: {
      if (phase_ != Phase::kTraining) return;
      auto& update = std::get<ModelUpdate>(msg.payload);
      if (collector_.accept_update(msg.env, update, round_)) maybe_aggregate();
      return;
    }
    default:
      return;  // votes are not part of this runner's protocol
  }
}

void RootNode::begin_training() {
  result_.workers_joined = collector_.live().size();
  phase_ = Phase::kTraining;
  arm_stream();
  phase_deadline_ = wall_now() + config_.round_timeout_s;
  bb::record(bb::EventType::kPhase, 1, kRootId, round_, collector_.live().size());
  bb::set_phase(1, round_, deadline_ns(phase_deadline_));
  if (transport_.trace_sink() != nullptr) {
    transport_.trace_sink()->set_trace_id(obs::make_trace_id(config_.seed, round_));
  }
  // Echo every join: this is the workers' starting gun.  The envelope round
  // is round_ (0 for a fresh run, the restored counter after a root resume)
  // and the workers adopt it, so the whole federation restarts on one clock.
  collector_.echo_joins(round_);
}

void RootNode::arm_stream() {
  collector_.arm(rule_->make_stream(data_.init_params.size()));
}

bool RootNode::on_raw_frame(const FrameView& view) {
  if (phase_ != Phase::kTraining) return false;
  if (!collector_.accept_raw(view, round_, data_.init_params.size())) return false;
  maybe_aggregate();
  return true;
}

void RootNode::maybe_aggregate() {
  if (phase_ != Phase::kTraining || collector_.live().empty()) return;
  // An evicted member inside its grace window holds the round open: its
  // process may come back and land this round's update, which is what keeps
  // a mid-run restart bitwise identical to an uninterrupted run.
  if (collector_.grace_holds(wall_now())) return;
  if (!collector_.quorum_complete()) return;
  // Opened once the quorum is confirmed; covers aggregate + evaluate +
  // broadcast.  Usually nested under the last update's net_recv span, whose
  // trace context carries this same round's trace id from the sender.
  std::optional<obs::Span> agg_span;
  agg_span.emplace(transport_.trace_sink(), "global_agg", round_, kRootId);
  std::size_t n_inputs = 0;
  global_ = collector_.finish(*rule_, global_, n_inputs);

  const double accuracy =
      core::evaluate_params(data_.prototype, global_, data_.test_set);
  result_.round_accuracy.push_back(accuracy);
  result_.final_accuracy = accuracy;
  result_.rounds_run = round_ + 1;
  if (recorder_ != nullptr) {
    obs::RoundRecord& rec = recorder_->begin_round("dist_root", round_);
    rec.set("accuracy", accuracy);
    rec.set("live_workers", static_cast<double>(collector_.live().size()));
    rec.set("inputs", static_cast<double>(n_inputs));
  }

  // Broadcast the global model without staging a copy per send: the Payload
  // borrows global_ for the duration of the loop and hands it back after.
  Payload payload(std::in_place_type<PartialModel>);
  auto& partial = std::get<PartialModel>(payload);
  partial.origin = kRootId;
  partial.flag_level = 0;
  partial.is_global = true;
  partial.alpha = static_cast<float>(config_.alpha);
  partial.flag_fraction = 1.0;  // the global model covers all of D_G
  partial.params = std::move(global_);
  for (const NodeId worker : collector_.live()) {
    transport_.send({kRootId, worker, round_}, payload, kLeaderLinkClass);
  }
  global_ = std::move(partial.params);
  agg_span.reset();  // the round's root-side work ends with the broadcast
  ping_workers();

  ++round_;
  bb::record(bb::EventType::kRound, 0, kRootId, round_ - 1, n_inputs);
  bb::note_progress(round_);
  if (transport_.trace_sink() != nullptr) {
    transport_.trace_sink()->set_trace_id(obs::make_trace_id(config_.seed, round_));
  }
  phase_deadline_ = wall_now() + config_.round_timeout_s;
  bb::set_phase(1, round_, deadline_ns(phase_deadline_));
  if (checkpoint_ != nullptr &&
      (round_ % std::max<std::size_t>(checkpoint_every_, 1) == 0 ||
       round_ >= config_.rounds)) {
    save_checkpoint();
  }
  if (round_ >= config_.rounds) {
    result_.global_model = global_;
    phase_ = Phase::kFinishing;
    bb::record(bb::EventType::kPhase, 2, kRootId, round_);
    bb::set_phase(2, round_, deadline_ns(phase_deadline_));
    maybe_finish();
  } else {
    arm_stream();
  }
}

void RootNode::maybe_finish() {
  if (phase_ != Phase::kFinishing) return;
  for (const NodeId worker : collector_.live()) {
    if (collector_.left().find(worker) == collector_.left().end()) return;
  }
  finish_now();
}

void RootNode::finish_now() {
  phase_ = Phase::kDone;
  bb::record(bb::EventType::kPhase, 3, kRootId, round_);
  bb::set_phase(3, round_);
}

void RootNode::on_peer_loss(NodeId peer) {
  if (phase_ == Phase::kDone) return;
  if (!collector_.evict(peer, round_, wall_now())) return;
  ++result_.workers_lost;
  apply_churn(peer);
  if (recorder_ != nullptr) {
    obs::RoundRecord& rec = recorder_->begin_round("dist_churn", round_);
    rec.set("worker", static_cast<double>(peer));
    rec.set("live_workers", static_cast<double>(collector_.live().size()));
  }
  if (phase_ == Phase::kTraining) {
    if (collector_.live().empty() && !collector_.grace_pending()) {
      // Nothing can aggregate any more: publish whatever the last completed
      // round produced (nothing, for a fresh run that never aggregated).
      if (!result_.round_accuracy.empty()) result_.global_model = global_;
      finish_now();
    } else {
      // The loss may have closed a reorder gap as well as completed the
      // quorum.
      if (collector_.streaming()) collector_.drain_into_stream();
      maybe_aggregate();
    }
  } else if (phase_ == Phase::kFinishing) {
    maybe_finish();
  }
}

void RootNode::on_peer_reconnect(NodeId peer) {
  // A transient link drop the worker's own send-retry machinery repaired:
  // re-admit the member the loss path evicted.  Only mid-training, and only
  // for a worker that joined this run and has not said goodbye.
  if (phase_ != Phase::kTraining) return;
  if (!collector_.readmit(peer, round_)) return;
  ++result_.workers_rejoined;
  apply_rejoin(peer);
  if (recorder_ != nullptr) {
    obs::RoundRecord& rec = recorder_->begin_round("dist_rejoin", round_);
    rec.set("worker", static_cast<double>(peer));
    rec.set("live_workers", static_cast<double>(collector_.live().size()));
  }
  // Resync echo: the envelope round is the round the root is collecting, so
  // the worker knows which quorum its next update must land in.  This is
  // sent BEFORE the reconnect's buffered frames are delivered — if they
  // carry the worker's retried update for this round, it is accepted below
  // and the worker (seeing its own round echoed) does not retrain.
  collector_.echo_join(peer, round_);
}

void RootNode::ping_workers() {
  StatusRequest ping;
  ping.probe = static_cast<std::uint32_t>(round_);
  for (const NodeId worker : collector_.live()) {
    ping.wall_ns = obs::wall_clock_ns();  // per-send stamp: each link's own t0
    transport_.send({kRootId, worker, round_}, ping, kLeaderLinkClass);
  }
}

void RootNode::reply_status(const StatusRequest& request, NodeId to) {
  // An observer's link teardown is expected — never churn, never a loss.
  if (is_observer(to)) transport_.mark_transient(to);
  StatusReply reply;
  reply.node = kRootId;
  reply.probe = request.probe;
  reply.round = round_;
  reply.phase = static_cast<std::uint8_t>(phase_);
  reply.live_workers = static_cast<std::uint32_t>(collector_.live().size());
  reply.level = 0;
  reply.parent = kStatusNoParent;
  reply.wall_ns = obs::wall_clock_ns();
  reply.echo_wall_ns = request.wall_ns;
  collector_.append_status_peers(reply);
  if (request.detail != 0 && obs::enabled()) {
    reply.metrics = obs::to_prometheus(obs::global_registry().scrape());
  }
  transport_.send({kRootId, to, round_}, reply, kLeaderLinkClass);
}

void RootNode::apply_churn(NodeId worker) {
  // Tree mode: the children are interior aggregators, not bottom clusters —
  // the 2-level mirror does not apply.
  if (!config_.tree.empty()) return;
  // Mirror the loss on the topology: the crashed worker is the leader of
  // bottom cluster (worker-1); with_device_left elects its successor and
  // re-derives the upper level, the paper's Assumption 3 leave path.
  const std::size_t cluster_index = static_cast<std::size_t>(worker - 1);
  if (cluster_index >= tree_.level(1).size()) return;
  const topology::DeviceId leader = tree_.cluster(1, cluster_index).leader_id();
  try {
    auto left = topology::with_device_left(tree_, leader);
    tree_ = std::move(left.tree);
  } catch (const std::exception&) {
    // Assumption 3 forbids emptying a cluster / the top level; the mirror
    // simply keeps the old shape then — the live set already shrank.
  }
}

void RootNode::save_checkpoint() {
  // Taken right after an aggregation: global_ is the round's model, round_
  // already points at the next round to collect.  save_now for the same
  // reason as the worker: the process this guards against dies without
  // warning.
  ckpt::Container c;
  c.producer = "root";
  c.round = round_ - 1;
  {
    ckpt::PayloadWriter w;
    w.f32vec(global_);
    c.chunks.push_back({ckpt::kTagParams, w.take()});
  }
  c.chunks.push_back({ckpt::kTagTopology, ckpt::encode_topology(tree_)});
  {
    ckpt::PayloadWriter w;
    w.f64vec(result_.round_accuracy);
    w.u64(result_.rounds_run);
    w.u64(result_.workers_joined);
    w.u64(result_.workers_lost);
    w.u64(result_.workers_rejoined);
    c.chunks.push_back({ckpt::kTagResult, w.take()});
  }
  {
    ckpt::PayloadWriter w;
    const auto& joined = collector_.joined();
    w.u64(joined.size());
    for (const auto& [worker, samples] : joined) {
      w.u64(worker);
      w.u64(samples);
    }
    c.chunks.push_back({ckpt::kTagExtra, w.take()});
  }
  checkpoint_->save_now(c.round, ckpt::encode_container(c));
}

void RootNode::restore_checkpoint() {
  auto snap = checkpoint_->load_latest();
  if (!snap.has_value()) return;  // nothing yet: fresh start
  if (snap->producer != "root") {
    throw ckpt::CkptError("checkpoint produced by \"" + snap->producer +
                          "\", expected \"root\"");
  }
  {
    ckpt::PayloadReader r(snap->require(ckpt::kTagParams).payload);
    auto params = r.f32vec();
    r.expect_done();
    if (params.size() != global_.size()) {
      throw ckpt::CkptError("PARM chunk dimension mismatch: resume with the "
                            "same federation configuration");
    }
    global_ = std::move(params);
  }
  tree_ = ckpt::decode_topology(snap->require(ckpt::kTagTopology).payload);
  {
    ckpt::PayloadReader r(snap->require(ckpt::kTagResult).payload);
    result_.round_accuracy = r.f64vec();
    result_.rounds_run = static_cast<std::size_t>(r.u64());
    result_.workers_joined = static_cast<std::size_t>(r.u64());
    result_.workers_lost = static_cast<std::size_t>(r.u64());
    result_.workers_rejoined = static_cast<std::size_t>(r.u64());
    r.expect_done();
  }
  {
    ckpt::PayloadReader r(snap->require(ckpt::kTagExtra).payload);
    const auto count = r.u64();
    std::map<NodeId, std::uint64_t> samples;
    for (std::uint64_t i = 0; i < count; ++i) {
      const auto worker = static_cast<NodeId>(r.u64());
      samples[worker] = r.u64();
    }
    r.expect_done();
    collector_.restore_joined(std::move(samples));
  }
  if (!result_.round_accuracy.empty()) {
    result_.final_accuracy = result_.round_accuracy.back();
  }
  result_.global_model = global_;
  round_ = static_cast<std::size_t>(snap->round) + 1;
  resume_round_ = round_;
  if (recorder_ != nullptr) {
    obs::RoundRecord& rec = recorder_->begin_round("dist_resume", round_);
    rec.set("worker", -1.0);
  }
}

void RootNode::apply_rejoin(NodeId worker) {
  if (!config_.tree.empty()) return;  // see apply_churn
  // Inverse of apply_churn: the returning leader re-enters its old bottom
  // cluster via the paper's Assumption 3 join path.
  const std::size_t cluster_index = static_cast<std::size_t>(worker - 1);
  if (cluster_index >= tree_.level(1).size()) return;
  try {
    auto joined = topology::with_device_joined(tree_, cluster_index);
    tree_ = std::move(joined.tree);
  } catch (const std::exception&) {
    // Mirror-only bookkeeping; a shape the topology rejects keeps the old
    // tree — the live set already grew.
  }
}

// ---------------------------------------------------------------------------

bool pump_until(Transport& transport, const std::function<bool()>& done,
                double deadline_s, double poll_s) {
  const double deadline = wall_now() + deadline_s;
  while (!done()) {
    if (wall_now() >= deadline) return false;
    transport.poll(poll_s);
  }
  return true;
}

}  // namespace abdhfl::net
