#include "net/tcp.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <system_error>
#include <thread>
#include <utility>
#include <variant>

#include "obs/blackbox.hpp"
#include "obs/trace.hpp"

namespace abdhfl::net {

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::size_t kRecvChunk = 64 * 1024;

void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

void make_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw_errno("fcntl(O_NONBLOCK)");
  }
}

void tune_stream(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  make_nonblocking(fd);
}

bool resolve(const std::string& host, std::uint16_t port, sockaddr_in& out) {
  std::memset(&out, 0, sizeof out);
  out.sin_family = AF_INET;
  out.sin_port = htons(port);
  const char* addr = host == "localhost" || host.empty() ? "127.0.0.1" : host.c_str();
  return ::inet_pton(AF_INET, addr, &out.sin_addr) == 1;
}

void sleep_seconds(double s) {
  std::this_thread::sleep_for(std::chrono::duration<double>(s));
}

}  // namespace

TcpTransport::TcpTransport(NodeId self, RetryPolicy policy)
    : Transport("tcp"), self_(self), policy_(policy) {}

TcpTransport::~TcpTransport() { close(); }

std::uint16_t TcpTransport::listen(std::uint16_t port) {
  if (listen_fd_ >= 0) throw std::logic_error("TcpTransport: already listening");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw_errno("socket");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    throw_errno("bind");
  }
  if (::listen(listen_fd_, 32) < 0) throw_errno("listen");
  socklen_t len = sizeof addr;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    throw_errno("getsockname");
  }
  port_ = ntohs(addr.sin_port);
  make_nonblocking(listen_fd_);
  reactor_.add(listen_fd_);
  return port_;
}

void TcpTransport::track_peer_fd(NodeId id, int fd) {
  reactor_.add(fd);
  fd_peer_[fd] = id;
}

void TcpTransport::untrack_fd(int fd) {
  if (fd < 0) return;
  reactor_.remove(fd);
  fd_peer_.erase(fd);
}

bool TcpTransport::dial(NodeId id, Peer& peer) {
  sockaddr_in addr{};
  if (!resolve(peer.host, peer.port, addr)) return false;
  for (std::size_t attempt = 0; attempt < policy_.max_attempts; ++attempt) {
    if (attempt > 0) {
      note_retry();
      sleep_seconds(policy_.backoff_for(attempt - 1));
    }
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) continue;
    // Connect nonblocking and bound the wait ourselves: a blocking connect
    // to a host that drops packets would stall the single-threaded poll
    // loop for the OS SYN timeout (minutes), far past anything RetryPolicy
    // promises.
    try {
      make_nonblocking(fd);
    } catch (...) {
      ::close(fd);
      throw;
    }
    int rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr);
    if (rc < 0 && (errno == EINPROGRESS || errno == EINTR)) {
      pollfd waiter{fd, POLLOUT, 0};
      const int timeout_ms = static_cast<int>(
          std::max(policy_.connect_timeout_s, 0.001) * 1000.0);
      rc = -1;
      if (::poll(&waiter, 1, timeout_ms) > 0) {
        int err = 0;
        socklen_t len = sizeof err;
        if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) == 0 && err == 0) {
          rc = 0;
        }
      }
    }
    if (rc == 0) {
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      peer.fd = fd;
      track_peer_fd(id, fd);
      return true;
    }
    ::close(fd);
  }
  return false;
}

bool TcpTransport::connect_peer(NodeId peer_id, const std::string& host, std::uint16_t port) {
  Peer& peer = peers_[peer_id];
  peer.host = host;
  peer.port = port;
  if (peer.fd >= 0) {
    untrack_fd(peer.fd);
    ::close(peer.fd);
    peer.fd = -1;
  }
  peer.lost = false;
  peer.rx.clear();
  reset_codec_state(peer_id);  // fresh link: no delta bases on either side
  if (dial(peer_id, peer)) return true;
  drop_peer(peer_id, peer, /*report=*/true);
  return false;
}

void TcpTransport::set_peer_link_class(NodeId peer, std::uint32_t link_class) {
  peers_[peer].link_class = link_class;
}

void TcpTransport::expect_close(NodeId peer_id) {
  const auto it = peers_.find(peer_id);
  // Marking the peer lost without reporting makes the upcoming EOF silent
  // (drop_peer only reports the first transition) and fails further sends
  // fast — both correct after a goodbye.
  if (it != peers_.end()) it->second.lost = true;
}

void TcpTransport::mark_transient(NodeId peer_id) {
  const auto it = peers_.find(peer_id);
  if (it != peers_.end()) it->second.transient = true;
}

bool TcpTransport::revive_peer(NodeId peer_id) {
  const auto it = peers_.find(peer_id);
  if (it == peers_.end()) return false;
  Peer& peer = it->second;
  if (!peer.lost && peer.fd >= 0) return true;
  if (peer.host.empty()) return false;  // inbound link: nothing to redial
  // Copies: connect_peer writes through peers_[peer_id] and must not read
  // the fields it is overwriting.
  const std::string host = peer.host;
  const std::uint16_t port = peer.port;
  return connect_peer(peer_id, host, port);
}

void TcpTransport::register_node(NodeId id, MessageHandler handler) {
  if (id != self_) {
    throw std::invalid_argument("TcpTransport hosts node " + std::to_string(self_) +
                                ", cannot register node " + std::to_string(id));
  }
  if (!handler) throw std::invalid_argument("TcpTransport: null handler");
  handler_ = std::move(handler);
}

SendStatus TcpTransport::send(const Envelope& env, const Payload& payload,
                              std::uint32_t link_class) {
  const auto it = peers_.find(env.to);
  if (it == peers_.end()) return SendStatus::kNoRoute;
  Peer& peer = it->second;
  if (peer.lost) return SendStatus::kPeerLost;

  obs::Span span(trace(), "net_send", static_cast<std::size_t>(env.round), env.to);
  const Codec codec = codec_for(env.to);
  TraceContext trace_ctx;
  if (tracing_to(env.to)) {
    trace_ctx = {span.trace_id(), span.id(), span.parent_id(), obs::wall_clock_ns()};
  }
  const auto encode = [&] {
    const CodecState* tx =
        codec.delta ? &tx_codec_state(self_, env.to) : nullptr;
    encode_frame_parts(env, payload, codec, tx, tx_parts_,
                       trace_ctx.valid() ? &trace_ctx : nullptr);
  };
  encode();
  const auto deadline =
      Clock::now() + std::chrono::duration<double>(policy_.send_timeout_s);
  std::size_t attempts_left = policy_.max_attempts;

  while (true) {
    if (peer.fd < 0) {
      if (peer.host.empty() || !dial(env.to, peer)) {
        drop_peer(env.to, peer, /*report=*/true);
        return SendStatus::kPeerLost;
      }
      note_reconnect();
      // The receiver treats the new socket as a reconnect and forgets its
      // delta bases; re-encode so a delta frame never rides a fresh link.
      reset_codec_state(env.to);
      encode();
    }
    const std::size_t frame_size = tx_parts_.size();
    std::size_t offset = 0;
    bool link_failed = false;
    while (offset < frame_size) {
      // Scatter-gather: up to three segments (header+prefix, in-place float
      // payload, digests), re-sliced past the bytes already written.
      iovec iov[3];
      int n_iov = 0;
      std::size_t skip = offset;
      const auto add = [&](const std::uint8_t* p, std::size_t len) {
        if (len == 0) return;
        if (skip >= len) {
          skip -= len;
          return;
        }
        iov[n_iov].iov_base = const_cast<std::uint8_t*>(p) + skip;
        iov[n_iov].iov_len = len - skip;
        ++n_iov;
        skip = 0;
      };
      add(tx_parts_.head.data(), tx_parts_.head.size());
      add(tx_parts_.inline_payload.data(), tx_parts_.inline_payload.size());
      add(tx_parts_.tail.data(), tx_parts_.tail.size());
      msghdr mh{};
      mh.msg_iov = iov;
      mh.msg_iovlen = static_cast<std::size_t>(n_iov);
      const ssize_t n = ::sendmsg(peer.fd, &mh, MSG_NOSIGNAL);
      if (n > 0) {
        offset += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        const auto now = Clock::now();
        if (now >= deadline) {
          note_timeout();
          return SendStatus::kTimeout;
        }
        pollfd waiter{peer.fd, POLLOUT, 0};
        const auto remaining =
            std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now);
        ::poll(&waiter, 1, static_cast<int>(std::max<std::int64_t>(remaining.count(), 1)));
        continue;
      }
      link_failed = true;
      break;
    }
    if (!link_failed) {
      if (codec.delta) tx_parts_.commit_tx(tx_codec_state(self_, env.to));
      note_sent(frame_size, encoded_size(payload), link_class, env.to);
      obs::blackbox::record(
          obs::blackbox::EventType::kFrameTx,
          static_cast<std::uint16_t>(std::visit(
              [](const auto& p) { return std::decay_t<decltype(p)>::kMessageKind; },
              payload)),
          env.from, env.round, env.to, frame_size);
      return SendStatus::kOk;
    }
    untrack_fd(peer.fd);
    ::close(peer.fd);
    peer.fd = -1;
    peer.rx.clear();
    reset_codec_state(env.to);
    if (--attempts_left == 0 || peer.host.empty()) {
      drop_peer(env.to, peer, /*report=*/true);
      return SendStatus::kPeerLost;
    }
    note_retry();
    sleep_seconds(policy_.backoff_for(policy_.max_attempts - attempts_left - 1));
  }
}

std::size_t TcpTransport::poll(double timeout_s) {
  obs::blackbox::note_poll_tick();
  // Prune pending connections that died outside this call.
  std::erase_if(pending_, [](const PendingConn& conn) { return conn.fd < 0; });

  const int timeout_ms =
      timeout_s <= 0.0 ? 0 : static_cast<int>(timeout_s * 1000.0);
  // The kernel already holds the interest set; with nothing registered
  // epoll_wait degenerates to a plain sleep, matching the old empty-set
  // ::poll.  Only the ready descriptors come back — no O(peers) scan.
  if (reactor_.wait(timeout_ms, ready_fds_) == 0) return 0;

  // Partition the ready set to preserve the dispatch order the protocol
  // depends on: accept first, then pending conns (a reconnecting peer must
  // re-identify before its stale link is read), then peers in ascending
  // node id — the same order the old peers_-map walk produced, which the
  // collectors' id-ordered streaming fold observes within a tick.
  bool listen_ready = false;
  ready_pending_.clear();
  ready_peers_.clear();
  for (const int fd : ready_fds_) {
    if (listen_fd_ >= 0 && fd == listen_fd_) {
      listen_ready = true;
      continue;
    }
    const auto it = fd_peer_.find(fd);
    if (it != fd_peer_.end()) {
      ready_peers_.emplace_back(it->second, fd);
    } else {
      ready_pending_.push_back(fd);  // validated against pending_ below
    }
  }
  std::sort(ready_peers_.begin(), ready_peers_.end());

  std::size_t delivered = 0;
  if (listen_ready) accept_pending();
  // Index walk over pending_: read_pending never erases entries (it only
  // blanks fds), so indices stay stable, and walking in insertion order
  // keeps multi-conn identification deterministic whatever order epoll
  // reported readiness in.
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    const int fd = pending_[i].fd;
    if (fd < 0) continue;
    if (std::find(ready_pending_.begin(), ready_pending_.end(), fd) ==
        ready_pending_.end()) {
      continue;
    }
    delivered += read_pending(i);
  }
  std::erase_if(pending_, [](const PendingConn& conn) { return conn.fd < 0; });
  for (const auto& [id, fd] : ready_peers_) {
    const auto it = peers_.find(id);
    if (it == peers_.end() || it->second.fd != fd) continue;  // replaced mid-poll
    delivered += read_peer(it->first, it->second);
  }
  return delivered;
}

void TcpTransport::accept_pending() {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // EAGAIN (drained) or a transient error; retry next poll
    }
    tune_stream(fd);
    reactor_.add(fd);
    pending_.push_back({fd, {}});
  }
}

std::size_t TcpTransport::read_peer(NodeId id, Peer& peer) {
  bool eof = false;
  while (true) {
    // recv() straight into the ring: no intermediate stack buffer, no
    // insert-and-erase churn on a growable vector.
    const auto room = peer.rx.writable(kRecvChunk);
    const ssize_t n = ::recv(peer.fd, room.data(), room.size(), 0);
    if (n > 0) {
      peer.rx.commit(static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) {
      eof = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    eof = true;  // hard error: treat like a dead link
    break;
  }
  bool framing_ok = true;
  const std::size_t delivered = drain_ring(peer, framing_ok);
  if (eof || !framing_ok) drop_peer(id, peer, /*report=*/true);
  return delivered;
}

std::size_t TcpTransport::read_pending(std::size_t index) {
  PendingConn& conn = pending_[index];
  std::uint8_t buf[kRecvChunk];
  while (true) {
    const ssize_t n = ::recv(conn.fd, buf, sizeof buf, 0);
    if (n > 0) {
      conn.rx.insert(conn.rx.end(), buf, buf + n);
      continue;
    }
    if (n == 0) {  // closed before identifying itself: nothing to report
      reactor_.remove(conn.fd);
      ::close(conn.fd);
      conn.fd = -1;
      return 0;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    reactor_.remove(conn.fd);
    ::close(conn.fd);
    conn.fd = -1;
    return 0;
  }
  if (conn.rx.size() < kHeaderSize) return 0;

  // Wait for — and fully verify — the first frame before trusting its sender
  // id; a frame that fails the digest must not map this socket to a node.
  FrameView first;
  try {
    const std::size_t total = peek_frame_size({conn.rx.data(), kHeaderSize});
    if (conn.rx.size() < total) return 0;
    first = FrameView::parse({conn.rx.data(), total});
  } catch (const WireError&) {
    note_decode_error();
    reactor_.remove(conn.fd);
    ::close(conn.fd);
    conn.fd = -1;
    return 0;
  }

  const NodeId from = first.env().from;
  const bool known = peers_.find(from) != peers_.end();
  Peer& peer = peers_[from];
  if (peer.fd >= 0) {  // reconnect replaces the stale link
    untrack_fd(peer.fd);
    ::close(peer.fd);
  }
  peer.fd = conn.fd;
  fd_peer_[conn.fd] = from;  // already in the reactor since accept
  peer.lost = false;
  peer.rx.clear();
  const auto room = peer.rx.writable(conn.rx.size());
  std::memcpy(room.data(), conn.rx.data(), conn.rx.size());
  peer.rx.commit(conn.rx.size());
  conn.rx.clear();
  conn.fd = -1;
  // A new connection means any delta base from the previous incarnation of
  // this link is gone on the peer's side too.
  reset_codec_state(from);
  // A known peer coming back on a fresh socket is a reconnect.  Announce it
  // BEFORE draining the buffered frames: a parent that evicted the peer on
  // the earlier loss re-admits it first, so the frames riding the new
  // connection (typically the retried model update) land in restored state.
  if (known && !peer.transient) note_peer_reconnect(from);
  bool framing_ok = true;
  const std::size_t delivered = drain_ring(peer, framing_ok);
  if (!framing_ok) drop_peer(from, peer, /*report=*/true);
  return delivered;
}

std::size_t TcpTransport::drain_ring(Peer& peer, bool& framing_ok) {
  framing_ok = true;
  // Stage 1: validate every complete frame in the ring BEFORE running any
  // handler, capturing non-owning views.  FrameView::parse checks framing,
  // digest, reserved bits and flags, so nothing semantically unvalidated is
  // ever handed to stage 2.
  std::vector<FrameView> batch;
  const auto data = peer.rx.readable();
  std::size_t pos = 0;
  while (pos + kHeaderSize <= data.size()) {
    try {
      const std::size_t total = peek_frame_size(data.subspan(pos, kHeaderSize));
      if (data.size() - pos < total) break;
      batch.push_back(FrameView::parse(data.subspan(pos, total)));
      pos += total;
    } catch (const WireError&) {
      // A stream cannot resynchronize after a framing error; the caller
      // drops the connection.
      note_decode_error();
      framing_ok = false;
      break;
    }
  }
  // Stage 2: dispatch.  A handler may reentrantly send()/connect_peer()/
  // drop this same peer; every such path clear()s the ring, which keeps the
  // memory alive (the captured views stay dereferenceable) but bumps its
  // generation — in that case the buffered bytes are gone and the final
  // consume must not run against stale offsets.
  const std::uint64_t generation = peer.rx.generation();
  std::size_t delivered = 0;
  for (const FrameView& view : batch) {
    try {
      deliver_frame(view, peer.link_class, handler_);
    } catch (const WireError&) {
      note_decode_error();
      framing_ok = false;
      break;
    }
    ++delivered;
  }
  if (peer.rx.generation() == generation) peer.rx.consume(pos);
  return delivered;
}

void TcpTransport::drop_peer(NodeId id, Peer& peer, bool report) {
  if (peer.fd >= 0) {
    untrack_fd(peer.fd);
    ::close(peer.fd);
    peer.fd = -1;
  }
  peer.rx.clear();
  reset_codec_state(id);
  if (report && !peer.lost && !peer.transient) {
    peer.lost = true;
    note_peer_loss(id);
  }
}

std::uint64_t TcpTransport::backlog_bytes(std::uint32_t link_class) const {
  std::uint64_t total = 0;
  for (const auto& [id, peer] : peers_) {
    if (peer.link_class == link_class) total += peer.rx.size();
  }
  return total;
}

void TcpTransport::close() {
  if (listen_fd_ >= 0) {
    reactor_.remove(listen_fd_);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  for (auto& [id, peer] : peers_) {
    if (peer.fd >= 0) {
      untrack_fd(peer.fd);
      ::close(peer.fd);
      peer.fd = -1;
    }
  }
  for (PendingConn& conn : pending_) {
    if (conn.fd >= 0) {
      reactor_.remove(conn.fd);
      ::close(conn.fd);
      conn.fd = -1;
    }
  }
  pending_.clear();
  fd_peer_.clear();
}

}  // namespace abdhfl::net
