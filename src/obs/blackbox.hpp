#pragma once
// Black-box flight recorder (DESIGN.md §13).
//
// An always-on, lock-light, bounded ring of fixed-size structured events —
// protocol state transitions, frame tx/rx headers, consensus votes,
// checkpoint installs, peer churn, phase enter/exit with round tags —
// recorded from every runner and every net node.  When the process dies on
// SIGSEGV/SIGABRT/SIGBUS, an async-signal-safe handler dumps the ring, the
// current round/phase, and the peer table into a versioned CRC-framed
// `.abbx` file using only pre-reserved buffers and write(2), so a postmortem
// (tools/blackbox_dump) can reconstruct the node's last milliseconds even
// when no JSONL ever flushed.
//
// A watchdog thread covers the failures that *don't* crash: no round
// progress for longer than --stall-after, a poll loop that stopped ticking,
// or a background checkpoint writer wedged mid-install.  A detected stall
// triggers the same dump path without killing the process, appends
// `blackbox_stall` / `blackbox_dump` JSONL records (validate_jsonl --group
// blackbox), and bumps the `net_stall_total` counter.
//
// Cost model: record() behind the armed() relaxed-atomic guard is a load and
// a branch when the recorder is off — cheap enough to leave in the dense
// decode and aggregation hot paths unconditionally.  When armed, one event
// is eight relaxed atomic stores into a preallocated slot: no locks, no
// allocation, TSan-clean, and safe to *read* from the crash handler or the
// watchdog at any instant (a slot whose seq word is 0 is mid-write and gets
// skipped by the decoder).
//
// One recorder per process.  Processes hosting several nodes over one
// loopback transport share the ring (events carry their node id); the
// round/phase/peer status block is last-writer-wins, which is exact in the
// one-node-per-process deployments the crash path exists for.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace abdhfl::util {
class Cli;
}

namespace abdhfl::obs::blackbox {

/// Event taxonomy.  The 16-bit `code` field refines the type: the wire
/// MsgKind for frame events, the Phase for phase events, a ChurnKind for
/// churn, a StallReason for stalls.
enum class EventType : std::uint16_t {
  kNone = 0,
  kPhase = 1,        // code = phase entered; a = previous phase
  kRound = 2,        // round advanced / began; a = extra (e.g. accepted updates)
  kFrameTx = 3,      // code = MsgKind; a = destination node; b = wire bytes
  kFrameRx = 4,      // code = MsgKind; a = source node; b = wire bytes
  kVote = 5,         // code = vote value; a = voter; b = proposal/seq
  kCkptInstall = 6,  // a = seq; b = bytes
  kChurn = 7,        // code = ChurnKind; a = peer
  kStall = 8,        // code = StallReason; a = stalled nanoseconds
  kDump = 9,         // code = reason (signal number or stall code)
  kMark = 10,        // free-form runner milestones; code is runner-defined
  kElection = 11,    // code = 0 started / 1 won / 2 adopted; a = term
  kViewChange = 12,  // code = rotation::ViewReason; a = term; b = leader/member
};

enum class ChurnKind : std::uint16_t { kJoin = 1, kLoss = 2, kRejoin = 3, kLeave = 4 };

enum class StallReason : std::uint16_t {
  kNoProgress = 1,  // round not advancing while in an active phase
  kPollStuck = 2,   // transport poll loop stopped ticking
  kCkptWedged = 3,  // background checkpoint writer busy too long
};

[[nodiscard]] const char* to_string(EventType type) noexcept;
[[nodiscard]] const char* to_string(StallReason reason) noexcept;

/// Decoded ring event (the in-ring representation is 8 relaxed atomic
/// words; see DESIGN.md §13 for the exact slot layout).
struct Event {
  std::uint64_t seq = 0;      // global order; gaps mean the ring wrapped
  std::uint64_t wall_ns = 0;  // CLOCK_REALTIME at record()
  std::uint16_t type = 0;     // EventType
  std::uint16_t code = 0;     // type-specific refinement
  std::uint32_t node = 0;     // recording node id
  std::uint64_t round = 0;
  std::uint64_t a = 0, b = 0, c = 0;  // type-specific arguments
};

/// Peer-table entry mirrored into the status block by the net layer.
struct PeerEntry {
  std::uint32_t node = 0;
  std::uint16_t state = 0;  // StatusPeer encoding: 0 live, 1 lost, 2 left
  std::uint64_t round = 0;  // last round the peer made progress on
};

/// True while a ring is armed; record() and the status-block setters are
/// no-ops (one relaxed load) otherwise.
[[nodiscard]] bool armed() noexcept;

/// Append one event to the ring.  Safe from any thread; never blocks, never
/// allocates.
void record(EventType type, std::uint16_t code, std::uint32_t node,
            std::uint64_t round, std::uint64_t a = 0, std::uint64_t b = 0,
            std::uint64_t c = 0) noexcept;

// ---- status block (what the dump reports beyond the ring) -----------------

/// Current protocol position; `deadline_ns` is the phase deadline as wall ns
/// (0 = none).  Last-writer-wins across nodes sharing the process.
void set_phase(std::uint16_t phase, std::uint64_t round,
               std::uint64_t deadline_ns = 0) noexcept;

/// The forward-progress heartbeat the watchdog's kNoProgress check watches:
/// call whenever a round completes/advances.
void note_progress(std::uint64_t round) noexcept;

/// The poll-loop heartbeat: transports call this once per poll().
void note_poll_tick() noexcept;

/// Checkpoint-writer heartbeat: busy=true when an install starts, false when
/// it finishes.  The watchdog flags a writer busy longer than the threshold.
void note_ckpt_busy(bool busy) noexcept;

/// Upsert a peer-table entry (fixed table, kMaxPeers slots; extra peers are
/// dropped — the dump reports how many).
void set_peer(std::uint32_t node, std::uint16_t state, std::uint64_t round) noexcept;

inline constexpr std::size_t kMaxPeers = 64;

// ---- lifecycle ------------------------------------------------------------

struct Options {
  std::string dir;             // dump directory; "" = blackbox off
  std::size_t ring_capacity = 4096;  // events (rounded up to a power of two)
  double stall_after_s = 0.0;  // watchdog threshold; 0 = watchdog off
  bool handlers = true;        // install SIGSEGV/SIGABRT/SIGBUS dumpers
};

/// Declare --blackbox-dir / --blackbox-ring / --stall-after on a Cli.
[[nodiscard]] Options declare_cli(util::Cli& cli);

/// Arm the recorder for this process: allocate the ring and the dump buffer,
/// pre-build `<dir>/blackbox-node<id>.abbx`, install the crash handlers, and
/// start the watchdog when stall_after_s > 0.  Returns false (disarmed) when
/// options.dir is empty.  Arming twice re-arms with the new options.
bool arm(const Options& options, std::uint32_t node_id);

/// Stop the watchdog, restore the previous signal handlers, and release the
/// ring.  Pending events are lost; call dump_now() first to keep them.
/// Automatically safe to call when not armed.
void disarm();

/// Path the crash handler will write ("" when disarmed).
[[nodiscard]] std::string dump_path();

/// Synchronous dump of the current ring + status block (the watchdog/stall
/// path; also handy in tests).  `reason` lands in the META section: signal
/// number for crashes, 1000 + StallReason for stalls, 0 for manual.
/// Not async-signal-safe glue lives around it — the signal handler calls the
/// same underlying writer directly.
bool dump_now(std::uint64_t reason);

// ---- decoder (tools/blackbox_dump, tests; not signal-safe) ----------------

/// Parsed `.abbx` contents.  Tolerant: sections with bad CRCs or truncated
/// tails are skipped with a note in `warnings` instead of failing the whole
/// read, because a crash dump is exactly the file most likely to be cut off.
struct Dump {
  std::uint32_t version = 0;
  std::uint64_t node = 0;
  std::uint64_t round = 0;
  std::uint64_t phase = 0;
  std::uint64_t phase_deadline_ns = 0;
  std::uint64_t wall_ns = 0;  // when the dump was written
  std::uint64_t reason = 0;   // signal number, 1000 + StallReason, or 0
  std::uint64_t peers_dropped = 0;
  std::vector<PeerEntry> peers;
  std::vector<Event> events;  // seq-sorted, mid-write slots skipped
  std::vector<std::string> warnings;
};

/// Read and verify a dump.  Returns nullopt (with `error` set) only when the
/// file is unreadable or not an .abbx at all; recoverable damage is reported
/// through Dump::warnings.
[[nodiscard]] std::optional<Dump> read_dump(const std::string& path,
                                            std::string& error);

}  // namespace abdhfl::obs::blackbox
