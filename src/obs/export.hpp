#pragma once
// Exposition formats for the metrics registry, plus the shared JSON string
// escaper used by every JSONL writer in the subsystem.

#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"

namespace abdhfl::obs {

/// Escape for embedding inside a JSON string literal (quotes, backslash,
/// control characters).
[[nodiscard]] std::string json_escape(std::string_view s);

/// Prometheus text exposition (v0.0.4): # HELP / # TYPE headers per metric
/// family, cumulative `_bucket{le=...}` lines plus `_sum`/`_count` for
/// histograms.  Names registered with a baked-in `{label="v"}` selector are
/// split so the family headers carry the bare name.
[[nodiscard]] std::string to_prometheus(const std::vector<MetricValue>& snapshot);

/// Registry snapshot as JSONL: one {"name":...,"kind":...} object per line
/// (histograms carry bounds/buckets arrays).
[[nodiscard]] std::string metrics_to_jsonl(const std::vector<MetricValue>& snapshot);

/// Write `content` to `path`; returns false (and logs) on failure.
bool write_text_file(const std::string& path, std::string_view content);

}  // namespace abdhfl::obs
