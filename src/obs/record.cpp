#include "obs/record.hpp"

#include <algorithm>
#include <cstdio>

#include "obs/export.hpp"
#include "util/stats.hpp"

namespace abdhfl::obs {

namespace {

/// Shortest round-trip-safe rendering: %.9g keeps round numbers ("0.5") and
/// survives the values we record (accuracies, seconds, counts as doubles).
std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

void RoundRecord::set(const std::string& key, double value) {
  for (auto& [k, v] : fields) {
    if (k == key) {
      v = value;
      return;
    }
  }
  fields.emplace_back(key, value);
}

double RoundRecord::get(const std::string& key, double def) const noexcept {
  for (const auto& [k, v] : fields) {
    if (k == key) return v;
  }
  return def;
}

bool RoundRecord::has(const std::string& key) const noexcept {
  return std::any_of(fields.begin(), fields.end(),
                     [&](const auto& kv) { return kv.first == key; });
}

RoundRecord& Recorder::begin_round(std::string runner, std::size_t round) {
  RoundRecord& record = records_.emplace_back();
  record.runner = std::move(runner);
  record.round = round;
  record.fields = context_;
  return record;
}

void Recorder::set_context(const std::string& key, double value) {
  for (auto& [k, v] : context_) {
    if (k == key) {
      v = value;
      return;
    }
  }
  context_.emplace_back(key, value);
}

void Recorder::clear_context() { context_.clear(); }

std::string Recorder::to_jsonl() const {
  std::string out;
  for (const auto& record : records_) {
    out += "{\"runner\":\"" + json_escape(record.runner) + "\",\"round\":" +
           std::to_string(record.round);
    for (const auto& [key, value] : record.fields) {
      out += ",\"" + json_escape(key) + "\":" + fmt_double(value);
    }
    out += "}\n";
  }
  return out;
}

std::string Recorder::to_csv() const {
  // Union of field names, ordered by first appearance across all records.
  std::vector<std::string> columns;
  for (const auto& record : records_) {
    for (const auto& [key, value] : record.fields) {
      (void)value;
      if (std::find(columns.begin(), columns.end(), key) == columns.end()) {
        columns.push_back(key);
      }
    }
  }
  std::string out = "runner,round";
  for (const auto& c : columns) out += "," + c;
  out += "\n";
  for (const auto& record : records_) {
    out += record.runner + "," + std::to_string(record.round);
    for (const auto& c : columns) {
      out += ",";
      if (record.has(c)) out += fmt_double(record.get(c));
    }
    out += "\n";
  }
  return out;
}

std::string Recorder::summary() const {
  std::vector<std::string> columns;
  for (const auto& record : records_) {
    for (const auto& [key, value] : record.fields) {
      (void)value;
      if (std::find(columns.begin(), columns.end(), key) == columns.end()) {
        columns.push_back(key);
      }
    }
  }
  std::string out = "field: p50 / p95 / p99 over " + std::to_string(records_.size()) +
                    " record(s)\n";
  char buf[160];
  for (const auto& c : columns) {
    std::vector<double> xs;
    for (const auto& record : records_) {
      if (record.has(c)) xs.push_back(record.get(c));
    }
    if (xs.empty()) continue;
    std::snprintf(buf, sizeof(buf), "  %-24s %.6g / %.6g / %.6g\n", c.c_str(),
                  util::percentile_or(xs, 50.0, 0.0), util::percentile_or(xs, 95.0, 0.0),
                  util::percentile_or(xs, 99.0, 0.0));
    out += buf;
  }
  return out;
}

}  // namespace abdhfl::obs
