#include "obs/blackbox.hpp"

#include <fcntl.h>
#include <signal.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <thread>

#include "obs/metrics.hpp"
#include "util/cli.hpp"

namespace abdhfl::obs::blackbox {

namespace {

// ---- on-disk constants ----------------------------------------------------

constexpr std::uint32_t kMagic = 0x58424241;  // "ABBX" little-endian
constexpr std::uint32_t kVersion = 1;
constexpr std::uint32_t kSecMeta = 1;
constexpr std::uint32_t kSecPeers = 2;
constexpr std::uint32_t kSecRing = 3;
constexpr std::size_t kSlotWords = 8;  // 64 bytes per event slot

// CRC-32 (IEEE, reflected) — table built at compile time so the crash
// handler only indexes constant data.
struct CrcTable {
  std::uint32_t t[256];
  constexpr CrcTable() : t() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
  }
};
constexpr CrcTable kCrc;

std::uint32_t crc32(const std::uint8_t* data, std::size_t n) noexcept {
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i) c = kCrc.t[(c ^ data[i]) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

// ---- process-wide recorder state ------------------------------------------
//
// Everything record() touches is a relaxed/acquire-release atomic so the
// crash handler and the watchdog can read a consistent-enough snapshot from
// any thread at any instant.  The ring is never freed while armed-or-not (a
// re-arm retires the old allocation instead of deleting it) so a racing
// record() can never touch freed memory.

struct PeerSlot {
  std::atomic<std::uint64_t> key{0};  // node + 1; 0 = empty
  std::atomic<std::uint64_t> state{0};
  std::atomic<std::uint64_t> round{0};
};

std::atomic<bool> g_armed{false};
std::atomic<std::atomic<std::uint64_t>*> g_ring{nullptr};
std::atomic<std::uint64_t> g_mask{0};      // capacity - 1 (power of two)
std::atomic<std::uint64_t> g_capacity{0};  // slots
std::atomic<std::uint64_t> g_seq{0};

// Status block (last-writer-wins across nodes sharing the process).
std::atomic<std::uint64_t> g_node{0};
std::atomic<std::uint64_t> g_round{0};
std::atomic<std::uint64_t> g_phase{1};  // "training" until someone says otherwise
std::atomic<std::uint64_t> g_phase_deadline_ns{0};
std::atomic<std::uint64_t> g_last_progress_ns{0};
std::atomic<std::uint64_t> g_last_poll_ns{0};
std::atomic<std::uint64_t> g_ckpt_busy_since_ns{0};
PeerSlot g_peers[kMaxPeers];
std::atomic<std::uint64_t> g_peers_dropped{0};

// Crash-dump resources, pre-reserved at arm() so the signal path allocates
// nothing.  The path buffers are plain char arrays written before handlers
// are installed.
std::atomic<bool> g_dumping{false};
std::uint8_t* g_dump_buf = nullptr;
std::size_t g_dump_cap = 0;
char g_dump_path[512] = {0};
char g_jsonl_path[512] = {0};
std::atomic<std::uint64_t> g_last_dump_events{0};

// Non-signal bookkeeping (arm/disarm/watchdog), never touched by record().
std::mutex g_mu;
std::vector<std::unique_ptr<std::atomic<std::uint64_t>[]>> g_retired_rings;
std::unique_ptr<std::atomic<std::uint64_t>[]> g_live_ring;
std::unique_ptr<std::uint8_t[]> g_dump_buf_owner;
struct sigaction g_old_actions[3];
int g_handled_sigs[3] = {SIGSEGV, SIGABRT, SIGBUS};
bool g_handlers_installed = false;

// Watchdog context, heap-allocated per arming and tagged with the owning
// pid: a process that armed the watchdog and then fork()ed hands the child a
// joinable std::thread handle for a thread that does not exist there.  The
// child must neither join nor detach it (both are undefined on the stale
// id), so stop_watchdog() leaks the whole context in that case and the
// child's re-arm starts a fresh one.
struct WatchdogCtx {
  std::mutex mu;
  std::condition_variable cv;
  bool stop = false;
  double threshold_s = 0.0;
  std::thread thread;
};
WatchdogCtx* g_wd = nullptr;
pid_t g_wd_pid = 0;

std::uint64_t wall_ns_now() noexcept {
  struct timespec ts;
  clock_gettime(CLOCK_REALTIME, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

// ---- async-signal-safe encoder --------------------------------------------

struct Writer {
  std::uint8_t* buf;
  std::size_t cap;
  std::size_t off = 0;
  void u32(std::uint32_t v) noexcept {
    if (off + 4 > cap) { off = cap + 1; return; }
    std::uint8_t* p = buf + off;
    p[0] = static_cast<std::uint8_t>(v);
    p[1] = static_cast<std::uint8_t>(v >> 8);
    p[2] = static_cast<std::uint8_t>(v >> 16);
    p[3] = static_cast<std::uint8_t>(v >> 24);
    off += 4;
  }
  void u64(std::uint64_t v) noexcept {
    u32(static_cast<std::uint32_t>(v));
    u32(static_cast<std::uint32_t>(v >> 32));
  }
  [[nodiscard]] bool overflowed() const noexcept { return off > cap; }
};

/// Close one [tag][len][payload][crc] section: the payload was written
/// starting at `payload_off`; backfill the length and append the CRC.
void close_section(Writer& w, std::size_t len_off, std::size_t payload_off) noexcept {
  if (w.overflowed()) return;
  const std::uint32_t len = static_cast<std::uint32_t>(w.off - payload_off);
  std::uint8_t* p = w.buf + len_off;
  p[0] = static_cast<std::uint8_t>(len);
  p[1] = static_cast<std::uint8_t>(len >> 8);
  p[2] = static_cast<std::uint8_t>(len >> 16);
  p[3] = static_cast<std::uint8_t>(len >> 24);
  w.u32(crc32(w.buf + payload_off, len));
}

/// Serialize header + META + PEERS + RING into the pre-reserved buffer using
/// only relaxed atomic loads and byte stores.  Returns bytes written (0 on
/// overflow, which cannot happen with the capacity arm() reserves) and the
/// count of populated ring slots via `events_out`.
std::size_t encode_dump(std::uint8_t* buf, std::size_t cap, std::uint64_t reason,
                        std::uint64_t* events_out) noexcept {
  Writer w{buf, cap};
  w.u32(kMagic);
  w.u32(kVersion);

  // META
  w.u32(kSecMeta);
  std::size_t len_off = w.off;
  w.u32(0);
  std::size_t payload_off = w.off;
  w.u64(g_node.load(std::memory_order_relaxed));
  w.u64(g_round.load(std::memory_order_relaxed));
  w.u64(g_phase.load(std::memory_order_relaxed));
  w.u64(g_phase_deadline_ns.load(std::memory_order_relaxed));
  w.u64(wall_ns_now());
  w.u64(reason);
  w.u64(g_capacity.load(std::memory_order_relaxed));
  w.u64(g_seq.load(std::memory_order_relaxed));
  w.u64(g_peers_dropped.load(std::memory_order_relaxed));
  close_section(w, len_off, payload_off);

  // PEERS
  w.u32(kSecPeers);
  len_off = w.off;
  w.u32(0);
  payload_off = w.off;
  std::uint64_t peer_count = 0;
  const std::size_t count_off = w.off;
  w.u64(0);
  for (std::size_t i = 0; i < kMaxPeers; ++i) {
    const std::uint64_t key = g_peers[i].key.load(std::memory_order_acquire);
    if (key == 0) continue;
    w.u32(static_cast<std::uint32_t>(key - 1));
    w.u32(static_cast<std::uint32_t>(g_peers[i].state.load(std::memory_order_relaxed)));
    w.u64(g_peers[i].round.load(std::memory_order_relaxed));
    ++peer_count;
  }
  if (!w.overflowed()) {
    Writer patch{buf, cap};
    patch.off = count_off;
    patch.u64(peer_count);
  }
  close_section(w, len_off, payload_off);

  // RING: raw slots, mid-write ones included (seq word 0 → decoder skips).
  w.u32(kSecRing);
  len_off = w.off;
  w.u32(0);
  payload_off = w.off;
  auto* ring = g_ring.load(std::memory_order_acquire);
  const std::uint64_t slots = g_capacity.load(std::memory_order_relaxed);
  std::uint64_t populated = 0;
  for (std::uint64_t s = 0; ring != nullptr && s < slots; ++s) {
    const std::atomic<std::uint64_t>* slot = ring + s * kSlotWords;
    const std::uint64_t seq_word = slot[0].load(std::memory_order_acquire);
    if (seq_word != 0) ++populated;
    w.u64(seq_word);
    for (std::size_t word = 1; word < kSlotWords; ++word) {
      w.u64(slot[word].load(std::memory_order_relaxed));
    }
  }
  close_section(w, len_off, payload_off);

  if (events_out != nullptr) *events_out = populated;
  return w.overflowed() ? 0 : w.off;
}

/// write(2) loop + fsync; async-signal-safe.
bool write_all(const char* path, const std::uint8_t* data, std::size_t n) noexcept {
  const int fd = ::open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  std::size_t off = 0;
  while (off < n) {
    const ssize_t wrote = ::write(fd, data + off, n - off);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return false;
    }
    off += static_cast<std::size_t>(wrote);
  }
  ::fsync(fd);
  ::close(fd);
  return true;
}

/// The shared dump body: encode into the pre-reserved buffer, write(2) it
/// out.  Async-signal-safe; returns bytes written (0 on failure).
std::size_t write_dump_raw(std::uint64_t reason) noexcept {
  if (g_dump_buf == nullptr || g_dump_path[0] == '\0') return 0;
  record(EventType::kDump, static_cast<std::uint16_t>(reason & 0xFFFF),
         static_cast<std::uint32_t>(g_node.load(std::memory_order_relaxed)),
         g_round.load(std::memory_order_relaxed));
  std::uint64_t events = 0;
  const std::size_t n = encode_dump(g_dump_buf, g_dump_cap, reason, &events);
  if (n == 0) return 0;
  g_last_dump_events.store(events, std::memory_order_relaxed);
  return write_all(g_dump_path, g_dump_buf, n) ? n : 0;
}

void crash_handler(int sig) {
  if (!g_dumping.exchange(true, std::memory_order_acq_rel)) {
    write_dump_raw(static_cast<std::uint64_t>(sig));
  }
  // Restore the previous disposition and re-raise so the process still dies
  // with the original signal (exit status, core dumps, parent's waitpid all
  // see the truth).
  for (std::size_t i = 0; i < 3; ++i) {
    if (g_handled_sigs[i] == sig) {
      ::sigaction(sig, &g_old_actions[i], nullptr);
    }
  }
  ::raise(sig);
}

/// Append one line to the side-car JSONL with a single O_APPEND write (safe
/// against the node thread appending concurrently).  Watchdog/manual path
/// only — never called from the signal handler.
void append_jsonl(const char* line) noexcept {
  if (g_jsonl_path[0] == '\0') return;
  const int fd = ::open(g_jsonl_path, O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return;
  const std::size_t n = std::strlen(line);
  std::size_t off = 0;
  while (off < n) {
    const ssize_t wrote = ::write(fd, line + off, n - off);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      break;
    }
    off += static_cast<std::size_t>(wrote);
  }
  ::close(fd);
}

const char* reason_name(std::uint64_t reason) noexcept {
  if (reason == 0) return "manual";
  if (reason >= 1000) {
    return to_string(static_cast<StallReason>(reason - 1000));
  }
  switch (static_cast<int>(reason)) {
    case SIGSEGV: return "sigsegv";
    case SIGABRT: return "sigabrt";
    case SIGBUS: return "sigbus";
  }
  return "signal";
}

void emit_dump_record(std::uint64_t reason, std::size_t bytes) {
  char line[768];
  std::snprintf(line, sizeof line,
                "{\"runner\":\"blackbox_dump\",\"round\":%llu,\"node\":%llu,"
                "\"phase\":%llu,\"events\":%llu,\"bytes\":%zu,\"reason\":\"%s\","
                "\"path\":\"%s\"}\n",
                static_cast<unsigned long long>(g_round.load(std::memory_order_relaxed)),
                static_cast<unsigned long long>(g_node.load(std::memory_order_relaxed)),
                static_cast<unsigned long long>(g_phase.load(std::memory_order_relaxed)),
                static_cast<unsigned long long>(
                    g_last_dump_events.load(std::memory_order_relaxed)),
                bytes, reason_name(reason), g_dump_path);
  append_jsonl(line);
}

// ---- watchdog -------------------------------------------------------------

void emit_stall_record(StallReason reason, double stalled_s) {
  char line[512];
  std::snprintf(line, sizeof line,
                "{\"runner\":\"blackbox_stall\",\"round\":%llu,\"node\":%llu,"
                "\"phase\":%llu,\"reason\":\"%s\",\"stalled_for_s\":%.3f}\n",
                static_cast<unsigned long long>(g_round.load(std::memory_order_relaxed)),
                static_cast<unsigned long long>(g_node.load(std::memory_order_relaxed)),
                static_cast<unsigned long long>(g_phase.load(std::memory_order_relaxed)),
                to_string(reason), stalled_s);
  append_jsonl(line);
}

void fire_stall(StallReason reason, std::uint64_t stalled_ns) {
  record(EventType::kStall, static_cast<std::uint16_t>(reason),
         static_cast<std::uint32_t>(g_node.load(std::memory_order_relaxed)),
         g_round.load(std::memory_order_relaxed), stalled_ns);
  if (obs::enabled()) {
    obs::global_registry()
        .counter("net_stall_total", "Watchdog-detected stalls (dump written, process alive)")
        .add(1);
  }
  emit_stall_record(reason, static_cast<double>(stalled_ns) / 1e9);
  dump_now(1000 + static_cast<std::uint64_t>(reason));
}

void watchdog_loop(WatchdogCtx* ctx) {
  // One latch per reason: a stall fires once per episode and re-arms only
  // after the signal recovers, so a long wedge does not spam dumps.
  bool fired[4] = {false, false, false, false};
  const double threshold_s = ctx->threshold_s;
  const auto interval = std::chrono::duration<double>(
      std::clamp(threshold_s / 4.0, 0.05, 0.5));
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(ctx->mu);
      if (ctx->cv.wait_for(lk, interval, [ctx] { return ctx->stop; })) return;
    }
    const std::uint64_t now = wall_ns_now();
    const std::uint64_t threshold_ns =
        static_cast<std::uint64_t>(threshold_s * 1e9);
    const bool active = g_phase.load(std::memory_order_relaxed) != 3;  // not done

    const auto check = [&](StallReason reason, std::uint64_t since) {
      const auto idx = static_cast<std::size_t>(reason);
      if (since == 0 || now <= since || now - since <= threshold_ns) {
        fired[idx] = false;
        return;
      }
      if (!fired[idx]) {
        fired[idx] = true;
        fire_stall(reason, now - since);
      }
    };

    check(StallReason::kNoProgress,
          active ? g_last_progress_ns.load(std::memory_order_relaxed) : 0);
    check(StallReason::kPollStuck,
          active ? g_last_poll_ns.load(std::memory_order_relaxed) : 0);
    check(StallReason::kCkptWedged,
          g_ckpt_busy_since_ns.load(std::memory_order_relaxed));
  }
}

void stop_watchdog() {
  if (g_wd == nullptr) return;
  if (g_wd_pid == ::getpid()) {
    {
      std::lock_guard<std::mutex> lk(g_wd->mu);
      g_wd->stop = true;
    }
    g_wd->cv.notify_all();
    if (g_wd->thread.joinable()) g_wd->thread.join();
    delete g_wd;
  }
  // else: forked child — the thread only ever existed in the parent, so the
  // context (with its joinable handle) is intentionally leaked.
  g_wd = nullptr;
}

}  // namespace

const char* to_string(EventType type) noexcept {
  switch (type) {
    case EventType::kNone: return "none";
    case EventType::kPhase: return "phase";
    case EventType::kRound: return "round";
    case EventType::kFrameTx: return "frame_tx";
    case EventType::kFrameRx: return "frame_rx";
    case EventType::kVote: return "vote";
    case EventType::kCkptInstall: return "ckpt_install";
    case EventType::kChurn: return "churn";
    case EventType::kStall: return "stall";
    case EventType::kDump: return "dump";
    case EventType::kMark: return "mark";
    case EventType::kElection: return "election";
    case EventType::kViewChange: return "view_change";
  }
  return "?";
}

const char* to_string(StallReason reason) noexcept {
  switch (reason) {
    case StallReason::kNoProgress: return "no_progress";
    case StallReason::kPollStuck: return "poll_stuck";
    case StallReason::kCkptWedged: return "ckpt_wedged";
  }
  return "?";
}

bool armed() noexcept { return g_armed.load(std::memory_order_relaxed); }

void record(EventType type, std::uint16_t code, std::uint32_t node,
            std::uint64_t round, std::uint64_t a, std::uint64_t b,
            std::uint64_t c) noexcept {
  if (!g_armed.load(std::memory_order_relaxed)) return;
  auto* ring = g_ring.load(std::memory_order_acquire);
  if (ring == nullptr) return;
  const std::uint64_t mask = g_mask.load(std::memory_order_relaxed);
  const std::uint64_t seq = g_seq.fetch_add(1, std::memory_order_relaxed);
  std::atomic<std::uint64_t>* slot = ring + (seq & mask) * kSlotWords;
  slot[0].store(0, std::memory_order_release);  // mark mid-write
  slot[1].store(wall_ns_now(), std::memory_order_relaxed);
  slot[2].store(static_cast<std::uint64_t>(type) |
                    (static_cast<std::uint64_t>(code) << 16) |
                    (static_cast<std::uint64_t>(node) << 32),
                std::memory_order_relaxed);
  slot[3].store(round, std::memory_order_relaxed);
  slot[4].store(a, std::memory_order_relaxed);
  slot[5].store(b, std::memory_order_relaxed);
  slot[6].store(c, std::memory_order_relaxed);
  slot[7].store(0, std::memory_order_relaxed);
  slot[0].store(seq + 1, std::memory_order_release);  // stored seq is seq+1
}

void set_phase(std::uint16_t phase, std::uint64_t round,
               std::uint64_t deadline_ns) noexcept {
  if (!g_armed.load(std::memory_order_relaxed)) return;
  g_phase.store(phase, std::memory_order_relaxed);
  g_round.store(round, std::memory_order_relaxed);
  g_phase_deadline_ns.store(deadline_ns, std::memory_order_relaxed);
}

void note_progress(std::uint64_t round) noexcept {
  if (!g_armed.load(std::memory_order_relaxed)) return;
  g_round.store(round, std::memory_order_relaxed);
  g_last_progress_ns.store(wall_ns_now(), std::memory_order_relaxed);
}

void note_poll_tick() noexcept {
  if (!g_armed.load(std::memory_order_relaxed)) return;
  g_last_poll_ns.store(wall_ns_now(), std::memory_order_relaxed);
}

void note_ckpt_busy(bool busy) noexcept {
  if (!g_armed.load(std::memory_order_relaxed)) return;
  g_ckpt_busy_since_ns.store(busy ? wall_ns_now() : 0, std::memory_order_relaxed);
}

void set_peer(std::uint32_t node, std::uint16_t state, std::uint64_t round) noexcept {
  if (!g_armed.load(std::memory_order_relaxed)) return;
  const std::uint64_t key = static_cast<std::uint64_t>(node) + 1;
  // First pass: update an existing entry; second: claim an empty slot.
  for (std::size_t i = 0; i < kMaxPeers; ++i) {
    if (g_peers[i].key.load(std::memory_order_acquire) == key) {
      g_peers[i].state.store(state, std::memory_order_relaxed);
      g_peers[i].round.store(round, std::memory_order_relaxed);
      return;
    }
  }
  for (std::size_t i = 0; i < kMaxPeers; ++i) {
    std::uint64_t expected = 0;
    if (g_peers[i].key.compare_exchange_strong(expected, key,
                                               std::memory_order_acq_rel)) {
      g_peers[i].state.store(state, std::memory_order_relaxed);
      g_peers[i].round.store(round, std::memory_order_relaxed);
      return;
    }
    if (expected == key) {  // lost the race to ourselves on another thread
      g_peers[i].state.store(state, std::memory_order_relaxed);
      g_peers[i].round.store(round, std::memory_order_relaxed);
      return;
    }
  }
  g_peers_dropped.fetch_add(1, std::memory_order_relaxed);
}

Options declare_cli(util::Cli& cli) {
  Options options;
  options.dir = cli.str(
      "blackbox-dir", "",
      "write flight-recorder crash/stall dumps into this directory (empty = off)");
  const auto ring = cli.integer("blackbox-ring", 4096,
                                "flight-recorder ring capacity in events");
  options.ring_capacity = ring < 16 ? 16 : static_cast<std::size_t>(ring);
  options.stall_after_s = cli.real(
      "stall-after", 0.0,
      "watchdog: record blackbox_stall + dump after this many seconds "
      "without progress (0 = watchdog off)");
  return options;
}

bool arm(const Options& options, std::uint32_t node_id) {
  std::lock_guard<std::mutex> lk(g_mu);
  // Tear down any previous arming first (watchdog + handlers), but retire
  // the old ring instead of freeing it: a record() racing the re-arm must
  // never touch freed memory.
  stop_watchdog();
  if (g_handlers_installed) {
    for (std::size_t i = 0; i < 3; ++i) {
      ::sigaction(g_handled_sigs[i], &g_old_actions[i], nullptr);
    }
    g_handlers_installed = false;
  }
  g_armed.store(false, std::memory_order_relaxed);
  if (options.dir.empty()) return false;

  std::filesystem::create_directories(options.dir);

  std::size_t capacity = 16;
  while (capacity < options.ring_capacity) capacity <<= 1;
  auto ring = std::unique_ptr<std::atomic<std::uint64_t>[]>(
      new std::atomic<std::uint64_t>[capacity * kSlotWords]());
  if (g_live_ring != nullptr) g_retired_rings.push_back(std::move(g_live_ring));
  g_live_ring = std::move(ring);
  g_ring.store(g_live_ring.get(), std::memory_order_release);
  g_mask.store(capacity - 1, std::memory_order_relaxed);
  g_capacity.store(capacity, std::memory_order_relaxed);
  g_seq.store(0, std::memory_order_relaxed);
  for (auto& peer : g_peers) {
    peer.key.store(0, std::memory_order_relaxed);
    peer.state.store(0, std::memory_order_relaxed);
    peer.round.store(0, std::memory_order_relaxed);
  }
  g_peers_dropped.store(0, std::memory_order_relaxed);
  g_node.store(node_id, std::memory_order_relaxed);
  g_round.store(0, std::memory_order_relaxed);
  g_phase.store(1, std::memory_order_relaxed);
  g_phase_deadline_ns.store(0, std::memory_order_relaxed);
  const std::uint64_t now = wall_ns_now();
  g_last_progress_ns.store(now, std::memory_order_relaxed);
  g_last_poll_ns.store(0, std::memory_order_relaxed);  // until the first tick
  g_ckpt_busy_since_ns.store(0, std::memory_order_relaxed);
  g_dumping.store(false, std::memory_order_relaxed);
  g_last_dump_events.store(0, std::memory_order_relaxed);

  // Pre-reserve the dump buffer: header + three framed sections + slack.
  const std::size_t need = 16 + 3 * 12 + 9 * 8 + 8 + kMaxPeers * 16 +
                           capacity * kSlotWords * 8 + 256;
  g_dump_buf_owner = std::make_unique<std::uint8_t[]>(need);
  g_dump_buf = g_dump_buf_owner.get();
  g_dump_cap = need;
  std::snprintf(g_dump_path, sizeof g_dump_path, "%s/blackbox-node%u.abbx",
                options.dir.c_str(), node_id);
  std::snprintf(g_jsonl_path, sizeof g_jsonl_path, "%s/blackbox-node%u.jsonl",
                options.dir.c_str(), node_id);

  if (options.handlers) {
    struct sigaction sa;
    std::memset(&sa, 0, sizeof sa);
    sa.sa_handler = crash_handler;
    sigemptyset(&sa.sa_mask);
    for (std::size_t i = 0; i < 3; ++i) {
      ::sigaction(g_handled_sigs[i], &sa, &g_old_actions[i]);
    }
    g_handlers_installed = true;
  }

  g_armed.store(true, std::memory_order_release);

  if (options.stall_after_s > 0.0) {
    g_wd = new WatchdogCtx;
    g_wd->threshold_s = options.stall_after_s;
    g_wd_pid = ::getpid();
    g_wd->thread = std::thread(watchdog_loop, g_wd);
  }
  return true;
}

void disarm() {
  std::lock_guard<std::mutex> lk(g_mu);
  stop_watchdog();
  if (g_handlers_installed) {
    for (std::size_t i = 0; i < 3; ++i) {
      ::sigaction(g_handled_sigs[i], &g_old_actions[i], nullptr);
    }
    g_handlers_installed = false;
  }
  g_armed.store(false, std::memory_order_relaxed);
}

std::string dump_path() {
  return g_armed.load(std::memory_order_relaxed) ? std::string(g_dump_path)
                                                 : std::string();
}

bool dump_now(std::uint64_t reason) {
  if (!g_armed.load(std::memory_order_relaxed)) return false;
  bool expected = false;
  if (!g_dumping.compare_exchange_strong(expected, true,
                                         std::memory_order_acq_rel)) {
    return false;  // crash handler or another dump in flight
  }
  const std::size_t bytes = write_dump_raw(reason);
  g_dumping.store(false, std::memory_order_release);
  if (bytes == 0) return false;
  emit_dump_record(reason, bytes);
  return true;
}

// ---- decoder ---------------------------------------------------------------

namespace {

std::uint32_t read_u32(const std::uint8_t* p) noexcept {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t read_u64(const std::uint8_t* p) noexcept {
  return static_cast<std::uint64_t>(read_u32(p)) |
         (static_cast<std::uint64_t>(read_u32(p + 4)) << 32);
}

void decode_meta(const std::uint8_t* p, std::size_t n, Dump& dump) {
  if (n < 9 * 8) {
    dump.warnings.emplace_back("META section shorter than expected; partial meta");
  }
  const auto get = [&](std::size_t index) -> std::uint64_t {
    return (index + 1) * 8 <= n ? read_u64(p + index * 8) : 0;
  };
  dump.node = get(0);
  dump.round = get(1);
  dump.phase = get(2);
  dump.phase_deadline_ns = get(3);
  dump.wall_ns = get(4);
  dump.reason = get(5);
  // get(6)=ring capacity, get(7)=next seq — implied by the RING section.
  dump.peers_dropped = get(8);
}

void decode_peers(const std::uint8_t* p, std::size_t n, Dump& dump) {
  if (n < 8) {
    dump.warnings.emplace_back("PEERS section truncated before the count");
    return;
  }
  const std::uint64_t declared = read_u64(p);
  std::size_t off = 8;
  while (off + 16 <= n) {
    PeerEntry peer;
    peer.node = read_u32(p + off);
    peer.state = static_cast<std::uint16_t>(read_u32(p + off + 4));
    peer.round = read_u64(p + off + 8);
    dump.peers.push_back(peer);
    off += 16;
  }
  if (dump.peers.size() != declared) {
    dump.warnings.emplace_back("PEERS count mismatch (declared " +
                               std::to_string(declared) + ", decoded " +
                               std::to_string(dump.peers.size()) + ")");
  }
}

void decode_ring(const std::uint8_t* p, std::size_t n, Dump& dump) {
  constexpr std::size_t kSlotBytes = kSlotWords * 8;
  if (n % kSlotBytes != 0) {
    dump.warnings.emplace_back("RING section not a whole number of slots; tail ignored");
  }
  for (std::size_t off = 0; off + kSlotBytes <= n; off += kSlotBytes) {
    const std::uint64_t seq_word = read_u64(p + off);
    if (seq_word == 0) continue;  // empty or mid-write
    Event event;
    event.seq = seq_word - 1;
    event.wall_ns = read_u64(p + off + 8);
    const std::uint64_t packed = read_u64(p + off + 16);
    event.type = static_cast<std::uint16_t>(packed & 0xFFFF);
    event.code = static_cast<std::uint16_t>((packed >> 16) & 0xFFFF);
    event.node = static_cast<std::uint32_t>(packed >> 32);
    event.round = read_u64(p + off + 24);
    event.a = read_u64(p + off + 32);
    event.b = read_u64(p + off + 40);
    event.c = read_u64(p + off + 48);
    dump.events.push_back(event);
  }
  std::sort(dump.events.begin(), dump.events.end(),
            [](const Event& x, const Event& y) { return x.seq < y.seq; });
}

}  // namespace

std::optional<Dump> read_dump(const std::string& path, std::string& error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    error = "cannot open " + path;
    return std::nullopt;
  }
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  if (bytes.size() < 8 || read_u32(bytes.data()) != kMagic) {
    error = path + " is not an .abbx dump (bad magic)";
    return std::nullopt;
  }
  Dump dump;
  dump.version = read_u32(bytes.data() + 4);
  if (dump.version != kVersion) {
    dump.warnings.emplace_back("unknown version " + std::to_string(dump.version) +
                               "; decoding as v1");
  }
  std::size_t off = 8;
  bool saw_meta = false, saw_ring = false;
  while (off + 8 <= bytes.size()) {
    const std::uint32_t tag = read_u32(bytes.data() + off);
    const std::uint32_t len = read_u32(bytes.data() + off + 4);
    off += 8;
    if (off + len + 4 > bytes.size()) {
      dump.warnings.emplace_back("truncated section (tag " + std::to_string(tag) +
                                 "); dump was cut off mid-write");
      break;
    }
    const std::uint8_t* payload = bytes.data() + off;
    const std::uint32_t stored_crc = read_u32(payload + len);
    const std::uint32_t actual_crc = crc32(payload, len);
    if (stored_crc != actual_crc) {
      dump.warnings.emplace_back("section tag " + std::to_string(tag) +
                                 " failed its CRC; skipped");
      off += len + 4;
      continue;
    }
    switch (tag) {
      case kSecMeta:
        decode_meta(payload, len, dump);
        saw_meta = true;
        break;
      case kSecPeers:
        decode_peers(payload, len, dump);
        break;
      case kSecRing:
        decode_ring(payload, len, dump);
        saw_ring = true;
        break;
      default:
        dump.warnings.emplace_back("unknown section tag " + std::to_string(tag) +
                                   "; skipped");
        break;
    }
    off += len + 4;
  }
  if (!saw_meta) dump.warnings.emplace_back("no META section survived");
  if (!saw_ring) dump.warnings.emplace_back("no RING section survived");
  return dump;
}

}  // namespace abdhfl::obs::blackbox
