#include "obs/metrics.hpp"

#include <algorithm>
#include <stdexcept>

namespace abdhfl::obs {

namespace {
std::atomic<bool> g_enabled{false};
std::atomic<std::uint32_t> g_next_thread_ordinal{0};
}  // namespace

bool enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) noexcept { g_enabled.store(on, std::memory_order_relaxed); }

std::size_t stripe_index() noexcept {
  thread_local const std::size_t index =
      g_next_thread_ordinal.fetch_add(1, std::memory_order_relaxed) % kStripes;
  return index;
}

std::uint64_t Counter::value() const noexcept {
  std::uint64_t total = 0;
  for (const auto& cell : cells_) total += cell.v.load(std::memory_order_relaxed);
  return total;
}

void Gauge::add(double delta) noexcept {
  double cur = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(cur, cur + delta, std::memory_order_relaxed)) {
  }
}

Histogram::Histogram(std::vector<double> upper_bounds) : bounds_(std::move(upper_bounds)) {
  if (bounds_.empty()) throw std::invalid_argument("Histogram: no buckets");
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw std::invalid_argument("Histogram: bounds must be ascending");
  }
  for (auto& stripe : stripes_) {
    stripe.buckets = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
    for (std::size_t b = 0; b <= bounds_.size(); ++b) stripe.buckets[b] = 0;
  }
}

void Histogram::observe(double v) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto bucket = static_cast<std::size_t>(it - bounds_.begin());
  auto& stripe = stripes_[stripe_index()];
  stripe.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  double cur = stripe.sum.load(std::memory_order_relaxed);
  while (!stripe.sum.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
  stripe.count.fetch_add(1, std::memory_order_relaxed);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1, 0);
  for (const auto& stripe : stripes_) {
    for (std::size_t b = 0; b < out.size(); ++b) {
      out[b] += stripe.buckets[b].load(std::memory_order_relaxed);
    }
  }
  return out;
}

double Histogram::sum() const noexcept {
  double total = 0.0;
  for (const auto& stripe : stripes_) total += stripe.sum.load(std::memory_order_relaxed);
  return total;
}

std::uint64_t Histogram::count() const noexcept {
  std::uint64_t total = 0;
  for (const auto& stripe : stripes_) {
    total += stripe.count.load(std::memory_order_relaxed);
  }
  return total;
}

Counter& MetricsRegistry::counter(const std::string& name, const std::string& help) {
  std::lock_guard lock(mutex_);
  auto& entry = metrics_[name];
  if (entry.counter) return *entry.counter;
  if (entry.gauge || entry.histogram) {
    throw std::invalid_argument("metric registered with a different kind: " + name);
  }
  entry.kind = MetricKind::kCounter;
  entry.help = help;
  entry.counter = std::make_unique<Counter>();
  return *entry.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const std::string& help) {
  std::lock_guard lock(mutex_);
  auto& entry = metrics_[name];
  if (entry.gauge) return *entry.gauge;
  if (entry.counter || entry.histogram) {
    throw std::invalid_argument("metric registered with a different kind: " + name);
  }
  entry.kind = MetricKind::kGauge;
  entry.help = help;
  entry.gauge = std::make_unique<Gauge>();
  return *entry.gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> upper_bounds,
                                      const std::string& help) {
  std::lock_guard lock(mutex_);
  auto& entry = metrics_[name];
  if (entry.histogram) return *entry.histogram;
  if (entry.counter || entry.gauge) {
    throw std::invalid_argument("metric registered with a different kind: " + name);
  }
  entry.kind = MetricKind::kHistogram;
  entry.help = help;
  entry.histogram = std::make_unique<Histogram>(std::move(upper_bounds));
  return *entry.histogram;
}

std::vector<MetricValue> MetricsRegistry::scrape() const {
  std::lock_guard lock(mutex_);
  std::vector<MetricValue> out;
  out.reserve(metrics_.size());
  for (const auto& [name, entry] : metrics_) {
    MetricValue v;
    v.name = name;
    v.help = entry.help;
    v.kind = entry.kind;
    switch (entry.kind) {
      case MetricKind::kCounter:
        v.value = static_cast<double>(entry.counter->value());
        break;
      case MetricKind::kGauge:
        v.value = entry.gauge->value();
        break;
      case MetricKind::kHistogram:
        v.bounds = entry.histogram->bounds();
        v.buckets = entry.histogram->bucket_counts();
        v.sum = entry.histogram->sum();
        v.count = entry.histogram->count();
        break;
    }
    out.push_back(std::move(v));
  }
  return out;
}

MetricsRegistry& global_registry() {
  static MetricsRegistry registry;
  return registry;
}

std::vector<double> exponential_bounds(double start, double factor, std::size_t count) {
  if (start <= 0.0 || factor <= 1.0 || count == 0) {
    throw std::invalid_argument("exponential_bounds: bad parameters");
  }
  std::vector<double> out(count);
  double bound = start;
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = bound;
    bound *= factor;
  }
  return out;
}

}  // namespace abdhfl::obs
