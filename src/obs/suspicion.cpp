#include "obs/suspicion.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "util/stats.hpp"

namespace abdhfl::obs {

SuspicionLedger::SuspicionLedger(std::size_t num_nodes, std::size_t num_levels,
                                 double ewma_lambda)
    : nodes_(num_nodes), levels_(num_levels), lambda_(ewma_lambda) {
  if (num_nodes == 0 || num_levels == 0) {
    throw std::invalid_argument("SuspicionLedger: zero nodes or levels");
  }
  if (!(ewma_lambda > 0.0) || ewma_lambda > 1.0) {
    throw std::invalid_argument("SuspicionLedger: lambda out of (0,1]");
  }
  ewma_.assign(nodes_ * levels_, 0.0);
  round_.assign(nodes_ * levels_, 0.0);
  filter_events_.assign(nodes_, 0);
  observations_.assign(nodes_, 0);
}

void SuspicionLedger::observe(std::size_t node, std::size_t level, bool kept,
                              double relative_score) {
  if (node >= nodes_ || level >= levels_) {
    throw std::out_of_range("SuspicionLedger::observe: node/level out of range");
  }
  round_[node * levels_ + level] += (kept ? 0.0 : 1.0) + relative_score;
  ++observations_[node];
  if (!kept) ++filter_events_[node];
}

void SuspicionLedger::commit_round() {
  for (std::size_t i = 0; i < ewma_.size(); ++i) {
    ewma_[i] = (1.0 - lambda_) * ewma_[i] + lambda_ * round_[i];
    round_[i] = 0.0;
  }
  ++rounds_;
}

double SuspicionLedger::suspicion(std::size_t node) const {
  if (node >= nodes_) throw std::out_of_range("SuspicionLedger::suspicion");
  double total = 0.0;
  for (std::size_t l = 0; l < levels_; ++l) total += ewma_[node * levels_ + l];
  return total;
}

double SuspicionLedger::suspicion(std::size_t node, std::size_t level) const {
  if (node >= nodes_ || level >= levels_) {
    throw std::out_of_range("SuspicionLedger::suspicion");
  }
  return ewma_[node * levels_ + level];
}

std::uint64_t SuspicionLedger::filter_events(std::size_t node) const {
  if (node >= nodes_) throw std::out_of_range("SuspicionLedger::filter_events");
  return filter_events_[node];
}

std::uint64_t SuspicionLedger::observations(std::size_t node) const {
  if (node >= nodes_) throw std::out_of_range("SuspicionLedger::observations");
  return observations_[node];
}

std::vector<std::size_t> SuspicionLedger::ranking() const {
  std::vector<double> total(nodes_);
  for (std::size_t n = 0; n < nodes_; ++n) total[n] = suspicion(n);
  std::vector<std::size_t> order(nodes_);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) { return total[a] > total[b]; });
  return order;
}

std::vector<NodeSuspicion> SuspicionLedger::snapshot() const {
  std::vector<NodeSuspicion> out(nodes_);
  for (std::size_t n = 0; n < nodes_; ++n) {
    out[n].node = n;
    out[n].per_level.resize(levels_);
    for (std::size_t l = 0; l < levels_; ++l) {
      out[n].per_level[l] = ewma_[n * levels_ + l];
      out[n].total += out[n].per_level[l];
    }
    out[n].filter_events = filter_events_[n];
    out[n].observations = observations_[n];
  }
  return out;
}

SuspicionLedger::LedgerState SuspicionLedger::state() const {
  LedgerState s;
  s.rounds = rounds_;
  s.ewma = ewma_;
  s.round = round_;
  s.filter_events = filter_events_;
  s.observations = observations_;
  return s;
}

void SuspicionLedger::set_state(const LedgerState& s) {
  if (s.ewma.size() != nodes_ * levels_ || s.round.size() != nodes_ * levels_ ||
      s.filter_events.size() != nodes_ || s.observations.size() != nodes_) {
    throw std::invalid_argument("SuspicionLedger::set_state: geometry mismatch");
  }
  rounds_ = s.rounds;
  ewma_ = s.ewma;
  round_ = s.round;
  filter_events_ = s.filter_events;
  observations_ = s.observations;
}

std::vector<double> relative_scores(std::span<const double> scores) {
  std::vector<double> out(scores.begin(), scores.end());
  if (out.empty()) return out;
  double denom = util::median_of(out);
  if (denom <= 0.0) denom = util::mean(out);
  if (denom <= 0.0) {
    std::fill(out.begin(), out.end(), 0.0);
    return out;
  }
  for (double& s : out) s /= denom;
  return out;
}

FilterQuality filter_quality(const std::vector<bool>& flagged,
                             const std::vector<bool>& byzantine) {
  if (flagged.size() != byzantine.size()) {
    throw std::invalid_argument("filter_quality: mask size mismatch");
  }
  FilterQuality q;
  for (std::size_t i = 0; i < flagged.size(); ++i) {
    if (flagged[i]) ++q.flagged;
    if (byzantine[i]) ++q.byzantine;
    if (flagged[i] && byzantine[i]) ++q.true_positives;
  }
  if (q.flagged > 0) {
    q.precision = static_cast<double>(q.true_positives) / static_cast<double>(q.flagged);
  }
  if (q.byzantine > 0) {
    q.recall = static_cast<double>(q.true_positives) / static_cast<double>(q.byzantine);
  }
  if (q.precision + q.recall > 0.0) {
    q.f1 = 2.0 * q.precision * q.recall / (q.precision + q.recall);
  }
  return q;
}

double separation_auc(std::span<const double> byzantine, std::span<const double> honest) {
  if (byzantine.empty() || honest.empty()) return 0.5;
  // Average-rank Mann-Whitney U: pool both groups, rank ascending with ties
  // sharing their average rank, then AUC = (R_byz − n_b(n_b+1)/2) / (n_b n_h).
  struct Entry {
    double value;
    bool byz;
  };
  std::vector<Entry> pool;
  pool.reserve(byzantine.size() + honest.size());
  for (double v : byzantine) pool.push_back({v, true});
  for (double v : honest) pool.push_back({v, false});
  std::sort(pool.begin(), pool.end(),
            [](const Entry& a, const Entry& b) { return a.value < b.value; });

  double rank_sum_byz = 0.0;
  std::size_t i = 0;
  while (i < pool.size()) {
    std::size_t j = i;
    while (j < pool.size() && pool[j].value == pool[i].value) ++j;
    // 1-based ranks i+1 .. j share the average rank.
    const double avg_rank = 0.5 * static_cast<double>(i + 1 + j);
    for (std::size_t k = i; k < j; ++k) {
      if (pool[k].byz) rank_sum_byz += avg_rank;
    }
    i = j;
  }
  const auto nb = static_cast<double>(byzantine.size());
  const auto nh = static_cast<double>(honest.size());
  const double u = rank_sum_byz - nb * (nb + 1.0) / 2.0;
  return u / (nb * nh);
}

}  // namespace abdhfl::obs
