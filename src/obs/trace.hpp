#pragma once
// Bounded in-memory tracing: instantaneous events and nested RAII spans.
//
// One TraceEvent type serves both clocks in the system: the discrete-event
// runners push events stamped with *simulated* seconds (the Fig. 2
// timeline), and wall-clock Spans push events stamped with real seconds
// since their buffer's construction.  The buffer is a hard-bounded vector —
// when full, new events are dropped and counted rather than growing without
// limit inside a long run.
//
// Distributed tracing (DESIGN.md §12): every span additionally carries a
// 64-bit trace id (derived from run seed + round, identical on every
// process), a process-unique span id, and its parent's span id.  Parents
// come from a thread-local stack of open spans, or explicitly from a
// SpanContext when the causal edge crosses a process boundary (the net
// transports stamp the sending span's id into the frame and the receiver
// parents its net_recv span to it).  Durations are measured on
// steady_clock; a separate wall_ns start stamp (system_clock) is what the
// cross-process merge tool aligns after clock-offset correction, so an NTP
// step on one host can never corrupt a span length.

#include <chrono>
#include <cstdint>
#include <atomic>
#include <mutex>
#include <string>
#include <vector>

namespace abdhfl::obs {

struct TraceEvent {
  double time = 0.0;      // seconds: simulated time, or wall time since the buffer epoch
  std::size_t round = 0;
  const char* kind = "";  // static-lifetime string ("train", "agg_done", ...)
  std::uint32_t subject = 0;  // device id / cluster index, event-family defined
  std::size_t level = 0;      // tree level for aggregation events (0 = top)
  double duration = 0.0;      // seconds; 0 = instantaneous event
  std::uint32_t depth = 0;    // span nesting depth (0 = outermost)
  // Distributed-tracing fields; all-zero for plain local events.
  std::uint32_t node = 0;              // originating process/node id
  std::uint64_t trace_id = 0;          // run seed + round, shared across processes
  std::uint64_t span_id = 0;           // unique per span; 0 = not a linked span
  std::uint64_t parent_span_id = 0;    // 0 = top-level span
  std::int64_t wall_ns = 0;            // system_clock start, ns since Unix epoch
};

/// The deterministic per-round trace id every process derives independently:
/// the same (seed, round) pair yields the same id on root and workers, which
/// is what lets trace_merge group one causal tree per round.
[[nodiscard]] constexpr std::uint64_t make_trace_id(std::uint64_t seed,
                                                    std::uint64_t round) noexcept {
  return (seed + 1) * 0x9E3779B97F4A7C15ULL ^ (round + 1);
}

/// system_clock now in nanoseconds since the Unix epoch (the cross-process
/// timestamp; durations always come from steady_clock).
[[nodiscard]] std::int64_t wall_clock_ns() noexcept;

/// Explicit causal placement for a Span, used when the parent relationship
/// does not come from the thread-local nesting stack: a receiving transport
/// parents its net_recv span to the remote sender's span id, and round-root
/// spans pass has_parent=true with parent_span_id=0 to detach from whatever
/// handler span happens to be open.
struct SpanContext {
  std::uint64_t trace_id = 0;        // 0 = take the buffer's current trace id
  std::uint64_t parent_span_id = 0;  // meaningful only when has_parent
  bool has_parent = false;
};

/// Thread-safe bounded event sink.
class TraceBuffer {
 public:
  explicit TraceBuffer(std::size_t capacity = std::size_t{1} << 16);

  /// Append; silently dropped (and counted, both here and on the
  /// `trace_dropped_events_total` registry counter) once the buffer is full.
  void push(const TraceEvent& ev);

  [[nodiscard]] std::vector<TraceEvent> snapshot() const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::uint64_t dropped() const;

  /// Wall seconds elapsed since this buffer was constructed (the epoch every
  /// Span's `time` is relative to).
  [[nodiscard]] double seconds_since_epoch() const noexcept;

  /// Process/node tag stamped on every span recorded into this buffer.
  void set_node(std::uint32_t node) noexcept {
    node_.store(node, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint32_t node() const noexcept {
    return node_.load(std::memory_order_relaxed);
  }

  /// Current trace id (per-round, see make_trace_id); spans without an
  /// explicit SpanContext trace id inherit it at construction.
  void set_trace_id(std::uint64_t id) noexcept {
    trace_id_.store(id, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t current_trace_id() const noexcept {
    return trace_id_.load(std::memory_order_relaxed);
  }

  /// Estimated offset of this process's wall clock from the federation
  /// root's (root_wall ≈ local_wall + offset); measured NTP-style by the
  /// node layer and consumed by tools/trace_merge via the trace_summary
  /// line.
  void set_clock_offset_ns(std::int64_t ns) noexcept {
    clock_offset_ns_.store(ns, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t clock_offset_ns() const noexcept {
    return clock_offset_ns_.load(std::memory_order_relaxed);
  }

  /// Fresh process-unique span id: the node tag in the high bits keeps ids
  /// from colliding across the processes whose buffers are later merged.
  [[nodiscard]] std::uint64_t next_span_id() noexcept {
    return ((std::uint64_t{node_.load(std::memory_order_relaxed)} + 1) << 40) |
           (span_counter_.fetch_add(1, std::memory_order_relaxed) + 1);
  }

 private:
  std::size_t capacity_;
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
  std::uint64_t dropped_ = 0;
  std::atomic<std::uint32_t> node_{0};
  std::atomic<std::uint64_t> trace_id_{0};
  std::atomic<std::int64_t> clock_offset_ns_{0};
  std::atomic<std::uint64_t> span_counter_{0};
};

/// RAII wall-clock span.  Construction notes the start, destruction records
/// one TraceEvent with `time` = start offset and `duration` = elapsed.
/// Spans nest: a thread-local depth counter tags each event so an exporter
/// can rebuild the train -> aggregate -> consensus -> broadcast hierarchy,
/// and a thread-local stack of open span ids supplies each span's parent.
/// A null buffer makes the span inert (no clock reads).
class Span {
 public:
  Span(TraceBuffer* buffer, const char* kind, std::size_t round = 0,
       std::uint32_t subject = 0, std::size_t level = 0);
  /// Explicitly placed span: trace id and/or parent from `ctx` instead of
  /// the buffer's current trace id and the thread-local span stack.
  Span(TraceBuffer* buffer, const char* kind, const SpanContext& ctx,
       std::size_t round = 0, std::uint32_t subject = 0, std::size_t level = 0);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Ids for stamping outgoing frames (0 when the span is inert).
  [[nodiscard]] std::uint64_t id() const noexcept { return span_id_; }
  [[nodiscard]] std::uint64_t trace_id() const noexcept { return trace_id_; }
  [[nodiscard]] std::uint64_t parent_id() const noexcept { return parent_id_; }
  [[nodiscard]] std::int64_t wall_ns() const noexcept { return wall_ns_; }

 private:
  void open(const SpanContext* ctx);

  TraceBuffer* buffer_;
  const char* kind_;
  std::size_t round_;
  std::uint32_t subject_;
  std::size_t level_;
  std::uint32_t depth_ = 0;
  std::uint64_t trace_id_ = 0;
  std::uint64_t span_id_ = 0;
  std::uint64_t parent_id_ = 0;
  std::int64_t wall_ns_ = 0;
  std::chrono::steady_clock::time_point start_{};
};

/// Id of the innermost open span on this thread (0 when none).  What a
/// transport would use to parent a frame sent outside any explicit span.
[[nodiscard]] std::uint64_t current_span_id() noexcept;

/// RAII accumulator: adds its elapsed wall seconds to `acc` on destruction.
/// The cheap building block for per-round phase splits (the runner keeps a
/// plain double per phase and sums Scoped sections into it).
class ScopedTimer {
 public:
  explicit ScopedTimer(double& acc) noexcept
      : acc_(&acc), start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() { *acc_ += elapsed(); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Seconds since construction.
  [[nodiscard]] double elapsed() const noexcept {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  double* acc_;
  std::chrono::steady_clock::time_point start_;
};

/// CSV rendering: time,round,kind,subject,level,duration,depth plus the
/// distributed-tracing columns (node, hex ids, wall_ns).
[[nodiscard]] std::string trace_to_csv(const std::vector<TraceEvent>& trace);

/// JSONL rendering: one {"time":...,"kind":...} object per line.  Span and
/// trace ids render as 16-digit hex strings and wall_ns as a decimal string
/// — both exceed the 53-bit exact-integer range of a JSON double.
[[nodiscard]] std::string trace_to_jsonl(const std::vector<TraceEvent>& trace);

/// One `"kind":"trace_summary"` JSONL line carrying the buffer's node tag,
/// drop count, and estimated clock offset; appended after the events by
/// obs::write_outputs so tools/trace_merge can align per-process files.
[[nodiscard]] std::string trace_summary_jsonl(const TraceBuffer& buffer);

}  // namespace abdhfl::obs
