#pragma once
// Bounded in-memory tracing: instantaneous events and nested RAII spans.
//
// One TraceEvent type serves both clocks in the system: the discrete-event
// runners push events stamped with *simulated* seconds (the Fig. 2
// timeline), and wall-clock Spans push events stamped with real seconds
// since their buffer's construction.  The buffer is a hard-bounded vector —
// when full, new events are dropped and counted rather than growing without
// limit inside a long run.

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace abdhfl::obs {

struct TraceEvent {
  double time = 0.0;      // seconds: simulated time, or wall time since the buffer epoch
  std::size_t round = 0;
  const char* kind = "";  // static-lifetime string ("train", "agg_done", ...)
  std::uint32_t subject = 0;  // device id / cluster index, event-family defined
  std::size_t level = 0;      // tree level for aggregation events (0 = top)
  double duration = 0.0;      // seconds; 0 = instantaneous event
  std::uint32_t depth = 0;    // span nesting depth (0 = outermost)
};

/// Thread-safe bounded event sink.
class TraceBuffer {
 public:
  explicit TraceBuffer(std::size_t capacity = std::size_t{1} << 16);

  /// Append; silently dropped (and counted) once the buffer is full.
  void push(const TraceEvent& ev);

  [[nodiscard]] std::vector<TraceEvent> snapshot() const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::uint64_t dropped() const;

  /// Wall seconds elapsed since this buffer was constructed (the epoch every
  /// Span's `time` is relative to).
  [[nodiscard]] double seconds_since_epoch() const noexcept;

 private:
  std::size_t capacity_;
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
  std::uint64_t dropped_ = 0;
};

/// RAII wall-clock span.  Construction notes the start, destruction records
/// one TraceEvent with `time` = start offset and `duration` = elapsed.
/// Spans nest: a thread-local depth counter tags each event so an exporter
/// can rebuild the train -> aggregate -> consensus -> broadcast hierarchy.
/// A null buffer makes the span inert (no clock reads).
class Span {
 public:
  Span(TraceBuffer* buffer, const char* kind, std::size_t round = 0,
       std::uint32_t subject = 0, std::size_t level = 0);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  TraceBuffer* buffer_;
  const char* kind_;
  std::size_t round_;
  std::uint32_t subject_;
  std::size_t level_;
  std::uint32_t depth_ = 0;
  std::chrono::steady_clock::time_point start_{};
};

/// RAII accumulator: adds its elapsed wall seconds to `acc` on destruction.
/// The cheap building block for per-round phase splits (the runner keeps a
/// plain double per phase and sums Scoped sections into it).
class ScopedTimer {
 public:
  explicit ScopedTimer(double& acc) noexcept
      : acc_(&acc), start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() { *acc_ += elapsed(); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Seconds since construction.
  [[nodiscard]] double elapsed() const noexcept {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  double* acc_;
  std::chrono::steady_clock::time_point start_;
};

/// CSV rendering: time,round,kind,subject,level,duration,depth.
[[nodiscard]] std::string trace_to_csv(const std::vector<TraceEvent>& trace);

/// JSONL rendering: one {"time":...,"kind":...} object per line.
[[nodiscard]] std::string trace_to_jsonl(const std::vector<TraceEvent>& trace);

}  // namespace abdhfl::obs
