#pragma once
// Per-round run records: the machine-readable time series behind every
// paper claim (Table V accuracy trajectories, Fig. 3 convergence bands,
// pipeline speedups).
//
// A runner calls begin_round() once per global round and fills the returned
// record with named numeric fields (phase wall-clock splits, filtered-update
// counts, consensus traffic, accuracy, ...).  Field order is preserved, so
// exports read in the order the runner emitted.  The Recorder is single-
// writer: runners emit rounds from one thread; exports happen after run().

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace abdhfl::obs {

struct RoundRecord {
  std::string runner;  // "hfl", "vanilla", "async", "pipeline"
  std::size_t round = 0;
  std::vector<std::pair<std::string, double>> fields;  // insertion-ordered

  /// Overwrite an existing field or append a new one.
  void set(const std::string& key, double value);
  [[nodiscard]] double get(const std::string& key, double def = 0.0) const noexcept;
  [[nodiscard]] bool has(const std::string& key) const noexcept;
};

class Recorder {
 public:
  /// Append a record.  Context fields (set_context) are pre-populated so a
  /// sweep harness can tag every round of one run with e.g. the malicious
  /// fraction of that grid point.
  RoundRecord& begin_round(std::string runner, std::size_t round);

  void set_context(const std::string& key, double value);
  void clear_context();

  [[nodiscard]] const std::vector<RoundRecord>& records() const noexcept {
    return records_;
  }
  [[nodiscard]] bool empty() const noexcept { return records_.empty(); }

  /// One flat JSON object per line: {"runner":"hfl","round":0,...}.
  [[nodiscard]] std::string to_jsonl() const;

  /// CSV with the union of all field names, ordered by first appearance;
  /// rounds missing a field leave its cell empty.
  [[nodiscard]] std::string to_csv() const;

  /// Human summary: per field, p50/p95/p99 across all records (percentiles
  /// from util::percentile).  Meant for a quick look at where round time
  /// goes without leaving the terminal.
  [[nodiscard]] std::string summary() const;

 private:
  std::vector<RoundRecord> records_;
  std::vector<std::pair<std::string, double>> context_;
};

}  // namespace abdhfl::obs
