#pragma once
// Process-wide metrics: counters, gauges, and fixed-bucket histograms.
//
// Built in the spirit of util/log.hpp: near-zero cost when observability is
// off (one relaxed atomic load behind obs::enabled()), and uncontended when
// on.  Every counter and histogram is split into kStripes cache-line-padded
// cells; a thread writes only the cell selected by its (sequentially
// assigned) thread index, so the PR-1 parallel aggregation paths never bounce
// a shared line, and scrape() merges the per-thread shards into one value.
// All cells are relaxed atomics, which keeps the subsystem TSan-clean without
// fences on the hot path — metrics tolerate momentarily stale reads.
//
// Metric naming convention (see DESIGN.md §7): snake_case, `_total` suffix
// for counters, `_seconds`/`_bytes` unit suffixes, optional
// `{label="value"}` selector baked into the registered name (the Prometheus
// exporter splits it back out).

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace abdhfl::obs {

/// Master switch for the whole subsystem.  Off by default; the runners and
/// the sim skip their metric updates entirely while disabled.
[[nodiscard]] bool enabled() noexcept;
void set_enabled(bool on) noexcept;

/// Shard count of every striped metric.
inline constexpr std::size_t kStripes = 16;

/// This thread's shard index: a process-unique thread ordinal modulo
/// kStripes, assigned on first use (cheap thread_local read afterwards).
[[nodiscard]] std::size_t stripe_index() noexcept;

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept {
    cells_[stripe_index()].v.fetch_add(delta, std::memory_order_relaxed);
  }

  /// Merged value across all shards.
  [[nodiscard]] std::uint64_t value() const noexcept;

 private:
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Cell, kStripes> cells_{};
};

/// Last-write-wins instantaneous value (queue depth, utilization).  Writes
/// are rare, so a single atomic suffices — no striping.
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) noexcept;
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: `bounds` are ascending upper bounds; one implicit
/// +Inf bucket catches the rest.  observe() touches only the caller's shard.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v) noexcept;

  [[nodiscard]] const std::vector<double>& bounds() const noexcept { return bounds_; }
  /// Per-bucket counts merged across shards; size bounds().size() + 1 (the
  /// last entry is the +Inf bucket).  Not cumulative.
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;
  [[nodiscard]] double sum() const noexcept;
  [[nodiscard]] std::uint64_t count() const noexcept;

 private:
  struct alignas(64) Stripe {
    std::unique_ptr<std::atomic<std::uint64_t>[]> buckets;
    std::atomic<double> sum{0.0};
    std::atomic<std::uint64_t> count{0};
  };
  std::vector<double> bounds_;
  std::array<Stripe, kStripes> stripes_;
};

enum class MetricKind { kCounter, kGauge, kHistogram };

/// One metric as seen by scrape(): shards already merged.
struct MetricValue {
  std::string name;
  std::string help;
  MetricKind kind = MetricKind::kCounter;
  double value = 0.0;                  // counter / gauge
  std::vector<double> bounds;          // histogram upper bounds
  std::vector<std::uint64_t> buckets;  // histogram per-bucket counts (+Inf last)
  double sum = 0.0;
  std::uint64_t count = 0;
};

/// Name -> metric map with stable storage: references returned by
/// counter()/gauge()/histogram() stay valid for the registry's lifetime, so
/// call sites can cache them and skip the name lookup on the hot path.
/// Registration is idempotent (same name + kind returns the same object) and
/// throws std::invalid_argument when a name is re-registered as a different
/// kind.  Registration and scrape are thread-safe.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name, const std::string& help = "");
  Gauge& gauge(const std::string& name, const std::string& help = "");
  Histogram& histogram(const std::string& name, std::vector<double> upper_bounds,
                       const std::string& help = "");

  /// Merged snapshot of every registered metric, sorted by name.
  [[nodiscard]] std::vector<MetricValue> scrape() const;

 private:
  struct Entry {
    MetricKind kind = MetricKind::kCounter;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mutex_;
  std::map<std::string, Entry> metrics_;
};

/// Process-wide registry the runners, pool, and sim record into.
[[nodiscard]] MetricsRegistry& global_registry();

/// `count` ascending bounds start, start*factor, start*factor^2, ...
[[nodiscard]] std::vector<double> exponential_bounds(double start, double factor,
                                                     std::size_t count);

}  // namespace abdhfl::obs
