#include "obs/obs.hpp"

#include <stdexcept>

#include "util/cli.hpp"

namespace abdhfl::obs {

Options declare_cli(util::Cli& cli) {
  Options options;
  options.metrics_out = cli.str(
      "metrics-out", "", "write per-round run records here (see --metrics-format)");
  options.trace_out = cli.str("trace-out", "", "write a JSONL event trace here");
  options.format = cli.str("metrics-format", "jsonl",
                           "format of --metrics-out: jsonl, csv, or prom");
  if (options.format != "jsonl" && options.format != "csv" && options.format != "prom") {
    throw std::invalid_argument("--metrics-format must be jsonl, csv, or prom");
  }
  if (options.active()) set_enabled(true);
  return options;
}

void export_pool_metrics(MetricsRegistry& registry, const util::ThreadPool::Stats& stats,
                         std::size_t workers) {
  registry.gauge("pool_workers", "thread-pool worker count")
      .set(static_cast<double>(workers));
  registry.gauge("pool_queue_depth", "tasks currently queued")
      .set(static_cast<double>(stats.queue_depth));
  registry.gauge("pool_queue_peak", "high-water queue depth")
      .set(static_cast<double>(stats.queue_peak));
  registry.gauge("pool_tasks_submitted", "tasks submitted since start")
      .set(static_cast<double>(stats.submitted));
  registry.gauge("pool_tasks_completed", "tasks completed since start")
      .set(static_cast<double>(stats.completed));
  registry.gauge("pool_task_wait_seconds", "total enqueue-to-start wait")
      .set(stats.wait_seconds);
  registry.gauge("pool_task_busy_seconds", "total task execution time")
      .set(stats.busy_seconds);
  registry
      .gauge("pool_task_wait_seconds_mean", "mean enqueue-to-start wait per task")
      .set(stats.completed > 0 ? stats.wait_seconds / static_cast<double>(stats.completed)
                               : 0.0);
}

bool write_outputs(const Options& options, const Recorder& recorder,
                   const TraceBuffer* trace) {
  bool ok = true;
  if (!options.metrics_out.empty()) {
    export_pool_metrics(global_registry(), util::global_pool().stats(),
                        util::global_pool().size());
    std::string content;
    if (options.format == "csv") {
      content = recorder.to_csv();
    } else if (options.format == "prom") {
      content = to_prometheus(global_registry().scrape());
    } else {
      content = recorder.to_jsonl();
    }
    ok = write_text_file(options.metrics_out, content) && ok;
  }
  if (!options.trace_out.empty() && trace != nullptr) {
    // Events first, then one trace_summary line carrying the node tag, the
    // drop count (a truncated timeline must be visible, not silent), and the
    // estimated clock offset tools/trace_merge aligns per-process files with.
    std::string content = trace_to_jsonl(trace->snapshot());
    content += trace_summary_jsonl(*trace);
    ok = write_text_file(options.trace_out, content) && ok;
  }
  return ok;
}

}  // namespace abdhfl::obs
