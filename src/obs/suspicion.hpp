#pragma once
// Per-node suspicion ledger: the forensics core of the observability layer.
//
// Each aggregation call yields per-input verdicts (agg::AggTelemetry); the
// runners map verdict indices back to bottom-level device ids and feed every
// observation here.  The ledger folds one round's observations per node and
// level into an EWMA suspicion score, so a device that is repeatedly
// filtered — or that repeatedly submits updates scored far from its peers —
// climbs the ranking even when the filter's binary decision is ambiguous.
//
// The increment for one observation is
//
//     (kept ? 0 : 1) + relative_score
//
// where relative_score is the rule's distance/score for that input divided
// by the median score of the same call (see relative_scores()).  The score
// term is what separates honest-but-unlucky nodes from Byzantine ones: an
// honest update deterministically dropped by a tight filter contributes ~1
// per round, while a sign-flipped update scored orders of magnitude from the
// honest cloud contributes its (huge) relative score at every level that
// sees it.
//
// The ledger is topology-agnostic — it knows nothing about trees or
// aggregation rules, only node ids and level indices — so it lives in obs
// and depends only on util.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace abdhfl::obs {

/// One node's ledger state, for reporting.
struct NodeSuspicion {
  std::size_t node = 0;
  double total = 0.0;                 // sum of per-level EWMA scores
  std::vector<double> per_level;      // EWMA score per level (0 = top)
  std::uint64_t filter_events = 0;    // observations with kept == false
  std::uint64_t observations = 0;     // total observations
};

class SuspicionLedger {
 public:
  /// EWMA folding constant: s ← (1−λ)·s + λ·round_sum.  0.2 weights the
  /// last ~5 rounds most while keeping early-round evidence alive.
  static constexpr double kDefaultLambda = 0.2;

  SuspicionLedger(std::size_t num_nodes, std::size_t num_levels,
                  double ewma_lambda = kDefaultLambda);

  /// Record one verdict attributed to `node` at tree level `level` in the
  /// current round.  relative_score must be >= 0 (see relative_scores()).
  void observe(std::size_t node, std::size_t level, bool kept, double relative_score);

  /// Fold the current round's accumulated observations into the EWMA scores
  /// and reset the round accumulators.
  void commit_round();

  [[nodiscard]] std::size_t num_nodes() const noexcept { return nodes_; }
  [[nodiscard]] std::size_t num_levels() const noexcept { return levels_; }
  [[nodiscard]] std::size_t rounds_committed() const noexcept { return rounds_; }

  /// Total suspicion (sum of per-level EWMA scores).  Higher = more suspect.
  [[nodiscard]] double suspicion(std::size_t node) const;
  [[nodiscard]] double suspicion(std::size_t node, std::size_t level) const;
  [[nodiscard]] std::uint64_t filter_events(std::size_t node) const;
  [[nodiscard]] std::uint64_t observations(std::size_t node) const;

  /// Node ids sorted by descending total suspicion (stable: ties keep id
  /// order).
  [[nodiscard]] std::vector<std::size_t> ranking() const;

  /// Full per-node state, in node-id order.
  [[nodiscard]] std::vector<NodeSuspicion> snapshot() const;

  /// The ledger's complete mutable state, flat, for checkpointing.
  struct LedgerState {
    std::size_t rounds = 0;
    std::vector<double> ewma;                  // nodes x levels, row-major
    std::vector<double> round;                 // same layout
    std::vector<std::uint64_t> filter_events;  // per node
    std::vector<std::uint64_t> observations;   // per node
  };
  [[nodiscard]] LedgerState state() const;
  /// Restore a state captured by state() on a ledger of the same geometry;
  /// throws std::invalid_argument on a shape mismatch.
  void set_state(const LedgerState& s);

 private:
  std::size_t nodes_;
  std::size_t levels_;
  double lambda_;
  std::size_t rounds_ = 0;
  std::vector<double> ewma_;    // nodes_ x levels_, row-major by node
  std::vector<double> round_;   // current-round accumulators, same layout
  std::vector<std::uint64_t> filter_events_;
  std::vector<std::uint64_t> observations_;
};

/// Normalize one aggregation call's scores to a relative scale: each score
/// divided by the call's median score (falling back to the mean when the
/// median is 0, and to all-zeros when every score is 0).  This makes scores
/// comparable across rules and rounds — "how far from the typical input of
/// this call" — which is what the ledger accumulates.
[[nodiscard]] std::vector<double> relative_scores(std::span<const double> scores);

/// Detection quality of one round's "filtered ⇒ Byzantine" decisions at one
/// level.  precision = TP / flagged, recall = TP / byzantine; both 0 when
/// their denominator is 0 (f1 likewise).
struct FilterQuality {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  std::size_t flagged = 0;
  std::size_t true_positives = 0;
  std::size_t byzantine = 0;
};

/// Compare a per-node flagged mask against the ground-truth Byzantine mask
/// (same length; index = node id).
[[nodiscard]] FilterQuality filter_quality(const std::vector<bool>& flagged,
                                           const std::vector<bool>& byzantine);

/// Mann-Whitney AUC of the separation between Byzantine and honest score
/// distributions: P(score_byz > score_honest), ties counted 1/2, computed
/// with average ranks.  1.0 = perfect separation (every Byzantine above
/// every honest node), 0.5 = chance or either group empty.
[[nodiscard]] double separation_auc(std::span<const double> byzantine,
                                    std::span<const double> honest);

}  // namespace abdhfl::obs
