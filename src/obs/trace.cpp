#include "obs/trace.hpp"

#include <cinttypes>
#include <cstdio>

#include "obs/export.hpp"
#include "obs/metrics.hpp"

namespace abdhfl::obs {

namespace {
thread_local std::uint32_t t_span_depth = 0;
// Innermost-first stack of open spans on this thread; supplies the implicit
// parent (and the parent's trace id — a child always lands in its parent's
// trace even if the buffer's round counter advanced under it) for nested
// spans.  Grows to the deepest nesting seen and stays allocated (span
// open/close never allocates in steady state).
struct OpenSpan {
  std::uint64_t span_id = 0;
  std::uint64_t trace_id = 0;
};
thread_local std::vector<OpenSpan> t_span_stack;
}  // namespace

std::int64_t wall_clock_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

std::uint64_t current_span_id() noexcept {
  return t_span_stack.empty() ? 0 : t_span_stack.back().span_id;
}

TraceBuffer::TraceBuffer(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      epoch_(std::chrono::steady_clock::now()) {}

void TraceBuffer::push(const TraceEvent& ev) {
  {
    std::lock_guard lock(mutex_);
    if (events_.size() < capacity_) {
      events_.push_back(ev);
      if (events_.back().node == 0) {
        events_.back().node = node_.load(std::memory_order_relaxed);
      }
      return;
    }
    ++dropped_;
  }
  // Outside the buffer lock: the registry has its own synchronization, and
  // a saturated buffer is exactly when visibility matters most.
  if (enabled()) {
    global_registry()
        .counter("trace_dropped_events_total",
                 "trace events discarded because the TraceBuffer was full")
        .add(1);
  }
}

std::vector<TraceEvent> TraceBuffer::snapshot() const {
  std::lock_guard lock(mutex_);
  return events_;
}

std::size_t TraceBuffer::size() const {
  std::lock_guard lock(mutex_);
  return events_.size();
}

std::uint64_t TraceBuffer::dropped() const {
  std::lock_guard lock(mutex_);
  return dropped_;
}

double TraceBuffer::seconds_since_epoch() const noexcept {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - epoch_).count();
}

Span::Span(TraceBuffer* buffer, const char* kind, std::size_t round,
           std::uint32_t subject, std::size_t level)
    : buffer_(buffer), kind_(kind), round_(round), subject_(subject), level_(level) {
  open(nullptr);
}

Span::Span(TraceBuffer* buffer, const char* kind, const SpanContext& ctx,
           std::size_t round, std::uint32_t subject, std::size_t level)
    : buffer_(buffer), kind_(kind), round_(round), subject_(subject), level_(level) {
  open(&ctx);
}

void Span::open(const SpanContext* ctx) {
  if (!buffer_) return;
  depth_ = t_span_depth++;
  span_id_ = buffer_->next_span_id();
  if (ctx != nullptr && ctx->trace_id != 0) {
    trace_id_ = ctx->trace_id;
  } else if (ctx == nullptr && !t_span_stack.empty()) {
    // Stack-parented: inherit the parent's trace id, not the buffer's
    // current one — the buffer may have advanced to the next round while
    // this handler chain was still open, and a cross-trace parent edge would
    // read as an orphan to the merge tool.
    trace_id_ = t_span_stack.back().trace_id;
  } else {
    trace_id_ = buffer_->current_trace_id();
  }
  parent_id_ = (ctx != nullptr && ctx->has_parent) ? ctx->parent_span_id
                                                   : current_span_id();
  t_span_stack.push_back({span_id_, trace_id_});
  wall_ns_ = wall_clock_ns();
  start_ = std::chrono::steady_clock::now();
}

Span::~Span() {
  if (!buffer_) return;
  --t_span_depth;
  t_span_stack.pop_back();
  const auto end = std::chrono::steady_clock::now();
  TraceEvent ev;
  ev.time = buffer_->seconds_since_epoch() -
            std::chrono::duration<double>(end - start_).count();
  ev.round = round_;
  ev.kind = kind_;
  ev.subject = subject_;
  ev.level = level_;
  ev.duration = std::chrono::duration<double>(end - start_).count();
  ev.depth = depth_;
  ev.trace_id = trace_id_;
  ev.span_id = span_id_;
  ev.parent_span_id = parent_id_;
  ev.wall_ns = wall_ns_;
  buffer_->push(ev);
}

std::string trace_to_csv(const std::vector<TraceEvent>& trace) {
  std::string out =
      "time,round,kind,subject,level,duration,depth,node,trace_id,span_id,"
      "parent_span_id,wall_ns\n";
  char buf[320];
  for (const auto& ev : trace) {
    std::snprintf(buf, sizeof(buf),
                  "%.6f,%zu,%s,%u,%zu,%.6f,%u,%u,%016" PRIx64 ",%016" PRIx64
                  ",%016" PRIx64 ",%" PRId64 "\n",
                  ev.time, ev.round, ev.kind, ev.subject, ev.level, ev.duration,
                  ev.depth, ev.node, ev.trace_id, ev.span_id, ev.parent_span_id,
                  ev.wall_ns);
    out += buf;
  }
  return out;
}

std::string trace_to_jsonl(const std::vector<TraceEvent>& trace) {
  std::string out;
  char buf[512];
  for (const auto& ev : trace) {
    std::snprintf(
        buf, sizeof(buf),
        "{\"time\":%.6f,\"round\":%zu,\"kind\":\"%s\",\"subject\":%u,"
        "\"level\":%zu,\"duration\":%.6f,\"depth\":%u,\"node\":%u,"
        "\"trace_id\":\"%016" PRIx64 "\",\"span_id\":\"%016" PRIx64
        "\",\"parent_span_id\":\"%016" PRIx64 "\",\"wall_ns\":\"%" PRId64 "\"}\n",
        ev.time, ev.round, json_escape(ev.kind).c_str(), ev.subject, ev.level,
        ev.duration, ev.depth, ev.node, ev.trace_id, ev.span_id,
        ev.parent_span_id, ev.wall_ns);
    out += buf;
  }
  return out;
}

std::string trace_summary_jsonl(const TraceBuffer& buffer) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "{\"time\":%.6f,\"round\":0,\"kind\":\"trace_summary\",\"subject\":0,"
      "\"level\":0,\"duration\":0.0,\"depth\":0,\"node\":%u,"
      "\"trace_id\":\"%016x\",\"span_id\":\"%016x\",\"parent_span_id\":"
      "\"%016x\",\"wall_ns\":\"%" PRId64 "\",\"events\":%zu,\"dropped\":%" PRIu64
      ",\"clock_offset_ns\":%" PRId64 "}\n",
      buffer.seconds_since_epoch(), buffer.node(), 0u, 0u, 0u, wall_clock_ns(),
      buffer.size(), buffer.dropped(), buffer.clock_offset_ns());
  return buf;
}

}  // namespace abdhfl::obs
