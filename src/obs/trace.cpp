#include "obs/trace.hpp"

#include <cstdio>

#include "obs/export.hpp"

namespace abdhfl::obs {

namespace {
thread_local std::uint32_t t_span_depth = 0;
}

TraceBuffer::TraceBuffer(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      epoch_(std::chrono::steady_clock::now()) {}

void TraceBuffer::push(const TraceEvent& ev) {
  std::lock_guard lock(mutex_);
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  events_.push_back(ev);
}

std::vector<TraceEvent> TraceBuffer::snapshot() const {
  std::lock_guard lock(mutex_);
  return events_;
}

std::size_t TraceBuffer::size() const {
  std::lock_guard lock(mutex_);
  return events_.size();
}

std::uint64_t TraceBuffer::dropped() const {
  std::lock_guard lock(mutex_);
  return dropped_;
}

double TraceBuffer::seconds_since_epoch() const noexcept {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - epoch_).count();
}

Span::Span(TraceBuffer* buffer, const char* kind, std::size_t round,
           std::uint32_t subject, std::size_t level)
    : buffer_(buffer), kind_(kind), round_(round), subject_(subject), level_(level) {
  if (!buffer_) return;
  depth_ = t_span_depth++;
  start_ = std::chrono::steady_clock::now();
}

Span::~Span() {
  if (!buffer_) return;
  --t_span_depth;
  const auto end = std::chrono::steady_clock::now();
  TraceEvent ev;
  ev.time = buffer_->seconds_since_epoch() -
            std::chrono::duration<double>(end - start_).count();
  ev.round = round_;
  ev.kind = kind_;
  ev.subject = subject_;
  ev.level = level_;
  ev.duration = std::chrono::duration<double>(end - start_).count();
  ev.depth = depth_;
  buffer_->push(ev);
}

std::string trace_to_csv(const std::vector<TraceEvent>& trace) {
  std::string out = "time,round,kind,subject,level,duration,depth\n";
  char buf[192];
  for (const auto& ev : trace) {
    std::snprintf(buf, sizeof(buf), "%.6f,%zu,%s,%u,%zu,%.6f,%u\n", ev.time, ev.round,
                  ev.kind, ev.subject, ev.level, ev.duration, ev.depth);
    out += buf;
  }
  return out;
}

std::string trace_to_jsonl(const std::vector<TraceEvent>& trace) {
  std::string out;
  char buf[256];
  for (const auto& ev : trace) {
    std::snprintf(buf, sizeof(buf),
                  "{\"time\":%.6f,\"round\":%zu,\"kind\":\"%s\",\"subject\":%u,"
                  "\"level\":%zu,\"duration\":%.6f,\"depth\":%u}\n",
                  ev.time, ev.round, json_escape(ev.kind).c_str(), ev.subject, ev.level,
                  ev.duration, ev.depth);
    out += buf;
  }
  return out;
}

}  // namespace abdhfl::obs
