#pragma once
// Umbrella header + CLI plumbing for the observability subsystem.
//
//   util::Cli cli(argc, argv);
//   auto obs_opts = obs::declare_cli(cli);        // --metrics-out / --trace-out /
//   ...                                            //   --metrics-format
//   obs::Recorder recorder;
//   config.recorder = obs_opts.active() ? &recorder : nullptr;
//   ... run ...
//   obs::write_outputs(obs_opts, recorder, trace_buffer_or_null);
//
// declare_cli() also flips obs::set_enabled() on when any output was
// requested, which is what arms the thread-pool / sim-network registry
// counters for the run.

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/record.hpp"
#include "obs/suspicion.hpp"
#include "obs/trace.hpp"
#include "util/thread_pool.hpp"

namespace abdhfl::util {
class Cli;
}

namespace abdhfl::obs {

struct Options {
  /// Per-round records destination ("" = off).  Content depends on format:
  /// jsonl/csv render the Recorder; prom renders the registry exposition.
  std::string metrics_out;
  /// Event-trace destination ("" = off), always JSONL.
  std::string trace_out;
  /// "jsonl" (default), "csv", or "prom".
  std::string format = "jsonl";

  [[nodiscard]] bool active() const noexcept {
    return !metrics_out.empty() || !trace_out.empty();
  }
};

/// Declare the shared observability flags on a Cli (call before
/// cli.finish()).  Validates --metrics-format and arms obs::set_enabled()
/// when any output was requested.
[[nodiscard]] Options declare_cli(util::Cli& cli);

/// Refresh the thread-pool gauges (queue depth, task counts, wait/busy
/// seconds) in `registry` from a pool-stats snapshot.
void export_pool_metrics(MetricsRegistry& registry, const util::ThreadPool::Stats& stats,
                         std::size_t workers);

/// Write whatever the options ask for.  Refreshes pool gauges first so a
/// prom scrape reflects the finished run.  Returns false if any file failed.
bool write_outputs(const Options& options, const Recorder& recorder,
                   const TraceBuffer* trace = nullptr);

}  // namespace abdhfl::obs
