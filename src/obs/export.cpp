#include "obs/export.hpp"

#include <cinttypes>
#include <cstdio>

#include "util/log.hpp"

namespace abdhfl::obs {

namespace {

std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

/// "name{label=\"v\"}" -> ("name", "{label=\"v\"}"); no selector -> ("name", "").
std::pair<std::string_view, std::string_view> split_selector(std::string_view name) {
  const auto brace = name.find('{');
  if (brace == std::string_view::npos) return {name, {}};
  return {name.substr(0, brace), name.substr(brace)};
}

const char* kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

}  // namespace

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string to_prometheus(const std::vector<MetricValue>& snapshot) {
  std::string out;
  std::string last_family;
  char buf[192];
  for (const auto& m : snapshot) {
    const auto [family, selector] = split_selector(m.name);
    // One HELP/TYPE header per family: labeled variants of the same family
    // (sorted adjacently by the registry) share it.
    if (family != last_family) {
      last_family = std::string(family);
      if (!m.help.empty()) {
        out += "# HELP " + last_family + " " + m.help + "\n";
      }
      out += "# TYPE " + last_family + " " + kind_name(m.kind) + "\n";
    }
    switch (m.kind) {
      case MetricKind::kCounter:
        std::snprintf(buf, sizeof(buf), "%s %" PRIu64 "\n", m.name.c_str(),
                      static_cast<std::uint64_t>(m.value));
        out += buf;
        break;
      case MetricKind::kGauge:
        out += m.name + " " + fmt_double(m.value) + "\n";
        break;
      case MetricKind::kHistogram: {
        std::uint64_t cumulative = 0;
        for (std::size_t b = 0; b < m.buckets.size(); ++b) {
          cumulative += m.buckets[b];
          const std::string le =
              b < m.bounds.size() ? fmt_double(m.bounds[b]) : std::string("+Inf");
          std::snprintf(buf, sizeof(buf), "%.*s_bucket{le=\"%s\"} %" PRIu64 "\n",
                        static_cast<int>(family.size()), family.data(), le.c_str(),
                        cumulative);
          out += buf;
        }
        out += std::string(family) + "_sum " + fmt_double(m.sum) + "\n";
        std::snprintf(buf, sizeof(buf), "%.*s_count %" PRIu64 "\n",
                      static_cast<int>(family.size()), family.data(), m.count);
        out += buf;
        break;
      }
    }
  }
  return out;
}

std::string metrics_to_jsonl(const std::vector<MetricValue>& snapshot) {
  std::string out;
  for (const auto& m : snapshot) {
    out += "{\"name\":\"" + json_escape(m.name) + "\",\"kind\":\"" +
           kind_name(m.kind) + "\"";
    if (m.kind == MetricKind::kHistogram) {
      out += ",\"sum\":" + fmt_double(m.sum) + ",\"count\":" + std::to_string(m.count);
      out += ",\"bounds\":[";
      for (std::size_t b = 0; b < m.bounds.size(); ++b) {
        if (b) out += ",";
        out += fmt_double(m.bounds[b]);
      }
      out += "],\"buckets\":[";
      for (std::size_t b = 0; b < m.buckets.size(); ++b) {
        if (b) out += ",";
        out += std::to_string(m.buckets[b]);
      }
      out += "]";
    } else {
      out += ",\"value\":" + fmt_double(m.value);
    }
    out += "}\n";
  }
  return out;
}

bool write_text_file(const std::string& path, std::string_view content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    LOG_ERROR("obs: cannot open %s for writing", path.c_str());
    return false;
  }
  const std::size_t written = std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  if (written != content.size()) {
    LOG_ERROR("obs: short write to %s", path.c_str());
    return false;
  }
  return true;
}

}  // namespace abdhfl::obs
