#include "agg/mean.hpp"

#include <stdexcept>

#include "tensor/ops.hpp"

namespace abdhfl::agg {

ModelVec MeanAggregator::aggregate(const std::vector<ModelVec>& updates) {
  const std::size_t n = updates.size();
  telemetry_ = {n, n, 0.0, 0.0, {}};
  if (forensics() && n > 0) {
    telemetry_.verdicts.assign(n, {true, 1.0 / static_cast<double>(n), 0.0});
  }
  return tensor::mean_of(updates);
}

ModelVec weighted_mean(const std::vector<ModelVec>& updates,
                       const std::vector<double>& weights) {
  const std::size_t dim = tensor::checked_common_size(updates);
  if (weights.size() != updates.size()) {
    throw std::invalid_argument("weighted_mean: weight count mismatch");
  }
  double total = 0.0;
  for (double w : weights) {
    if (w <= 0.0) throw std::invalid_argument("weighted_mean: non-positive weight");
    total += w;
  }
  std::vector<double> acc(dim, 0.0);
  for (std::size_t k = 0; k < updates.size(); ++k) {
    const double w = weights[k] / total;
    for (std::size_t i = 0; i < dim; ++i) acc[i] += w * updates[k][i];
  }
  ModelVec out(dim);
  for (std::size_t i = 0; i < dim; ++i) out[i] = static_cast<float>(acc[i]);
  return out;
}

}  // namespace abdhfl::agg
