#include "agg/mean.hpp"

#include <stdexcept>

#include "tensor/kernels.hpp"
#include "tensor/ops.hpp"

namespace abdhfl::agg {

ModelVec MeanAggregator::aggregate(const std::vector<ModelVec>& updates) {
  const std::size_t n = updates.size();
  telemetry_ = {n, n, 0.0, 0.0, {}};
  if (forensics() && n > 0) {
    telemetry_.verdicts.assign(n, {true, 1.0 / static_cast<double>(n), 0.0});
  }
  return tensor::mean_of(updates);
}

// Streaming mean: fold each input into a double accumulator as its chunks
// arrive.  kern::accumulate is elementwise-exact under chunk splitting and
// is the same kernel tensor::mean_of uses over whole vectors, and the
// finalization reproduces mean_of's `acc[i] * (1/n)` expression verbatim —
// both are required for the bitwise-identity guarantee.
class MeanAggregator::Stream final : public StreamAccumulator {
 public:
  Stream(MeanAggregator& owner, std::size_t dim)
      : owner_(owner), dim_(dim), acc_(dim, 0.0) {}

  void begin_input() override { cursor_ = 0; }

  void add_chunk(std::size_t offset, std::span<const float> values) override {
    if (offset != cursor_ || offset + values.size() > dim_) {
      throw std::invalid_argument("mean stream: non-contiguous or oversized chunk");
    }
    tensor::kern::accumulate(values.data(), acc_.data() + offset, values.size());
    cursor_ += values.size();
  }

  void end_input() override {
    if (cursor_ != dim_) {
      throw std::invalid_argument("mean stream: input not fully covered");
    }
    cursor_ = 0;
    ++inputs_;
  }

  ModelVec finish() override {
    if (inputs_ == 0) throw std::invalid_argument("mean stream: no inputs");
    const std::size_t n = inputs_;
    owner_.telemetry_ = {n, n, 0.0, 0.0, {}};
    if (owner_.forensics()) {
      owner_.telemetry_.verdicts.assign(n, {true, 1.0 / static_cast<double>(n), 0.0});
    }
    ModelVec out(dim_);
    const double inv = 1.0 / static_cast<double>(n);
    for (std::size_t i = 0; i < dim_; ++i) out[i] = static_cast<float>(acc_[i] * inv);
    return out;
  }

 private:
  MeanAggregator& owner_;
  std::size_t dim_;
  std::size_t cursor_ = 0;
  std::vector<double> acc_;
};

std::unique_ptr<StreamAccumulator> MeanAggregator::make_stream(std::size_t dim) {
  return std::make_unique<Stream>(*this, dim);
}

ModelVec weighted_mean(const std::vector<ModelVec>& updates,
                       const std::vector<double>& weights) {
  const std::size_t dim = tensor::checked_common_size(updates);
  if (weights.size() != updates.size()) {
    throw std::invalid_argument("weighted_mean: weight count mismatch");
  }
  double total = 0.0;
  for (double w : weights) {
    if (w <= 0.0) throw std::invalid_argument("weighted_mean: non-positive weight");
    total += w;
  }
  std::vector<double> acc(dim, 0.0);
  for (std::size_t k = 0; k < updates.size(); ++k) {
    const double w = weights[k] / total;
    for (std::size_t i = 0; i < dim; ++i) acc[i] += w * updates[k][i];
  }
  ModelVec out(dim);
  for (std::size_t i = 0; i < dim; ++i) out[i] = static_cast<float>(acc[i]);
  return out;
}

}  // namespace abdhfl::agg
