#pragma once
// Krum and MultiKrum (Blanchard et al., NeurIPS 2017).
//
// Krum scores each update by the sum of squared distances to its n-f-2
// nearest peers and returns the lowest-scoring update; MultiKrum averages
// the k best-scored updates.  The paper's IID experiments deploy MultiKrum
// at the partial-aggregation levels with an assumed malicious proportion of
// 25%, which is exactly what `byzantine_fraction` configures here and what
// defines γ in the Theorem 2 tolerance bound.

#include "agg/aggregator.hpp"

namespace abdhfl::agg {

struct KrumConfig {
  /// Assumed fraction of Byzantine inputs; f = floor(fraction * n).
  double byzantine_fraction = 0.25;
  /// Updates averaged: 1 = classic Krum, >1 = MultiKrum (clamped to the
  /// number of selectable updates), 0 = adaptive MultiKrum with the
  /// standard selection size m = max(1, n - f - 2).
  std::size_t multi_k = 1;
};

class KrumAggregator final : public Aggregator {
 public:
  explicit KrumAggregator(KrumConfig config);

  ModelVec aggregate(const std::vector<ModelVec>& updates) override;
  [[nodiscard]] std::string name() const override {
    return config_.multi_k == 1 ? "krum" : "multikrum";
  }
  [[nodiscard]] double tolerance_fraction(std::size_t) const override {
    return config_.byzantine_fraction;
  }

  /// Krum scores for all updates (exposed for tests and diagnostics);
  /// requires n >= 3.  threads > 1 fans the pairwise-distance matrix and the
  /// per-row scoring out across util::global_pool(); the result is bitwise
  /// identical for any thread count.
  [[nodiscard]] static std::vector<double> scores(const std::vector<ModelVec>& updates,
                                                  std::size_t f,
                                                  std::size_t threads = 1);

  /// Indices of the k best-scored updates (ascending score).
  [[nodiscard]] static std::vector<std::size_t> select(const std::vector<ModelVec>& updates,
                                                       std::size_t f, std::size_t k,
                                                       std::size_t threads = 1);

 private:
  KrumConfig config_;
};

}  // namespace abdhfl::agg
