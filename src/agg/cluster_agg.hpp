#pragma once
// Cosine-similarity clustering aggregation (Table II's "Clustering"
// strategy; Sattler et al. 2020 group benign clients into the largest
// cluster).  Updates are greedily clustered by pairwise cosine similarity;
// the largest cluster is assumed benign and averaged.

#include "agg/aggregator.hpp"

namespace abdhfl::agg {

struct ClusterAggConfig {
  /// Two updates join the same cluster when their cosine similarity is at
  /// least this threshold.
  double similarity_threshold = 0.0;
};

class ClusterAggregator final : public Aggregator {
 public:
  explicit ClusterAggregator(ClusterAggConfig config = {});

  ModelVec aggregate(const std::vector<ModelVec>& updates) override;
  [[nodiscard]] std::string name() const override { return "clustering"; }

  /// Streaming-safe because placement is greedy in arrival order against
  /// cluster founders only: the accumulator keeps one founder copy plus one
  /// double sum per cluster (O(c·d), c = clusters seen) instead of all n
  /// inputs.  Returns nullptr under forensics — the per-input dissimilarity
  /// scores need every input against the winning founder, which is only
  /// known at finish().
  [[nodiscard]] std::unique_ptr<StreamAccumulator> make_stream(std::size_t dim) override;

  /// Cluster label of every update in the last aggregate() call.
  [[nodiscard]] const std::vector<std::size_t>& last_labels() const noexcept {
    return last_labels_;
  }

  /// Pairwise cosine similarity (0 when either vector is zero) — exposed for
  /// tests.
  [[nodiscard]] static double cosine(std::span<const float> a, std::span<const float> b);

 private:
  class Stream;

  ClusterAggConfig config_;
  std::vector<std::size_t> last_labels_;
};

}  // namespace abdhfl::agg
