#pragma once
// Geometric median (GeoMed, Chen et al. 2017) via the Weiszfeld fixed-point
// iteration, with the standard epsilon regularization to avoid division by
// zero when the iterate lands on an input point.

#include "agg/aggregator.hpp"

namespace abdhfl::agg {

struct GeoMedConfig {
  std::size_t max_iterations = 100;
  double tolerance = 1e-7;   // stop when the iterate moves less than this
  double epsilon = 1e-9;     // smoothing added to each distance
};

class GeoMedAggregator final : public Aggregator {
 public:
  explicit GeoMedAggregator(GeoMedConfig config = {});

  ModelVec aggregate(const std::vector<ModelVec>& updates) override;
  [[nodiscard]] std::string name() const override { return "geomed"; }

  /// Number of Weiszfeld iterations the last aggregate() used.
  [[nodiscard]] std::size_t last_iterations() const noexcept { return last_iterations_; }

 private:
  GeoMedConfig config_;
  std::size_t last_iterations_ = 0;
};

}  // namespace abdhfl::agg
