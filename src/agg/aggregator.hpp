#pragma once
// Common interface for the Byzantine-robust aggregation rules of Table II.
//
// A rule consumes the flat parameter vectors collected by a cluster leader
// (Algorithm 4's AG) and produces the cluster's partial aggregated model.
// Rules are stateless except where the literature requires a reference point
// (Centered Clipping), which the runner supplies via set_reference() with
// the previous round's model.

#include <memory>
#include <span>
#include <string>
#include <vector>

namespace abdhfl::agg {

using ModelVec = std::vector<float>;

class Aggregator {
 public:
  virtual ~Aggregator() = default;

  /// Aggregate the given model vectors (all the same dimension; at least
  /// one).  Throws std::invalid_argument on empty input or ragged dims.
  [[nodiscard]] virtual ModelVec aggregate(const std::vector<ModelVec>& updates) = 0;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Reference point for rules that need one (previous global/partial
  /// model).  Default: ignored.
  virtual void set_reference(std::span<const float> reference) { (void)reference; }

  /// Fraction of Byzantine inputs this rule is designed to tolerate, used
  /// by the tolerance analysis as γ.  Rules without a crisp bound return 0.5
  /// (median-type rules break down at one half).
  [[nodiscard]] virtual double tolerance_fraction(std::size_t n) const {
    (void)n;
    return 0.5;
  }
};

/// Build a rule by name: "mean", "krum", "multikrum", "median",
/// "trimmed_mean", "geomed", "centered_clip", "norm_filter".
/// byzantine_fraction parameterizes rules that assume an f bound
/// (Krum/MultiKrum/TrimmedMean).  Throws on unknown names.
[[nodiscard]] std::unique_ptr<Aggregator> make_aggregator(const std::string& name,
                                                          double byzantine_fraction = 0.25);

/// Names accepted by make_aggregator, for CLIs and test sweeps.
[[nodiscard]] const std::vector<std::string>& aggregator_names();

}  // namespace abdhfl::agg
