#pragma once
// Common interface for the Byzantine-robust aggregation rules of Table II.
//
// A rule consumes the flat parameter vectors collected by a cluster leader
// (Algorithm 4's AG) and produces the cluster's partial aggregated model.
// Rules are stateless except where the literature requires a reference point
// (Centered Clipping), which the runner supplies via set_reference() with
// the previous round's model.

#include <memory>
#include <span>
#include <string>
#include <vector>

namespace abdhfl::agg {

using ModelVec = std::vector<float>;

/// Per-input attribution of one aggregate() call, for the forensics layer:
/// did this input survive the rule's filter, with what contribution weight,
/// and at what rule-specific distance/score.  Weights sum to ~1 across kept
/// inputs (0 for filtered ones); score is 0 where the rule has no natural
/// notion of distance.
struct InputVerdict {
  bool kept = true;
  double weight = 0.0;
  double score = 0.0;
};

/// What the most recent aggregate() call did to its inputs, for the
/// observability layer: how many updates were offered, how many actually
/// contributed to the output, and a rule-specific distance/score statistic
/// (Krum scores, norm-filter distances, clip norms — 0 where the rule has no
/// natural notion of distance).  "Filtered" is inputs - kept.
///
/// `verdicts` is aligned with the input order of the aggregate() call and is
/// only filled when forensics is enabled (see Aggregator::set_forensics);
/// otherwise it stays empty.  When filled, the number of kept verdicts
/// equals `kept`.
struct AggTelemetry {
  std::size_t inputs = 0;
  std::size_t kept = 0;
  double score_mean = 0.0;
  double score_max = 0.0;
  std::vector<InputVerdict> verdicts;
};

/// Incremental consumer for streaming-safe rules (DESIGN.md §11): inputs are
/// fed as parameter chunks while their frames arrive, so the aggregating
/// node holds O(d) accumulator state instead of n materialized input
/// vectors.  Chunks of one input must be sequential and contiguous
/// (offset 0 upward, no gaps); end_input() checks full coverage.  finish()
/// produces the aggregate — bitwise-identical to handing the same inputs in
/// the same order to the owning rule's aggregate() — and writes the owner's
/// telemetry exactly like an aggregate() call would.  One-shot: an
/// accumulator is dead after finish().
class StreamAccumulator {
 public:
  virtual ~StreamAccumulator() = default;

  virtual void begin_input() = 0;
  virtual void add_chunk(std::size_t offset, std::span<const float> values) = 0;
  virtual void end_input() = 0;
  [[nodiscard]] virtual ModelVec finish() = 0;

  /// Inputs fully fed so far (end_input() calls).
  [[nodiscard]] std::size_t inputs() const noexcept { return inputs_; }

 protected:
  std::size_t inputs_ = 0;
};

class Aggregator {
 public:
  virtual ~Aggregator() = default;

  /// Aggregate the given model vectors (all the same dimension; at least
  /// one).  Throws std::invalid_argument on empty input or ragged dims.
  [[nodiscard]] virtual ModelVec aggregate(const std::vector<ModelVec>& updates) = 0;

  /// Streaming factory.  Rules that can consume inputs incrementally return
  /// an accumulator of dimension `dim` bound to this instance; rules that
  /// need every vector materialized (Krum, median, geomed, ...) return
  /// nullptr — the default — as do streaming-capable rules in a mode that
  /// cannot stream (clustering under forensics).  The caller falls back to
  /// materialize-first whenever this returns nullptr.
  [[nodiscard]] virtual std::unique_ptr<StreamAccumulator> make_stream(std::size_t dim) {
    (void)dim;
    return nullptr;
  }

  [[nodiscard]] virtual std::string name() const = 0;

  /// Reference point for rules that need one (previous global/partial
  /// model).  Default: ignored.
  virtual void set_reference(std::span<const float> reference) { (void)reference; }

  /// Fraction of Byzantine inputs this rule is designed to tolerate, used
  /// by the tolerance analysis as γ.  Rules without a crisp bound return 0.5
  /// (median-type rules break down at one half).
  [[nodiscard]] virtual double tolerance_fraction(std::size_t n) const {
    (void)n;
    return 0.5;
  }

  /// Numeric-kernel fan-out inside aggregate().  1 (the default) keeps the
  /// rule single-threaded so the discrete-event simulator stays serial and
  /// deterministic; higher values partition the work (pairwise-distance
  /// rows, coordinates, updates) across util::global_pool().  Every rule's
  /// parallel path is bitwise-identical to its serial path for any thread
  /// count — each output element is produced by exactly one kernel call
  /// chain, so the partition never changes the arithmetic.
  void set_threads(std::size_t threads) noexcept {
    threads_ = threads == 0 ? 1 : threads;
  }
  [[nodiscard]] std::size_t threads() const noexcept { return threads_; }

  /// Telemetry of the most recent aggregate() call on this instance.  Not
  /// synchronized: read it from the thread that called aggregate() (the
  /// runners drive each rule instance from a single thread).
  [[nodiscard]] const AggTelemetry& last_telemetry() const noexcept {
    return telemetry_;
  }

  /// Enable per-input verdict recording (AggTelemetry::verdicts).  Off by
  /// default: verdict extraction can cost extra O(n·d) passes in rules whose
  /// aggregation discards input identity (median, trimmed_mean, clustering).
  /// Forensics is diagnostic-only — it never changes aggregate()'s output,
  /// which stays bitwise-identical to the forensics-off result.
  void set_forensics(bool enabled) noexcept { forensics_ = enabled; }
  [[nodiscard]] bool forensics() const noexcept { return forensics_; }

 protected:
  std::size_t threads_ = 1;
  bool forensics_ = false;
  AggTelemetry telemetry_;
};

/// Build a rule by name: "mean", "krum", "multikrum", "median",
/// "trimmed_mean", "geomed", "centered_clip", "norm_filter".
/// byzantine_fraction parameterizes rules that assume an f bound
/// (Krum/MultiKrum/TrimmedMean); threads is forwarded to set_threads().
/// Throws on unknown names.
[[nodiscard]] std::unique_ptr<Aggregator> make_aggregator(const std::string& name,
                                                          double byzantine_fraction = 0.25,
                                                          std::size_t threads = 1);

/// Names accepted by make_aggregator, for CLIs and test sweeps.
[[nodiscard]] const std::vector<std::string>& aggregator_names();

}  // namespace abdhfl::agg
