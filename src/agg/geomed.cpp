#include "agg/geomed.hpp"

#include <cmath>
#include <stdexcept>

#include "tensor/ops.hpp"

namespace abdhfl::agg {

GeoMedAggregator::GeoMedAggregator(GeoMedConfig config) : config_(config) {
  if (config_.max_iterations == 0) {
    throw std::invalid_argument("GeoMedAggregator: max_iterations == 0");
  }
}

ModelVec GeoMedAggregator::aggregate(const std::vector<ModelVec>& updates) {
  const std::size_t dim = tensor::checked_common_size(updates);
  const std::size_t n = updates.size();
  if (n == 1) {
    last_iterations_ = 0;
    return updates.front();
  }

  // Start from the coordinate-wise mean.
  std::vector<double> estimate(dim, 0.0);
  for (const auto& u : updates) {
    for (std::size_t i = 0; i < dim; ++i) estimate[i] += u[i];
  }
  for (double& v : estimate) v /= static_cast<double>(n);

  std::vector<double> next(dim);
  last_iterations_ = 0;
  for (std::size_t iter = 0; iter < config_.max_iterations; ++iter) {
    ++last_iterations_;
    std::fill(next.begin(), next.end(), 0.0);
    double weight_sum = 0.0;
    for (const auto& u : updates) {
      double d2 = 0.0;
      for (std::size_t i = 0; i < dim; ++i) {
        const double diff = estimate[i] - u[i];
        d2 += diff * diff;
      }
      const double w = 1.0 / (std::sqrt(d2) + config_.epsilon);
      weight_sum += w;
      for (std::size_t i = 0; i < dim; ++i) next[i] += w * u[i];
    }
    double shift2 = 0.0;
    for (std::size_t i = 0; i < dim; ++i) {
      next[i] /= weight_sum;
      const double diff = next[i] - estimate[i];
      shift2 += diff * diff;
    }
    estimate.swap(next);
    if (std::sqrt(shift2) < config_.tolerance) break;
  }

  ModelVec out(dim);
  for (std::size_t i = 0; i < dim; ++i) out[i] = static_cast<float>(estimate[i]);
  return out;
}

}  // namespace abdhfl::agg
