#include "agg/geomed.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "tensor/kernels.hpp"
#include "tensor/ops.hpp"
#include "util/thread_pool.hpp"

namespace abdhfl::agg {

GeoMedAggregator::GeoMedAggregator(GeoMedConfig config) : config_(config) {
  if (config_.max_iterations == 0) {
    throw std::invalid_argument("GeoMedAggregator: max_iterations == 0");
  }
}

ModelVec GeoMedAggregator::aggregate(const std::vector<ModelVec>& updates) {
  const std::size_t dim = tensor::checked_common_size(updates);
  const std::size_t n = updates.size();
  if (n == 1) {
    last_iterations_ = 0;
    telemetry_ = {1, 1, 0.0, 0.0, {}};
    if (forensics()) telemetry_.verdicts.assign(1, {true, 1.0, 0.0});
    return updates.front();
  }

  auto& pool = util::global_pool();

  // Start from the coordinate-wise mean.
  std::vector<double> estimate(dim, 0.0);
  for (const auto& u : updates) {
    tensor::kern::accumulate(u.data(), estimate.data(), dim);
  }
  for (double& v : estimate) v /= static_cast<double>(n);

  // Weiszfeld iterations.  Each round splits into
  //   (a) per-update distances to the current estimate — parallel over
  //       updates, each weight written by exactly one task;
  //   (b) the weight sum — serial, in fixed update order;
  //   (c) the weighted accumulation next[i] = sum_k w[k] * u_k[i] — parallel
  //       over coordinates, every chunk walking k in the same ascending
  //       order, so each next[i] sees the identical addition sequence the
  //       serial loop produces.
  // Hence the result is bitwise-identical for any thread count.
  std::vector<double> next(dim);
  std::vector<double> weight(n);
  last_iterations_ = 0;
  for (std::size_t iter = 0; iter < config_.max_iterations; ++iter) {
    ++last_iterations_;
    pool.parallel_for(
        0, n,
        [&](std::size_t k) {
          const double d2 = tensor::kern::distance_squared_df(
              estimate.data(), updates[k].data(), dim);
          weight[k] = 1.0 / (std::sqrt(d2) + config_.epsilon);
        },
        threads_);
    double weight_sum = 0.0;
    for (std::size_t k = 0; k < n; ++k) weight_sum += weight[k];

    pool.parallel_ranges(
        0, dim,
        [&](std::size_t lo, std::size_t hi) {
          std::fill(next.begin() + static_cast<std::ptrdiff_t>(lo),
                    next.begin() + static_cast<std::ptrdiff_t>(hi), 0.0);
          for (std::size_t k = 0; k < n; ++k) {
            tensor::kern::accumulate_scaled(weight[k], updates[k].data() + lo,
                                            next.data() + lo, hi - lo);
          }
        },
        threads_);

    double shift2 = 0.0;
    for (std::size_t i = 0; i < dim; ++i) {
      next[i] /= weight_sum;
      const double diff = next[i] - estimate[i];
      shift2 += diff * diff;
    }
    estimate.swap(next);
    if (std::sqrt(shift2) < config_.tolerance) break;
  }

  // Every update contributes (with weight 1/distance); report the final
  // iteration's distances, recovered from the Weiszfeld weights.
  telemetry_.inputs = n;
  telemetry_.kept = n;
  telemetry_.verdicts.clear();
  double dist_sum = 0.0;
  double dist_max = 0.0;
  double weight_total = 0.0;
  for (double w : weight) {
    const double d = 1.0 / w - config_.epsilon;
    dist_sum += d;
    dist_max = std::max(dist_max, d);
    weight_total += w;
  }
  telemetry_.score_mean = dist_sum / static_cast<double>(n);
  telemetry_.score_max = dist_max;
  if (forensics()) {
    telemetry_.verdicts.resize(n);
    for (std::size_t k = 0; k < n; ++k) {
      telemetry_.verdicts[k] = {true, weight[k] / weight_total,
                                1.0 / weight[k] - config_.epsilon};
    }
  }

  ModelVec out(dim);
  for (std::size_t i = 0; i < dim; ++i) out[i] = static_cast<float>(estimate[i]);
  return out;
}

}  // namespace abdhfl::agg
