#pragma once
// FedAvg-style linear aggregation — the rule classical FL uses and the one
// Blanchard et al. proved cannot tolerate even a single Byzantine worker.
// It is both the honest-case baseline and the vulnerable control arm of the
// robustness experiments.

#include "agg/aggregator.hpp"

namespace abdhfl::agg {

class MeanAggregator final : public Aggregator {
 public:
  ModelVec aggregate(const std::vector<ModelVec>& updates) override;
  [[nodiscard]] std::string name() const override { return "mean"; }
  [[nodiscard]] double tolerance_fraction(std::size_t) const override { return 0.0; }

  /// Mean is always streaming-safe: one O(d) double accumulator, inputs
  /// folded in arrival order via the same kern::accumulate/finalize chain as
  /// tensor::mean_of, so finish() is bitwise-identical to aggregate().
  [[nodiscard]] std::unique_ptr<StreamAccumulator> make_stream(std::size_t dim) override;

 private:
  class Stream;
};

/// Dataset-size-weighted mean (true FedAvg); weights must be positive and
/// match the update count.
[[nodiscard]] ModelVec weighted_mean(const std::vector<ModelVec>& updates,
                                     const std::vector<double>& weights);

}  // namespace abdhfl::agg
