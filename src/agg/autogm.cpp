#include "agg/autogm.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

#include "tensor/kernels.hpp"
#include "tensor/ops.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace abdhfl::agg {

AutoGmAggregator::AutoGmAggregator(AutoGmConfig config) : config_(config) {
  if (config_.cut <= 1.0 || config_.max_outer_rounds == 0) {
    throw std::invalid_argument("AutoGmAggregator: bad config");
  }
}

ModelVec AutoGmAggregator::aggregate(const std::vector<ModelVec>& updates) {
  const std::size_t dim = tensor::checked_common_size(updates);
  GeoMedAggregator geomed(config_.geomed);
  geomed.set_threads(threads());

  std::vector<ModelVec> kept = updates;
  // Original input index of each surviving update, so the iterative cuts can
  // be attributed back to the aggregate() caller's input order.
  std::vector<std::size_t> live(updates.size());
  std::iota(live.begin(), live.end(), std::size_t{0});
  // Last distance observed for each input — at the iteration it was cut for
  // filtered inputs, at the final iteration for survivors.
  std::vector<double> last_dist(updates.size(), 0.0);
  ModelVec estimate = geomed.aggregate(kept);

  for (std::size_t round = 0; round < config_.max_outer_rounds; ++round) {
    // One distance per kept update, each from a single kernel call chain —
    // parallel over updates is bitwise-deterministic.
    std::vector<double> dist(kept.size());
    util::global_pool().parallel_for(
        0, kept.size(),
        [&](std::size_t i) {
          dist[i] = std::sqrt(
              tensor::kern::distance_squared(kept[i].data(), estimate.data(), dim));
        },
        threads_);
    const double med = util::median_of(dist);
    telemetry_.score_mean = util::mean(dist);
    telemetry_.score_max = util::max_of(dist);
    for (std::size_t i = 0; i < kept.size(); ++i) last_dist[live[i]] = dist[i];
    if (med == 0.0) break;  // all kept updates coincide with the estimate

    std::vector<ModelVec> next;
    std::vector<std::size_t> next_live;
    next.reserve(kept.size());
    next_live.reserve(kept.size());
    for (std::size_t i = 0; i < kept.size(); ++i) {
      if (dist[i] <= config_.cut * med) {
        next.push_back(kept[i]);
        next_live.push_back(live[i]);
      }
    }
    if (next.empty() || next.size() == kept.size()) break;
    kept = std::move(next);
    live = std::move(next_live);
    estimate = geomed.aggregate(kept);
  }
  last_kept_ = kept.size();
  telemetry_.inputs = updates.size();
  telemetry_.kept = kept.size();
  telemetry_.verdicts.clear();
  if (forensics()) {
    telemetry_.verdicts.resize(updates.size());
    for (std::size_t k = 0; k < updates.size(); ++k) {
      telemetry_.verdicts[k] = {false, 0.0, last_dist[k]};
    }
    const double w = 1.0 / static_cast<double>(kept.size());
    for (std::size_t idx : live) {
      telemetry_.verdicts[idx].kept = true;
      telemetry_.verdicts[idx].weight = w;
    }
  }
  return estimate;
}

}  // namespace abdhfl::agg
