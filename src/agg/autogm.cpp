#include "agg/autogm.hpp"

#include <cmath>
#include <stdexcept>

#include "tensor/kernels.hpp"
#include "tensor/ops.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace abdhfl::agg {

AutoGmAggregator::AutoGmAggregator(AutoGmConfig config) : config_(config) {
  if (config_.cut <= 1.0 || config_.max_outer_rounds == 0) {
    throw std::invalid_argument("AutoGmAggregator: bad config");
  }
}

ModelVec AutoGmAggregator::aggregate(const std::vector<ModelVec>& updates) {
  const std::size_t dim = tensor::checked_common_size(updates);
  GeoMedAggregator geomed(config_.geomed);
  geomed.set_threads(threads());

  std::vector<ModelVec> kept = updates;
  ModelVec estimate = geomed.aggregate(kept);

  for (std::size_t round = 0; round < config_.max_outer_rounds; ++round) {
    // One distance per kept update, each from a single kernel call chain —
    // parallel over updates is bitwise-deterministic.
    std::vector<double> dist(kept.size());
    util::global_pool().parallel_for(
        0, kept.size(),
        [&](std::size_t i) {
          dist[i] = std::sqrt(
              tensor::kern::distance_squared(kept[i].data(), estimate.data(), dim));
        },
        threads_);
    const double med = util::median_of(dist);
    telemetry_.score_mean = util::mean(dist);
    telemetry_.score_max = util::max_of(dist);
    if (med == 0.0) break;  // all kept updates coincide with the estimate

    std::vector<ModelVec> next;
    next.reserve(kept.size());
    for (std::size_t i = 0; i < kept.size(); ++i) {
      if (dist[i] <= config_.cut * med) next.push_back(kept[i]);
    }
    if (next.empty() || next.size() == kept.size()) break;
    kept = std::move(next);
    estimate = geomed.aggregate(kept);
  }
  last_kept_ = kept.size();
  telemetry_.inputs = updates.size();
  telemetry_.kept = kept.size();
  return estimate;
}

}  // namespace abdhfl::agg
