#include "agg/krum.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "tensor/kernels.hpp"
#include "tensor/ops.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace abdhfl::agg {

KrumAggregator::KrumAggregator(KrumConfig config) : config_(config) {
  if (config_.byzantine_fraction < 0.0 || config_.byzantine_fraction >= 1.0) {
    throw std::invalid_argument("KrumAggregator: byzantine_fraction out of [0,1)");
  }
}

std::vector<double> KrumAggregator::scores(const std::vector<ModelVec>& updates,
                                           std::size_t f, std::size_t threads) {
  const std::size_t n = updates.size();
  const std::size_t dim = tensor::checked_common_size(updates);
  if (n < 3) throw std::invalid_argument("Krum needs at least 3 updates");

  // Krum sums the distances to the n - f - 2 closest peers; make sure at
  // least one peer is counted even when f is aggressive for this n.
  const std::size_t closest =
      std::max<std::size_t>(1, n >= f + 2 ? n - f - 2 : 1);

  std::vector<const float*> ptr(n);
  for (std::size_t i = 0; i < n; ++i) ptr[i] = updates[i].data();

  // Pairwise squared distances (symmetric, O(n^2 d)), row-partitioned across
  // the pool.  The d loop is tiled by one kernel flush block with all pairs
  // visited per tile: each tile's operands stay cache-resident across the
  // O(n^2) pair visits instead of streaming 2 full vectors per pair, and the
  // per-pair accumulation order (tile-ascending, one flush block per call)
  // is exactly distance_squared's — so the result is bitwise-independent of
  // the row partition and of `threads`.
  std::vector<double> dist(n * n, 0.0);
  auto& pool = util::global_pool();
  pool.parallel_ranges(
      0, n,
      [&](std::size_t row_lo, std::size_t row_hi) {
        for (std::size_t tile = 0; tile < dim; tile += tensor::kern::kFlushBlock) {
          const std::size_t len = std::min(tensor::kern::kFlushBlock, dim - tile);
          for (std::size_t i = row_lo; i < row_hi; ++i) {
            for (std::size_t j = i + 1; j < n; ++j) {
              dist[i * n + j] +=
                  tensor::kern::distance_squared(ptr[i] + tile, ptr[j] + tile, len);
            }
          }
        }
      },
      threads);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) dist[j * n + i] = dist[i * n + j];
  }

  std::vector<double> out(n, 0.0);
  pool.parallel_ranges(
      0, n,
      [&](std::size_t lo, std::size_t hi) {
        std::vector<double> row(n - 1);
        for (std::size_t i = lo; i < hi; ++i) {
          std::size_t w = 0;
          for (std::size_t j = 0; j < n; ++j) {
            if (j != i) row[w++] = dist[i * n + j];
          }
          const std::size_t take = std::min(closest, row.size());
          std::partial_sort(row.begin(),
                            row.begin() + static_cast<std::ptrdiff_t>(take), row.end());
          out[i] = std::accumulate(
              row.begin(), row.begin() + static_cast<std::ptrdiff_t>(take), 0.0);
        }
      },
      threads);
  return out;
}

std::vector<std::size_t> KrumAggregator::select(const std::vector<ModelVec>& updates,
                                                std::size_t f, std::size_t k,
                                                std::size_t threads) {
  const auto score = scores(updates, f, threads);
  std::vector<std::size_t> order(score.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) { return score[a] < score[b]; });
  order.resize(std::min(k, order.size()));
  return order;
}

ModelVec KrumAggregator::aggregate(const std::vector<ModelVec>& updates) {
  const std::size_t n = updates.size();
  if (n == 0) throw std::invalid_argument("Krum: no updates");
  if (n < 3) {
    // Degenerate clusters: fall back to the mean (nothing to score against).
    telemetry_ = {n, n, 0.0, 0.0, {}};
    if (forensics()) {
      telemetry_.verdicts.assign(n, {true, 1.0 / static_cast<double>(n), 0.0});
    }
    return tensor::mean_of(updates);
  }
  const auto f = static_cast<std::size_t>(
      std::floor(config_.byzantine_fraction * static_cast<double>(n)));
  // Adaptive MultiKrum selects the n - f plausibly honest updates (still
  // scored with the standard n - f - 2 neighbourhood), so a cluster of 4
  // with f = 1 averages its 3 best-scored members instead of picking one.
  const std::size_t k =
      config_.multi_k != 0 ? config_.multi_k
                           : std::max<std::size_t>(1, n > f ? n - f : 1);
  const auto score = scores(updates, f, threads());
  std::vector<std::size_t> order(score.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) { return score[a] < score[b]; });
  order.resize(std::min(k, order.size()));

  telemetry_.inputs = n;
  telemetry_.kept = order.size();
  telemetry_.score_mean = util::mean(score);
  telemetry_.score_max = util::max_of(score);
  telemetry_.verdicts.clear();
  if (forensics()) {
    telemetry_.verdicts.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      telemetry_.verdicts[i] = {false, 0.0, score[i]};
    }
    const double w = 1.0 / static_cast<double>(order.size());
    for (std::size_t idx : order) {
      telemetry_.verdicts[idx].kept = true;
      telemetry_.verdicts[idx].weight = w;
    }
  }

  std::vector<ModelVec> picked;
  picked.reserve(order.size());
  for (std::size_t idx : order) picked.push_back(updates[idx]);
  return tensor::mean_of(picked);
}

}  // namespace abdhfl::agg
