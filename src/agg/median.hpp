#pragma once
// Coordinate-wise Median and Trimmed Mean (Yin et al., ICML 2018).  Median
// is what the paper's non-IID experiments deploy at the partial-aggregation
// levels; the trimmed mean keeps the interior (1-2β) fraction of each
// coordinate.

#include "agg/aggregator.hpp"

namespace abdhfl::agg {

class MedianAggregator final : public Aggregator {
 public:
  ModelVec aggregate(const std::vector<ModelVec>& updates) override;
  [[nodiscard]] std::string name() const override { return "median"; }
};

class TrimmedMeanAggregator final : public Aggregator {
 public:
  /// beta = per-side trim fraction (0 <= beta < 0.5).
  explicit TrimmedMeanAggregator(double beta);

  ModelVec aggregate(const std::vector<ModelVec>& updates) override;
  [[nodiscard]] std::string name() const override { return "trimmed_mean"; }
  [[nodiscard]] double tolerance_fraction(std::size_t) const override { return beta_; }

 private:
  double beta_;
};

}  // namespace abdhfl::agg
