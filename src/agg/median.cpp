#include "agg/median.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "tensor/kernels.hpp"
#include "tensor/ops.hpp"
#include "util/thread_pool.hpp"

namespace abdhfl::agg {

namespace {

/// Run `column_fn(column_of_n_floats) -> float` for every coordinate,
/// partitioning the coordinate range across the pool.  Coordinates are
/// gathered in tiles so each chunk reads the update matrix in long row
/// segments (kern::gather_columns) instead of one strided float per
/// coordinate.  column_fn may permute its column in place (it is per-chunk
/// scratch).  Every output element depends only on its own column, so the
/// partition cannot change the result: parallel output is bitwise-identical
/// to serial.
template <class ColumnFn>
void for_each_column(const std::vector<ModelVec>& updates, std::size_t dim,
                     std::size_t threads, ModelVec& out, ColumnFn column_fn) {
  const std::size_t n = updates.size();
  std::vector<const float*> rows(n);
  for (std::size_t k = 0; k < n; ++k) rows[k] = updates[k].data();

  // ~64K floats of gather scratch per chunk, at least 16 coordinates.
  const std::size_t tile =
      std::clamp<std::size_t>(std::size_t{65536} / std::max<std::size_t>(n, 1), 16, 1024);

  util::global_pool().parallel_ranges(
      0, dim,
      [&](std::size_t lo, std::size_t hi) {
        std::vector<float> gathered(tile * n);
        for (std::size_t base = lo; base < hi; base += tile) {
          const std::size_t stop = std::min(base + tile, hi);
          tensor::kern::gather_columns(rows.data(), n, base, stop, gathered.data());
          for (std::size_t c = base; c < stop; ++c) {
            out[c] = column_fn(gathered.data() + (c - base) * n);
          }
        }
      },
      threads);
}

/// Per-input Euclidean distances to the aggregate output — the forensics
/// score for rules whose column-wise math discards input identity.  One
/// kernel call chain per input, parallel over inputs: bitwise-deterministic
/// for any thread count.
std::vector<double> distances_to(const std::vector<ModelVec>& updates,
                                 const ModelVec& out, std::size_t dim,
                                 std::size_t threads) {
  std::vector<double> dist(updates.size());
  util::global_pool().parallel_for(
      0, updates.size(),
      [&](std::size_t k) {
        dist[k] =
            std::sqrt(tensor::kern::distance_squared(updates[k].data(), out.data(), dim));
      },
      threads);
  return dist;
}

}  // namespace

ModelVec MedianAggregator::aggregate(const std::vector<ModelVec>& updates) {
  const std::size_t dim = tensor::checked_common_size(updates);
  const std::size_t n = updates.size();
  ModelVec out(dim);
  telemetry_ = {n, n, 0.0, 0.0, {}};
  const std::size_t mid = n / 2;
  for_each_column(updates, dim, threads(), out, [n, mid](float* col) {
    std::nth_element(col, col + mid, col + n);
    if (n % 2 == 1) return col[mid];
    const float hi = col[mid];
    const float lo = *std::max_element(col, col + mid);
    return 0.5f * (lo + hi);
  });
  if (forensics()) {
    const auto dist = distances_to(updates, out, dim, threads());
    telemetry_.verdicts.resize(n);
    const double w = 1.0 / static_cast<double>(n);
    for (std::size_t k = 0; k < n; ++k) telemetry_.verdicts[k] = {true, w, dist[k]};
  }
  return out;
}

TrimmedMeanAggregator::TrimmedMeanAggregator(double beta) : beta_(beta) {
  if (beta < 0.0 || beta >= 0.5) {
    throw std::invalid_argument("TrimmedMeanAggregator: beta out of [0, 0.5)");
  }
}

ModelVec TrimmedMeanAggregator::aggregate(const std::vector<ModelVec>& updates) {
  const std::size_t dim = tensor::checked_common_size(updates);
  const std::size_t n = updates.size();
  auto trim = static_cast<std::size_t>(std::floor(beta_ * static_cast<double>(n)));
  if (2 * trim >= n) trim = (n - 1) / 2;  // always keep at least one value
  const std::size_t keep = n - 2 * trim;
  telemetry_ = {n, keep, 0.0, 0.0, {}};

  ModelVec out(dim);
  for_each_column(updates, dim, threads(), out, [n, trim, keep](float* col) {
    std::sort(col, col + n);
    double acc = 0.0;
    for (std::size_t k = trim; k < trim + keep; ++k) acc += col[k];
    return static_cast<float>(acc / static_cast<double>(keep));
  });
  if (forensics()) {
    // Coordinate-wise trimming has no per-input keep set; attribute by
    // distance to the output — the `keep` closest inputs count as kept
    // (stable index tie-break), matching telemetry_.kept.
    const auto dist = distances_to(updates, out, dim, threads());
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) { return dist[a] < dist[b]; });
    telemetry_.verdicts.resize(n);
    for (std::size_t k = 0; k < n; ++k) telemetry_.verdicts[k] = {false, 0.0, dist[k]};
    const double w = 1.0 / static_cast<double>(keep);
    for (std::size_t r = 0; r < keep; ++r) {
      telemetry_.verdicts[order[r]].kept = true;
      telemetry_.verdicts[order[r]].weight = w;
    }
  }
  return out;
}

}  // namespace abdhfl::agg
