#include "agg/median.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "tensor/ops.hpp"

namespace abdhfl::agg {

ModelVec MedianAggregator::aggregate(const std::vector<ModelVec>& updates) {
  const std::size_t dim = tensor::checked_common_size(updates);
  const std::size_t n = updates.size();
  ModelVec out(dim);
  std::vector<float> column(n);
  for (std::size_t i = 0; i < dim; ++i) {
    for (std::size_t k = 0; k < n; ++k) column[k] = updates[k][i];
    const std::size_t mid = n / 2;
    std::nth_element(column.begin(), column.begin() + static_cast<std::ptrdiff_t>(mid),
                     column.end());
    if (n % 2 == 1) {
      out[i] = column[mid];
    } else {
      const float hi = column[mid];
      const float lo =
          *std::max_element(column.begin(), column.begin() + static_cast<std::ptrdiff_t>(mid));
      out[i] = 0.5f * (lo + hi);
    }
  }
  return out;
}

TrimmedMeanAggregator::TrimmedMeanAggregator(double beta) : beta_(beta) {
  if (beta < 0.0 || beta >= 0.5) {
    throw std::invalid_argument("TrimmedMeanAggregator: beta out of [0, 0.5)");
  }
}

ModelVec TrimmedMeanAggregator::aggregate(const std::vector<ModelVec>& updates) {
  const std::size_t dim = tensor::checked_common_size(updates);
  const std::size_t n = updates.size();
  auto trim = static_cast<std::size_t>(std::floor(beta_ * static_cast<double>(n)));
  if (2 * trim >= n) trim = (n - 1) / 2;  // always keep at least one value
  const std::size_t keep = n - 2 * trim;

  ModelVec out(dim);
  std::vector<float> column(n);
  for (std::size_t i = 0; i < dim; ++i) {
    for (std::size_t k = 0; k < n; ++k) column[k] = updates[k][i];
    std::sort(column.begin(), column.end());
    double acc = 0.0;
    for (std::size_t k = trim; k < trim + keep; ++k) acc += column[k];
    out[i] = static_cast<float>(acc / static_cast<double>(keep));
  }
  return out;
}

}  // namespace abdhfl::agg
