#include "agg/median.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "tensor/kernels.hpp"
#include "tensor/ops.hpp"
#include "util/thread_pool.hpp"

namespace abdhfl::agg {

namespace {

/// Run `column_fn(column_of_n_floats) -> float` for every coordinate,
/// partitioning the coordinate range across the pool.  Coordinates are
/// gathered in tiles so each chunk reads the update matrix in long row
/// segments (kern::gather_columns) instead of one strided float per
/// coordinate.  column_fn may permute its column in place (it is per-chunk
/// scratch).  Every output element depends only on its own column, so the
/// partition cannot change the result: parallel output is bitwise-identical
/// to serial.
template <class ColumnFn>
void for_each_column(const std::vector<ModelVec>& updates, std::size_t dim,
                     std::size_t threads, ModelVec& out, ColumnFn column_fn) {
  const std::size_t n = updates.size();
  std::vector<const float*> rows(n);
  for (std::size_t k = 0; k < n; ++k) rows[k] = updates[k].data();

  // ~64K floats of gather scratch per chunk, at least 16 coordinates.
  const std::size_t tile =
      std::clamp<std::size_t>(std::size_t{65536} / std::max<std::size_t>(n, 1), 16, 1024);

  util::global_pool().parallel_ranges(
      0, dim,
      [&](std::size_t lo, std::size_t hi) {
        std::vector<float> gathered(tile * n);
        for (std::size_t base = lo; base < hi; base += tile) {
          const std::size_t stop = std::min(base + tile, hi);
          tensor::kern::gather_columns(rows.data(), n, base, stop, gathered.data());
          for (std::size_t c = base; c < stop; ++c) {
            out[c] = column_fn(gathered.data() + (c - base) * n);
          }
        }
      },
      threads);
}

}  // namespace

ModelVec MedianAggregator::aggregate(const std::vector<ModelVec>& updates) {
  const std::size_t dim = tensor::checked_common_size(updates);
  const std::size_t n = updates.size();
  ModelVec out(dim);
  telemetry_ = {n, n, 0.0, 0.0};
  const std::size_t mid = n / 2;
  for_each_column(updates, dim, threads(), out, [n, mid](float* col) {
    std::nth_element(col, col + mid, col + n);
    if (n % 2 == 1) return col[mid];
    const float hi = col[mid];
    const float lo = *std::max_element(col, col + mid);
    return 0.5f * (lo + hi);
  });
  return out;
}

TrimmedMeanAggregator::TrimmedMeanAggregator(double beta) : beta_(beta) {
  if (beta < 0.0 || beta >= 0.5) {
    throw std::invalid_argument("TrimmedMeanAggregator: beta out of [0, 0.5)");
  }
}

ModelVec TrimmedMeanAggregator::aggregate(const std::vector<ModelVec>& updates) {
  const std::size_t dim = tensor::checked_common_size(updates);
  const std::size_t n = updates.size();
  auto trim = static_cast<std::size_t>(std::floor(beta_ * static_cast<double>(n)));
  if (2 * trim >= n) trim = (n - 1) / 2;  // always keep at least one value
  const std::size_t keep = n - 2 * trim;
  telemetry_ = {n, keep, 0.0, 0.0};

  ModelVec out(dim);
  for_each_column(updates, dim, threads(), out, [n, trim, keep](float* col) {
    std::sort(col, col + n);
    double acc = 0.0;
    for (std::size_t k = trim; k < trim + keep; ++k) acc += col[k];
    return static_cast<float>(acc / static_cast<double>(keep));
  });
  return out;
}

}  // namespace abdhfl::agg
