#include "agg/aggregator.hpp"

#include <stdexcept>

#include "agg/autogm.hpp"
#include "agg/clipping.hpp"
#include "agg/cluster_agg.hpp"
#include "agg/geomed.hpp"
#include "agg/krum.hpp"
#include "agg/mean.hpp"
#include "agg/median.hpp"

namespace abdhfl::agg {

std::unique_ptr<Aggregator> make_aggregator(const std::string& name,
                                            double byzantine_fraction) {
  if (name == "mean") return std::make_unique<MeanAggregator>();
  if (name == "krum") {
    return std::make_unique<KrumAggregator>(KrumConfig{byzantine_fraction, 1});
  }
  if (name == "multikrum") {
    // multi_k = 0 -> adaptive selection size m = n - f - 2 at aggregate time.
    return std::make_unique<KrumAggregator>(KrumConfig{byzantine_fraction, 0});
  }
  if (name == "median") return std::make_unique<MedianAggregator>();
  if (name == "trimmed_mean") {
    return std::make_unique<TrimmedMeanAggregator>(byzantine_fraction);
  }
  if (name == "geomed") return std::make_unique<GeoMedAggregator>();
  if (name == "autogm") return std::make_unique<AutoGmAggregator>();
  if (name == "clustering") return std::make_unique<ClusterAggregator>();
  if (name == "centered_clip") return std::make_unique<CenteredClipAggregator>();
  if (name == "norm_filter") return std::make_unique<NormFilterAggregator>();
  throw std::invalid_argument("unknown aggregator: " + name);
}

const std::vector<std::string>& aggregator_names() {
  static const std::vector<std::string> names = {
      "mean",   "krum",   "multikrum",  "median",        "trimmed_mean",
      "geomed", "autogm", "clustering", "centered_clip", "norm_filter"};
  return names;
}

}  // namespace abdhfl::agg
