#include "agg/aggregator.hpp"

#include <stdexcept>

#include "agg/autogm.hpp"
#include "agg/clipping.hpp"
#include "agg/cluster_agg.hpp"
#include "agg/geomed.hpp"
#include "agg/krum.hpp"
#include "agg/mean.hpp"
#include "agg/median.hpp"

namespace abdhfl::agg {

std::unique_ptr<Aggregator> make_aggregator(const std::string& name,
                                            double byzantine_fraction,
                                            std::size_t threads) {
  std::unique_ptr<Aggregator> rule;
  if (name == "mean") {
    rule = std::make_unique<MeanAggregator>();
  } else if (name == "krum") {
    rule = std::make_unique<KrumAggregator>(KrumConfig{byzantine_fraction, 1});
  } else if (name == "multikrum") {
    // multi_k = 0 -> adaptive selection size m = n - f - 2 at aggregate time.
    rule = std::make_unique<KrumAggregator>(KrumConfig{byzantine_fraction, 0});
  } else if (name == "median") {
    rule = std::make_unique<MedianAggregator>();
  } else if (name == "trimmed_mean") {
    rule = std::make_unique<TrimmedMeanAggregator>(byzantine_fraction);
  } else if (name == "geomed") {
    rule = std::make_unique<GeoMedAggregator>();
  } else if (name == "autogm") {
    rule = std::make_unique<AutoGmAggregator>();
  } else if (name == "clustering") {
    rule = std::make_unique<ClusterAggregator>();
  } else if (name == "centered_clip") {
    rule = std::make_unique<CenteredClipAggregator>();
  } else if (name == "norm_filter") {
    rule = std::make_unique<NormFilterAggregator>();
  } else {
    throw std::invalid_argument("unknown aggregator: " + name);
  }
  rule->set_threads(threads);
  return rule;
}

const std::vector<std::string>& aggregator_names() {
  static const std::vector<std::string> names = {
      "mean",   "krum",   "multikrum",  "median",        "trimmed_mean",
      "geomed", "autogm", "clustering", "centered_clip", "norm_filter"};
  return names;
}

}  // namespace abdhfl::agg
