#include "agg/clipping.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "tensor/ops.hpp"
#include "util/stats.hpp"

namespace abdhfl::agg {

CenteredClipAggregator::CenteredClipAggregator(CenteredClipConfig config)
    : config_(config) {
  if (config_.radius <= 0.0 || config_.iterations == 0) {
    throw std::invalid_argument("CenteredClipAggregator: bad config");
  }
}

void CenteredClipAggregator::set_reference(std::span<const float> reference) {
  reference_.assign(reference.begin(), reference.end());
}

ModelVec CenteredClipAggregator::aggregate(const std::vector<ModelVec>& updates) {
  const std::size_t dim = tensor::checked_common_size(updates);
  ModelVec v = reference_.size() == dim ? reference_ : tensor::mean_of(updates);

  std::vector<float> delta(dim);
  for (std::size_t pass = 0; pass < config_.iterations; ++pass) {
    std::vector<double> acc(dim, 0.0);
    for (const auto& u : updates) {
      for (std::size_t i = 0; i < dim; ++i) delta[i] = u[i] - v[i];
      const double norm = tensor::norm2(delta);
      const double scale = norm > config_.radius && norm > 0.0 ? config_.radius / norm : 1.0;
      for (std::size_t i = 0; i < dim; ++i) acc[i] += scale * delta[i];
    }
    const double inv = 1.0 / static_cast<double>(updates.size());
    for (std::size_t i = 0; i < dim; ++i) {
      v[i] = static_cast<float>(v[i] + acc[i] * inv);
    }
  }
  return v;
}

NormFilterAggregator::NormFilterAggregator(NormFilterConfig config) : config_(config) {
  if (config_.factor <= 0.0) throw std::invalid_argument("NormFilterAggregator: bad factor");
}

void NormFilterAggregator::set_reference(std::span<const float> reference) {
  reference_.assign(reference.begin(), reference.end());
}

ModelVec NormFilterAggregator::aggregate(const std::vector<ModelVec>& updates) {
  const std::size_t dim = tensor::checked_common_size(updates);
  const std::size_t n = updates.size();
  const bool have_ref = reference_.size() == dim;

  std::vector<double> dist(n);
  for (std::size_t k = 0; k < n; ++k) {
    if (have_ref) {
      dist[k] = std::sqrt(tensor::distance_squared(updates[k], reference_));
    } else {
      dist[k] = tensor::norm2(updates[k]);
    }
  }
  const double med = util::median_of(dist);
  const double cutoff = config_.factor * med;

  std::vector<ModelVec> kept;
  for (std::size_t k = 0; k < n; ++k) {
    // med == 0 means all updates coincide with the reference; keep all.
    if (med == 0.0 || dist[k] <= cutoff) kept.push_back(updates[k]);
  }
  if (kept.empty()) kept = updates;  // degenerate: never return nothing
  last_kept_ = kept.size();
  return tensor::mean_of(kept);
}

}  // namespace abdhfl::agg
