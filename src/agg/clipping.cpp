#include "agg/clipping.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "tensor/kernels.hpp"
#include "tensor/ops.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace abdhfl::agg {

CenteredClipAggregator::CenteredClipAggregator(CenteredClipConfig config)
    : config_(config) {
  if (config_.radius <= 0.0 || config_.iterations == 0) {
    throw std::invalid_argument("CenteredClipAggregator: bad config");
  }
}

void CenteredClipAggregator::set_reference(std::span<const float> reference) {
  reference_.assign(reference.begin(), reference.end());
}

ModelVec CenteredClipAggregator::aggregate(const std::vector<ModelVec>& updates) {
  const std::size_t dim = tensor::checked_common_size(updates);
  const std::size_t n = updates.size();
  ModelVec v = reference_.size() == dim ? reference_ : tensor::mean_of(updates);

  auto& pool = util::global_pool();

  // Each clipping pass splits into two deterministic parallel phases:
  //   (a) per-update clip scales — parallel over updates, each scale written
  //       by exactly one task from one distance_squared call chain;
  //   (b) acc[i] = sum_k scale[k] * (u_k[i] - v[i]) — parallel over
  //       coordinates, every chunk adding k in the same ascending order the
  //       serial loop uses.
  // So the parallel result is bitwise-identical to the serial one.
  std::vector<double> scale(n);
  std::vector<double> dist(n);
  std::vector<double> acc(dim);
  for (std::size_t pass = 0; pass < config_.iterations; ++pass) {
    pool.parallel_for(
        0, n,
        [&](std::size_t k) {
          const double norm =
              std::sqrt(tensor::kern::distance_squared(updates[k].data(), v.data(), dim));
          dist[k] = norm;
          scale[k] =
              norm > config_.radius && norm > 0.0 ? config_.radius / norm : 1.0;
        },
        threads_);

    pool.parallel_ranges(
        0, dim,
        [&](std::size_t lo, std::size_t hi) {
          std::fill(acc.begin() + static_cast<std::ptrdiff_t>(lo),
                    acc.begin() + static_cast<std::ptrdiff_t>(hi), 0.0);
          for (std::size_t k = 0; k < n; ++k) {
            tensor::kern::accumulate_clipped_diff(scale[k], updates[k].data() + lo,
                                                  v.data() + lo, acc.data() + lo,
                                                  hi - lo);
          }
        },
        threads_);

    const double inv = 1.0 / static_cast<double>(n);
    for (std::size_t i = 0; i < dim; ++i) {
      v[i] = static_cast<float>(v[i] + acc[i] * inv);
    }
  }
  // kept = updates left unclipped in the final pass; scores are the final
  // distances to the estimate.
  std::size_t unclipped = 0;
  for (double s : scale) {
    if (s >= 1.0) ++unclipped;
  }
  telemetry_.inputs = n;
  telemetry_.kept = unclipped;
  telemetry_.score_mean = util::mean(dist);
  telemetry_.score_max = util::max_of(dist);
  telemetry_.verdicts.clear();
  if (forensics()) {
    // "Kept" = unclipped in the final pass; weight = the fraction of the
    // input's offset that survived the clip (scale / n).
    telemetry_.verdicts.resize(n);
    const double inv = 1.0 / static_cast<double>(n);
    for (std::size_t k = 0; k < n; ++k) {
      telemetry_.verdicts[k] = {scale[k] >= 1.0, scale[k] * inv, dist[k]};
    }
  }
  return v;
}

NormFilterAggregator::NormFilterAggregator(NormFilterConfig config) : config_(config) {
  if (config_.factor <= 0.0) throw std::invalid_argument("NormFilterAggregator: bad factor");
}

void NormFilterAggregator::set_reference(std::span<const float> reference) {
  reference_.assign(reference.begin(), reference.end());
}

ModelVec NormFilterAggregator::aggregate(const std::vector<ModelVec>& updates) {
  const std::size_t dim = tensor::checked_common_size(updates);
  const std::size_t n = updates.size();
  const bool have_ref = reference_.size() == dim;

  // Each distance is one kernel call chain per update — parallel over
  // updates is trivially bitwise-deterministic.
  std::vector<double> dist(n);
  util::global_pool().parallel_for(
      0, n,
      [&](std::size_t k) {
        if (have_ref) {
          dist[k] = std::sqrt(
              tensor::kern::distance_squared(updates[k].data(), reference_.data(), dim));
        } else {
          dist[k] = std::sqrt(tensor::kern::norm2_squared(updates[k].data(), dim));
        }
      },
      threads_);
  const double med = util::median_of(dist);
  const double cutoff = config_.factor * med;

  std::vector<ModelVec> kept;
  std::vector<char> keep_mask(n, 0);
  for (std::size_t k = 0; k < n; ++k) {
    // med == 0 means all updates coincide with the reference; keep all.
    if (med == 0.0 || dist[k] <= cutoff) {
      kept.push_back(updates[k]);
      keep_mask[k] = 1;
    }
  }
  if (kept.empty()) {  // degenerate: never return nothing
    kept = updates;
    std::fill(keep_mask.begin(), keep_mask.end(), char{1});
  }
  last_kept_ = kept.size();
  telemetry_.inputs = n;
  telemetry_.kept = kept.size();
  telemetry_.score_mean = util::mean(dist);
  telemetry_.score_max = util::max_of(dist);
  telemetry_.verdicts.clear();
  if (forensics()) {
    telemetry_.verdicts.resize(n);
    const double w = 1.0 / static_cast<double>(kept.size());
    for (std::size_t k = 0; k < n; ++k) {
      telemetry_.verdicts[k] = {keep_mask[k] != 0, keep_mask[k] != 0 ? w : 0.0,
                                dist[k]};
    }
  }
  return tensor::mean_of(kept);
}

}  // namespace abdhfl::agg
