#pragma once
// Clipping-family rules from Table II: Centered Clipping (Karimireddy et
// al., "CC") and a norm-bound filter.  Both need a reference point — the
// previous round's model — supplied by the runner via set_reference().

#include "agg/aggregator.hpp"

namespace abdhfl::agg {

struct CenteredClipConfig {
  double radius = 1.0;            // clip threshold tau
  std::size_t iterations = 3;     // clipped-mean refinement passes
};

/// v <- v + mean_i clip(x_i - v, tau), iterated.  v starts at the reference
/// (or the coordinate-wise mean when no reference was set).
class CenteredClipAggregator final : public Aggregator {
 public:
  explicit CenteredClipAggregator(CenteredClipConfig config = {});

  ModelVec aggregate(const std::vector<ModelVec>& updates) override;
  void set_reference(std::span<const float> reference) override;
  [[nodiscard]] std::string name() const override { return "centered_clip"; }

 private:
  CenteredClipConfig config_;
  ModelVec reference_;
};

struct NormFilterConfig {
  /// Updates whose distance to the reference exceeds `factor` times the
  /// median distance are dropped before averaging.
  double factor = 2.0;
};

class NormFilterAggregator final : public Aggregator {
 public:
  explicit NormFilterAggregator(NormFilterConfig config = {});

  ModelVec aggregate(const std::vector<ModelVec>& updates) override;
  void set_reference(std::span<const float> reference) override;
  [[nodiscard]] std::string name() const override { return "norm_filter"; }

  /// How many updates the last call kept (for tests / diagnostics).
  [[nodiscard]] std::size_t last_kept() const noexcept { return last_kept_; }

 private:
  NormFilterConfig config_;
  ModelVec reference_;
  std::size_t last_kept_ = 0;
};

}  // namespace abdhfl::agg
