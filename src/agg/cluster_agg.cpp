#include "agg/cluster_agg.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "tensor/ops.hpp"

namespace abdhfl::agg {

ClusterAggregator::ClusterAggregator(ClusterAggConfig config) : config_(config) {
  if (config_.similarity_threshold < -1.0 || config_.similarity_threshold > 1.0) {
    throw std::invalid_argument("ClusterAggregator: threshold out of [-1,1]");
  }
}

double ClusterAggregator::cosine(std::span<const float> a, std::span<const float> b) {
  const double na = tensor::norm2(a);
  const double nb = tensor::norm2(b);
  if (na == 0.0 || nb == 0.0) return 0.0;
  return tensor::dot(a, b) / (na * nb);
}

ModelVec ClusterAggregator::aggregate(const std::vector<ModelVec>& updates) {
  tensor::checked_common_size(updates);
  const std::size_t n = updates.size();

  // Greedy leader clustering: each update joins the first existing cluster
  // whose representative (its first member) is similar enough; otherwise it
  // founds a new cluster.
  std::vector<std::size_t> representative;  // index of each cluster's founder
  last_labels_.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    bool placed = false;
    for (std::size_t c = 0; c < representative.size(); ++c) {
      if (cosine(updates[i], updates[representative[c]]) >=
          config_.similarity_threshold) {
        last_labels_[i] = c;
        placed = true;
        break;
      }
    }
    if (!placed) {
      last_labels_[i] = representative.size();
      representative.push_back(i);
    }
  }

  // The largest cluster is assumed benign (ties: lower label wins).
  std::vector<std::size_t> counts(representative.size(), 0);
  for (std::size_t label : last_labels_) ++counts[label];
  const std::size_t best = static_cast<std::size_t>(
      std::max_element(counts.begin(), counts.end()) - counts.begin());

  std::vector<ModelVec> kept;
  for (std::size_t i = 0; i < n; ++i) {
    if (last_labels_[i] == best) kept.push_back(updates[i]);
  }
  telemetry_.inputs = n;
  telemetry_.kept = kept.size();
  telemetry_.score_mean = 0.0;
  telemetry_.score_max = 0.0;
  telemetry_.verdicts.clear();
  if (forensics()) {
    // Score each input by cosine dissimilarity to the winning cluster's
    // representative (diagnostic only; the clustering itself is unchanged).
    const std::size_t rep = representative[best];
    telemetry_.verdicts.resize(n);
    const double w = 1.0 / static_cast<double>(kept.size());
    for (std::size_t i = 0; i < n; ++i) {
      const bool in_best = last_labels_[i] == best;
      telemetry_.verdicts[i] = {in_best, in_best ? w : 0.0,
                                1.0 - cosine(updates[i], updates[rep])};
    }
  }
  return tensor::mean_of(kept);
}

}  // namespace abdhfl::agg
