#include "agg/cluster_agg.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "tensor/kernels.hpp"
#include "tensor/ops.hpp"

namespace abdhfl::agg {

ClusterAggregator::ClusterAggregator(ClusterAggConfig config) : config_(config) {
  if (config_.similarity_threshold < -1.0 || config_.similarity_threshold > 1.0) {
    throw std::invalid_argument("ClusterAggregator: threshold out of [-1,1]");
  }
}

double ClusterAggregator::cosine(std::span<const float> a, std::span<const float> b) {
  const double na = tensor::norm2(a);
  const double nb = tensor::norm2(b);
  if (na == 0.0 || nb == 0.0) return 0.0;
  return tensor::dot(a, b) / (na * nb);
}

ModelVec ClusterAggregator::aggregate(const std::vector<ModelVec>& updates) {
  tensor::checked_common_size(updates);
  const std::size_t n = updates.size();

  // Greedy leader clustering: each update joins the first existing cluster
  // whose representative (its first member) is similar enough; otherwise it
  // founds a new cluster.
  std::vector<std::size_t> representative;  // index of each cluster's founder
  last_labels_.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    bool placed = false;
    for (std::size_t c = 0; c < representative.size(); ++c) {
      if (cosine(updates[i], updates[representative[c]]) >=
          config_.similarity_threshold) {
        last_labels_[i] = c;
        placed = true;
        break;
      }
    }
    if (!placed) {
      last_labels_[i] = representative.size();
      representative.push_back(i);
    }
  }

  // The largest cluster is assumed benign (ties: lower label wins).
  std::vector<std::size_t> counts(representative.size(), 0);
  for (std::size_t label : last_labels_) ++counts[label];
  const std::size_t best = static_cast<std::size_t>(
      std::max_element(counts.begin(), counts.end()) - counts.begin());

  std::vector<ModelVec> kept;
  for (std::size_t i = 0; i < n; ++i) {
    if (last_labels_[i] == best) kept.push_back(updates[i]);
  }
  telemetry_.inputs = n;
  telemetry_.kept = kept.size();
  telemetry_.score_mean = 0.0;
  telemetry_.score_max = 0.0;
  telemetry_.verdicts.clear();
  if (forensics()) {
    // Score each input by cosine dissimilarity to the winning cluster's
    // representative (diagnostic only; the clustering itself is unchanged).
    const std::size_t rep = representative[best];
    telemetry_.verdicts.resize(n);
    const double w = 1.0 / static_cast<double>(kept.size());
    for (std::size_t i = 0; i < n; ++i) {
      const bool in_best = last_labels_[i] == best;
      telemetry_.verdicts[i] = {in_best, in_best ? w : 0.0,
                                1.0 - cosine(updates[i], updates[rep])};
    }
  }
  return tensor::mean_of(kept);
}

// Streaming clustering: place each input the moment it completes, against
// the founders seen so far — exactly the greedy pass aggregate() runs, since
// neither placement nor the winning-cluster mean ever looks at non-founder
// members of other clusters.  Each cluster keeps its founder (for cosine)
// and a running double sum (via kern::accumulate, the same kernel
// tensor::mean_of applies to the kept inputs in arrival order), so finish()
// is bitwise-identical to materialize-first aggregate().
class ClusterAggregator::Stream final : public StreamAccumulator {
 public:
  Stream(ClusterAggregator& owner, std::size_t dim)
      : owner_(owner), dim_(dim), current_(dim, 0.0f) {}

  void begin_input() override { cursor_ = 0; }

  void add_chunk(std::size_t offset, std::span<const float> values) override {
    if (offset != cursor_ || offset + values.size() > dim_) {
      throw std::invalid_argument("cluster stream: non-contiguous or oversized chunk");
    }
    std::copy(values.begin(), values.end(), current_.begin() + static_cast<std::ptrdiff_t>(offset));
    cursor_ += values.size();
  }

  void end_input() override {
    if (cursor_ != dim_) {
      throw std::invalid_argument("cluster stream: input not fully covered");
    }
    cursor_ = 0;
    std::size_t label = clusters_.size();
    for (std::size_t c = 0; c < clusters_.size(); ++c) {
      if (cosine(current_, clusters_[c].founder) >= owner_.config_.similarity_threshold) {
        label = c;
        break;
      }
    }
    if (label == clusters_.size()) {
      clusters_.push_back({current_, std::vector<double>(dim_, 0.0), 0});
    }
    Cluster& cluster = clusters_[label];
    tensor::kern::accumulate(current_.data(), cluster.sum.data(), dim_);
    ++cluster.count;
    labels_.push_back(label);
    ++inputs_;
  }

  ModelVec finish() override {
    if (inputs_ == 0) throw std::invalid_argument("cluster stream: no inputs");
    // Largest cluster wins; ties break toward the lower label, matching
    // aggregate()'s max_element over counts.
    std::size_t best = 0;
    for (std::size_t c = 1; c < clusters_.size(); ++c) {
      if (clusters_[c].count > clusters_[best].count) best = c;
    }
    const Cluster& winner = clusters_[best];
    owner_.last_labels_ = std::move(labels_);
    owner_.telemetry_.inputs = inputs_;
    owner_.telemetry_.kept = winner.count;
    owner_.telemetry_.score_mean = 0.0;
    owner_.telemetry_.score_max = 0.0;
    owner_.telemetry_.verdicts.clear();
    ModelVec out(dim_);
    const double inv = 1.0 / static_cast<double>(winner.count);
    for (std::size_t i = 0; i < dim_; ++i) out[i] = static_cast<float>(winner.sum[i] * inv);
    return out;
  }

 private:
  struct Cluster {
    std::vector<float> founder;
    std::vector<double> sum;
    std::size_t count = 0;
  };

  ClusterAggregator& owner_;
  std::size_t dim_;
  std::size_t cursor_ = 0;
  std::vector<float> current_;
  std::vector<Cluster> clusters_;
  std::vector<std::size_t> labels_;
};

std::unique_ptr<StreamAccumulator> ClusterAggregator::make_stream(std::size_t dim) {
  if (forensics()) return nullptr;  // per-input scores need materialized inputs
  return std::make_unique<Stream>(*this, dim);
}

}  // namespace abdhfl::agg
