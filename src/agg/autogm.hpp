#pragma once
// AutoGM — automated outlier-suppressed geometric median (Table II lists it
// under both the Euclidean-distance and median strategies).  Runs Weiszfeld
// to a geometric median, then automatically re-weights: updates farther than
// `cut` times the median distance from the current estimate are excluded and
// the median is re-solved, iterating until the kept set is stable.  This
// captures the "auto" part — no fixed Byzantine count is assumed.

#include "agg/aggregator.hpp"
#include "agg/geomed.hpp"

namespace abdhfl::agg {

struct AutoGmConfig {
  GeoMedConfig geomed;
  double cut = 2.5;                // distance multiple that marks an outlier
  std::size_t max_outer_rounds = 5;
};

class AutoGmAggregator final : public Aggregator {
 public:
  explicit AutoGmAggregator(AutoGmConfig config = {});

  ModelVec aggregate(const std::vector<ModelVec>& updates) override;
  [[nodiscard]] std::string name() const override { return "autogm"; }

  /// Updates kept in the final re-solve of the last aggregate() call.
  [[nodiscard]] std::size_t last_kept() const noexcept { return last_kept_; }

 private:
  AutoGmConfig config_;
  std::size_t last_kept_ = 0;
};

}  // namespace abdhfl::agg
