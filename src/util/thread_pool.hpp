#pragma once
// Fixed-size work-stealing-free thread pool with parallel_for helpers.
//
// Client local training inside one simulated global round is embarrassingly
// parallel (each device trains on its own shard), so the experiment drivers
// use parallel_for to spread device training across hardware threads while
// the discrete-event simulator itself stays single-threaded and
// deterministic.  The aggregation layer uses the same pool to fan out its
// numeric kernels (pairwise distances, coordinate partitions).
//
// Nesting: parallel_for / parallel_ranges may be called from inside a worker
// (e.g. an aggregator parallelizing under a parallelized experiment driver).
// The calling thread participates in executing chunks and helper tasks are
// fire-and-forget, so completion never depends on another worker becoming
// free — nested calls cannot deadlock.  Raw submit() + future::wait() from a
// worker does NOT have that property: with every worker blocked on a future
// the queue never drains, so from worker context either avoid waiting or use
// parallel_for, which is safe by construction.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace abdhfl::util {

class ThreadPool {
 public:
  /// threads == 0 means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Instrumentation snapshot for the observability layer.  wait_seconds is
  /// total enqueue-to-start latency and busy_seconds total execution time of
  /// queued tasks (parallel_for chunks the caller runs inline are not queued
  /// and therefore not counted here).  Counters are relaxed atomics bumped
  /// per task — noise next to the queue's mutex + condition variable — so
  /// metering is always on.
  struct Stats {
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    std::size_t queue_depth = 0;    // at snapshot time
    std::uint64_t queue_peak = 0;   // high-water depth since construction
    double wait_seconds = 0.0;
    double busy_seconds = 0.0;
  };
  [[nodiscard]] Stats stats() const;

  /// Enqueue a task; returns a future for its completion.
  template <class F>
  std::future<void> submit(F&& f) {
    auto task = std::make_shared<std::packaged_task<void()>>(std::forward<F>(f));
    std::future<void> fut = task->get_future();
    const auto enqueued = std::chrono::steady_clock::now();
    {
      std::lock_guard lock(mutex_);
      queue_.emplace([this, task, enqueued]() mutable {
        const auto begin = std::chrono::steady_clock::now();
        wait_ns_.fetch_add(
            std::chrono::duration_cast<std::chrono::nanoseconds>(begin - enqueued)
                .count(),
            std::memory_order_relaxed);
        (*task)();
        busy_ns_.fetch_add(std::chrono::duration_cast<std::chrono::nanoseconds>(
                               std::chrono::steady_clock::now() - begin)
                               .count(),
                           std::memory_order_relaxed);
        completed_.fetch_add(1, std::memory_order_relaxed);
      });
      if (queue_.size() > queue_peak_.load(std::memory_order_relaxed)) {
        queue_peak_.store(queue_.size(), std::memory_order_relaxed);
      }
    }
    submitted_.fetch_add(1, std::memory_order_relaxed);
    cv_.notify_one();
    return fut;
  }

  /// Run body(i) for i in [begin, end), blocking until all complete.
  /// Exceptions from the body propagate (the first one encountered).
  /// Runs inline on the calling thread when the pool has a single worker,
  /// the range has a single element, or max_tasks == 1.
  /// max_tasks caps the number of parallel chunks (0 = pool default); chunk
  /// sizes across the range differ by at most one element.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body,
                    std::size_t max_tasks = 0);

  /// Run body(lo, hi) over a balanced partition of [begin, end) into at most
  /// max_tasks contiguous chunks (0 = pool default).  Same inline and
  /// exception semantics as parallel_for.  Use this when the body wants a
  /// per-chunk scratch buffer (e.g. coordinate tiles).
  void parallel_ranges(std::size_t begin, std::size_t end,
                       const std::function<void(std::size_t, std::size_t)>& body,
                       std::size_t max_tasks = 0);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> queue_peak_{0};
  std::atomic<std::int64_t> wait_ns_{0};
  std::atomic<std::int64_t> busy_ns_{0};
};

/// Process-wide pool, lazily constructed.  Experiment binaries share it.
/// Worker count: ABDHFL_POOL_THREADS if set (read at first use), otherwise
/// hardware_concurrency.
ThreadPool& global_pool();

}  // namespace abdhfl::util
