#pragma once
// Fixed-size work-stealing-free thread pool with a parallel_for helper.
//
// Client local training inside one simulated global round is embarrassingly
// parallel (each device trains on its own shard), so the experiment drivers
// use parallel_for to spread device training across hardware threads while
// the discrete-event simulator itself stays single-threaded and
// deterministic.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace abdhfl::util {

class ThreadPool {
 public:
  /// threads == 0 means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue a task; returns a future for its completion.
  template <class F>
  std::future<void> submit(F&& f) {
    auto task = std::make_shared<std::packaged_task<void()>>(std::forward<F>(f));
    std::future<void> fut = task->get_future();
    {
      std::lock_guard lock(mutex_);
      queue_.emplace([task]() mutable { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Run body(i) for i in [begin, end), blocking until all complete.
  /// Exceptions from the body propagate (the first one encountered).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Process-wide pool, lazily constructed.  Experiment binaries share it.
ThreadPool& global_pool();

}  // namespace abdhfl::util
