#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace abdhfl::util {

double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (double x : xs) acc += x;
  return acc / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) noexcept {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) noexcept { return std::sqrt(variance(xs)); }

double min_of(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  return *std::max_element(xs.begin(), xs.end());
}

double median_of(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("median_of: empty input");
  std::vector<double> v(xs.begin(), xs.end());
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid), v.end());
  if (v.size() % 2 == 1) return v[mid];
  const double hi = v[mid];
  const double lo = *std::max_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (lo + hi);
}

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) throw std::invalid_argument("percentile: empty input");
  if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile: p out of [0,100]");
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  const double rank = p / 100.0 * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  if (lo + 1 >= v.size()) return v.back();
  const double frac = rank - static_cast<double>(lo);
  return v[lo] + frac * (v[lo + 1] - v[lo]);
}

double percentile_or(std::span<const double> xs, double p, double fallback) noexcept {
  if (xs.empty() || p < 0.0 || p > 100.0) return fallback;
  return percentile(xs, p);
}

double ci95_halfwidth(std::span<const double> xs) noexcept {
  if (xs.size() < 2) return 0.0;
  return 1.96 * stddev(xs) / std::sqrt(static_cast<double>(xs.size()));
}

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.n = xs.size();
  s.mean = mean(xs);
  s.stddev = stddev(xs);
  s.ci95 = ci95_halfwidth(xs);
  s.min = min_of(xs);
  s.max = max_of(xs);
  return s;
}

std::vector<double> pointwise_mean(const std::vector<std::vector<double>>& series) {
  if (series.empty()) return {};
  const std::size_t len = series.front().size();
  std::vector<double> out(len, 0.0);
  for (const auto& run : series) {
    if (run.size() != len) throw std::invalid_argument("pointwise_mean: ragged series");
    for (std::size_t i = 0; i < len; ++i) out[i] += run[i];
  }
  for (double& x : out) x /= static_cast<double>(series.size());
  return out;
}

std::vector<double> pointwise_ci95(const std::vector<std::vector<double>>& series) {
  if (series.empty()) return {};
  const std::size_t len = series.front().size();
  std::vector<double> out(len, 0.0);
  std::vector<double> column(series.size());
  for (std::size_t i = 0; i < len; ++i) {
    for (std::size_t r = 0; r < series.size(); ++r) {
      if (series[r].size() != len) throw std::invalid_argument("pointwise_ci95: ragged series");
      column[r] = series[r][i];
    }
    out[i] = ci95_halfwidth(column);
  }
  return out;
}

}  // namespace abdhfl::util
