#pragma once
// Tiny command-line flag parser shared by the bench and example binaries.
//
// Flags use the form --name value or --name=value; bools may omit the value
// (--paper-scale).  Unknown flags are an error so typos in sweep scripts
// fail loudly instead of silently running the default configuration.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace abdhfl::util {

class Cli {
 public:
  Cli(int argc, const char* const* argv);

  /// Declare a flag with a default; returns the parsed value.  Declaring is
  /// what marks a flag as known — call these before finish().
  [[nodiscard]] std::int64_t integer(const std::string& name, std::int64_t def,
                                     const std::string& help);
  [[nodiscard]] double real(const std::string& name, double def, const std::string& help);
  [[nodiscard]] std::string str(const std::string& name, std::string def,
                                const std::string& help);
  [[nodiscard]] bool boolean(const std::string& name, bool def, const std::string& help);

  /// Validates that every flag supplied on the command line was declared and
  /// handles --help (prints usage, returns false meaning "exit now").
  [[nodiscard]] bool finish();

  [[nodiscard]] const std::string& program() const noexcept { return program_; }

 private:
  struct Decl {
    std::string help;
    std::string default_repr;
  };

  std::optional<std::string> raw(const std::string& name);

  std::string program_;
  std::map<std::string, std::string> values_;       // supplied on command line
  std::map<std::string, Decl> declared_;            // registered by the binary
  bool help_requested_ = false;
};

}  // namespace abdhfl::util
