#pragma once
// Deterministic, seedable random number generation for simulations.
//
// Everything in this repository that needs randomness draws from Rng, a
// xoshiro256** generator seeded through SplitMix64.  Simulation results are
// therefore reproducible bit-for-bit from a single 64-bit seed, which the
// experiment harnesses rely on for their repeated-run confidence intervals
// (run k uses seed base_seed + k).

#include <array>
#include <cstdint>
#include <cstddef>
#include <vector>

namespace abdhfl::util {

/// SplitMix64 step; used to expand a user seed into xoshiro state.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** PRNG.  Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0xABD4F1ULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& s : state_) s = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n).  n must be > 0.
  std::uint64_t below(std::uint64_t n) noexcept {
    // Lemire's nearly-divisionless method.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = -n % n;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t between(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Standard normal via Marsaglia polar method.
  double normal() noexcept;

  /// Normal with mean/stddev.
  double normal(double mean, double stddev) noexcept { return mean + stddev * normal(); }

  /// Log-normal with parameters of the underlying normal.
  double lognormal(double mu, double sigma) noexcept;

  /// Exponential with given rate (lambda > 0).
  double exponential(double rate) noexcept;

  /// true with probability p.
  bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Fisher-Yates shuffle.
  template <class T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// k distinct indices from [0, n) in random order (k <= n).
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

  /// The raw 4x64-bit xoshiro state, for checkpointing.  Note the cached
  /// Marsaglia spare normal is NOT part of this state; set_state() discards
  /// it, so a checkpoint taken between the two draws of a normal() pair
  /// resumes on the next fresh pair.  Every checkpoint site in this repo
  /// snapshots at round boundaries where no spare is pending.
  [[nodiscard]] std::array<std::uint64_t, 4> state() const noexcept { return state_; }

  /// Restore a state captured by state().  Clears the spare-normal cache.
  void set_state(const std::array<std::uint64_t, 4>& s) noexcept {
    state_ = s;
    have_spare_normal_ = false;
    spare_normal_ = 0.0;
  }

  /// Derive an independent child generator (for per-node streams).
  Rng split() noexcept {
    Rng child(0);
    child.state_ = {(*this)(), (*this)(), (*this)(), (*this)()};
    // Avoid the all-zero state, which xoshiro cannot escape.
    if (child.state_[0] == 0 && child.state_[1] == 0 && child.state_[2] == 0 &&
        child.state_[3] == 0) {
      child.state_[0] = 1;
    }
    return child;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  bool have_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace abdhfl::util
