#include "util/rng.hpp"

#include <cmath>

namespace abdhfl::util {

double Rng::normal() noexcept {
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return spare_normal_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  have_spare_normal_ = true;
  return u * factor;
}

double Rng::lognormal(double mu, double sigma) noexcept {
  return std::exp(normal(mu, sigma));
}

double Rng::exponential(double rate) noexcept {
  // uniform() is in [0,1); use 1-u in (0,1] so log() never sees zero.
  return -std::log(1.0 - uniform()) / rate;
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  std::vector<std::size_t> all(n);
  for (std::size_t i = 0; i < n; ++i) all[i] = i;
  // Partial Fisher-Yates: the first k slots end up as the sample.
  for (std::size_t i = 0; i < k && i + 1 < n; ++i) {
    const std::size_t j = i + static_cast<std::size_t>(below(n - i));
    std::swap(all[i], all[j]);
  }
  all.resize(k);
  return all;
}

}  // namespace abdhfl::util
