#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace abdhfl::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("Table: empty header");
}

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("Table: row arity " + std::to_string(row.size()) +
                                " != header arity " + std::to_string(header_.size()));
  }
  rows_.push_back(std::move(row));
}

std::string Table::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string Table::to_text() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());
  }

  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << row[c];
      if (c + 1 < row.size()) out << std::string(width[c] - row[c].size() + 2, ' ');
    }
    out << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + (c + 1 < width.size() ? 2 : 0);
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return out.str();
}

namespace {
std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char ch : field) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

std::string Table::to_csv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << csv_escape(row[c]);
      if (c + 1 < row.size()) out << ',';
    }
    out << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

void Table::write_csv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("Table: cannot open " + path);
  f << to_csv();
  if (!f) throw std::runtime_error("Table: write failed for " + path);
}

}  // namespace abdhfl::util
