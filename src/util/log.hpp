#pragma once
// Leveled stderr logging.  Kept deliberately small: the simulator is the
// hot path and must be able to compile logging out of inner loops, so the
// macros evaluate their arguments only when the level is enabled.

#include <cstdio>
#include <string>

namespace abdhfl::util {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide threshold; messages below it are suppressed.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

[[nodiscard]] const char* level_name(LogLevel level) noexcept;

/// Parse "debug"/"info"/"warn"/"error"/"off"; throws on anything else.
[[nodiscard]] LogLevel parse_log_level(const std::string& name);

namespace detail {
void vlog(LogLevel level, const char* file, int line, const char* fmt, ...)
#if defined(__GNUC__)
    __attribute__((format(printf, 4, 5)))
#endif
    ;
}  // namespace detail

}  // namespace abdhfl::util

#define ABDHFL_LOG(level, ...)                                                     \
  do {                                                                             \
    if (static_cast<int>(level) >= static_cast<int>(::abdhfl::util::log_level()))  \
      ::abdhfl::util::detail::vlog(level, __FILE__, __LINE__, __VA_ARGS__);        \
  } while (0)

#define LOG_DEBUG(...) ABDHFL_LOG(::abdhfl::util::LogLevel::kDebug, __VA_ARGS__)
#define LOG_INFO(...) ABDHFL_LOG(::abdhfl::util::LogLevel::kInfo, __VA_ARGS__)
#define LOG_WARN(...) ABDHFL_LOG(::abdhfl::util::LogLevel::kWarn, __VA_ARGS__)
#define LOG_ERROR(...) ABDHFL_LOG(::abdhfl::util::LogLevel::kError, __VA_ARGS__)
