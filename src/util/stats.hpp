#pragma once
// Small descriptive-statistics helpers used by the experiment harnesses to
// turn repeated-run measurements into the mean ± confidence-interval numbers
// the paper reports (Table V averages five runs; Fig. 3 shades the CI band).

#include <cstddef>
#include <span>
#include <vector>

namespace abdhfl::util {

[[nodiscard]] double mean(std::span<const double> xs) noexcept;

/// Sample variance (divides by n-1).  Returns 0 for fewer than two samples.
[[nodiscard]] double variance(std::span<const double> xs) noexcept;

[[nodiscard]] double stddev(std::span<const double> xs) noexcept;

[[nodiscard]] double min_of(std::span<const double> xs) noexcept;
[[nodiscard]] double max_of(std::span<const double> xs) noexcept;

/// Median (copies and partially sorts its input).
[[nodiscard]] double median_of(std::span<const double> xs);

/// Linear-interpolation percentile, p in [0, 100] (p=50 matches median_of;
/// p=0/100 are min/max).  Copies and sorts its input.  Used by the
/// observability exporters for p50/p95/p99 latency summaries.  Throws on
/// empty input or p outside [0, 100].
[[nodiscard]] double percentile(std::span<const double> xs, double p);

/// percentile() that degrades instead of throwing: returns `fallback` on
/// empty input or p outside [0, 100].  For export/report paths where a run
/// with zero events of some class must not abort the writer.
[[nodiscard]] double percentile_or(std::span<const double> xs, double p,
                                   double fallback) noexcept;

/// Half-width of the ~95% confidence interval of the mean, using the normal
/// approximation (1.96 * s / sqrt(n)).  Good enough for the 5-run bands the
/// paper plots; returns 0 for fewer than two samples.
[[nodiscard]] double ci95_halfwidth(std::span<const double> xs) noexcept;

/// Summary bundle for one measured series.
struct Summary {
  double mean = 0.0;
  double stddev = 0.0;
  double ci95 = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::size_t n = 0;
};

[[nodiscard]] Summary summarize(std::span<const double> xs);

/// Per-index mean over a collection of equally long series (for averaging
/// learning curves across repeated runs).
[[nodiscard]] std::vector<double> pointwise_mean(
    const std::vector<std::vector<double>>& series);

/// Per-index 95% CI half-width over a collection of equally long series.
[[nodiscard]] std::vector<double> pointwise_ci95(
    const std::vector<std::vector<double>>& series);

}  // namespace abdhfl::util
