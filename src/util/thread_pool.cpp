#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>

namespace abdhfl::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

ThreadPool::Stats ThreadPool::stats() const {
  Stats s;
  {
    std::lock_guard lock(mutex_);
    s.queue_depth = queue_.size();
  }
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.queue_peak = queue_peak_.load(std::memory_order_relaxed);
  s.wait_seconds =
      static_cast<double>(wait_ns_.load(std::memory_order_relaxed)) * 1e-9;
  s.busy_seconds =
      static_cast<double>(busy_ns_.load(std::memory_order_relaxed)) * 1e-9;
  return s;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

namespace {

/// Shared state of one parallel_ranges call.  Heap-allocated and owned
/// jointly by the caller and the helper tasks, so a helper that only gets
/// scheduled after the caller has already finished every chunk still touches
/// valid memory (it sees no chunks left and returns).
struct ParallelState {
  std::size_t begin = 0;
  std::size_t chunks = 0;
  std::size_t base = 0;  // minimum chunk size; the first `extra` chunks get +1
  std::size_t extra = 0;
  const std::function<void(std::size_t, std::size_t)>* body = nullptr;

  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> completed{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::mutex done_mutex;
  std::condition_variable done_cv;

  /// Chunk c covers [lo(c), lo(c+1)); sizes differ by at most one.
  [[nodiscard]] std::size_t lo(std::size_t c) const noexcept {
    return begin + c * base + std::min(c, extra);
  }

  /// Claim and run chunks until none remain.
  void run_chunks() {
    for (;;) {
      const std::size_t c = next.fetch_add(1, std::memory_order_relaxed);
      if (c >= chunks) return;
      if (!failed.load(std::memory_order_relaxed)) {
        try {
          (*body)(lo(c), lo(c + 1));
        } catch (...) {
          std::lock_guard lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
          failed.store(true, std::memory_order_relaxed);
        }
      }
      if (completed.fetch_add(1, std::memory_order_acq_rel) + 1 == chunks) {
        std::lock_guard lock(done_mutex);
        done_cv.notify_all();
      }
    }
  }
};

}  // namespace

void ThreadPool::parallel_ranges(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& body,
    std::size_t max_tasks) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t limit =
      max_tasks != 0 ? max_tasks : std::max<std::size_t>(1, size() * 4);
  const std::size_t chunks = std::min(n, limit);
  if (size() == 1 || n == 1 || chunks == 1) {
    body(begin, end);
    return;
  }

  auto state = std::make_shared<ParallelState>();
  state->begin = begin;
  state->chunks = chunks;
  state->base = n / chunks;
  state->extra = n % chunks;
  state->body = &body;

  // Helper tasks are fire-and-forget: each drains whatever chunks remain and
  // holds the state alive.  One helper per chunk the caller cannot take.
  const std::size_t helpers = std::min(size(), chunks - 1);
  for (std::size_t h = 0; h < helpers; ++h) {
    submit([state] { state->run_chunks(); });
  }

  // The caller participates too, so progress never depends on a worker being
  // free — this is what makes nested calls deadlock-free.
  state->run_chunks();
  {
    std::unique_lock lock(state->done_mutex);
    state->done_cv.wait(lock, [&] {
      return state->completed.load(std::memory_order_acquire) == state->chunks;
    });
  }
  if (state->first_error) std::rethrow_exception(state->first_error);
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& body,
                              std::size_t max_tasks) {
  parallel_ranges(
      begin, end,
      [&body](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) body(i);
      },
      max_tasks);
}

ThreadPool& global_pool() {
  static ThreadPool pool([]() -> std::size_t {
    // ABDHFL_POOL_THREADS overrides hardware_concurrency — useful to pin the
    // worker count on shared machines, and to exercise real multi-worker
    // schedules in tests on single-core hosts.
    if (const char* env = std::getenv("ABDHFL_POOL_THREADS")) {
      const long v = std::strtol(env, nullptr, 10);
      if (v > 0) return static_cast<std::size_t>(v);
    }
    return 0;  // ThreadPool default: hardware_concurrency
  }());
  return pool;
}

}  // namespace abdhfl::util
