#include "util/cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace abdhfl::util {

Cli::Cli(int argc, const char* const* argv) {
  program_ = argc > 0 ? argv[0] : "prog";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      continue;
    }
    if (arg.rfind("--", 0) != 0) {
      throw std::invalid_argument("unexpected positional argument: " + arg);
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "";  // bare boolean flag
    }
  }
}

std::optional<std::string> Cli::raw(const std::string& name) {
  const auto it = values_.find(name);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::int64_t Cli::integer(const std::string& name, std::int64_t def, const std::string& help) {
  declared_[name] = {help, std::to_string(def)};
  const auto v = raw(name);
  if (!v) return def;
  return std::strtoll(v->c_str(), nullptr, 10);
}

double Cli::real(const std::string& name, double def, const std::string& help) {
  declared_[name] = {help, std::to_string(def)};
  const auto v = raw(name);
  if (!v) return def;
  return std::strtod(v->c_str(), nullptr);
}

std::string Cli::str(const std::string& name, std::string def, const std::string& help) {
  declared_[name] = {help, def};
  const auto v = raw(name);
  return v ? *v : def;
}

bool Cli::boolean(const std::string& name, bool def, const std::string& help) {
  declared_[name] = {help, def ? "true" : "false"};
  const auto v = raw(name);
  if (!v) return def;
  if (v->empty() || *v == "1" || *v == "true" || *v == "yes") return true;
  if (*v == "0" || *v == "false" || *v == "no") return false;
  throw std::invalid_argument("bad boolean for --" + name + ": " + *v);
}

bool Cli::finish() {
  for (const auto& [name, value] : values_) {
    (void)value;
    if (!declared_.contains(name)) {
      std::fprintf(stderr, "error: unknown flag --%s (see --help)\n", name.c_str());
      std::exit(2);
    }
  }
  if (help_requested_) {
    std::printf("usage: %s [flags]\n", program_.c_str());
    for (const auto& [name, decl] : declared_) {
      std::printf("  --%-22s %s (default: %s)\n", name.c_str(), decl.help.c_str(),
                  decl.default_repr.c_str());
    }
    return false;
  }
  return true;
}

}  // namespace abdhfl::util
