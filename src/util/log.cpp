#include "util/log.hpp"

#include <atomic>
#include <cstdarg>
#include <cstring>
#include <stdexcept>
#include <vector>

namespace abdhfl::util {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
}

void set_log_level(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

const char* level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

LogLevel parse_log_level(const std::string& name) {
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off") return LogLevel::kOff;
  throw std::invalid_argument("unknown log level: " + name);
}

namespace detail {
void vlog(LogLevel level, const char* file, int line, const char* fmt, ...) {
  // Strip the directory for readability.
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  // Format the whole message (prefix + body + newline) into one buffer and
  // emit it with a single fwrite: pool workers log concurrently, and
  // separate fprintf/vfprintf/fputc calls let two threads interleave partial
  // lines.  stderr is unbuffered, so one fwrite is one write() call.
  char stack_buf[1024];
  char* buf = stack_buf;
  std::vector<char> heap_buf;
  const int prefix =
      std::snprintf(stack_buf, sizeof(stack_buf), "[%s %s:%d] ", level_name(level),
                    base, line);
  if (prefix < 0) return;
  auto head = static_cast<std::size_t>(prefix);
  if (head >= sizeof(stack_buf)) head = sizeof(stack_buf) - 1;

  va_list args;
  va_start(args, fmt);
  va_list args_retry;
  va_copy(args_retry, args);
  const int body =
      std::vsnprintf(stack_buf + head, sizeof(stack_buf) - head, fmt, args);
  va_end(args);
  std::size_t len = head;
  if (body >= 0) {
    len += static_cast<std::size_t>(body);
    if (len + 1 > sizeof(stack_buf)) {
      // Truncated: redo the body into an exactly sized heap buffer.
      heap_buf.resize(len + 2);
      std::memcpy(heap_buf.data(), stack_buf, head);
      std::vsnprintf(heap_buf.data() + head, heap_buf.size() - head, fmt, args_retry);
      buf = heap_buf.data();
    }
  }
  va_end(args_retry);
  buf[len] = '\n';
  std::fwrite(buf, 1, len + 1, stderr);
}
}  // namespace detail

}  // namespace abdhfl::util
