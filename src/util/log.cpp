#include "util/log.hpp"

#include <atomic>
#include <cstdarg>
#include <stdexcept>

namespace abdhfl::util {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
}

void set_log_level(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

const char* level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

LogLevel parse_log_level(const std::string& name) {
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off") return LogLevel::kOff;
  throw std::invalid_argument("unknown log level: " + name);
}

namespace detail {
void vlog(LogLevel level, const char* file, int line, const char* fmt, ...) {
  // Strip the directory for readability.
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  std::fprintf(stderr, "[%s %s:%d] ", level_name(level), base, line);
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}
}  // namespace detail

}  // namespace abdhfl::util
