#pragma once
// Aligned text tables and CSV output for the experiment harnesses.  Every
// bench binary prints a human-readable table matching the paper's artifact
// and can mirror the same rows into a CSV file for plotting.

#include <cstddef>
#include <string>
#include <vector>

namespace abdhfl::util {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append one row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience formatting helpers.
  static std::string fmt(double v, int precision = 3);
  static std::string pct(double fraction, int precision = 1);

  /// Render with column alignment and a separator under the header.
  [[nodiscard]] std::string to_text() const;

  /// RFC-4180-ish CSV (quotes fields containing comma/quote/newline).
  [[nodiscard]] std::string to_csv() const;

  /// Write CSV to a file; throws on I/O failure.
  void write_csv(const std::string& path) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t cols() const noexcept { return header_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace abdhfl::util
