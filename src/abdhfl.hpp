#pragma once
// Umbrella header: the full public API of the ABD-HFL library.
//
// Most applications only need core/experiment.hpp (the scenario driver) or
// core/hfl_runner.hpp / core/async_runner.hpp (direct runner control); this
// header pulls in everything for exploratory use.

// Core paradigm.
#include "core/async_runner.hpp"
#include "core/experiment.hpp"
#include "core/hfl_runner.hpp"
#include "core/pipeline.hpp"
#include "core/trainer.hpp"
#include "core/types.hpp"
#include "core/vanilla_fl.hpp"

// Topology.
#include "topology/byzantine.hpp"
#include "topology/churn.hpp"
#include "topology/tree.hpp"

// Aggregation rules.
#include "agg/aggregator.hpp"
#include "agg/autogm.hpp"
#include "agg/clipping.hpp"
#include "agg/cluster_agg.hpp"
#include "agg/geomed.hpp"
#include "agg/krum.hpp"
#include "agg/mean.hpp"
#include "agg/median.hpp"

// Consensus protocols.
#include "consensus/committee.hpp"
#include "consensus/consensus.hpp"
#include "consensus/gossip.hpp"
#include "consensus/multidim.hpp"
#include "consensus/pbft.hpp"
#include "consensus/voting.hpp"

// Attacks.
#include "attacks/data_poison.hpp"
#include "attacks/model_attack.hpp"

// Substrates.
#include "data/dataset.hpp"
#include "data/mnist_idx.hpp"
#include "data/partition.hpp"
#include "data/synth_digits.hpp"
#include "nn/activations.hpp"
#include "nn/conv.hpp"
#include "nn/dense.hpp"
#include "nn/loss.hpp"
#include "nn/mlp.hpp"
#include "nn/quantize.hpp"
#include "nn/serialize.hpp"
#include "nn/sgd.hpp"
#include "sim/latency.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "tensor/matrix.hpp"
#include "tensor/ops.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
