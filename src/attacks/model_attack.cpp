#include "attacks/model_attack.hpp"

#include <cmath>
#include <stdexcept>

#include "tensor/ops.hpp"

namespace abdhfl::attacks {

NoiseAttack::NoiseAttack(double stddev) : stddev_(stddev) {
  if (stddev <= 0.0) throw std::invalid_argument("NoiseAttack: stddev <= 0");
}

ModelVec NoiseAttack::craft(const std::vector<ModelVec>&, const ModelVec& base,
                            util::Rng& rng) {
  ModelVec out = base;
  for (float& v : out) v = static_cast<float>(v + rng.normal(0.0, stddev_));
  return out;
}

SignFlipAttack::SignFlipAttack(double scale) : scale_(scale) {
  if (scale <= 0.0) throw std::invalid_argument("SignFlipAttack: scale <= 0");
}

ModelVec SignFlipAttack::craft(const std::vector<ModelVec>&, const ModelVec& base,
                               util::Rng&) {
  ModelVec out = base;
  tensor::scale(out, -scale_);
  return out;
}

AlieAttack::AlieAttack(double z) : z_(z) {
  if (z <= 0.0) throw std::invalid_argument("AlieAttack: z <= 0");
}

ModelVec AlieAttack::craft(const std::vector<ModelVec>& honest_peers, const ModelVec& base,
                           util::Rng&) {
  if (honest_peers.size() < 2) return base;  // not enough statistics to hide in
  const std::size_t dim = tensor::checked_common_size(honest_peers);
  ModelVec out(dim);
  const double n = static_cast<double>(honest_peers.size());
  for (std::size_t i = 0; i < dim; ++i) {
    double mean = 0.0;
    for (const auto& u : honest_peers) mean += u[i];
    mean /= n;
    double var = 0.0;
    for (const auto& u : honest_peers) {
      const double d = u[i] - mean;
      var += d * d;
    }
    var /= (n - 1.0);
    out[i] = static_cast<float>(mean + z_ * std::sqrt(var));
  }
  return out;
}

IpmAttack::IpmAttack(double epsilon) : epsilon_(epsilon) {
  if (epsilon <= 0.0) throw std::invalid_argument("IpmAttack: epsilon <= 0");
}

ModelVec IpmAttack::craft(const std::vector<ModelVec>& honest_peers, const ModelVec& base,
                          util::Rng&) {
  if (honest_peers.empty()) {
    ModelVec out = base;
    tensor::scale(out, -epsilon_);
    return out;
  }
  ModelVec out = tensor::mean_of(honest_peers);
  tensor::scale(out, -epsilon_);
  return out;
}

std::unique_ptr<ModelAttack> make_model_attack(const std::string& name) {
  if (name == "gaussian_noise") return std::make_unique<NoiseAttack>();
  if (name == "sign_flip") return std::make_unique<SignFlipAttack>();
  if (name == "alie") return std::make_unique<AlieAttack>();
  if (name == "ipm") return std::make_unique<IpmAttack>();
  throw std::invalid_argument("unknown model attack: " + name);
}

const std::vector<std::string>& model_attack_names() {
  static const std::vector<std::string> names = {"gaussian_noise", "sign_flip", "alie",
                                                 "ipm"};
  return names;
}

}  // namespace abdhfl::attacks
