#pragma once
// Data-poisoning attacks of Table I (training-dataset manipulation).
//
// The paper's evaluation uses two label-flip scenarios: Type I sets every
// training label to 9, Type II replaces labels with uniform random values in
// 0..9.  The backdoor trigger and feature-noise attacks complete Table I's
// dataset row.  Poisoning mutates a device's local shard before training —
// the Byzantine device then trains "honestly" on corrupted data, which is
// why even a poisoned elected leader still aggregates correctly
// (Appendix D.A).

#include <cstdint>
#include <string>

#include "data/dataset.hpp"
#include "util/rng.hpp"

namespace abdhfl::attacks {

enum class PoisonType {
  kNone,
  kLabelFlipType1,  // all labels := fixed target (9 in the paper)
  kLabelFlipType2,  // labels := uniform random class
  kBackdoor,        // trigger patch + target label
  kFeatureNoise,    // additive Gaussian noise on features
};

struct PoisonConfig {
  PoisonType type = PoisonType::kNone;
  std::uint8_t target_label = 9;   // Type I / backdoor target
  std::size_t num_classes = 10;    // Type II range
  double noise_stddev = 0.5;       // feature-noise strength
  std::size_t trigger_size = 3;    // backdoor patch is trigger_size^2 pixels
  std::size_t image_side = 16;     // needed to place the trigger patch
};

/// Apply the configured poisoning to a shard in place.
void poison_dataset(data::Dataset& shard, const PoisonConfig& config, util::Rng& rng);

/// Stamp the backdoor trigger (without relabeling) onto every sample of a
/// dataset — used to measure backdoor success rate on a clean test set.
void stamp_trigger(data::Dataset& shard, const PoisonConfig& config);

[[nodiscard]] const char* poison_name(PoisonType type) noexcept;

/// Parse "none" / "flip1" / "flip2" / "backdoor" / "noise".
[[nodiscard]] PoisonType parse_poison(const std::string& name);

}  // namespace abdhfl::attacks
