#include "attacks/data_poison.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace abdhfl::attacks {

namespace {

void apply_trigger_row(std::span<float> pixels, const PoisonConfig& config) {
  // Bright square in the top-left corner.
  const std::size_t side = config.image_side;
  const std::size_t ts = std::min(config.trigger_size, side);
  if (pixels.size() < side * side) {
    throw std::invalid_argument("backdoor: feature dim smaller than image_side^2");
  }
  for (std::size_t y = 0; y < ts; ++y) {
    for (std::size_t x = 0; x < ts; ++x) pixels[y * side + x] = 1.0f;
  }
}

}  // namespace

void poison_dataset(data::Dataset& shard, const PoisonConfig& config, util::Rng& rng) {
  switch (config.type) {
    case PoisonType::kNone:
      return;
    case PoisonType::kLabelFlipType1:
      std::fill(shard.labels.begin(), shard.labels.end(), config.target_label);
      return;
    case PoisonType::kLabelFlipType2:
      for (auto& label : shard.labels) {
        label = static_cast<std::uint8_t>(rng.below(config.num_classes));
      }
      return;
    case PoisonType::kBackdoor:
      for (std::size_t i = 0; i < shard.size(); ++i) {
        apply_trigger_row(shard.features.row(i), config);
        shard.labels[i] = config.target_label;
      }
      return;
    case PoisonType::kFeatureNoise:
      for (float& v : shard.features.flat()) {
        v = static_cast<float>(v + rng.normal(0.0, config.noise_stddev));
      }
      return;
  }
  throw std::logic_error("poison_dataset: unhandled type");
}

void stamp_trigger(data::Dataset& shard, const PoisonConfig& config) {
  for (std::size_t i = 0; i < shard.size(); ++i) {
    apply_trigger_row(shard.features.row(i), config);
  }
}

const char* poison_name(PoisonType type) noexcept {
  switch (type) {
    case PoisonType::kNone: return "none";
    case PoisonType::kLabelFlipType1: return "flip1";
    case PoisonType::kLabelFlipType2: return "flip2";
    case PoisonType::kBackdoor: return "backdoor";
    case PoisonType::kFeatureNoise: return "noise";
  }
  return "?";
}

PoisonType parse_poison(const std::string& name) {
  if (name == "none") return PoisonType::kNone;
  if (name == "flip1") return PoisonType::kLabelFlipType1;
  if (name == "flip2") return PoisonType::kLabelFlipType2;
  if (name == "backdoor") return PoisonType::kBackdoor;
  if (name == "noise") return PoisonType::kFeatureNoise;
  throw std::invalid_argument("unknown poison type: " + name);
}

}  // namespace abdhfl::attacks
