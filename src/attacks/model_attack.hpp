#pragma once
// Model-update attacks of Table I (parameter manipulation).
//
// A Byzantine device does not train; instead it crafts a malicious vector,
// possibly as an omniscient adversary that sees the honest updates of its
// cluster (the standard threat model for ALE and IPM).  The crafted vector
// is what the cluster leader receives in Algorithm 4.
//
//   * Gaussian noise     — honest base + N(0, sigma) per coordinate
//   * Sign flip (SF)     — -scale * base
//   * A Little Is Enough — mean + z * stddev per coordinate of honest peers
//   * Inner-Product Manipulation — -epsilon * mean of honest peers

#include <memory>
#include <string>
#include <vector>

#include "agg/aggregator.hpp"
#include "util/rng.hpp"

namespace abdhfl::attacks {

using agg::ModelVec;

class ModelAttack {
 public:
  virtual ~ModelAttack() = default;

  /// Craft one malicious update.  `honest_peers` are the honest updates the
  /// omniscient adversary can observe in this cluster (may be empty for
  /// non-omniscient attacks); `base` is what the Byzantine device would have
  /// sent had it been honest.
  [[nodiscard]] virtual ModelVec craft(const std::vector<ModelVec>& honest_peers,
                                       const ModelVec& base, util::Rng& rng) = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

class NoiseAttack final : public ModelAttack {
 public:
  explicit NoiseAttack(double stddev = 1.0);
  ModelVec craft(const std::vector<ModelVec>& honest_peers, const ModelVec& base,
                 util::Rng& rng) override;
  [[nodiscard]] std::string name() const override { return "gaussian_noise"; }

 private:
  double stddev_;
};

class SignFlipAttack final : public ModelAttack {
 public:
  explicit SignFlipAttack(double scale = 1.0);
  ModelVec craft(const std::vector<ModelVec>& honest_peers, const ModelVec& base,
                 util::Rng& rng) override;
  [[nodiscard]] std::string name() const override { return "sign_flip"; }

 private:
  double scale_;
};

/// Baruch et al. 2019: shift each coordinate by z standard deviations of the
/// honest distribution — small enough to pass distance-based filters, biased
/// enough to poison the mean.
class AlieAttack final : public ModelAttack {
 public:
  explicit AlieAttack(double z = 1.0);
  ModelVec craft(const std::vector<ModelVec>& honest_peers, const ModelVec& base,
                 util::Rng& rng) override;
  [[nodiscard]] std::string name() const override { return "alie"; }

 private:
  double z_;
};

/// Xie et al. 2020: send -epsilon * (mean of honest updates), flipping the
/// inner product between the aggregate and the true gradient direction.
class IpmAttack final : public ModelAttack {
 public:
  explicit IpmAttack(double epsilon = 0.5);
  ModelVec craft(const std::vector<ModelVec>& honest_peers, const ModelVec& base,
                 util::Rng& rng) override;
  [[nodiscard]] std::string name() const override { return "ipm"; }

 private:
  double epsilon_;
};

/// Build by name: "gaussian_noise", "sign_flip", "alie", "ipm".
[[nodiscard]] std::unique_ptr<ModelAttack> make_model_attack(const std::string& name);

[[nodiscard]] const std::vector<std::string>& model_attack_names();

}  // namespace abdhfl::attacks
