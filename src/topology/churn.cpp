#include "topology/churn.hpp"

#include <algorithm>
#include <stdexcept>

namespace abdhfl::topology {

namespace {

std::vector<std::vector<Cluster>> copy_levels(const HflTree& tree) {
  std::vector<std::vector<Cluster>> levels(tree.num_levels());
  for (std::size_t l = 0; l < tree.num_levels(); ++l) levels[l] = tree.level(l);
  return levels;
}

}  // namespace

JoinResult with_device_joined(const HflTree& tree, std::size_t bottom_cluster) {
  const std::size_t bottom = tree.depth();
  if (bottom_cluster >= tree.level(bottom).size()) {
    throw std::invalid_argument("with_device_joined: bad cluster index");
  }
  auto levels = copy_levels(tree);
  const auto new_id = static_cast<DeviceId>(tree.num_devices());
  levels[bottom][bottom_cluster].members.push_back(new_id);
  return {HflTree(std::move(levels)), new_id};
}

LeaveResult with_device_left(const HflTree& tree, DeviceId device) {
  if (device >= tree.num_devices()) {
    throw std::invalid_argument("with_device_left: unknown device");
  }
  const std::size_t bottom = tree.depth();
  const std::size_t cluster_idx = *tree.cluster_of(bottom, device);
  auto levels = copy_levels(tree);
  auto& home = levels[bottom][cluster_idx];
  if (home.size() < 2) {
    throw std::invalid_argument(
        "with_device_left: would empty a cluster (Assumption 3 forbids removing clusters)");
  }

  // Remove from the bottom cluster, electing a successor when it led it.
  const bool was_leader = home.leader_id() == device;
  const auto member_pos = static_cast<std::size_t>(
      std::find(home.members.begin(), home.members.end(), device) -
      home.members.begin());
  home.members.erase(home.members.begin() + static_cast<std::ptrdiff_t>(member_pos));
  DeviceId successor = 0;
  if (was_leader) {
    home.leader = 0;  // first remaining member inherits the leadership
    successor = home.leader_id();
  } else if (member_pos < home.leader) {
    --home.leader;  // leader slot shifted left
  }

  // The departing device's upper-level appearances (its leadership chain)
  // pass to the successor: replace the id in every member list above the
  // bottom.  Leader *indices* stay valid because the replacement is
  // positional.
  if (was_leader) {
    for (std::size_t l = 0; l < bottom; ++l) {
      for (auto& cluster : levels[l]) {
        std::replace(cluster.members.begin(), cluster.members.end(), device, successor);
      }
    }
  }

  // Compact ids: everything above the departed id shifts down by one.
  std::vector<std::optional<DeviceId>> old_to_new(tree.num_devices());
  for (DeviceId d = 0; d < tree.num_devices(); ++d) {
    if (d == device) continue;
    old_to_new[d] = d > device ? d - 1 : d;
  }
  for (auto& level : levels) {
    for (auto& cluster : level) {
      for (auto& member : cluster.members) {
        member = *old_to_new[member];
      }
    }
  }
  return {HflTree(std::move(levels)), std::move(old_to_new)};
}

}  // namespace abdhfl::topology
