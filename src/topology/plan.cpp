#include "topology/plan.hpp"

#include <cstdlib>
#include <stdexcept>

namespace abdhfl::topology {
namespace {

// Process ids must stay below the observer range; net::kObserverIdBase is
// 900 but net is a downstream library, so the bound is mirrored here (a
// static_assert in src/net/hier ties them together).
constexpr std::size_t kMaxProcessIds = 900;

}  // namespace

bool HierSpec::valid() const noexcept {
  if (branching.empty()) return false;
  for (std::size_t b : branching) {
    if (b == 0) return false;
  }
  // Every process level must fit under the observer id range.
  std::size_t total = 0;
  std::size_t width = 1;
  for (std::size_t l = 0; l < branching.size(); ++l) {
    total += width;
    if (total > kMaxProcessIds) return false;
    if (l + 1 < branching.size()) width *= branching[l];
  }
  return true;
}

std::size_t HierSpec::nodes_at(std::size_t level) const noexcept {
  std::size_t n = 1;
  for (std::size_t l = 0; l < level && l < branching.size(); ++l) n *= branching[l];
  return n;
}

std::size_t HierSpec::total_processes() const noexcept {
  std::size_t total = 0;
  for (std::size_t l = 0; l < process_levels(); ++l) total += nodes_at(l);
  return total;
}

bool parse_tree_spec(const std::string& text, HierSpec& spec) {
  HierSpec parsed;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t comma = text.find(',', pos);
    std::string token =
        text.substr(pos, comma == std::string::npos ? std::string::npos : comma - pos);
    if (token.empty()) return false;
    char* end = nullptr;
    unsigned long value = std::strtoul(token.c_str(), &end, 10);
    if (end == token.c_str() || *end != '\0' || value == 0) return false;
    parsed.branching.push_back(static_cast<std::size_t>(value));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (!parsed.valid()) return false;
  spec = std::move(parsed);
  return true;
}

HierPlan::HierPlan(HierSpec spec) : spec_(std::move(spec)) {
  if (!spec_.valid()) throw std::invalid_argument("HierPlan: invalid spec");
  level_base_.resize(spec_.process_levels());
  std::size_t base = 0;
  for (std::size_t l = 0; l < spec_.process_levels(); ++l) {
    level_base_[l] = base;
    base += spec_.nodes_at(l);
  }
}

std::uint32_t HierPlan::node_id(std::size_t level, std::size_t index) const {
  if (level >= level_base_.size() || index >= spec_.nodes_at(level))
    throw std::out_of_range("HierPlan::node_id");
  return static_cast<std::uint32_t>(level_base_[level] + index);
}

std::size_t HierPlan::level_of(std::uint32_t id) const {
  for (std::size_t l = level_base_.size(); l-- > 0;) {
    if (id >= level_base_[l]) {
      if (id - level_base_[l] >= spec_.nodes_at(l))
        throw std::out_of_range("HierPlan::level_of");
      return l;
    }
  }
  throw std::out_of_range("HierPlan::level_of");
}

std::size_t HierPlan::index_of(std::uint32_t id) const {
  return id - level_base_[level_of(id)];
}

std::uint32_t HierPlan::parent_of(std::uint32_t id) const {
  std::size_t level = level_of(id);
  if (level == 0) throw std::out_of_range("HierPlan::parent_of: root");
  return node_id(level - 1, index_of(id) / spec_.branching[level - 1]);
}

std::uint32_t HierPlan::first_child_of(std::uint32_t id) const {
  std::size_t level = level_of(id);
  if (level + 1 >= spec_.process_levels())
    throw std::out_of_range("HierPlan::first_child_of: leaf head");
  return node_id(level + 1, index_of(id) * spec_.branching[level]);
}

std::size_t HierPlan::children_of(std::uint32_t id) const {
  std::size_t level = level_of(id);
  if (level + 1 >= spec_.process_levels()) return 0;
  return spec_.branching[level];
}

std::size_t HierPlan::first_device_of(std::uint32_t leaf_id) const {
  std::size_t level = level_of(leaf_id);
  if (level + 1 != spec_.process_levels())
    throw std::out_of_range("HierPlan::first_device_of: not a leaf head");
  return index_of(leaf_id) * spec_.devices_per_leaf();
}

}  // namespace abdhfl::topology
