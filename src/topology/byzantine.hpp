#pragma once
// Byzantine placement over HFL trees and the paper's tolerance calculus.
//
// Implements Definition 2/4 (p-ratio two-type trees and p-ratio ABD-HFL
// structures), Definition 5/6 (Byzantine vs honest clusters and leaders),
// Definition 7 (relative reliable number ψ_ℓ), the Theorem 1/2 and
// Corollary 1-3 formulas of the ECSM analysis, and Theorem 3 of the ACSM
// extension.  The `bench_tolerance` experiment checks the formulas against
// the counted reality of generated trees.

#include <cstddef>
#include <vector>

#include "topology/tree.hpp"
#include "util/rng.hpp"

namespace abdhfl::topology {

/// byzantine[d] == true marks device d as Byzantine.
using ByzantineMask = std::vector<bool>;

/// Uniformly random malicious set of round(fraction * n) devices.
[[nodiscard]] ByzantineMask sample_malicious(std::size_t n, double fraction, util::Rng& rng);

/// Id-ordered ("block") malicious set: devices 0 .. round(fraction*n)-1.
/// This is the paper's evaluation placement (clients ordered by id, the
/// malicious proportion taken over the bottom level) and it is the placement
/// the Theorem 2 bound is tight for — Byzantine devices concentrate into
/// whole subtrees, leaving every honest subtree within its per-cluster γ2.
/// Random placement at high fractions instead corrupts *every* cluster past
/// γ2 and no hierarchical filter can help, which is exactly what Theorem 2's
/// p-ratio structure formalizes.
[[nodiscard]] ByzantineMask block_malicious(std::size_t n, double fraction);

[[nodiscard]] std::size_t count_byzantine(const ByzantineMask& mask);

struct PRatioConfig {
  double p = 0.75;              // honest-child ratio under an honest node (Def. 2)
  std::size_t honest_top = 3;   // honest nodes at the top level (rest are type-II roots)
};

/// Definition 4 placement: assigns honesty per device so that each honest
/// top node roots a p-ratio two-type tree (the device chain of leaderships
/// keeps its type, i.e. the "self child" of an honest node is honest) and
/// each Byzantine top node roots an all-Byzantine tree.  Requires
/// p >= 1/m for ECSM trees so the self child can stay honest.
[[nodiscard]] ByzantineMask assign_p_ratio(const HflTree& tree, const PRatioConfig& config,
                                           util::Rng& rng);

/// Byzantine devices per level of the tree under a mask (a device counts at
/// every level it appears on, matching the analysis' per-level node counts).
[[nodiscard]] std::vector<std::size_t> byzantine_per_level(const HflTree& tree,
                                                           const ByzantineMask& mask);

/// Nodes per level (Corollary 1's N_t * m^ℓ for ECSM).
[[nodiscard]] std::vector<std::size_t> nodes_per_level(const HflTree& tree);

// --- ECSM closed forms -----------------------------------------------------

/// Theorem 1: type-I node count (p*m)^ℓ at level ℓ of a p-ratio two-type
/// complete m-ary tree.
[[nodiscard]] double theorem1_type1_count(double p, std::size_t m, std::size_t level);

/// Theorem 1: type-I proportion p^ℓ.
[[nodiscard]] double theorem1_type1_ratio(double p, std::size_t level);

/// Corollary 1: node count N_t * m^ℓ.
[[nodiscard]] std::size_t corollary1_nodes(std::size_t top_nodes, std::size_t m,
                                           std::size_t level);

/// Theorem 2: maximum tolerated Byzantine count at level ℓ,
/// N_t m^ℓ − (1−γ1) N_t [(1−γ2) m]^ℓ.
[[nodiscard]] double theorem2_max_byzantine(std::size_t top_nodes, std::size_t m,
                                            std::size_t level, double gamma1, double gamma2);

/// Theorem 2: maximum tolerated Byzantine proportion 1 − (1−γ1)(1−γ2)^ℓ.
[[nodiscard]] double theorem2_max_proportion(std::size_t level, double gamma1, double gamma2);

// --- ACSM (Appendix C) -----------------------------------------------------

struct ClusterClass {
  std::vector<bool> byzantine_cluster;  // per cluster at one level (Def. 5)
};

struct LevelTolerance {
  double psi = 1.0;             // relative reliable number ψ_ℓ (Def. 7)
  double max_proportion = 0.0;  // Theorem 3 bound: 1 − (1−γ2) ψ_ℓ
};

/// Definition 5 classification: a cluster is Byzantine when its malicious
/// member proportion exceeds the level's tolerance (γ1 at the top, γ2
/// elsewhere).
[[nodiscard]] ClusterClass classify_clusters(const HflTree& tree, std::size_t level,
                                             const ByzantineMask& mask, double gamma1,
                                             double gamma2);

/// ψ_ℓ and the Theorem 3 bound for one level of any (ECSM or ACSM) tree.
[[nodiscard]] LevelTolerance acsm_level_tolerance(const HflTree& tree, std::size_t level,
                                                  const ByzantineMask& mask, double gamma1,
                                                  double gamma2);

}  // namespace abdhfl::topology
