#include "topology/byzantine.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace abdhfl::topology {

ByzantineMask sample_malicious(std::size_t n, double fraction, util::Rng& rng) {
  if (fraction < 0.0 || fraction > 1.0) {
    throw std::invalid_argument("sample_malicious: fraction out of [0,1]");
  }
  const auto k = static_cast<std::size_t>(std::llround(fraction * static_cast<double>(n)));
  ByzantineMask mask(n, false);
  for (std::size_t idx : rng.sample_indices(n, k)) mask[idx] = true;
  return mask;
}

ByzantineMask block_malicious(std::size_t n, double fraction) {
  if (fraction < 0.0 || fraction > 1.0) {
    throw std::invalid_argument("block_malicious: fraction out of [0,1]");
  }
  const auto k = static_cast<std::size_t>(std::llround(fraction * static_cast<double>(n)));
  ByzantineMask mask(n, false);
  for (std::size_t i = 0; i < k; ++i) mask[i] = true;
  return mask;
}

std::size_t count_byzantine(const ByzantineMask& mask) {
  return static_cast<std::size_t>(std::count(mask.begin(), mask.end(), true));
}

ByzantineMask assign_p_ratio(const HflTree& tree, const PRatioConfig& config,
                             util::Rng& rng) {
  if (config.p < 0.0 || config.p > 1.0) throw std::invalid_argument("p out of [0,1]");
  ByzantineMask mask(tree.num_devices(), false);
  std::vector<bool> decided(tree.num_devices(), false);

  // Top level: pick the honest subset at random among the top cluster.
  const auto& top = tree.cluster(0, 0);
  if (config.honest_top > top.size()) {
    throw std::invalid_argument("assign_p_ratio: honest_top exceeds top cluster size");
  }
  std::vector<std::size_t> top_order(top.size());
  for (std::size_t i = 0; i < top_order.size(); ++i) top_order[i] = i;
  rng.shuffle(top_order);
  for (std::size_t i = 0; i < top_order.size(); ++i) {
    const DeviceId d = top.members[top_order[i]];
    mask[d] = i >= config.honest_top;  // first honest_top stay honest
    decided[d] = true;
  }

  // Descend: types of a cluster's members follow from its leader's type.
  for (std::size_t l = 0; l + 1 < tree.num_levels(); ++l) {
    for (const auto& cluster : tree.level(l + 1)) {
      const DeviceId leader = cluster.leader_id();
      if (!decided[leader]) {
        throw std::logic_error("assign_p_ratio: leader type undecided (tree malformed)");
      }
      if (mask[leader]) {
        // Children of a type-II node are all type-II (Definition 2).
        for (DeviceId d : cluster.members) {
          mask[d] = true;
          decided[d] = true;
        }
        continue;
      }
      // Honest leader: exactly round(p*m) honest children, leader included.
      const std::size_t m = cluster.size();
      auto honest_children =
          static_cast<std::size_t>(std::llround(config.p * static_cast<double>(m)));
      honest_children = std::clamp<std::size_t>(honest_children, 1, m);

      std::vector<DeviceId> others;
      for (DeviceId d : cluster.members) {
        if (d != leader) others.push_back(d);
      }
      rng.shuffle(others);
      std::size_t honest_left = honest_children - 1;  // leader takes one slot
      for (DeviceId d : others) {
        mask[d] = honest_left == 0;
        if (honest_left > 0) --honest_left;
        decided[d] = true;
      }
    }
  }
  return mask;
}

std::vector<std::size_t> byzantine_per_level(const HflTree& tree, const ByzantineMask& mask) {
  if (mask.size() != tree.num_devices()) {
    throw std::invalid_argument("byzantine_per_level: mask size mismatch");
  }
  std::vector<std::size_t> out(tree.num_levels(), 0);
  for (std::size_t l = 0; l < tree.num_levels(); ++l) {
    for (const auto& cluster : tree.level(l)) {
      for (DeviceId d : cluster.members) {
        if (mask[d]) ++out[l];
      }
    }
  }
  return out;
}

std::vector<std::size_t> nodes_per_level(const HflTree& tree) {
  std::vector<std::size_t> out(tree.num_levels());
  for (std::size_t l = 0; l < tree.num_levels(); ++l) out[l] = tree.nodes_at_level(l);
  return out;
}

double theorem1_type1_count(double p, std::size_t m, std::size_t level) {
  return std::pow(p * static_cast<double>(m), static_cast<double>(level));
}

double theorem1_type1_ratio(double p, std::size_t level) {
  return std::pow(p, static_cast<double>(level));
}

std::size_t corollary1_nodes(std::size_t top_nodes, std::size_t m, std::size_t level) {
  std::size_t n = top_nodes;
  for (std::size_t i = 0; i < level; ++i) n *= m;
  return n;
}

double theorem2_max_byzantine(std::size_t top_nodes, std::size_t m, std::size_t level,
                              double gamma1, double gamma2) {
  const double nt = static_cast<double>(top_nodes);
  const double total = nt * std::pow(static_cast<double>(m), static_cast<double>(level));
  const double honest = (1.0 - gamma1) * nt *
                        std::pow((1.0 - gamma2) * static_cast<double>(m),
                                 static_cast<double>(level));
  return total - honest;
}

double theorem2_max_proportion(std::size_t level, double gamma1, double gamma2) {
  return 1.0 - (1.0 - gamma1) * std::pow(1.0 - gamma2, static_cast<double>(level));
}

ClusterClass classify_clusters(const HflTree& tree, std::size_t level,
                               const ByzantineMask& mask, double gamma1, double gamma2) {
  const double gamma = level == 0 ? gamma1 : gamma2;
  ClusterClass out;
  out.byzantine_cluster.reserve(tree.level(level).size());
  for (const auto& cluster : tree.level(level)) {
    std::size_t bad = 0;
    for (DeviceId d : cluster.members) {
      if (mask[d]) ++bad;
    }
    const double proportion =
        static_cast<double>(bad) / static_cast<double>(cluster.size());
    out.byzantine_cluster.push_back(proportion > gamma);
  }
  return out;
}

LevelTolerance acsm_level_tolerance(const HflTree& tree, std::size_t level,
                                    const ByzantineMask& mask, double gamma1,
                                    double gamma2) {
  const auto classes = classify_clusters(tree, level, mask, gamma1, gamma2);
  std::size_t honest_nodes = 0;
  std::size_t total_nodes = 0;
  const auto& clusters = tree.level(level);
  for (std::size_t i = 0; i < clusters.size(); ++i) {
    total_nodes += clusters[i].size();
    if (!classes.byzantine_cluster[i]) honest_nodes += clusters[i].size();
  }
  LevelTolerance tol;
  tol.psi = total_nodes == 0
                ? 0.0
                : static_cast<double>(honest_nodes) / static_cast<double>(total_nodes);
  const double gamma = level == 0 ? 0.0 : gamma2;  // top: P0 = 1 - psi0 exactly
  tol.max_proportion = 1.0 - (1.0 - gamma) * tol.psi;
  return tol;
}

}  // namespace abdhfl::topology
