#pragma once
// Membership dynamics (Assumption 3: nodes can join or leave existing
// clusters, but clusters are never split or merged).
//
// Both operations return a *new* tree (HflTree is immutable once built) plus
// the device-id mapping, because device ids are dense 0..n-1 by invariant:
//
//   * join: a new device is appended to a chosen bottom cluster; it gets id
//     n and every existing id is unchanged.
//   * leave: the device is removed from its bottom cluster.  If it led that
//     cluster, a successor is elected (the next member) and the departing
//     device's appearances at every upper level — its whole chain of
//     leaderships, possibly up to the top cluster — are inherited by the
//     successor, exactly the "leader of each cluster forms the upper level"
//     rule re-applied.  Remaining ids are compacted (ids above the departed
//     one shift down by one).

#include <optional>
#include <vector>

#include "topology/tree.hpp"

namespace abdhfl::topology {

struct JoinResult {
  HflTree tree;
  DeviceId new_device = 0;  // always the previous num_devices()
};

/// Append one device to the given bottom-level cluster.  Throws on a bad
/// cluster index.
[[nodiscard]] JoinResult with_device_joined(const HflTree& tree,
                                            std::size_t bottom_cluster);

struct LeaveResult {
  HflTree tree;
  /// old_to_new[d] = the device's id in the new tree; nullopt for the
  /// departed device.
  std::vector<std::optional<DeviceId>> old_to_new;
};

/// Remove one device.  Throws if it is the last member of its bottom
/// cluster (Assumption 3 forbids removing clusters) or if removing it would
/// empty the top level.
[[nodiscard]] LeaveResult with_device_left(const HflTree& tree, DeviceId device);

}  // namespace abdhfl::topology
