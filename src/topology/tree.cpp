#include "topology/tree.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace abdhfl::topology {

HflTree::HflTree(std::vector<std::vector<Cluster>> levels) : levels_(std::move(levels)) {
  if (levels_.size() < 2) throw std::invalid_argument("HflTree: need at least 2 levels");
  num_devices_ = nodes_at_level(depth());
  build_indexes();
  validate();
}

std::size_t HflTree::nodes_at_level(std::size_t l) const {
  std::size_t n = 0;
  for (const auto& c : levels_.at(l)) n += c.size();
  return n;
}

void HflTree::build_indexes() {
  // Devices are assumed to be ids < num_devices_ (checked in validate()).
  cluster_of_.assign(num_levels(), std::vector<std::size_t>(num_devices_, kNone));
  child_cluster_.assign(num_levels() - 1, std::vector<std::size_t>(num_devices_, kNone));

  for (std::size_t l = 0; l < num_levels(); ++l) {
    for (std::size_t i = 0; i < levels_[l].size(); ++i) {
      for (DeviceId d : levels_[l][i].members) {
        if (d >= num_devices_) {
          throw std::logic_error("HflTree: device id out of range at level " +
                                 std::to_string(l));
        }
        cluster_of_[l][d] = i;
      }
    }
  }
  // A node at level l (l < depth) is the leader of exactly one cluster at
  // level l+1: find it by leader id.
  for (std::size_t l = 0; l + 1 < num_levels(); ++l) {
    const auto& below = levels_[l + 1];
    for (std::size_t i = 0; i < below.size(); ++i) {
      const DeviceId leader = below[i].leader_id();
      child_cluster_[l][leader] = i;
    }
  }
}

std::optional<std::size_t> HflTree::cluster_of(std::size_t l, DeviceId d) const {
  if (d >= num_devices_) return std::nullopt;
  const std::size_t idx = cluster_of_.at(l)[d];
  return idx == kNone ? std::nullopt : std::optional(idx);
}

std::optional<std::size_t> HflTree::child_cluster_of(std::size_t l, DeviceId d) const {
  if (l + 1 >= num_levels() || d >= num_devices_) return std::nullopt;
  const std::size_t idx = child_cluster_.at(l)[d];
  return idx == kNone ? std::nullopt : std::optional(idx);
}

std::optional<std::size_t> HflTree::parent_cluster_of(std::size_t l, std::size_t i) const {
  if (l == 0) return std::nullopt;
  return cluster_of(l - 1, cluster(l, i).leader_id());
}

std::vector<DeviceId> HflTree::bottom_descendants(std::size_t l, DeviceId d) const {
  if (l == depth()) return {d};
  std::vector<DeviceId> out;
  const auto child = child_cluster_of(l, d);
  if (!child) return {d};  // appears at l but leads nothing below (shouldn't happen)
  for (DeviceId member : cluster(l + 1, *child).members) {
    auto sub = bottom_descendants(l + 1, member);
    out.insert(out.end(), sub.begin(), sub.end());
  }
  return out;
}

std::size_t HflTree::highest_level_of(DeviceId d) const {
  for (std::size_t l = 0; l < num_levels(); ++l) {
    if (cluster_of(l, d)) return l;
  }
  throw std::invalid_argument("highest_level_of: unknown device");
}

void HflTree::validate() const {
  if (levels_.front().size() != 1) {
    throw std::logic_error("HflTree: top level must be a single cluster");
  }
  for (std::size_t l = 0; l < num_levels(); ++l) {
    if (levels_[l].empty()) throw std::logic_error("HflTree: empty level");
    for (const auto& c : levels_[l]) {
      if (c.members.empty()) throw std::logic_error("HflTree: empty cluster");
      if (c.leader >= c.members.size()) throw std::logic_error("HflTree: bad leader index");
    }
  }
  // Level l (for l < depth) must consist exactly of the leaders of level l+1.
  for (std::size_t l = 0; l + 1 < num_levels(); ++l) {
    std::vector<DeviceId> level_nodes;
    for (const auto& c : levels_[l]) {
      level_nodes.insert(level_nodes.end(), c.members.begin(), c.members.end());
    }
    std::vector<DeviceId> leaders_below;
    for (const auto& c : levels_[l + 1]) leaders_below.push_back(c.leader_id());
    std::sort(level_nodes.begin(), level_nodes.end());
    std::sort(leaders_below.begin(), leaders_below.end());
    if (level_nodes != leaders_below) {
      throw std::logic_error("HflTree: level " + std::to_string(l) +
                             " is not exactly the leaders of level " + std::to_string(l + 1));
    }
    if (std::adjacent_find(level_nodes.begin(), level_nodes.end()) != level_nodes.end()) {
      throw std::logic_error("HflTree: duplicate node at level " + std::to_string(l));
    }
  }
  // Every device appears exactly once at the bottom.
  std::vector<DeviceId> bottom;
  for (const auto& c : levels_.back()) {
    bottom.insert(bottom.end(), c.members.begin(), c.members.end());
  }
  std::sort(bottom.begin(), bottom.end());
  for (std::size_t i = 0; i < bottom.size(); ++i) {
    if (bottom[i] != i) throw std::logic_error("HflTree: bottom devices must be 0..n-1");
  }
}

HflTree build_ecsm(std::size_t levels, std::size_t m, std::size_t top_nodes,
                   util::Rng* rng_for_leaders) {
  if (levels < 2) throw std::invalid_argument("build_ecsm: need >= 2 levels");
  if (m < 1 || top_nodes < 1) throw std::invalid_argument("build_ecsm: bad sizes");

  const std::size_t depth = levels - 1;
  std::size_t bottom_count = top_nodes;
  for (std::size_t l = 0; l < depth; ++l) bottom_count *= m;

  std::vector<std::vector<Cluster>> tree(levels);

  // Bottom level: consecutive blocks of m devices.
  std::vector<DeviceId> current(bottom_count);
  for (std::size_t i = 0; i < bottom_count; ++i) current[i] = static_cast<DeviceId>(i);

  for (std::size_t l = depth; l >= 1; --l) {
    const std::size_t cluster_size = (l == 0) ? current.size() : m;
    auto& row = tree[l];
    std::vector<DeviceId> next;
    for (std::size_t start = 0; start < current.size(); start += cluster_size) {
      Cluster c;
      c.members.assign(current.begin() + static_cast<std::ptrdiff_t>(start),
                       current.begin() + static_cast<std::ptrdiff_t>(start + cluster_size));
      c.leader = rng_for_leaders
                     ? static_cast<std::size_t>(rng_for_leaders->below(c.members.size()))
                     : 0;
      next.push_back(c.leader_id());
      row.push_back(std::move(c));
    }
    current = std::move(next);
  }
  // Top level: one cluster of the remaining nodes (= top_nodes of them).
  Cluster top;
  top.members = current;
  top.leader = 0;
  tree[0].push_back(std::move(top));

  return HflTree(std::move(tree));
}

HflTree build_acsm(const AcsmConfig& config, util::Rng& rng) {
  if (config.min_cluster < 2 || config.max_cluster < config.min_cluster) {
    throw std::invalid_argument("build_acsm: bad cluster size range");
  }
  if (config.bottom_devices <= config.top_size) {
    throw std::invalid_argument("build_acsm: bottom must exceed top_size");
  }

  std::vector<DeviceId> current(config.bottom_devices);
  for (std::size_t i = 0; i < current.size(); ++i) current[i] = static_cast<DeviceId>(i);

  std::vector<std::vector<Cluster>> rows_bottom_up;
  while (current.size() > config.top_size) {
    std::vector<Cluster> row;
    std::vector<DeviceId> next;
    std::size_t pos = 0;
    while (pos < current.size()) {
      std::size_t want = config.min_cluster +
                         static_cast<std::size_t>(rng.below(
                             config.max_cluster - config.min_cluster + 1));
      std::size_t remaining = current.size() - pos;
      if (remaining < want) want = remaining;
      // Avoid leaving a tail smaller than min_cluster: absorb it.
      if (remaining - want != 0 && remaining - want < config.min_cluster) {
        want = remaining;
      }
      Cluster c;
      c.members.assign(current.begin() + static_cast<std::ptrdiff_t>(pos),
                       current.begin() + static_cast<std::ptrdiff_t>(pos + want));
      c.leader = static_cast<std::size_t>(rng.below(c.members.size()));
      next.push_back(c.leader_id());
      row.push_back(std::move(c));
      pos += want;
    }
    rows_bottom_up.push_back(std::move(row));
    if (next.size() >= current.size()) {
      throw std::logic_error("build_acsm: level failed to shrink");
    }
    current = std::move(next);
  }

  std::vector<std::vector<Cluster>> levels;
  Cluster top;
  top.members = current;
  top.leader = 0;
  levels.push_back({std::move(top)});
  for (auto it = rows_bottom_up.rbegin(); it != rows_bottom_up.rend(); ++it) {
    levels.push_back(std::move(*it));
  }
  return HflTree(std::move(levels));
}

std::string to_string(const HflTree& tree) {
  std::string out;
  for (std::size_t l = 0; l < tree.num_levels(); ++l) {
    out += "L" + std::to_string(l) + "  ";
    const auto& clusters = tree.level(l);
    for (std::size_t i = 0; i < clusters.size(); ++i) {
      out += "C" + std::to_string(i) + ":";
      for (std::size_t j = 0; j < clusters[i].members.size(); ++j) {
        out += ' ';
        if (j == clusters[i].leader) out += '*';
        out += std::to_string(clusters[i].members[j]);
      }
      if (i + 1 < clusters.size()) out += " | ";
    }
    out += '\n';
  }
  return out;
}

}  // namespace abdhfl::topology
