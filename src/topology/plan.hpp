#pragma once
// Tree-to-process mapping for the N-level distributed hierarchy
// (DESIGN.md §14).
//
// A HierSpec describes a uniform process tree by its branching vector: entry
// l is the number of children under each node at process level l, and the
// last entry is the number of *virtual devices* each bottom process (a leaf
// head) multiplexes over its in-process loopback transport.  A spec of
// {5, 20, 100} is therefore the 4-level, 10k-device tree: one root, 5
// mid-level aggregators, 100 leaf heads, 10 000 simulated devices.
//
// A HierPlan assigns every process a NodeId in breadth-first order (root =
// 0, then level 1 left to right, ...), which is what keeps the aggregation
// fold deterministic: every collector folds its children in ascending node
// id, and BFS numbering makes ascending id == ascending sibling index ==
// the transport-free reference runner's loop order.  Process ids must stay
// below the observer range (net::kObserverIdBase); virtual devices never
// cross a socket and live in their own id range (device_node_id).

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace abdhfl::topology {

/// Virtual leaf devices get ids at/above this on their leaf head's loopback
/// transport: globally unique (base + global device index), never routable
/// over TCP, and disjoint from both member and observer process ids.
inline constexpr std::uint32_t kVirtualDeviceIdBase = 1000;

struct HierSpec {
  /// branching[l] = children per node at process level l; the last entry is
  /// virtual devices per leaf head.  Size >= 1; {W, D} reproduces the
  /// classic 2-level federation (W workers x D devices).
  std::vector<std::size_t> branching;

  [[nodiscard]] bool valid() const noexcept;

  /// Process levels (root plus every aggregator level; excludes devices).
  [[nodiscard]] std::size_t process_levels() const noexcept {
    return branching.size();
  }
  /// Processes at a level: product of branching[0..level-1].
  [[nodiscard]] std::size_t nodes_at(std::size_t level) const noexcept;
  [[nodiscard]] std::size_t total_processes() const noexcept;
  /// Bottom processes, each hosting branching.back() virtual devices.
  [[nodiscard]] std::size_t leaf_heads() const noexcept {
    return nodes_at(process_levels() - 1);
  }
  [[nodiscard]] std::size_t devices_per_leaf() const noexcept {
    return branching.empty() ? 0 : branching.back();
  }
  [[nodiscard]] std::size_t total_devices() const noexcept {
    return leaf_heads() * devices_per_leaf();
  }
};

/// Parse a --tree spec ("5,20,100") into a HierSpec.  Returns false (spec
/// untouched) on malformed input or a tree whose process ids would collide
/// with the observer range.
[[nodiscard]] bool parse_tree_spec(const std::string& text, HierSpec& spec);

/// BFS node-id arithmetic over a HierSpec.  All of these are pure functions
/// of the spec, so every process of a federation derives the same map.
class HierPlan {
 public:
  explicit HierPlan(HierSpec spec);

  [[nodiscard]] const HierSpec& spec() const noexcept { return spec_; }

  /// NodeId of process `index` (0-based, left to right) at `level`.
  [[nodiscard]] std::uint32_t node_id(std::size_t level, std::size_t index) const;
  /// Inverse: level of a process id (throws std::out_of_range off the tree).
  [[nodiscard]] std::size_t level_of(std::uint32_t id) const;
  /// Inverse: sibling-order index of a process id within its level.
  [[nodiscard]] std::size_t index_of(std::uint32_t id) const;

  /// Parent process id (throws for the root).
  [[nodiscard]] std::uint32_t parent_of(std::uint32_t id) const;
  /// First child id of a non-leaf process; children are the contiguous run
  /// [first_child_of(id), first_child_of(id) + children_of(id)).
  [[nodiscard]] std::uint32_t first_child_of(std::uint32_t id) const;
  [[nodiscard]] std::size_t children_of(std::uint32_t id) const;

  /// Global index of the first virtual device a leaf head hosts; it hosts
  /// spec().devices_per_leaf() consecutive devices.
  [[nodiscard]] std::size_t first_device_of(std::uint32_t leaf_id) const;

 private:
  HierSpec spec_;
  std::vector<std::size_t> level_base_;  // first id at each level (BFS)
};

/// The loopback node id of global device `global_index`.
[[nodiscard]] inline std::uint32_t device_node_id(std::size_t global_index) noexcept {
  return kVirtualDeviceIdBase + static_cast<std::uint32_t>(global_index);
}

}  // namespace abdhfl::topology
