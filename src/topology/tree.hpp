#pragma once
// Leaf-derived hierarchical tree of learning clusters (Sec. III-A).
//
// All participating devices live at the bottom level L and form clusters;
// each cluster elects a leader, the leaders of level ℓ form level ℓ-1, and
// the top level L0 is a single leaderless-capable cluster C_{0,0}.  A device
// therefore appears at every level from the bottom up to wherever its chain
// of leaderships ends — the LOT/Rcanopus "leaf-only tree" shape the paper
// builds on.
//
// Two builders are provided: ECSM (equal cluster size — each top node roots
// a complete m-ary tree, Definition 4's substrate) and ACSM (arbitrary
// cluster sizes per Appendix C).

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace abdhfl::topology {

using DeviceId = std::uint32_t;

struct Cluster {
  std::vector<DeviceId> members;
  std::size_t leader = 0;  // index into members

  [[nodiscard]] DeviceId leader_id() const { return members[leader]; }
  [[nodiscard]] std::size_t size() const noexcept { return members.size(); }
};

class HflTree {
 public:
  /// levels[0] = top, levels.back() = bottom.
  explicit HflTree(std::vector<std::vector<Cluster>> levels);

  /// Bottom level index L; the tree has L+1 levels.
  [[nodiscard]] std::size_t depth() const noexcept { return levels_.size() - 1; }
  [[nodiscard]] std::size_t num_levels() const noexcept { return levels_.size(); }

  [[nodiscard]] const std::vector<Cluster>& level(std::size_t l) const { return levels_.at(l); }
  [[nodiscard]] const Cluster& cluster(std::size_t l, std::size_t i) const {
    return levels_.at(l).at(i);
  }

  /// Total devices (= bottom-level node count; every node is a device).
  [[nodiscard]] std::size_t num_devices() const noexcept { return num_devices_; }

  /// Number of nodes appearing at a level (sum of its cluster sizes).
  [[nodiscard]] std::size_t nodes_at_level(std::size_t l) const;

  /// Index of the cluster at level l that contains the given device, if any.
  [[nodiscard]] std::optional<std::size_t> cluster_of(std::size_t l, DeviceId d) const;

  /// Cluster at level l+1 whose leader is the given device (its "children"),
  /// if the device leads one.
  [[nodiscard]] std::optional<std::size_t> child_cluster_of(std::size_t l, DeviceId d) const;

  /// Index of the cluster at level l-1 containing cluster (l, i)'s leader.
  /// nullopt for l == 0.
  [[nodiscard]] std::optional<std::size_t> parent_cluster_of(std::size_t l,
                                                             std::size_t i) const;

  /// All bottom-level devices in the subtree rooted at device d's appearance
  /// on level l (d itself included; for l == depth() this is just {d}).
  [[nodiscard]] std::vector<DeviceId> bottom_descendants(std::size_t l, DeviceId d) const;

  /// Highest level (smallest index) at which the device appears.
  [[nodiscard]] std::size_t highest_level_of(DeviceId d) const;

  /// Structural invariants: every upper-level node leads exactly one cluster
  /// below, member lists are consistent, the top is one cluster.  Throws
  /// std::logic_error with a description on violation.
  void validate() const;

 private:
  void build_indexes();

  std::vector<std::vector<Cluster>> levels_;
  std::size_t num_devices_ = 0;
  // cluster_of_[l][device] = cluster index at level l, or npos.
  std::vector<std::vector<std::size_t>> cluster_of_;
  // child_cluster_[l][device] = index of the level-(l+1) cluster the device
  // leads, or npos.  Sized num_levels()-1.
  std::vector<std::vector<std::size_t>> child_cluster_;

  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);
};

/// Equal Cluster Size Model: `levels` total levels (>= 2), cluster size m,
/// top_nodes nodes in the single top cluster.  Bottom level has
/// top_nodes * m^(levels-1) devices.  Leaders are the first member of each
/// cluster unless `randomize_leaders`, in which case rng picks them.
[[nodiscard]] HflTree build_ecsm(std::size_t levels, std::size_t m, std::size_t top_nodes,
                                 util::Rng* rng_for_leaders = nullptr);

struct AcsmConfig {
  std::size_t bottom_devices = 64;
  std::size_t min_cluster = 3;
  std::size_t max_cluster = 6;
  std::size_t top_size = 4;  // stop building levels once <= this many nodes
};

/// Arbitrary Cluster Size Model (Appendix C): cluster sizes at every level
/// are drawn uniformly from [min_cluster, max_cluster].
[[nodiscard]] HflTree build_acsm(const AcsmConfig& config, util::Rng& rng);

/// Human-readable rendering: one line per cluster, leaders marked with '*'.
///   L0   C0: *0 16 32 48
///   L1   C0: *0 4 8 12 | C1: *16 20 24 28 | ...
[[nodiscard]] std::string to_string(const HflTree& tree);

}  // namespace abdhfl::topology
