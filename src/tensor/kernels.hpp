#pragma once
// Cache- and SIMD-friendly numeric kernels underneath the tensor ops and the
// Byzantine-robust aggregation rules.  Everything here is written against GCC
// /Clang vector extensions, which lower to SSE2 at the default -O2 baseline
// and to AVX/AVX2 when the build enables ABDHFL_NATIVE (-march=native); a
// plain scalar fallback covers other compilers.
//
// Determinism contract
// --------------------
// Every kernel is a pure function of its operands with a *fixed* reduction
// tree: lane accumulators are flushed into the running double total once per
// kFlushBlock elements, always in the same lane order.  Results are therefore
// bitwise-reproducible run-to-run and independent of how callers partition
// work across threads — as long as each output element is produced by exactly
// one kernel call per flush block.  Parallel aggregation code exploits this:
// partitioning by row / coordinate / update never changes the arithmetic of
// any single element.
//
// Precision note: the reduction kernels (dot / norm2_squared /
// distance_squared) accumulate in float lanes within a flush block and in
// double across blocks.  Relative error on random data is ~1e-6 (float-ULP
// scale of the inputs) versus the sequential-double references, which remain
// available as *_ref for tests and before/after benchmarks.  Kernels that the
// aggregation rules need elementwise-exact (axpy, accumulate, lerp) keep the
// references' per-element double arithmetic and are bitwise-identical to
// them.

#include <cstddef>

namespace abdhfl::tensor::kern {

/// Elements accumulated in float lanes before flushing to the double total.
/// Also the d-tile the aggregation layer uses when it interleaves pairwise
/// distance accumulation (Krum): a tile equal to one flush block keeps the
/// tiled partial sums bitwise-identical to one monolithic kernel call.
inline constexpr std::size_t kFlushBlock = 4096;

// ---- reductions (vectorized, block-flushed) -------------------------------

[[nodiscard]] double dot(const float* a, const float* b, std::size_t n) noexcept;
[[nodiscard]] double norm2_squared(const float* a, std::size_t n) noexcept;
[[nodiscard]] double distance_squared(const float* a, const float* b,
                                      std::size_t n) noexcept;

/// Squared distance between a double-precision point and a float vector
/// (Weiszfeld iterate vs. update); double lanes throughout.
[[nodiscard]] double distance_squared_df(const double* a, const float* b,
                                         std::size_t n) noexcept;

// ---- scalar references (sequential double accumulation, the seed paths) ---

[[nodiscard]] double dot_ref(const float* a, const float* b, std::size_t n) noexcept;
[[nodiscard]] double norm2_squared_ref(const float* a, std::size_t n) noexcept;
[[nodiscard]] double distance_squared_ref(const float* a, const float* b,
                                          std::size_t n) noexcept;

// ---- elementwise kernels (exact per-element double arithmetic) ------------

/// y[i] = float(y[i] + alpha * x[i]).
void axpy(double alpha, const float* x, float* y, std::size_t n) noexcept;
void axpy_ref(double alpha, const float* x, float* y, std::size_t n) noexcept;

/// Fused scale-add: y[i] = float(alpha * x[i] + beta * y[i]).
void axpby(double alpha, const float* x, double beta, float* y,
           std::size_t n) noexcept;

/// x[i] = float(x[i] * alpha).
void scale(float* x, double alpha, std::size_t n) noexcept;

/// out[i] = a[i] + b[i] (float arithmetic).
void add(const float* a, const float* b, float* out, std::size_t n) noexcept;

/// out[i] = a[i] - b[i] (float arithmetic).
void sub(const float* a, const float* b, float* out, std::size_t n) noexcept;

/// out[i] = float(alpha * a[i] + beta * b[i]).
void lerp(const float* a, const float* b, double alpha, double beta, float* out,
          std::size_t n) noexcept;

// ---- mixed-precision accumulators (deterministic reductions) --------------

/// acc[i] += x[i] (accumulated in double).
void accumulate(const float* x, double* acc, std::size_t n) noexcept;

/// acc[i] += w * x[i] (accumulated in double).
void accumulate_scaled(double w, const float* x, double* acc,
                       std::size_t n) noexcept;

/// acc[i] += s * (u[i] - v[i]) with the difference taken in float (the
/// clipped-delta accumulation of Centered Clipping).
void accumulate_clipped_diff(double s, const float* u, const float* v,
                             double* acc, std::size_t n) noexcept;

// ---- strided column gather ------------------------------------------------

/// Gather columns [col_lo, col_hi) of the logical (n_rows x row_len) matrix
/// whose rows are given by pointers, into a column-major tile:
///   out[(c - col_lo) * n_rows + r] = rows[r][c].
/// Coordinate-wise rules (median, trimmed mean) sort these contiguous
/// columns instead of striding across n_rows vectors per coordinate.
void gather_columns(const float* const* rows, std::size_t n_rows,
                    std::size_t col_lo, std::size_t col_hi,
                    float* out) noexcept;

}  // namespace abdhfl::tensor::kern
