#pragma once
// Flat-vector operations used on model parameter vectors.  Aggregation rules
// (Krum, Median, clipping, ...) operate on flattened models, so these are
// the hot kernels of the Byzantine-robust aggregation layer.

#include <cstddef>
#include <span>
#include <vector>

namespace abdhfl::tensor {

/// Euclidean dot product.
[[nodiscard]] double dot(std::span<const float> a, std::span<const float> b) noexcept;

/// Squared L2 norm.
[[nodiscard]] double norm2_squared(std::span<const float> a) noexcept;

/// L2 norm.
[[nodiscard]] double norm2(std::span<const float> a) noexcept;

/// Squared Euclidean distance between two equally sized vectors.
[[nodiscard]] double distance_squared(std::span<const float> a,
                                      std::span<const float> b) noexcept;

/// y += alpha * x.
void axpy(double alpha, std::span<const float> x, std::span<float> y) noexcept;

/// x *= alpha.
void scale(std::span<float> x, double alpha) noexcept;

/// out = a + b (allocates).
[[nodiscard]] std::vector<float> add(std::span<const float> a, std::span<const float> b);

/// out = a - b (allocates).
[[nodiscard]] std::vector<float> sub(std::span<const float> a, std::span<const float> b);

/// out = alpha*a + beta*b (allocates).  The correction-factor merge (Eq. 1)
/// is lerp(global, local, alpha) = alpha*global + (1-alpha)*local.
[[nodiscard]] std::vector<float> lerp(std::span<const float> a, std::span<const float> b,
                                      double alpha_on_a);

/// Unweighted coordinate-wise mean of the given vectors (all same length).
[[nodiscard]] std::vector<float> mean_of(const std::vector<std::vector<float>>& vs);

/// Clip x to L2 ball of the given radius around the origin (in place).
/// Returns the scaling factor applied (1.0 when already inside).
double clip_to_ball(std::span<float> x, double radius) noexcept;

/// All vectors in vs must share this size; throws otherwise, returns size.
std::size_t checked_common_size(const std::vector<std::vector<float>>& vs);

}  // namespace abdhfl::tensor
