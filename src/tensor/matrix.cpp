#include "tensor/matrix.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>

namespace abdhfl::tensor {

void Matrix::init_he_uniform(util::Rng& rng) {
  // fan_in is the number of columns for a (out, in)-shaped weight; our dense
  // layers store weights as (in, out), so fan_in = rows.
  const double limit = std::sqrt(6.0 / static_cast<double>(rows_ == 0 ? 1 : rows_));
  for (float& v : data_) v = static_cast<float>(rng.uniform(-limit, limit));
}

void Matrix::init_xavier_uniform(util::Rng& rng) {
  const double fan = static_cast<double>(rows_ + cols_);
  const double limit = std::sqrt(6.0 / (fan == 0.0 ? 1.0 : fan));
  for (float& v : data_) v = static_cast<float>(rng.uniform(-limit, limit));
}

namespace {
constexpr std::size_t kBlock = 64;  // rows-of-a block; keeps b panel in L1/L2
}

void gemm(const Matrix& a, const Matrix& b, Matrix& out) {
  assert(a.cols() == b.rows());
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  out = Matrix(m, n, 0.0f);
  for (std::size_t i0 = 0; i0 < m; i0 += kBlock) {
    const std::size_t i1 = std::min(m, i0 + kBlock);
    for (std::size_t i = i0; i < i1; ++i) {
      float* oi = out.data() + i * n;
      const float* ai = a.data() + i * k;
      for (std::size_t p = 0; p < k; ++p) {
        const float aip = ai[p];
        if (aip == 0.0f) continue;
        const float* bp = b.data() + p * n;
        for (std::size_t j = 0; j < n; ++j) oi[j] += aip * bp[j];
      }
    }
  }
}

void gemm_nt(const Matrix& a, const Matrix& b, Matrix& out) {
  assert(a.cols() == b.cols());
  const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
  out = Matrix(m, n, 0.0f);
  for (std::size_t i = 0; i < m; ++i) {
    const float* ai = a.data() + i * k;
    float* oi = out.data() + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const float* bj = b.data() + j * k;
      float acc = 0.0f;
      for (std::size_t p = 0; p < k; ++p) acc += ai[p] * bj[p];
      oi[j] = acc;
    }
  }
}

void gemm_tn(const Matrix& a, const Matrix& b, Matrix& out) {
  assert(a.rows() == b.rows());
  const std::size_t k = a.rows(), m = a.cols(), n = b.cols();
  out = Matrix(m, n, 0.0f);
  for (std::size_t p = 0; p < k; ++p) {
    const float* ap = a.data() + p * m;
    const float* bp = b.data() + p * n;
    for (std::size_t i = 0; i < m; ++i) {
      const float api = ap[i];
      if (api == 0.0f) continue;
      float* oi = out.data() + i * n;
      for (std::size_t j = 0; j < n; ++j) oi[j] += api * bp[j];
    }
  }
}

void gemv(const Matrix& m, std::span<const float> x, std::span<float> y) {
  assert(x.size() == m.cols());
  assert(y.size() == m.rows());
  for (std::size_t i = 0; i < m.rows(); ++i) {
    const float* mi = m.data() + i * m.cols();
    float acc = 0.0f;
    for (std::size_t j = 0; j < m.cols(); ++j) acc += mi[j] * x[j];
    y[i] = acc;
  }
}

void add_row_broadcast(Matrix& m, std::span<const float> bias) {
  assert(bias.size() == m.cols());
  for (std::size_t i = 0; i < m.rows(); ++i) {
    float* mi = m.data() + i * m.cols();
    for (std::size_t j = 0; j < m.cols(); ++j) mi[j] += bias[j];
  }
}

void column_sums(const Matrix& m, std::span<float> out) {
  assert(out.size() == m.cols());
  std::fill(out.begin(), out.end(), 0.0f);
  for (std::size_t i = 0; i < m.rows(); ++i) {
    const float* mi = m.data() + i * m.cols();
    for (std::size_t j = 0; j < m.cols(); ++j) out[j] += mi[j];
  }
}

}  // namespace abdhfl::tensor
