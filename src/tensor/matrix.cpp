#include "tensor/matrix.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <vector>

#include "tensor/kernels.hpp"

namespace abdhfl::tensor {

void Matrix::init_he_uniform(util::Rng& rng) {
  // fan_in is the number of columns for a (out, in)-shaped weight; our dense
  // layers store weights as (in, out), so fan_in = rows.
  const double limit = std::sqrt(6.0 / static_cast<double>(rows_ == 0 ? 1 : rows_));
  for (float& v : data_) v = static_cast<float>(rng.uniform(-limit, limit));
}

void Matrix::init_xavier_uniform(util::Rng& rng) {
  const double fan = static_cast<double>(rows_ + cols_);
  const double limit = std::sqrt(6.0 / (fan == 0.0 ? 1.0 : fan));
  for (float& v : data_) v = static_cast<float>(rng.uniform(-limit, limit));
}

namespace {

// Packed register-blocked GEMM.  The three public variants (NN, NT, TN) all
// funnel into one 4x8 micro-kernel over panels packed with generic strides,
// so a transposed operand costs only a different packing walk, never a
// materialized transpose.  Accumulation per output element runs over p in
// ascending order inside float registers — for k <= kKC this is exactly the
// naive triple loop's arithmetic, so results match it bitwise.
constexpr std::size_t kMR = 4;    // micro-tile rows
constexpr std::size_t kNR = 8;    // micro-tile cols (one v8f)
constexpr std::size_t kKC = 256;  // k panel: A panel 64x256 floats = 64 KiB (L1/L2)
constexpr std::size_t kMC = 64;   // m panel
constexpr std::size_t kNC = 512;  // n panel: B panel 256x512 floats = 512 KiB (L2)

typedef float v8f __attribute__((vector_size(32), aligned(4)));

inline v8f load8(const float* p) noexcept {
  v8f v;
  __builtin_memcpy(&v, p, sizeof(v));
  return v;
}

/// Pack an (mc x kc) block of A into kMR-row panels, k-major within each
/// panel: buf[panel][p * kMR + r].  Short panels are zero-padded.
/// Element (i, p) of the block lives at a[i * row_stride + p * col_stride].
void pack_a(const float* a, std::size_t row_stride, std::size_t col_stride,
            std::size_t mc, std::size_t kc, float* buf) {
  for (std::size_t i = 0; i < mc; i += kMR) {
    const std::size_t mr = std::min(kMR, mc - i);
    for (std::size_t p = 0; p < kc; ++p) {
      for (std::size_t r = 0; r < kMR; ++r) {
        *buf++ = r < mr ? a[(i + r) * row_stride + p * col_stride] : 0.0f;
      }
    }
  }
}

/// Pack a (kc x nc) block of B into kNR-column panels, k-major within each
/// panel: buf[panel][p * kNR + c].  Element (p, j) of the block lives at
/// b[p * row_stride + j * col_stride].
void pack_b(const float* b, std::size_t row_stride, std::size_t col_stride,
            std::size_t kc, std::size_t nc, float* buf) {
  for (std::size_t j = 0; j < nc; j += kNR) {
    const std::size_t nr = std::min(kNR, nc - j);
    for (std::size_t p = 0; p < kc; ++p) {
      for (std::size_t c = 0; c < kNR; ++c) {
        *buf++ = c < nr ? b[p * row_stride + (j + c) * col_stride] : 0.0f;
      }
    }
  }
}

/// c[0..mr)[0..nr) += packed-A panel x packed-B panel over kc.
inline void micro_4x8(const float* ap, const float* bp, std::size_t kc, float* c,
                      std::size_t ldc, std::size_t mr, std::size_t nr) {
  v8f c0{}, c1{}, c2{}, c3{};
  for (std::size_t p = 0; p < kc; ++p) {
    const v8f bv = load8(bp + p * kNR);
    const float* ar = ap + p * kMR;
    c0 += ar[0] * bv;
    c1 += ar[1] * bv;
    c2 += ar[2] * bv;
    c3 += ar[3] * bv;
  }
  float tmp[kMR][kNR];
  __builtin_memcpy(tmp[0], &c0, sizeof(c0));
  __builtin_memcpy(tmp[1], &c1, sizeof(c1));
  __builtin_memcpy(tmp[2], &c2, sizeof(c2));
  __builtin_memcpy(tmp[3], &c3, sizeof(c3));
  for (std::size_t r = 0; r < mr; ++r) {
    for (std::size_t c2i = 0; c2i < nr; ++c2i) c[r * ldc + c2i] += tmp[r][c2i];
  }
}

/// out(m,n) = A(m,k) x B(k,n) with A/B addressed through generic strides.
void gemm_packed(const float* a, std::size_t a_row_stride, std::size_t a_col_stride,
                 const float* b, std::size_t b_row_stride, std::size_t b_col_stride,
                 std::size_t m, std::size_t k, std::size_t n, Matrix& out) {
  out = Matrix(m, n, 0.0f);
  if (m == 0 || n == 0 || k == 0) return;
  std::vector<float> abuf(kMC * kKC);
  std::vector<float> bbuf(kKC * kNC);
  for (std::size_t jc = 0; jc < n; jc += kNC) {
    const std::size_t nc = std::min(kNC, n - jc);
    for (std::size_t pc = 0; pc < k; pc += kKC) {
      const std::size_t kc = std::min(kKC, k - pc);
      pack_b(b + pc * b_row_stride + jc * b_col_stride, b_row_stride, b_col_stride,
             kc, nc, bbuf.data());
      for (std::size_t ic = 0; ic < m; ic += kMC) {
        const std::size_t mc = std::min(kMC, m - ic);
        pack_a(a + ic * a_row_stride + pc * a_col_stride, a_row_stride, a_col_stride,
               mc, kc, abuf.data());
        for (std::size_t jr = 0; jr < nc; jr += kNR) {
          const std::size_t nr = std::min(kNR, nc - jr);
          const float* bp = bbuf.data() + (jr / kNR) * kc * kNR;
          for (std::size_t ir = 0; ir < mc; ir += kMR) {
            const std::size_t mr = std::min(kMR, mc - ir);
            const float* ap = abuf.data() + (ir / kMR) * kc * kMR;
            micro_4x8(ap, bp, kc, out.data() + (ic + ir) * n + jc + jr, n, mr, nr);
          }
        }
      }
    }
  }
}

}  // namespace

void gemm(const Matrix& a, const Matrix& b, Matrix& out) {
  assert(a.cols() == b.rows());
  gemm_packed(a.data(), a.cols(), 1, b.data(), b.cols(), 1, a.rows(), a.cols(),
              b.cols(), out);
}

void gemm_nt(const Matrix& a, const Matrix& b, Matrix& out) {
  assert(a.cols() == b.cols());
  // B' = b^T: element (p, j) of B' is b(j, p).
  gemm_packed(a.data(), a.cols(), 1, b.data(), 1, b.cols(), a.rows(), a.cols(),
              b.rows(), out);
}

void gemm_tn(const Matrix& a, const Matrix& b, Matrix& out) {
  assert(a.rows() == b.rows());
  // A' = a^T: element (i, p) of A' is a(p, i).
  gemm_packed(a.data(), 1, a.cols(), b.data(), b.cols(), 1, a.cols(), a.rows(),
              b.cols(), out);
}

void gemm_naive(const Matrix& a, const Matrix& b, Matrix& out) {
  assert(a.cols() == b.rows());
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  out = Matrix(m, n, 0.0f);
  for (std::size_t i = 0; i < m; ++i) {
    float* oi = out.data() + i * n;
    const float* ai = a.data() + i * k;
    for (std::size_t p = 0; p < k; ++p) {
      const float aip = ai[p];
      if (aip == 0.0f) continue;
      const float* bp = b.data() + p * n;
      for (std::size_t j = 0; j < n; ++j) oi[j] += aip * bp[j];
    }
  }
}

void gemv(const Matrix& m, std::span<const float> x, std::span<float> y) {
  assert(x.size() == m.cols());
  assert(y.size() == m.rows());
  for (std::size_t i = 0; i < m.rows(); ++i) {
    y[i] = static_cast<float>(kern::dot(m.data() + i * m.cols(), x.data(), m.cols()));
  }
}

void add_row_broadcast(Matrix& m, std::span<const float> bias) {
  assert(bias.size() == m.cols());
  for (std::size_t i = 0; i < m.rows(); ++i) {
    float* mi = m.data() + i * m.cols();
    kern::add(mi, bias.data(), mi, m.cols());
  }
}

void column_sums(const Matrix& m, std::span<float> out) {
  assert(out.size() == m.cols());
  std::fill(out.begin(), out.end(), 0.0f);
  for (std::size_t i = 0; i < m.rows(); ++i) {
    kern::add(out.data(), m.data() + i * m.cols(), out.data(), m.cols());
  }
}

}  // namespace abdhfl::tensor
