#include "tensor/kernels.hpp"

#include <algorithm>

namespace abdhfl::tensor::kern {

#if defined(__GNUC__) || defined(__clang__)
#define ABDHFL_KERN_VEC 1
#endif

#ifdef ABDHFL_KERN_VEC

namespace {

// 16- and 32-byte vectors; the 32-byte ones lower to xmm pairs on SSE2 and
// to a single ymm under -march=native.  aligned(4) permits unaligned loads.
typedef float v4f __attribute__((vector_size(16), aligned(4)));
typedef float v8f __attribute__((vector_size(32), aligned(4)));
typedef double v4d __attribute__((vector_size(32), aligned(8)));

inline v4f load4(const float* p) noexcept {
  v4f v;
  __builtin_memcpy(&v, p, sizeof(v));
  return v;
}

inline v8f load8(const float* p) noexcept {
  v8f v;
  __builtin_memcpy(&v, p, sizeof(v));
  return v;
}

inline void store8(float* p, v8f v) noexcept { __builtin_memcpy(p, &v, sizeof(v)); }

inline v4d to_v4d(v4f x) noexcept {
#if __has_builtin(__builtin_convertvector)
  return __builtin_convertvector(x, v4d);
#else
  return v4d{static_cast<double>(x[0]), static_cast<double>(x[1]),
             static_cast<double>(x[2]), static_cast<double>(x[3])};
#endif
}

inline v4f to_v4f(v4d x) noexcept {
#if __has_builtin(__builtin_convertvector)
  return __builtin_convertvector(x, v4f);
#else
  return v4f{static_cast<float>(x[0]), static_cast<float>(x[1]),
             static_cast<float>(x[2]), static_cast<float>(x[3])};
#endif
}

/// Fixed lane-reduction order shared by every float-lane reduction: pairwise
/// vector adds, then left-to-right scalar adds in double.
inline double flush(v4f s0, v4f s1, v4f s2, v4f s3, float tail) noexcept {
  const v4f s01 = s0 + s1;
  const v4f s23 = s2 + s3;
  return ((static_cast<double>(s01[0]) + s01[1]) +
          (static_cast<double>(s01[2]) + s01[3])) +
         ((static_cast<double>(s23[0]) + s23[1]) +
          (static_cast<double>(s23[2]) + s23[3])) +
         tail;
}

inline double flush_d(v4d s0, v4d s1, double tail) noexcept {
  const v4d s = s0 + s1;
  return ((s[0] + s[1]) + (s[2] + s[3])) + tail;
}

/// One flush block of the squared-distance reduction.
inline double dist2_block(const float* a, const float* b, std::size_t n) noexcept {
  v4f s0{}, s1{}, s2{}, s3{};
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const v4f d0 = load4(a + i) - load4(b + i);
    const v4f d1 = load4(a + i + 4) - load4(b + i + 4);
    const v4f d2 = load4(a + i + 8) - load4(b + i + 8);
    const v4f d3 = load4(a + i + 12) - load4(b + i + 12);
    s0 += d0 * d0;
    s1 += d1 * d1;
    s2 += d2 * d2;
    s3 += d3 * d3;
  }
  float tail = 0.0f;
  for (; i < n; ++i) {
    const float d = a[i] - b[i];
    tail += d * d;
  }
  return flush(s0, s1, s2, s3, tail);
}

inline double dot_block(const float* a, const float* b, std::size_t n) noexcept {
  v4f s0{}, s1{}, s2{}, s3{};
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    s0 += load4(a + i) * load4(b + i);
    s1 += load4(a + i + 4) * load4(b + i + 4);
    s2 += load4(a + i + 8) * load4(b + i + 8);
    s3 += load4(a + i + 12) * load4(b + i + 12);
  }
  float tail = 0.0f;
  for (; i < n; ++i) tail += a[i] * b[i];
  return flush(s0, s1, s2, s3, tail);
}

inline double norm2_block(const float* a, std::size_t n) noexcept {
  v4f s0{}, s1{}, s2{}, s3{};
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const v4f x0 = load4(a + i);
    const v4f x1 = load4(a + i + 4);
    const v4f x2 = load4(a + i + 8);
    const v4f x3 = load4(a + i + 12);
    s0 += x0 * x0;
    s1 += x1 * x1;
    s2 += x2 * x2;
    s3 += x3 * x3;
  }
  float tail = 0.0f;
  for (; i < n; ++i) tail += a[i] * a[i];
  return flush(s0, s1, s2, s3, tail);
}

}  // namespace

double dot(const float* a, const float* b, std::size_t n) noexcept {
  double total = 0.0;
  for (std::size_t lo = 0; lo < n; lo += kFlushBlock) {
    const std::size_t len = std::min(kFlushBlock, n - lo);
    total += dot_block(a + lo, b + lo, len);
  }
  return total;
}

double norm2_squared(const float* a, std::size_t n) noexcept {
  double total = 0.0;
  for (std::size_t lo = 0; lo < n; lo += kFlushBlock) {
    const std::size_t len = std::min(kFlushBlock, n - lo);
    total += norm2_block(a + lo, len);
  }
  return total;
}

double distance_squared(const float* a, const float* b, std::size_t n) noexcept {
  double total = 0.0;
  for (std::size_t lo = 0; lo < n; lo += kFlushBlock) {
    const std::size_t len = std::min(kFlushBlock, n - lo);
    total += dist2_block(a + lo, b + lo, len);
  }
  return total;
}

double distance_squared_df(const double* a, const float* b, std::size_t n) noexcept {
  v4d s0{}, s1{};
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    v4d x0, x1;
    __builtin_memcpy(&x0, a + i, sizeof(x0));
    __builtin_memcpy(&x1, a + i + 4, sizeof(x1));
    const v4d d0 = x0 - to_v4d(load4(b + i));
    const v4d d1 = x1 - to_v4d(load4(b + i + 4));
    s0 += d0 * d0;
    s1 += d1 * d1;
  }
  double tail = 0.0;
  for (; i < n; ++i) {
    const double d = a[i] - b[i];
    tail += d * d;
  }
  return flush_d(s0, s1, tail);
}

void axpy(double alpha, const float* x, float* y, std::size_t n) noexcept {
  const v4d va = {alpha, alpha, alpha, alpha};
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const v4d r = to_v4d(load4(y + i)) + va * to_v4d(load4(x + i));
    const v4f out = to_v4f(r);
    __builtin_memcpy(y + i, &out, sizeof(out));
  }
  for (; i < n; ++i) y[i] = static_cast<float>(y[i] + alpha * x[i]);
}

void axpby(double alpha, const float* x, double beta, float* y,
           std::size_t n) noexcept {
  const v4d va = {alpha, alpha, alpha, alpha};
  const v4d vb = {beta, beta, beta, beta};
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const v4d r = va * to_v4d(load4(x + i)) + vb * to_v4d(load4(y + i));
    const v4f out = to_v4f(r);
    __builtin_memcpy(y + i, &out, sizeof(out));
  }
  for (; i < n; ++i) y[i] = static_cast<float>(alpha * x[i] + beta * y[i]);
}

void scale(float* x, double alpha, std::size_t n) noexcept {
  const v4d va = {alpha, alpha, alpha, alpha};
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const v4f out = to_v4f(to_v4d(load4(x + i)) * va);
    __builtin_memcpy(x + i, &out, sizeof(out));
  }
  for (; i < n; ++i) x[i] = static_cast<float>(x[i] * alpha);
}

void add(const float* a, const float* b, float* out, std::size_t n) noexcept {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) store8(out + i, load8(a + i) + load8(b + i));
  for (; i < n; ++i) out[i] = a[i] + b[i];
}

void sub(const float* a, const float* b, float* out, std::size_t n) noexcept {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) store8(out + i, load8(a + i) - load8(b + i));
  for (; i < n; ++i) out[i] = a[i] - b[i];
}

void lerp(const float* a, const float* b, double alpha, double beta, float* out,
          std::size_t n) noexcept {
  const v4d va = {alpha, alpha, alpha, alpha};
  const v4d vb = {beta, beta, beta, beta};
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const v4f r = to_v4f(va * to_v4d(load4(a + i)) + vb * to_v4d(load4(b + i)));
    __builtin_memcpy(out + i, &r, sizeof(r));
  }
  for (; i < n; ++i) out[i] = static_cast<float>(alpha * a[i] + beta * b[i]);
}

void accumulate(const float* x, double* acc, std::size_t n) noexcept {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    v4d a;
    __builtin_memcpy(&a, acc + i, sizeof(a));
    a += to_v4d(load4(x + i));
    __builtin_memcpy(acc + i, &a, sizeof(a));
  }
  for (; i < n; ++i) acc[i] += x[i];
}

void accumulate_scaled(double w, const float* x, double* acc,
                       std::size_t n) noexcept {
  const v4d vw = {w, w, w, w};
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    v4d a;
    __builtin_memcpy(&a, acc + i, sizeof(a));
    a += vw * to_v4d(load4(x + i));
    __builtin_memcpy(acc + i, &a, sizeof(a));
  }
  for (; i < n; ++i) acc[i] += w * x[i];
}

void accumulate_clipped_diff(double s, const float* u, const float* v,
                             double* acc, std::size_t n) noexcept {
  const v4d vs = {s, s, s, s};
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    v4d a;
    __builtin_memcpy(&a, acc + i, sizeof(a));
    a += vs * to_v4d(load4(u + i) - load4(v + i));
    __builtin_memcpy(acc + i, &a, sizeof(a));
  }
  for (; i < n; ++i) acc[i] += s * static_cast<double>(u[i] - v[i]);
}

#else  // !ABDHFL_KERN_VEC — scalar fallback with the same reduction tree

namespace {

inline double dist2_block(const float* a, const float* b, std::size_t n) noexcept {
  float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f, tail = 0.0f;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float d0 = a[i] - b[i], d1 = a[i + 1] - b[i + 1];
    const float d2 = a[i + 2] - b[i + 2], d3 = a[i + 3] - b[i + 3];
    s0 += d0 * d0;
    s1 += d1 * d1;
    s2 += d2 * d2;
    s3 += d3 * d3;
  }
  for (; i < n; ++i) {
    const float d = a[i] - b[i];
    tail += d * d;
  }
  return (static_cast<double>(s0) + s1) + (static_cast<double>(s2) + s3) + tail;
}

}  // namespace

double dot(const float* a, const float* b, std::size_t n) noexcept {
  return dot_ref(a, b, n);
}
double norm2_squared(const float* a, std::size_t n) noexcept {
  return norm2_squared_ref(a, n);
}
double distance_squared(const float* a, const float* b, std::size_t n) noexcept {
  double total = 0.0;
  for (std::size_t lo = 0; lo < n; lo += kFlushBlock) {
    total += dist2_block(a + lo, b + lo, std::min(kFlushBlock, n - lo));
  }
  return total;
}
double distance_squared_df(const double* a, const float* b, std::size_t n) noexcept {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}
void axpy(double alpha, const float* x, float* y, std::size_t n) noexcept {
  axpy_ref(alpha, x, y, n);
}
void axpby(double alpha, const float* x, double beta, float* y,
           std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    y[i] = static_cast<float>(alpha * x[i] + beta * y[i]);
  }
}
void scale(float* x, double alpha, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) x[i] = static_cast<float>(x[i] * alpha);
}
void add(const float* a, const float* b, float* out, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) out[i] = a[i] + b[i];
}
void sub(const float* a, const float* b, float* out, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) out[i] = a[i] - b[i];
}
void lerp(const float* a, const float* b, double alpha, double beta, float* out,
          std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<float>(alpha * a[i] + beta * b[i]);
  }
}
void accumulate(const float* x, double* acc, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) acc[i] += x[i];
}
void accumulate_scaled(double w, const float* x, double* acc,
                       std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) acc[i] += w * x[i];
}
void accumulate_clipped_diff(double s, const float* u, const float* v,
                             double* acc, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    acc[i] += s * static_cast<double>(u[i] - v[i]);
  }
}

#endif  // ABDHFL_KERN_VEC

double dot_ref(const float* a, const float* b, std::size_t n) noexcept {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += static_cast<double>(a[i]) * b[i];
  }
  return acc;
}

double norm2_squared_ref(const float* a, std::size_t n) noexcept {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += static_cast<double>(a[i]) * a[i];
  }
  return acc;
}

double distance_squared_ref(const float* a, const float* b, std::size_t n) noexcept {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    acc += d * d;
  }
  return acc;
}

void axpy_ref(double alpha, const float* x, float* y, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    y[i] = static_cast<float>(y[i] + alpha * x[i]);
  }
}

void gather_columns(const float* const* rows, std::size_t n_rows,
                    std::size_t col_lo, std::size_t col_hi, float* out) noexcept {
  // Row-sequential reads, tile-local scattered writes: the tile is sized by
  // the caller to stay cache-resident, so the scatter is cheap.
  const std::size_t width = col_hi - col_lo;
  for (std::size_t r = 0; r < n_rows; ++r) {
    const float* src = rows[r] + col_lo;
    for (std::size_t c = 0; c < width; ++c) out[c * n_rows + r] = src[c];
  }
}

}  // namespace abdhfl::tensor::kern
