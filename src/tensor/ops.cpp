#include "tensor/ops.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "tensor/kernels.hpp"

namespace abdhfl::tensor {

// The flat-vector API delegates to the vectorized kernel layer
// (tensor/kernels.hpp).  Reductions use block-flushed float lanes (~1e-6
// relative error vs. the old sequential-double loops, deterministic);
// elementwise ops keep per-element double arithmetic bitwise-identical to
// the previous implementations.

double dot(std::span<const float> a, std::span<const float> b) noexcept {
  assert(a.size() == b.size());
  return kern::dot(a.data(), b.data(), a.size());
}

double norm2_squared(std::span<const float> a) noexcept {
  return kern::norm2_squared(a.data(), a.size());
}

double norm2(std::span<const float> a) noexcept { return std::sqrt(norm2_squared(a)); }

double distance_squared(std::span<const float> a, std::span<const float> b) noexcept {
  assert(a.size() == b.size());
  return kern::distance_squared(a.data(), b.data(), a.size());
}

void axpy(double alpha, std::span<const float> x, std::span<float> y) noexcept {
  assert(x.size() == y.size());
  kern::axpy(alpha, x.data(), y.data(), x.size());
}

void scale(std::span<float> x, double alpha) noexcept {
  kern::scale(x.data(), alpha, x.size());
}

std::vector<float> add(std::span<const float> a, std::span<const float> b) {
  assert(a.size() == b.size());
  std::vector<float> out(a.size());
  kern::add(a.data(), b.data(), out.data(), a.size());
  return out;
}

std::vector<float> sub(std::span<const float> a, std::span<const float> b) {
  assert(a.size() == b.size());
  std::vector<float> out(a.size());
  kern::sub(a.data(), b.data(), out.data(), a.size());
  return out;
}

std::vector<float> lerp(std::span<const float> a, std::span<const float> b,
                        double alpha_on_a) {
  assert(a.size() == b.size());
  std::vector<float> out(a.size());
  kern::lerp(a.data(), b.data(), alpha_on_a, 1.0 - alpha_on_a, out.data(), a.size());
  return out;
}

std::vector<float> mean_of(const std::vector<std::vector<float>>& vs) {
  const std::size_t dim = checked_common_size(vs);
  std::vector<double> acc(dim, 0.0);
  for (const auto& v : vs) kern::accumulate(v.data(), acc.data(), dim);
  std::vector<float> out(dim);
  const double inv = 1.0 / static_cast<double>(vs.size());
  for (std::size_t i = 0; i < dim; ++i) out[i] = static_cast<float>(acc[i] * inv);
  return out;
}

double clip_to_ball(std::span<float> x, double radius) noexcept {
  const double n = norm2(x);
  if (n <= radius || n == 0.0) return 1.0;
  const double factor = radius / n;
  scale(x, factor);
  return factor;
}

std::size_t checked_common_size(const std::vector<std::vector<float>>& vs) {
  if (vs.empty()) throw std::invalid_argument("no vectors supplied");
  const std::size_t dim = vs.front().size();
  for (const auto& v : vs) {
    if (v.size() != dim) throw std::invalid_argument("dimension mismatch across vectors");
  }
  return dim;
}

}  // namespace abdhfl::tensor
