#include "tensor/ops.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace abdhfl::tensor {

double dot(std::span<const float> a, std::span<const float> b) noexcept {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += static_cast<double>(a[i]) * b[i];
  return acc;
}

double norm2_squared(std::span<const float> a) noexcept {
  double acc = 0.0;
  for (float v : a) acc += static_cast<double>(v) * v;
  return acc;
}

double norm2(std::span<const float> a) noexcept { return std::sqrt(norm2_squared(a)); }

double distance_squared(std::span<const float> a, std::span<const float> b) noexcept {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    acc += d * d;
  }
  return acc;
}

void axpy(double alpha, std::span<const float> x, std::span<float> y) noexcept {
  assert(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    y[i] = static_cast<float>(y[i] + alpha * x[i]);
  }
}

void scale(std::span<float> x, double alpha) noexcept {
  for (float& v : x) v = static_cast<float>(v * alpha);
}

std::vector<float> add(std::span<const float> a, std::span<const float> b) {
  assert(a.size() == b.size());
  std::vector<float> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

std::vector<float> sub(std::span<const float> a, std::span<const float> b) {
  assert(a.size() == b.size());
  std::vector<float> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

std::vector<float> lerp(std::span<const float> a, std::span<const float> b,
                        double alpha_on_a) {
  assert(a.size() == b.size());
  std::vector<float> out(a.size());
  const double beta = 1.0 - alpha_on_a;
  for (std::size_t i = 0; i < a.size(); ++i) {
    out[i] = static_cast<float>(alpha_on_a * a[i] + beta * b[i]);
  }
  return out;
}

std::vector<float> mean_of(const std::vector<std::vector<float>>& vs) {
  const std::size_t dim = checked_common_size(vs);
  std::vector<double> acc(dim, 0.0);
  for (const auto& v : vs) {
    for (std::size_t i = 0; i < dim; ++i) acc[i] += v[i];
  }
  std::vector<float> out(dim);
  const double inv = 1.0 / static_cast<double>(vs.size());
  for (std::size_t i = 0; i < dim; ++i) out[i] = static_cast<float>(acc[i] * inv);
  return out;
}

double clip_to_ball(std::span<float> x, double radius) noexcept {
  const double n = norm2(x);
  if (n <= radius || n == 0.0) return 1.0;
  const double factor = radius / n;
  scale(x, factor);
  return factor;
}

std::size_t checked_common_size(const std::vector<std::vector<float>>& vs) {
  if (vs.empty()) throw std::invalid_argument("no vectors supplied");
  const std::size_t dim = vs.front().size();
  for (const auto& v : vs) {
    if (v.size() != dim) throw std::invalid_argument("dimension mismatch across vectors");
  }
  return dim;
}

}  // namespace abdhfl::tensor
