#pragma once
// Dense row-major matrix of float.  This is the whole linear-algebra
// substrate the neural-network layers are built on: GEMM with a small cache
// blocking, GEMV, rank-1 updates, and elementwise helpers.  float is used
// throughout model training (parameter vectors exchanged between FL nodes
// are float as well) — double precision buys nothing for the aggregation
// behaviour under study and doubles the simulated bandwidth.

#include <cstddef>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace abdhfl::tensor {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, float fill = 0.0f)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  [[nodiscard]] float& at(std::size_t r, std::size_t c) noexcept { return data_[r * cols_ + c]; }
  [[nodiscard]] float at(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  [[nodiscard]] float* data() noexcept { return data_.data(); }
  [[nodiscard]] const float* data() const noexcept { return data_.data(); }
  [[nodiscard]] std::span<float> row(std::size_t r) noexcept {
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<const float> row(std::size_t r) const noexcept {
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<float> flat() noexcept { return {data_.data(), data_.size()}; }
  [[nodiscard]] std::span<const float> flat() const noexcept {
    return {data_.data(), data_.size()};
  }

  void fill(float v) noexcept { std::fill(data_.begin(), data_.end(), v); }

  /// He/Kaiming-uniform initialization, the right scale for ReLU nets.
  void init_he_uniform(util::Rng& rng);
  /// Xavier/Glorot-uniform initialization.
  void init_xavier_uniform(util::Rng& rng);

  bool operator==(const Matrix& other) const = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

/// out = a * b.  Shapes: (m,k) x (k,n) -> (m,n).  out is overwritten.
/// Packed register-blocked kernel; accumulation order per output element
/// matches gemm_naive, so results agree bitwise for k <= 256.
void gemm(const Matrix& a, const Matrix& b, Matrix& out);

/// Reference triple-loop GEMM (the pre-kernel-layer implementation), kept
/// for correctness tests and before/after benchmarks.
void gemm_naive(const Matrix& a, const Matrix& b, Matrix& out);

/// out = a * b^T.  Shapes: (m,k) x (n,k) -> (m,n).
void gemm_nt(const Matrix& a, const Matrix& b, Matrix& out);

/// out = a^T * b.  Shapes: (k,m) x (k,n) -> (m,n).
void gemm_tn(const Matrix& a, const Matrix& b, Matrix& out);

/// y = M * x.  Shapes: (m,n) x (n) -> (m).
void gemv(const Matrix& m, std::span<const float> x, std::span<float> y);

/// Adds the bias row vector to every row of m (broadcast add).
void add_row_broadcast(Matrix& m, std::span<const float> bias);

/// column_sums[j] = sum over rows of m(i,j); used for bias gradients.
void column_sums(const Matrix& m, std::span<float> out);

}  // namespace abdhfl::tensor
