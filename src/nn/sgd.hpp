#pragma once
// Stochastic gradient descent with optional momentum and weight decay, plus
// the learning-rate schedules the experiments use.  The paper's devices run
// plain SGD (Algorithm 2, line 15); momentum/decay are exposed because the
// model-update attack ALE assumes realistic benign update statistics.

#include <cstddef>
#include <vector>

#include "nn/mlp.hpp"

namespace abdhfl::nn {

struct SgdConfig {
  double learning_rate = 0.05;
  double momentum = 0.0;       // 0 disables the velocity buffers
  double weight_decay = 0.0;   // L2 coefficient applied to weights
};

class Sgd {
 public:
  explicit Sgd(SgdConfig config) : config_(config) {}

  /// Apply one step using the gradients currently stored in the model.
  void step(Mlp& model);

  [[nodiscard]] const SgdConfig& config() const noexcept { return config_; }
  void set_learning_rate(double lr) noexcept { config_.learning_rate = lr; }

  /// Momentum velocity buffers, aligned with model.params(); empty until the
  /// first momentum step.  Exposed so checkpoints can capture and restore
  /// optimizer state exactly.
  [[nodiscard]] const std::vector<std::vector<float>>& velocity() const noexcept {
    return velocity_;
  }
  [[nodiscard]] std::vector<std::vector<float>>& mutable_velocity() noexcept {
    return velocity_;
  }

 private:
  SgdConfig config_;
  std::vector<std::vector<float>> velocity_;  // aligned with model.params()
};

/// Step-decay schedule: lr * gamma^(round / step_size).
[[nodiscard]] double step_decay_lr(double base_lr, double gamma, std::size_t step_size,
                                   std::size_t round) noexcept;

/// 1/t decay: lr / (1 + k * round).
[[nodiscard]] double inv_time_lr(double base_lr, double k, std::size_t round) noexcept;

}  // namespace abdhfl::nn
