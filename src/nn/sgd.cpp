#include "nn/sgd.hpp"

#include <cmath>

namespace abdhfl::nn {

void Sgd::step(Mlp& model) {
  auto refs = model.params();
  if (config_.momentum != 0.0 && velocity_.size() != refs.size()) {
    velocity_.assign(refs.size(), {});
    for (std::size_t i = 0; i < refs.size(); ++i) {
      velocity_[i].assign(refs[i].value->size(), 0.0f);
    }
  }

  const float lr = static_cast<float>(config_.learning_rate);
  const float mu = static_cast<float>(config_.momentum);
  const float wd = static_cast<float>(config_.weight_decay);

  for (std::size_t i = 0; i < refs.size(); ++i) {
    auto value = refs[i].value->flat();
    auto grad = refs[i].grad->flat();
    if (mu == 0.0f) {
      for (std::size_t j = 0; j < value.size(); ++j) {
        const float g = grad[j] + wd * value[j];
        value[j] -= lr * g;
      }
    } else {
      auto& vel = velocity_[i];
      for (std::size_t j = 0; j < value.size(); ++j) {
        const float g = grad[j] + wd * value[j];
        vel[j] = mu * vel[j] + g;
        value[j] -= lr * vel[j];
      }
    }
  }
}

double step_decay_lr(double base_lr, double gamma, std::size_t step_size,
                     std::size_t round) noexcept {
  if (step_size == 0) return base_lr;
  return base_lr * std::pow(gamma, static_cast<double>(round / step_size));
}

double inv_time_lr(double base_lr, double k, std::size_t round) noexcept {
  return base_lr / (1.0 + k * static_cast<double>(round));
}

}  // namespace abdhfl::nn
