#pragma once
// 2-D convolution and max-pooling layers.
//
// The paper's evaluation uses a small DNN; these layers extend the
// substrate to the CNN classifiers typically used on MNIST-scale images so
// full-fidelity reruns don't change any aggregation code — models still
// flatten to the parameter vectors the FL machinery exchanges.
//
// Tensors stay in the MLP's row-major (batch, features) layout with
// features = channels * height * width, channel-major.  Convolutions are
// direct (no im2col): at the sizes this repo trains, loop nests beat the
// copy overhead.  Valid padding, stride 1.

#include <memory>

#include "nn/layer.hpp"
#include "nn/mlp.hpp"
#include "util/rng.hpp"

namespace abdhfl::nn {

struct Conv2dShape {
  std::size_t in_channels = 1;
  std::size_t height = 16;
  std::size_t width = 16;
  std::size_t out_channels = 4;
  std::size_t kernel = 3;

  [[nodiscard]] std::size_t out_height() const noexcept { return height - kernel + 1; }
  [[nodiscard]] std::size_t out_width() const noexcept { return width - kernel + 1; }
  [[nodiscard]] std::size_t in_features() const noexcept {
    return in_channels * height * width;
  }
  [[nodiscard]] std::size_t out_features() const noexcept {
    return out_channels * out_height() * out_width();
  }
};

class Conv2d final : public Layer {
 public:
  Conv2d(const Conv2dShape& shape, util::Rng& rng);

  tensor::Matrix forward(const tensor::Matrix& x) override;
  tensor::Matrix backward(const tensor::Matrix& grad_out) override;
  std::vector<ParamRef> params() override;
  [[nodiscard]] std::string name() const override { return "Conv2d"; }
  [[nodiscard]] std::unique_ptr<Layer> clone() const override;

  [[nodiscard]] const Conv2dShape& shape() const noexcept { return shape_; }

 private:
  Conv2d() = default;

  Conv2dShape shape_;
  tensor::Matrix weight_;       // (out_c, in_c * k * k)
  tensor::Matrix bias_;         // (1, out_c)
  tensor::Matrix grad_weight_;
  tensor::Matrix grad_bias_;
  tensor::Matrix cached_input_;
};

/// 2x2 max pooling with stride 2 (even spatial dims required).
class MaxPool2x2 final : public Layer {
 public:
  MaxPool2x2(std::size_t channels, std::size_t height, std::size_t width);

  tensor::Matrix forward(const tensor::Matrix& x) override;
  tensor::Matrix backward(const tensor::Matrix& grad_out) override;
  [[nodiscard]] std::string name() const override { return "MaxPool2x2"; }
  [[nodiscard]] std::unique_ptr<Layer> clone() const override {
    return std::make_unique<MaxPool2x2>(channels_, height_, width_);
  }

 private:
  std::size_t channels_, height_, width_;
  std::vector<std::size_t> argmax_;  // per output element of the last forward
  std::size_t cached_batch_ = 0;
};

/// conv(1->filters, 3x3) + ReLU + maxpool 2x2 + dense(classes), for square
/// side x side single-channel inputs.
[[nodiscard]] Mlp make_cnn(std::size_t side, std::size_t filters, std::size_t classes,
                           util::Rng& rng);

}  // namespace abdhfl::nn
