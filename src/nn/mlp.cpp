#include "nn/mlp.hpp"

#include <cstring>
#include <stdexcept>

#include "nn/activations.hpp"
#include "nn/dense.hpp"

namespace abdhfl::nn {

tensor::Matrix Mlp::forward(const tensor::Matrix& x) {
  tensor::Matrix h = x;
  for (auto& layer : layers_) h = layer->forward(h);
  return h;
}

void Mlp::backward(const tensor::Matrix& grad) {
  tensor::Matrix g = grad;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) g = (*it)->backward(g);
}

std::vector<ParamRef> Mlp::params() const {
  std::vector<ParamRef> refs;
  for (const auto& layer : layers_) {
    for (auto ref : layer->params()) refs.push_back(ref);
  }
  return refs;
}

std::size_t Mlp::param_count() const {
  std::size_t n = 0;
  for (auto ref : params()) n += ref.value->size();
  return n;
}

std::vector<float> Mlp::flatten() const {
  std::vector<float> out;
  out.reserve(param_count());
  for (auto ref : params()) {
    auto flat = ref.value->flat();
    out.insert(out.end(), flat.begin(), flat.end());
  }
  return out;
}

void Mlp::unflatten(std::span<const float> flat) {
  if (flat.size() != param_count()) {
    throw std::invalid_argument("unflatten: expected " + std::to_string(param_count()) +
                                " params, got " + std::to_string(flat.size()));
  }
  std::size_t offset = 0;
  for (auto ref : params()) {
    auto dst = ref.value->flat();
    std::memcpy(dst.data(), flat.data() + offset, dst.size() * sizeof(float));
    offset += dst.size();
  }
}

std::vector<float> Mlp::flatten_grads() const {
  std::vector<float> out;
  out.reserve(param_count());
  for (auto ref : params()) {
    auto flat = ref.grad->flat();
    out.insert(out.end(), flat.begin(), flat.end());
  }
  return out;
}

Mlp Mlp::clone() const {
  Mlp copy;
  for (const auto& layer : layers_) copy.add(layer->clone());
  return copy;
}

Mlp make_mlp(std::size_t input, const std::vector<std::size_t>& hidden,
             std::size_t classes, util::Rng& rng) {
  Mlp mlp;
  std::size_t prev = input;
  for (std::size_t width : hidden) {
    mlp.add(std::make_unique<Dense>(prev, width, rng));
    mlp.add(std::make_unique<ReLU>());
    prev = width;
  }
  mlp.add(std::make_unique<Dense>(prev, classes, rng));
  return mlp;
}

}  // namespace abdhfl::nn
