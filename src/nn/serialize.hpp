#pragma once
// Binary (de)serialization of flat parameter vectors, used to checkpoint
// global models from the examples and to measure the wire size of a model
// update in the communication-cost accounting.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace abdhfl::nn {

/// Blob framing constants and the digest over the raw float bytes, exposed
/// so the wire codec can emit the blob header/digest around an in-place
/// float span (scatter-gather encode) without concatenating a scratch blob.
inline constexpr std::uint32_t kBlobMagic = 0xABD4F17EU;
inline constexpr std::uint32_t kBlobVersion = 1;
[[nodiscard]] std::uint64_t params_digest(std::span<const float> params) noexcept;

/// Little-endian framing: magic, version, count, raw floats, FNV-1a digest.
[[nodiscard]] std::vector<std::uint8_t> serialize_params(std::span<const float> params);

/// Inverse of serialize_params; throws std::runtime_error on corruption.
[[nodiscard]] std::vector<float> deserialize_params(std::span<const std::uint8_t> bytes);

/// Wire size in bytes of a parameter vector of the given length.
[[nodiscard]] std::size_t wire_size(std::size_t param_count) noexcept;

/// Parameters plus optimizer state, as produced by deserialize_state.
/// velocity is empty when the blob carried none (momentum-free training, or
/// a version-1 params-only blob).
struct OptimState {
  std::vector<float> params;
  std::vector<std::vector<float>> velocity;  // aligned with Mlp::params()
};

/// Version-2 framing: params followed by the SGD momentum velocity buffers,
/// digest over the whole body.  Pass an empty velocity for momentum-free
/// state; the blob then decodes exactly like a params-only snapshot.
[[nodiscard]] std::vector<std::uint8_t> serialize_state(
    std::span<const float> params, const std::vector<std::vector<float>>& velocity);

/// Inverse of serialize_state.  Also accepts version-1 params-only blobs
/// (velocity comes back empty), so pre-existing checkpoints stay loadable.
/// Throws std::runtime_error on corruption.
[[nodiscard]] OptimState deserialize_state(std::span<const std::uint8_t> bytes);

void save_params(const std::string& path, std::span<const float> params);
[[nodiscard]] std::vector<float> load_params(const std::string& path);

}  // namespace abdhfl::nn
