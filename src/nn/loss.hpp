#pragma once
// Softmax + cross-entropy, fused for numerical stability, plus the accuracy
// metric the experiments report.

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/matrix.hpp"

namespace abdhfl::nn {

struct LossResult {
  double loss = 0.0;            // mean cross-entropy over the batch
  tensor::Matrix grad;          // dLoss/dLogits, already divided by batch
};

/// logits: (batch, classes); labels: batch class indices.
[[nodiscard]] LossResult softmax_cross_entropy(const tensor::Matrix& logits,
                                               std::span<const std::uint8_t> labels);

/// Row-wise softmax probabilities (allocates).
[[nodiscard]] tensor::Matrix softmax(const tensor::Matrix& logits);

/// argmax per row.
[[nodiscard]] std::vector<std::uint8_t> predict(const tensor::Matrix& logits);

/// Fraction of rows whose argmax matches the label.
[[nodiscard]] double accuracy(const tensor::Matrix& logits,
                              std::span<const std::uint8_t> labels);

}  // namespace abdhfl::nn
