#include "nn/quantize.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace abdhfl::nn {

std::size_t QuantizedVec::wire_size() const noexcept {
  // header: bits + block + count; per block: scale + min; packed payload.
  return sizeof(bits) + sizeof(block) + sizeof(count) +
         scales.size() * sizeof(float) * 2 + data.size();
}

QuantizedVec quantize(std::span<const float> values, std::uint8_t bits,
                      std::uint32_t block) {
  if (bits == 0 || bits > 8) throw std::invalid_argument("quantize: bits must be 1..8");
  if (block == 0) throw std::invalid_argument("quantize: zero block size");

  QuantizedVec q;
  q.bits = bits;
  q.block = block;
  q.count = values.size();
  const std::size_t n_blocks = (values.size() + block - 1) / block;
  q.scales.resize(n_blocks);
  q.mins.resize(n_blocks);

  const auto levels = static_cast<std::uint32_t>((1U << bits) - 1);
  const std::size_t total_bits = values.size() * bits;
  q.data.assign((total_bits + 7) / 8, 0);

  std::size_t bit_pos = 0;
  for (std::size_t b = 0; b < n_blocks; ++b) {
    const std::size_t lo = b * block;
    const std::size_t hi = std::min<std::size_t>(values.size(), lo + block);
    float mn = values[lo], mx = values[lo];
    for (std::size_t i = lo; i < hi; ++i) {
      mn = std::min(mn, values[i]);
      mx = std::max(mx, values[i]);
    }
    q.mins[b] = mn;
    const float range = mx - mn;
    q.scales[b] = levels > 0 && range > 0.0f ? range / static_cast<float>(levels) : 0.0f;

    for (std::size_t i = lo; i < hi; ++i) {
      std::uint32_t code = 0;
      if (q.scales[b] > 0.0f) {
        code = static_cast<std::uint32_t>(
            std::lround((values[i] - mn) / q.scales[b]));
        code = std::min(code, levels);
      }
      // Pack LSB-first across the byte stream.
      for (std::uint8_t k = 0; k < bits; ++k, ++bit_pos) {
        if ((code >> k) & 1U) {
          q.data[bit_pos / 8] |= static_cast<std::uint8_t>(1U << (bit_pos % 8));
        }
      }
    }
  }
  return q;
}

std::vector<float> dequantize(const QuantizedVec& q) {
  if (q.bits == 0 || q.bits > 8) throw std::invalid_argument("dequantize: bad bits");
  std::vector<float> out(q.count);
  std::size_t bit_pos = 0;
  for (std::size_t i = 0; i < q.count; ++i) {
    std::uint32_t code = 0;
    for (std::uint8_t k = 0; k < q.bits; ++k, ++bit_pos) {
      if (bit_pos / 8 >= q.data.size()) throw std::invalid_argument("dequantize: truncated");
      if ((q.data[bit_pos / 8] >> (bit_pos % 8)) & 1U) code |= 1U << k;
    }
    const std::size_t b = i / q.block;
    if (b >= q.scales.size()) throw std::invalid_argument("dequantize: missing block");
    out[i] = q.mins[b] + q.scales[b] * static_cast<float>(code);
  }
  return out;
}

double max_error_bound(double value_range, std::uint8_t bits) noexcept {
  if (bits == 0) return value_range;
  const double levels = static_cast<double>((1U << bits) - 1);
  return levels > 0.0 ? value_range / levels / 2.0 : value_range;
}

}  // namespace abdhfl::nn
