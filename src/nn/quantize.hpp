#pragma once
// Uniform linear quantization of model updates — the standard FL bandwidth
// optimization (Konecny et al., "strategies for improving communication
// efficiency", reference [3] of the paper).  A float parameter vector is
// mapped to `bits`-wide integers per fixed-size block with a per-block
// (scale, min) pair, cutting the wire size ~4x at 8 bits.  Exposed so the
// communication-cost accounting of the scheme experiments can be re-run
// under compression (see bench_micro's quantization entries for the
// error/size trade-off).

#include <cstdint>
#include <span>
#include <vector>

namespace abdhfl::nn {

struct QuantizedVec {
  std::uint8_t bits = 8;           // 1..8 bits per value
  std::uint32_t block = 256;       // values per (scale,min) block
  std::uint64_t count = 0;         // original element count
  std::vector<float> scales;       // per block
  std::vector<float> mins;         // per block
  std::vector<std::uint8_t> data;  // packed values

  /// Bytes this representation occupies on the wire.
  [[nodiscard]] std::size_t wire_size() const noexcept;
};

/// Quantize to `bits` bits per value (1..8), blockwise min/max scaling.
[[nodiscard]] QuantizedVec quantize(std::span<const float> values, std::uint8_t bits = 8,
                                    std::uint32_t block = 256);

/// Reconstruct (lossy) floats.
[[nodiscard]] std::vector<float> dequantize(const QuantizedVec& q);

/// Worst-case absolute reconstruction error for a block of the given range:
/// half a quantization step.
[[nodiscard]] double max_error_bound(double value_range, std::uint8_t bits) noexcept;

}  // namespace abdhfl::nn
