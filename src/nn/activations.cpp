#include "nn/activations.hpp"

#include <cmath>

namespace abdhfl::nn {

tensor::Matrix ReLU::forward(const tensor::Matrix& x) {
  cached_input_ = x;
  tensor::Matrix out = x;
  for (float& v : out.flat()) {
    if (v < 0.0f) v = 0.0f;
  }
  return out;
}

tensor::Matrix ReLU::backward(const tensor::Matrix& grad_out) {
  tensor::Matrix grad_in = grad_out;
  auto in = cached_input_.flat();
  auto g = grad_in.flat();
  for (std::size_t i = 0; i < g.size(); ++i) {
    if (in[i] <= 0.0f) g[i] = 0.0f;
  }
  return grad_in;
}

tensor::Matrix Tanh::forward(const tensor::Matrix& x) {
  tensor::Matrix out = x;
  for (float& v : out.flat()) v = std::tanh(v);
  cached_output_ = out;
  return out;
}

tensor::Matrix Tanh::backward(const tensor::Matrix& grad_out) {
  tensor::Matrix grad_in = grad_out;
  auto y = cached_output_.flat();
  auto g = grad_in.flat();
  for (std::size_t i = 0; i < g.size(); ++i) g[i] *= 1.0f - y[i] * y[i];
  return grad_in;
}

}  // namespace abdhfl::nn
