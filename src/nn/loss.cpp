#include "nn/loss.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace abdhfl::nn {

tensor::Matrix softmax(const tensor::Matrix& logits) {
  tensor::Matrix probs = logits;
  for (std::size_t r = 0; r < probs.rows(); ++r) {
    auto row = probs.row(r);
    const float mx = *std::max_element(row.begin(), row.end());
    double sum = 0.0;
    for (float& v : row) {
      v = std::exp(v - mx);
      sum += v;
    }
    const float inv = static_cast<float>(1.0 / sum);
    for (float& v : row) v *= inv;
  }
  return probs;
}

LossResult softmax_cross_entropy(const tensor::Matrix& logits,
                                 std::span<const std::uint8_t> labels) {
  assert(labels.size() == logits.rows());
  const std::size_t batch = logits.rows();
  LossResult result;
  result.grad = softmax(logits);
  double loss = 0.0;
  const float inv_batch = 1.0f / static_cast<float>(batch);
  for (std::size_t r = 0; r < batch; ++r) {
    auto row = result.grad.row(r);
    const std::uint8_t y = labels[r];
    assert(y < row.size());
    // p was clamped below by softmax normalization; clamp against log(0).
    loss -= std::log(std::max(row[y], 1e-12f));
    row[y] -= 1.0f;
    for (float& v : row) v *= inv_batch;
  }
  result.loss = loss / static_cast<double>(batch);
  return result;
}

std::vector<std::uint8_t> predict(const tensor::Matrix& logits) {
  std::vector<std::uint8_t> out(logits.rows());
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    auto row = logits.row(r);
    out[r] = static_cast<std::uint8_t>(
        std::max_element(row.begin(), row.end()) - row.begin());
  }
  return out;
}

double accuracy(const tensor::Matrix& logits, std::span<const std::uint8_t> labels) {
  assert(labels.size() == logits.rows());
  if (logits.rows() == 0) return 0.0;
  const auto preds = predict(logits);
  std::size_t hits = 0;
  for (std::size_t i = 0; i < preds.size(); ++i) {
    if (preds[i] == labels[i]) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(preds.size());
}

}  // namespace abdhfl::nn
