#pragma once
// Sequential MLP container and the flatten/unflatten bridge between model
// parameters and the flat float vectors exchanged by federated-learning
// nodes.  Every aggregation rule and every consensus protocol in this repo
// consumes the output of Mlp::flatten().

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "nn/layer.hpp"
#include "util/rng.hpp"

namespace abdhfl::nn {

class Mlp {
 public:
  Mlp() = default;

  void add(std::unique_ptr<Layer> layer) { layers_.push_back(std::move(layer)); }

  [[nodiscard]] std::size_t layer_count() const noexcept { return layers_.size(); }
  [[nodiscard]] Layer& layer(std::size_t i) { return *layers_[i]; }

  /// Forward pass over a mini-batch; returns logits.
  [[nodiscard]] tensor::Matrix forward(const tensor::Matrix& x);

  /// Backward pass; grad is dLoss/dLogits.  Overwrites layer gradients.
  void backward(const tensor::Matrix& grad);

  /// Total number of scalar parameters.
  [[nodiscard]] std::size_t param_count() const;

  /// Copy all parameters into one flat vector (layer order, row-major).
  [[nodiscard]] std::vector<float> flatten() const;

  /// Load parameters from a flat vector; throws on size mismatch.
  void unflatten(std::span<const float> flat);

  /// Copy all gradients into one flat vector (same layout as flatten()).
  [[nodiscard]] std::vector<float> flatten_grads() const;

  /// Deep copy.
  [[nodiscard]] Mlp clone() const;

  /// Parameter refs across all layers, in flatten() order.
  [[nodiscard]] std::vector<ParamRef> params() const;

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

/// Build input -> hidden... -> classes with ReLU activations; He init.
[[nodiscard]] Mlp make_mlp(std::size_t input, const std::vector<std::size_t>& hidden,
                           std::size_t classes, util::Rng& rng);

}  // namespace abdhfl::nn
