#pragma once
// Fully connected layer: y = x W + b, weights stored (in, out).

#include <memory>
#include <string>
#include <vector>

#include "nn/layer.hpp"
#include "util/rng.hpp"

namespace abdhfl::nn {

class Dense final : public Layer {
 public:
  Dense(std::size_t in, std::size_t out, util::Rng& rng);

  tensor::Matrix forward(const tensor::Matrix& x) override;
  tensor::Matrix backward(const tensor::Matrix& grad_out) override;
  std::vector<ParamRef> params() override;
  [[nodiscard]] std::string name() const override { return "Dense"; }
  [[nodiscard]] std::unique_ptr<Layer> clone() const override;

  [[nodiscard]] std::size_t in_features() const noexcept { return weight_.rows(); }
  [[nodiscard]] std::size_t out_features() const noexcept { return weight_.cols(); }
  [[nodiscard]] const tensor::Matrix& weight() const noexcept { return weight_; }
  [[nodiscard]] const tensor::Matrix& bias() const noexcept { return bias_; }

 private:
  Dense() = default;  // for clone

  tensor::Matrix weight_;       // (in, out)
  tensor::Matrix bias_;         // (1, out)
  tensor::Matrix grad_weight_;  // same shape as weight_
  tensor::Matrix grad_bias_;    // same shape as bias_
  tensor::Matrix cached_input_;
};

}  // namespace abdhfl::nn
