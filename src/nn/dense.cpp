#include "nn/dense.hpp"

namespace abdhfl::nn {

Dense::Dense(std::size_t in, std::size_t out, util::Rng& rng)
    : weight_(in, out),
      bias_(1, out, 0.0f),
      grad_weight_(in, out, 0.0f),
      grad_bias_(1, out, 0.0f) {
  weight_.init_he_uniform(rng);
}

tensor::Matrix Dense::forward(const tensor::Matrix& x) {
  cached_input_ = x;
  tensor::Matrix out;
  tensor::gemm(x, weight_, out);
  tensor::add_row_broadcast(out, bias_.flat());
  return out;
}

tensor::Matrix Dense::backward(const tensor::Matrix& grad_out) {
  // dW = x^T * grad_out ; db = column sums of grad_out ; dx = grad_out * W^T.
  tensor::gemm_tn(cached_input_, grad_out, grad_weight_);
  tensor::column_sums(grad_out, grad_bias_.flat());
  tensor::Matrix grad_in;
  tensor::gemm_nt(grad_out, weight_, grad_in);
  return grad_in;
}

std::vector<ParamRef> Dense::params() {
  return {{&weight_, &grad_weight_}, {&bias_, &grad_bias_}};
}

std::unique_ptr<Layer> Dense::clone() const {
  auto copy = std::unique_ptr<Dense>(new Dense());
  copy->weight_ = weight_;
  copy->bias_ = bias_;
  copy->grad_weight_ = tensor::Matrix(weight_.rows(), weight_.cols(), 0.0f);
  copy->grad_bias_ = tensor::Matrix(bias_.rows(), bias_.cols(), 0.0f);
  return copy;
}

}  // namespace abdhfl::nn
