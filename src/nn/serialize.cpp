#include "nn/serialize.hpp"

#include <cstring>
#include <fstream>
#include <stdexcept>

namespace abdhfl::nn {

namespace {

constexpr std::uint32_t kMagic = kBlobMagic;
constexpr std::uint32_t kVersion = kBlobVersion;
constexpr std::uint32_t kVersionState = 2;
// A velocity buffer per parameter tensor; no real model has anywhere near
// this many, so a larger count is a forged header, not a big model.
constexpr std::uint32_t kMaxVelocityBuffers = 1u << 16;

std::uint64_t fnv1a(const std::uint8_t* data, std::size_t n) noexcept {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 0x100000001B3ULL;
  }
  return h;
}

template <class T>
void append_pod(std::vector<std::uint8_t>& out, T value) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&value);
  out.insert(out.end(), p, p + sizeof(T));
}

template <class T>
T read_pod(std::span<const std::uint8_t> bytes, std::size_t& offset) {
  if (offset + sizeof(T) > bytes.size()) throw std::runtime_error("truncated model blob");
  T value;
  std::memcpy(&value, bytes.data() + offset, sizeof(T));
  offset += sizeof(T);
  return value;
}

}  // namespace

std::uint64_t params_digest(std::span<const float> params) noexcept {
  return fnv1a(reinterpret_cast<const std::uint8_t*>(params.data()),
               params.size() * sizeof(float));
}

std::size_t wire_size(std::size_t param_count) noexcept {
  return sizeof(kMagic) + sizeof(kVersion) + sizeof(std::uint64_t) +
         param_count * sizeof(float) + sizeof(std::uint64_t);
}

std::vector<std::uint8_t> serialize_params(std::span<const float> params) {
  std::vector<std::uint8_t> out;
  out.reserve(wire_size(params.size()));
  append_pod(out, kMagic);
  append_pod(out, kVersion);
  append_pod(out, static_cast<std::uint64_t>(params.size()));
  const auto* raw = reinterpret_cast<const std::uint8_t*>(params.data());
  out.insert(out.end(), raw, raw + params.size() * sizeof(float));
  append_pod(out, fnv1a(raw, params.size() * sizeof(float)));
  return out;
}

std::vector<float> deserialize_params(std::span<const std::uint8_t> bytes) {
  std::size_t offset = 0;
  const auto magic = read_pod<std::uint32_t>(bytes, offset);
  if (magic != kMagic) {
    if (magic == __builtin_bswap32(kMagic)) {
      throw std::runtime_error(
          "big-endian model blob (byte-swapped magic): the wire format is "
          "little-endian only");
    }
    throw std::runtime_error("bad model blob magic");
  }
  if (read_pod<std::uint32_t>(bytes, offset) != kVersion) {
    throw std::runtime_error("unsupported model blob version");
  }
  const auto count = read_pod<std::uint64_t>(bytes, offset);
  // Bound count before it sizes the vector: the naive size check would wrap
  // for count near 2^62 and admit an absurd allocation.
  if (bytes.size() - offset < sizeof(std::uint64_t) ||
      count > (bytes.size() - offset - sizeof(std::uint64_t)) / sizeof(float)) {
    throw std::runtime_error("truncated model blob payload");
  }
  std::vector<float> params(count);
  std::memcpy(params.data(), bytes.data() + offset, count * sizeof(float));
  offset += count * sizeof(float);
  const auto digest = read_pod<std::uint64_t>(bytes, offset);
  const auto* raw = reinterpret_cast<const std::uint8_t*>(params.data());
  if (digest != fnv1a(raw, count * sizeof(float))) {
    throw std::runtime_error("model blob digest mismatch");
  }
  return params;
}

std::vector<std::uint8_t> serialize_state(std::span<const float> params,
                                          const std::vector<std::vector<float>>& velocity) {
  if (velocity.size() > kMaxVelocityBuffers) {
    throw std::runtime_error("serialize_state: too many velocity buffers");
  }
  std::vector<std::uint8_t> out;
  std::size_t vel_floats = 0;
  for (const auto& v : velocity) vel_floats += v.size();
  out.reserve(wire_size(params.size()) + sizeof(std::uint32_t) +
              velocity.size() * sizeof(std::uint64_t) + vel_floats * sizeof(float));
  append_pod(out, kMagic);
  append_pod(out, kVersionState);
  append_pod(out, static_cast<std::uint64_t>(params.size()));
  const auto* raw = reinterpret_cast<const std::uint8_t*>(params.data());
  out.insert(out.end(), raw, raw + params.size() * sizeof(float));
  append_pod(out, static_cast<std::uint32_t>(velocity.size()));
  for (const auto& v : velocity) {
    append_pod(out, static_cast<std::uint64_t>(v.size()));
    const auto* vraw = reinterpret_cast<const std::uint8_t*>(v.data());
    out.insert(out.end(), vraw, vraw + v.size() * sizeof(float));
  }
  const std::size_t body = sizeof(kMagic) + sizeof(kVersionState);
  append_pod(out, fnv1a(out.data() + body, out.size() - body));
  return out;
}

OptimState deserialize_state(std::span<const std::uint8_t> bytes) {
  std::size_t offset = 0;
  const auto magic = read_pod<std::uint32_t>(bytes, offset);
  if (magic != kMagic) {
    if (magic == __builtin_bswap32(kMagic)) {
      throw std::runtime_error(
          "big-endian model blob (byte-swapped magic): the wire format is "
          "little-endian only");
    }
    throw std::runtime_error("bad model blob magic");
  }
  const auto version = read_pod<std::uint32_t>(bytes, offset);
  if (version == kVersion) {
    // Params-only blob from before optimizer state existed.
    OptimState state;
    state.params = deserialize_params(bytes);
    return state;
  }
  if (version != kVersionState) {
    throw std::runtime_error("unsupported model blob version");
  }
  const std::size_t body = offset;
  // Every count is bounded against the remaining bytes (minus the trailing
  // digest) BEFORE it sizes an allocation, same discipline as the v1 path.
  auto remaining_floats = [&]() -> std::uint64_t {
    if (bytes.size() - offset < sizeof(std::uint64_t)) return 0;
    return (bytes.size() - offset - sizeof(std::uint64_t)) / sizeof(float);
  };
  OptimState state;
  const auto count = read_pod<std::uint64_t>(bytes, offset);
  if (count > remaining_floats()) throw std::runtime_error("truncated model blob payload");
  state.params.resize(count);
  std::memcpy(state.params.data(), bytes.data() + offset, count * sizeof(float));
  offset += count * sizeof(float);
  const auto buffers = read_pod<std::uint32_t>(bytes, offset);
  if (buffers > kMaxVelocityBuffers) {
    throw std::runtime_error("model blob velocity buffer count out of range");
  }
  state.velocity.resize(buffers);
  for (auto& v : state.velocity) {
    const auto n = read_pod<std::uint64_t>(bytes, offset);
    if (n > remaining_floats()) throw std::runtime_error("truncated model blob payload");
    v.resize(n);
    std::memcpy(v.data(), bytes.data() + offset, n * sizeof(float));
    offset += n * sizeof(float);
  }
  const std::size_t payload_end = offset;
  const auto digest = read_pod<std::uint64_t>(bytes, offset);
  if (offset != bytes.size()) throw std::runtime_error("trailing bytes after model blob");
  if (digest != fnv1a(bytes.data() + body, payload_end - body)) {
    throw std::runtime_error("model blob digest mismatch");
  }
  return state;
}

void save_params(const std::string& path, std::span<const float> params) {
  const auto bytes = serialize_params(params);
  std::ofstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("cannot open " + path);
  f.write(reinterpret_cast<const char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  if (!f) throw std::runtime_error("write failed: " + path);
}

std::vector<float> load_params(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("cannot open " + path);
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(f)),
                                  std::istreambuf_iterator<char>());
  return deserialize_params(bytes);
}

}  // namespace abdhfl::nn
