#pragma once
// Layer interface for the MLP substrate.
//
// Layers process mini-batches stored as row-major matrices (one sample per
// row).  backward() receives dLoss/dOutput, accumulates parameter gradients
// internally, and returns dLoss/dInput.  Parameters are exposed as
// (value, gradient) matrix pairs so optimizers and the flatten/unflatten
// bridge to federated aggregation can traverse any architecture uniformly.

#include <memory>
#include <string>
#include <vector>

#include "tensor/matrix.hpp"

namespace abdhfl::nn {

struct ParamRef {
  tensor::Matrix* value = nullptr;
  tensor::Matrix* grad = nullptr;
};

class Layer {
 public:
  virtual ~Layer() = default;

  /// x: (batch, in) -> (batch, out).  Must cache whatever backward needs.
  virtual tensor::Matrix forward(const tensor::Matrix& x) = 0;

  /// grad_out: dLoss/dOutput of the most recent forward.  Returns
  /// dLoss/dInput and *overwrites* this layer's parameter gradients.
  virtual tensor::Matrix backward(const tensor::Matrix& grad_out) = 0;

  /// Parameter/gradient pairs; empty for stateless layers.
  virtual std::vector<ParamRef> params() { return {}; }

  [[nodiscard]] virtual std::string name() const = 0;

  /// Deep copy (parameters included, cached activations excluded).
  [[nodiscard]] virtual std::unique_ptr<Layer> clone() const = 0;
};

}  // namespace abdhfl::nn
