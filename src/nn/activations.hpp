#pragma once
// Stateless elementwise activation layers.

#include <memory>
#include <string>

#include "nn/layer.hpp"

namespace abdhfl::nn {

class ReLU final : public Layer {
 public:
  tensor::Matrix forward(const tensor::Matrix& x) override;
  tensor::Matrix backward(const tensor::Matrix& grad_out) override;
  [[nodiscard]] std::string name() const override { return "ReLU"; }
  [[nodiscard]] std::unique_ptr<Layer> clone() const override {
    return std::make_unique<ReLU>();
  }

 private:
  tensor::Matrix cached_input_;
};

class Tanh final : public Layer {
 public:
  tensor::Matrix forward(const tensor::Matrix& x) override;
  tensor::Matrix backward(const tensor::Matrix& grad_out) override;
  [[nodiscard]] std::string name() const override { return "Tanh"; }
  [[nodiscard]] std::unique_ptr<Layer> clone() const override {
    return std::make_unique<Tanh>();
  }

 private:
  tensor::Matrix cached_output_;
};

}  // namespace abdhfl::nn
