#include "nn/conv.hpp"

#include <cmath>
#include <stdexcept>

#include "nn/activations.hpp"
#include "nn/dense.hpp"
#include "nn/mlp.hpp"

namespace abdhfl::nn {

Conv2d::Conv2d(const Conv2dShape& shape, util::Rng& rng)
    : shape_(shape),
      weight_(shape.out_channels, shape.in_channels * shape.kernel * shape.kernel),
      bias_(1, shape.out_channels, 0.0f),
      grad_weight_(weight_.rows(), weight_.cols(), 0.0f),
      grad_bias_(1, shape.out_channels, 0.0f) {
  if (shape.kernel == 0 || shape.kernel > shape.height || shape.kernel > shape.width) {
    throw std::invalid_argument("Conv2d: kernel does not fit the input");
  }
  // He-uniform over the receptive field.
  const double fan_in =
      static_cast<double>(shape.in_channels * shape.kernel * shape.kernel);
  const double limit = std::sqrt(6.0 / fan_in);
  for (float& v : weight_.flat()) v = static_cast<float>(rng.uniform(-limit, limit));
}

tensor::Matrix Conv2d::forward(const tensor::Matrix& x) {
  if (x.cols() != shape_.in_features()) {
    throw std::invalid_argument("Conv2d: input feature size mismatch");
  }
  cached_input_ = x;
  const std::size_t batch = x.rows();
  const std::size_t oh = shape_.out_height(), ow = shape_.out_width();
  const std::size_t k = shape_.kernel;
  tensor::Matrix out(batch, shape_.out_features());

  for (std::size_t b = 0; b < batch; ++b) {
    const float* in = x.data() + b * x.cols();
    float* o = out.data() + b * out.cols();
    for (std::size_t oc = 0; oc < shape_.out_channels; ++oc) {
      const float* w = weight_.data() + oc * weight_.cols();
      const float bias = bias_.flat()[oc];
      for (std::size_t y = 0; y < oh; ++y) {
        for (std::size_t xpos = 0; xpos < ow; ++xpos) {
          float acc = bias;
          std::size_t wi = 0;
          for (std::size_t ic = 0; ic < shape_.in_channels; ++ic) {
            const float* plane = in + ic * shape_.height * shape_.width;
            for (std::size_t ky = 0; ky < k; ++ky) {
              const float* row = plane + (y + ky) * shape_.width + xpos;
              for (std::size_t kx = 0; kx < k; ++kx) acc += w[wi++] * row[kx];
            }
          }
          o[oc * oh * ow + y * ow + xpos] = acc;
        }
      }
    }
  }
  return out;
}

tensor::Matrix Conv2d::backward(const tensor::Matrix& grad_out) {
  const std::size_t batch = cached_input_.rows();
  const std::size_t oh = shape_.out_height(), ow = shape_.out_width();
  const std::size_t k = shape_.kernel;
  grad_weight_.fill(0.0f);
  grad_bias_.fill(0.0f);
  tensor::Matrix grad_in(batch, shape_.in_features(), 0.0f);

  for (std::size_t b = 0; b < batch; ++b) {
    const float* in = cached_input_.data() + b * cached_input_.cols();
    const float* go = grad_out.data() + b * grad_out.cols();
    float* gi = grad_in.data() + b * grad_in.cols();
    for (std::size_t oc = 0; oc < shape_.out_channels; ++oc) {
      float* gw = grad_weight_.data() + oc * grad_weight_.cols();
      const float* w = weight_.data() + oc * weight_.cols();
      float gb = 0.0f;
      for (std::size_t y = 0; y < oh; ++y) {
        for (std::size_t xpos = 0; xpos < ow; ++xpos) {
          const float g = go[oc * oh * ow + y * ow + xpos];
          if (g == 0.0f) continue;
          gb += g;
          std::size_t wi = 0;
          for (std::size_t ic = 0; ic < shape_.in_channels; ++ic) {
            const float* plane = in + ic * shape_.height * shape_.width;
            float* gplane = gi + ic * shape_.height * shape_.width;
            for (std::size_t ky = 0; ky < k; ++ky) {
              const float* row = plane + (y + ky) * shape_.width + xpos;
              float* grow = gplane + (y + ky) * shape_.width + xpos;
              for (std::size_t kx = 0; kx < k; ++kx) {
                gw[wi] += g * row[kx];
                grow[kx] += g * w[wi];
                ++wi;
              }
            }
          }
        }
      }
      grad_bias_.flat()[oc] += gb;
    }
  }
  return grad_in;
}

std::vector<ParamRef> Conv2d::params() {
  return {{&weight_, &grad_weight_}, {&bias_, &grad_bias_}};
}

std::unique_ptr<Layer> Conv2d::clone() const {
  auto copy = std::unique_ptr<Conv2d>(new Conv2d());
  copy->shape_ = shape_;
  copy->weight_ = weight_;
  copy->bias_ = bias_;
  copy->grad_weight_ = tensor::Matrix(weight_.rows(), weight_.cols(), 0.0f);
  copy->grad_bias_ = tensor::Matrix(bias_.rows(), bias_.cols(), 0.0f);
  return copy;
}

MaxPool2x2::MaxPool2x2(std::size_t channels, std::size_t height, std::size_t width)
    : channels_(channels), height_(height), width_(width) {
  if (height % 2 != 0 || width % 2 != 0) {
    throw std::invalid_argument("MaxPool2x2: spatial dims must be even");
  }
}

tensor::Matrix MaxPool2x2::forward(const tensor::Matrix& x) {
  if (x.cols() != channels_ * height_ * width_) {
    throw std::invalid_argument("MaxPool2x2: input feature size mismatch");
  }
  const std::size_t batch = x.rows();
  const std::size_t oh = height_ / 2, ow = width_ / 2;
  tensor::Matrix out(batch, channels_ * oh * ow);
  cached_batch_ = batch;
  argmax_.assign(batch * out.cols(), 0);

  for (std::size_t b = 0; b < batch; ++b) {
    const float* in = x.data() + b * x.cols();
    float* o = out.data() + b * out.cols();
    for (std::size_t c = 0; c < channels_; ++c) {
      const float* plane = in + c * height_ * width_;
      for (std::size_t y = 0; y < oh; ++y) {
        for (std::size_t xp = 0; xp < ow; ++xp) {
          const std::size_t base = (2 * y) * width_ + 2 * xp;
          std::size_t best = base;
          for (std::size_t dy = 0; dy < 2; ++dy) {
            for (std::size_t dx = 0; dx < 2; ++dx) {
              const std::size_t idx = base + dy * width_ + dx;
              if (plane[idx] > plane[best]) best = idx;
            }
          }
          const std::size_t out_idx = c * oh * ow + y * ow + xp;
          o[out_idx] = plane[best];
          argmax_[b * out.cols() + out_idx] = c * height_ * width_ + best;
        }
      }
    }
  }
  return out;
}

tensor::Matrix MaxPool2x2::backward(const tensor::Matrix& grad_out) {
  tensor::Matrix grad_in(cached_batch_, channels_ * height_ * width_, 0.0f);
  for (std::size_t b = 0; b < cached_batch_; ++b) {
    const float* go = grad_out.data() + b * grad_out.cols();
    float* gi = grad_in.data() + b * grad_in.cols();
    for (std::size_t i = 0; i < grad_out.cols(); ++i) {
      gi[argmax_[b * grad_out.cols() + i]] += go[i];
    }
  }
  return grad_in;
}

Mlp make_cnn(std::size_t side, std::size_t filters, std::size_t classes,
             util::Rng& rng) {
  Conv2dShape shape;
  shape.in_channels = 1;
  shape.height = side;
  shape.width = side;
  shape.out_channels = filters;
  shape.kernel = 3;
  if (shape.out_height() % 2 != 0 || shape.out_width() % 2 != 0) {
    throw std::invalid_argument("make_cnn: (side - 2) must be even for the 2x2 pool");
  }
  Mlp net;
  net.add(std::make_unique<Conv2d>(shape, rng));
  net.add(std::make_unique<ReLU>());
  net.add(std::make_unique<MaxPool2x2>(filters, shape.out_height(), shape.out_width()));
  const std::size_t pooled =
      filters * (shape.out_height() / 2) * (shape.out_width() / 2);
  net.add(std::make_unique<Dense>(pooled, classes, rng));
  return net;
}

}  // namespace abdhfl::nn
