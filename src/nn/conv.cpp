#include "nn/conv.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>

#include "nn/activations.hpp"
#include "nn/dense.hpp"
#include "nn/mlp.hpp"
#include "tensor/kernels.hpp"

namespace abdhfl::nn {

namespace {

/// im2col: unfold one (ic, h, w) input image into a (ic*k*k, oh*ow) patch
/// matrix so the convolution becomes one GEMM against the (oc, ic*k*k)
/// weight matrix.  Row (ic, ky, kx) of `cols` holds, for every output
/// position (y, x), the input value at (ic, y+ky, x+kx); for fixed (row, y)
/// that is a contiguous run of ow floats in the input, so the unfold is
/// pure memcpy.
void im2col(const float* in, const Conv2dShape& s, tensor::Matrix& cols) {
  const std::size_t oh = s.out_height(), ow = s.out_width(), k = s.kernel;
  for (std::size_t ic = 0; ic < s.in_channels; ++ic) {
    const float* plane = in + ic * s.height * s.width;
    for (std::size_t ky = 0; ky < k; ++ky) {
      for (std::size_t kx = 0; kx < k; ++kx) {
        float* dst = cols.data() + ((ic * k + ky) * k + kx) * oh * ow;
        for (std::size_t y = 0; y < oh; ++y) {
          std::memcpy(dst + y * ow, plane + (y + ky) * s.width + kx,
                      ow * sizeof(float));
        }
      }
    }
  }
}

/// col2im: scatter-add the (ic*k*k, oh*ow) patch-gradient matrix back onto
/// the (ic, h, w) input-gradient image (the transpose of im2col, with +=
/// because input pixels belong to several patches).
void col2im(const tensor::Matrix& cols, const Conv2dShape& s, float* grad_in) {
  const std::size_t oh = s.out_height(), ow = s.out_width(), k = s.kernel;
  for (std::size_t ic = 0; ic < s.in_channels; ++ic) {
    float* plane = grad_in + ic * s.height * s.width;
    for (std::size_t ky = 0; ky < k; ++ky) {
      for (std::size_t kx = 0; kx < k; ++kx) {
        const float* src = cols.data() + ((ic * k + ky) * k + kx) * oh * ow;
        for (std::size_t y = 0; y < oh; ++y) {
          float* dst = plane + (y + ky) * s.width + kx;
          const float* g = src + y * ow;
          for (std::size_t x = 0; x < ow; ++x) dst[x] += g[x];
        }
      }
    }
  }
}

}  // namespace

Conv2d::Conv2d(const Conv2dShape& shape, util::Rng& rng)
    : shape_(shape),
      weight_(shape.out_channels, shape.in_channels * shape.kernel * shape.kernel),
      bias_(1, shape.out_channels, 0.0f),
      grad_weight_(weight_.rows(), weight_.cols(), 0.0f),
      grad_bias_(1, shape.out_channels, 0.0f) {
  if (shape.kernel == 0 || shape.kernel > shape.height || shape.kernel > shape.width) {
    throw std::invalid_argument("Conv2d: kernel does not fit the input");
  }
  // He-uniform over the receptive field.
  const double fan_in =
      static_cast<double>(shape.in_channels * shape.kernel * shape.kernel);
  const double limit = std::sqrt(6.0 / fan_in);
  for (float& v : weight_.flat()) v = static_cast<float>(rng.uniform(-limit, limit));
}

tensor::Matrix Conv2d::forward(const tensor::Matrix& x) {
  if (x.cols() != shape_.in_features()) {
    throw std::invalid_argument("Conv2d: input feature size mismatch");
  }
  cached_input_ = x;
  const std::size_t batch = x.rows();
  const std::size_t ohw = shape_.out_height() * shape_.out_width();
  tensor::Matrix out(batch, shape_.out_features());

  // One im2col + GEMM per batch item: the packed GEMM turns the former
  // 6-deep scalar loop nest into register-blocked kernel calls.
  tensor::Matrix cols(weight_.cols(), ohw);
  tensor::Matrix prod(shape_.out_channels, ohw);
  for (std::size_t b = 0; b < batch; ++b) {
    im2col(x.data() + b * x.cols(), shape_, cols);
    tensor::gemm(weight_, cols, prod);
    float* o = out.data() + b * out.cols();
    for (std::size_t oc = 0; oc < shape_.out_channels; ++oc) {
      const float bias = bias_.flat()[oc];
      const float* p = prod.data() + oc * ohw;
      float* dst = o + oc * ohw;
      for (std::size_t j = 0; j < ohw; ++j) dst[j] = p[j] + bias;
    }
  }
  return out;
}

tensor::Matrix Conv2d::backward(const tensor::Matrix& grad_out) {
  const std::size_t batch = cached_input_.rows();
  const std::size_t ohw = shape_.out_height() * shape_.out_width();
  grad_weight_.fill(0.0f);
  grad_bias_.fill(0.0f);
  tensor::Matrix grad_in(batch, shape_.in_features(), 0.0f);

  // Per batch item, with go_b = the (oc, oh*ow) output-gradient plane and
  // cols = im2col(input) recomputed from the cached input:
  //   grad_weight += go_b * cols^T      (gemm_nt)
  //   grad_in     += col2im(W^T * go_b) (gemm_tn + scatter)
  //   grad_bias   += row sums of go_b
  tensor::Matrix cols(weight_.cols(), ohw);
  tensor::Matrix go_b(shape_.out_channels, ohw);
  tensor::Matrix gw_b(grad_weight_.rows(), grad_weight_.cols());
  tensor::Matrix gcols(weight_.cols(), ohw);
  for (std::size_t b = 0; b < batch; ++b) {
    std::memcpy(go_b.data(), grad_out.data() + b * grad_out.cols(),
                go_b.size() * sizeof(float));
    im2col(cached_input_.data() + b * cached_input_.cols(), shape_, cols);

    tensor::gemm_nt(go_b, cols, gw_b);
    for (std::size_t i = 0; i < grad_weight_.size(); ++i) {
      grad_weight_.flat()[i] += gw_b.flat()[i];
    }

    tensor::gemm_tn(weight_, go_b, gcols);
    col2im(gcols, shape_, grad_in.data() + b * grad_in.cols());

    for (std::size_t oc = 0; oc < shape_.out_channels; ++oc) {
      float gb = 0.0f;
      const float* g = go_b.data() + oc * ohw;
      for (std::size_t j = 0; j < ohw; ++j) gb += g[j];
      grad_bias_.flat()[oc] += gb;
    }
  }
  return grad_in;
}

std::vector<ParamRef> Conv2d::params() {
  return {{&weight_, &grad_weight_}, {&bias_, &grad_bias_}};
}

std::unique_ptr<Layer> Conv2d::clone() const {
  auto copy = std::unique_ptr<Conv2d>(new Conv2d());
  copy->shape_ = shape_;
  copy->weight_ = weight_;
  copy->bias_ = bias_;
  copy->grad_weight_ = tensor::Matrix(weight_.rows(), weight_.cols(), 0.0f);
  copy->grad_bias_ = tensor::Matrix(bias_.rows(), bias_.cols(), 0.0f);
  return copy;
}

MaxPool2x2::MaxPool2x2(std::size_t channels, std::size_t height, std::size_t width)
    : channels_(channels), height_(height), width_(width) {
  if (height % 2 != 0 || width % 2 != 0) {
    throw std::invalid_argument("MaxPool2x2: spatial dims must be even");
  }
}

tensor::Matrix MaxPool2x2::forward(const tensor::Matrix& x) {
  if (x.cols() != channels_ * height_ * width_) {
    throw std::invalid_argument("MaxPool2x2: input feature size mismatch");
  }
  const std::size_t batch = x.rows();
  const std::size_t oh = height_ / 2, ow = width_ / 2;
  tensor::Matrix out(batch, channels_ * oh * ow);
  cached_batch_ = batch;
  argmax_.assign(batch * out.cols(), 0);

  for (std::size_t b = 0; b < batch; ++b) {
    const float* in = x.data() + b * x.cols();
    float* o = out.data() + b * out.cols();
    for (std::size_t c = 0; c < channels_; ++c) {
      const float* plane = in + c * height_ * width_;
      for (std::size_t y = 0; y < oh; ++y) {
        for (std::size_t xp = 0; xp < ow; ++xp) {
          const std::size_t base = (2 * y) * width_ + 2 * xp;
          std::size_t best = base;
          for (std::size_t dy = 0; dy < 2; ++dy) {
            for (std::size_t dx = 0; dx < 2; ++dx) {
              const std::size_t idx = base + dy * width_ + dx;
              if (plane[idx] > plane[best]) best = idx;
            }
          }
          const std::size_t out_idx = c * oh * ow + y * ow + xp;
          o[out_idx] = plane[best];
          argmax_[b * out.cols() + out_idx] = c * height_ * width_ + best;
        }
      }
    }
  }
  return out;
}

tensor::Matrix MaxPool2x2::backward(const tensor::Matrix& grad_out) {
  tensor::Matrix grad_in(cached_batch_, channels_ * height_ * width_, 0.0f);
  for (std::size_t b = 0; b < cached_batch_; ++b) {
    const float* go = grad_out.data() + b * grad_out.cols();
    float* gi = grad_in.data() + b * grad_in.cols();
    for (std::size_t i = 0; i < grad_out.cols(); ++i) {
      gi[argmax_[b * grad_out.cols() + i]] += go[i];
    }
  }
  return grad_in;
}

Mlp make_cnn(std::size_t side, std::size_t filters, std::size_t classes,
             util::Rng& rng) {
  Conv2dShape shape;
  shape.in_channels = 1;
  shape.height = side;
  shape.width = side;
  shape.out_channels = filters;
  shape.kernel = 3;
  if (shape.out_height() % 2 != 0 || shape.out_width() % 2 != 0) {
    throw std::invalid_argument("make_cnn: (side - 2) must be even for the 2x2 pool");
  }
  Mlp net;
  net.add(std::make_unique<Conv2d>(shape, rng));
  net.add(std::make_unique<ReLU>());
  net.add(std::make_unique<MaxPool2x2>(filters, shape.out_height(), shape.out_width()));
  const std::size_t pooled =
      filters * (shape.out_height() / 2) * (shape.out_width() / 2);
  net.add(std::make_unique<Dense>(pooled, classes, rng));
  return net;
}

}  // namespace abdhfl::nn
