#include "core/pipeline.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <map>
#include <memory>
#include <stdexcept>

#include "ckpt/state.hpp"
#include "ckpt/store.hpp"
#include "obs/blackbox.hpp"
#include "obs/record.hpp"
#include "obs/suspicion.hpp"

namespace abdhfl::core {

namespace {

struct ClusterState {
  std::size_t arrived = 0;
  double first_arrival = -1.0;
  double completed = -1.0;
  bool agg_scheduled = false;
};

struct RoundState {
  // state[level][cluster]
  std::vector<std::vector<ClusterState>> clusters;
  std::vector<double> device_start;   // per device: when its training began
  std::vector<double> flag_receipt;   // per bottom cluster: flag-model arrival
  double t_global = -1.0;
  double staleness_sum = 0.0;
  std::size_t staleness_count = 0;
  std::size_t late_arrivals = 0;      // uploads landing after quorum aggregation
};

class PipelineSim {
 public:
  PipelineSim(const topology::HflTree& tree, const PipelineConfig& config,
              std::uint64_t seed)
      : tree_(tree), config_(config), rng_(seed) {
    if (!config_.train_duration || !config_.agg_duration || !config_.uplink_latency) {
      throw std::invalid_argument("simulate_pipeline: missing duration samplers");
    }
    if (config_.flag_level >= tree_.depth()) {
      throw std::invalid_argument("simulate_pipeline: flag level must be < bottom level");
    }
    if (config_.quorum <= 0.0 || config_.quorum > 1.0) {
      throw std::invalid_argument("simulate_pipeline: quorum out of (0,1]");
    }
    rounds_.resize(config_.rounds);
    for (auto& rs : rounds_) {
      rs.clusters.resize(tree_.num_levels());
      for (std::size_t l = 0; l < tree_.num_levels(); ++l) {
        rs.clusters[l].resize(tree_.level(l).size());
      }
      rs.device_start.assign(tree_.num_devices(), -1.0);
      rs.flag_receipt.assign(tree_.level(tree_.depth()).size(), -1.0);
    }
    // Forensics: no model vectors exist here, so "filtered" means quorum-late
    // — an upload arriving after its cluster's aggregation was scheduled.
    if (config_.recorder != nullptr) {
      ledger_ = std::make_unique<obs::SuspicionLedger>(tree_.num_devices(),
                                                       tree_.num_levels());
    }
  }

  [[nodiscard]] const obs::SuspicionLedger* ledger() const { return ledger_.get(); }

  PipelineResult run() {
    bool resumed = false;
    if (config_.checkpoint != nullptr && config_.resume) {
      resumed = restore_checkpoint();
    }
    if (!resumed) {
      // Round 0: every device holds the initial model and starts immediately.
      for (topology::DeviceId d = 0; d < tree_.num_devices(); ++d) {
        start_device(0, d, 0.0);
      }
    }
    sim_.run();
    return summarize();
  }

 private:
  // Typed mirror of every in-flight simulator event (same scheme as the
  // async runner): the simulator queue holds only [this, id] thunks and all
  // event data lives in this serializable map.  Pipeline events carry no
  // model payload — just indices.
  enum class EventKind : std::uint8_t {
    kDeviceDone = 0,       // device_done(round, device)
    kClusterArrival = 1,   // cluster_arrival(round, level, index, device)
    kClusterComplete = 2,  // cluster_complete(round, level, index)
    kFlagReceipt = 3,      // flag model reaches a device; index = bottom cluster
    kGlobalDeliver = 4,    // global model reaches a device
  };
  struct PendingEvent {
    EventKind kind = EventKind::kDeviceDone;
    double time = 0.0;  // absolute simulated fire time
    std::size_t round = 0;
    std::size_t level = 0;
    std::size_t index = 0;
    topology::DeviceId device = 0;
  };

  void schedule_event_at(double when, PendingEvent ev) {
    ev.time = when;
    const std::uint64_t id = next_event_id_++;
    pending_.emplace(id, ev);
    sim_.schedule_at(when, [this, id] { fire(id); });
  }

  void fire(std::uint64_t id) {
    const auto it = pending_.find(id);
    if (it == pending_.end()) return;  // cancelled alongside a sim_.clear()
    const PendingEvent ev = it->second;
    pending_.erase(it);
    switch (ev.kind) {
      case EventKind::kDeviceDone:
        device_done(ev.round, ev.device);
        break;
      case EventKind::kClusterArrival:
        cluster_arrival(ev.round, ev.level, ev.index, ev.device);
        break;
      case EventKind::kClusterComplete:
        cluster_complete(ev.round, ev.level, ev.index);
        break;
      case EventKind::kFlagReceipt: {
        auto& rs = rounds_[ev.round];
        if (rs.flag_receipt[ev.index] < 0.0) rs.flag_receipt[ev.index] = sim_.now();
        start_device(ev.round + 1, ev.device, sim_.now());
        break;
      }
      case EventKind::kGlobalDeliver:
        global_arrival(ev.round, ev.device);
        break;
    }
  }
  std::size_t quorum_count(std::size_t cluster_size) const {
    auto k = static_cast<std::size_t>(
        std::ceil(config_.quorum * static_cast<double>(cluster_size)));
    if (k == 0) k = 1;
    return std::min(k, cluster_size);
  }

  void start_device(std::size_t round, topology::DeviceId d, double when) {
    if (round >= config_.rounds) return;
    auto& rs = rounds_[round];
    if (rs.device_start[d] >= 0.0) return;  // already started this round
    rs.device_start[d] = when;
    const double duration = config_.train_duration(rng_);
    PendingEvent ev;
    ev.kind = EventKind::kDeviceDone;
    ev.round = round;
    ev.device = d;
    schedule_event_at(when + duration, ev);
  }

  void device_done(std::size_t round, topology::DeviceId d) {
    const std::size_t bottom = tree_.depth();
    const auto ci = tree_.cluster_of(bottom, d);
    if (!ci) throw std::logic_error("pipeline: device missing from bottom level");
    const double latency = config_.uplink_latency(bottom, rng_);
    PendingEvent ev;
    ev.kind = EventKind::kClusterArrival;
    ev.round = round;
    ev.level = bottom;
    ev.index = *ci;
    ev.device = d;
    schedule_event_at(sim_.now() + latency, ev);
  }

  void cluster_arrival(std::size_t round, std::size_t level, std::size_t i,
                       topology::DeviceId sender) {
    auto& cs = rounds_[round].clusters[level][i];
    if (cs.first_arrival < 0.0) cs.first_arrival = sim_.now();
    // An arrival after the quorum aggregation was scheduled missed the
    // round's cut — the pipeline's filter event.
    const bool late = cs.agg_scheduled;
    if (late) ++rounds_[round].late_arrivals;
    if (ledger_) {
      for (topology::DeviceId d : tree_.bottom_descendants(level, sender)) {
        ledger_->observe(d, level, /*kept=*/!late, 0.0);
      }
    }
    ++cs.arrived;
    const std::size_t need = quorum_count(tree_.cluster(level, i).size());
    if (!cs.agg_scheduled && cs.arrived >= need) {
      cs.agg_scheduled = true;
      const double duration = config_.agg_duration(level, rng_);
      PendingEvent ev;
      ev.kind = EventKind::kClusterComplete;
      ev.round = round;
      ev.level = level;
      ev.index = i;
      schedule_event_at(sim_.now() + duration, ev);
    }
  }

  void cluster_complete(std::size_t round, std::size_t level, std::size_t i) {
    auto& cs = rounds_[round].clusters[level][i];
    cs.completed = sim_.now();

    if (level == config_.flag_level && level != 0) {
      disseminate_flag(round, level, i);
    }
    if (level == 0) {
      global_complete(round);
      return;
    }
    // Upload the partial model to the parent cluster.
    const auto parent = tree_.parent_cluster_of(level, i);
    if (!parent) throw std::logic_error("pipeline: intermediate cluster has no parent");
    const double latency = config_.uplink_latency(level, rng_);
    PendingEvent ev;
    ev.kind = EventKind::kClusterArrival;
    ev.round = round;
    ev.level = level - 1;
    ev.index = *parent;
    ev.device = tree_.cluster(level, i).leader_id();
    schedule_event_at(sim_.now() + latency, ev);
  }

  void disseminate_flag(std::size_t round, std::size_t level, std::size_t i) {
    const std::size_t hops = tree_.depth() - level;
    const double delay = config_.dissemination_latency * static_cast<double>(hops);
    for (topology::DeviceId m : tree_.cluster(level, i).members) {
      for (topology::DeviceId d : tree_.bottom_descendants(level, m)) {
        const auto bottom_ci = tree_.cluster_of(tree_.depth(), d);
        PendingEvent ev;
        ev.kind = EventKind::kFlagReceipt;
        ev.round = round;
        ev.index = *bottom_ci;
        ev.device = d;
        schedule_event_at(sim_.now() + delay, ev);
      }
    }
  }

  void global_complete(std::size_t round) {
    auto& rs = rounds_[round];
    rs.t_global = sim_.now();
    // One ledger round per global completion; stragglers observed after it
    // fold into the next commit (rounds overlap in the pipeline).
    if (ledger_) ledger_->commit_round();
    const std::size_t hops = tree_.depth();
    const double delay = config_.dissemination_latency * static_cast<double>(hops);
    for (topology::DeviceId d = 0; d < tree_.num_devices(); ++d) {
      PendingEvent ev;
      ev.kind = EventKind::kGlobalDeliver;
      ev.round = round;
      ev.device = d;
      schedule_event_at(sim_.now() + delay, ev);
    }

    ++globals_completed_;
    obs::blackbox::record(obs::blackbox::EventType::kRound, 0, 0, round);
    obs::blackbox::note_progress(globals_completed_);
    const bool halting = config_.halt_after_rounds != 0 &&
                         globals_completed_ >= config_.halt_after_rounds;
    // The snapshot lands after the dissemination is scheduled, so the pending
    // map it carries matches what a full run would have in flight here.
    if (config_.checkpoint != nullptr &&
        (globals_completed_ % std::max<std::size_t>(config_.checkpoint_every, 1) == 0 ||
         globals_completed_ >= config_.rounds || halting)) {
      save_checkpoint(round);
    }
    if (halting) {
      sim_.clear();
      pending_.clear();
      // Simulated crash point for the kill/resume tests.
      if (config_.checkpoint != nullptr) config_.checkpoint->flush();
    }
  }

  void global_arrival(std::size_t round, topology::DeviceId d) {
    // Staleness: how long the device had already been training round r+1
    // when θ_G^(r) reached it (this is what α must correct, Sec. III-B).
    if (round + 1 >= config_.rounds) return;
    auto& next = rounds_[round + 1];
    if (config_.flag_level == 0) {
      // The global model *is* the flag model: it starts the next round.
      const auto bottom_ci = tree_.cluster_of(tree_.depth(), d);
      auto& rs_here = rounds_[round];
      if (rs_here.flag_receipt[*bottom_ci] < 0.0) {
        rs_here.flag_receipt[*bottom_ci] = sim_.now();
      }
      start_device(round + 1, d, sim_.now());
    } else if (next.device_start[d] >= 0.0) {
      rounds_[round].staleness_sum += sim_.now() - next.device_start[d];
      ++rounds_[round].staleness_count;
    }
  }

  void save_checkpoint(std::size_t round) {
    ckpt::Container c;
    c.producer = "pipeline";
    c.round = round;
    {
      const std::array<ckpt::RngState, 1> states{rng_.state()};
      c.chunks.push_back({ckpt::kTagRngStates, ckpt::encode_rng_states(states)});
    }
    {
      ckpt::PayloadWriter w;
      w.u64(globals_completed_);
      w.u64(rounds_.size());
      for (const auto& rs : rounds_) {
        w.u64(rs.clusters.size());
        for (const auto& level : rs.clusters) {
          w.u64(level.size());
          for (const auto& cs : level) {
            w.u64(cs.arrived);
            w.f64(cs.first_arrival);
            w.f64(cs.completed);
            w.u8(cs.agg_scheduled ? 1 : 0);
          }
        }
        w.f64vec(rs.device_start);
        w.f64vec(rs.flag_receipt);
        w.f64(rs.t_global);
        w.f64(rs.staleness_sum);
        w.u64(rs.staleness_count);
        w.u64(rs.late_arrivals);
      }
      c.chunks.push_back({ckpt::kTagPipeline, w.take()});
    }
    {
      ckpt::PayloadWriter w;
      w.u64(next_event_id_);
      w.u64(pending_.size());
      for (const auto& [id, ev] : pending_) {
        w.u64(id);
        w.u8(static_cast<std::uint8_t>(ev.kind));
        w.f64(ev.time);
        w.u64(ev.round);
        w.u64(ev.level);
        w.u64(ev.index);
        w.u64(ev.device);
      }
      c.chunks.push_back({ckpt::kTagEvents, w.take()});
    }
    if (ledger_) c.chunks.push_back({ckpt::kTagLedger, ckpt::encode_ledger(*ledger_)});
    config_.checkpoint->save(round, ckpt::encode_container(c));
  }

  [[nodiscard]] bool restore_checkpoint() {
    auto snap = config_.checkpoint->load_latest();
    if (!snap.has_value()) return false;
    if (snap->producer != "pipeline") {
      throw ckpt::CkptError("checkpoint produced by \"" + snap->producer +
                            "\", expected \"pipeline\"");
    }
    const auto states =
        ckpt::decode_rng_states(snap->require(ckpt::kTagRngStates).payload);
    if (states.size() != 1) {
      throw ckpt::CkptError("RNGS chunk stream count mismatch");
    }
    rng_.set_state(states[0]);
    {
      ckpt::PayloadReader r(snap->require(ckpt::kTagPipeline).payload);
      globals_completed_ = r.u64();
      if (r.u64() != rounds_.size()) {
        throw ckpt::CkptError("PIPE chunk round count mismatch "
                              "(resume with the same configured rounds)");
      }
      for (auto& rs : rounds_) {
        if (r.u64() != rs.clusters.size()) {
          throw ckpt::CkptError("PIPE chunk level count mismatch");
        }
        for (auto& level : rs.clusters) {
          if (r.u64() != level.size()) {
            throw ckpt::CkptError("PIPE chunk cluster count mismatch");
          }
          for (auto& cs : level) {
            cs.arrived = r.u64();
            cs.first_arrival = r.f64();
            cs.completed = r.f64();
            cs.agg_scheduled = r.u8() != 0;
          }
        }
        rs.device_start = r.f64vec();
        rs.flag_receipt = r.f64vec();
        if (rs.device_start.size() != tree_.num_devices() ||
            rs.flag_receipt.size() != tree_.level(tree_.depth()).size()) {
          throw ckpt::CkptError("PIPE chunk geometry mismatch");
        }
        rs.t_global = r.f64();
        rs.staleness_sum = r.f64();
        rs.staleness_count = r.u64();
        rs.late_arrivals = r.u64();
      }
      r.expect_done();
    }
    {
      ckpt::PayloadReader r(snap->require(ckpt::kTagEvents).payload);
      next_event_id_ = r.u64();
      const std::uint64_t count = r.u64();
      pending_.clear();
      for (std::uint64_t i = 0; i < count; ++i) {
        const std::uint64_t id = r.u64();
        PendingEvent ev;
        const std::uint8_t kind = r.u8();
        if (kind > static_cast<std::uint8_t>(EventKind::kGlobalDeliver)) {
          throw ckpt::CkptError("EVNT chunk event kind out of range");
        }
        ev.kind = static_cast<EventKind>(kind);
        ev.time = r.f64();
        ev.round = r.u64();
        ev.level = r.u64();
        ev.index = r.u64();
        ev.device = static_cast<topology::DeviceId>(r.u64());
        pending_.emplace(id, ev);
      }
      r.expect_done();
    }
    if (ledger_) {
      if (const auto* chunk = snap->find(ckpt::kTagLedger)) {
        ckpt::restore_ledger(chunk->payload, *ledger_);
      }
    }
    // Re-schedule in id order to reproduce the original firing sequence.
    for (const auto& [id, ev] : pending_) {
      sim_.schedule_at(ev.time, [this, id] { fire(id); });
    }
    return true;
  }

  PipelineResult summarize() const {
    PipelineResult out;
    const std::size_t bottom = tree_.depth();
    const std::size_t n_bottom_clusters = tree_.level(bottom).size();

    double nu_total = 0.0, stale_total = 0.0;
    std::size_t nu_rounds = 0, stale_rounds = 0;
    for (std::size_t r = 0; r < config_.rounds; ++r) {
      const auto& rs = rounds_[r];
      RoundTiming t;
      t.t_global = rs.t_global;
      double w_sum = 0.0, sigma_sum = 0.0, nu_sum = 0.0;
      std::size_t counted = 0;
      for (std::size_t c = 0; c < n_bottom_clusters; ++c) {
        const auto& cs = rs.clusters[bottom][c];
        const double t_first = cs.first_arrival;
        const double t_flag = rs.flag_receipt[c];
        if (t_first < 0.0 || t_flag < 0.0 || rs.t_global < 0.0) continue;
        const double sigma_w = t_flag - t_first;
        const double sigma = rs.t_global - t_first;
        w_sum += sigma_w;
        sigma_sum += sigma;
        nu_sum += sigma > 0.0 ? (sigma - sigma_w) / sigma : 0.0;
        ++counted;
      }
      if (counted > 0) {
        t.sigma_w = w_sum / static_cast<double>(counted);
        t.sigma = sigma_sum / static_cast<double>(counted);
        t.sigma_pg = t.sigma - t.sigma_w;
        t.nu = nu_sum / static_cast<double>(counted);
        nu_total += t.nu;
        ++nu_rounds;
      }
      if (rs.staleness_count > 0) {
        t.staleness = rs.staleness_sum / static_cast<double>(rs.staleness_count);
        stale_total += t.staleness;
        ++stale_rounds;
      }
      t.late_arrivals = rs.late_arrivals;
      out.rounds.push_back(t);
      out.total_time = std::max(out.total_time, rs.t_global);
    }
    out.mean_nu = nu_rounds > 0 ? nu_total / static_cast<double>(nu_rounds) : 0.0;
    out.mean_staleness =
        stale_rounds > 0 ? stale_total / static_cast<double>(stale_rounds) : 0.0;

    // Synchronous baseline: without pipelining every round serializes the
    // full chain (training + all aggregation up to the global model) and the
    // next round starts only after that.  Round 0 *is* exactly that chain
    // (all devices start at t = 0), so the baseline is rounds x t_global[0].
    if (!out.rounds.empty() && out.rounds.front().t_global > 0.0) {
      out.synchronous_time =
          out.rounds.front().t_global * static_cast<double>(config_.rounds);
    }
    return out;
  }

  const topology::HflTree& tree_;
  PipelineConfig config_;
  util::Rng rng_;
  sim::Simulator sim_;
  std::vector<RoundState> rounds_;
  std::unique_ptr<obs::SuspicionLedger> ledger_;
  std::map<std::uint64_t, PendingEvent> pending_;
  std::uint64_t next_event_id_ = 1;
  std::size_t globals_completed_ = 0;
};

}  // namespace

PipelineResult simulate_pipeline(const topology::HflTree& tree, const PipelineConfig& config,
                                 std::uint64_t seed) {
  PipelineSim sim(tree, config, seed);
  PipelineResult result = sim.run();
  if (config.recorder != nullptr) {
    for (std::size_t r = 0; r < result.rounds.size(); ++r) {
      const RoundTiming& t = result.rounds[r];
      obs::RoundRecord& rec = config.recorder->begin_round("pipeline", r);
      rec.set("sigma_w", t.sigma_w);
      rec.set("sigma_pg", t.sigma_pg);
      rec.set("sigma", t.sigma);
      rec.set("nu", t.nu);
      rec.set("staleness", t.staleness);
      rec.set("t_global", t.t_global);
      rec.set("late_arrivals", static_cast<double>(t.late_arrivals));
    }
    if (const obs::SuspicionLedger* ledger = sim.ledger()) {
      for (const auto& ns : ledger->snapshot()) {
        obs::RoundRecord& rec = config.recorder->begin_round(
            "pipeline_suspicion", ledger->rounds_committed());
        rec.set("node", static_cast<double>(ns.node));
        rec.set("suspicion", ns.total);
        rec.set("filter_events", static_cast<double>(ns.filter_events));
        rec.set("observations", static_cast<double>(ns.observations));
      }
    }
  }
  return result;
}

PipelineConfig make_pipeline_config(const DelayRegime& regime, std::size_t rounds,
                                    std::size_t flag_level, double quorum) {
  PipelineConfig config;
  config.rounds = rounds;
  config.flag_level = flag_level;
  config.quorum = quorum;
  const double j = regime.jitter;
  config.train_duration = [mean = regime.train_mean, j](util::Rng& rng) {
    return mean * rng.uniform(1.0 - j, 1.0 + j);
  };
  config.agg_duration = [p = regime.partial_agg, g = regime.global_agg,
                         j](std::size_t level, util::Rng& rng) {
    const double mean = level == 0 ? g : p;
    return mean * rng.uniform(1.0 - j, 1.0 + j);
  };
  config.uplink_latency = [u = regime.uplink, j](std::size_t, util::Rng& rng) {
    return u * rng.uniform(1.0 - j, 1.0 + j);
  };
  return config;
}

}  // namespace abdhfl::core
