#pragma once
// Vanilla (star-topology) federated learning — the baseline of Table V and
// Fig. 3.  A single central server collects every client's update each
// round and applies one aggregation rule (the paper's comparison arms the
// baseline with the same MultiKrum/Median rule ABD-HFL uses for partial
// aggregation, so the difference measured is the topology, not the rule).

#include <memory>

#include "agg/aggregator.hpp"
#include "attacks/data_poison.hpp"
#include "attacks/model_attack.hpp"
#include "core/trainer.hpp"
#include "core/types.hpp"
#include "obs/suspicion.hpp"
#include "topology/byzantine.hpp"

namespace abdhfl::obs {
class Recorder;
}

namespace abdhfl::ckpt {
class Store;
}

namespace abdhfl::core {

struct VanillaConfig {
  LearnConfig learn;
  std::string rule = "multikrum";
  double byzantine_fraction = 0.25;
  bool parallel_training = true;
  /// Thread fan-out of the aggregation rule's numeric kernels; bitwise
  /// result-invariant (see Aggregator::set_threads).
  std::size_t agg_threads = 1;
  /// Optional per-round record sink (not owned); see HflConfig::recorder.
  obs::Recorder* recorder = nullptr;
  /// Durable snapshots + resume, same semantics as HflConfig.
  ckpt::Store* checkpoint = nullptr;
  std::size_t checkpoint_every = 1;
  bool resume = false;
  std::size_t halt_after_rounds = 0;
};

struct VanillaAttackSetup {
  topology::ByzantineMask mask;
  attacks::PoisonConfig poison;
  std::shared_ptr<attacks::ModelAttack> model_attack;
};

class VanillaFl {
 public:
  VanillaFl(std::vector<data::Dataset> shards, data::Dataset test_set,
            const nn::Mlp& prototype, VanillaConfig config, VanillaAttackSetup attack,
            std::uint64_t seed);

  [[nodiscard]] RunResult run();

  /// Forensics ledger (one level — the star's single server), or nullptr
  /// when no recorder was configured.
  [[nodiscard]] const obs::SuspicionLedger* suspicion_ledger() const noexcept {
    return ledger_.get();
  }

 private:
  void save_checkpoint(std::size_t round, const RunResult& out);
  std::size_t restore_checkpoint(RunResult& out);

  data::Dataset test_set_;
  nn::Mlp scratch_;
  VanillaConfig config_;
  VanillaAttackSetup attack_;
  util::Rng rng_;
  std::vector<std::unique_ptr<LocalTrainer>> trainers_;
  std::vector<float> global_;
  std::unique_ptr<agg::Aggregator> rule_;
  std::unique_ptr<obs::SuspicionLedger> ledger_;
};

}  // namespace abdhfl::core
