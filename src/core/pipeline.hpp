#pragma once
// Pipeline learning workflow simulation (Sec. III-D, Fig. 2).
//
// Runs the ABD-HFL message/aggregation timing on the discrete-event kernel:
// bottom devices train for a sampled duration, cluster leaders wait for a
// φ_ℓ quorum (τ_ℓ measured from the first arrival), aggregation takes a
// sampled τ'_ℓ, flag-level clusters release their partial model so their
// descendants start the next round immediately, and the chain above the
// flag level plus the top-level agreement (τ_g + τ'_g) overlaps with that
// next round of training.  The per-round outputs are exactly the paper's
// quantities:
//
//   σ_w = Σ_{i=ℓF..L} (τ_i + τ'_i)     — waiting before the flag model
//   σ_p + σ_g                          — aggregation overlapped with training
//   ν   = (σ_p + σ_g) / σ              — efficiency indicator (Eq. 3)
//
// plus the global-model staleness the correction factor has to repair.
// No learning happens here; durations are the object of study, matching the
// paper's treatment of the pipeline as a timing model.

#include <functional>
#include <vector>

#include "sim/simulator.hpp"
#include "topology/tree.hpp"
#include "util/rng.hpp"

namespace abdhfl::obs {
class Recorder;
}

namespace abdhfl::ckpt {
class Store;
}

namespace abdhfl::core {

struct PipelineConfig {
  std::size_t rounds = 10;
  std::size_t flag_level = 1;  // ℓ_F ∈ [0, L-1]
  double quorum = 1.0;         // φ_ℓ

  /// Duration of one device's local training round (seconds).
  std::function<double(util::Rng&)> train_duration;
  /// Aggregation compute time τ'_ℓ at a level (level 0 = the top-level
  /// global agreement, i.e. τ'_g; CBA levels are configured slower here).
  std::function<double(std::size_t level, util::Rng&)> agg_duration;
  /// One-hop upload latency from level l to its parent level.
  std::function<double(std::size_t level, util::Rng&)> uplink_latency;
  /// Per-hop dissemination latency of flag/global models (the paper ignores
  /// this; default 0 reproduces its model).
  double dissemination_latency = 0.0;

  /// Optional per-round record sink (not owned); one record per round with
  /// the σ_w/σ_p+σ_g/ν decomposition.
  obs::Recorder* recorder = nullptr;

  /// Durable snapshots (optional, not owned), same semantics as HflConfig.
  /// The duration samplers above are code, not state — a resumed run must be
  /// handed the same samplers and seed it crashed with; the snapshot carries
  /// the RNG position and every timing record, so the continuation draws the
  /// same durations a full run would.  halt_after_rounds > 0 cancels all
  /// in-flight events after that many completed global rounds (the
  /// kill/resume tests' crash point).
  ckpt::Store* checkpoint = nullptr;
  std::size_t checkpoint_every = 1;
  bool resume = false;
  std::size_t halt_after_rounds = 0;
};

/// Per-round timing decomposition, averaged across bottom clusters where a
/// quantity is per-cluster (the paper notes σ_w varies per cluster).
struct RoundTiming {
  double sigma_w = 0.0;   // mean over bottom clusters
  double sigma_pg = 0.0;  // σ_p + σ_g (same for all clusters in a round)
  double sigma = 0.0;     // σ_w + σ_p + σ_g (Eq. 2), mean over clusters
  double nu = 0.0;        // Eq. 3, mean over clusters
  double staleness = 0.0; // mean (global arrival − next-round start) per device
  double t_global = 0.0;  // absolute completion time of this round's θ_G
  /// Uploads that landed after their cluster's quorum aggregation was
  /// already scheduled — the timing analogue of a filtered update (the
  /// pipeline's forensics signal: chronically late senders accumulate
  /// suspicion exactly like distance-filtered ones in the learning runners).
  std::size_t late_arrivals = 0;
};

struct PipelineResult {
  std::vector<RoundTiming> rounds;
  double total_time = 0.0;  // completion time of the last global model
  double mean_nu = 0.0;
  double mean_staleness = 0.0;

  /// Wall-clock of a fully synchronous (non-pipelined) schedule with the
  /// same sampled durations — the baseline the pipeline is compared to.
  double synchronous_time = 0.0;
};

/// Run the timing simulation.  Throws std::invalid_argument on a bad config
/// (missing samplers, flag level out of range).
[[nodiscard]] PipelineResult simulate_pipeline(const topology::HflTree& tree,
                                               const PipelineConfig& config,
                                               std::uint64_t seed);

/// Convenience samplers for the Table VIII delay regimes.
struct DelayRegime {
  double train_mean = 1.0;       // mean local-training duration
  double partial_agg = 0.1;      // τ' at intermediate levels
  double global_agg = 0.1;       // τ'_g at the top
  double uplink = 0.02;          // per-hop upload latency
  double jitter = 0.3;           // relative uniform jitter on all durations
};

[[nodiscard]] PipelineConfig make_pipeline_config(const DelayRegime& regime,
                                                  std::size_t rounds,
                                                  std::size_t flag_level,
                                                  double quorum = 1.0);

}  // namespace abdhfl::core
