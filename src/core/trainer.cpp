#include "core/trainer.hpp"

#include <stdexcept>

#include "tensor/ops.hpp"

namespace abdhfl::core {

LocalTrainer::LocalTrainer(data::Dataset shard, nn::Mlp model, util::Rng rng)
    : shard_(std::move(shard)), model_(std::move(model)), rng_(rng) {
  shard_.validate();
}

std::vector<float> train_device_round(nn::Mlp& model, const data::Dataset& shard,
                                      util::Rng& rng, std::span<const float> start_params,
                                      std::size_t local_iters, std::size_t batch,
                                      double learning_rate,
                                      const std::optional<MergeEvent>& merge,
                                      double& loss_out) {
  model.unflatten(start_params);
  nn::Sgd sgd({learning_rate, 0.0, 0.0});

  // A device with no local data (possible under extreme non-IID splits of a
  // tiny pool) contributes its start model unchanged — it still merges the
  // arriving global model, matching Algorithm 2 with an empty D_n.
  const std::size_t effective_iters = shard.empty() ? 0 : local_iters;

  double loss_acc = 0.0;
  for (std::size_t t = 0; t < effective_iters; ++t) {
    if (merge && merge->at_iteration == t) {
      // Eq. 1: θ <- α θ_G + (1-α) θ  (the global model arrived "now").
      auto current = model.flatten();
      model.unflatten(tensor::lerp(merge->global_model, current, merge->alpha));
    }
    const auto mini = shard.sample_batch(batch, rng);
    const auto logits = model.forward(mini.features);
    const auto loss = nn::softmax_cross_entropy(logits, mini.labels);
    model.backward(loss.grad);
    sgd.step(model);
    loss_acc += loss.loss;
  }
  // A merge scheduled at (or past) the end of the executed iterations.
  if (merge && merge->at_iteration >= effective_iters) {
    auto current = model.flatten();
    model.unflatten(tensor::lerp(merge->global_model, current, merge->alpha));
  }
  loss_out =
      effective_iters == 0 ? 0.0 : loss_acc / static_cast<double>(effective_iters);
  return model.flatten();
}

std::vector<float> LocalTrainer::train_round(std::span<const float> start_params,
                                             std::size_t local_iters, std::size_t batch,
                                             double learning_rate,
                                             const std::optional<MergeEvent>& merge) {
  return train_device_round(model_, shard_, rng_, start_params, local_iters, batch,
                            learning_rate, merge, last_loss_);
}

double evaluate_params(nn::Mlp& scratch, std::span<const float> params,
                       const data::Dataset& test_set) {
  if (test_set.empty()) return 0.0;
  scratch.unflatten(params);
  const auto logits = scratch.forward(test_set.features);
  return nn::accuracy(logits, test_set.labels);
}

}  // namespace abdhfl::core
