#include "core/vanilla_fl.hpp"

#include <algorithm>
#include <stdexcept>

#include "ckpt/state.hpp"
#include "ckpt/store.hpp"
#include "net/wire.hpp"
#include "nn/sgd.hpp"
#include "obs/blackbox.hpp"
#include "obs/record.hpp"
#include "obs/trace.hpp"
#include "util/thread_pool.hpp"

namespace abdhfl::core {

VanillaFl::VanillaFl(std::vector<data::Dataset> shards, data::Dataset test_set,
                     const nn::Mlp& prototype, VanillaConfig config,
                     VanillaAttackSetup attack, std::uint64_t seed)
    : test_set_(std::move(test_set)),
      scratch_(prototype.clone()),
      config_(std::move(config)),
      attack_(std::move(attack)),
      rng_(seed) {
  if (shards.empty()) throw std::invalid_argument("VanillaFl: no shards");
  if (attack_.mask.empty()) attack_.mask.assign(shards.size(), false);
  if (attack_.mask.size() != shards.size()) {
    throw std::invalid_argument("VanillaFl: mask size mismatch");
  }
  for (std::size_t d = 0; d < shards.size(); ++d) {
    if (attack_.mask[d] && !attack_.model_attack) {
      attacks::poison_dataset(shards[d], attack_.poison, rng_);
    }
  }
  trainers_.reserve(shards.size());
  for (auto& shard : shards) {
    trainers_.push_back(
        std::make_unique<LocalTrainer>(std::move(shard), prototype.clone(), rng_.split()));
  }
  global_ = scratch_.flatten();
  rule_ = agg::make_aggregator(config_.rule, config_.byzantine_fraction,
                               config_.agg_threads);
  if (config_.recorder != nullptr) {
    rule_->set_forensics(true);
    ledger_ = std::make_unique<obs::SuspicionLedger>(trainers_.size(), /*levels=*/1);
  }
}

void VanillaFl::save_checkpoint(std::size_t round, const RunResult& out) {
  ckpt::Container c;
  c.producer = "vanilla";
  c.round = round;
  {
    ckpt::PayloadWriter w;
    w.f32vec(global_);
    c.chunks.push_back({ckpt::kTagParams, w.take()});
  }
  {
    std::vector<ckpt::RngState> states;
    states.reserve(trainers_.size() + 1);
    states.push_back(rng_.state());
    for (const auto& t : trainers_) states.push_back(t->rng_state());
    c.chunks.push_back({ckpt::kTagRngStates, ckpt::encode_rng_states(states)});
  }
  {
    ckpt::PayloadWriter w;
    std::vector<double> losses;
    losses.reserve(trainers_.size());
    for (const auto& t : trainers_) losses.push_back(t->last_loss());
    w.f64vec(losses);
    c.chunks.push_back({ckpt::kTagLosses, w.take()});
  }
  if (ledger_) c.chunks.push_back({ckpt::kTagLedger, ckpt::encode_ledger(*ledger_)});
  {
    ckpt::PayloadWriter w;
    w.f64vec(out.accuracy_per_round);
    w.u64(out.comm.messages);
    w.u64(out.comm.model_bytes);
    w.u64(out.comm.consensus_failures);
    c.chunks.push_back({ckpt::kTagResult, w.take()});
  }
  config_.checkpoint->save(round, ckpt::encode_container(c));
}

std::size_t VanillaFl::restore_checkpoint(RunResult& out) {
  auto snap = config_.checkpoint->load_latest();
  if (!snap.has_value()) return 0;
  if (snap->producer != "vanilla") {
    throw ckpt::CkptError("checkpoint produced by \"" + snap->producer +
                          "\", expected \"vanilla\"");
  }
  {
    ckpt::PayloadReader r(snap->require(ckpt::kTagParams).payload);
    global_ = r.f32vec();
    r.expect_done();
  }
  const auto states = ckpt::decode_rng_states(snap->require(ckpt::kTagRngStates).payload);
  if (states.size() != trainers_.size() + 1) {
    throw ckpt::CkptError("RNGS chunk stream count mismatch");
  }
  rng_.set_state(states[0]);
  for (std::size_t d = 0; d < trainers_.size(); ++d) {
    trainers_[d]->set_rng_state(states[d + 1]);
  }
  {
    ckpt::PayloadReader r(snap->require(ckpt::kTagLosses).payload);
    const auto losses = r.f64vec();
    r.expect_done();
    if (losses.size() != trainers_.size()) {
      throw ckpt::CkptError("LOSS chunk trainer count mismatch");
    }
    for (std::size_t d = 0; d < trainers_.size(); ++d) {
      trainers_[d]->set_last_loss(losses[d]);
    }
  }
  if (ledger_) {
    if (const auto* chunk = snap->find(ckpt::kTagLedger)) {
      ckpt::restore_ledger(chunk->payload, *ledger_);
    }
  }
  {
    ckpt::PayloadReader r(snap->require(ckpt::kTagResult).payload);
    out.accuracy_per_round = r.f64vec();
    out.comm.messages = r.u64();
    out.comm.model_bytes = r.u64();
    out.comm.consensus_failures = r.u64();
    r.expect_done();
  }
  return static_cast<std::size_t>(snap->round) + 1;
}

RunResult VanillaFl::run() {
  RunResult out;
  const std::size_t n = trainers_.size();
  const bool model_attacking = static_cast<bool>(attack_.model_attack);
  std::size_t first_round = 0;
  if (config_.checkpoint != nullptr && config_.resume) {
    first_round = restore_checkpoint(out);
  }

  for (std::size_t round = first_round; round < config_.learn.rounds; ++round) {
    double round_s = 0.0, train_s = 0.0, agg_s = 0.0, eval_s = 0.0;
    {
      obs::ScopedTimer round_timer(round_s);
      const double lr = nn::step_decay_lr(config_.learn.learning_rate,
                                          config_.learn.lr_decay_gamma,
                                          config_.learn.lr_decay_step, round);
      std::vector<agg::ModelVec> updates(n);
      {
        obs::ScopedTimer timer(train_s);
        auto train_one = [&](std::size_t d) {
          if (model_attacking && attack_.mask[d]) return;
          updates[d] = trainers_[d]->train_round(global_, config_.learn.local_iters,
                                                 config_.learn.batch, lr, std::nullopt);
        };
        if (config_.parallel_training) {
          util::global_pool().parallel_for(0, n, train_one);
        } else {
          for (std::size_t d = 0; d < n; ++d) train_one(d);
        }
      }

      if (model_attacking) {
        std::vector<agg::ModelVec> honest;
        for (std::size_t d = 0; d < n; ++d) {
          if (!attack_.mask[d]) honest.push_back(updates[d]);
        }
        for (std::size_t d = 0; d < n; ++d) {
          if (attack_.mask[d]) {
            const agg::ModelVec& base = honest.empty() ? global_ : honest.front();
            updates[d] = attack_.model_attack->craft(honest, base, rng_);
          }
        }
      }

      {
        obs::ScopedTimer timer(agg_s);
        rule_->set_reference(global_);
        global_ = rule_->aggregate(updates);
      }

      // Star topology traffic: every client uploads, the server broadcasts.
      out.comm.messages += 2 * n;
      out.comm.model_bytes += n * (net::model_update_wire_size(global_.size()) +
                                    net::partial_model_wire_size(global_.size()));

      {
        obs::ScopedTimer timer(eval_s);
        out.accuracy_per_round.push_back(evaluate_params(scratch_, global_, test_set_));
      }
    }
    obs::blackbox::record(obs::blackbox::EventType::kRound, 0, 0, round, n);
    obs::blackbox::note_progress(round + 1);

    if (config_.recorder != nullptr) {
      const agg::AggTelemetry& rt = rule_->last_telemetry();
      obs::RoundRecord& rec = config_.recorder->begin_round("vanilla", round);
      rec.set("round_s", round_s);
      rec.set("train_s", train_s);
      rec.set("agg_s", agg_s);
      rec.set("eval_s", eval_s);
      rec.set("accuracy", out.accuracy_per_round.back());
      rec.set("agg_inputs", static_cast<double>(rt.inputs));
      rec.set("agg_kept", static_cast<double>(rt.kept));
      rec.set("agg_filtered", static_cast<double>(rt.inputs - rt.kept));
      rec.set("agg_score_mean", rt.score_mean);
      rec.set("agg_score_max", rt.score_max);
      rec.set("messages", static_cast<double>(2 * n));
      rec.set("model_bytes",
              static_cast<double>(n * (net::model_update_wire_size(global_.size()) +
                                       net::partial_model_wire_size(global_.size()))));

      // Forensics: verdict k is client k (no quorum shuffle in the star).
      if (ledger_ && !rt.verdicts.empty()) {
        std::vector<double> scores(rt.verdicts.size());
        for (std::size_t k = 0; k < rt.verdicts.size(); ++k) {
          scores[k] = rt.verdicts[k].score;
        }
        const auto rel = obs::relative_scores(scores);
        std::vector<bool> flagged(n, false);
        for (std::size_t k = 0; k < rt.verdicts.size(); ++k) {
          ledger_->observe(k, 0, rt.verdicts[k].kept, rel[k]);
          if (!rt.verdicts[k].kept) flagged[k] = true;
        }
        ledger_->commit_round();
        const auto q = obs::filter_quality(flagged, attack_.mask);
        rec.set("filter_precision", q.precision);
        rec.set("filter_recall", q.recall);
        rec.set("filter_f1", q.f1);
        std::vector<double> byz_scores;
        std::vector<double> honest_scores;
        for (std::size_t d = 0; d < n; ++d) {
          (attack_.mask[d] ? byz_scores : honest_scores)
              .push_back(ledger_->suspicion(d));
        }
        rec.set("suspicion_auc", obs::separation_auc(byz_scores, honest_scores));
      }
    }

    if (config_.checkpoint != nullptr &&
        ((round + 1) % std::max<std::size_t>(config_.checkpoint_every, 1) == 0 ||
         round + 1 == config_.learn.rounds)) {
      save_checkpoint(round, out);
    }
    if (config_.halt_after_rounds != 0 && round + 1 >= config_.halt_after_rounds) {
      if (config_.checkpoint != nullptr) config_.checkpoint->flush();
      break;  // simulated crash point for the kill/resume tests
    }
  }

  if (ledger_ && config_.recorder != nullptr) {
    for (const auto& ns : ledger_->snapshot()) {
      obs::RoundRecord& rec = config_.recorder->begin_round(
          "vanilla_suspicion", ledger_->rounds_committed());
      rec.set("node", static_cast<double>(ns.node));
      rec.set("suspicion", ns.total);
      rec.set("filter_events", static_cast<double>(ns.filter_events));
      rec.set("observations", static_cast<double>(ns.observations));
      rec.set("byzantine", attack_.mask[ns.node] ? 1.0 : 0.0);
    }
  }
  out.final_accuracy =
      out.accuracy_per_round.empty() ? 0.0 : out.accuracy_per_round.back();
  out.final_model = global_;
  return out;
}

}  // namespace abdhfl::core
