#pragma once
// Asynchronous ABD-HFL: the pipeline learning workflow with *actual
// learning* on the discrete-event simulator.
//
// The synchronous HflRunner reproduces the paper's accuracy results and the
// pipeline simulator reproduces its timing analysis; this runner closes the
// loop by running both at once, which is what the paper's Fig. 2 depicts:
//
//   * every bottom device is an actor — it starts a round when its flag
//     model arrives, "trains" for a sampled duration, and uploads;
//   * cluster leaders aggregate on a φ-quorum and push partial models up
//     (each hop pays uplink latency, each aggregation pays compute time);
//   * the flag level releases the next round while the chain above it and
//     the top-level agreement are still running;
//   * the global model θ_G^(r) reaches each device mid-round-(r+1) and is
//     merged by Eq. 1, with α computed from the *measured* staleness
//     (Sec. III-B's latency driver, which the synchronous runner can only
//     approximate) and the flag cluster's relative dataset size.
//
// Output: accuracy as a function of simulated wall-clock time — the curve
// that shows what the pipeline actually buys (more rounds per second at the
// cost of flag-model staleness), plus the ν/σ decomposition per round.
//
// Determinism: the event kernel breaks time ties by schedule order and all
// training RNG is per-device, so runs are bit-reproducible per seed.

#include <map>
#include <memory>
#include <optional>

#include "agg/aggregator.hpp"
#include "attacks/data_poison.hpp"
#include "consensus/consensus.hpp"
#include "core/hfl_runner.hpp"  // AttackSetup
#include "core/trainer.hpp"
#include "core/types.hpp"
#include "obs/suspicion.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"
#include "topology/byzantine.hpp"
#include "topology/tree.hpp"

namespace abdhfl::core {

struct AsyncHflConfig {
  LearnConfig learn;
  SchemeConfig scheme = scheme_preset(1);
  /// Per-level scheme overrides, same semantics as HflConfig::level_overrides.
  std::map<std::size_t, LevelScheme> level_overrides;
  std::size_t flag_level = 1;
  double quorum = 1.0;
  /// Optional per-level φ_ℓ override; empty/short entries fall back to quorum.
  std::vector<double> quorum_per_level;
  AlphaPolicy alpha{AlphaMode::kLatencyAware, 0.6, 0.05, 1.0, 2.0};

  // Timing model (simulated seconds).
  double train_mean = 1.0;       // mean local-training duration
  double train_jitter = 0.3;     // relative uniform jitter
  double partial_agg_time = 0.1; // τ' at intermediate levels
  double global_agg_time = 0.3;  // τ'_g at the top
  double uplink_latency = 0.02;  // per-hop upload latency
  double downlink_latency = 0.02;  // per-hop dissemination latency

  /// Stop after this many global models have been formed.
  std::size_t rounds = 20;

  /// Failure injection: per round, a device silently fails to upload with
  /// this probability (crash/offline).  With φ = 1 a single dropout stalls
  /// its whole aggregation chain — the reason Algorithm 4's quorum exists.
  double dropout_probability = 0.0;

  /// Hard stop for the simulation clock; 0 disables.  Lets dropout-stalled
  /// configurations terminate instead of waiting forever.
  double deadline = 0.0;

  /// Record a per-event timeline (train start/end, aggregation, flag and
  /// global releases) — the data behind the paper's Fig. 2 diagram.
  bool trace = false;

  /// Optional per-round record sink (not owned); see HflConfig::recorder.
  obs::Recorder* recorder = nullptr;

  /// Durable snapshots (optional, not owned), same semantics as HflConfig:
  /// a snapshot lands after every checkpoint_every-th global formation and
  /// carries the whole simulation (device states, in-flight events, partial
  /// collections) so a resumed run continues bit-identically mid-pipeline.
  /// halt_after_globals > 0 cancels all in-flight work after that many
  /// globals — the kill/resume tests' crash point.
  ckpt::Store* checkpoint = nullptr;
  std::size_t checkpoint_every = 1;
  bool resume = false;
  std::size_t halt_after_globals = 0;
};

/// One timeline row of a traced run.  The shared obs event type: `time` here
/// carries *simulated* seconds, `kind` is one of "train_start", "train_end",
/// "agg_start", "agg_done", "flag_release", "global_formed", `subject` the
/// device id for train events / cluster index for aggregation events.
using TraceEvent = obs::TraceEvent;
using obs::trace_to_csv;

struct AsyncRoundRecord {
  std::size_t round = 0;
  double t_formed = 0.0;   // simulated time θ_G^(r) was agreed
  double accuracy = 0.0;   // test accuracy of θ_G^(r)
  double mean_staleness = 0.0;  // mean (arrival − device round start)
};

struct AsyncRunResult {
  std::vector<AsyncRoundRecord> rounds;
  double final_accuracy = 0.0;
  double total_time = 0.0;
  CommStats comm;
  std::vector<TraceEvent> trace;  // populated when config.trace is set
};

class AsyncHflRunner {
 public:
  AsyncHflRunner(const topology::HflTree& tree, std::vector<data::Dataset> shards,
                 data::Dataset test_set, std::vector<data::Dataset> top_validation,
                 const nn::Mlp& prototype, AsyncHflConfig config, AttackSetup attack,
                 std::uint64_t seed);

  [[nodiscard]] AsyncRunResult run();

 private:
  struct DeviceState {
    std::vector<float> start_params;  // flag model the current round began from
    double round_start = 0.0;
    std::size_t round = 0;            // round being trained (valid while training)
    std::int64_t last_started = -1;   // highest round ever started
    bool training = false;
    // Flag model that arrived while still training an older round.
    std::optional<std::pair<std::size_t, std::vector<float>>> pending_flag;
    // Global model that arrived during the current round, if any.
    std::optional<std::pair<double, std::vector<float>>> pending_global;
  };

  struct CollectState {
    std::vector<agg::ModelVec> inputs;
    // Device identity behind each input (the uploading device at the bottom,
    // the child cluster's leader above), aligned with `inputs` — what lets
    // the forensics layer attribute verdicts back to bottom devices.
    std::vector<topology::DeviceId> senders;
    bool agg_scheduled = false;
  };

  // Typed mirror of every in-flight simulator event, keyed by a monotonic
  // id.  The simulator's queue holds only [this, id] thunks; all payload
  // lives here, which is what makes the event queue serializable: a
  // checkpoint writes the pending map, and a resumed run re-schedules the
  // entries in id order (the simulator breaks time ties by schedule order,
  // so id order reproduces the original firing order exactly).
  enum class EventKind : std::uint8_t {
    kTrainDone = 0,      // finish_training(device)
    kUplink = 1,         // deliver_to_cluster(round, level, index, device, *model)
    kAggDone = 2,        // complete_cluster(round, level, index)
    kFlagRelease = 3,    // start_round(device, round, *model); round is the target
    kGlobalDeliver = 4,  // deliver_global(device, round, model)
  };
  struct PendingEvent {
    EventKind kind = EventKind::kTrainDone;
    double time = 0.0;  // absolute simulated fire time
    std::size_t round = 0;
    std::size_t level = 0;
    std::size_t index = 0;
    topology::DeviceId device = 0;
    std::shared_ptr<const std::vector<float>> model;  // null for payload-free kinds
  };

  void schedule_event(double delay, PendingEvent ev);
  void fire(std::uint64_t id);
  void save_checkpoint(std::size_t round);
  /// True when a snapshot was found and the full simulation state restored.
  [[nodiscard]] bool restore_checkpoint();

  void start_round(topology::DeviceId d, std::size_t round, std::vector<float> params);
  void finish_training(topology::DeviceId d);
  void deliver_to_cluster(std::size_t round, std::size_t level, std::size_t index,
                          topology::DeviceId sender, agg::ModelVec model);
  void complete_cluster(std::size_t round, std::size_t level, std::size_t index);
  void form_global(std::size_t round, agg::ModelVec model);
  void deliver_global(topology::DeviceId d, std::size_t round,
                      const std::shared_ptr<const std::vector<float>>& model);
  [[nodiscard]] double eval_voter(std::size_t level, topology::DeviceId voter,
                                  const agg::ModelVec& model);
  void record(const char* kind, std::size_t round, std::uint32_t subject,
              std::size_t level);
  [[nodiscard]] agg::ModelVec aggregate(const std::vector<agg::ModelVec>& inputs,
                                        const std::vector<topology::DeviceId>& senders,
                                        const topology::Cluster& cluster,
                                        std::size_t level, std::size_t round);

  const topology::HflTree& tree_;
  data::Dataset test_set_;
  std::vector<data::Dataset> top_validation_;
  nn::Mlp scratch_;
  AsyncHflConfig config_;
  AttackSetup attack_;
  util::Rng rng_;
  sim::Simulator sim_;
  std::map<std::uint64_t, PendingEvent> pending_;
  std::uint64_t next_event_id_ = 1;

  std::vector<std::unique_ptr<LocalTrainer>> trainers_;
  std::vector<DeviceState> devices_;
  std::vector<double> flag_fraction_;
  // collect_[round][level] -> per-cluster collection state.
  std::map<std::size_t, std::vector<std::vector<CollectState>>> collect_;
  std::vector<float> last_global_;

  [[nodiscard]] const LevelScheme& scheme_for(std::size_t level) const;

  std::map<std::size_t, std::unique_ptr<agg::Aggregator>> bra_by_level_;
  std::map<std::size_t, std::unique_ptr<consensus::ConsensusProtocol>> cba_by_level_;

  AsyncRunResult result_;
  std::size_t globals_formed_ = 0;
  std::vector<double> staleness_acc_;   // per round sum
  std::vector<std::size_t> staleness_n_;

  // Observability: wall-clock seconds actually spent computing per round
  // (the sim clock above is virtual), and comm totals at each global
  // formation so the recorder can report per-round deltas.
  std::vector<double> train_wall_;
  std::vector<double> agg_wall_;
  std::uint64_t last_messages_ = 0;
  std::uint64_t last_bytes_ = 0;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> comm_delta_;

  // Forensics (armed iff config_.recorder != nullptr).  The ledger commits
  // at each global formation; since rounds overlap in the pipeline, a
  // commit folds whatever observations (including the next round's early
  // aggregations) accumulated since the previous global — attribution is by
  // wall-clock window, not strict round identity.
  std::unique_ptr<obs::SuspicionLedger> ledger_;
  std::vector<std::vector<bool>> round_flagged_;  // [level][device]
  std::vector<double> suspicion_auc_per_global_;
  // Per global formation, per BRA level: (level, quality of this window's
  // "filtered => Byzantine" flags).
  std::vector<std::vector<std::pair<std::size_t, obs::FilterQuality>>>
      quality_per_global_;
};

}  // namespace abdhfl::core
