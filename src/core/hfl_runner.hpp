#pragma once
// ABD-HFL runner: Algorithms 1-6 of the paper, executed with synchronous
// round semantics over the real tree (the asynchronous *timing* behaviour —
// σ_w/σ_p/σ_g and the efficiency indicator — is studied separately by
// core/pipeline.hpp on the discrete-event simulator; this runner reproduces
// the learning/robustness behaviour: what model every cluster aggregates,
// what the flag mechanism feeds back, and what the top level agrees on).
//
// Per global round r:
//   1. LocalModelTraining (Alg. 2): every bottom device trains T mini-batch
//      SGD iterations from its flag model θ_F^(r); the previous round's
//      global model arrives mid-training and is merged via the correction
//      factor (Eq. 1).  Byzantine devices either train on poisoned shards
//      (data poisoning — they then behave honestly, per Appendix D.A) or
//      craft malicious updates (model-update attacks).
//   2. PartialModelAggregation (Alg. 3/4): levels L..1, each cluster
//      aggregates its members' inputs with the configured BRA rule (leader
//      collects a φ_ℓ quorum in simulated arrival order) or CBA protocol
//      (members vote with their own validation data).
//   3. GlobalModelAggregation (Alg. 6): the leaderless top cluster agrees on
//      θ_G^(r+1) by consensus, or a top leader applies a BRA rule.
//   4. DisseminateModel (Alg. 5): flag-level clusters push their partial
//      models to their bottom descendants as the next round's start; the
//      global model is recorded for next round's merge.

#include <map>
#include <memory>
#include <optional>

#include "agg/aggregator.hpp"
#include "attacks/data_poison.hpp"
#include "attacks/model_attack.hpp"
#include "consensus/consensus.hpp"
#include "core/trainer.hpp"
#include "core/types.hpp"
#include "obs/suspicion.hpp"
#include "topology/byzantine.hpp"
#include "topology/tree.hpp"
#include "util/thread_pool.hpp"

namespace abdhfl::obs {
class Recorder;
class TraceBuffer;
struct RoundRecord;
}

namespace abdhfl::ckpt {
class Store;
}

namespace abdhfl::core {

struct HflConfig {
  LearnConfig learn;
  SchemeConfig scheme = scheme_preset(1);
  /// Per-level overrides of the partial scheme ("model aggregation at
  /// different levels using different types of approaches" — the paper's
  /// generic mechanism).  Key = level index in [1, L]; levels without an
  /// entry use scheme.partial.  Level 0 always uses scheme.global.
  std::map<std::size_t, LevelScheme> level_overrides;
  std::size_t flag_level = 1;      // ℓ_F ∈ [0, L-1]
  double quorum = 1.0;             // φ: fraction of inputs a leader waits for
  /// Optional per-level override of φ_ℓ (Algorithm 4 allows every level its
  /// own quorum).  Indexed by level; empty = use `quorum` everywhere; levels
  /// beyond the vector's size also fall back to `quorum`.
  std::vector<double> quorum_per_level;
  AlphaPolicy alpha;
  /// Local iteration before which the previous global model is merged
  /// (the "arrival" instant of θ_G inside the next round's training).
  std::size_t merge_iteration = 2;
  bool parallel_training = true;   // thread-pool the device loop

  /// Observability sinks (optional, not owned).  With a recorder the runner
  /// emits one RoundRecord per global round (phase wall-clock splits, BRA
  /// filter counts, consensus traffic, pool utilization); with a trace
  /// buffer it emits nested wall-clock Spans (round > train/partial_agg/
  /// global_agg/broadcast/eval).
  obs::Recorder* recorder = nullptr;
  obs::TraceBuffer* trace = nullptr;

  /// Durable snapshots (optional, not owned).  A snapshot lands after every
  /// checkpoint_every-th completed round; with resume the runner loads the
  /// newest snapshot and continues after its round instead of starting at 0
  /// (bit-identically — the snapshot carries every cross-round bit of
  /// state).  halt_after_rounds > 0 stops the run after that many completed
  /// rounds, which is how the kill/resume tests cut a long run mid-way
  /// without changing what the surviving rounds compute.
  ckpt::Store* checkpoint = nullptr;
  std::size_t checkpoint_every = 1;
  bool resume = false;
  std::size_t halt_after_rounds = 0;
};

struct AttackSetup {
  topology::ByzantineMask mask;  // per device; empty = all honest
  attacks::PoisonConfig poison;  // applied to Byzantine shards up front
  /// Model-update attack; when set, Byzantine devices craft updates instead
  /// of training, and Byzantine leaders corrupt their uploads.
  std::shared_ptr<attacks::ModelAttack> model_attack;
};

class HflRunner {
 public:
  /// `shards[d]` is device d's local dataset, `test_set` the reporting set,
  /// `top_validation[k]` the validation shard of the k-th top-level node
  /// (Appendix D.B splits the test data across the top nodes for voting).
  HflRunner(const topology::HflTree& tree, std::vector<data::Dataset> shards,
            data::Dataset test_set, std::vector<data::Dataset> top_validation,
            const nn::Mlp& prototype, HflConfig config, AttackSetup attack,
            std::uint64_t seed);

  /// Run all configured rounds; returns per-round global accuracy + traffic.
  [[nodiscard]] RunResult run();

  /// Fraction of all training samples under each flag-level cluster (drives
  /// the relative-size correction factor).
  [[nodiscard]] const std::vector<double>& flag_cluster_fractions() const noexcept {
    return flag_fraction_;
  }

  /// Forensics ledger accumulated over the run, or nullptr when no recorder
  /// was configured (forensics is armed iff a recorder is present).
  [[nodiscard]] const obs::SuspicionLedger* suspicion_ledger() const noexcept {
    return ledger_.get();
  }

 private:
  std::vector<agg::ModelVec> collect_bottom_updates(std::size_t round,
                                                    std::span<const float> prev_global,
                                                    bool have_prev_global);
  agg::ModelVec aggregate_cluster_bra(const std::vector<agg::ModelVec>& inputs,
                                      const topology::Cluster& cluster, std::size_t level,
                                      CommStats& comm);

  /// Map one BRA call's per-input verdicts back to bottom-level devices and
  /// feed the suspicion ledger; verdict k belongs to cluster member
  /// `arrival_order[k]`.  No-op when forensics is off.
  void attribute_verdicts(const agg::AggTelemetry& telem,
                          const std::vector<std::size_t>& arrival_order,
                          const topology::Cluster& cluster, std::size_t level);

  /// Per-level detection quality of this round's flags plus the ledger's
  /// honest/Byzantine separation, written into `rec`.
  void emit_forensics_fields(obs::RoundRecord& rec);

  /// Per-node ledger records ("hfl_suspicion"), emitted once after the run.
  void emit_suspicion_records();

  /// Snapshot everything run() carries across rounds (`round` = last
  /// completed round), and the inverse: restore from the newest snapshot,
  /// returning the round to resume at (0 when no snapshot exists).
  void save_checkpoint(std::size_t round, const RunResult& out,
                       const std::vector<float>& prev_global, bool have_prev_global);
  std::size_t restore_checkpoint(RunResult& out, std::vector<float>& prev_global,
                                 bool& have_prev_global);
  agg::ModelVec aggregate_cluster_cba(const std::vector<agg::ModelVec>& inputs,
                                      const topology::Cluster& cluster, std::size_t level,
                                      std::uint64_t round, CommStats& comm);
  [[nodiscard]] double eval_for_voter(std::size_t level, topology::DeviceId voter,
                                      const agg::ModelVec& model);

  /// Flush one round's telemetry into the recorder and the global metrics
  /// registry.  No-op when neither sink is armed.
  void emit_round_record(std::size_t round, double round_s, double train_s,
                         double partial_agg_s, double global_agg_s,
                         double broadcast_s, double eval_s, double accuracy,
                         const std::vector<std::size_t>& level_inputs,
                         const CommStats& comm_before, const CommStats& comm_after,
                         const util::ThreadPool::Stats& pool_before);

  const topology::HflTree& tree_;
  data::Dataset test_set_;
  std::vector<data::Dataset> top_validation_;
  nn::Mlp prototype_;
  nn::Mlp scratch_;  // evaluation scratch model
  HflConfig config_;
  AttackSetup attack_;
  util::Rng rng_;

  std::vector<std::unique_ptr<LocalTrainer>> trainers_;  // per device
  std::vector<std::vector<float>> start_params_;          // per device θ_F
  std::vector<double> flag_fraction_;                     // per flag cluster
  std::size_t total_samples_ = 0;

  /// Scheme actually applied at a level (global at 0, override or partial
  /// elsewhere).
  [[nodiscard]] const LevelScheme& scheme_for(std::size_t level) const;

  // One rule/protocol instance per level (levels sharing a scheme still get
  // their own instance so reference-point state never leaks across levels).
  std::map<std::size_t, std::unique_ptr<agg::Aggregator>> bra_by_level_;
  std::map<std::size_t, std::unique_ptr<consensus::ConsensusProtocol>> cba_by_level_;

  /// Telemetry accumulated by the aggregate/collect helpers within one
  /// global round, flushed into the RoundRecord and zeroed at round start.
  struct RoundTelemetry {
    std::size_t bra_calls = 0;
    std::size_t bra_inputs = 0;
    std::size_t bra_kept = 0;
    double bra_score_sum = 0.0;  // sum of per-call score means
    double bra_score_max = 0.0;
    std::size_t cba_calls = 0;
    std::size_t cba_candidates = 0;
    std::size_t cba_messages = 0;
    std::size_t cba_failures = 0;
    double alpha_sum = 0.0;  // flag-correction magnitudes (Eq. 1)
    std::size_t alpha_n = 0;
  };
  RoundTelemetry telem_;

  // Forensics (armed iff config_.recorder != nullptr): per-device suspicion
  // ledger plus this round's per-level "attributed to a filtered input"
  // device masks for precision/recall against the ground-truth mask.
  std::unique_ptr<obs::SuspicionLedger> ledger_;
  std::vector<std::vector<bool>> round_flagged_;  // [level][device]
};

}  // namespace abdhfl::core
