#include "core/types.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace abdhfl::core {

SchemeConfig scheme_preset(int id, const std::string& bra_rule, const std::string& cba_rule) {
  SchemeConfig scheme;
  LevelScheme bra{AggKind::kBra, bra_rule, 0.25};
  LevelScheme cba{AggKind::kCba, cba_rule, 0.25};
  switch (id) {
    case 1:  // paper's evaluated configuration
      scheme.partial = bra;
      scheme.global = cba;
      return scheme;
    case 2:
      scheme.partial = cba;
      scheme.global = bra;
      return scheme;
    case 3:
      scheme.partial = bra;
      scheme.global = bra;
      return scheme;
    case 4:
      scheme.partial = cba;
      scheme.global = cba;
      return scheme;
    default:
      throw std::invalid_argument("scheme_preset: id must be 1..4");
  }
}

double compute_alpha(const AlphaPolicy& policy, double flag_fraction, double staleness) {
  switch (policy.mode) {
    case AlphaMode::kFixed:
      return std::clamp(policy.fixed, policy.min, policy.max);
    case AlphaMode::kRelativeSize:
      // Large flag coverage -> the stale global model adds little -> small
      // alpha; small coverage -> the global model is informative -> large.
      return std::clamp(1.0 - flag_fraction, policy.min, policy.max);
    case AlphaMode::kLatencyAware:
      return std::clamp(policy.fixed * std::exp(-staleness / policy.latency_scale),
                        policy.min, policy.max);
    case AlphaMode::kPolynomial:
      return std::clamp(
          policy.fixed * std::pow(1.0 + std::max(0.0, staleness), -policy.poly_exponent),
          policy.min, policy.max);
    case AlphaMode::kHinge: {
      const double over = staleness - policy.hinge_threshold;
      const double factor = over <= 0.0 ? 1.0 : 1.0 / (1.0 + policy.hinge_slope * over);
      return std::clamp(policy.fixed * factor, policy.min, policy.max);
    }
  }
  throw std::logic_error("compute_alpha: unhandled mode");
}

}  // namespace abdhfl::core
