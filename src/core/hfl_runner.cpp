#include "core/hfl_runner.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "ckpt/state.hpp"
#include "ckpt/store.hpp"
#include "consensus/committee.hpp"
#include "consensus/pbft.hpp"
#include "net/wire.hpp"
#include "nn/sgd.hpp"
#include "obs/blackbox.hpp"
#include "obs/metrics.hpp"
#include "obs/record.hpp"
#include "obs/trace.hpp"
#include "util/thread_pool.hpp"

namespace abdhfl::core {

namespace {

std::unique_ptr<agg::Aggregator> make_bra(const LevelScheme& scheme) {
  if (scheme.kind != AggKind::kBra) return nullptr;
  return agg::make_aggregator(scheme.rule, scheme.byzantine_fraction,
                              scheme.agg_threads);
}

std::unique_ptr<consensus::ConsensusProtocol> make_cba(const LevelScheme& scheme) {
  if (scheme.kind != AggKind::kCba) return nullptr;
  return consensus::make_consensus(scheme.rule);
}

}  // namespace

HflRunner::HflRunner(const topology::HflTree& tree, std::vector<data::Dataset> shards,
                     data::Dataset test_set, std::vector<data::Dataset> top_validation,
                     const nn::Mlp& prototype, HflConfig config, AttackSetup attack,
                     std::uint64_t seed)
    : tree_(tree),
      test_set_(std::move(test_set)),
      top_validation_(std::move(top_validation)),
      prototype_(prototype.clone()),
      scratch_(prototype.clone()),
      config_(std::move(config)),
      attack_(std::move(attack)),
      rng_(seed) {
  if (shards.size() != tree_.num_devices()) {
    throw std::invalid_argument("HflRunner: one shard per device required");
  }
  if (attack_.mask.empty()) attack_.mask.assign(tree_.num_devices(), false);
  if (attack_.mask.size() != tree_.num_devices()) {
    throw std::invalid_argument("HflRunner: Byzantine mask size mismatch");
  }
  if (config_.flag_level >= tree_.depth() + 1) {
    throw std::invalid_argument("HflRunner: flag level out of range");
  }
  if (config_.quorum <= 0.0 || config_.quorum > 1.0) {
    throw std::invalid_argument("HflRunner: quorum must be in (0,1]");
  }
  if (top_validation_.size() != tree_.cluster(0, 0).size()) {
    throw std::invalid_argument("HflRunner: one validation shard per top node required");
  }

  // Poison Byzantine shards up front (data-poisoning threat model); under a
  // model-update attack the Byzantine devices will not train at all.
  for (std::size_t d = 0; d < shards.size(); ++d) {
    if (attack_.mask[d] && !attack_.model_attack) {
      attacks::poison_dataset(shards[d], attack_.poison, rng_);
    }
  }

  trainers_.reserve(shards.size());
  for (auto& shard : shards) {
    total_samples_ += shard.size();
    trainers_.push_back(
        std::make_unique<LocalTrainer>(std::move(shard), prototype_.clone(), rng_.split()));
  }

  // Per-flag-cluster dataset fraction (relative size of θ_F vs θ_G, Sec III-B).
  const auto& flag_clusters = tree_.level(config_.flag_level);
  flag_fraction_.resize(flag_clusters.size(), 0.0);
  for (std::size_t j = 0; j < flag_clusters.size(); ++j) {
    std::size_t covered = 0;
    for (topology::DeviceId m : flag_clusters[j].members) {
      for (topology::DeviceId d : tree_.bottom_descendants(config_.flag_level, m)) {
        covered += trainers_[d]->shard_size();
      }
    }
    flag_fraction_[j] =
        total_samples_ == 0 ? 0.0
                            : static_cast<double>(covered) / static_cast<double>(total_samples_);
  }

  for (std::size_t l = 0; l < tree_.num_levels(); ++l) {
    const auto& scheme = scheme_for(l);
    if (auto bra = make_bra(scheme)) bra_by_level_[l] = std::move(bra);
    if (auto cba = make_cba(scheme)) cba_by_level_[l] = std::move(cba);
  }

  // Forensics rides on the recorder: per-input verdicts are extracted from
  // every BRA call and attributed to bottom devices.  Diagnostic only — the
  // aggregated models are bitwise-identical with or without it.
  if (config_.recorder != nullptr) {
    ledger_ = std::make_unique<obs::SuspicionLedger>(tree_.num_devices(),
                                                     tree_.num_levels());
    for (auto& [level, rule] : bra_by_level_) rule->set_forensics(true);
    round_flagged_.assign(tree_.num_levels(),
                          std::vector<bool>(tree_.num_devices(), false));
  }

  const auto init = prototype_.flatten();
  start_params_.assign(tree_.num_devices(), init);
}

const LevelScheme& HflRunner::scheme_for(std::size_t level) const {
  if (level == 0) return config_.scheme.global;
  const auto it = config_.level_overrides.find(level);
  return it != config_.level_overrides.end() ? it->second : config_.scheme.partial;
}

double HflRunner::eval_for_voter(std::size_t level, topology::DeviceId voter,
                                 const agg::ModelVec& model) {
  if (level == 0) {
    const auto& top = tree_.cluster(0, 0);
    const auto it = std::find(top.members.begin(), top.members.end(), voter);
    if (it == top.members.end()) throw std::logic_error("eval_for_voter: not a top node");
    const auto idx = static_cast<std::size_t>(it - top.members.begin());
    return evaluate_params(scratch_, model, top_validation_[idx]);
  }
  // Intermediate/bottom voters validate on their own local data.
  return evaluate_params(scratch_, model, trainers_[voter]->shard());
}

std::vector<agg::ModelVec> HflRunner::collect_bottom_updates(
    std::size_t round, std::span<const float> prev_global, bool have_prev_global) {
  const std::size_t n = tree_.num_devices();
  std::vector<agg::ModelVec> updates(n);

  const double lr = nn::step_decay_lr(config_.learn.learning_rate,
                                      config_.learn.lr_decay_gamma,
                                      config_.learn.lr_decay_step, round);

  // Precompute per-device merge events (the previous global model "arrives"
  // during this round's training; flag level 0 means θ_F == θ_G, no merge).
  std::vector<std::optional<MergeEvent>> merges(n);
  if (have_prev_global && config_.flag_level != 0) {
    for (std::size_t d = 0; d < n; ++d) {
      const auto flag_cluster = tree_.cluster_of(config_.flag_level, /*walk up*/ [&] {
        // Find the device's ancestor appearing at the flag level by walking
        // leaders upward from the bottom cluster.
        topology::DeviceId cursor = static_cast<topology::DeviceId>(d);
        for (std::size_t l = tree_.depth(); l > config_.flag_level; --l) {
          const auto ci = tree_.cluster_of(l, cursor);
          if (!ci) throw std::logic_error("HflRunner: device missing from level");
          cursor = tree_.cluster(l, *ci).leader_id();
        }
        return cursor;
      }());
      if (!flag_cluster) throw std::logic_error("HflRunner: no flag-level ancestor");
      const double alpha =
          compute_alpha(config_.alpha, flag_fraction_[*flag_cluster], /*staleness=*/1.0);
      telem_.alpha_sum += alpha;
      ++telem_.alpha_n;
      merges[d] = MergeEvent{{prev_global.begin(), prev_global.end()},
                             std::min(config_.merge_iteration, config_.learn.local_iters),
                             alpha};
    }
  }

  const bool model_attacking = static_cast<bool>(attack_.model_attack);
  auto train_one = [&](std::size_t d) {
    if (model_attacking && attack_.mask[d]) return;  // crafted below
    updates[d] = trainers_[d]->train_round(start_params_[d], config_.learn.local_iters,
                                           config_.learn.batch, lr, merges[d]);
  };
  if (config_.parallel_training) {
    util::global_pool().parallel_for(0, n, train_one);
  } else {
    for (std::size_t d = 0; d < n; ++d) train_one(d);
  }

  // Craft model-update attacks per bottom cluster: the omniscient adversary
  // sees the honest updates of its own cluster.
  if (model_attacking) {
    for (const auto& cluster : tree_.level(tree_.depth())) {
      std::vector<agg::ModelVec> honest;
      for (topology::DeviceId d : cluster.members) {
        if (!attack_.mask[d]) honest.push_back(updates[d]);
      }
      for (topology::DeviceId d : cluster.members) {
        if (attack_.mask[d]) {
          const agg::ModelVec& base = honest.empty() ? start_params_[d] : honest.front();
          updates[d] = attack_.model_attack->craft(honest, base, rng_);
        }
      }
    }
  }
  return updates;
}

agg::ModelVec HflRunner::aggregate_cluster_bra(const std::vector<agg::ModelVec>& inputs,
                                               const topology::Cluster& cluster,
                                               std::size_t level, CommStats& comm) {
  // Algorithm 4: the leader waits for a φ_ℓ quorum; simulated arrival order
  // is a random permutation of the senders.
  const double phi = level < config_.quorum_per_level.size()
                         ? config_.quorum_per_level[level]
                         : config_.quorum;
  if (phi <= 0.0 || phi > 1.0) {
    throw std::invalid_argument("HflRunner: per-level quorum out of (0,1]");
  }
  auto quorum_count =
      static_cast<std::size_t>(std::ceil(phi * static_cast<double>(inputs.size())));
  quorum_count = std::clamp<std::size_t>(quorum_count, 1, inputs.size());

  std::vector<std::size_t> order(inputs.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng_.shuffle(order);

  std::vector<agg::ModelVec> arrived;
  arrived.reserve(quorum_count);
  for (std::size_t k = 0; k < quorum_count; ++k) arrived.push_back(inputs[order[k]]);

  agg::Aggregator& rule = *bra_by_level_.at(level);
  agg::ModelVec result = rule.aggregate(arrived);

  const agg::AggTelemetry& rt = rule.last_telemetry();
  ++telem_.bra_calls;
  telem_.bra_inputs += rt.inputs;
  telem_.bra_kept += rt.kept;
  telem_.bra_score_sum += rt.score_mean;
  telem_.bra_score_max = std::max(telem_.bra_score_max, rt.score_max);
  attribute_verdicts(rt, order, cluster, level);

  const std::size_t dim = result.size();
  // Members upload to the leader; leader broadcasts the partial model back.
  comm.messages += inputs.size() + cluster.size();
  comm.model_bytes += inputs.size() * net::model_update_wire_size(dim) +
                      cluster.size() * net::partial_model_wire_size(dim);

  // A Byzantine leader under a model-update attack corrupts its upload.
  if (attack_.model_attack && attack_.mask[cluster.leader_id()]) {
    result = attack_.model_attack->craft(inputs, result, rng_);
  }
  return result;
}

agg::ModelVec HflRunner::aggregate_cluster_cba(const std::vector<agg::ModelVec>& inputs,
                                               const topology::Cluster& cluster,
                                               std::size_t level, std::uint64_t round,
                                               CommStats& comm) {
  if (inputs.size() != cluster.size()) {
    throw std::logic_error("CBA requires one candidate per cluster member");
  }
  // Data poisoners corrupt their *datasets* but still follow the protocol
  // honestly (Appendix D.A: a poisoned node elected leader "honestly"
  // aggregates).  Only model-update attackers behave adversarially inside
  // consensus (inverted votes, malicious proposals).
  const bool protocol_adversarial = static_cast<bool>(attack_.model_attack);
  std::vector<bool> byz(cluster.size());
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    byz[i] = protocol_adversarial && attack_.mask[cluster.members[i]];
  }

  consensus::ConsensusProtocol& protocol = *cba_by_level_.at(level);
  // Rotate committee/PBFT leadership per round when the protocol supports it.
  if (auto* committee = dynamic_cast<consensus::CommitteeConsensus*>(&protocol)) {
    committee->set_round_salt(round);
  } else if (auto* pbft = dynamic_cast<consensus::PbftConsensus*>(&protocol)) {
    pbft->set_round_salt(round);
  }

  auto eval = [&](std::size_t voter, const agg::ModelVec& model) {
    return eval_for_voter(level, cluster.members[voter], model);
  };
  auto result = protocol.agree(inputs, eval, byz, rng_);
  comm.messages += result.messages;
  comm.model_bytes += result.model_bytes + result.vote_bytes;
  if (!result.success) ++comm.consensus_failures;

  ++telem_.cba_calls;
  telem_.cba_candidates += inputs.size();
  telem_.cba_messages += result.messages;
  if (!result.success) ++telem_.cba_failures;
  return std::move(result.model);
}

void HflRunner::attribute_verdicts(const agg::AggTelemetry& telem,
                                   const std::vector<std::size_t>& arrival_order,
                                   const topology::Cluster& cluster, std::size_t level) {
  if (!ledger_ || telem.verdicts.empty()) return;
  // Scores are normalized per call so "3x the median distance of this call"
  // means the same at every level and for every rule.
  std::vector<double> scores(telem.verdicts.size());
  for (std::size_t k = 0; k < telem.verdicts.size(); ++k) {
    scores[k] = telem.verdicts[k].score;
  }
  const auto rel = obs::relative_scores(scores);
  for (std::size_t k = 0; k < telem.verdicts.size(); ++k) {
    const topology::DeviceId member = cluster.members[arrival_order[k]];
    const bool kept = telem.verdicts[k].kept;
    for (topology::DeviceId d : tree_.bottom_descendants(level, member)) {
      ledger_->observe(d, level, kept, rel[k]);
      if (!kept) round_flagged_[level][d] = true;
    }
  }
}

void HflRunner::emit_forensics_fields(obs::RoundRecord& rec) {
  if (!ledger_) return;
  for (const auto& [level, rule] : bra_by_level_) {
    const auto q = obs::filter_quality(round_flagged_[level], attack_.mask);
    const std::string suffix = "_l" + std::to_string(level);
    rec.set("filter_precision" + suffix, q.precision);
    rec.set("filter_recall" + suffix, q.recall);
    rec.set("filter_f1" + suffix, q.f1);
    rec.set("filter_flagged" + suffix, static_cast<double>(q.flagged));
  }
  ledger_->commit_round();
  std::vector<double> byz_scores;
  std::vector<double> honest_scores;
  double byz_min = 0.0, honest_max = 0.0;
  for (std::size_t d = 0; d < tree_.num_devices(); ++d) {
    const double s = ledger_->suspicion(d);
    if (attack_.mask[d]) {
      byz_min = byz_scores.empty() ? s : std::min(byz_min, s);
      byz_scores.push_back(s);
    } else {
      honest_max = honest_scores.empty() ? s : std::max(honest_max, s);
      honest_scores.push_back(s);
    }
  }
  rec.set("suspicion_auc", obs::separation_auc(byz_scores, honest_scores));
  if (!byz_scores.empty() && !honest_scores.empty()) {
    rec.set("suspicion_margin", byz_min - honest_max);
  }
  for (auto& mask : round_flagged_) mask.assign(mask.size(), false);
}

void HflRunner::emit_suspicion_records() {
  if (!ledger_ || config_.recorder == nullptr) return;
  const auto snapshot = ledger_->snapshot();
  for (const auto& ns : snapshot) {
    obs::RoundRecord& rec =
        config_.recorder->begin_round("hfl_suspicion", ledger_->rounds_committed());
    rec.set("node", static_cast<double>(ns.node));
    rec.set("suspicion", ns.total);
    rec.set("filter_events", static_cast<double>(ns.filter_events));
    rec.set("observations", static_cast<double>(ns.observations));
    rec.set("byzantine", attack_.mask[ns.node] ? 1.0 : 0.0);
    for (std::size_t l = 0; l < ns.per_level.size(); ++l) {
      rec.set("suspicion_l" + std::to_string(l), ns.per_level[l]);
    }
  }
}

void HflRunner::emit_round_record(std::size_t round, double round_s, double train_s,
                                  double partial_agg_s, double global_agg_s,
                                  double broadcast_s, double eval_s, double accuracy,
                                  const std::vector<std::size_t>& level_inputs,
                                  const CommStats& comm_before,
                                  const CommStats& comm_after,
                                  const util::ThreadPool::Stats& pool_before) {
  if (config_.recorder != nullptr) {
    const auto pool_after = util::global_pool().stats();
    const double pool_busy_s = pool_after.busy_seconds - pool_before.busy_seconds;
    const std::size_t workers = util::global_pool().size();

    obs::RoundRecord& rec = config_.recorder->begin_round("hfl", round);
    rec.set("round_s", round_s);
    rec.set("train_s", train_s);
    rec.set("partial_agg_s", partial_agg_s);
    rec.set("global_agg_s", global_agg_s);
    rec.set("broadcast_s", broadcast_s);
    rec.set("eval_s", eval_s);
    rec.set("accuracy", accuracy);
    rec.set("bra_calls", static_cast<double>(telem_.bra_calls));
    rec.set("bra_inputs", static_cast<double>(telem_.bra_inputs));
    rec.set("bra_kept", static_cast<double>(telem_.bra_kept));
    rec.set("bra_filtered",
            static_cast<double>(telem_.bra_inputs - telem_.bra_kept));
    rec.set("bra_score_mean",
            telem_.bra_calls == 0
                ? 0.0
                : telem_.bra_score_sum / static_cast<double>(telem_.bra_calls));
    rec.set("bra_score_max", telem_.bra_score_max);
    rec.set("cba_calls", static_cast<double>(telem_.cba_calls));
    rec.set("cba_candidates", static_cast<double>(telem_.cba_candidates));
    rec.set("cba_messages", static_cast<double>(telem_.cba_messages));
    rec.set("cba_failures", static_cast<double>(telem_.cba_failures));
    rec.set("alpha_mean", telem_.alpha_n == 0
                              ? 0.0
                              : telem_.alpha_sum / static_cast<double>(telem_.alpha_n));
    rec.set("messages",
            static_cast<double>(comm_after.messages - comm_before.messages));
    rec.set("model_bytes",
            static_cast<double>(comm_after.model_bytes - comm_before.model_bytes));
    for (std::size_t l = 0; l < level_inputs.size(); ++l) {
      rec.set("inputs_l" + std::to_string(l), static_cast<double>(level_inputs[l]));
    }
    rec.set("pool_tasks",
            static_cast<double>(pool_after.completed - pool_before.completed));
    rec.set("pool_wait_s", pool_after.wait_seconds - pool_before.wait_seconds);
    rec.set("pool_busy_s", pool_busy_s);
    rec.set("pool_utilization",
            round_s > 0.0 && workers > 0
                ? pool_busy_s / (round_s * static_cast<double>(workers))
                : 0.0);
    emit_forensics_fields(rec);
  }

  if (obs::enabled()) {
    auto& reg = obs::global_registry();
    reg.counter("hfl_rounds_total", "Completed HFL global rounds").add(1);
    reg.histogram("hfl_round_seconds", obs::exponential_bounds(1e-3, 2.0, 16),
                  "Wall-clock duration of one global round")
        .observe(round_s);
    reg.counter("hfl_bra_filtered_total",
                "Updates discarded by Byzantine-robust aggregation rules")
        .add(telem_.bra_inputs - telem_.bra_kept);
    reg.counter("hfl_cba_failures_total", "Consensus rounds that did not decide")
        .add(telem_.cba_failures);
  }
}

void HflRunner::save_checkpoint(std::size_t round, const RunResult& out,
                                const std::vector<float>& prev_global,
                                bool have_prev_global) {
  ckpt::Container c;
  c.producer = "hfl";
  c.round = round;
  {
    ckpt::PayloadWriter w;
    w.u8(have_prev_global ? 1 : 0);
    w.f32vec(prev_global);
    c.chunks.push_back({ckpt::kTagParams, w.take()});
  }
  c.chunks.push_back({ckpt::kTagDevices, ckpt::encode_f32_buffers(start_params_)});
  {
    std::vector<ckpt::RngState> states;
    states.reserve(trainers_.size() + 1);
    states.push_back(rng_.state());
    for (const auto& t : trainers_) states.push_back(t->rng_state());
    c.chunks.push_back({ckpt::kTagRngStates, ckpt::encode_rng_states(states)});
  }
  {
    ckpt::PayloadWriter w;
    std::vector<double> losses;
    losses.reserve(trainers_.size());
    for (const auto& t : trainers_) losses.push_back(t->last_loss());
    w.f64vec(losses);
    c.chunks.push_back({ckpt::kTagLosses, w.take()});
  }
  {
    ckpt::PayloadWriter w;
    w.f64(config_.learn.learning_rate);
    w.u64(round + 1);  // the schedule round the resumed run trains with next
    c.chunks.push_back({ckpt::kTagLrSchedule, w.take()});
  }
  if (ledger_) c.chunks.push_back({ckpt::kTagLedger, ckpt::encode_ledger(*ledger_)});
  {
    ckpt::PayloadWriter w;
    w.f64vec(out.accuracy_per_round);
    w.u64(out.comm.messages);
    w.u64(out.comm.model_bytes);
    w.u64(out.comm.consensus_failures);
    c.chunks.push_back({ckpt::kTagResult, w.take()});
  }
  config_.checkpoint->save(round, ckpt::encode_container(c));
}

std::size_t HflRunner::restore_checkpoint(RunResult& out, std::vector<float>& prev_global,
                                          bool& have_prev_global) {
  auto snap = config_.checkpoint->load_latest();
  if (!snap.has_value()) return 0;
  if (snap->producer != "hfl") {
    throw ckpt::CkptError("checkpoint produced by \"" + snap->producer +
                          "\", expected \"hfl\"");
  }
  {
    ckpt::PayloadReader r(snap->require(ckpt::kTagParams).payload);
    have_prev_global = r.u8() != 0;
    prev_global = r.f32vec();
    r.expect_done();
  }
  auto devices = ckpt::decode_f32_buffers(snap->require(ckpt::kTagDevices).payload);
  if (devices.size() != start_params_.size()) {
    throw ckpt::CkptError("DEVS chunk device count mismatch");
  }
  start_params_ = std::move(devices);
  const auto states = ckpt::decode_rng_states(snap->require(ckpt::kTagRngStates).payload);
  if (states.size() != trainers_.size() + 1) {
    throw ckpt::CkptError("RNGS chunk stream count mismatch");
  }
  rng_.set_state(states[0]);
  for (std::size_t d = 0; d < trainers_.size(); ++d) {
    trainers_[d]->set_rng_state(states[d + 1]);
  }
  {
    ckpt::PayloadReader r(snap->require(ckpt::kTagLosses).payload);
    const auto losses = r.f64vec();
    r.expect_done();
    if (losses.size() != trainers_.size()) {
      throw ckpt::CkptError("LOSS chunk trainer count mismatch");
    }
    for (std::size_t d = 0; d < trainers_.size(); ++d) {
      trainers_[d]->set_last_loss(losses[d]);
    }
  }
  {
    ckpt::PayloadReader r(snap->require(ckpt::kTagLrSchedule).payload);
    const double base_lr = r.f64();
    if (base_lr != config_.learn.learning_rate) {
      throw ckpt::CkptError("LRSC chunk base learning rate differs from the config");
    }
  }
  if (ledger_) {
    if (const auto* chunk = snap->find(ckpt::kTagLedger)) {
      ckpt::restore_ledger(chunk->payload, *ledger_);
    }
  }
  {
    ckpt::PayloadReader r(snap->require(ckpt::kTagResult).payload);
    out.accuracy_per_round = r.f64vec();
    out.comm.messages = r.u64();
    out.comm.model_bytes = r.u64();
    out.comm.consensus_failures = r.u64();
    r.expect_done();
  }
  return static_cast<std::size_t>(snap->round) + 1;
}

RunResult HflRunner::run() {
  RunResult out;
  std::vector<float> prev_global;
  bool have_prev_global = false;
  std::size_t first_round = 0;

  if (config_.checkpoint != nullptr && config_.resume) {
    first_round = restore_checkpoint(out, prev_global, have_prev_global);
  }

  const std::size_t depth = tree_.depth();

  for (std::size_t round = first_round; round < config_.learn.rounds; ++round) {
    telem_ = {};
    double round_s = 0.0, train_s = 0.0, partial_agg_s = 0.0, global_agg_s = 0.0,
           broadcast_s = 0.0, eval_s = 0.0;
    std::vector<std::size_t> level_inputs(depth + 1, 0);
    const CommStats comm_before = out.comm;
    const auto pool_before = util::global_pool().stats();
    agg::ModelVec global_model;
    {
      obs::Span round_span(config_.trace, "round", round);
      obs::ScopedTimer round_timer(round_s);

      // --- 1. Local training (Algorithm 2). ------------------------------
      std::vector<agg::ModelVec> updates;
      {
        obs::blackbox::record(obs::blackbox::EventType::kMark, 1, 0, round);
        obs::Span span(config_.trace, "train", round);
        obs::ScopedTimer timer(train_s);
        updates = collect_bottom_updates(round, prev_global, have_prev_global);
      }

      // Rules that use a reference point anchor on the previous global model.
      if (have_prev_global) {
        for (auto& [level, rule] : bra_by_level_) rule->set_reference(prev_global);
      }

      // --- 2. Partial aggregation, levels L .. 1 (Algorithms 3/4). -------
      // cluster_models[l][i] = θ_{l,i} for this round.
      std::vector<std::vector<agg::ModelVec>> cluster_models(depth + 1);
      {
        obs::blackbox::record(obs::blackbox::EventType::kMark, 2, 0, round);
        obs::Span span(config_.trace, "partial_agg", round);
        obs::ScopedTimer timer(partial_agg_s);
        for (std::size_t l = depth; l >= 1; --l) {
          const auto& clusters = tree_.level(l);
          cluster_models[l].resize(clusters.size());
          for (std::size_t i = 0; i < clusters.size(); ++i) {
            const auto& cluster = clusters[i];
            std::vector<agg::ModelVec> inputs;
            inputs.reserve(cluster.size());
            if (l == depth) {
              for (topology::DeviceId d : cluster.members) inputs.push_back(updates[d]);
            } else {
              for (topology::DeviceId d : cluster.members) {
                const auto child = tree_.child_cluster_of(l, d);
                if (!child) throw std::logic_error("HflRunner: member leads no child cluster");
                inputs.push_back(cluster_models[l + 1][*child]);
              }
            }
            level_inputs[l] += inputs.size();
            cluster_models[l][i] =
                scheme_for(l).kind == AggKind::kBra
                    ? aggregate_cluster_bra(inputs, cluster, l, out.comm)
                    : aggregate_cluster_cba(inputs, cluster, l, round, out.comm);
          }
        }
      }

      // --- 3. Global aggregation at the top (Algorithm 6). ---------------
      {
        obs::blackbox::record(obs::blackbox::EventType::kMark, 3, 0, round);
        obs::Span span(config_.trace, "global_agg", round);
        obs::ScopedTimer timer(global_agg_s);
        const auto& top = tree_.cluster(0, 0);
        std::vector<agg::ModelVec> top_inputs;
        top_inputs.reserve(top.size());
        for (topology::DeviceId d : top.members) {
          const auto child = tree_.child_cluster_of(0, d);
          if (!child) throw std::logic_error("HflRunner: top node leads no cluster");
          top_inputs.push_back(cluster_models[1][*child]);
        }
        level_inputs[0] += top_inputs.size();
        global_model =
            scheme_for(0).kind == AggKind::kBra
                ? aggregate_cluster_bra(top_inputs, top, 0, out.comm)
                : aggregate_cluster_cba(top_inputs, top, 0, round, out.comm);
        cluster_models[0] = {global_model};
      }

      // --- 4. Dissemination (Algorithm 5): flag models seed the next round.
      {
        obs::Span span(config_.trace, "broadcast", round);
        obs::ScopedTimer timer(broadcast_s);
        if (config_.flag_level == 0) {
          for (auto& start : start_params_) start = global_model;
        } else {
          const auto& flag_clusters = tree_.level(config_.flag_level);
          for (std::size_t j = 0; j < flag_clusters.size(); ++j) {
            const auto& flag_model = cluster_models[config_.flag_level][j];
            for (topology::DeviceId m : flag_clusters[j].members) {
              for (topology::DeviceId d :
                   tree_.bottom_descendants(config_.flag_level, m)) {
                start_params_[d] = flag_model;
              }
            }
            // Dissemination traffic: one broadcast per tree edge below the
            // flag cluster (counted as one message per reached device).
            std::size_t reached = 0;
            for (topology::DeviceId m : flag_clusters[j].members) {
              reached += tree_.bottom_descendants(config_.flag_level, m).size();
            }
            out.comm.messages += reached;
            out.comm.model_bytes += reached * net::partial_model_wire_size(flag_model.size());
          }
        }
        // Global-model dissemination to every device (merged next round).
        out.comm.messages += tree_.num_devices();
        out.comm.model_bytes +=
            tree_.num_devices() * net::partial_model_wire_size(global_model.size());
      }

      {
        obs::Span span(config_.trace, "eval", round);
        obs::ScopedTimer timer(eval_s);
        out.accuracy_per_round.push_back(
            evaluate_params(scratch_, global_model, test_set_));
      }
    }

    emit_round_record(round, round_s, train_s, partial_agg_s, global_agg_s,
                      broadcast_s, eval_s, out.accuracy_per_round.back(),
                      level_inputs, comm_before, out.comm, pool_before);
    obs::blackbox::record(obs::blackbox::EventType::kRound, 0, 0, round,
                          level_inputs[0]);
    obs::blackbox::note_progress(round + 1);

    prev_global = std::move(global_model);
    have_prev_global = true;

    if (config_.checkpoint != nullptr &&
        ((round + 1) % std::max<std::size_t>(config_.checkpoint_every, 1) == 0 ||
         round + 1 == config_.learn.rounds)) {
      save_checkpoint(round, out, prev_global, have_prev_global);
    }
    if (config_.halt_after_rounds != 0 && round + 1 >= config_.halt_after_rounds) {
      if (config_.checkpoint != nullptr) config_.checkpoint->flush();
      break;  // simulated crash point for the kill/resume tests
    }
  }

  emit_suspicion_records();

  out.final_accuracy =
      out.accuracy_per_round.empty() ? 0.0 : out.accuracy_per_round.back();
  out.final_model = std::move(prev_global);
  return out;
}

}  // namespace abdhfl::core
