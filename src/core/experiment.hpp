#pragma once
// High-level experiment driver: builds the dataset (synthetic digits, or
// real MNIST when --mnist-dir points at the IDX files), partitions it per
// Appendix D.A, constructs the ECSM tree of Table VII, places the malicious
// devices, and runs ABD-HFL and the vanilla-FL baseline on identical inputs.
// Every bench binary is a thin loop over this driver.

#include <cstdint>
#include <string>
#include <vector>

#include "attacks/data_poison.hpp"
#include "core/hfl_runner.hpp"
#include "core/types.hpp"
#include "core/vanilla_fl.hpp"
#include "util/stats.hpp"

namespace abdhfl::core {

struct ScenarioConfig {
  // Data.
  bool iid = true;
  std::size_t samples_per_class = 600;       // training pool
  std::size_t test_samples_per_class = 100;  // test pool (votes + reporting)
  std::size_t image_side = 16;
  std::string mnist_dir;                     // empty = synthetic digits

  // Model: "mlp" (input -> hidden -> 10) or "cnn" (conv3x3 -> pool -> dense,
  // cnn_filters channels).  Aggregation is architecture-agnostic either way.
  std::string model = "mlp";
  std::vector<std::size_t> hidden = {32};
  std::size_t cnn_filters = 4;

  // Topology (paper: 3 levels, cluster size 4, 4 top nodes, 64 clients).
  std::size_t levels = 3;
  std::size_t cluster_size = 4;
  std::size_t top_nodes = 4;

  // Attack.
  double malicious_fraction = 0.0;
  attacks::PoisonType poison = attacks::PoisonType::kLabelFlipType1;
  std::string model_attack;  // empty = data poisoning; else a model attack name
  /// Placement of the malicious set over device ids.  kBlock (default)
  /// reproduces the paper's id-ordered assignment — the placement Theorem 2
  /// is tight for; kRandom scatters adversaries across all clusters, which
  /// defeats any hierarchical filter well below the theoretical bound (this
  /// contrast is itself an experiment, see bench_tolerance).
  enum class Placement { kBlock, kRandom };
  Placement placement = Placement::kBlock;

  // Learning.
  LearnConfig learn;

  // ABD-HFL scheme (Table III preset + rules).
  int scheme_id = 1;
  std::string bra_rule = "multikrum";  // paper: MultiKrum (IID), Median (non-IID)
  std::string cba_rule = "voting";
  std::size_t flag_level = 1;
  double quorum = 1.0;
  AlphaPolicy alpha;
  std::size_t merge_iteration = 2;

  // Baseline.
  std::string vanilla_rule = "multikrum";

  std::uint64_t seed = 42;
  bool parallel_training = true;

  /// Observability sinks forwarded to both runners (not owned; optional).
  obs::Recorder* recorder = nullptr;
  obs::TraceBuffer* trace = nullptr;

  /// Checkpoint stores forwarded to the runners (not owned; optional).  A
  /// scenario runs two independent systems, so each needs its own store —
  /// conventionally the <dir>/hfl and <dir>/vanilla subdirectories of one
  /// --checkpoint-dir.  every/resume/halt mirror HflConfig's fields.
  ckpt::Store* checkpoint_hfl = nullptr;
  ckpt::Store* checkpoint_vanilla = nullptr;
  std::size_t checkpoint_every = 1;
  bool resume = false;
  std::size_t halt_after_rounds = 0;
};

struct ScenarioResult {
  RunResult abdhfl;
  RunResult vanilla;
};

/// One full paired run (both systems see the same shards, mask and model
/// initialization).  Set run_vanilla / run_abdhfl to false to skip a side
/// (its RunResult is then default-constructed).
[[nodiscard]] ScenarioResult run_scenario(const ScenarioConfig& config,
                                          bool run_vanilla = true,
                                          bool run_abdhfl = true);

struct RepeatedResult {
  std::vector<RunResult> abdhfl;
  std::vector<RunResult> vanilla;
  util::Summary abdhfl_final;
  util::Summary vanilla_final;
};

/// `repeats` paired runs with seeds seed, seed+1, ... (the paper averages 5).
[[nodiscard]] RepeatedResult run_repeated(const ScenarioConfig& config, std::size_t repeats,
                                          bool run_vanilla = true);

/// The paper's theoretical bottom-level tolerance for this configuration:
/// 1 − (1−γ1)(1−γ2)^L with L = levels−1 (57.8125% for the Table VII setup).
[[nodiscard]] double theoretical_tolerance(const ScenarioConfig& config, double gamma1,
                                           double gamma2);

}  // namespace abdhfl::core
