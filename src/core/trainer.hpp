#pragma once
// Local model training (Algorithm 2's SGD loop).
//
// A LocalTrainer wraps a device's shard and a private model instance.  One
// call to train_round() realizes lines 13-22 of Algorithm 2: load the start
// parameters (the flag model), run T mini-batch SGD iterations, optionally
// merging an arriving global model at a given iteration via the correction
// factor (Eq. 1), and return the flat trained parameters.

#include <array>
#include <optional>

#include "data/dataset.hpp"
#include "nn/mlp.hpp"
#include "nn/loss.hpp"
#include "nn/sgd.hpp"
#include "util/rng.hpp"

namespace abdhfl::core {

struct MergeEvent {
  std::vector<float> global_model;  // θ_G arriving mid-training
  std::size_t at_iteration = 0;     // merge before this local iteration
  double alpha = 0.5;               // correction factor α
};

/// Algorithm 2 lines 13-22 as a free function over borrowed state: load
/// `start_params` into `model`, run the SGD iterations against `shard`
/// drawing batches from `rng`, and return the flat trained parameters plus
/// the mean iteration loss in `loss_out`.  LocalTrainer::train_round is a
/// thin wrapper; the virtual-device multiplexer calls this directly so
/// thousands of simulated devices can share ONE model workspace (the
/// tensor arena) while keeping only their {rng, shard ref, last_loss} —
/// the model carries no cross-round state, so results are bitwise
/// identical to per-device LocalTrainer instances.
[[nodiscard]] std::vector<float> train_device_round(
    nn::Mlp& model, const data::Dataset& shard, util::Rng& rng,
    std::span<const float> start_params, std::size_t local_iters, std::size_t batch,
    double learning_rate, const std::optional<MergeEvent>& merge, double& loss_out);

class LocalTrainer {
 public:
  LocalTrainer(data::Dataset shard, nn::Mlp model, util::Rng rng);

  /// Run one global round of local training.
  [[nodiscard]] std::vector<float> train_round(std::span<const float> start_params,
                                               std::size_t local_iters, std::size_t batch,
                                               double learning_rate,
                                               const std::optional<MergeEvent>& merge);

  [[nodiscard]] const data::Dataset& shard() const noexcept { return shard_; }
  [[nodiscard]] data::Dataset& mutable_shard() noexcept { return shard_; }
  [[nodiscard]] std::size_t shard_size() const noexcept { return shard_.size(); }

  /// Loss of the most recent train_round (mean over its iterations).
  [[nodiscard]] double last_loss() const noexcept { return last_loss_; }

  /// Checkpoint access to the device's private SGD stream.  train_round
  /// loads start_params into the model, so the RNG state plus last_loss is
  /// the trainer's entire cross-round state.
  [[nodiscard]] std::array<std::uint64_t, 4> rng_state() const noexcept {
    return rng_.state();
  }
  void set_rng_state(const std::array<std::uint64_t, 4>& s) noexcept { rng_.set_state(s); }
  void set_last_loss(double loss) noexcept { last_loss_ = loss; }

 private:
  data::Dataset shard_;
  nn::Mlp model_;
  util::Rng rng_;
  double last_loss_ = 0.0;
};

/// Test accuracy of a flat parameter vector, evaluated with a scratch model
/// of the right architecture.
[[nodiscard]] double evaluate_params(nn::Mlp& scratch, std::span<const float> params,
                                     const data::Dataset& test_set);

}  // namespace abdhfl::core
