#include "core/async_runner.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <string>

#include "ckpt/state.hpp"
#include "ckpt/store.hpp"
#include "consensus/committee.hpp"
#include "consensus/pbft.hpp"
#include "obs/blackbox.hpp"
#include "net/wire.hpp"
#include "nn/sgd.hpp"
#include "obs/metrics.hpp"
#include "obs/record.hpp"

namespace abdhfl::core {

namespace {

std::size_t quorum_count(double quorum, std::size_t cluster_size) {
  auto k = static_cast<std::size_t>(
      std::ceil(quorum * static_cast<double>(cluster_size)));
  return std::clamp<std::size_t>(k, 1, cluster_size);
}

// TraceEvent.kind is a static-lifetime string; checkpoints store the code
// and restore re-interns the literal so restored events stay valid forever.
constexpr const char* kTraceKinds[] = {"train_start",  "train_end",
                                       "agg_start",    "agg_done",
                                       "flag_release", "global_formed"};

std::uint8_t trace_kind_code(const char* kind) {
  for (std::uint8_t i = 0; i < std::size(kTraceKinds); ++i) {
    if (std::strcmp(kTraceKinds[i], kind) == 0) return i;
  }
  throw ckpt::CkptError("async: unknown trace kind \"" + std::string(kind) + "\"");
}

const char* trace_kind_from_code(std::uint8_t code) {
  if (code >= std::size(kTraceKinds)) {
    throw ckpt::CkptError("async: trace kind code out of range");
  }
  return kTraceKinds[code];
}

}  // namespace

AsyncHflRunner::AsyncHflRunner(const topology::HflTree& tree,
                               std::vector<data::Dataset> shards, data::Dataset test_set,
                               std::vector<data::Dataset> top_validation,
                               const nn::Mlp& prototype, AsyncHflConfig config,
                               AttackSetup attack, std::uint64_t seed)
    : tree_(tree),
      test_set_(std::move(test_set)),
      top_validation_(std::move(top_validation)),
      scratch_(prototype.clone()),
      config_(std::move(config)),
      attack_(std::move(attack)),
      rng_(seed) {
  if (shards.size() != tree_.num_devices()) {
    throw std::invalid_argument("AsyncHflRunner: one shard per device required");
  }
  if (attack_.mask.empty()) attack_.mask.assign(tree_.num_devices(), false);
  if (config_.flag_level >= tree_.depth()) {
    throw std::invalid_argument("AsyncHflRunner: flag level must be < bottom level");
  }
  if (config_.quorum <= 0.0 || config_.quorum > 1.0) {
    throw std::invalid_argument("AsyncHflRunner: quorum out of (0,1]");
  }
  if (top_validation_.size() != tree_.cluster(0, 0).size()) {
    throw std::invalid_argument("AsyncHflRunner: need one validation shard per top node");
  }

  std::size_t total_samples = 0;
  for (std::size_t d = 0; d < shards.size(); ++d) {
    if (attack_.mask[d] && !attack_.model_attack) {
      attacks::poison_dataset(shards[d], attack_.poison, rng_);
    }
  }
  trainers_.reserve(shards.size());
  for (auto& shard : shards) {
    total_samples += shard.size();
    trainers_.push_back(
        std::make_unique<LocalTrainer>(std::move(shard), prototype.clone(), rng_.split()));
  }

  const auto& flag_clusters = tree_.level(config_.flag_level);
  flag_fraction_.resize(flag_clusters.size(), 0.0);
  for (std::size_t j = 0; j < flag_clusters.size(); ++j) {
    std::size_t covered = 0;
    for (topology::DeviceId m : flag_clusters[j].members) {
      for (topology::DeviceId d : tree_.bottom_descendants(config_.flag_level, m)) {
        covered += trainers_[d]->shard_size();
      }
    }
    flag_fraction_[j] = total_samples == 0 ? 0.0
                                           : static_cast<double>(covered) /
                                                 static_cast<double>(total_samples);
  }

  auto make_bra = [](const LevelScheme& scheme) -> std::unique_ptr<agg::Aggregator> {
    if (scheme.kind != AggKind::kBra) return nullptr;
    return agg::make_aggregator(scheme.rule, scheme.byzantine_fraction,
                                scheme.agg_threads);
  };
  auto make_cba =
      [](const LevelScheme& scheme) -> std::unique_ptr<consensus::ConsensusProtocol> {
    if (scheme.kind != AggKind::kCba) return nullptr;
    return consensus::make_consensus(scheme.rule);
  };
  for (std::size_t l = 0; l < tree_.num_levels(); ++l) {
    const auto& scheme = scheme_for(l);
    if (auto bra = make_bra(scheme)) bra_by_level_[l] = std::move(bra);
    if (auto cba = make_cba(scheme)) cba_by_level_[l] = std::move(cba);
  }

  if (config_.recorder != nullptr) {
    ledger_ = std::make_unique<obs::SuspicionLedger>(tree_.num_devices(),
                                                     tree_.num_levels());
    for (auto& [level, rule] : bra_by_level_) rule->set_forensics(true);
    round_flagged_.assign(tree_.num_levels(),
                          std::vector<bool>(tree_.num_devices(), false));
  }

  devices_.resize(tree_.num_devices());
  last_global_ = scratch_.flatten();
  staleness_acc_.assign(config_.rounds, 0.0);
  staleness_n_.assign(config_.rounds, 0);
  train_wall_.assign(config_.rounds, 0.0);
  agg_wall_.assign(config_.rounds, 0.0);
}

void AsyncHflRunner::record(const char* kind, std::size_t round, std::uint32_t subject,
                            std::size_t level) {
  if (!config_.trace) return;
  result_.trace.push_back(TraceEvent{sim_.now(), round, kind, subject, level});
}

double AsyncHflRunner::eval_voter(std::size_t level, topology::DeviceId voter,
                                  const agg::ModelVec& model) {
  if (level == 0) {
    const auto& top = tree_.cluster(0, 0);
    const auto it = std::find(top.members.begin(), top.members.end(), voter);
    if (it == top.members.end()) throw std::logic_error("async: voter not a top node");
    return evaluate_params(scratch_, model,
                           top_validation_[static_cast<std::size_t>(
                               it - top.members.begin())]);
  }
  return evaluate_params(scratch_, model, trainers_[voter]->shard());
}

const LevelScheme& AsyncHflRunner::scheme_for(std::size_t level) const {
  if (level == 0) return config_.scheme.global;
  const auto it = config_.level_overrides.find(level);
  return it != config_.level_overrides.end() ? it->second : config_.scheme.partial;
}

agg::ModelVec AsyncHflRunner::aggregate(const std::vector<agg::ModelVec>& inputs,
                                        const std::vector<topology::DeviceId>& senders,
                                        const topology::Cluster& cluster,
                                        std::size_t level, std::size_t round) {
  double sink = 0.0;
  obs::ScopedTimer timer(round < agg_wall_.size() ? agg_wall_[round] : sink);
  const auto& scheme = scheme_for(level);
  if (scheme.kind == AggKind::kBra) {
    agg::Aggregator& rule = *bra_by_level_.at(level);
    rule.set_reference(last_global_);
    auto out = rule.aggregate(inputs);
    const agg::AggTelemetry& rt = rule.last_telemetry();
    if (ledger_ && !rt.verdicts.empty() && senders.size() == rt.verdicts.size()) {
      std::vector<double> scores(rt.verdicts.size());
      for (std::size_t k = 0; k < rt.verdicts.size(); ++k) {
        scores[k] = rt.verdicts[k].score;
      }
      const auto rel = obs::relative_scores(scores);
      for (std::size_t k = 0; k < rt.verdicts.size(); ++k) {
        const bool kept = rt.verdicts[k].kept;
        for (topology::DeviceId d : tree_.bottom_descendants(level, senders[k])) {
          ledger_->observe(d, level, kept, rel[k]);
          if (!kept) round_flagged_[level][d] = true;
        }
      }
    }
    result_.comm.messages += inputs.size() + cluster.size();
    result_.comm.model_bytes +=
        inputs.size() * net::model_update_wire_size(out.size()) +
        cluster.size() * net::partial_model_wire_size(out.size());
    if (attack_.model_attack && attack_.mask[cluster.leader_id()]) {
      out = attack_.model_attack->craft(inputs, out, rng_);
    }
    return out;
  }

  consensus::ConsensusProtocol& protocol = *cba_by_level_.at(level);
  if (auto* committee = dynamic_cast<consensus::CommitteeConsensus*>(&protocol)) {
    committee->set_round_salt(round);
  } else if (auto* pbft = dynamic_cast<consensus::PbftConsensus*>(&protocol)) {
    pbft->set_round_salt(round);
  }
  // Voter identities: use the cluster members in order, clipped to the
  // number of collected inputs (quorum may be partial).
  const bool adversarial = static_cast<bool>(attack_.model_attack);
  std::vector<bool> byz(inputs.size(), false);
  for (std::size_t i = 0; i < inputs.size() && i < cluster.size(); ++i) {
    byz[i] = adversarial && attack_.mask[cluster.members[i]];
  }
  auto eval = [&](std::size_t voter, const agg::ModelVec& model) {
    const topology::DeviceId id = cluster.members[std::min(voter, cluster.size() - 1)];
    return eval_voter(level, id, model);
  };
  auto agreed = protocol.agree(inputs, eval, byz, rng_);
  result_.comm.messages += agreed.messages;
  result_.comm.model_bytes += agreed.model_bytes + agreed.vote_bytes;
  if (!agreed.success) ++result_.comm.consensus_failures;
  return std::move(agreed.model);
}

void AsyncHflRunner::start_round(topology::DeviceId d, std::size_t round,
                                 std::vector<float> params) {
  auto& state = devices_[d];
  if (static_cast<std::int64_t>(round) <= state.last_started) return;
  if (state.training) {
    // Still busy with an older round; remember only the newest flag model —
    // a straggler skips rounds rather than queueing them (asynchrony).
    if (!state.pending_flag || round > state.pending_flag->first) {
      state.pending_flag = {round, std::move(params)};
    }
    return;
  }
  state.round = round;
  state.last_started = static_cast<std::int64_t>(round);
  state.round_start = sim_.now();
  state.start_params = std::move(params);
  state.training = true;
  record("train_start", round, d, tree_.depth());
  const double duration =
      config_.train_mean *
      rng_.uniform(1.0 - config_.train_jitter, 1.0 + config_.train_jitter);
  PendingEvent ev;
  ev.kind = EventKind::kTrainDone;
  ev.round = round;
  ev.device = d;
  schedule_event(duration, std::move(ev));
}

void AsyncHflRunner::schedule_event(double delay, PendingEvent ev) {
  ev.time = sim_.now() + delay;
  const double when = ev.time;
  const std::uint64_t id = next_event_id_++;
  pending_.emplace(id, std::move(ev));
  sim_.schedule_at(when, [this, id] { fire(id); });
}

void AsyncHflRunner::fire(std::uint64_t id) {
  const auto it = pending_.find(id);
  if (it == pending_.end()) return;  // cancelled alongside a sim_.clear()
  PendingEvent ev = std::move(it->second);
  pending_.erase(it);
  switch (ev.kind) {
    case EventKind::kTrainDone:
      finish_training(ev.device);
      break;
    case EventKind::kUplink:
      deliver_to_cluster(ev.round, ev.level, ev.index, ev.device, *ev.model);
      break;
    case EventKind::kAggDone:
      complete_cluster(ev.round, ev.level, ev.index);
      break;
    case EventKind::kFlagRelease:
      start_round(ev.device, ev.round, *ev.model);
      break;
    case EventKind::kGlobalDeliver:
      deliver_global(ev.device, ev.round, ev.model);
      break;
  }
}

void AsyncHflRunner::finish_training(topology::DeviceId d) {
  auto& state = devices_[d];
  const std::size_t round = state.round;
  record("train_end", round, d, tree_.depth());

  // Merge the global model that arrived during this round (Eq. 1), at the
  // local iteration proportional to its arrival instant.
  std::optional<MergeEvent> merge;
  if (state.pending_global && config_.flag_level != 0) {
    const auto& [t_arrival, model] = *state.pending_global;
    const double staleness = std::max(0.0, t_arrival - state.round_start);
    const double window = std::max(1e-9, sim_.now() - state.round_start);
    const double fraction = std::clamp(staleness / window, 0.0, 1.0);
    const auto at_iteration = static_cast<std::size_t>(
        std::floor(fraction * static_cast<double>(config_.learn.local_iters)));
    const auto flag_cluster = tree_.cluster_of(config_.flag_level, [&] {
      topology::DeviceId cursor = d;
      for (std::size_t l = tree_.depth(); l > config_.flag_level; --l) {
        cursor = tree_.cluster(l, *tree_.cluster_of(l, cursor)).leader_id();
      }
      return cursor;
    }());
    const double alpha =
        compute_alpha(config_.alpha, flag_fraction_[*flag_cluster], staleness);
    merge = MergeEvent{model, at_iteration, alpha};
    if (round < staleness_acc_.size()) {
      staleness_acc_[round] += staleness;
      ++staleness_n_[round];
    }
    if (obs::enabled()) {
      obs::global_registry()
          .histogram("async_staleness_seconds",
                     obs::exponential_bounds(0.01, 2.0, 16),
                     "Simulated global-model staleness at merge time (Eq. 1)")
          .observe(staleness);
    }
    state.pending_global.reset();
  }

  std::vector<float> update;
  {
    double sink = 0.0;
    obs::ScopedTimer timer(round < train_wall_.size() ? train_wall_[round] : sink);
    if (attack_.model_attack && attack_.mask[d]) {
      // Asynchronous model attackers cannot see peers' in-flight updates;
      // they craft from their own would-be-honest base.
      update = attack_.model_attack->craft({}, state.start_params, rng_);
    } else {
      update = trainers_[d]->train_round(state.start_params, config_.learn.local_iters,
                                         config_.learn.batch,
                                         nn::step_decay_lr(config_.learn.learning_rate,
                                                           config_.learn.lr_decay_gamma,
                                                           config_.learn.lr_decay_step,
                                                           round),
                                         merge);
    }
  }
  state.training = false;

  // Failure injection: a crashed/offline device simply never uploads this
  // round (it still resumes when the next flag model reaches it).
  if (config_.dropout_probability > 0.0 && rng_.bernoulli(config_.dropout_probability)) {
    if (state.pending_flag) {
      auto [next, params] = std::move(*state.pending_flag);
      state.pending_flag.reset();
      start_round(d, next, std::move(params));
    }
    return;
  }

  const std::size_t bottom = tree_.depth();
  const auto cluster_idx = *tree_.cluster_of(bottom, d);
  result_.comm.messages += 1;
  result_.comm.model_bytes += net::model_update_wire_size(update.size());
  PendingEvent ev;
  ev.kind = EventKind::kUplink;
  ev.round = round;
  ev.level = bottom;
  ev.index = cluster_idx;
  ev.device = d;
  ev.model = std::make_shared<const std::vector<float>>(std::move(update));
  schedule_event(config_.uplink_latency, std::move(ev));

  // A newer flag model may have landed while we trained.
  if (state.pending_flag) {
    auto [next, params] = std::move(*state.pending_flag);
    state.pending_flag.reset();
    start_round(d, next, std::move(params));
  }
}

void AsyncHflRunner::deliver_to_cluster(std::size_t round, std::size_t level,
                                        std::size_t index, topology::DeviceId sender,
                                        agg::ModelVec model) {
  auto& per_round = collect_[round];
  if (per_round.empty()) {
    per_round.resize(tree_.num_levels());
    for (std::size_t l = 0; l < tree_.num_levels(); ++l) {
      per_round[l].resize(tree_.level(l).size());
    }
  }
  auto& cs = per_round[level][index];
  cs.inputs.push_back(std::move(model));
  cs.senders.push_back(sender);
  const auto& cluster = tree_.cluster(level, index);
  const double phi = level < config_.quorum_per_level.size()
                         ? config_.quorum_per_level[level]
                         : config_.quorum;
  if (!cs.agg_scheduled && cs.inputs.size() >= quorum_count(phi, cluster.size())) {
    cs.agg_scheduled = true;
    record("agg_start", round, static_cast<std::uint32_t>(index), level);
    const double duration =
        (level == 0 ? config_.global_agg_time : config_.partial_agg_time) *
        rng_.uniform(1.0 - config_.train_jitter, 1.0 + config_.train_jitter);
    PendingEvent ev;
    ev.kind = EventKind::kAggDone;
    ev.round = round;
    ev.level = level;
    ev.index = index;
    schedule_event(duration, std::move(ev));
  }
}

void AsyncHflRunner::complete_cluster(std::size_t round, std::size_t level,
                                      std::size_t index) {
  auto& cs = collect_[round][level][index];
  const auto& cluster = tree_.cluster(level, index);
  auto model = aggregate(cs.inputs, cs.senders, cluster, level, round);
  record("agg_done", round, static_cast<std::uint32_t>(index), level);

  if (level == 0) {
    form_global(round, std::move(model));
    return;
  }

  if (level == config_.flag_level) {
    record("flag_release", round, static_cast<std::uint32_t>(index), level);
    // Release the flag model to every bottom descendant of this cluster.
    const double delay = config_.downlink_latency *
                         static_cast<double>(tree_.depth() - level);
    auto flag = std::make_shared<const std::vector<float>>(model);
    for (topology::DeviceId m : cluster.members) {
      for (topology::DeviceId d : tree_.bottom_descendants(level, m)) {
        result_.comm.messages += 1;
        result_.comm.model_bytes += net::partial_model_wire_size(flag->size());
        PendingEvent ev;
        ev.kind = EventKind::kFlagRelease;
        ev.round = round + 1;
        ev.device = d;
        ev.model = flag;
        schedule_event(delay, std::move(ev));
      }
    }
  }

  const auto parent = tree_.parent_cluster_of(level, index);
  if (!parent) throw std::logic_error("async: intermediate cluster without parent");
  result_.comm.messages += 1;
  result_.comm.model_bytes += net::model_update_wire_size(model.size());
  // The partial model travels upward under the identity of this cluster's
  // leader (the member representing it in the parent cluster).
  PendingEvent ev;
  ev.kind = EventKind::kUplink;
  ev.round = round;
  ev.level = level - 1;
  ev.index = *parent;
  ev.device = cluster.leader_id();
  ev.model = std::make_shared<const std::vector<float>>(std::move(model));
  schedule_event(config_.uplink_latency, std::move(ev));
}

void AsyncHflRunner::form_global(std::size_t round, agg::ModelVec model) {
  last_global_ = model;

  AsyncRoundRecord record;
  record.round = round;
  record.t_formed = sim_.now();
  record.accuracy = evaluate_params(scratch_, model, test_set_);
  result_.rounds.push_back(record);
  comm_delta_.emplace_back(result_.comm.messages - last_messages_,
                           result_.comm.model_bytes - last_bytes_);
  last_messages_ = result_.comm.messages;
  last_bytes_ = result_.comm.model_bytes;
  this->record("global_formed", round, 0, 0);
  obs::blackbox::record(obs::blackbox::EventType::kRound, 0, 0, round);
  obs::blackbox::note_progress(round + 1);
  if (ledger_) {
    // One ledger round per global formation; overlapping-round observations
    // fold into whichever window they landed in.
    ledger_->commit_round();
    std::vector<double> byz_scores;
    std::vector<double> honest_scores;
    for (std::size_t d = 0; d < tree_.num_devices(); ++d) {
      (attack_.mask[d] ? byz_scores : honest_scores).push_back(ledger_->suspicion(d));
    }
    suspicion_auc_per_global_.push_back(obs::separation_auc(byz_scores, honest_scores));
    std::vector<std::pair<std::size_t, obs::FilterQuality>> quality;
    for (const auto& [level, rule] : bra_by_level_) {
      quality.emplace_back(level, obs::filter_quality(round_flagged_[level], attack_.mask));
    }
    quality_per_global_.push_back(std::move(quality));
    for (auto& mask : round_flagged_) mask.assign(mask.size(), false);
  }
  ++globals_formed_;
  const bool halting =
      config_.halt_after_globals != 0 && globals_formed_ >= config_.halt_after_globals;
  const bool snapshot_due =
      config_.checkpoint != nullptr &&
      (globals_formed_ % std::max<std::size_t>(config_.checkpoint_every, 1) == 0 ||
       globals_formed_ >= config_.rounds || halting);
  if (globals_formed_ >= config_.rounds) {
    sim_.clear();  // stop the simulation; remaining in-flight work is moot
    pending_.clear();
    if (snapshot_due) save_checkpoint(round);
    return;
  }

  const double delay =
      config_.downlink_latency * static_cast<double>(tree_.depth());
  auto shared = std::make_shared<const std::vector<float>>(std::move(model));
  for (topology::DeviceId d = 0; d < tree_.num_devices(); ++d) {
    result_.comm.messages += 1;
    result_.comm.model_bytes += net::partial_model_wire_size(shared->size());
    PendingEvent ev;
    ev.kind = EventKind::kGlobalDeliver;
    ev.round = round;
    ev.device = d;
    ev.model = shared;
    schedule_event(delay, std::move(ev));
  }

  // The snapshot lands after the dissemination is scheduled, so the pending
  // map it carries includes every delivery a full run would have in flight
  // at this instant — the invariant behind bit-identical resume.
  if (snapshot_due) save_checkpoint(round);
  if (halting) {
    sim_.clear();
    pending_.clear();
    // Simulated crash point for the kill/resume tests.
    if (config_.checkpoint != nullptr) config_.checkpoint->flush();
  }
}

void AsyncHflRunner::deliver_global(topology::DeviceId d, std::size_t round,
                                    const std::shared_ptr<const std::vector<float>>& model) {
  auto& state = devices_[d];
  if (config_.flag_level == 0) {
    start_round(d, round + 1, *model);
    return;
  }
  // Recorded and merged at the device's next training completion (Eq. 1).
  state.pending_global = {sim_.now(), *model};
}

void AsyncHflRunner::save_checkpoint(std::size_t round) {
  ckpt::Container c;
  c.producer = "async";
  c.round = round;
  {
    ckpt::PayloadWriter w;
    w.f32vec(last_global_);
    c.chunks.push_back({ckpt::kTagParams, w.take()});
  }
  {
    std::vector<ckpt::RngState> states;
    states.reserve(trainers_.size() + 1);
    states.push_back(rng_.state());
    for (const auto& t : trainers_) states.push_back(t->rng_state());
    c.chunks.push_back({ckpt::kTagRngStates, ckpt::encode_rng_states(states)});
  }
  {
    ckpt::PayloadWriter w;
    std::vector<double> losses;
    losses.reserve(trainers_.size());
    for (const auto& t : trainers_) losses.push_back(t->last_loss());
    w.f64vec(losses);
    c.chunks.push_back({ckpt::kTagLosses, w.take()});
  }
  {
    // DEVS: full per-device actor state, not just start parameters.
    ckpt::PayloadWriter w;
    w.u64(devices_.size());
    for (const auto& s : devices_) {
      w.f32vec(s.start_params);
      w.f64(s.round_start);
      w.u64(s.round);
      w.u64(static_cast<std::uint64_t>(s.last_started));
      w.u8(s.training ? 1 : 0);
      w.u8(s.pending_flag ? 1 : 0);
      if (s.pending_flag) {
        w.u64(s.pending_flag->first);
        w.f32vec(s.pending_flag->second);
      }
      w.u8(s.pending_global ? 1 : 0);
      if (s.pending_global) {
        w.f64(s.pending_global->first);
        w.f32vec(s.pending_global->second);
      }
    }
    c.chunks.push_back({ckpt::kTagDevices, w.take()});
  }
  {
    // EVNT: the in-flight event registry, in id (= schedule) order.
    ckpt::PayloadWriter w;
    w.u64(next_event_id_);
    w.u64(pending_.size());
    for (const auto& [id, ev] : pending_) {
      w.u64(id);
      w.u8(static_cast<std::uint8_t>(ev.kind));
      w.f64(ev.time);
      w.u64(ev.round);
      w.u64(ev.level);
      w.u64(ev.index);
      w.u64(ev.device);
      w.u8(ev.model ? 1 : 0);
      if (ev.model) w.f32vec(*ev.model);
    }
    c.chunks.push_back({ckpt::kTagEvents, w.take()});
  }
  {
    // XTRA: partially collected cluster inputs, per (round, level, cluster).
    ckpt::PayloadWriter w;
    w.u64(collect_.size());
    for (const auto& [r, levels] : collect_) {
      w.u64(r);
      w.u64(levels.size());
      for (const auto& clusters : levels) {
        w.u64(clusters.size());
        for (const auto& cs : clusters) {
          w.u64(cs.inputs.size());
          for (const auto& m : cs.inputs) w.f32vec(m);
          w.u64(cs.senders.size());
          for (const auto sender : cs.senders) w.u64(sender);
          w.u8(cs.agg_scheduled ? 1 : 0);
        }
      }
    }
    c.chunks.push_back({ckpt::kTagExtra, w.take()});
  }
  if (ledger_) c.chunks.push_back({ckpt::kTagLedger, ckpt::encode_ledger(*ledger_)});
  {
    ckpt::PayloadWriter w;
    w.u64(globals_formed_);
    w.u64(result_.rounds.size());
    for (const auto& r : result_.rounds) {
      w.u64(r.round);
      w.f64(r.t_formed);
      w.f64(r.accuracy);
      w.f64(r.mean_staleness);
    }
    w.u64(result_.comm.messages);
    w.u64(result_.comm.model_bytes);
    w.u64(result_.comm.consensus_failures);
    w.u64(last_messages_);
    w.u64(last_bytes_);
    w.u64(comm_delta_.size());
    for (const auto& [m, b] : comm_delta_) {
      w.u64(m);
      w.u64(b);
    }
    w.f64vec(staleness_acc_);
    w.u64vec(std::vector<std::uint64_t>(staleness_n_.begin(), staleness_n_.end()));
    w.f64vec(train_wall_);
    w.f64vec(agg_wall_);
    w.f64vec(suspicion_auc_per_global_);
    w.u64(quality_per_global_.size());
    for (const auto& per : quality_per_global_) {
      w.u64(per.size());
      for (const auto& [level, q] : per) {
        w.u64(level);
        w.f64(q.precision);
        w.f64(q.recall);
        w.f64(q.f1);
        w.u64(q.flagged);
        w.u64(q.true_positives);
        w.u64(q.byzantine);
      }
    }
    w.u64(round_flagged_.size());
    for (const auto& mask : round_flagged_) {
      w.u64(mask.size());
      for (const bool flagged : mask) w.u8(flagged ? 1 : 0);
    }
    w.u64(result_.trace.size());
    for (const auto& ev : result_.trace) {
      w.f64(ev.time);
      w.u64(ev.round);
      w.u8(trace_kind_code(ev.kind));
      w.u32(ev.subject);
      w.u64(ev.level);
    }
    c.chunks.push_back({ckpt::kTagResult, w.take()});
  }
  config_.checkpoint->save(round, ckpt::encode_container(c));
}

bool AsyncHflRunner::restore_checkpoint() {
  auto snap = config_.checkpoint->load_latest();
  if (!snap.has_value()) return false;
  if (snap->producer != "async") {
    throw ckpt::CkptError("checkpoint produced by \"" + snap->producer +
                          "\", expected \"async\"");
  }
  {
    ckpt::PayloadReader r(snap->require(ckpt::kTagParams).payload);
    last_global_ = r.f32vec();
    r.expect_done();
  }
  const auto states = ckpt::decode_rng_states(snap->require(ckpt::kTagRngStates).payload);
  if (states.size() != trainers_.size() + 1) {
    throw ckpt::CkptError("RNGS chunk stream count mismatch");
  }
  rng_.set_state(states[0]);
  for (std::size_t d = 0; d < trainers_.size(); ++d) {
    trainers_[d]->set_rng_state(states[d + 1]);
  }
  {
    ckpt::PayloadReader r(snap->require(ckpt::kTagLosses).payload);
    const auto losses = r.f64vec();
    r.expect_done();
    if (losses.size() != trainers_.size()) {
      throw ckpt::CkptError("LOSS chunk trainer count mismatch");
    }
    for (std::size_t d = 0; d < trainers_.size(); ++d) {
      trainers_[d]->set_last_loss(losses[d]);
    }
  }
  {
    ckpt::PayloadReader r(snap->require(ckpt::kTagDevices).payload);
    if (r.u64() != devices_.size()) {
      throw ckpt::CkptError("DEVS chunk device count mismatch");
    }
    for (auto& s : devices_) {
      s.start_params = r.f32vec();
      s.round_start = r.f64();
      s.round = r.u64();
      s.last_started = static_cast<std::int64_t>(r.u64());
      s.training = r.u8() != 0;
      s.pending_flag.reset();
      if (r.u8() != 0) {
        const std::size_t flag_round = r.u64();
        s.pending_flag = {flag_round, r.f32vec()};
      }
      s.pending_global.reset();
      if (r.u8() != 0) {
        const double arrival = r.f64();
        s.pending_global = {arrival, r.f32vec()};
      }
    }
    r.expect_done();
  }
  {
    ckpt::PayloadReader r(snap->require(ckpt::kTagEvents).payload);
    next_event_id_ = r.u64();
    const std::uint64_t count = r.u64();
    pending_.clear();
    for (std::uint64_t i = 0; i < count; ++i) {
      const std::uint64_t id = r.u64();
      PendingEvent ev;
      const std::uint8_t kind = r.u8();
      if (kind > static_cast<std::uint8_t>(EventKind::kGlobalDeliver)) {
        throw ckpt::CkptError("EVNT chunk event kind out of range");
      }
      ev.kind = static_cast<EventKind>(kind);
      ev.time = r.f64();
      ev.round = r.u64();
      ev.level = r.u64();
      ev.index = r.u64();
      ev.device = static_cast<topology::DeviceId>(r.u64());
      if (r.u8() != 0) {
        ev.model = std::make_shared<const std::vector<float>>(r.f32vec());
      }
      pending_.emplace(id, std::move(ev));
    }
    r.expect_done();
  }
  {
    ckpt::PayloadReader r(snap->require(ckpt::kTagExtra).payload);
    collect_.clear();
    const std::uint64_t rounds = r.u64();
    for (std::uint64_t i = 0; i < rounds; ++i) {
      const std::size_t key = r.u64();
      auto& levels = collect_[key];
      levels.resize(r.u64());
      for (auto& clusters : levels) {
        clusters.resize(r.u64());
        for (auto& cs : clusters) {
          cs.inputs.resize(r.u64());
          for (auto& m : cs.inputs) m = r.f32vec();
          cs.senders.resize(r.u64());
          for (auto& sender : cs.senders) {
            sender = static_cast<topology::DeviceId>(r.u64());
          }
          cs.agg_scheduled = r.u8() != 0;
        }
      }
    }
    r.expect_done();
  }
  if (ledger_) {
    if (const auto* chunk = snap->find(ckpt::kTagLedger)) {
      ckpt::restore_ledger(chunk->payload, *ledger_);
    }
  }
  {
    ckpt::PayloadReader r(snap->require(ckpt::kTagResult).payload);
    globals_formed_ = r.u64();
    result_.rounds.resize(r.u64());
    for (auto& rr : result_.rounds) {
      rr.round = r.u64();
      rr.t_formed = r.f64();
      rr.accuracy = r.f64();
      rr.mean_staleness = r.f64();
    }
    result_.comm.messages = r.u64();
    result_.comm.model_bytes = r.u64();
    result_.comm.consensus_failures = r.u64();
    last_messages_ = r.u64();
    last_bytes_ = r.u64();
    comm_delta_.resize(r.u64());
    for (auto& [m, b] : comm_delta_) {
      m = r.u64();
      b = r.u64();
    }
    const auto staleness_acc = r.f64vec();
    const auto staleness_n = r.u64vec();
    const auto train_wall = r.f64vec();
    const auto agg_wall = r.f64vec();
    if (staleness_acc.size() != staleness_acc_.size() ||
        staleness_n.size() != staleness_n_.size() ||
        train_wall.size() != train_wall_.size() ||
        agg_wall.size() != agg_wall_.size()) {
      throw ckpt::CkptError("RSLT chunk round-accumulator size mismatch "
                            "(resume with the same configured rounds)");
    }
    staleness_acc_ = staleness_acc;
    staleness_n_.assign(staleness_n.begin(), staleness_n.end());
    train_wall_ = train_wall;
    agg_wall_ = agg_wall;
    suspicion_auc_per_global_ = r.f64vec();
    quality_per_global_.resize(r.u64());
    for (auto& per : quality_per_global_) {
      per.resize(r.u64());
      for (auto& [level, q] : per) {
        level = r.u64();
        q.precision = r.f64();
        q.recall = r.f64();
        q.f1 = r.f64();
        q.flagged = r.u64();
        q.true_positives = r.u64();
        q.byzantine = r.u64();
      }
    }
    const std::uint64_t flag_levels = r.u64();
    if (!round_flagged_.empty() && flag_levels != round_flagged_.size()) {
      throw ckpt::CkptError("RSLT chunk round_flagged level count mismatch");
    }
    for (std::uint64_t l = 0; l < flag_levels; ++l) {
      const std::uint64_t n = r.u64();
      std::vector<bool> mask(n);
      for (std::uint64_t d = 0; d < n; ++d) mask[d] = r.u8() != 0;
      if (l < round_flagged_.size()) {
        if (round_flagged_[l].size() != mask.size()) {
          throw ckpt::CkptError("RSLT chunk round_flagged device count mismatch");
        }
        round_flagged_[l] = std::move(mask);
      }
    }
    result_.trace.resize(r.u64());
    for (auto& ev : result_.trace) {
      ev.time = r.f64();
      ev.round = r.u64();
      ev.kind = trace_kind_from_code(r.u8());
      ev.subject = r.u32();
      ev.level = r.u64();
    }
    r.expect_done();
  }

  // Re-arm the simulator: one thunk per restored event, in id order, which
  // reproduces the original (time, schedule-order) firing sequence.
  for (const auto& [id, ev] : pending_) {
    sim_.schedule_at(ev.time, [this, id] { fire(id); });
  }
  return true;
}

AsyncRunResult AsyncHflRunner::run() {
  bool resumed = false;
  if (config_.checkpoint != nullptr && config_.resume) {
    resumed = restore_checkpoint();
  }
  if (!resumed) {
    const auto init = scratch_.flatten();
    for (topology::DeviceId d = 0; d < tree_.num_devices(); ++d) {
      start_round(d, 0, init);
    }
  }
  if (config_.deadline > 0.0) {
    sim_.run_until(config_.deadline);
  } else {
    sim_.run();
  }

  for (auto& record : result_.rounds) {
    if (record.round < staleness_n_.size() && staleness_n_[record.round] > 0) {
      record.mean_staleness = staleness_acc_[record.round] /
                              static_cast<double>(staleness_n_[record.round]);
    }
  }
  result_.final_accuracy = result_.rounds.empty() ? 0.0 : result_.rounds.back().accuracy;
  result_.total_time = result_.rounds.empty() ? 0.0 : result_.rounds.back().t_formed;

  if (config_.recorder != nullptr) {
    for (std::size_t i = 0; i < result_.rounds.size(); ++i) {
      const auto& r = result_.rounds[i];
      obs::RoundRecord& rec = config_.recorder->begin_round("async", r.round);
      rec.set("t_formed", r.t_formed);
      rec.set("accuracy", r.accuracy);
      rec.set("mean_staleness", r.mean_staleness);
      rec.set("train_s", r.round < train_wall_.size() ? train_wall_[r.round] : 0.0);
      rec.set("agg_s", r.round < agg_wall_.size() ? agg_wall_[r.round] : 0.0);
      rec.set("messages", static_cast<double>(comm_delta_[i].first));
      rec.set("model_bytes", static_cast<double>(comm_delta_[i].second));
      if (i < suspicion_auc_per_global_.size()) {
        rec.set("suspicion_auc", suspicion_auc_per_global_[i]);
      }
      if (i < quality_per_global_.size()) {
        for (const auto& [level, q] : quality_per_global_[i]) {
          const std::string suffix = "_l" + std::to_string(level);
          rec.set("filter_precision" + suffix, q.precision);
          rec.set("filter_recall" + suffix, q.recall);
          rec.set("filter_f1" + suffix, q.f1);
        }
      }
    }
    if (ledger_) {
      for (const auto& ns : ledger_->snapshot()) {
        obs::RoundRecord& rec = config_.recorder->begin_round(
            "async_suspicion", ledger_->rounds_committed());
        rec.set("node", static_cast<double>(ns.node));
        rec.set("suspicion", ns.total);
        rec.set("filter_events", static_cast<double>(ns.filter_events));
        rec.set("observations", static_cast<double>(ns.observations));
        rec.set("byzantine", attack_.mask[ns.node] ? 1.0 : 0.0);
        for (std::size_t l = 0; l < ns.per_level.size(); ++l) {
          rec.set("suspicion_l" + std::to_string(l), ns.per_level[l]);
        }
      }
    }
  }
  if (obs::enabled()) {
    obs::global_registry()
        .counter("async_globals_total", "Global models formed by the async runner")
        .add(result_.rounds.size());
  }
  return result_;
}

}  // namespace abdhfl::core
