#include "core/async_runner.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "consensus/committee.hpp"
#include "consensus/pbft.hpp"
#include "net/wire.hpp"
#include "nn/sgd.hpp"
#include "obs/metrics.hpp"
#include "obs/record.hpp"

namespace abdhfl::core {

namespace {

std::size_t quorum_count(double quorum, std::size_t cluster_size) {
  auto k = static_cast<std::size_t>(
      std::ceil(quorum * static_cast<double>(cluster_size)));
  return std::clamp<std::size_t>(k, 1, cluster_size);
}

}  // namespace

AsyncHflRunner::AsyncHflRunner(const topology::HflTree& tree,
                               std::vector<data::Dataset> shards, data::Dataset test_set,
                               std::vector<data::Dataset> top_validation,
                               const nn::Mlp& prototype, AsyncHflConfig config,
                               AttackSetup attack, std::uint64_t seed)
    : tree_(tree),
      test_set_(std::move(test_set)),
      top_validation_(std::move(top_validation)),
      scratch_(prototype.clone()),
      config_(std::move(config)),
      attack_(std::move(attack)),
      rng_(seed) {
  if (shards.size() != tree_.num_devices()) {
    throw std::invalid_argument("AsyncHflRunner: one shard per device required");
  }
  if (attack_.mask.empty()) attack_.mask.assign(tree_.num_devices(), false);
  if (config_.flag_level >= tree_.depth()) {
    throw std::invalid_argument("AsyncHflRunner: flag level must be < bottom level");
  }
  if (config_.quorum <= 0.0 || config_.quorum > 1.0) {
    throw std::invalid_argument("AsyncHflRunner: quorum out of (0,1]");
  }
  if (top_validation_.size() != tree_.cluster(0, 0).size()) {
    throw std::invalid_argument("AsyncHflRunner: need one validation shard per top node");
  }

  std::size_t total_samples = 0;
  for (std::size_t d = 0; d < shards.size(); ++d) {
    if (attack_.mask[d] && !attack_.model_attack) {
      attacks::poison_dataset(shards[d], attack_.poison, rng_);
    }
  }
  trainers_.reserve(shards.size());
  for (auto& shard : shards) {
    total_samples += shard.size();
    trainers_.push_back(
        std::make_unique<LocalTrainer>(std::move(shard), prototype.clone(), rng_.split()));
  }

  const auto& flag_clusters = tree_.level(config_.flag_level);
  flag_fraction_.resize(flag_clusters.size(), 0.0);
  for (std::size_t j = 0; j < flag_clusters.size(); ++j) {
    std::size_t covered = 0;
    for (topology::DeviceId m : flag_clusters[j].members) {
      for (topology::DeviceId d : tree_.bottom_descendants(config_.flag_level, m)) {
        covered += trainers_[d]->shard_size();
      }
    }
    flag_fraction_[j] = total_samples == 0 ? 0.0
                                           : static_cast<double>(covered) /
                                                 static_cast<double>(total_samples);
  }

  auto make_bra = [](const LevelScheme& scheme) -> std::unique_ptr<agg::Aggregator> {
    if (scheme.kind != AggKind::kBra) return nullptr;
    return agg::make_aggregator(scheme.rule, scheme.byzantine_fraction,
                                scheme.agg_threads);
  };
  auto make_cba =
      [](const LevelScheme& scheme) -> std::unique_ptr<consensus::ConsensusProtocol> {
    if (scheme.kind != AggKind::kCba) return nullptr;
    return consensus::make_consensus(scheme.rule);
  };
  for (std::size_t l = 0; l < tree_.num_levels(); ++l) {
    const auto& scheme = scheme_for(l);
    if (auto bra = make_bra(scheme)) bra_by_level_[l] = std::move(bra);
    if (auto cba = make_cba(scheme)) cba_by_level_[l] = std::move(cba);
  }

  if (config_.recorder != nullptr) {
    ledger_ = std::make_unique<obs::SuspicionLedger>(tree_.num_devices(),
                                                     tree_.num_levels());
    for (auto& [level, rule] : bra_by_level_) rule->set_forensics(true);
    round_flagged_.assign(tree_.num_levels(),
                          std::vector<bool>(tree_.num_devices(), false));
  }

  devices_.resize(tree_.num_devices());
  last_global_ = scratch_.flatten();
  staleness_acc_.assign(config_.rounds, 0.0);
  staleness_n_.assign(config_.rounds, 0);
  train_wall_.assign(config_.rounds, 0.0);
  agg_wall_.assign(config_.rounds, 0.0);
}

void AsyncHflRunner::record(const char* kind, std::size_t round, std::uint32_t subject,
                            std::size_t level) {
  if (!config_.trace) return;
  result_.trace.push_back(TraceEvent{sim_.now(), round, kind, subject, level});
}

double AsyncHflRunner::eval_voter(std::size_t level, topology::DeviceId voter,
                                  const agg::ModelVec& model) {
  if (level == 0) {
    const auto& top = tree_.cluster(0, 0);
    const auto it = std::find(top.members.begin(), top.members.end(), voter);
    if (it == top.members.end()) throw std::logic_error("async: voter not a top node");
    return evaluate_params(scratch_, model,
                           top_validation_[static_cast<std::size_t>(
                               it - top.members.begin())]);
  }
  return evaluate_params(scratch_, model, trainers_[voter]->shard());
}

const LevelScheme& AsyncHflRunner::scheme_for(std::size_t level) const {
  if (level == 0) return config_.scheme.global;
  const auto it = config_.level_overrides.find(level);
  return it != config_.level_overrides.end() ? it->second : config_.scheme.partial;
}

agg::ModelVec AsyncHflRunner::aggregate(const std::vector<agg::ModelVec>& inputs,
                                        const std::vector<topology::DeviceId>& senders,
                                        const topology::Cluster& cluster,
                                        std::size_t level, std::size_t round) {
  double sink = 0.0;
  obs::ScopedTimer timer(round < agg_wall_.size() ? agg_wall_[round] : sink);
  const auto& scheme = scheme_for(level);
  if (scheme.kind == AggKind::kBra) {
    agg::Aggregator& rule = *bra_by_level_.at(level);
    rule.set_reference(last_global_);
    auto out = rule.aggregate(inputs);
    const agg::AggTelemetry& rt = rule.last_telemetry();
    if (ledger_ && !rt.verdicts.empty() && senders.size() == rt.verdicts.size()) {
      std::vector<double> scores(rt.verdicts.size());
      for (std::size_t k = 0; k < rt.verdicts.size(); ++k) {
        scores[k] = rt.verdicts[k].score;
      }
      const auto rel = obs::relative_scores(scores);
      for (std::size_t k = 0; k < rt.verdicts.size(); ++k) {
        const bool kept = rt.verdicts[k].kept;
        for (topology::DeviceId d : tree_.bottom_descendants(level, senders[k])) {
          ledger_->observe(d, level, kept, rel[k]);
          if (!kept) round_flagged_[level][d] = true;
        }
      }
    }
    result_.comm.messages += inputs.size() + cluster.size();
    result_.comm.model_bytes +=
        inputs.size() * net::model_update_wire_size(out.size()) +
        cluster.size() * net::partial_model_wire_size(out.size());
    if (attack_.model_attack && attack_.mask[cluster.leader_id()]) {
      out = attack_.model_attack->craft(inputs, out, rng_);
    }
    return out;
  }

  consensus::ConsensusProtocol& protocol = *cba_by_level_.at(level);
  if (auto* committee = dynamic_cast<consensus::CommitteeConsensus*>(&protocol)) {
    committee->set_round_salt(round);
  } else if (auto* pbft = dynamic_cast<consensus::PbftConsensus*>(&protocol)) {
    pbft->set_round_salt(round);
  }
  // Voter identities: use the cluster members in order, clipped to the
  // number of collected inputs (quorum may be partial).
  const bool adversarial = static_cast<bool>(attack_.model_attack);
  std::vector<bool> byz(inputs.size(), false);
  for (std::size_t i = 0; i < inputs.size() && i < cluster.size(); ++i) {
    byz[i] = adversarial && attack_.mask[cluster.members[i]];
  }
  auto eval = [&](std::size_t voter, const agg::ModelVec& model) {
    const topology::DeviceId id = cluster.members[std::min(voter, cluster.size() - 1)];
    return eval_voter(level, id, model);
  };
  auto agreed = protocol.agree(inputs, eval, byz, rng_);
  result_.comm.messages += agreed.messages;
  result_.comm.model_bytes += agreed.model_bytes + agreed.vote_bytes;
  if (!agreed.success) ++result_.comm.consensus_failures;
  return std::move(agreed.model);
}

void AsyncHflRunner::start_round(topology::DeviceId d, std::size_t round,
                                 std::vector<float> params) {
  auto& state = devices_[d];
  if (static_cast<std::int64_t>(round) <= state.last_started) return;
  if (state.training) {
    // Still busy with an older round; remember only the newest flag model —
    // a straggler skips rounds rather than queueing them (asynchrony).
    if (!state.pending_flag || round > state.pending_flag->first) {
      state.pending_flag = {round, std::move(params)};
    }
    return;
  }
  state.round = round;
  state.last_started = static_cast<std::int64_t>(round);
  state.round_start = sim_.now();
  state.start_params = std::move(params);
  state.training = true;
  record("train_start", round, d, tree_.depth());
  const double duration =
      config_.train_mean *
      rng_.uniform(1.0 - config_.train_jitter, 1.0 + config_.train_jitter);
  sim_.schedule_after(duration, [this, d] { finish_training(d); });
}

void AsyncHflRunner::finish_training(topology::DeviceId d) {
  auto& state = devices_[d];
  const std::size_t round = state.round;
  record("train_end", round, d, tree_.depth());

  // Merge the global model that arrived during this round (Eq. 1), at the
  // local iteration proportional to its arrival instant.
  std::optional<MergeEvent> merge;
  if (state.pending_global && config_.flag_level != 0) {
    const auto& [t_arrival, model] = *state.pending_global;
    const double staleness = std::max(0.0, t_arrival - state.round_start);
    const double window = std::max(1e-9, sim_.now() - state.round_start);
    const double fraction = std::clamp(staleness / window, 0.0, 1.0);
    const auto at_iteration = static_cast<std::size_t>(
        std::floor(fraction * static_cast<double>(config_.learn.local_iters)));
    const auto flag_cluster = tree_.cluster_of(config_.flag_level, [&] {
      topology::DeviceId cursor = d;
      for (std::size_t l = tree_.depth(); l > config_.flag_level; --l) {
        cursor = tree_.cluster(l, *tree_.cluster_of(l, cursor)).leader_id();
      }
      return cursor;
    }());
    const double alpha =
        compute_alpha(config_.alpha, flag_fraction_[*flag_cluster], staleness);
    merge = MergeEvent{model, at_iteration, alpha};
    if (round < staleness_acc_.size()) {
      staleness_acc_[round] += staleness;
      ++staleness_n_[round];
    }
    if (obs::enabled()) {
      obs::global_registry()
          .histogram("async_staleness_seconds",
                     obs::exponential_bounds(0.01, 2.0, 16),
                     "Simulated global-model staleness at merge time (Eq. 1)")
          .observe(staleness);
    }
    state.pending_global.reset();
  }

  std::vector<float> update;
  {
    double sink = 0.0;
    obs::ScopedTimer timer(round < train_wall_.size() ? train_wall_[round] : sink);
    if (attack_.model_attack && attack_.mask[d]) {
      // Asynchronous model attackers cannot see peers' in-flight updates;
      // they craft from their own would-be-honest base.
      update = attack_.model_attack->craft({}, state.start_params, rng_);
    } else {
      update = trainers_[d]->train_round(state.start_params, config_.learn.local_iters,
                                         config_.learn.batch,
                                         nn::step_decay_lr(config_.learn.learning_rate,
                                                           config_.learn.lr_decay_gamma,
                                                           config_.learn.lr_decay_step,
                                                           round),
                                         merge);
    }
  }
  state.training = false;

  // Failure injection: a crashed/offline device simply never uploads this
  // round (it still resumes when the next flag model reaches it).
  if (config_.dropout_probability > 0.0 && rng_.bernoulli(config_.dropout_probability)) {
    if (state.pending_flag) {
      auto [next, params] = std::move(*state.pending_flag);
      state.pending_flag.reset();
      start_round(d, next, std::move(params));
    }
    return;
  }

  const std::size_t bottom = tree_.depth();
  const auto cluster_idx = *tree_.cluster_of(bottom, d);
  result_.comm.messages += 1;
  result_.comm.model_bytes += net::model_update_wire_size(update.size());
  sim_.schedule_after(config_.uplink_latency, [this, round, bottom, cluster_idx, d,
                                               update = std::move(update)]() mutable {
    deliver_to_cluster(round, bottom, cluster_idx, d, std::move(update));
  });

  // A newer flag model may have landed while we trained.
  if (state.pending_flag) {
    auto [next, params] = std::move(*state.pending_flag);
    state.pending_flag.reset();
    start_round(d, next, std::move(params));
  }
}

void AsyncHflRunner::deliver_to_cluster(std::size_t round, std::size_t level,
                                        std::size_t index, topology::DeviceId sender,
                                        agg::ModelVec model) {
  auto& per_round = collect_[round];
  if (per_round.empty()) {
    per_round.resize(tree_.num_levels());
    for (std::size_t l = 0; l < tree_.num_levels(); ++l) {
      per_round[l].resize(tree_.level(l).size());
    }
  }
  auto& cs = per_round[level][index];
  cs.inputs.push_back(std::move(model));
  cs.senders.push_back(sender);
  const auto& cluster = tree_.cluster(level, index);
  const double phi = level < config_.quorum_per_level.size()
                         ? config_.quorum_per_level[level]
                         : config_.quorum;
  if (!cs.agg_scheduled && cs.inputs.size() >= quorum_count(phi, cluster.size())) {
    cs.agg_scheduled = true;
    record("agg_start", round, static_cast<std::uint32_t>(index), level);
    const double duration =
        (level == 0 ? config_.global_agg_time : config_.partial_agg_time) *
        rng_.uniform(1.0 - config_.train_jitter, 1.0 + config_.train_jitter);
    sim_.schedule_after(duration,
                        [this, round, level, index] { complete_cluster(round, level, index); });
  }
}

void AsyncHflRunner::complete_cluster(std::size_t round, std::size_t level,
                                      std::size_t index) {
  auto& cs = collect_[round][level][index];
  const auto& cluster = tree_.cluster(level, index);
  auto model = aggregate(cs.inputs, cs.senders, cluster, level, round);
  record("agg_done", round, static_cast<std::uint32_t>(index), level);

  if (level == 0) {
    form_global(round, std::move(model));
    return;
  }

  if (level == config_.flag_level) {
    record("flag_release", round, static_cast<std::uint32_t>(index), level);
    // Release the flag model to every bottom descendant of this cluster.
    const double delay = config_.downlink_latency *
                         static_cast<double>(tree_.depth() - level);
    auto flag = std::make_shared<const std::vector<float>>(model);
    for (topology::DeviceId m : cluster.members) {
      for (topology::DeviceId d : tree_.bottom_descendants(level, m)) {
        result_.comm.messages += 1;
        result_.comm.model_bytes += net::partial_model_wire_size(flag->size());
        sim_.schedule_after(delay, [this, d, round, flag] {
          start_round(d, round + 1, *flag);
        });
      }
    }
  }

  const auto parent = tree_.parent_cluster_of(level, index);
  if (!parent) throw std::logic_error("async: intermediate cluster without parent");
  result_.comm.messages += 1;
  result_.comm.model_bytes += net::model_update_wire_size(model.size());
  // The partial model travels upward under the identity of this cluster's
  // leader (the member representing it in the parent cluster).
  sim_.schedule_after(config_.uplink_latency,
                      [this, round, level, parent = *parent,
                       sender = cluster.leader_id(),
                       model = std::move(model)]() mutable {
    deliver_to_cluster(round, level - 1, parent, sender, std::move(model));
  });
}

void AsyncHflRunner::form_global(std::size_t round, agg::ModelVec model) {
  last_global_ = model;

  AsyncRoundRecord record;
  record.round = round;
  record.t_formed = sim_.now();
  record.accuracy = evaluate_params(scratch_, model, test_set_);
  result_.rounds.push_back(record);
  comm_delta_.emplace_back(result_.comm.messages - last_messages_,
                           result_.comm.model_bytes - last_bytes_);
  last_messages_ = result_.comm.messages;
  last_bytes_ = result_.comm.model_bytes;
  this->record("global_formed", round, 0, 0);
  if (ledger_) {
    // One ledger round per global formation; overlapping-round observations
    // fold into whichever window they landed in.
    ledger_->commit_round();
    std::vector<double> byz_scores;
    std::vector<double> honest_scores;
    for (std::size_t d = 0; d < tree_.num_devices(); ++d) {
      (attack_.mask[d] ? byz_scores : honest_scores).push_back(ledger_->suspicion(d));
    }
    suspicion_auc_per_global_.push_back(obs::separation_auc(byz_scores, honest_scores));
    std::vector<std::pair<std::size_t, obs::FilterQuality>> quality;
    for (const auto& [level, rule] : bra_by_level_) {
      quality.emplace_back(level, obs::filter_quality(round_flagged_[level], attack_.mask));
    }
    quality_per_global_.push_back(std::move(quality));
    for (auto& mask : round_flagged_) mask.assign(mask.size(), false);
  }
  ++globals_formed_;
  if (globals_formed_ >= config_.rounds) {
    sim_.clear();  // stop the simulation; remaining in-flight work is moot
    return;
  }

  const double delay =
      config_.downlink_latency * static_cast<double>(tree_.depth());
  auto shared = std::make_shared<const std::vector<float>>(std::move(model));
  for (topology::DeviceId d = 0; d < tree_.num_devices(); ++d) {
    result_.comm.messages += 1;
    result_.comm.model_bytes += net::partial_model_wire_size(shared->size());
    sim_.schedule_after(delay, [this, d, round, shared] {
      deliver_global(d, round, shared);
    });
  }
}

void AsyncHflRunner::deliver_global(topology::DeviceId d, std::size_t round,
                                    const std::shared_ptr<const std::vector<float>>& model) {
  auto& state = devices_[d];
  if (config_.flag_level == 0) {
    start_round(d, round + 1, *model);
    return;
  }
  // Recorded and merged at the device's next training completion (Eq. 1).
  state.pending_global = {sim_.now(), *model};
}

AsyncRunResult AsyncHflRunner::run() {
  const auto init = scratch_.flatten();
  for (topology::DeviceId d = 0; d < tree_.num_devices(); ++d) {
    start_round(d, 0, init);
  }
  if (config_.deadline > 0.0) {
    sim_.run_until(config_.deadline);
  } else {
    sim_.run();
  }

  for (auto& record : result_.rounds) {
    if (record.round < staleness_n_.size() && staleness_n_[record.round] > 0) {
      record.mean_staleness = staleness_acc_[record.round] /
                              static_cast<double>(staleness_n_[record.round]);
    }
  }
  result_.final_accuracy = result_.rounds.empty() ? 0.0 : result_.rounds.back().accuracy;
  result_.total_time = result_.rounds.empty() ? 0.0 : result_.rounds.back().t_formed;

  if (config_.recorder != nullptr) {
    for (std::size_t i = 0; i < result_.rounds.size(); ++i) {
      const auto& r = result_.rounds[i];
      obs::RoundRecord& rec = config_.recorder->begin_round("async", r.round);
      rec.set("t_formed", r.t_formed);
      rec.set("accuracy", r.accuracy);
      rec.set("mean_staleness", r.mean_staleness);
      rec.set("train_s", r.round < train_wall_.size() ? train_wall_[r.round] : 0.0);
      rec.set("agg_s", r.round < agg_wall_.size() ? agg_wall_[r.round] : 0.0);
      rec.set("messages", static_cast<double>(comm_delta_[i].first));
      rec.set("model_bytes", static_cast<double>(comm_delta_[i].second));
      if (i < suspicion_auc_per_global_.size()) {
        rec.set("suspicion_auc", suspicion_auc_per_global_[i]);
      }
      if (i < quality_per_global_.size()) {
        for (const auto& [level, q] : quality_per_global_[i]) {
          const std::string suffix = "_l" + std::to_string(level);
          rec.set("filter_precision" + suffix, q.precision);
          rec.set("filter_recall" + suffix, q.recall);
          rec.set("filter_f1" + suffix, q.f1);
        }
      }
    }
    if (ledger_) {
      for (const auto& ns : ledger_->snapshot()) {
        obs::RoundRecord& rec = config_.recorder->begin_round(
            "async_suspicion", ledger_->rounds_committed());
        rec.set("node", static_cast<double>(ns.node));
        rec.set("suspicion", ns.total);
        rec.set("filter_events", static_cast<double>(ns.filter_events));
        rec.set("observations", static_cast<double>(ns.observations));
        rec.set("byzantine", attack_.mask[ns.node] ? 1.0 : 0.0);
        for (std::size_t l = 0; l < ns.per_level.size(); ++l) {
          rec.set("suspicion_l" + std::to_string(l), ns.per_level[l]);
        }
      }
    }
  }
  if (obs::enabled()) {
    obs::global_registry()
        .counter("async_globals_total", "Global models formed by the async runner")
        .add(result_.rounds.size());
  }
  return result_;
}

}  // namespace abdhfl::core
