#include "core/experiment.hpp"

#include <cmath>
#include <stdexcept>

#include "nn/conv.hpp"

#include "data/mnist_idx.hpp"
#include "data/partition.hpp"
#include "data/synth_digits.hpp"
#include "topology/byzantine.hpp"
#include "util/log.hpp"

namespace abdhfl::core {

namespace {

struct ScenarioData {
  std::vector<data::Dataset> shards;         // per device, unpoisoned
  data::Dataset test_set;                    // reporting set
  std::vector<data::Dataset> top_validation; // per top node (Appendix D.B)
  std::size_t input_dim = 0;
};

ScenarioData build_data(const ScenarioConfig& config, const topology::HflTree& tree,
                        const topology::ByzantineMask& mask, util::Rng& rng) {
  ScenarioData out;

  data::Dataset train_pool;
  data::Dataset test_pool;
  if (!config.mnist_dir.empty()) {
    auto mnist = data::load_mnist_dir(config.mnist_dir);
    if (!mnist) {
      throw std::runtime_error("MNIST files not found in " + config.mnist_dir);
    }
    train_pool = std::move(mnist->train);
    test_pool = std::move(mnist->test);
    // Trim the pools so run times stay proportional to the configured scale.
    const std::size_t want_train = 10 * config.samples_per_class;
    const std::size_t want_test = 10 * config.test_samples_per_class;
    if (train_pool.size() > want_train) {
      train_pool.shuffle(rng);
      std::vector<std::size_t> idx(want_train);
      for (std::size_t i = 0; i < want_train; ++i) idx[i] = i;
      train_pool = train_pool.subset(idx);
    }
    if (test_pool.size() > want_test) {
      test_pool.shuffle(rng);
      std::vector<std::size_t> idx(want_test);
      for (std::size_t i = 0; i < want_test; ++i) idx[i] = i;
      test_pool = test_pool.subset(idx);
    }
  } else {
    data::SynthConfig synth;
    synth.side = config.image_side;
    synth.samples_per_class = config.samples_per_class;
    train_pool = data::generate_synth_digits(synth, rng);
    synth.samples_per_class = config.test_samples_per_class;
    test_pool = data::generate_synth_digits(synth, rng);
  }
  out.input_dim = train_pool.dim();

  // Partition the training pool across the bottom devices.
  if (config.iid) {
    out.shards = data::partition_iid(train_pool, tree.num_devices(), rng);
  } else {
    data::NonIidConfig part;
    part.clients = tree.num_devices();
    part.labels_per_client = 2;
    // The paper's "special design": honest participants jointly cover all
    // labels, so accuracy degradation reflects sample loss, not label loss.
    for (std::size_t d = 0; d < mask.size(); ++d) {
      if (!mask[d]) part.must_cover_clients.push_back(d);
    }
    if (part.must_cover_clients.empty()) {
      // All-Byzantine corner (only reachable in stress tests): no coverage
      // constraint to satisfy.
      part.must_cover_clients.clear();
    }
    out.shards = data::partition_noniid(train_pool, part, rng);
  }

  // Appendix D.B: the test data is split evenly across the top-level nodes
  // so their votes are meaningful; final accuracy is reported on the full
  // test pool.
  out.top_validation =
      data::partition_iid(test_pool, tree.cluster(0, 0).size(), rng);
  out.test_set = std::move(test_pool);
  return out;
}

}  // namespace

ScenarioResult run_scenario(const ScenarioConfig& config, bool run_vanilla,
                            bool run_abdhfl) {
  util::Rng rng(config.seed);

  const auto tree = topology::build_ecsm(config.levels, config.cluster_size,
                                         config.top_nodes);
  const auto mask =
      config.placement == ScenarioConfig::Placement::kBlock
          ? topology::block_malicious(tree.num_devices(), config.malicious_fraction)
          : topology::sample_malicious(tree.num_devices(), config.malicious_fraction, rng);

  auto data = build_data(config, tree, mask, rng);

  auto model_rng = rng.split();
  nn::Mlp prototype;
  if (config.model == "mlp") {
    prototype = nn::make_mlp(data.input_dim, config.hidden, 10, model_rng);
  } else if (config.model == "cnn") {
    const auto side =
        static_cast<std::size_t>(std::lround(std::sqrt(static_cast<double>(data.input_dim))));
    if (side * side != data.input_dim) {
      throw std::invalid_argument("cnn model requires square images");
    }
    prototype = nn::make_cnn(side, config.cnn_filters, 10, model_rng);
  } else {
    throw std::invalid_argument("unknown model architecture: " + config.model);
  }

  attacks::PoisonConfig poison;
  poison.type = config.poison;
  poison.image_side = config.image_side;

  std::shared_ptr<attacks::ModelAttack> model_attack;
  if (!config.model_attack.empty()) {
    model_attack = attacks::make_model_attack(config.model_attack);
  }

  ScenarioResult result;
  if (run_abdhfl) {
    HflConfig hfl;
    hfl.learn = config.learn;
    hfl.scheme = scheme_preset(config.scheme_id, config.bra_rule, config.cba_rule);
    hfl.flag_level = config.flag_level;
    hfl.quorum = config.quorum;
    hfl.alpha = config.alpha;
    hfl.merge_iteration = config.merge_iteration;
    hfl.parallel_training = config.parallel_training;
    hfl.recorder = config.recorder;
    hfl.trace = config.trace;
    hfl.checkpoint = config.checkpoint_hfl;
    hfl.checkpoint_every = config.checkpoint_every;
    hfl.resume = config.resume;
    hfl.halt_after_rounds = config.halt_after_rounds;

    AttackSetup attack;
    attack.mask = mask;
    attack.poison = poison;
    attack.model_attack = model_attack;

    HflRunner runner(tree, data.shards, data.test_set, data.top_validation, prototype,
                     hfl, attack, config.seed ^ 0x48464CULL);
    result.abdhfl = runner.run();
  }

  if (run_vanilla) {
    VanillaConfig vanilla;
    vanilla.learn = config.learn;
    vanilla.rule = config.vanilla_rule;
    vanilla.parallel_training = config.parallel_training;
    vanilla.recorder = config.recorder;
    vanilla.checkpoint = config.checkpoint_vanilla;
    vanilla.checkpoint_every = config.checkpoint_every;
    vanilla.resume = config.resume;
    vanilla.halt_after_rounds = config.halt_after_rounds;

    VanillaAttackSetup attack;
    attack.mask = mask;
    attack.poison = poison;
    attack.model_attack = model_attack;

    VanillaFl baseline(data.shards, data.test_set, prototype, vanilla, attack,
                       config.seed ^ 0x56464CULL);
    result.vanilla = baseline.run();
  }
  return result;
}

RepeatedResult run_repeated(const ScenarioConfig& config, std::size_t repeats,
                            bool run_vanilla) {
  if (repeats == 0) throw std::invalid_argument("run_repeated: zero repeats");
  RepeatedResult out;
  std::vector<double> abdhfl_final, vanilla_final;
  for (std::size_t k = 0; k < repeats; ++k) {
    ScenarioConfig run_config = config;
    run_config.seed = config.seed + k;
    auto result = run_scenario(run_config, run_vanilla);
    abdhfl_final.push_back(result.abdhfl.final_accuracy);
    out.abdhfl.push_back(std::move(result.abdhfl));
    if (run_vanilla) {
      vanilla_final.push_back(result.vanilla.final_accuracy);
      out.vanilla.push_back(std::move(result.vanilla));
    }
  }
  out.abdhfl_final = util::summarize(abdhfl_final);
  if (run_vanilla) out.vanilla_final = util::summarize(vanilla_final);
  return out;
}

double theoretical_tolerance(const ScenarioConfig& config, double gamma1, double gamma2) {
  return topology::theorem2_max_proportion(config.levels - 1, gamma1, gamma2);
}

}  // namespace abdhfl::core
