#pragma once
// Shared configuration and result types of the ABD-HFL core.

#include <cstdint>
#include <string>
#include <vector>

namespace abdhfl::core {

/// Learning hyper-parameters (Algorithm 2's R, T and the SGD step).
struct LearnConfig {
  std::size_t rounds = 30;        // global rounds R
  std::size_t local_iters = 5;    // local iterations T (paper: 5)
  std::size_t batch = 32;         // mini-batch per local iteration
  double learning_rate = 0.1;
  double lr_decay_gamma = 1.0;    // 1.0 disables step decay
  std::size_t lr_decay_step = 0;  // rounds per decay step (0 disables)
};

/// Which of the two aggregation families (Table II) a level uses.
enum class AggKind { kBra, kCba };

struct LevelScheme {
  AggKind kind = AggKind::kBra;
  /// BRA: an aggregator name (make_aggregator); CBA: a consensus protocol
  /// name (make_consensus).
  std::string rule = "multikrum";
  /// Assumed Byzantine fraction for parameterized BRA rules; this is the γ
  /// the tolerance analysis uses for the level.
  double byzantine_fraction = 0.25;
  /// Thread fan-out of the level's BRA numeric kernels
  /// (Aggregator::set_threads).  1 keeps aggregation serial; any value
  /// yields bitwise-identical results, so the simulated schedule stays
  /// deterministic either way.
  std::size_t agg_threads = 1;
};

/// One of the paper's four scheme combinations (Table III).
struct SchemeConfig {
  LevelScheme partial;  // applied at levels 1..L
  LevelScheme global;   // applied at the top level
};

/// Table III presets. id in 1..4.
[[nodiscard]] SchemeConfig scheme_preset(int id, const std::string& bra_rule = "multikrum",
                                         const std::string& cba_rule = "voting");

/// Correction-factor policy for Eq. 1 (Sec. III-B lists the two drivers:
/// global-model latency and the relative dataset size of the flag model).
/// The staleness-discounting modes follow the strategies of the
/// asynchronous-FL literature the paper builds on (FedAsync, Async-HFL):
/// exponential, polynomial s(t) = (1+t)^-a, and hinge (full weight below a
/// staleness threshold, hyperbolic decay beyond it).
enum class AlphaMode {
  kFixed,           // constant alpha
  kRelativeSize,    // alpha = clamp(1 - |D_F| / |D_G|, min, max)
  kLatencyAware,    // alpha = fixed * exp(-staleness / latency_scale)
  kPolynomial,      // alpha = fixed * (1 + staleness)^(-poly_exponent)
  kHinge,           // alpha = fixed while staleness <= hinge_threshold,
                    // else fixed / (1 + hinge_slope*(staleness - threshold))
};

struct AlphaPolicy {
  AlphaMode mode = AlphaMode::kRelativeSize;
  double fixed = 0.5;
  double min = 0.05;
  double max = 1.0;
  double latency_scale = 1.0;   // simulated-seconds scale for kLatencyAware
  double poly_exponent = 0.5;   // a in (1+t)^-a for kPolynomial
  double hinge_threshold = 1.0; // staleness where the hinge starts
  double hinge_slope = 1.0;     // decay rate past the hinge
};

[[nodiscard]] double compute_alpha(const AlphaPolicy& policy, double flag_fraction,
                                   double staleness);

/// Traffic + protocol accounting for one run.
struct CommStats {
  std::uint64_t messages = 0;
  std::uint64_t model_bytes = 0;
  std::uint64_t consensus_failures = 0;

  CommStats& operator+=(const CommStats& other) {
    messages += other.messages;
    model_bytes += other.model_bytes;
    consensus_failures += other.consensus_failures;
    return *this;
  }
};

/// Result of one training run (ABD-HFL or the vanilla baseline).
struct RunResult {
  std::vector<double> accuracy_per_round;  // global-model test accuracy
  double final_accuracy = 0.0;
  std::vector<float> final_model;          // flat params of the last θ_G
  CommStats comm;
};

}  // namespace abdhfl::core
