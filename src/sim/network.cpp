#include "sim/network.hpp"

#include <stdexcept>
#include <string>

#include "obs/metrics.hpp"

namespace abdhfl::sim {

void Network::set_default_latency(std::unique_ptr<LatencyModel> model) {
  if (!model) throw std::invalid_argument("Network: null latency model");
  default_latency_ = std::move(model);
}

void Network::set_class_latency(std::uint32_t link_class,
                                std::unique_ptr<LatencyModel> model) {
  if (!model) throw std::invalid_argument("Network: null latency model");
  class_latency_[link_class] = std::move(model);
}

void Network::register_node(NodeId id, Handler handler) {
  if (!handler) throw std::invalid_argument("Network: null handler");
  handlers_[id] = std::move(handler);
}

LatencyModel& Network::model_for(std::uint32_t link_class) {
  const auto it = class_latency_.find(link_class);
  if (it != class_latency_.end()) return *it->second;
  if (!default_latency_) throw std::logic_error("Network: no latency model configured");
  return *default_latency_;
}

void Network::send(Message msg, std::uint32_t link_class) {
  const auto it = handlers_.find(msg.to);
  if (it == handlers_.end()) {
    throw std::logic_error("Network: send to unregistered node " + std::to_string(msg.to));
  }
  const SimTime delay = model_for(link_class).sample(msg.bytes, rng_);

  ++totals_.messages;
  totals_.bytes += msg.bytes;
  auto& cls = per_class_[link_class];
  ++cls.messages;
  cls.bytes += msg.bytes;

  if (obs::enabled()) {
    auto& counters = obs_counters(link_class);
    counters.messages->add(1);
    counters.bytes->add(msg.bytes);
  }

  // Copy the handler reference lookup into the event: the handler map can
  // grow while events are in flight, so resolve at delivery time.
  sim_.schedule_after(delay, [this, msg = std::move(msg)]() {
    const auto handler_it = handlers_.find(msg.to);
    if (handler_it != handlers_.end()) handler_it->second(msg);
  });
}

Network::ClassCounters& Network::obs_counters(std::uint32_t link_class) {
  auto it = obs_counters_.find(link_class);
  if (it == obs_counters_.end()) {
    const std::string label = "{link_class=\"" + std::to_string(link_class) + "\"}";
    auto& registry = obs::global_registry();
    ClassCounters counters;
    counters.messages =
        &registry.counter("sim_network_messages_total" + label,
                          "Messages sent over links of this class");
    counters.bytes = &registry.counter("sim_network_bytes_total" + label,
                                       "Bytes sent over links of this class");
    it = obs_counters_.emplace(link_class, counters).first;
  }
  return it->second;
}

TrafficStats Network::class_totals(std::uint32_t link_class) const {
  const auto it = per_class_.find(link_class);
  return it == per_class_.end() ? TrafficStats{} : it->second;
}

void Network::reset_stats() {
  totals_ = {};
  per_class_.clear();
}

}  // namespace abdhfl::sim
