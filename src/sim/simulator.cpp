#include "sim/simulator.hpp"

#include <stdexcept>
#include <utility>

namespace abdhfl::sim {

void Simulator::schedule_at(SimTime when, Callback fn) {
  if (when < now_) throw std::invalid_argument("Simulator: cannot schedule in the past");
  queue_.push(Event{when, next_seq_++, std::move(fn)});
}

std::size_t Simulator::run() {
  std::size_t count = 0;
  while (!queue_.empty()) {
    // The callback may schedule more events, so pop before firing.
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.time;
    ev.fn();
    ++count;
    ++fired_;
  }
  return count;
}

std::size_t Simulator::run_until(SimTime deadline) {
  std::size_t count = 0;
  while (!queue_.empty() && queue_.top().time <= deadline) {
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.time;
    ev.fn();
    ++count;
    ++fired_;
  }
  if (now_ < deadline) now_ = deadline;
  return count;
}

void Simulator::clear() {
  while (!queue_.empty()) queue_.pop();
}

}  // namespace abdhfl::sim
