#include "sim/latency.hpp"

#include <stdexcept>

namespace abdhfl::sim {

UniformLatency::UniformLatency(SimTime lo, SimTime hi) : lo_(lo), hi_(hi) {
  if (lo < 0.0 || hi < lo) throw std::invalid_argument("UniformLatency: bad range");
}

SimTime UniformLatency::sample(std::size_t, util::Rng& rng) {
  return rng.uniform(lo_, hi_);
}

SimTime LogNormalLatency::sample(std::size_t, util::Rng& rng) {
  return rng.lognormal(mu_, sigma_);
}

StragglerLatency::StragglerLatency(std::unique_ptr<LatencyModel> inner, double probability,
                                   double factor)
    : inner_(std::move(inner)), probability_(probability), factor_(factor) {
  if (!inner_) throw std::invalid_argument("StragglerLatency: null inner model");
  if (probability_ < 0.0 || probability_ > 1.0 || factor_ < 1.0) {
    throw std::invalid_argument("StragglerLatency: bad parameters");
  }
}

SimTime StragglerLatency::sample(std::size_t bytes, util::Rng& rng) {
  const SimTime base = inner_->sample(bytes, rng);
  return rng.bernoulli(probability_) ? base * factor_ : base;
}

LossyLatency::LossyLatency(std::unique_ptr<LatencyModel> inner, double loss_probability,
                           SimTime retry_timeout)
    : inner_(std::move(inner)),
      loss_probability_(loss_probability),
      retry_timeout_(retry_timeout) {
  if (!inner_) throw std::invalid_argument("LossyLatency: null inner model");
  if (loss_probability_ < 0.0 || loss_probability_ >= 1.0 || retry_timeout_ < 0.0) {
    throw std::invalid_argument("LossyLatency: bad parameters");
  }
}

SimTime LossyLatency::sample(std::size_t bytes, util::Rng& rng) {
  SimTime total = 0.0;
  while (rng.bernoulli(loss_probability_)) {
    // The lost attempt still burns its transmission time before the sender
    // times out and retries.
    total += retry_timeout_;
  }
  return total + inner_->sample(bytes, rng);
}

}  // namespace abdhfl::sim
