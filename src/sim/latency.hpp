#pragma once
// Message-delay models realizing the paper's partial-synchrony assumption:
// delivery time is arbitrary and finite but unbounded (Assumption 1).  The
// models here are what make σ_w, σ_p, σ_g and the efficiency indicator ν of
// Sec. III-D non-trivial.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace abdhfl::sim {

class LatencyModel {
 public:
  virtual ~LatencyModel() = default;
  /// Delay for one message of `bytes` bytes.  Must be finite and >= 0.
  [[nodiscard]] virtual SimTime sample(std::size_t bytes, util::Rng& rng) = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Constant delay, optionally plus a bandwidth term (seconds per byte).
class FixedLatency final : public LatencyModel {
 public:
  explicit FixedLatency(SimTime base, double seconds_per_byte = 0.0)
      : base_(base), per_byte_(seconds_per_byte) {}
  SimTime sample(std::size_t bytes, util::Rng&) override {
    return base_ + per_byte_ * static_cast<double>(bytes);
  }
  [[nodiscard]] std::string name() const override { return "fixed"; }

 private:
  SimTime base_;
  double per_byte_;
};

/// Uniform in [lo, hi].
class UniformLatency final : public LatencyModel {
 public:
  UniformLatency(SimTime lo, SimTime hi);
  SimTime sample(std::size_t bytes, util::Rng& rng) override;
  [[nodiscard]] std::string name() const override { return "uniform"; }

 private:
  SimTime lo_, hi_;
};

/// Log-normal (heavy upper tail — the canonical WAN model); parameters are
/// of the underlying normal.  Matches "arbitrary, finite but unbounded".
class LogNormalLatency final : public LatencyModel {
 public:
  LogNormalLatency(double mu, double sigma) : mu_(mu), sigma_(sigma) {}
  SimTime sample(std::size_t bytes, util::Rng& rng) override;
  [[nodiscard]] std::string name() const override { return "lognormal"; }

 private:
  double mu_, sigma_;
};

/// Wraps another model; with probability p a message is a straggler and its
/// delay is multiplied by `factor`.  Models the slow devices the paper's
/// asynchronous design exists to tolerate.
class StragglerLatency final : public LatencyModel {
 public:
  StragglerLatency(std::unique_ptr<LatencyModel> inner, double probability, double factor);
  SimTime sample(std::size_t bytes, util::Rng& rng) override;
  [[nodiscard]] std::string name() const override { return "straggler"; }

 private:
  std::unique_ptr<LatencyModel> inner_;
  double probability_;
  double factor_;
};

/// Wraps another model; with probability p the message is "lost" and retried
/// after a timeout, adding (timeout + fresh delay) per loss.  Keeps delivery
/// finite (geometric retries) as Assumption 1 requires.
class LossyLatency final : public LatencyModel {
 public:
  LossyLatency(std::unique_ptr<LatencyModel> inner, double loss_probability,
               SimTime retry_timeout);
  SimTime sample(std::size_t bytes, util::Rng& rng) override;
  [[nodiscard]] std::string name() const override { return "lossy"; }

 private:
  std::unique_ptr<LatencyModel> inner_;
  double loss_probability_;
  SimTime retry_timeout_;
};

}  // namespace abdhfl::sim
