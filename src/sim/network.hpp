#pragma once
// Simulated message-passing layer on top of the event kernel.
//
// Nodes are integer ids; send() samples a delay from the latency model
// attached to the (level of the) link and schedules delivery of an opaque
// payload at the receiver.  All traffic is metered, which is what the
// scheme-comparison experiment (Table III/IV) reports as communication cost.

#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/latency.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace abdhfl::obs {
class Counter;
}

namespace abdhfl::sim {

using NodeId = std::uint32_t;

struct Message {
  NodeId from = 0;
  NodeId to = 0;
  std::uint32_t kind = 0;     // payload tag (the payload type's kMessageKind)
  std::uint64_t round = 0;    // application-defined round number
  std::size_t bytes = 0;      // wire size, for accounting and bandwidth
  /// Caller's pre-codec size estimate, when `bytes` came from the real wire
  /// codec (net/wire.hpp).  0 = no estimate recorded.  Kept so tests can
  /// cross-check codec-computed sizes against the legacy estimate.
  std::size_t bytes_estimated = 0;
  std::shared_ptr<const void> payload;  // body; type identified by `kind`
};

/// Checked alternative to static_pointer_cast on Message::payload: the
/// payload type declares its tag as `static constexpr std::uint32_t
/// kMessageKind`, and the cast throws std::logic_error when the message's
/// declared kind doesn't match or the payload is empty — a mis-tagged frame
/// fails loudly at the receiver instead of reinterpreting foreign bytes.
template <class T>
[[nodiscard]] const T& payload_cast(const Message& msg) {
  if (msg.kind != T::kMessageKind) {
    throw std::logic_error("payload_cast: message kind " + std::to_string(msg.kind) +
                           " does not match payload tag " +
                           std::to_string(T::kMessageKind));
  }
  if (!msg.payload) throw std::logic_error("payload_cast: empty payload");
  return *static_cast<const T*>(msg.payload.get());
}

struct TrafficStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
};

class Network {
 public:
  using Handler = std::function<void(const Message&)>;

  Network(Simulator& sim, util::Rng& rng) : sim_(sim), rng_(rng) {}

  /// Delay model used when no per-link class matches.  Must be set before
  /// the first send.
  void set_default_latency(std::unique_ptr<LatencyModel> model);

  /// Optional delay model for a "link class" (the HFL runner uses one class
  /// per tree level so upper levels can be slower/faster than the edge).
  void set_class_latency(std::uint32_t link_class, std::unique_ptr<LatencyModel> model);

  /// Receiver registration; a node must be registered before messages for it
  /// are delivered.  Re-registering replaces the handler.
  void register_node(NodeId id, Handler handler);

  /// Send msg; link_class selects the latency model.
  void send(Message msg, std::uint32_t link_class = 0);

  [[nodiscard]] const TrafficStats& totals() const noexcept { return totals_; }
  [[nodiscard]] TrafficStats class_totals(std::uint32_t link_class) const;

  void reset_stats();

 private:
  LatencyModel& model_for(std::uint32_t link_class);

  Simulator& sim_;
  util::Rng& rng_;
  std::unique_ptr<LatencyModel> default_latency_;
  std::unordered_map<std::uint32_t, std::unique_ptr<LatencyModel>> class_latency_;
  std::unordered_map<NodeId, Handler> handlers_;
  TrafficStats totals_;
  std::unordered_map<std::uint32_t, TrafficStats> per_class_;

  // Lazily created global-registry counters per link class, one pair of
  // pointers cached so the hot send() path does a map probe instead of a
  // registry lookup.  Populated only while obs::enabled().
  struct ClassCounters {
    obs::Counter* messages = nullptr;
    obs::Counter* bytes = nullptr;
  };
  ClassCounters& obs_counters(std::uint32_t link_class);
  std::unordered_map<std::uint32_t, ClassCounters> obs_counters_;
};

}  // namespace abdhfl::sim
