#pragma once
// Deterministic discrete-event simulation kernel.
//
// Time is a double (abstract seconds).  Events are (time, sequence) ordered
// callbacks; the sequence number makes simultaneous events fire in schedule
// order, which keeps runs bit-reproducible.  The pipeline-workflow
// experiments (Sec. III-D of the paper) run entirely on this kernel: nodes
// are actors exchanging model messages through a Network that applies a
// pluggable latency model, realizing the paper's partial-synchrony
// Assumption 1 (arbitrary finite delays).

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace abdhfl::sim {

using SimTime = double;

class Simulator {
 public:
  using Callback = std::function<void()>;

  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedule `fn` to run at absolute time `when` (must be >= now()).
  void schedule_at(SimTime when, Callback fn);

  /// Schedule `fn` after a delay relative to now().
  void schedule_after(SimTime delay, Callback fn) { schedule_at(now_ + delay, std::move(fn)); }

  /// Run until the event queue drains.  Returns the number of events fired.
  std::size_t run();

  /// Run until the queue drains or simulated time would pass `deadline`.
  std::size_t run_until(SimTime deadline);

  /// Drop every pending event (used for teardown of aborted scenarios).
  void clear();

  [[nodiscard]] bool idle() const noexcept { return queue_.empty(); }
  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }
  [[nodiscard]] std::size_t fired() const noexcept { return fired_; }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::size_t fired_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace abdhfl::sim
