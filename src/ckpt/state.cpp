#include "ckpt/state.hpp"

namespace abdhfl::ckpt {

std::vector<std::uint8_t> encode_rng_states(std::span<const RngState> states) {
  PayloadWriter w;
  w.u64(states.size());
  for (const RngState& s : states) {
    for (std::uint64_t word : s) w.u64(word);
  }
  return w.take();
}

std::vector<RngState> decode_rng_states(std::span<const std::uint8_t> payload) {
  PayloadReader r(payload);
  const auto count = r.u64();
  if (count > r.remaining() / (4 * sizeof(std::uint64_t))) {
    throw CkptError("RNGS chunk count overruns payload");
  }
  std::vector<RngState> out(count);
  for (RngState& s : out) {
    for (std::uint64_t& word : s) word = r.u64();
  }
  r.expect_done();
  return out;
}

std::vector<std::uint8_t> encode_f32_buffers(
    const std::vector<std::vector<float>>& buffers) {
  PayloadWriter w;
  w.u64(buffers.size());
  for (const auto& b : buffers) w.f32vec(b);
  return w.take();
}

std::vector<std::vector<float>> decode_f32_buffers(std::span<const std::uint8_t> payload) {
  PayloadReader r(payload);
  const auto count = r.u64();
  // Each buffer costs at least its 8-byte length prefix.
  if (count > r.remaining() / sizeof(std::uint64_t)) {
    throw CkptError("buffer count overruns payload");
  }
  std::vector<std::vector<float>> out(count);
  for (auto& b : out) b = r.f32vec();
  r.expect_done();
  return out;
}

std::vector<std::uint8_t> encode_ledger(const obs::SuspicionLedger& ledger) {
  const auto s = ledger.state();
  PayloadWriter w;
  w.u64(ledger.num_nodes());
  w.u64(ledger.num_levels());
  w.u64(s.rounds);
  w.f64vec(s.ewma);
  w.f64vec(s.round);
  w.u64vec(s.filter_events);
  w.u64vec(s.observations);
  return w.take();
}

void restore_ledger(std::span<const std::uint8_t> payload, obs::SuspicionLedger& ledger) {
  PayloadReader r(payload);
  const auto nodes = r.u64();
  const auto levels = r.u64();
  if (nodes != ledger.num_nodes() || levels != ledger.num_levels()) {
    throw CkptError("SUSP chunk geometry does not match the ledger");
  }
  obs::SuspicionLedger::LedgerState s;
  s.rounds = r.u64();
  s.ewma = r.f64vec();
  s.round = r.f64vec();
  s.filter_events = r.u64vec();
  s.observations = r.u64vec();
  r.expect_done();
  try {
    ledger.set_state(s);
  } catch (const std::invalid_argument& e) {
    throw CkptError(e.what());
  }
}

std::vector<std::uint8_t> encode_topology(const topology::HflTree& tree) {
  PayloadWriter w;
  w.u64(tree.num_levels());
  for (std::size_t l = 0; l < tree.num_levels(); ++l) {
    const auto& clusters = tree.level(l);
    w.u64(clusters.size());
    for (const auto& c : clusters) {
      w.u64(c.leader);
      w.u32vec(c.members);
    }
  }
  return w.take();
}

topology::HflTree decode_topology(std::span<const std::uint8_t> payload) {
  PayloadReader r(payload);
  const auto num_levels = r.u64();
  if (num_levels > r.remaining() / sizeof(std::uint64_t)) {
    throw CkptError("TOPO level count overruns payload");
  }
  std::vector<std::vector<topology::Cluster>> levels(num_levels);
  for (auto& clusters : levels) {
    const auto count = r.u64();
    if (count > r.remaining() / (2 * sizeof(std::uint64_t))) {
      throw CkptError("TOPO cluster count overruns payload");
    }
    clusters.resize(count);
    for (auto& c : clusters) {
      c.leader = r.u64();
      c.members = r.u32vec();
      if (c.leader >= c.members.size()) {
        throw CkptError("TOPO leader index out of range");
      }
    }
  }
  r.expect_done();
  try {
    return topology::HflTree(std::move(levels));
  } catch (const std::exception& e) {
    throw CkptError(std::string("TOPO chunk rejected: ") + e.what());
  }
}

}  // namespace abdhfl::ckpt
