#pragma once
// Durable checkpoint store: atomic installation, retention, background
// writer (DESIGN.md §10.2).
//
// A Store owns one directory of snapshots:
//
//   <dir>/ckpt-<seq>.abck     encoded containers, seq strictly increasing
//   <dir>/MANIFEST            one "ckpt-<seq>.abck <round>" line per kept
//                             generation, oldest first
//
// Installation is crash-atomic: the container is written to a ".tmp" name,
// fsync'd, renamed over the final name, and the directory entry fsync'd —
// a crash at any point leaves either the previous generation set or the new
// one, never a half-written visible file.  The MANIFEST is rewritten the
// same way after every install, and keep-last-K retention deletes the
// oldest generation beyond K.
//
// save() never blocks on the disk: the encoded container is staged under a
// mutex and a dedicated writer thread performs the write/fsync/rename.  The
// staging slot holds one snapshot; staging a newer one before the writer
// picked up the old one replaces it (the training loop outrunning the disk
// degrades to coarser checkpoint spacing, never to a stall).  flush() waits
// for the slot and any in-flight write to drain; the destructor flushes.
//
// load_latest() walks the manifest newest-to-oldest and returns the first
// snapshot that decodes cleanly, counting the corrupt generations it
// skipped — the fallback path the corruption tests exercise.

#include <cstdint>
#include <condition_variable>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "ckpt/container.hpp"

namespace abdhfl::util {
class Cli;
}
namespace abdhfl::obs {
class Recorder;
}

namespace abdhfl::ckpt {

/// The shared `--checkpoint-dir/--checkpoint-every/--resume` flags, declared
/// once per binary like obs::declare_cli.
struct Options {
  std::string dir;          // "" = checkpointing off
  std::size_t every = 1;    // snapshot every N rounds
  bool resume = false;      // load the latest snapshot before training

  [[nodiscard]] bool active() const noexcept { return !dir.empty(); }
};

/// Declare the checkpoint flags on a Cli (call before cli.finish()).
[[nodiscard]] Options declare_cli(util::Cli& cli);

class Store {
 public:
  /// Creates `dir` if needed and reads an existing MANIFEST, so a restarted
  /// process continues the sequence it finds.  `recorder` (optional) gets a
  /// "ckpt_save" record per staged snapshot and a "ckpt_restore" per
  /// successful load, both emitted on the calling thread.
  explicit Store(std::string dir, std::size_t keep_last = 3,
                 obs::Recorder* recorder = nullptr);
  ~Store();

  Store(const Store&) = delete;
  Store& operator=(const Store&) = delete;

  /// Stage an encoded container for the background writer.  Returns the
  /// sequence number the snapshot will install under.
  std::uint64_t save(std::uint64_t round, std::vector<std::uint8_t> container);

  /// Encode-and-install synchronously (the caller needs durability NOW,
  /// e.g. a node about to exit).  Waits for any staged snapshot first so
  /// sequence order on disk matches staging order.
  std::uint64_t save_now(std::uint64_t round, std::vector<std::uint8_t> container);

  /// Block until the staging slot is empty and no write is in flight.
  void flush();

  /// Newest snapshot that decodes cleanly, or nullopt when none exists.
  /// Corrupt newer generations are skipped (and counted); unreadable files
  /// count the same as corrupt ones.
  [[nodiscard]] std::optional<Container> load_latest();

  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }
  /// Snapshots actually installed on disk over this Store's lifetime.
  [[nodiscard]] std::uint64_t installs() const;
  /// Staged snapshots replaced before the writer picked them up.
  [[nodiscard]] std::uint64_t replaced() const;
  /// Corrupt generations skipped by load_latest() calls.
  [[nodiscard]] std::uint64_t corrupt_skipped() const;

 private:
  struct Entry {
    std::uint64_t seq = 0;
    std::uint64_t round = 0;
  };
  struct Staged {
    std::uint64_t seq = 0;
    std::uint64_t round = 0;
    std::vector<std::uint8_t> bytes;
  };

  [[nodiscard]] std::string file_name(std::uint64_t seq) const;
  void writer_loop();
  /// Write/fsync/rename one snapshot and update manifest + retention.
  /// Called with the lock held only for the bookkeeping parts.
  void install(Staged snapshot);
  void read_manifest();
  void write_manifest_locked();

  std::string dir_;
  std::size_t keep_;
  obs::Recorder* recorder_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::optional<Staged> staged_;
  bool writing_ = false;
  bool stop_ = false;
  std::vector<Entry> entries_;  // oldest first
  std::uint64_t next_seq_ = 1;
  std::uint64_t installs_ = 0;
  std::uint64_t replaced_ = 0;
  std::uint64_t corrupt_skipped_ = 0;
  std::thread writer_;
};

}  // namespace abdhfl::ckpt
