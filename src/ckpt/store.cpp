#include "ckpt/store.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "obs/blackbox.hpp"
#include "obs/record.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"

namespace abdhfl::ckpt {

namespace {

constexpr const char* kManifestName = "MANIFEST";

/// write + fsync; the caller renames afterwards.  Throws CkptError so a
/// full disk surfaces as a checkpoint failure, not a silent no-op.
void write_file_durable(const std::string& path, std::span<const std::uint8_t> bytes) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) throw CkptError("cannot open " + path + ": " + std::strerror(errno));
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      throw CkptError("write failed: " + path + ": " + std::strerror(err));
    }
    off += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    const int err = errno;
    ::close(fd);
    throw CkptError("fsync failed: " + path + ": " + std::strerror(err));
  }
  ::close(fd);
}

/// fsync the directory so the rename's new entry is durable.  Best effort:
/// some filesystems reject directory fsync and the data is already synced.
void fsync_dir(const std::string& dir) noexcept {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

void rename_durable(const std::string& from, const std::string& to,
                    const std::string& dir) {
  if (std::rename(from.c_str(), to.c_str()) != 0) {
    throw CkptError("rename failed: " + to + ": " + std::strerror(errno));
  }
  fsync_dir(dir);
}

std::optional<std::vector<std::uint8_t>> read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return std::nullopt;
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(f)),
                                  std::istreambuf_iterator<char>());
  if (f.bad()) return std::nullopt;
  return bytes;
}

}  // namespace

Options declare_cli(util::Cli& cli) {
  Options options;
  options.dir = cli.str("checkpoint-dir", "",
                        "write crash-recovery snapshots into this directory (empty = off)");
  const auto every =
      cli.integer("checkpoint-every", 1, "snapshot every N rounds (with --checkpoint-dir)");
  if (every < 1) throw std::invalid_argument("--checkpoint-every must be >= 1");
  options.every = static_cast<std::size_t>(every);
  options.resume =
      cli.boolean("resume", false, "resume from the latest snapshot in --checkpoint-dir");
  return options;
}

Store::Store(std::string dir, std::size_t keep_last, obs::Recorder* recorder)
    : dir_(std::move(dir)), keep_(keep_last == 0 ? 1 : keep_last), recorder_(recorder) {
  if (dir_.empty()) throw std::invalid_argument("Store: empty directory");
  std::filesystem::create_directories(dir_);
  read_manifest();
  writer_ = std::thread([this] { writer_loop(); });
}

Store::~Store() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (writer_.joinable()) writer_.join();
}

std::string Store::file_name(std::uint64_t seq) const {
  char buf[32];
  std::snprintf(buf, sizeof buf, "ckpt-%06" PRIu64 ".abck", seq);
  return buf;
}

std::uint64_t Store::save(std::uint64_t round, std::vector<std::uint8_t> container) {
  std::uint64_t seq = 0;
  const std::size_t bytes = container.size();
  {
    std::lock_guard<std::mutex> lk(mu_);
    seq = next_seq_++;
    if (staged_.has_value()) ++replaced_;  // writer still busy: newer wins
    staged_ = Staged{seq, round, std::move(container)};
  }
  cv_.notify_all();
  if (recorder_ != nullptr) {
    auto& rec = recorder_->begin_round("ckpt_save", static_cast<std::size_t>(round));
    rec.set("seq", static_cast<double>(seq));
    rec.set("bytes", static_cast<double>(bytes));
  }
  return seq;
}

std::uint64_t Store::save_now(std::uint64_t round, std::vector<std::uint8_t> container) {
  std::uint64_t seq = 0;
  const std::size_t bytes = container.size();
  {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] { return !staged_.has_value() && !writing_; });
    writing_ = true;
    seq = next_seq_++;
  }
  try {
    install(Staged{seq, round, std::move(container)});
  } catch (...) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      writing_ = false;
    }
    cv_.notify_all();
    throw;
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    writing_ = false;
  }
  cv_.notify_all();
  if (recorder_ != nullptr) {
    auto& rec = recorder_->begin_round("ckpt_save", static_cast<std::size_t>(round));
    rec.set("seq", static_cast<double>(seq));
    rec.set("bytes", static_cast<double>(bytes));
  }
  return seq;
}

void Store::flush() {
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [&] { return !staged_.has_value() && !writing_; });
}

std::optional<Container> Store::load_latest() {
  flush();
  std::vector<Entry> entries;
  {
    std::lock_guard<std::mutex> lk(mu_);
    entries = entries_;
  }
  std::uint64_t skipped = 0;
  for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
    const std::string path = dir_ + "/" + file_name(it->seq);
    const auto bytes = read_file(path);
    if (!bytes.has_value()) {
      ++skipped;
      continue;
    }
    try {
      Container c = decode_container(*bytes);
      {
        std::lock_guard<std::mutex> lk(mu_);
        corrupt_skipped_ += skipped;
      }
      if (recorder_ != nullptr) {
        auto& rec =
            recorder_->begin_round("ckpt_restore", static_cast<std::size_t>(c.round));
        rec.set("seq", static_cast<double>(it->seq));
        rec.set("bytes", static_cast<double>(bytes->size()));
        rec.set("skipped", static_cast<double>(skipped));
      }
      return c;
    } catch (const CkptError& e) {
      LOG_ERROR("checkpoint %s rejected: %s", path.c_str(), e.what());
      ++skipped;
    }
  }
  std::lock_guard<std::mutex> lk(mu_);
  corrupt_skipped_ += skipped;
  return std::nullopt;
}

std::uint64_t Store::installs() const {
  std::lock_guard<std::mutex> lk(mu_);
  return installs_;
}

std::uint64_t Store::replaced() const {
  std::lock_guard<std::mutex> lk(mu_);
  return replaced_;
}

std::uint64_t Store::corrupt_skipped() const {
  std::lock_guard<std::mutex> lk(mu_);
  return corrupt_skipped_;
}

void Store::writer_loop() {
  for (;;) {
    Staged snapshot;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [&] { return staged_.has_value() || stop_; });
      if (!staged_.has_value()) break;  // stop requested, nothing pending
      snapshot = std::move(*staged_);
      staged_.reset();
      writing_ = true;
    }
    cv_.notify_all();  // the staging slot is free again
    try {
      install(std::move(snapshot));
    } catch (const std::exception& e) {
      LOG_ERROR("checkpoint install failed: %s", e.what());
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      writing_ = false;
    }
    cv_.notify_all();
  }
}

void Store::install(Staged snapshot) {
  // Busy heartbeat brackets the durable write: the blackbox watchdog flags a
  // writer that stays inside this window past the stall threshold (a wedged
  // disk is a stall, not a crash).  Ends on the exception paths too.
  obs::blackbox::note_ckpt_busy(true);
  struct BusyGuard {
    ~BusyGuard() { obs::blackbox::note_ckpt_busy(false); }
  } busy_guard;
  const std::string name = file_name(snapshot.seq);
  const std::string final_path = dir_ + "/" + name;
  const std::string tmp_path = final_path + ".tmp";
  write_file_durable(tmp_path, snapshot.bytes);
  rename_durable(tmp_path, final_path, dir_);
  obs::blackbox::record(obs::blackbox::EventType::kCkptInstall, 0, 0, snapshot.round,
                        snapshot.seq, snapshot.bytes.size());

  std::vector<std::string> pruned;
  {
    std::lock_guard<std::mutex> lk(mu_);
    entries_.push_back(Entry{snapshot.seq, snapshot.round});
    while (entries_.size() > keep_) {
      pruned.push_back(file_name(entries_.front().seq));
      entries_.erase(entries_.begin());
    }
    write_manifest_locked();
    ++installs_;
  }
  for (const std::string& victim : pruned) {
    std::remove((dir_ + "/" + victim).c_str());
  }
}

void Store::read_manifest() {
  std::ifstream f(dir_ + "/" + kManifestName);
  if (!f) return;
  std::string line;
  while (std::getline(f, line)) {
    std::uint64_t seq = 0, round = 0;
    if (std::sscanf(line.c_str(), "ckpt-%" SCNu64 ".abck %" SCNu64, &seq, &round) == 2) {
      entries_.push_back(Entry{seq, round});
      if (seq >= next_seq_) next_seq_ = seq + 1;
    }
  }
}

void Store::write_manifest_locked() {
  std::string content;
  for (const Entry& e : entries_) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%s %" PRIu64 "\n", file_name(e.seq).c_str(), e.round);
    content += buf;
  }
  const std::string path = dir_ + "/" + kManifestName;
  write_file_durable(path + ".tmp",
                     {reinterpret_cast<const std::uint8_t*>(content.data()), content.size()});
  rename_durable(path + ".tmp", path, dir_);
}

}  // namespace abdhfl::ckpt
