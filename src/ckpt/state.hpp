#pragma once
// Typed chunk registry + encoders for the state every runner checkpoints.
//
// The container layer (container.hpp) moves opaque tagged payloads; this
// header fixes what the tags mean so runners, nodes, tools/ckpt_inspect and
// tests agree on one vocabulary:
//
//   PARM  current global/merged model parameters (f32vec)
//   VELO  SGD momentum velocity buffers (count + f32vec each)
//   RNGS  per-stream RNG states (count + 4xu64 each; stream order is the
//         producer's documented order, typically runner RNG then trainers)
//   LOSS  per-trainer last_loss values (f64vec, aligned with RNGS trainers)
//   ROUN  round/progress counters (producer-specific u64s)
//   LRSC  learning-rate schedule position (base LR + schedule round, f64+u64)
//   PIPE  pipeline flag / correction-factor state
//   SUSP  SuspicionLedger state (geometry + EWMA/round/event arrays)
//   TOPO  topology mirror (an HflTree's levels)
//   DEVS  per-device start parameters (count + f32vec each)
//   EVNT  pending discrete-event records (producer-specific)
//   RSLT  partial run results accumulated so far (producer-specific)
//   XTRA  anything producer-specific that fits no other tag
//
// Readers must tolerate unknown tags (skip them) and missing optional ones;
// require() only what the producer always writes.

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "ckpt/container.hpp"
#include "obs/suspicion.hpp"
#include "topology/tree.hpp"
#include "util/rng.hpp"

namespace abdhfl::ckpt {

inline constexpr std::uint32_t kTagParams = fourcc("PARM");
inline constexpr std::uint32_t kTagVelocity = fourcc("VELO");
inline constexpr std::uint32_t kTagRngStates = fourcc("RNGS");
inline constexpr std::uint32_t kTagLosses = fourcc("LOSS");
inline constexpr std::uint32_t kTagRound = fourcc("ROUN");
inline constexpr std::uint32_t kTagLrSchedule = fourcc("LRSC");
inline constexpr std::uint32_t kTagPipeline = fourcc("PIPE");
inline constexpr std::uint32_t kTagLedger = fourcc("SUSP");
inline constexpr std::uint32_t kTagTopology = fourcc("TOPO");
inline constexpr std::uint32_t kTagDevices = fourcc("DEVS");
inline constexpr std::uint32_t kTagEvents = fourcc("EVNT");
inline constexpr std::uint32_t kTagResult = fourcc("RSLT");
inline constexpr std::uint32_t kTagExtra = fourcc("XTRA");

using RngState = std::array<std::uint64_t, 4>;

/// RNGS payload: count + each stream's 4x64-bit xoshiro words.
[[nodiscard]] std::vector<std::uint8_t> encode_rng_states(
    std::span<const RngState> states);
[[nodiscard]] std::vector<RngState> decode_rng_states(
    std::span<const std::uint8_t> payload);

/// VELO / DEVS payload: count + one f32vec per entry.
[[nodiscard]] std::vector<std::uint8_t> encode_f32_buffers(
    const std::vector<std::vector<float>>& buffers);
[[nodiscard]] std::vector<std::vector<float>> decode_f32_buffers(
    std::span<const std::uint8_t> payload);

/// SUSP payload: nodes/levels geometry + the ledger's full mutable state.
[[nodiscard]] std::vector<std::uint8_t> encode_ledger(const obs::SuspicionLedger& ledger);
/// Restore into a ledger of matching geometry; CkptError on mismatch.
void restore_ledger(std::span<const std::uint8_t> payload, obs::SuspicionLedger& ledger);

/// TOPO payload: levels -> clusters -> (leader index, member list).
[[nodiscard]] std::vector<std::uint8_t> encode_topology(const topology::HflTree& tree);
[[nodiscard]] topology::HflTree decode_topology(std::span<const std::uint8_t> payload);

}  // namespace abdhfl::ckpt
