#pragma once
// Checkpoint container format (DESIGN.md §10.1).
//
// A snapshot is one self-describing binary file:
//
//   u32  magic 'ABCK'          u32  version
//   u32  producer length       ...  producer string ("hfl", "dist_worker_2")
//   u64  round                 u32  chunk count (<= kMaxChunks)
//   per chunk:
//     u32 tag (fourcc)   u64 payload size   u32 CRC-32 of the payload
//     ... payload bytes
//   u32  CRC-32 of everything above (the whole-file footer)
//
// Everything is little-endian, the only byte order this repository's wire
// formats speak (see nn/serialize).  Decoding follows the net/wire
// hardening discipline: every count and size is bounded against the bytes
// actually remaining BEFORE it sizes an allocation, so a forged chunk count
// or a truncated file throws CkptError instead of std::bad_alloc or a read
// past the buffer.  The whole-file CRC is checked first (catches flipped
// bytes anywhere), then each chunk's own CRC as it is extracted (localizes
// the damage for diagnostics).
//
// Chunks are typed by fourcc tag (see state.hpp for the registry) so
// tools/ckpt_inspect can render any producer's snapshot, and readers look
// chunks up by tag rather than position — producers may append new chunk
// types without breaking older readers.

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace abdhfl::ckpt {

/// Any structural or integrity failure while decoding a snapshot.
class CkptError : public std::runtime_error {
 public:
  explicit CkptError(const std::string& what) : std::runtime_error(what) {}
};

inline constexpr std::uint32_t kMagic = 0x4B434241u;  // "ABCK" little-endian
inline constexpr std::uint32_t kVersion = 1;
inline constexpr std::uint32_t kMaxChunks = 4096;
inline constexpr std::uint32_t kMaxProducer = 256;

/// Chunk tag from its four-character name, e.g. fourcc("PARM").
[[nodiscard]] constexpr std::uint32_t fourcc(const char (&name)[5]) noexcept {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(name[0])) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(name[1])) << 8 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(name[2])) << 16 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(name[3])) << 24;
}

/// Render a tag back to its four characters ('.' for non-printable bytes).
[[nodiscard]] std::string tag_name(std::uint32_t tag);

/// CRC-32 (IEEE 802.3 polynomial, reflected, table-driven).
[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> bytes) noexcept;

struct Chunk {
  std::uint32_t tag = 0;
  std::vector<std::uint8_t> payload;
};

/// A decoded snapshot.
struct Container {
  std::uint32_t version = kVersion;
  std::string producer;
  std::uint64_t round = 0;
  std::vector<Chunk> chunks;

  [[nodiscard]] const Chunk* find(std::uint32_t tag) const noexcept;
  /// find() or throw CkptError naming the missing tag.
  [[nodiscard]] const Chunk& require(std::uint32_t tag) const;
};

/// Serialize a snapshot (header, chunks, CRC footer).
[[nodiscard]] std::vector<std::uint8_t> encode_container(const Container& c);

/// Inverse of encode_container; throws CkptError on any corruption.
[[nodiscard]] Container decode_container(std::span<const std::uint8_t> bytes);

// ---------------------------------------------------------------------------
// Chunk payload encoding helpers.  Little-endian PODs and length-prefixed
// vectors; the reader bounds every count before allocating, mirroring the
// container-level discipline.

class PayloadWriter {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(v); }
  void u32(std::uint32_t v) { pod(v); }
  void u64(std::uint64_t v) { pod(v); }
  void f32(float v) { pod(v); }
  void f64(double v) { pod(v); }

  void f32vec(std::span<const float> v);
  void f64vec(std::span<const double> v);
  void u64vec(std::span<const std::uint64_t> v);
  void u32vec(std::span<const std::uint32_t> v);
  void str(std::string_view s);

  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(bytes_); }
  [[nodiscard]] std::size_t size() const noexcept { return bytes_.size(); }

 private:
  template <class T>
  void pod(T v) {
    const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
    bytes_.insert(bytes_.end(), p, p + sizeof(T));
  }
  std::vector<std::uint8_t> bytes_;
};

class PayloadReader {
 public:
  explicit PayloadReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] float f32();
  [[nodiscard]] double f64();

  [[nodiscard]] std::vector<float> f32vec();
  [[nodiscard]] std::vector<double> f64vec();
  [[nodiscard]] std::vector<std::uint64_t> u64vec();
  [[nodiscard]] std::vector<std::uint32_t> u32vec();
  [[nodiscard]] std::string str();

  [[nodiscard]] std::size_t remaining() const noexcept { return bytes_.size() - off_; }
  /// Throw unless the payload was consumed exactly.
  void expect_done() const;

 private:
  template <class T>
  T pod();
  template <class T>
  std::vector<T> vec();

  std::span<const std::uint8_t> bytes_;
  std::size_t off_ = 0;
};

}  // namespace abdhfl::ckpt
