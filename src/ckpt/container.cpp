#include "ckpt/container.hpp"

#include <array>
#include <cstring>

namespace abdhfl::ckpt {

namespace {

std::array<std::uint32_t, 256> make_crc_table() noexcept {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

template <class T>
void append_pod(std::vector<std::uint8_t>& out, T value) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&value);
  out.insert(out.end(), p, p + sizeof(T));
}

template <class T>
T read_pod(std::span<const std::uint8_t> bytes, std::size_t& offset) {
  if (sizeof(T) > bytes.size() - offset) throw CkptError("truncated checkpoint");
  T value;
  std::memcpy(&value, bytes.data() + offset, sizeof(T));
  offset += sizeof(T);
  return value;
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> bytes) noexcept {
  static const auto table = make_crc_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::uint8_t b : bytes) c = table[(c ^ b) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

std::string tag_name(std::uint32_t tag) {
  std::string out(4, '.');
  for (int i = 0; i < 4; ++i) {
    const char c = static_cast<char>((tag >> (8 * i)) & 0xFFu);
    if (c >= 0x20 && c < 0x7F) out[static_cast<std::size_t>(i)] = c;
  }
  return out;
}

const Chunk* Container::find(std::uint32_t tag) const noexcept {
  for (const Chunk& c : chunks) {
    if (c.tag == tag) return &c;
  }
  return nullptr;
}

const Chunk& Container::require(std::uint32_t tag) const {
  const Chunk* c = find(tag);
  if (c == nullptr) throw CkptError("checkpoint missing chunk " + tag_name(tag));
  return *c;
}

std::vector<std::uint8_t> encode_container(const Container& c) {
  if (c.chunks.size() > kMaxChunks) throw CkptError("too many chunks to encode");
  if (c.producer.size() > kMaxProducer) throw CkptError("producer string too long");
  std::size_t total = 4 + 4 + 4 + c.producer.size() + 8 + 4 + 4;
  for (const Chunk& ch : c.chunks) total += 4 + 8 + 4 + ch.payload.size();

  std::vector<std::uint8_t> out;
  out.reserve(total);
  append_pod(out, kMagic);
  append_pod(out, kVersion);
  append_pod(out, static_cast<std::uint32_t>(c.producer.size()));
  out.insert(out.end(), c.producer.begin(), c.producer.end());
  append_pod(out, c.round);
  append_pod(out, static_cast<std::uint32_t>(c.chunks.size()));
  for (const Chunk& ch : c.chunks) {
    append_pod(out, ch.tag);
    append_pod(out, static_cast<std::uint64_t>(ch.payload.size()));
    append_pod(out, crc32(ch.payload));
    out.insert(out.end(), ch.payload.begin(), ch.payload.end());
  }
  append_pod(out, crc32(out));
  return out;
}

Container decode_container(std::span<const std::uint8_t> bytes) {
  // Whole-file CRC first: a flipped byte anywhere (header, chunk table, or
  // footer itself) fails here before any field is trusted.
  if (bytes.size() < 4) throw CkptError("truncated checkpoint");
  std::uint32_t footer = 0;
  std::memcpy(&footer, bytes.data() + bytes.size() - 4, 4);
  if (footer != crc32(bytes.first(bytes.size() - 4))) {
    throw CkptError("checkpoint file CRC mismatch");
  }
  const auto body = bytes.first(bytes.size() - 4);

  std::size_t offset = 0;
  const auto magic = read_pod<std::uint32_t>(body, offset);
  if (magic != kMagic) {
    if (magic == __builtin_bswap32(kMagic)) {
      throw CkptError("big-endian checkpoint: the format is little-endian only");
    }
    throw CkptError("bad checkpoint magic");
  }
  Container c;
  c.version = read_pod<std::uint32_t>(body, offset);
  if (c.version != kVersion) throw CkptError("unsupported checkpoint version");
  const auto producer_len = read_pod<std::uint32_t>(body, offset);
  if (producer_len > kMaxProducer || producer_len > body.size() - offset) {
    throw CkptError("checkpoint producer length out of range");
  }
  c.producer.assign(reinterpret_cast<const char*>(body.data() + offset), producer_len);
  offset += producer_len;
  c.round = read_pod<std::uint64_t>(body, offset);
  const auto count = read_pod<std::uint32_t>(body, offset);
  if (count > kMaxChunks) throw CkptError("checkpoint chunk count out of range");
  c.chunks.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    Chunk ch;
    ch.tag = read_pod<std::uint32_t>(body, offset);
    const auto size = read_pod<std::uint64_t>(body, offset);
    const auto chunk_crc = read_pod<std::uint32_t>(body, offset);
    // Bound BEFORE the allocation: a forged size near 2^64 must throw here,
    // not surface as bad_alloc or wrap a later arithmetic check.
    if (size > body.size() - offset) throw CkptError("checkpoint chunk overruns file");
    ch.payload.assign(body.begin() + static_cast<std::ptrdiff_t>(offset),
                      body.begin() + static_cast<std::ptrdiff_t>(offset + size));
    offset += size;
    if (chunk_crc != crc32(ch.payload)) {
      throw CkptError("chunk " + tag_name(ch.tag) + " CRC mismatch");
    }
    c.chunks.push_back(std::move(ch));
  }
  if (offset != body.size()) throw CkptError("trailing bytes after checkpoint chunks");
  return c;
}

// ---------------------------------------------------------------------------

void PayloadWriter::f32vec(std::span<const float> v) {
  u64(v.size());
  const auto* p = reinterpret_cast<const std::uint8_t*>(v.data());
  bytes_.insert(bytes_.end(), p, p + v.size() * sizeof(float));
}

void PayloadWriter::f64vec(std::span<const double> v) {
  u64(v.size());
  const auto* p = reinterpret_cast<const std::uint8_t*>(v.data());
  bytes_.insert(bytes_.end(), p, p + v.size() * sizeof(double));
}

void PayloadWriter::u64vec(std::span<const std::uint64_t> v) {
  u64(v.size());
  const auto* p = reinterpret_cast<const std::uint8_t*>(v.data());
  bytes_.insert(bytes_.end(), p, p + v.size() * sizeof(std::uint64_t));
}

void PayloadWriter::u32vec(std::span<const std::uint32_t> v) {
  u64(v.size());
  const auto* p = reinterpret_cast<const std::uint8_t*>(v.data());
  bytes_.insert(bytes_.end(), p, p + v.size() * sizeof(std::uint32_t));
}

void PayloadWriter::str(std::string_view s) {
  u64(s.size());
  bytes_.insert(bytes_.end(), s.begin(), s.end());
}

template <class T>
T PayloadReader::pod() {
  if (sizeof(T) > remaining()) throw CkptError("truncated chunk payload");
  T value;
  std::memcpy(&value, bytes_.data() + off_, sizeof(T));
  off_ += sizeof(T);
  return value;
}

template <class T>
std::vector<T> PayloadReader::vec() {
  const auto count = pod<std::uint64_t>();
  if (count > remaining() / sizeof(T)) throw CkptError("truncated chunk payload");
  std::vector<T> out(count);
  std::memcpy(out.data(), bytes_.data() + off_, count * sizeof(T));
  off_ += count * sizeof(T);
  return out;
}

std::uint8_t PayloadReader::u8() { return pod<std::uint8_t>(); }
std::uint32_t PayloadReader::u32() { return pod<std::uint32_t>(); }
std::uint64_t PayloadReader::u64() { return pod<std::uint64_t>(); }
float PayloadReader::f32() { return pod<float>(); }
double PayloadReader::f64() { return pod<double>(); }

std::vector<float> PayloadReader::f32vec() { return vec<float>(); }
std::vector<double> PayloadReader::f64vec() { return vec<double>(); }
std::vector<std::uint64_t> PayloadReader::u64vec() { return vec<std::uint64_t>(); }
std::vector<std::uint32_t> PayloadReader::u32vec() { return vec<std::uint32_t>(); }

std::string PayloadReader::str() {
  const auto count = pod<std::uint64_t>();
  if (count > remaining()) throw CkptError("truncated chunk payload");
  std::string out(reinterpret_cast<const char*>(bytes_.data() + off_), count);
  off_ += count;
  return out;
}

void PayloadReader::expect_done() const {
  if (off_ != bytes_.size()) throw CkptError("trailing bytes in chunk payload");
}

}  // namespace abdhfl::ckpt
