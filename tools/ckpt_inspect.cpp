// ckpt_inspect — render a checkpoint container (DESIGN.md §10.1) or a whole
// store directory for humans and CI artifacts.
//
//   ./ckpt_inspect <snapshot.abck>     one file: header + per-chunk table
//   ./ckpt_inspect <store-dir>         every MANIFEST entry, newest last
//
// Unlike ckpt::decode_container — which throws on the first integrity
// failure because a *consumer* must not touch damaged state — the inspector
// keeps walking on damage: it prints every chunk it can reach with its own
// CRC verdict, so a flipped byte is localized to the chunk it hit instead of
// reported as "file bad".  Bounds are still checked before every read; a
// truncated file ends the walk with a "truncated" line rather than a crash.
//
// Exit status: 0 when every inspected snapshot is fully intact, 1 when any
// corruption or truncation was found, 2 on usage errors.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include <sys/stat.h>

#include "ckpt/container.hpp"

namespace {

using namespace abdhfl;

bool is_directory(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

// Little-endian scalar reads with an explicit remaining-bytes check; the
// walk stops (returns false) instead of reading past the buffer.
struct Walker {
  const std::vector<std::uint8_t>& bytes;
  std::size_t off = 0;

  bool take(void* out, std::size_t n) {
    if (bytes.size() - off < n) return false;
    std::memcpy(out, bytes.data() + off, n);
    off += n;
    return true;
  }
  bool u32(std::uint32_t& v) { return take(&v, sizeof v); }
  bool u64(std::uint64_t& v) { return take(&v, sizeof v); }
};

/// Inspect one snapshot file; returns whether it is fully intact.
bool inspect_file(const std::string& path) {
  const auto bytes = read_file(path);
  std::printf("%s  (%zu bytes)\n", path.c_str(), bytes.size());
  if (bytes.empty()) {
    std::printf("  unreadable or empty\n");
    return false;
  }

  bool intact = true;
  // The whole-file CRC footer covers everything before it.
  if (bytes.size() >= sizeof(std::uint32_t)) {
    const std::size_t body = bytes.size() - sizeof(std::uint32_t);
    std::uint32_t stored = 0;
    std::memcpy(&stored, bytes.data() + body, sizeof stored);
    const std::uint32_t actual =
        ckpt::crc32(std::span<const std::uint8_t>(bytes.data(), body));
    std::printf("  file crc     %08x %s\n", stored,
                stored == actual ? "OK" : "BAD");
    if (stored != actual) intact = false;
  } else {
    std::printf("  truncated before the CRC footer\n");
    return false;
  }

  Walker w{bytes};
  std::uint32_t magic = 0, version = 0, producer_len = 0, chunk_count = 0;
  std::uint64_t round = 0;
  if (!w.u32(magic) || !w.u32(version) || !w.u32(producer_len)) {
    std::printf("  truncated header\n");
    return false;
  }
  std::printf("  magic        %08x %s\n", magic,
              magic == ckpt::kMagic ? "OK" : "BAD");
  std::printf("  version      %u%s\n", version,
              version == ckpt::kVersion ? "" : "  (unknown)");
  if (magic != ckpt::kMagic) return false;

  std::string producer;
  if (producer_len > ckpt::kMaxProducer ||
      bytes.size() - w.off < producer_len) {
    std::printf("  producer length %u out of bounds\n", producer_len);
    return false;
  }
  producer.assign(reinterpret_cast<const char*>(bytes.data() + w.off),
                  producer_len);
  w.off += producer_len;
  if (!w.u64(round) || !w.u32(chunk_count)) {
    std::printf("  truncated header\n");
    return false;
  }
  std::printf("  producer     %s\n", producer.c_str());
  std::printf("  round        %llu\n", static_cast<unsigned long long>(round));
  std::printf("  chunks       %u%s\n", chunk_count,
              chunk_count <= ckpt::kMaxChunks ? "" : "  (over limit)");
  if (chunk_count > ckpt::kMaxChunks) return false;

  for (std::uint32_t i = 0; i < chunk_count; ++i) {
    std::uint32_t tag = 0, stored = 0;
    std::uint64_t size = 0;
    if (!w.u32(tag) || !w.u64(size) || !w.u32(stored)) {
      std::printf("  chunk %2u     truncated chunk header\n", i);
      return false;
    }
    if (bytes.size() - w.off < size) {
      std::printf("  chunk %2u     %s  %llu bytes  TRUNCATED\n", i,
                  ckpt::tag_name(tag).c_str(),
                  static_cast<unsigned long long>(size));
      return false;
    }
    const std::uint32_t actual = ckpt::crc32(
        std::span<const std::uint8_t>(bytes.data() + w.off, size));
    std::printf("  chunk %2u     %s  %10llu bytes  crc %08x %s\n", i,
                ckpt::tag_name(tag).c_str(),
                static_cast<unsigned long long>(size), stored,
                stored == actual ? "OK" : "BAD");
    if (stored != actual) intact = false;
    w.off += size;
  }
  return intact;
}

/// Inspect a store directory via its MANIFEST; returns whether every listed
/// snapshot is intact.
bool inspect_dir(const std::string& dir) {
  std::ifstream manifest(dir + "/MANIFEST");
  if (!manifest) {
    std::printf("%s: no MANIFEST (not a checkpoint store?)\n", dir.c_str());
    return false;
  }
  bool all_ok = true;
  std::size_t entries = 0;
  std::string name;
  std::uint64_t round = 0;
  while (manifest >> name >> round) {
    ++entries;
    if (!inspect_file(dir + "/" + name)) all_ok = false;
    std::printf("\n");
  }
  std::printf("%zu snapshot(s) in %s: %s\n", entries, dir.c_str(),
              all_ok && entries > 0 ? "all intact" : "DAMAGE FOUND");
  return all_ok && entries > 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <snapshot.abck | store-dir>\n", argv[0]);
    return 2;
  }
  const std::string path = argv[1];
  const bool ok = is_directory(path) ? inspect_dir(path) : inspect_file(path);
  return ok ? 0 : 1;
}
